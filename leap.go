// Package leap is a library reproduction of "Effectively Prefetching Remote
// Memory with Leap" (Maruf & Chowdhury, USENIX ATC 2020).
//
// The headline entry point is the Memory runtime: Open(opts...) fuses every
// layer of the reproduction — the majority-trend predictor, the pluggable
// prefetchers, the adaptive page cache with eager eviction, and the real
// remote-memory substrate with its async doorbell-batched ticket engine —
// into one byte-addressable paged memory. A miss on mem.ReadAt / WriteAt /
// Get records into the predictor, issues the prefetch window asynchronously
// to the real host (in-process or TCP), and accounts hits, accuracy and
// coverage, exactly as the paper places Leap in the paging data path (§4).
// Configure it with functional options: WithPrefetcher, WithRemoteHost,
// WithCacheCapacity, WithQueueDepth, WithClock, WithSeed.
//
// Underneath, the layers stay individually usable:
//
//   - The predictor: NewPredictor gives direct access to the paper's
//     majority-trend prefetching algorithm (Boyer–Moore majority vote over a
//     per-process access history, adaptive prefetch windows). Feed it page
//     faults, get prefetch candidates.
//
//   - Prefetchers: NewPrefetcher builds Leap or any of the evaluated
//     baselines (next-n-line, stride, Linux-style read-ahead) behind one
//     interface for the paging data path.
//
//   - The simulation: Simulate runs workloads against a virtual-time model
//     of the whole remote-paging stack — fault handler, page cache with
//     lazy/eager eviction, legacy block layer vs Leap's lean path, RDMA
//     fabric, disk/SSD/remote devices — and reports latency distributions,
//     cache behaviour, and application-level throughput.
//
//   - The remote-memory substrate: NewRemoteAgent/NewRemoteHost implement
//     the slab-granular remote memory service of the paper's §4.4–4.5
//     (rendezvous-hashed slab placement, two-way replication, an async
//     ticket engine with doorbell-batched wire frames) with in-process and
//     TCP transports, moving real bytes.
//
// The simulator and the Memory runtime share one fault-path core
// (internal/paging), so a simulated run and a live run over the same trace
// make identical prefetch decisions.
//
// Everything is deterministic given a seed; nothing sleeps. See DESIGN.md
// for the system inventory and EXPERIMENTS.md for the paper-vs-measured
// results; cmd/leapbench regenerates every figure and table.
package leap

import (
	"fmt"

	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/remote"
	"leap/internal/storage"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// PageID identifies a 4KB page in the remote (swap) address space.
type PageID = core.PageID

// PID identifies a simulated process.
type PID = prefetch.PID

// PredictorConfig parameterizes the core Leap predictor; zero values take
// the paper's defaults (Hsize=32, Nsplit=2, PWsizemax=8).
type PredictorConfig = core.Config

// Predictor is the paper's per-process prefetch engine. Record page
// accesses with Record or OnFault; receive prefetch candidates; report
// consumed prefetches with NoteHit so the window adapts.
type Predictor = core.Predictor

// NewPredictor returns a Predictor for one process's fault stream.
func NewPredictor(cfg PredictorConfig) *Predictor { return core.NewPredictor(cfg) }

// MajorityVote exposes the Boyer–Moore majority vote the trend detector is
// built on: it reports the element occurring more than half the time, if
// one exists.
func MajorityVote(xs []int64) (int64, bool) { return core.MajorityVote(xs) }

// Prefetcher is the pluggable prefetching interface of the paging path; see
// PrefetcherNames for available implementations.
type Prefetcher = prefetch.Prefetcher

// NewPrefetcher builds a prefetcher by name: "leap", "readahead", "stride",
// "nextnline", or "none".
func NewPrefetcher(name string) (Prefetcher, error) { return prefetch.New(name) }

// NewLeapPrefetcher builds the Leap prefetcher with an explicit predictor
// configuration (per-process isolation included).
func NewLeapPrefetcher(cfg PredictorConfig) *prefetch.Leap { return prefetch.NewLeap(cfg) }

// PrefetcherNames lists the registered prefetcher implementations.
func PrefetcherNames() []string { return prefetch.Names() }

// System selects a simulated configuration preset, mirroring the paper's
// evaluation setups.
type System int

// Presets.
const (
	// SystemDisk swaps to local HDD through the stock kernel path.
	SystemDisk System = iota
	// SystemSSD swaps to local SSD through the stock kernel path.
	SystemSSD
	// SystemDVMM is Infiniswap-style remote paging on the default path
	// (block layer, read-ahead, lazy eviction).
	SystemDVMM
	// SystemDVMMLeap is remote paging through the full Leap stack (lean
	// path, majority-trend prefetcher, eager eviction).
	SystemDVMMLeap
)

// Generator produces a deterministic page-access stream; build one with
// NewSequentialWorkload, NewStrideWorkload, or NewAppWorkload.
type Generator = workload.Generator

// Workload describes one simulated process.
type Workload struct {
	// PID must be unique per process.
	PID PID
	// Generator produces the access stream; see NewSequentialWorkload,
	// NewStrideWorkload, NewAppWorkload.
	Generator workload.Generator
	// MemoryLimitPages is the cgroup-style local memory budget.
	MemoryLimitPages int64
	// PreloadPages marks the first pages resident at start (defaults to the
	// memory limit when negative).
	PreloadPages int64
}

// SimConfig configures a simulation run.
type SimConfig struct {
	// System selects the preset stack.
	System System
	// Prefetcher overrides the preset's prefetcher when non-nil.
	Prefetcher Prefetcher
	// CacheCapacityPages bounds the prefetch cache (0 = cgroup-coupled).
	CacheCapacityPages int
	// RemoteQueueDepth, when > 1, batches prefetch fan-out and eviction
	// writeback into doorbell submissions of up to this many pages on
	// batching-capable devices (remote memory). 0 or 1 submits page by
	// page, byte-identical to the unbatched engine.
	RemoteQueueDepth int
	// WarmupAccesses and MeasuredAccesses size the run per process.
	WarmupAccesses, MeasuredAccesses int64
	// Seed drives every stochastic model; equal seeds replay exactly.
	Seed uint64
}

// SimResult re-exports the simulation outcome.
type SimResult = vmm.Result

// Simulate runs the workloads against the selected system and returns the
// aggregate result (latency percentiles, cache statistics, accuracy and
// coverage, per-process throughput).
func Simulate(cfg SimConfig, workloads []Workload) (SimResult, error) {
	mcfg := systemConfig(cfg)
	apps := make([]vmm.App, 0, len(workloads))
	for _, w := range workloads {
		preload := w.PreloadPages
		if preload < 0 {
			preload = w.MemoryLimitPages
		}
		apps = append(apps, vmm.App{
			PID:          w.PID,
			Gen:          w.Generator,
			LimitPages:   w.MemoryLimitPages,
			PreloadPages: preload,
		})
	}
	warmup := cfg.WarmupAccesses
	measured := cfg.MeasuredAccesses
	if measured == 0 {
		measured = 100000
	}
	_, res, err := vmm.Run(mcfg, apps, warmup, measured)
	return res, err
}

// systemConfig maps a preset to a vmm configuration.
func systemConfig(cfg SimConfig) vmm.Config {
	var out vmm.Config
	switch cfg.System {
	case SystemDisk, SystemSSD, SystemDVMM:
		pf, _ := prefetch.New("readahead")
		out = vmm.Config{
			Path:        datapath.Config{Kind: datapath.Legacy},
			CachePolicy: pagecache.EvictLazy,
			Prefetcher:  pf,
			Seed:        cfg.Seed,
		}
		if cfg.System == SystemDisk {
			out.Device = storage.NewHDD(newSeededRNG(cfg.Seed ^ 0xd15c))
		}
		if cfg.System == SystemSSD {
			out.Device = storage.NewSSD(newSeededRNG(cfg.Seed ^ 0x55d))
		}
	case SystemDVMMLeap:
		out = vmm.Config{
			Path:        datapath.Config{Kind: datapath.Lean},
			CachePolicy: pagecache.EvictEager,
			Prefetcher:  prefetch.NewLeap(core.Config{}),
			Seed:        cfg.Seed,
		}
	default:
		out = vmm.Config{Seed: cfg.Seed}
	}
	if cfg.Prefetcher != nil {
		out.Prefetcher = cfg.Prefetcher
	}
	out.CacheCapacity = cfg.CacheCapacityPages
	out.RemoteQueueDepth = cfg.RemoteQueueDepth
	return out
}

// NewSequentialWorkload scans pages linearly (the §2.2 Sequential
// microbenchmark).
func NewSequentialWorkload(pages int64, seed uint64) workload.Generator {
	return workload.NewSequential(pages, seed)
}

// NewStrideWorkload scans with a fixed stride (Stride-10 with k=10).
func NewStrideWorkload(pages, stride int64, seed uint64) workload.Generator {
	return workload.NewStride(pages, stride, seed)
}

// NewAppWorkload instantiates one of the paper's application models:
// "powergraph", "numpy", "voltdb", or "memcached". An unknown name returns
// a descriptive error listing the valid models.
func NewAppWorkload(name string, seed uint64) (workload.Generator, error) {
	p, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("leap: unknown app workload %q (have %v)", name, workload.Names())
	}
	return workload.NewApp(p, seed), nil
}

// RemotePageSize is the fixed page size of the remote-memory substrate.
const RemotePageSize = remote.PageSize

// RemoteAgent serves slab-granular remote memory (the donor side).
type RemoteAgent = remote.Agent

// NewRemoteAgent returns an agent donating maxSlabs slabs of slabPages
// pages each (maxSlabs <= 0 means unlimited).
func NewRemoteAgent(slabPages, maxSlabs int) *RemoteAgent {
	return remote.NewAgent(slabPages, maxSlabs)
}

// RemoteHost maps pages onto remote agents with rendezvous-hashed slab
// placement and replication (the borrower side). Besides the synchronous
// ReadPage/WritePage, it exposes the asynchronous ticket engine —
// ReadPageAsync/WritePageAsync/Flush — which coalesces duplicate reads and
// drains per-agent queues with doorbell-style batched wire frames; AddAgent
// and Rebalance grow the pool, migrating only each newcomer's rendezvous
// share of slabs.
type RemoteHost = remote.Host

// RemoteHostConfig parameterizes a RemoteHost (slab size, replication
// factor, async queue depth, placement seed).
type RemoteHostConfig = remote.HostConfig

// RemoteTicket is the completion handle of one asynchronous remote-memory
// page operation; it completes when the host flushes its queues.
type RemoteTicket = remote.Ticket

// RemoteTransport carries host→agent requests.
type RemoteTransport = remote.Transport

// NewRemoteHost builds a host over the given transports.
func NewRemoteHost(cfg RemoteHostConfig, transports []RemoteTransport) (*RemoteHost, error) {
	return remote.NewHost(cfg, transports)
}

// NewInProcTransport binds a transport directly to an agent in-process.
func NewInProcTransport(a *RemoteAgent) RemoteTransport { return remote.NewInProc(a) }

// DialRemoteAgent connects to a TCP agent (cmd/leapagent).
func DialRemoteAgent(addr string) (RemoteTransport, error) { return remote.DialTCP(addr) }
