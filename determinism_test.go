package leap

import (
	"reflect"
	"testing"
)

// mkWorkloads builds n application processes mixing all four app models, so
// the run exercises the heap scheduler's tie-breaking and the pooled fault
// path across concurrent clocks.
func mkWorkloads(t *testing.T, n int) []Workload {
	t.Helper()
	names := []string{"powergraph", "numpy", "voltdb", "memcached"}
	var ws []Workload
	for i := 0; i < n; i++ {
		gen, err := NewAppWorkload(names[i%len(names)], uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, Workload{
			PID:              PID(i + 1),
			Generator:        gen,
			MemoryLimitPages: gen.Pages() / 2,
			PreloadPages:     -1,
		})
	}
	return ws
}

func runOnce(t *testing.T, cfg SimConfig, n int) SimResult {
	t.Helper()
	res, err := Simulate(cfg, mkWorkloads(t, n))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSimulateDeterministicSingleProcess replays a run with the same seed
// and requires identical results in every field — the regression gate for
// the scheduler, pooling and counter plumbing.
func TestSimulateDeterministicSingleProcess(t *testing.T) {
	cfg := SimConfig{
		System:           SystemDVMMLeap,
		WarmupAccesses:   2000,
		MeasuredAccesses: 20000,
		Seed:             42,
	}
	a := runOnce(t, cfg, 1)
	b := runOnce(t, cfg, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverged:\n a: %+v\n b: %+v", a, b)
	}
	if a.Faults == 0 {
		t.Fatal("run recorded no faults; determinism check is vacuous")
	}
}

// TestSimulateDeterministicManyProcesses runs six concurrent apps — enough
// to make scheduler clock ties and interleaved prefetch arrivals routine —
// twice per system preset, and requires identical results.
func TestSimulateDeterministicManyProcesses(t *testing.T) {
	for _, sys := range []System{SystemDVMM, SystemDVMMLeap} {
		cfg := SimConfig{
			System:           sys,
			WarmupAccesses:   1000,
			MeasuredAccesses: 8000,
			Seed:             7,
		}
		a := runOnce(t, cfg, 6)
		b := runOnce(t, cfg, 6)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("system %d: same-seed 6-process runs diverged:\n a: %+v\n b: %+v", sys, a, b)
		}
		if len(a.PerProc) != 6 {
			t.Fatalf("system %d: PerProc has %d entries, want 6", sys, len(a.PerProc))
		}
	}
}

// TestSimulateSeedSensitivity guards against the opposite failure: a
// different seed must actually change the run (otherwise the determinism
// tests prove nothing).
func TestSimulateSeedSensitivity(t *testing.T) {
	cfg := SimConfig{
		System:           SystemDVMMLeap,
		WarmupAccesses:   1000,
		MeasuredAccesses: 10000,
		Seed:             1,
	}
	a := runOnce(t, cfg, 2)
	cfg.Seed = 2
	b := runOnce(t, cfg, 2)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical results")
	}
}
