// Multitenant: all four of the paper's applications run concurrently on one
// host, each at a 50% memory limit, sharing the remote fabric — the
// Figure 13 scenario. Leap's per-process page-access tracking keeps each
// application's pattern detection clean despite the interleaved fault
// stream; the stock read-ahead shares one global window across all four.
package main

import (
	"fmt"
	"log"

	"leap"
)

var apps = []string{"powergraph", "numpy", "voltdb", "memcached"}

func run(system leap.System) []leap.SimResult {
	var workloads []leap.Workload
	for i, name := range apps {
		gen, ok := leap.NewAppWorkload(name, uint64(100+i))
		if !ok {
			log.Fatalf("workload %s missing", name)
		}
		workloads = append(workloads, leap.Workload{
			PID:              leap.PID(i + 1),
			Generator:        gen,
			MemoryLimitPages: gen.Pages() / 2,
			PreloadPages:     -1,
		})
	}
	res, err := leap.Simulate(leap.SimConfig{
		System:           system,
		WarmupAccesses:   10000,
		MeasuredAccesses: 60000,
		Seed:             99,
	}, workloads)
	if err != nil {
		log.Fatal(err)
	}
	return []leap.SimResult{res}
}

func main() {
	fmt.Println("four applications concurrently @50% memory each (Figure 13):")
	fmt.Println()
	stock := run(leap.SystemDVMM)[0]
	withLeap := run(leap.SystemDVMMLeap)[0]

	fmt.Printf("%-12s %16s %16s %8s\n", "app", "d-vmm", "d-vmm+leap", "gain")
	for i, name := range apps {
		s := stock.PerProc[i]
		l := withLeap.PerProc[i]
		fmt.Printf("%-12s %16v %16v %7.2f×\n",
			name, s.Time, l.Time, float64(s.Time)/float64(l.Time))
	}
	fmt.Println()
	fmt.Printf("aggregate coverage: %.1f%% (leap) vs %.1f%% (stock global window)\n",
		withLeap.Coverage*100, stock.Coverage*100)
	fmt.Println("(paper: 1.1–2.4× per-app improvement from isolation + lean path)")
}
