// Multitenant: all four of the paper's applications run concurrently on one
// host, each at a 50% memory limit, sharing the remote fabric — the
// Figure 13 scenario. Leap's per-process page-access tracking keeps each
// application's pattern detection clean despite the interleaved fault
// stream; the stock read-ahead shares one global window across all four.
// A third column runs the Leap stack with doorbell-batched prefetch fan-out
// (RemoteQueueDepth 8): each prefetch window goes to the fabric as one
// batched submission instead of one per page.
package main

import (
	"fmt"
	"log"

	"leap"
)

var apps = []string{"powergraph", "numpy", "voltdb", "memcached"}

func run(system leap.System, queueDepth int) leap.SimResult {
	var workloads []leap.Workload
	for i, name := range apps {
		gen, err := leap.NewAppWorkload(name, uint64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, leap.Workload{
			PID:              leap.PID(i + 1),
			Generator:        gen,
			MemoryLimitPages: gen.Pages() / 2,
			PreloadPages:     -1,
		})
	}
	res, err := leap.Simulate(leap.SimConfig{
		System:           system,
		RemoteQueueDepth: queueDepth,
		WarmupAccesses:   10000,
		MeasuredAccesses: 60000,
		Seed:             99,
	}, workloads)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("four applications concurrently @50% memory each (Figure 13):")
	fmt.Println()
	stock := run(leap.SystemDVMM, 1)
	withLeap := run(leap.SystemDVMMLeap, 1)
	batched := run(leap.SystemDVMMLeap, 8)

	fmt.Printf("%-12s %14s %14s %14s %8s %8s\n",
		"app", "d-vmm", "d-vmm+leap", "+leap qd=8", "gain", "qd-gain")
	for i, name := range apps {
		s := stock.PerProc[i]
		l := withLeap.PerProc[i]
		b := batched.PerProc[i]
		fmt.Printf("%-12s %14v %14v %14v %7.2f× %7.2f×\n",
			name, s.Time, l.Time, b.Time,
			float64(s.Time)/float64(l.Time), float64(l.Time)/float64(b.Time))
	}
	fmt.Println()
	fmt.Printf("aggregate coverage: %.1f%% (leap) vs %.1f%% (stock global window)\n",
		withLeap.Coverage*100, stock.Coverage*100)
	fmt.Println("(paper: 1.1–2.4× per-app improvement from isolation + lean path;")
	fmt.Println(" qd-gain is doorbell batching of the prefetch fan-out on top of it)")
}
