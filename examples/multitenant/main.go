// Multitenant: all four of the paper's applications run concurrently on one
// host, each at a 50% memory limit, sharing the remote fabric — the
// Figure 13 scenario. Leap's per-process page-access tracking keeps each
// application's pattern detection clean despite the interleaved fault
// stream; the stock read-ahead shares one global window across all four.
// A third column runs the Leap stack with doorbell-batched prefetch fan-out
// (RemoteQueueDepth 8): each prefetch window goes to the fabric as one
// batched submission instead of one per page.
package main

import (
	"fmt"
	"log"

	"leap"
)

var apps = []string{"powergraph", "numpy", "voltdb", "memcached"}

func run(system leap.System, queueDepth int) leap.SimResult {
	var workloads []leap.Workload
	for i, name := range apps {
		gen, err := leap.NewAppWorkload(name, uint64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, leap.Workload{
			PID:              leap.PID(i + 1),
			Generator:        gen,
			MemoryLimitPages: gen.Pages() / 2,
			PreloadPages:     -1,
		})
	}
	res, err := leap.Simulate(leap.SimConfig{
		System:           system,
		RemoteQueueDepth: queueDepth,
		WarmupAccesses:   10000,
		MeasuredAccesses: 60000,
		Seed:             99,
	}, workloads)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("four applications concurrently @50% memory each (Figure 13):")
	fmt.Println()
	stock := run(leap.SystemDVMM, 1)
	withLeap := run(leap.SystemDVMMLeap, 1)
	batched := run(leap.SystemDVMMLeap, 8)

	fmt.Printf("%-12s %14s %14s %14s %8s %8s\n",
		"app", "d-vmm", "d-vmm+leap", "+leap qd=8", "gain", "qd-gain")
	for i, name := range apps {
		s := stock.PerProc[i]
		l := withLeap.PerProc[i]
		b := batched.PerProc[i]
		fmt.Printf("%-12s %14v %14v %14v %7.2f× %7.2f×\n",
			name, s.Time, l.Time, b.Time,
			float64(s.Time)/float64(l.Time), float64(l.Time)/float64(b.Time))
	}
	fmt.Println()
	fmt.Printf("aggregate coverage: %.1f%% (leap) vs %.1f%% (stock global window)\n",
		withLeap.Coverage*100, stock.Coverage*100)
	fmt.Println("(paper: 1.1–2.4× per-app improvement from isolation + lean path;")
	fmt.Println(" qd-gain is doorbell batching of the prefetch fan-out on top of it)")

	fmt.Println()
	runLive()
}

// runLive is the same multi-tenant idea on the live runtime instead of the
// simulator: four tenants share one leap.Memory over the private in-process
// cluster, supervised by the control plane. Tenant access skew concentrates
// faults on a handful of pages, and the plane's hot-page replication picks
// them up from the natural fault stream — no fault injection involved.
func runLive() {
	mem, err := leap.Open(
		// The detector and hot-replica machinery run off the runtime clock;
		// the error thresholds only matter if an agent actually fails.
		leap.WithControlPlane(leap.ControlConfig{
			Detector: leap.ControlDetectorConfig{SuspectErr: 0.25, FailErr: 0.5},
			HotK:     8,
			HotEvery: 4,
		}),
		// Bounded datapath retries with hedging on slow-hinted agents: the
		// retry half of the self-healing story, wired to the same clock.
		leap.WithRetryPolicy(leap.RemoteRetryPolicy{
			MaxAttempts: 4,
			HedgeReads:  true,
		}),
		leap.WithCacheCapacity(64),
		leap.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer mem.Close()

	// Four tenants, each with its own predictor via Client handles: two
	// scanners, one hotspot tenant (80% of its traffic on 8 pages strided
	// across slabs), one uniform. The 4096-page set dwarfs the 64-frame
	// cache, so hot pages keep re-faulting — the plane's replication signal.
	const region, pages = 1024, 4096
	buf := make([]byte, leap.RemotePageSize)
	for p := int64(0); p < pages; p++ {
		buf[0] = byte(p)
		if _, err := mem.WriteAt(buf, p*leap.RemotePageSize); err != nil {
			log.Fatal(err)
		}
	}
	tenants := make([]*leap.MemoryClient, 4)
	for i := range tenants {
		tenants[i] = mem.Client(i)
	}
	rnd := uint64(1)
	for i := 0; i < 20000; i++ {
		t := i % 4
		var off int64
		switch t {
		case 0:
			off = int64(i/4) % region
		case 1:
			off = int64(i/4*8) % region
		case 2:
			rnd = rnd*6364136223846793005 + 1442695040888963407
			if r := rnd >> 11; r%10 < 8 {
				off = int64(r%8) * 64
			} else {
				off = int64(r % region)
			}
		default:
			rnd = rnd*6364136223846793005 + 1442695040888963407
			off = int64((rnd >> 11) % region)
		}
		if _, err := tenants[t].Get(leap.PageID(int64(t)*region + off)); err != nil {
			log.Fatal(err)
		}
	}

	st := mem.Stats()
	fmt.Println("live runtime: four tenants on one supervised leap.Memory (WithControlPlane + WithRetryPolicy):")
	fmt.Printf("  hit ratio %.1f%%, agent phases [%s], control ticks %d\n",
		100*st.HitRatio, st.Control.Phases, st.Control.Ticks)
	fmt.Printf("  hot-page replicas: %d pages carrying extra copies (%d adds, %d drops) — driven by the natural fault stream of the hotspot tenant\n",
		st.Control.HotPages, st.Control.HotAdds, st.Control.HotDrops)
}
