// Kvcache: a Memcached-style key-value cache whose heap is mostly touched
// at random (zipf-popular keys hashed over memory). There is nothing useful
// to prefetch — the win the paper reports for this workload (§5.3.4) comes
// from Leap *throttling itself* on randomness (no cache pollution, no RDMA
// congestion) while the lean data path still cuts the per-miss cost.
//
// The example contrasts Leap with Next-N-Line, which cannot throttle, and
// prints the pollution gap.
package main

import (
	"fmt"
	"log"

	"leap"
)

func run(label string, system leap.System, prefetcher string) leap.SimResult {
	gen, err := leap.NewAppWorkload("memcached", 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := leap.SimConfig{
		System:           system,
		WarmupAccesses:   20000,
		MeasuredAccesses: 120000,
		Seed:             7,
	}
	if prefetcher != "" {
		pf, err := leap.NewPrefetcher(prefetcher)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Prefetcher = pf
	}
	res, err := leap.Simulate(cfg, []leap.Workload{{
		PID:              1,
		Generator:        gen,
		MemoryLimitPages: gen.Pages() / 2,
		PreloadPages:     -1,
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s OPS=%-9.0f p99=%-10v prefetches=%-7d pollution=%d\n",
		label, res.PerProc[0].OpsPerSec, res.Latency.P99,
		res.PrefetchIssued, res.Pollution)
	return res
}

func main() {
	fmt.Println("Memcached (Facebook ETC-style) @50% local memory:")
	fmt.Println()
	stock := run("d-vmm (stock linux)", leap.SystemDVMM, "")
	flood := run("d-vmm+next-n-line", leap.SystemDVMM, "nextnline")
	withLeap := run("d-vmm+leap", leap.SystemDVMMLeap, "")

	fmt.Println()
	fmt.Printf("Leap issued %d prefetches vs Next-N-Line's %d on random traffic —\n",
		withLeap.PrefetchIssued, flood.PrefetchIssued)
	fmt.Printf("adaptive throttling avoids pointless fetches (paper §5.3.4).\n")
	fmt.Printf("throughput: %.2f× over stock (paper: 1.11× at 50%%)\n",
		withLeap.PerProc[0].OpsPerSec/stock.PerProc[0].OpsPerSec)
}
