// Quickstart: drive the Leap predictor directly — feed it page faults and
// read back prefetch candidates, watching the majority-vote trend detector
// adapt through a pattern change and ignore one-off irregularities.
package main

import (
	"fmt"

	"leap"
)

func main() {
	p := leap.NewPredictor(leap.PredictorConfig{
		HistorySize:       32, // the paper's Hsize
		NSplit:            2,  // smallest detection window = 16
		MaxPrefetchWindow: 8,  // PWsizemax
	})

	fmt.Println("=== sequential phase ===")
	var page leap.PageID
	for i := 0; i < 20; i++ {
		page = leap.PageID(1000 + i)
		p.Record(page)
	}
	fmt.Printf("after 20 sequential faults, Predict(%d) -> %v\n",
		page+1, p.Predict(page+1))

	// Report consumed prefetches: the window grows toward PWsizemax.
	for i := 0; i < 8; i++ {
		p.NoteHit()
	}
	p.Record(page + 2)
	fmt.Printf("after 8 prefetch hits, window grows:      %v\n", p.Predict(page+2))

	fmt.Println("\n=== stride-10 phase (trend change) ===")
	for i := 0; i < 20; i++ {
		page = leap.PageID(5000 + i*10)
		p.Record(page)
	}
	p.NoteHit()
	fmt.Printf("stride detected, candidates follow it:    %v\n", p.Predict(page+10))

	fmt.Println("\n=== short-term irregularity (ignored by majority vote) ===")
	p.Record(99999) // a one-off wild fault
	p.Record(page + 20)
	p.NoteHit()
	fmt.Printf("after one wild fault, trend survives:     %v\n", p.Predict(page+30))

	fmt.Println("\n=== random phase (prefetching suspends) ===")
	seed := uint64(1)
	var cands []leap.PageID
	for i := 0; i < 40; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		// OnFault records and predicts; with no hits and no trend the
		// window shrinks smoothly (8→4→2→1) and then suspends.
		cands = p.OnFault(leap.PageID(seed%(1<<30)), nil)
	}
	fmt.Printf("on a random stream, candidates:           %v (suspended)\n", cands)

	st := p.Stats()
	fmt.Printf("\nstats: faults=%d trends=%d speculative=%d suspended=%d predicted=%d\n",
		st.Faults, st.TrendHits, st.Speculative, st.Suspended, st.PagesPredicted)
}
