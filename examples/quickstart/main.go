// Quickstart: open a leap.Memory — the unified runtime — and watch the
// paper's machinery work over real remote memory: a sequential scan gets
// prefetched ahead of the fault stream, a random burst suspends
// prefetching, and the predictor underneath adapts its window the whole
// time. Then drive that predictor layer directly to see the raw algorithm.
package main

import (
	"fmt"
	"log"

	"leap"
)

func main() {
	// One call builds the whole stack: majority-trend predictor, eager
	// page cache, lean data path, and a private in-process remote-memory
	// cluster (3 agents, 2-way replication, doorbell-batched async I/O).
	mem, err := leap.Open(
		leap.WithCacheCapacity(256), // local budget: 1MB of 4KB frames
		leap.WithQueueDepth(16),     // up to 16 pages per doorbell frame
		leap.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer mem.Close()

	fmt.Println("=== write 16MB through the paging path ===")
	buf := make([]byte, leap.RemotePageSize)
	const pages = 4096
	for pg := int64(0); pg < pages; pg++ {
		for i := range buf {
			buf[i] = byte(pg) ^ byte(i)
		}
		if _, err := mem.WriteAt(buf, pg*leap.RemotePageSize); err != nil {
			log.Fatal(err)
		}
	}
	st := mem.Stats()
	fmt.Printf("evictions wrote real pages to the cluster: swapouts=%d host-writes=%d\n",
		st.Swapouts, st.Host.Writes)

	fmt.Println("\n=== sequential re-read: Leap prefetches ahead of the faults ===")
	for pg := int64(0); pg < pages; pg++ {
		data, err := mem.Get(leap.PageID(pg))
		if err != nil {
			log.Fatal(err)
		}
		if data[1] != byte(pg)^1 {
			log.Fatalf("page %d corrupted", pg)
		}
	}
	st = mem.Stats()
	fmt.Printf("hit ratio %.1f%%  accuracy %.1f%%  coverage %.1f%%  p50 %v  p99 %v\n",
		100*st.HitRatio, 100*st.Accuracy, 100*st.Coverage, st.Latency.P50, st.Latency.P99)
	fmt.Printf("doorbell frames carried %.1f pages on average\n",
		float64(st.Host.BatchedPages)/float64(max(st.Host.BatchCalls, 1)))

	fmt.Println("\n=== random burst: the window shrinks and prefetching suspends ===")
	seed := uint64(1)
	for i := 0; i < 2000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		if _, err := mem.Get(leap.PageID(seed % pages)); err != nil {
			log.Fatal(err)
		}
	}
	st2 := mem.Stats()
	fmt.Printf("prefetches issued during the burst stayed low: %d (was %d after the scan)\n",
		st2.PrefetchIssued, st.PrefetchIssued)

	fmt.Println("\n=== the predictor layer, driven directly ===")
	p := leap.NewPredictor(leap.PredictorConfig{}) // Hsize=32, Nsplit=2, PWsizemax=8
	var page leap.PageID
	for i := 0; i < 20; i++ {
		page = leap.PageID(1000 + i*10)
		p.Record(page)
	}
	for i := 0; i < 8; i++ {
		p.NoteHit() // consumed prefetches grow the window
	}
	fmt.Printf("after a stride-10 run and 8 hits, Predict(%d) -> %v (window %d)\n",
		page+10, p.Predict(page+10), p.Window())
	p.Record(99999) // one wild fault: the majority vote shrugs it off
	p.Record(page + 20)
	p.NoteHit()
	fmt.Printf("after one wild fault, the trend survives:  %v\n", p.Predict(page+30))
}
