// Graphanalytics: the paper's motivating scenario — a PowerGraph-style
// graph-analytics job whose working set no longer fits in local memory.
// Runs the same workload at a 50% memory limit on stock remote paging
// (Infiniswap-style: block layer + read-ahead + lazy eviction) and on the
// full Leap stack, then prints the side-by-side the paper's Figure 11a
// summarizes.
package main

import (
	"fmt"
	"log"

	"leap"
)

func run(system leap.System, label string) leap.SimResult {
	gen, err := leap.NewAppWorkload("powergraph", 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := leap.Simulate(leap.SimConfig{
		System:           system,
		WarmupAccesses:   20000,
		MeasuredAccesses: 120000,
		Seed:             42,
	}, []leap.Workload{{
		PID:              1,
		Generator:        gen,
		MemoryLimitPages: gen.Pages() / 2, // the 50% cgroup limit
		PreloadPages:     -1,
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s completion=%-12v p50=%-10v p99=%-10v coverage=%5.1f%% cache adds=%d\n",
		label, res.Makespan, res.Latency.P50, res.Latency.P99,
		res.Coverage*100, res.CacheAdds)
	return res
}

func main() {
	fmt.Println("PowerGraph working set @50% local memory, remote paging:")
	fmt.Println()
	stock := run(leap.SystemDVMM, "d-vmm (stock linux)")
	withLeap := run(leap.SystemDVMMLeap, "d-vmm+leap")

	fmt.Println()
	fmt.Printf("completion speedup: %.2f×   (paper: 1.56× at 50%%)\n",
		float64(stock.Makespan)/float64(withLeap.Makespan))
	fmt.Printf("median 4KB access:  %.1f× better\n",
		float64(stock.Latency.P50)/float64(withLeap.Latency.P50))
	fmt.Printf("tail (p99) access:  %.1f× better\n",
		float64(stock.Latency.P99)/float64(withLeap.Latency.P99))
}
