// Remoteswap: stand up three remote-memory agents over real TCP loopback
// connections, map slabs across them with power-of-two-choices placement
// and two-way replication, push pages out and read them back — then kill an
// agent and watch reads fail over to replicas. This is the §4.4–4.5
// substrate moving real bytes.
//
// With -chaos, the demo then runs the deterministic chaos harness over a
// fresh four-agent TCP cluster: a scripted partition and a flaky-write
// window with repair in between, model-checked for zero acked-write loss.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"leap"
	"leap/internal/chaos"
	"leap/internal/remote"
)

func main() {
	runChaos := flag.Bool("chaos", false, "after the demo, run a chaos schedule over a TCP cluster")
	flag.Parse()
	// Start three agents on ephemeral loopback ports, each donating 64
	// slabs of 256 pages (64MB each).
	var transports []leap.RemoteTransport
	var listeners []net.Listener
	for i := 0; i < 3; i++ {
		agent := leap.NewRemoteAgent(256, 64)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners = append(listeners, l)
		go agent.Serve(l) //nolint:errcheck // closed at exit
		tr, err := leap.DialRemoteAgent(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		transports = append(transports, tr)
		fmt.Printf("agent %d listening on %s (64MB donated)\n", i, l.Addr())
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()

	host, err := leap.NewRemoteHost(leap.RemoteHostConfig{
		SlabPages: 256,
		Replicas:  2,
		Seed:      42,
	}, transports)
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	// Page out 2048 pages (8MB) across the cluster.
	fmt.Println("\nwriting 2048 pages through the host agent...")
	buf := make([]byte, leap.RemotePageSize)
	for p := leap.PageID(0); p < 2048; p++ {
		for i := range buf {
			buf[i] = byte(p) ^ byte(i)
		}
		if err := host.WritePage(p, buf); err != nil {
			log.Fatalf("write page %d: %v", p, err)
		}
	}
	fmt.Printf("slab load per agent (power-of-two-choices): %v\n", host.SlabLoad())

	// Read back and verify.
	for p := leap.PageID(0); p < 2048; p++ {
		if err := host.ReadPage(p, buf); err != nil {
			log.Fatalf("read page %d: %v", p, err)
		}
		if buf[17] != byte(p)^17 {
			log.Fatalf("page %d corrupted", p)
		}
	}
	fmt.Println("all 2048 pages verified over TCP")

	// Fail one agent: reads must keep working via replicas.
	fmt.Println("\nkilling agent 0; rereading everything...")
	listeners[0].Close()
	transports[0].Close()
	failed := 0
	for p := leap.PageID(0); p < 2048; p++ {
		if err := host.ReadPage(p, buf); err != nil {
			failed++
		}
	}
	st := host.Stats()
	fmt.Printf("reads failed: %d; failovers served by replicas: %d\n", failed, st.Failovers)
	if failed > 0 {
		log.Fatal("replication failed to mask the dead agent")
	}
	fmt.Println("two-way replication masked the failure completely")
	_ = remote.StatusOK // keep the wire-protocol package linked for docs

	if *runChaos {
		chaosDemo()
	}
}

// chaosDemo drives a fresh TCP cluster through scripted faults on virtual
// time: the wire moves real bytes, while failure timing, fault decisions
// and latency accounting replay bit-identically from the seed.
func chaosDemo() {
	fmt.Println("\n--- chaos harness over TCP (deterministic fault injection) ---")
	cfg := chaos.Config{Agents: 4, Ops: 2000, Pages: 128, Seed: 42}
	var inner []remote.Transport
	for i := 0; i < cfg.Agents; i++ {
		agent := leap.NewRemoteAgent(16, 0)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		go agent.Serve(l) //nolint:errcheck // closed at exit
		tr, err := remote.DialTCP(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		inner = append(inner, tr)
	}
	cluster, err := chaos.NewWithTransports(cfg, inner)
	if err != nil {
		log.Fatal(err)
	}
	// Partition agent 1, heal, repair; then a 30% flaky-write window on
	// agent 2 (stale-replica divergence), ended by a repair barrier.
	text := `
2ms partition 1
5ms heal 1
5.20ms repair
7ms flaky 2 0.3
10ms endflaky 2
10.20ms repair
`
	sched, err := chaos.Parse("tcp-demo", text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule:\n%s", sched)
	rep, err := cluster.Run(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", rep)
	if rep.Violations() != 0 {
		log.Fatal("chaos run violated the acked-write invariants")
	}
	fmt.Println("chaos run complete: zero acked-write losses, replication restored")
}
