// Remoteswap: stand up three remote-memory agents over real TCP loopback
// connections, then open a leap.Memory on top of them — the unified runtime
// paging real bytes over the wire. The demo writes a working set several
// times the local budget (evictions stream out through the async ticket
// engine's doorbell-batched frames), reads it back with Leap prefetching
// ahead of the fault stream, kills an agent and watches the runtime ride
// replica failover, then adds a fourth agent and rebalances only its
// rendezvous share of slabs. This is the §4.4–4.5 substrate under the §4.1–
// 4.3 fault path, moving real bytes.
//
// With -chaos, the demo then runs the deterministic chaos harness over a
// fresh four-agent TCP cluster: a scripted partition and a flaky-write
// window with repair in between, model-checked for zero acked-write loss.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"leap"
	"leap/internal/chaos"
	"leap/internal/remote"
)

func main() {
	runChaos := flag.Bool("chaos", false, "after the demo, run a chaos schedule over a TCP cluster")
	flag.Parse()
	// Start three agents on ephemeral loopback ports, each donating 64
	// slabs of 256 pages (64MB each).
	var transports []leap.RemoteTransport
	var listeners []net.Listener
	for i := 0; i < 3; i++ {
		agent := leap.NewRemoteAgent(256, 64)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners = append(listeners, l)
		go agent.Serve(l) //nolint:errcheck // closed at exit
		tr, err := leap.DialRemoteAgent(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		transports = append(transports, tr)
		fmt.Printf("agent %d listening on %s (64MB donated)\n", i, l.Addr())
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()

	host, err := leap.NewRemoteHost(leap.RemoteHostConfig{
		SlabPages:  256,
		Replicas:   2,
		QueueDepth: 16, // up to 16 pages per doorbell frame
		Seed:       42,
	}, transports)
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	// The unified runtime over the TCP cluster: 256 local frames (1MB),
	// everything else remote, Leap prefetching on the fault path.
	mem, err := leap.Open(
		leap.WithRemoteHost(host),
		leap.WithCacheCapacity(256),
		leap.WithQueueDepth(16),
		leap.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer mem.Close()

	// Write 2048 pages (8MB) — 8× the local budget, so evictions page out
	// through the async ticket engine as batched wire frames.
	fmt.Println("\nwriting 2048 pages through the runtime (8x the local budget)...")
	buf := make([]byte, leap.RemotePageSize)
	for p := int64(0); p < 2048; p++ {
		for i := range buf {
			buf[i] = byte(p) ^ byte(i)
		}
		if _, err := mem.WriteAt(buf, p*leap.RemotePageSize); err != nil {
			log.Fatalf("write page %d: %v", p, err)
		}
	}
	if err := mem.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	st := mem.Stats()
	fmt.Printf("slab load per agent (rendezvous hashing): %v\n", host.SlabLoad())
	fmt.Printf("batched frames: %d carrying %d pages (%.1f pages/doorbell)\n",
		st.Host.BatchCalls, st.Host.BatchedPages,
		float64(st.Host.BatchedPages)/float64(max(st.Host.BatchCalls, 1)))

	// Read back and verify: Leap prefetches the sequential fault stream
	// over the real wire.
	for p := int64(0); p < 2048; p++ {
		data, err := mem.Get(leap.PageID(p))
		if err != nil {
			log.Fatalf("read page %d: %v", p, err)
		}
		if data[17] != byte(p)^17 {
			log.Fatalf("page %d corrupted", p)
		}
	}
	st = mem.Stats()
	fmt.Printf("all 2048 pages verified over TCP: hit ratio %.1f%%, accuracy %.1f%%, p50 %v\n",
		100*st.HitRatio, 100*st.Accuracy, st.Latency.P50)

	// Fail one agent: the runtime must keep serving via replicas.
	fmt.Println("\nkilling agent 0; rereading everything through the runtime...")
	listeners[0].Close()
	transports[0].Close()
	for p := int64(0); p < 2048; p++ {
		data, err := mem.Get(leap.PageID(p))
		if err != nil {
			log.Fatalf("read page %d with dead agent: %v", p, err)
		}
		if data[17] != byte(p)^17 {
			log.Fatalf("page %d corrupted after failover", p)
		}
	}
	fmt.Printf("failovers served by replicas: %d — replication masked the dead agent\n",
		mem.Stats().Host.Failovers)

	// Mark the dead agent failed, then grow the pool: a fourth agent joins
	// and Rebalance migrates exactly the slabs whose rendezvous ranking it
	// now wins — reusing the repair copy machinery — instead of reshuffling
	// the world.
	fmt.Println("\nmarking agent 0 failed and adding agent 3...")
	if err := host.MarkFailed(0); err != nil {
		log.Fatal(err)
	}
	agent3 := leap.NewRemoteAgent(256, 64)
	l3, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	listeners = append(listeners, l3)
	go agent3.Serve(l3) //nolint:errcheck // closed at exit
	tr3, err := leap.DialRemoteAgent(l3.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	idx := host.AddAgent(tr3)
	moved, err := host.Rebalance()
	if err != nil {
		log.Fatalf("rebalance: %v", err)
	}
	fmt.Printf("agent %d joined on %s; rebalance moved %d of %d slabs (the failed agent's share + the newcomer's wins)\n",
		idx, l3.Addr(), moved, st.Host.SlabsMapped)
	fmt.Printf("slab load per agent after rebalance: %v\n", host.SlabLoad())
	for p := int64(0); p < 2048; p++ {
		data, err := mem.Get(leap.PageID(p))
		if err != nil {
			log.Fatalf("read page %d after rebalance: %v", p, err)
		}
		if data[17] != byte(p)^17 {
			log.Fatalf("page %d corrupted after rebalance", p)
		}
	}
	fmt.Println("all 2048 pages verified again after rebalance")
	_ = remote.StatusOK // keep the wire-protocol package linked for docs

	if *runChaos {
		chaosDemo()
	}
}

// chaosDemo drives a fresh TCP cluster through scripted faults on virtual
// time: the wire moves real bytes, while failure timing, fault decisions
// and latency accounting replay bit-identically from the seed.
func chaosDemo() {
	fmt.Println("\n--- chaos harness over TCP (deterministic fault injection) ---")
	cfg := chaos.Config{Agents: 4, Ops: 2000, Pages: 128, Seed: 42}
	var inner []remote.Transport
	for i := 0; i < cfg.Agents; i++ {
		agent := leap.NewRemoteAgent(16, 0)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		go agent.Serve(l) //nolint:errcheck // closed at exit
		tr, err := remote.DialTCP(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		inner = append(inner, tr)
	}
	cluster, err := chaos.NewWithTransports(cfg, inner)
	if err != nil {
		log.Fatal(err)
	}
	// Partition agent 1, heal, repair; then a 30% flaky-write window on
	// agent 2 (stale-replica divergence), ended by a repair barrier.
	text := `
2ms partition 1
5ms heal 1
5.20ms repair
7ms flaky 2 0.3
10ms endflaky 2
10.20ms repair
`
	sched, err := chaos.Parse("tcp-demo", text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule:\n%s", sched)
	rep, err := cluster.Run(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", rep)
	if rep.Violations() != 0 {
		log.Fatal("chaos run violated the acked-write invariants")
	}
	fmt.Println("chaos run complete: zero acked-write losses, replication restored")
}
