package leap

import (
	"testing"

	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// traceGen replays a fixed page sequence with zero think time, so the
// simulator sees exactly the accesses the Memory runtime will make.
type traceGen struct {
	pages []core.PageID
	i     int
}

func (g *traceGen) Name() string       { return "trace" }
func (g *traceGen) Pages() int64       { return 1 << 20 }
func (g *traceGen) AccessesPerOp() int { return 1 }
func (g *traceGen) Next() workload.Access {
	a := g.pages[g.i%len(g.pages)]
	g.i++
	return workload.Access{Page: a}
}

// parityTrace mixes the phases that drive the window through its whole
// life cycle: a long sequential run (growth to PWsizemax), a stride run
// (trend change), and a pseudo-random burst (smooth shrink to suspension),
// then sequential again (recovery).
func parityTrace() []core.PageID {
	var tr []core.PageID
	for i := 0; i < 1500; i++ {
		tr = append(tr, core.PageID(i))
	}
	for i := 0; i < 1500; i++ {
		tr = append(tr, core.PageID(100000+i*10))
	}
	rnd := uint64(12345)
	for i := 0; i < 800; i++ {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		tr = append(tr, core.PageID(rnd%(1<<19)))
	}
	for i := 0; i < 1200; i++ {
		tr = append(tr, core.PageID(500000+i))
	}
	return tr
}

// TestMemoryMatchesSimulator is the unification gate: the Memory runtime
// and the simulator share internal/paging, so one access trace at one seed
// must produce identical prefetch decisions — equal fault-path counters,
// equal accuracy and coverage, and bit-identical per-process predictor
// statistics.
func TestMemoryMatchesSimulator(t *testing.T) {
	const seed = 77
	const limit = 256
	trace := parityTrace()

	// Simulator run: one PID-0 process (so global swap addresses equal raw
	// page numbers), lean path + eager eviction + Leap — the exact stack
	// Open builds.
	simPf := prefetch.NewLeap(core.Config{})
	m, res, err := vmm.Run(vmm.Config{
		Path:        datapath.Config{Kind: datapath.Lean},
		CachePolicy: pagecache.EvictEager,
		Prefetcher:  simPf,
		Seed:        seed,
	}, []vmm.App{{PID: 0, Gen: &traceGen{pages: trace}, LimitPages: limit}},
		0, int64(len(trace)))
	if err != nil {
		t.Fatal(err)
	}

	// Runtime run: same seed, same budget, same prefetcher configuration,
	// depth 1 (the simulator run above is unbatched).
	memPf := NewLeapPrefetcher(PredictorConfig{})
	mem, err := Open(WithSeed(seed), WithCacheCapacity(limit),
		WithQueueDepth(1), WithPrefetcher(memPf))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	for _, pg := range trace {
		if _, err := mem.Get(pg); err != nil {
			t.Fatal(err)
		}
	}

	st := mem.Stats()
	if st.Faults != res.Faults {
		t.Errorf("faults: memory %d, simulator %d", st.Faults, res.Faults)
	}
	if st.ResidentHits != res.ResidentHits {
		t.Errorf("resident hits: memory %d, simulator %d", st.ResidentHits, res.ResidentHits)
	}
	if st.Misses != res.CacheMisses {
		t.Errorf("misses: memory %d, simulator %d", st.Misses, res.CacheMisses)
	}
	if st.PrefetchIssued != res.PrefetchIssued {
		t.Errorf("prefetch issued: memory %d, simulator %d", st.PrefetchIssued, res.PrefetchIssued)
	}
	if got, want := st.InflightHits, m.Counters().Get("inflight_hits"); got != want {
		t.Errorf("inflight hits: memory %d, simulator %d", got, want)
	}
	if got, want := st.CacheHits, m.Counters().Get("cache_hits"); got != want {
		t.Errorf("cache hits: memory %d, simulator %d", got, want)
	}
	if st.Accuracy != res.Accuracy {
		t.Errorf("accuracy: memory %.6f, simulator %.6f", st.Accuracy, res.Accuracy)
	}
	if st.Coverage != res.Coverage {
		t.Errorf("coverage: memory %.6f, simulator %.6f", st.Coverage, res.Coverage)
	}

	// The strongest form of "same decisions": the two predictors saw the
	// same faults, votes, window transitions and candidate counts.
	simStats := simPf.ProcessStats()[prefetch.PID(0)]
	memStats := memPf.ProcessStats()[prefetch.PID(0)]
	if simStats != memStats {
		t.Errorf("predictor stats diverged:\nsimulator %+v\nmemory    %+v", simStats, memStats)
	}
}

// TestMemoryWindowAdaptation asserts NoteHit-driven PWsize behaviour
// through the real fault path: growth to the cap during a hit-rich
// sequential phase, smooth shrink to suspension on random traffic, and the
// transition counters that prove both happened.
func TestMemoryWindowAdaptation(t *testing.T) {
	lp := NewLeapPrefetcher(PredictorConfig{})
	mem, err := Open(WithSeed(21), WithCacheCapacity(128), WithPrefetcher(lp))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	for pg := PageID(0); pg < 1000; pg++ {
		if _, err := mem.Get(pg); err != nil {
			t.Fatal(err)
		}
	}
	pred := lp.ProcessStats()[prefetch.PID(0)]
	if pred.WindowGrowths == 0 {
		t.Fatal("sequential phase produced no window growth")
	}
	// Reach into the live predictor: the window must have hit PWsizemax.
	win := lp.Predictor(0).Window()
	if win != core.DefaultMaxPrefetchWindow {
		t.Fatalf("window after sequential phase = %d, want %d", win, core.DefaultMaxPrefetchWindow)
	}

	rnd := uint64(7)
	for i := 0; i < 600; i++ {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		if _, err := mem.Get(PageID(rnd % (1 << 30))); err != nil {
			t.Fatal(err)
		}
	}
	after := lp.ProcessStats()[prefetch.PID(0)]
	if after.WindowShrinks <= pred.WindowShrinks {
		t.Fatal("random phase produced no window shrink")
	}
	if after.Suspended == 0 {
		t.Fatal("random phase never suspended prefetching")
	}
	if got := lp.Predictor(0).Window(); got > 1 {
		t.Fatalf("window after random phase = %d, want <= 1", got)
	}
}
