package leap

import (
	"fmt"
	"os"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leap/internal/chaos"
	"leap/internal/core"
	"leap/internal/load"
	"leap/internal/prefetch"
	"leap/internal/remote"
	"leap/internal/runtime"
	"leap/internal/sim"
)

// TestMemoryConcurrentStress is the race-enabled stress gate: N goroutines
// × M clients hammer ReadAt/WriteAt/Get over a live in-proc cluster through
// per-client handles, with stamped pages verified as they are read
// (read-your-writes inside each client's program order) and the final image
// checked against the per-client oracles. Run it under `go test -race`.
func TestMemoryConcurrentStress(t *testing.T) {
	cfg := load.Config{Clients: 8, Goroutines: 8, OpsPerClient: 1500, PagesPerClient: 96, Seed: 41}
	if testing.Short() {
		cfg.Clients, cfg.Goroutines, cfg.OpsPerClient = 4, 4, 600
	}
	mem, err := Open(WithSeed(17), WithCacheCapacity(128), WithQueueDepth(8), WithConcurrency(cfg.Goroutines))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	res, err := load.Drive(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	st := mem.Stats()
	if want := int64(cfg.Clients) * int64(cfg.OpsPerClient); st.Accesses != want {
		t.Errorf("accesses %d, want exactly %d (one page touch per op, none lost or duplicated)", st.Accesses, want)
	}
	if st.Faults == 0 || st.Host.Reads == 0 || st.Host.Writes == 0 {
		t.Errorf("stress run produced no remote traffic: %+v", st)
	}
	if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryConcurrentStressSharedPages raises single-flight pressure: every
// client's reads range over one narrow shared region while a dedicated
// writer mutates its own slice of it, so concurrent faults pile onto the
// same pages and exercise the demand-fetch dedup path.
func TestMemoryConcurrentStressSharedPages(t *testing.T) {
	cfg := load.Config{Clients: 8, Goroutines: 8, OpsPerClient: 1200, PagesPerClient: 24, Seed: 43}
	if testing.Short() {
		cfg.Clients, cfg.Goroutines, cfg.OpsPerClient = 4, 4, 500
	}
	// A tiny budget versus the span keeps almost every access faulting.
	mem, err := Open(WithSeed(29), WithCacheCapacity(48), WithQueueDepth(8), WithConcurrency(cfg.Goroutines))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	res, err := load.Drive(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
		t.Fatal(err)
	}
}

// runReadYourWritesCase executes one seeded property case: a deterministic
// pseudo-random interleave of the per-client streams over a fresh runtime
// whose shape (cache budget, queue depth, concurrency bound) also derives
// from the seed. Every read is verified as it happens (read-your-writes);
// the final image must match the sequential oracle replay.
func runReadYourWritesCase(t *testing.T, seed uint64) {
	t.Helper()
	qdepths := []int{1, 2, 8}
	concs := []int{1, 2, 8}
	mem, err := Open(
		WithSeed(seed*0x9E3779B97F4A7C15+1),
		WithCacheCapacity(64+int(seed%3)*96),
		WithQueueDepth(qdepths[seed%uint64(len(qdepths))]),
		WithConcurrency(concs[(seed/3)%uint64(len(concs))]),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	cfg := load.Config{Clients: 3, OpsPerClient: 250, PagesPerClient: 48, Seed: seed}
	res, err := load.Sequential(mem, cfg)
	if err == nil {
		err = mem.Flush()
	}
	if err == nil {
		err = load.VerifyFinal(mem, cfg, res.Streams)
	}
	if err != nil {
		t.Fatalf("case seed %#x: %v\nreplay with LEAP_SEED=%#x go test -run TestMemoryReadYourWritesProperty",
			seed, err, seed)
	}
}

// TestMemoryReadYourWritesProperty is the seeded-schedule property test:
// per page, every read observes the latest completed write from its client,
// and the final state matches a sequential oracle replay. A failure prints
// its case seed; replay exactly that case with LEAP_SEED=<seed>.
func TestMemoryReadYourWritesProperty(t *testing.T) {
	if env := os.Getenv("LEAP_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("bad LEAP_SEED: %v", err)
		}
		runReadYourWritesCase(t, seed)
		return
	}
	cases := 40
	if testing.Short() {
		cases = 12
	}
	for i := 0; i < cases; i++ {
		runReadYourWritesCase(t, 0x5EED<<16|uint64(i))
	}
}

// TestConcurrencyOneMatchesPR4 is the depth-style parity gate for the
// concurrent runtime: one client on one goroutine — through a Client handle
// on a Memory with the concurrent fetch window wide open — must make
// decisions identical to the strictly serialized runtime
// (WithConcurrency(1), the pre-concurrency execution order) on a shared
// trace: equal fault-path counters, equal latency accounting, equal host
// traffic, and bit-identical predictor statistics.
func TestConcurrencyOneMatchesPR4(t *testing.T) {
	const seed = 137
	trace := parityTrace()

	run := func(conc int, drive func(*Memory, PageID) error) (MemoryStats, map[prefetch.PID]core.Stats) {
		t.Helper()
		lp := NewLeapPrefetcher(PredictorConfig{})
		mem, err := Open(WithSeed(seed), WithCacheCapacity(256),
			WithQueueDepth(8), WithConcurrency(conc), WithPrefetcher(lp))
		if err != nil {
			t.Fatal(err)
		}
		defer mem.Close()
		for _, pg := range trace {
			if err := drive(mem, pg); err != nil {
				t.Fatal(err)
			}
		}
		return mem.Stats(), lp.ProcessStats()
	}

	// Serialized runtime, driven through Memory's own methods (client 0).
	serial, serialPred := run(1, func(m *Memory, pg PageID) error {
		_, err := m.Get(pg)
		return err
	})
	// Concurrent runtime, driven through a Client handle on one goroutine.
	client := (*MemoryClient)(nil)
	concurrent, concPred := run(runtime.DefaultConcurrency, func(m *Memory, pg PageID) error {
		if client == nil || client.Memory() != m {
			client = m.Client(0)
		}
		_, err := client.Get(pg)
		return err
	})

	if serial != concurrent {
		t.Errorf("stats diverged:\nserialized %+v\nconcurrent %+v", serial, concurrent)
	}
	if len(serialPred) != len(concPred) {
		t.Fatalf("predictor population diverged: %d vs %d", len(serialPred), len(concPred))
	}
	for pid, st := range serialPred {
		if cst, ok := concPred[pid]; !ok || cst != st {
			t.Errorf("predictor %d stats diverged:\nserialized %+v\nconcurrent %+v", pid, st, cst)
		}
	}
	if concurrent.DemandWaits != 0 {
		t.Errorf("single-goroutine run recorded %d demand waits", concurrent.DemandWaits)
	}
}

// chaosCrashRepairScenario runs the PR-2 crash-restart chaos scenario
// against the concurrent runtime while the stress load is live: the
// schedule's virtual-time offsets map onto operation-count thresholds, so
// mid-load an agent crashes (memory wiped), the host repairs onto
// survivors, the agent rejoins empty and is repaired onto again — with
// four goroutines faulting throughout. Every client must finish without an
// error (a watchdog catches deadlock), no acked write may be lost, and
// replication must be fully restored. extra options layer on top of the
// base configuration (the sharded variant passes WithShards).
func chaosCrashRepairScenario(t *testing.T, extra ...Option) {
	t.Helper()
	const agents = 4
	cfg := load.Config{Clients: 4, Goroutines: 4, OpsPerClient: 1200, PagesPerClient: 64, Seed: 53}
	if testing.Short() {
		cfg.OpsPerClient = 500
	}
	totalOps := int64(cfg.Clients) * int64(cfg.OpsPerClient)

	rng := sim.NewRNG(97)
	agentObjs := make([]*remote.Agent, agents)
	faults := make([]*remote.FaultTransport, agents)
	transports := make([]RemoteTransport, agents)
	for i := range transports {
		agentObjs[i] = remote.NewAgent(64, 0)
		faults[i] = remote.NewFaultTransport(i, remote.NewInProc(agentObjs[i]), rng.Fork(uint64(i)))
		transports[i] = faults[i]
	}
	host, err := NewRemoteHost(RemoteHostConfig{
		SlabPages: 64, Replicas: 2, QueueDepth: 8, Seed: 23,
	}, transports)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	mem, err := Open(append([]Option{WithRemoteHost(host), WithSeed(67), WithCacheCapacity(64),
		WithQueueDepth(8), WithConcurrency(cfg.Goroutines)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	// The schedule: PR 2's crash-restart scenario shape in the chaos
	// harness's schedule format, its "virtual-time" offsets reinterpreted
	// as operation counts (1ns ≡ 1 op). The crash→repair window is widened
	// versus the Library scaling so real-time jitter in when workers cross
	// a threshold cannot collapse it.
	schedText := fmt.Sprintf("# crash-restart, op-count scaled\n%dns crash 0\n%dns repair\n%dns restart 0\n%dns repair\n",
		totalOps*15/100, totalOps*45/100, totalOps*65/100, totalOps*75/100)
	sched, err := chaos.Parse("crash-restart-ops", schedText)
	if err != nil {
		t.Fatal(err)
	}

	// Workers gate on the next un-applied event's op threshold: without the
	// gate, a scheduling hiccup can let the load finish before an event
	// fires, collapsing the fault window to nothing. With it, every event
	// lands at its exact operation count no matter how goroutines are
	// scheduled, while the ops inside a window still interleave freely.
	var opCount atomic.Int64
	var nextTrigger atomic.Int64
	if len(sched.Events) > 0 {
		nextTrigger.Store(int64(sched.Events[0].At))
	} else {
		nextTrigger.Store(1 << 62)
	}
	streams := make([]*load.Stream, cfg.Clients)
	for i := range streams {
		streams[i] = load.NewStream(i, cfg)
	}
	errCh := make(chan error, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			io := mem.Client(c)
			s := streams[c]
			for !s.Done() {
				for opCount.Load() >= nextTrigger.Load() {
					goruntime.Gosched() // hold for the pending chaos event
				}
				if err := s.Step(io); err != nil {
					errCh <- err
					return
				}
				opCount.Add(1)
			}
		}(c)
	}

	// The schedule names agent 0; remap its victim to whichever agent holds
	// the most slabs when the crash fires, so the fault always bites real
	// placements (with only a handful of slabs, rendezvous skew can leave a
	// fixed index empty).
	victim := -1
	remap := func(a int) int {
		if a == 0 && victim >= 0 {
			return victim
		}
		return a
	}
	apply := func(e chaos.Event) {
		switch e.Kind {
		case chaos.Crash:
			if e.Agent == 0 && victim < 0 {
				victim = 0
				best := -1
				for i, n := range host.SlabLoad() {
					if n > best {
						victim, best = i, n
					}
				}
			}
			a := remap(e.Agent)
			faults[a].SetMode(remote.FaultMode{Crashed: true})
			if err := host.MarkFailed(a); err != nil {
				t.Error(err)
			}
		case chaos.Restart:
			a := remap(e.Agent)
			agentObjs[a].Reset()
			if _, err := host.PurgeAgent(a); err != nil {
				t.Error(err)
			}
			if err := host.MarkRecovered(a); err != nil {
				t.Error(err)
			}
			faults[a].SetMode(remote.FaultMode{})
		case chaos.Repair:
			if _, err := host.RepairSlabs(); err != nil {
				t.Error(err)
			}
		default:
			t.Fatalf("scenario used unexpected event kind %v", e.Kind)
		}
	}

	// Fire each event once the load reaches its operation threshold (the
	// worker gate guarantees the load pauses there until the event is
	// applied). A watchdog bounds the whole run (deadlock guard).
	deadline := time.Now().Add(120 * time.Second)
	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	loadDone := func() bool {
		select {
		case <-joined:
			return true
		default:
			return false
		}
	}
	for i, e := range sched.Events {
		trigger := int64(e.At)
		for opCount.Load() < trigger && !loadDone() {
			if time.Now().After(deadline) {
				t.Fatalf("deadlock: load stalled at %d/%d ops", opCount.Load(), totalOps)
			}
			goruntime.Gosched()
		}
		apply(e)
		if i+1 < len(sched.Events) {
			nextTrigger.Store(int64(sched.Events[i+1].At))
		} else {
			nextTrigger.Store(1 << 62)
		}
	}
	for !loadDone() {
		if time.Now().After(deadline) {
			t.Fatalf("deadlock: load stalled at %d/%d ops after all events", opCount.Load(), totalOps)
		}
		time.Sleep(time.Millisecond)
	}
	close(errCh)
	for err := range errCh {
		t.Errorf("client error during chaos: %v", err)
	}

	// Final barrier: replication restored, nothing acked lost, every byte
	// the clients wrote reads back through the fault path.
	if _, err := host.RepairSlabs(); err != nil {
		t.Fatal(err)
	}
	if n := host.UnderReplicated(); n != 0 {
		t.Errorf("final repair left %d slabs under-replicated", n)
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := load.VerifyFinal(mem, cfg, streams); err != nil {
		t.Fatal(err)
	}
	// The chaos must have actually bitten: either a read failed over past
	// the dead agent, or calls reached it and were failed by injection.
	// (Which of the two depends on how tight the crash→repair window fell:
	// after repair extends the acked sets, reads route around the corpse
	// without an attempt, so failovers alone are timing-dependent.)
	_, injected := faults[remap(0)].Stats()
	if st := host.Stats(); st.Failovers == 0 && injected == 0 {
		t.Errorf("crash window left no trace (no failovers, no injected failures): %+v", st)
	}
}

// TestMemoryConcurrentChaosCrashRepair runs the crash-restart chaos
// scenario on the default (single-stripe) runtime.
func TestMemoryConcurrentChaosCrashRepair(t *testing.T) { chaosCrashRepairScenario(t) }

// TestMemoryShardedChaosCrashRepair replays the crash-restart chaos
// scenario against a sharded Memory (4 stripes): agent crash, repair and
// rejoin land while four goroutines fault across all stripes, so failover
// and purge interleave with every shard's lock — exercising the shard.mu →
// host.mu ordering under failure. The deadlock watchdog turns a lock-order
// violation into a stack dump instead of a silent test-binary timeout.
func TestMemoryShardedChaosCrashRepair(t *testing.T) {
	wd := deadlockWatchdog(150 * time.Second)
	defer wd.Stop()
	chaosCrashRepairScenario(t, WithShards(4))
}
