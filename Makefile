GO ?= go

.PHONY: all build vet test bench smoke figures

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Record the benchmark baseline to BENCH_1.json (see scripts/bench.sh).
bench:
	scripts/bench.sh

# Quick end-to-end check: one figure at test scale.
smoke:
	$(GO) run ./cmd/leapbench -scale small -fig 1

# Regenerate every figure and table at full scale.
figures:
	$(GO) run ./cmd/leapbench
