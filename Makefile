GO ?= go

# Markdown files whose links (and godoc-bearing packages) the docs gates
# cover.
DOCS = README.md DESIGN.md EXPERIMENTS.md PAPER_MAP.md \
       examples/quickstart/README.md examples/remoteswap/README.md \
       examples/multitenant/README.md examples/kvcache/README.md \
       examples/graphanalytics/README.md

.PHONY: all build vet test bench bench-check bench-check-recorded smoke runtime-smoke concurrency-smoke shard-smoke elastic-smoke selfheal-smoke ztier-smoke ensemble-smoke figures docs-check links-check

all: vet build test docs-check links-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Record the benchmark baseline to BENCH_1.json (see scripts/bench.sh).
bench:
	scripts/bench.sh

# Regression gate: A/B the gated hot-path benchmarks — baseline ref
# (BENCH_AB_BASE, default HEAD~1) in a throwaway worktree vs the working
# tree, both on THIS machine — and fail on >15% ns/op growth, any
# allocs/op increase, or any allocation on the Memory hit paths
# (scripts/bench_ab.sh).
bench-check:
	scripts/bench_ab.sh

# The old recorded-baseline gate: rerun the headline benchmarks and diff
# against BENCH_1.json. Only meaningful on the machine that recorded the
# baseline; bench-check (A/B at HEAD) is the portable gate.
bench-check-recorded:
	$(GO) test -run '^$$' -benchmem -count 1 -benchtime 2s \
	  -bench 'BenchmarkSimulatorThroughput$$|BenchmarkPredictorFaultPath$$' . \
	  | python3 scripts/bench2json.py > /tmp/leap_bench_fresh.json
	python3 scripts/bench_compare.py BENCH_1.json /tmp/leap_bench_fresh.json

# Quick end-to-end check: one figure at test scale.
smoke:
	$(GO) run ./cmd/leapbench -scale small -fig 1

# Runtime smoke: the end-to-end leap.Memory figure must be byte-identical
# across two runs (real bytes over the in-proc cluster included), and the
# shared fault-path engine must be race-clean.
runtime-smoke:
	$(GO) run ./cmd/leapbench -scale small -fig runtime | grep -v 'done in' > /tmp/leap_runtime_a.txt
	$(GO) run ./cmd/leapbench -scale small -fig runtime | grep -v 'done in' > /tmp/leap_runtime_b.txt
	diff /tmp/leap_runtime_a.txt /tmp/leap_runtime_b.txt
	$(GO) test -race . ./internal/paging/...

# Concurrency smoke: the multi-client figure must be byte-identical across
# two runs (its goroutine scaling is modeled from one deterministic pass;
# the wall-clock "  measured" block is stripped, as is its timing line),
# and the concurrent runtime must survive the race-enabled stress, property
# and chaos suites plus the 1-goroutine parity gate.
concurrency-smoke:
	$(GO) run ./cmd/leapbench -scale small -fig concurrency | grep -vE 'done in|^  measured' > /tmp/leap_conc_a.txt
	$(GO) run ./cmd/leapbench -scale small -fig concurrency | grep -vE 'done in|^  measured' > /tmp/leap_conc_b.txt
	diff /tmp/leap_conc_a.txt /tmp/leap_conc_b.txt
	$(GO) test -race -run 'TestMemoryConcurrent|TestMemoryReadYourWrites|TestConcurrencyOne' .

# Shard smoke: the sharded fault path end to end — the concurrency figure
# (now carrying the sharded measured block) must stay byte-identical
# outside the measured lines, and the shard suites (1-shard parity oracle,
# cross-shard invariant property, sharded stress/chaos/self-heal, the
# 0-alloc hit path) must pass under the race detector.
shard-smoke:
	$(GO) run ./cmd/leapbench -scale small -fig concurrency | grep -vE 'done in|^  measured' > /tmp/leap_shard_a.txt
	$(GO) run ./cmd/leapbench -scale small -fig concurrency | grep -vE 'done in|^  measured' > /tmp/leap_shard_b.txt
	diff /tmp/leap_shard_a.txt /tmp/leap_shard_b.txt
	$(GO) test -race -run 'TestSharded|TestMemorySharded|TestMemoryPlaneSelfHealsSharded' .

# Elastic smoke: the self-healing control-plane figure must be
# byte-identical across two runs (every detector/scaler decision replays
# from virtual time), and the control plane must be race-clean.
elastic-smoke:
	$(GO) run ./cmd/leapbench -scale small -fig elastic | grep -v 'done in' > /tmp/leap_elastic_a.txt
	$(GO) run ./cmd/leapbench -scale small -fig elastic | grep -v 'done in' > /tmp/leap_elastic_b.txt
	diff /tmp/leap_elastic_a.txt /tmp/leap_elastic_b.txt
	$(GO) test -race ./internal/control

# Selfheal smoke: the supervised-runtime figure (control plane wired into
# the live leap.Memory, faults injected mid-run) must be byte-identical
# across two runs, and the runtime+plane integration must be race-clean.
selfheal-smoke:
	$(GO) run ./cmd/leapbench -scale small -fig selfheal | grep -v 'done in' > /tmp/leap_selfheal_a.txt
	$(GO) run ./cmd/leapbench -scale small -fig selfheal | grep -v 'done in' > /tmp/leap_selfheal_b.txt
	diff /tmp/leap_selfheal_a.txt /tmp/leap_selfheal_b.txt
	$(GO) test -race -run 'TestMemoryPlaneSelfHeals|TestMemoryConcurrentSlowReplica|TestMemoryTransientOutageRecovers' .

# Ztier smoke: the compressed-victim-tier figure must be byte-identical
# across two runs (real page images travel through the codec and the
# compressed wire frames end to end), and the tier's seal/unseal machinery
# must survive the race-enabled stress, property and codec suites.
ztier-smoke:
	$(GO) run ./cmd/leapbench -scale small -fig ztier | grep -v 'done in' > /tmp/leap_ztier_a.txt
	$(GO) run ./cmd/leapbench -scale small -fig ztier | grep -v 'done in' > /tmp/leap_ztier_b.txt
	diff /tmp/leap_ztier_a.txt /tmp/leap_ztier_b.txt
	$(GO) test -race -run 'TestMemoryZtier|TestMemoryWireCompression' .
	$(GO) test -race ./internal/ztier

# Ensemble smoke: the online-selector ablation figure must be byte-identical
# across two runs (every epoch score, switch decision and shadow-set replay
# is deterministic from the seed), and the selector must survive the
# race-enabled stress suite, the one-arm parity oracle and the seeded
# advise/read-your-writes property.
ensemble-smoke:
	$(GO) run ./cmd/leapbench -scale small -fig ensemble | grep -v 'done in' > /tmp/leap_ensemble_a.txt
	$(GO) run ./cmd/leapbench -scale small -fig ensemble | grep -v 'done in' > /tmp/leap_ensemble_b.txt
	diff /tmp/leap_ensemble_a.txt /tmp/leap_ensemble_b.txt
	$(GO) test -race -run 'TestMemoryEnsemble|TestEnsembleOneArmMatchesFixed|TestMemoryAdvise' .
	$(GO) test -race -run 'TestEnsemble|TestShadowSet' ./internal/prefetch

# Regenerate every figure and table at full scale.
figures:
	$(GO) run ./cmd/leapbench

# Godoc gate: every exported symbol in every package must carry a doc
# comment (cmd/docscheck).
docs-check:
	$(GO) run ./cmd/docscheck . ./cmd/* ./examples/* ./internal/*

# Markdown link gate: relative links and anchors in the documentation set
# must resolve.
links-check:
	python3 scripts/check_links.py $(DOCS)
