package leap

import (
	"leap/internal/runtime"
	"leap/internal/sim"
)

// Memory is the byte-addressable remote-memory runtime: the paper's full
// stack fused into one client object. Local memory is a bounded set of page
// frames (the cgroup budget); everything beyond it lives on the remote
// substrate (RemoteHost: rendezvous-placed, replicated slabs reached over
// in-process or TCP transports). An access to a non-local page takes the
// same fault path as the simulator — the internal/paging engine shared with
// Simulate — so the majority-trend predictor watches the fault stream,
// prefetch windows go out to the real host through the async ticket engine
// (doorbell-batched wire frames), and the adaptive page cache decides
// eviction, while real page images move underneath.
//
// Build one with Open; drive it with ReadAt / WriteAt / Get; read the
// accounting with Stats. Memory is safe for concurrent use by arbitrary
// goroutines: one lock serializes the fault path, full misses overlap their
// remote fetches outside it (single-flight per page, bounded by
// WithConcurrency), and Client handles map logical clients onto their own
// predictors (§4.1 isolation) over the shared cache, budget and host.
type Memory = runtime.Memory

// MemoryClient is a per-client handle on a shared Memory: operations
// through it feed the client id's own predictor while cache, budget and
// host stay shared. Create handles with Memory.Client — one per goroutine;
// handles with equal ids share a predictor.
type MemoryClient = runtime.Client

// MemoryStats aggregates a Memory's fault-path accounting (hits, misses,
// accuracy, coverage, latency percentiles, host activity).
type MemoryStats = runtime.Stats

// Option configures Open.
type Option = runtime.Option

// Clock is a monotonically advancing virtual clock (zero value usable);
// share one with a Memory via WithClock to interleave test events with
// fault latencies deterministically.
type Clock = sim.Clock

// Open builds a Memory runtime. With no options it is the full Leap stack
// of the paper over a private in-process remote-memory cluster: lean data
// path, eager cache eviction, majority-trend prefetching, async
// doorbell-batched remote I/O.
func Open(opts ...Option) (*Memory, error) { return runtime.Open(opts...) }

// WithPrefetcher selects the prefetching policy consulted on every fault
// (default: the Leap majority-trend predictor). Build baselines with
// NewPrefetcher("readahead"), NewPrefetcher("none"), etc.
func WithPrefetcher(p Prefetcher) Option { return runtime.WithPrefetcher(p) }

// WithRemoteHost runs the Memory over an existing host — typically one
// dialed to TCP agents (cmd/leapagent). The caller keeps ownership: Close
// flushes but does not close it. Without this option Open builds a private
// three-agent in-process cluster with two-way replication.
func WithRemoteHost(h *RemoteHost) Option { return runtime.WithRemoteHost(h) }

// WithCacheCapacity sets the local memory budget in pages — the cgroup
// limit resident frames plus the prefetch cache are charged against
// (default 1024 pages = 4MB).
func WithCacheCapacity(pages int) Option { return runtime.WithCacheCapacity(pages) }

// WithQueueDepth bounds the async ticket engine's doorbell batches: up to
// this many page operations ride one wire frame per agent, and eviction
// writebacks accumulate behind a dirty backlog of the same bound (default
// 8; 1 degenerates to one synchronous round trip per page).
func WithQueueDepth(depth int) Option { return runtime.WithQueueDepth(depth) }

// WithConcurrency bounds how many demand-miss fetches may overlap outside
// the fault-path lock (default runtime.DefaultConcurrency). Size it to the
// number of goroutines driving the Memory; 1 serializes the fault path
// completely — a single-goroutine run makes identical decisions at every
// setting.
func WithConcurrency(n int) Option { return runtime.WithConcurrency(n) }

// WithClock shares a virtual clock with the runtime (for virtual-time
// tests: fault latencies are charged to it, so a test can interleave its
// own events deterministically). Default: a private clock starting at 0.
// A shared clock must not be touched while operations are in flight on
// other goroutines.
func WithClock(c *sim.Clock) Option { return runtime.WithClock(c) }

// WithSeed seeds the latency models (fabric jitter, data-path stage draws).
// Equal seeds and equal access sequences replay bit-identically.
func WithSeed(seed uint64) Option { return runtime.WithSeed(seed) }
