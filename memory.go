package leap

import (
	"leap/internal/control"
	"leap/internal/prefetch"
	"leap/internal/remote"
	"leap/internal/runtime"
	"leap/internal/sim"
)

// Memory is the byte-addressable remote-memory runtime: the paper's full
// stack fused into one client object. Local memory is a bounded set of page
// frames (the cgroup budget); everything beyond it lives on the remote
// substrate (RemoteHost: rendezvous-placed, replicated slabs reached over
// in-process or TCP transports). An access to a non-local page takes the
// same fault path as the simulator — the internal/paging engine shared with
// Simulate — so the majority-trend predictor watches the fault stream,
// prefetch windows go out to the real host through the async ticket engine
// (doorbell-batched wire frames), and the adaptive page cache decides
// eviction, while real page images move underneath.
//
// Build one with Open; drive it with ReadAt / WriteAt / Get; read the
// accounting with Stats. Memory is safe for concurrent use by arbitrary
// goroutines: one lock serializes the fault path, full misses overlap their
// remote fetches outside it (single-flight per page, bounded by
// WithConcurrency), and Client handles map logical clients onto their own
// predictors (§4.1 isolation) over the shared cache, budget and host.
type Memory = runtime.Memory

// MemoryClient is a per-client handle on a shared Memory: operations
// through it feed the client id's own predictor while cache, budget and
// host stay shared. Create handles with Memory.Client — one per goroutine;
// handles with equal ids share a predictor.
type MemoryClient = runtime.Client

// MemoryStats aggregates a Memory's fault-path accounting (hits, misses,
// accuracy, coverage, latency percentiles, host activity).
type MemoryStats = runtime.Stats

// Option configures Open.
type Option = runtime.Option

// Clock is a monotonically advancing virtual clock (zero value usable);
// share one with a Memory via WithClock to interleave test events with
// fault latencies deterministically.
type Clock = sim.Clock

// Duration is a span of virtual time (nanoseconds), the unit every latency
// and cadence knob in this package is expressed in.
type Duration = sim.Duration

// Open builds a Memory runtime. With no options it is the full Leap stack
// of the paper over a private in-process remote-memory cluster: lean data
// path, eager cache eviction, majority-trend prefetching, async
// doorbell-batched remote I/O.
func Open(opts ...Option) (*Memory, error) { return runtime.Open(opts...) }

// WithPrefetcher selects the prefetching policy consulted on every fault
// (default: the Leap majority-trend predictor). Build baselines with
// NewPrefetcher("readahead"), NewPrefetcher("none"), etc. A single shared
// instance only works on the serialized runtime — with WithShards beyond 1
// use WithPrefetcherFactory, which builds one instance per stripe.
func WithPrefetcher(p Prefetcher) Option { return runtime.WithPrefetcher(p) }

// WithPrefetcherFactory selects the prefetching policy by constructor: f is
// invoked once per fault-path stripe (once total at WithShards(1)), so every
// stripe owns a private instance and no predictor state is shared across
// shard locks. This is the sharded-runtime counterpart of WithPrefetcher.
func WithPrefetcherFactory(f func() Prefetcher) Option { return runtime.WithPrefetcherFactory(f) }

// EnsembleConfig tunes the WithEnsemble selector: the candidate arms (in
// priority order), the scoring epoch length in misses, the hysteresis
// margin and streak that debounce switching, the shadow window bounding
// parked counterfactual predictions, the pollution penalty in the score,
// and the per-client selection-history cap. The zero value of every field
// selects its documented default.
type EnsembleConfig = prefetch.EnsembleConfig

// MemoryEnsembleStats is the Stats.Ensemble block: clients tracked, epochs
// scored, selection switches taken, and cumulative regret (in prefetch
// hits) across all stripes.
type MemoryEnsembleStats = runtime.EnsembleStats

// Advice is an madvise-style access-pattern hint for MemoryClient.Advise:
// AdviseNormal, AdviseSequential, AdviseRandom declare sticky per-range
// patterns; AdviseWillNeed warms a range immediately.
type Advice = runtime.Advice

// Advice values for MemoryClient.Advise, mirroring madvise(2).
const (
	AdviseNormal     = runtime.AdviseNormal
	AdviseSequential = runtime.AdviseSequential
	AdviseRandom     = runtime.AdviseRandom
	AdviseWillNeed   = runtime.AdviseWillNeed
)

// SelectionEvent is one entry of MemoryClient.SelectionHistory: on stripe
// Shard, Arm took over at the client's Fault-th miss there.
type SelectionEvent = runtime.SelectionEvent

// WithEnsemble routes every client's prefetching through an online
// per-client selector over the named arms (default: leap, ghb, stride,
// readahead, nextnline). All arms observe each client's fault stream; only
// the current winner's predictions are issued, the rest run as shadows
// scored against later accesses, and the selection switches when a
// challenger sustainably out-scores the incumbent (hysteresis + streak).
// Selection is deterministic given the seed. Incompatible with
// WithPrefetcher and WithPrefetcherFactory; read the accounting from
// Stats.Ensemble and MemoryClient.SelectionHistory.
func WithEnsemble(cfg EnsembleConfig) Option { return runtime.WithEnsemble(cfg) }

// WithRemoteHost runs the Memory over an existing host — typically one
// dialed to TCP agents (cmd/leapagent). The caller keeps ownership: Close
// flushes but does not close it. Without this option Open builds a private
// three-agent in-process cluster with two-way replication.
func WithRemoteHost(h *RemoteHost) Option { return runtime.WithRemoteHost(h) }

// WithCacheCapacity sets the local memory budget in pages — the cgroup
// limit resident frames plus the prefetch cache are charged against
// (default 1024 pages = 4MB).
func WithCacheCapacity(pages int) Option { return runtime.WithCacheCapacity(pages) }

// WithQueueDepth bounds the async ticket engine's doorbell batches: up to
// this many page operations ride one wire frame per agent, and eviction
// writebacks accumulate behind a dirty backlog of the same bound (default
// 8; 1 degenerates to one synchronous round trip per page).
func WithQueueDepth(depth int) Option { return runtime.WithQueueDepth(depth) }

// WithConcurrency bounds how many demand-miss fetches may overlap outside
// the fault-path lock (default runtime.DefaultConcurrency). Size it to the
// number of goroutines driving the Memory; 1 serializes the fault path
// completely — a single-goroutine run makes identical decisions at every
// setting.
func WithConcurrency(n int) Option { return runtime.WithConcurrency(n) }

// WithShards splits the fault path into n PageID stripes (default 1;
// rounded up to a power of two), each with its own lock, predictor, page
// cache and residency budget, so page-cache hits on different stripes
// proceed in parallel — one shard lock per hit. Page pg lands on stripe
// pg mod n (round-robin striping). WithShards(1) is bit-identical to the
// serialized runtime; n beyond 1 is incompatible with WithPrefetcher, and
// WithCacheCapacity must supply at least one page per shard.
func WithShards(n int) Option { return runtime.WithShards(n) }

// WithClock shares a virtual clock with the runtime (for virtual-time
// tests: fault latencies are charged to it, so a test can interleave its
// own events deterministically). Default: a private clock starting at 0.
// A shared clock must not be touched while operations are in flight on
// other goroutines.
func WithClock(c *sim.Clock) Option { return runtime.WithClock(c) }

// WithSeed seeds the latency models (fabric jitter, data-path stage draws).
// Equal seeds and equal access sequences replay bit-identically.
func WithSeed(seed uint64) Option { return runtime.WithSeed(seed) }

// ControlConfig tunes the runtime's self-healing control plane (attach it
// with WithControlPlane): the per-agent failure detector, the autoscaler,
// and top-K hot-page replication. The zero value uses conservative
// defaults with the autoscaler off.
type ControlConfig = control.Config

// ControlDetectorConfig is the failure-detector portion of ControlConfig:
// EWMA latency/error thresholds for the healthy → suspect → failed walk,
// probation length, and the flap penalty.
type ControlDetectorConfig = control.DetectorConfig

// ControlScalerConfig is the autoscaler portion of ControlConfig: the
// fleet-size bounds, the latency bands that trigger growth and shrink, and
// the streak/cooldown lengths that debounce them. Zero Max disables
// scaling.
type ControlScalerConfig = control.ScalerConfig

// ControlPhase is one agent's detector state: healthy, suspect, failed or
// drained.
type ControlPhase = control.Phase

// ControlAction records one step the control plane took against the
// cluster — a detector transition, a scaling event, or a hot-replica
// change — with the host error if the step failed.
type ControlAction = control.Action

// MemoryControlStats is the Stats.Control block: the plane's view of the
// cluster and per-kind counts of the actions it has taken.
type MemoryControlStats = runtime.ControlStats

// RemoteRetryPolicy bounds retries, deadlines, backoff and hedging for the
// async ticket engine's page operations. The zero value reproduces the
// legacy unlimited-failover behavior bit-for-bit.
type RemoteRetryPolicy = remote.RetryPolicy

// WithControlPlane attaches a self-healing control plane to the Memory: a
// failure detector that routes around slow agents and excludes crashed
// ones (re-replicating their slabs), probation that brings healed agents
// back, an optional autoscaler that grows the private cluster under
// sustained latency pressure, and hot-page replicas driven by the fault
// stream. The plane ticks off the runtime clock; see WithControlInterval
// and Memory.TickControl. Without this option behavior is bit-identical
// to an unsupervised runtime.
func WithControlPlane(cfg ControlConfig) Option { return runtime.WithControlPlane(cfg) }

// WithControlInterval sets the control plane's tick cadence in virtual
// time (default runtime.DefaultControlInterval). Non-positive keeps the
// default.
func WithControlInterval(d Duration) Option { return runtime.WithControlInterval(d) }

// WithRetryPolicy bounds retries, deadlines, backoff and hedging in the
// private in-process cluster, with per-ticket deadlines read from the
// runtime clock. Incompatible with WithRemoteHost — a supplied host
// carries its own policy via RemoteHostConfig.Retry.
func WithRetryPolicy(p RemoteRetryPolicy) Option { return runtime.WithRetryPolicy(p) }

// MemoryZtierStats is the Stats.Ztier block: occupancy, hit/seal/overflow
// counts and the realized compression ratio of the compressed victim tier.
type MemoryZtierStats = runtime.ZtierStats

// WithCompressedTier inserts a zswap-style compressed victim tier between
// the residency LRU and the remote host, budgeted in bytes (split evenly
// across shards). Evicted dirty pages are sealed — compressed in local
// memory — instead of written back; a fault on a sealed page decompresses
// it locally at WithDecompressLatency cost instead of paying a fabric
// round trip. When the tier overflows, the coldest sealed pages are
// written back through the async engine. bytes <= 0 disables the tier
// (the default), which is bit-identical to the legacy runtime.
func WithCompressedTier(bytes int64) Option { return runtime.WithCompressedTier(bytes) }

// WithWireCompression ships the private cluster's batched doorbell frames
// with page images compressed end-to-end (deterministic block codec,
// stored-block fallback for incompressible pages). The savings surface in
// Stats.Host.WireRawBytes / WireCompressedBytes; simulated timings are
// unchanged. Incompatible with WithRemoteHost — set
// RemoteHostConfig.Compress on the supplied host instead.
func WithWireCompression(on bool) Option { return runtime.WithWireCompression(on) }

// WithDecompressLatency sets the virtual-time charge for decompressing a
// sealed page on a compressed-tier hit (default
// runtime.DefaultDecompressLatency). Non-positive keeps the default.
func WithDecompressLatency(d Duration) Option { return runtime.WithDecompressLatency(d) }
