package leap

import (
	"bytes"
	"fmt"
	goruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"leap/internal/control"
	"leap/internal/remote"
	"leap/internal/sim"
)

// TestMemoryTransientOutageRecovers pins the failed-demand-fetch unwind: a
// total outage makes Get return an error (not wedge), the virtual clock
// still advances by the fault's charged latency (the device model already
// ran), repeated attempts keep failing cleanly, and once the outage heals
// the very same page faults through with correct bytes. Read-path failures
// must not latch the Memory into a permanent error either: Flush stays nil
// throughout.
func TestMemoryTransientOutageRecovers(t *testing.T) {
	const agents = 2
	faults := make([]*remote.FaultTransport, agents)
	transports := make([]RemoteTransport, agents)
	for i := range transports {
		faults[i] = remote.NewFaultTransport(i, remote.NewInProc(remote.NewAgent(64, 0)), nil)
		transports[i] = faults[i]
	}
	host, err := NewRemoteHost(RemoteHostConfig{SlabPages: 64, Replicas: 2, Seed: 3}, transports)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	mem, err := Open(WithRemoteHost(host), WithSeed(11), WithCacheCapacity(16), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	buf := make([]byte, RemotePageSize)
	for pg := PageID(0); pg < 128; pg++ {
		fillPage(pg, buf)
		if _, err := mem.WriteAt(buf, int64(pg)*RemotePageSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}

	// Page 0 was evicted long ago (cache holds 16 frames); every replica is
	// now unreachable, so its demand fetch must fail — and keep failing —
	// while the clock keeps moving.
	for i := range faults {
		faults[i].SetMode(remote.FaultMode{Partitioned: true})
	}
	for attempt := 0; attempt < 3; attempt++ {
		before := mem.Now()
		if _, err := mem.Get(0); err == nil {
			t.Fatalf("attempt %d: Get(0) succeeded with every replica partitioned", attempt)
		} else if !strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("attempt %d: error %q does not name the page unreachable", attempt, err)
		}
		if mem.Now() <= before {
			t.Fatalf("attempt %d: clock did not advance across a failed fault", attempt)
		}
	}

	// Heal. The page was never mapped in, so the retry is a clean fault.
	for i := range faults {
		faults[i].SetMode(remote.FaultMode{})
	}
	got, err := mem.Get(0)
	if err != nil {
		t.Fatalf("Get(0) after heal: %v", err)
	}
	fillPage(0, buf)
	if !bytes.Equal(got, buf) {
		t.Fatal("page 0 corrupted after outage")
	}
	// The outage was read-only trouble: nothing may have latched.
	if err := mem.Flush(); err != nil {
		t.Fatalf("flush after read-only outage: %v", err)
	}
	st := mem.Stats()
	if st.Control.Enabled {
		t.Fatal("control stats enabled without WithControlPlane")
	}
}

// gateTransport wraps an agent transport for the head-of-line test: it can
// fail every batch read (so prefetch tickets error and are abandoned) and
// block the synchronous read of one specific page until released, while
// every other call passes straight through.
type gateTransport struct {
	inner remote.Transport

	mu        sync.Mutex
	failBatch bool
	blockSlab remote.SlabID
	blockOff  uint32
	blocking  bool
	arrived   chan struct{} // closed when the blocked read arrives
	release   chan struct{} // receiver unblocks when this closes
}

func (g *gateTransport) Call(req *remote.Request) (*remote.Response, error) {
	g.mu.Lock()
	failBatch, blocking := g.failBatch, g.blocking
	slab, off := g.blockSlab, g.blockOff
	arrived, release := g.arrived, g.release
	g.mu.Unlock()
	if failBatch && req.Op == remote.OpReadBatch {
		return nil, remote.ErrInjected
	}
	if blocking && req.Op == remote.OpRead && req.Slab == slab && req.PageOff == off {
		close(arrived)
		<-release
	}
	return g.inner.Call(req)
}

func (g *gateTransport) Close() error { return g.inner.Close() }

// TestMemoryConcurrentSlowReplica pins the head-of-line fix in the prefetch
// path: with one replica serving and batch reads failing, a demand fetch
// stuck on the wire must not hold the fault-path lock — other clients'
// faults proceed while it waits. Before the fix, fetchPrefetches retried
// failed tickets synchronously under the lock, so one slow agent stalled
// every client.
func TestMemoryConcurrentSlowReplica(t *testing.T) {
	gate := &gateTransport{
		arrived: make(chan struct{}),
		release: make(chan struct{}),
	}
	gate.inner = remote.NewInProc(remote.NewAgent(64, 0))
	host, err := NewRemoteHost(RemoteHostConfig{SlabPages: 64, Replicas: 1, Seed: 3},
		[]RemoteTransport{gate})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	mem, err := Open(WithRemoteHost(host), WithSeed(21), WithCacheCapacity(16),
		WithQueueDepth(4), WithConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	buf := make([]byte, RemotePageSize)
	for pg := PageID(0); pg < 128; pg++ {
		fillPage(pg, buf)
		if _, err := mem.WriteAt(buf, int64(pg)*RemotePageSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}

	// Arm the gate: batch reads fail, and the demand read of page 0 (slab 0,
	// offset 0) parks on the wire until released.
	gate.mu.Lock()
	gate.failBatch = true
	gate.blocking = true
	gate.mu.Unlock()

	slowDone := make(chan error, 1)
	go func() {
		_, err := mem.Client(1).Get(0)
		slowDone <- err
	}()
	<-gate.arrived // the demand fetch of page 0 is now stuck on the wire

	// A different client faults a page in another slab. If the stuck fetch
	// (or a synchronous prefetch retry) held the fault-path lock, this would
	// hang until the gate releases.
	fastDone := make(chan error, 1)
	go func() {
		_, err := mem.Client(2).Get(70)
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("concurrent Get(70): %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Get(70) blocked behind a stuck demand fetch: head-of-line regression")
	}

	close(gate.release)
	if err := <-slowDone; err != nil {
		t.Fatalf("blocked Get(0) after release: %v", err)
	}
	gate.mu.Lock()
	gate.failBatch = false
	gate.blocking = false
	gate.mu.Unlock()

	// Abandoned prefetch tickets were read failures: nothing latched, and
	// both pages carry the right bytes.
	if err := mem.Flush(); err != nil {
		t.Fatalf("flush after failed batch reads: %v", err)
	}
	for _, pg := range []PageID{0, 70} {
		got := make([]byte, RemotePageSize)
		if _, err := mem.ReadAt(got, int64(pg)*RemotePageSize); err != nil {
			t.Fatalf("read page %d: %v", pg, err)
		}
		fillPage(pg, buf)
		if !bytes.Equal(got, buf) {
			t.Fatalf("page %d corrupted", pg)
		}
	}
}

// planeSelfHealScenario is the end-to-end control-plane cycle over the
// live runtime's private cluster: a partitioned agent is detected and
// failed (slabs re-replicated), sustained slow-agent pressure makes the
// autoscaler provision a brand-new agent, probation brings the healed agent
// back, the pressure's end drains the extra capacity — and every byte ever
// acknowledged stays readable and correct throughout. extra options layer
// on top of the base configuration (the sharded variant passes WithShards).
func planeSelfHealScenario(t *testing.T, extra ...Option) {
	t.Helper()
	opts := []Option{
		WithControlPlane(ControlConfig{
			Detector: ControlDetectorConfig{
				// SuspectErr == FailErr: once suspected, the agent gets no
				// traffic, so its frozen error EWMA must clear the fail bar
				// on the next tick. Latency thresholds stay disabled — the
				// slow agent is the scaler's business here, not the
				// detector's.
				SuspectErr: 0.25,
				FailErr:    0.25,
			},
			Scaler: ControlScalerConfig{
				Min: 3, Max: 6,
				HighLat:   10 * sim.Microsecond,
				LowLat:    1 * sim.Microsecond,
				UpTicks:   2,
				Cooldown:  2,
				DownTicks: 3,
			},
		}),
		WithSeed(7), WithCacheCapacity(32), WithQueueDepth(4),
	}
	mem, err := Open(append(opts, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if mem.Plane() == nil {
		t.Fatal("WithControlPlane attached no plane")
	}

	trs := mem.Host().Transports()
	if len(trs) != 3 {
		t.Fatalf("private cluster has %d transports, want 3", len(trs))
	}
	ft1 := trs[1].(*remote.FaultTransport)
	ft2 := trs[2].(*remote.FaultTransport)

	// The working set spreads across 64 slabs (the private cluster's slabs
	// hold 1024 pages), so every agent serves a share of the traffic.
	pageAt := func(i int) PageID { return PageID((i%64)*1024 + i/64) }
	const pages = 256
	buf := make([]byte, RemotePageSize)
	for i := 0; i < pages; i++ {
		fillPage(pageAt(i), buf)
		if _, err := mem.WriteAt(buf, int64(pageAt(i))*RemotePageSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	// sweep keeps faults (and so per-agent observations) flowing: the cache
	// holds 32 frames against a 256-page set, so most Gets are misses.
	sweep := func() {
		for i := 0; i < pages; i++ {
			if _, err := mem.Get(pageAt(i)); err != nil {
				t.Fatalf("sweep Get(%d): %v", pageAt(i), err)
			}
		}
	}
	// round is one control period: traffic, then an explicit tick (the EWMAs
	// only fold ticks that saw calls).
	round := func() { sweep(); mem.TickControl() }
	until := func(what string, limit int, ok func() bool) {
		for r := 0; r < limit; r++ {
			if ok() {
				return
			}
			round()
		}
		if !ok() {
			t.Fatalf("%s did not happen within %d rounds (control=%+v)",
				what, limit, mem.Stats().Control)
		}
	}

	round()
	round() // a healthy baseline: phases all Healthy, no actions yet
	if st := mem.Stats().Control; !st.Enabled || st.Fails != 0 || st.Live != 3 {
		t.Fatalf("healthy baseline off: %+v", st)
	}

	// Partition agent 1: error pressure fails it within a few ticks, and the
	// fail action repairs replication on the survivors.
	ft1.SetMode(remote.FaultMode{Partitioned: true})
	until("agent 1 failed", 8, func() bool {
		return mem.Plane().AgentPhase(1) == control.Failed
	})
	if st := mem.Stats().Control; st.Fails < 1 || st.Suspects < 1 {
		t.Fatalf("detector cycle missing actions: %+v", st)
	}
	if n := mem.Host().UnderReplicated(); n != 0 {
		t.Fatalf("fail action left %d slabs under-replicated", n)
	}

	// Slow-ramp agent 2: the cluster's latency EWMA crosses HighLat and the
	// scaler provisions a brand-new agent into the live host.
	ft2.SetMode(remote.FaultMode{ExtraLatency: 50 * sim.Microsecond})
	until("scale-up", 10, func() bool { return mem.Host().Agents() > 3 })
	if st := mem.Stats().Control; st.ScaleUps < 1 {
		t.Fatalf("scaler never grew the pool: %+v", st)
	}

	// Heal the partition: probation probes the agent back to service.
	ft1.SetMode(remote.FaultMode{})
	until("agent 1 recovered", 20, func() bool {
		return mem.Plane().AgentPhase(1) == control.Healthy
	})
	if st := mem.Stats().Control; st.Recovers < 1 {
		t.Fatalf("probation never recovered the healed agent: %+v", st)
	}

	// Clear the slow agent: pressure decays and the scaler drains capacity.
	ft2.SetMode(remote.FaultMode{})
	until("scale-down", 40, func() bool {
		return mem.Stats().Control.ScaleDowns >= 1
	})

	// Zero acked-write loss across the whole episode.
	got := make([]byte, RemotePageSize)
	for i := 0; i < pages; i++ {
		fillPage(pageAt(i), buf)
		if _, err := mem.ReadAt(got, int64(pageAt(i))*RemotePageSize); err != nil {
			t.Fatalf("final read page %d: %v", pageAt(i), err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("final page %d corrupted", pageAt(i))
		}
	}
	st := mem.Stats()
	if err := mem.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if !st.Control.Enabled || st.Control.Ticks == 0 {
		t.Fatalf("control stats not live: %+v", st.Control)
	}
	if st.Control.Live < 3 {
		t.Fatalf("cluster ended with %d live agents, want >= 3", st.Control.Live)
	}
	if !strings.Contains(st.Control.Phases, "healthy") {
		t.Fatalf("phase string %q reports no healthy agent", st.Control.Phases)
	}
}

// TestMemoryPlaneSelfHeals runs the control-plane self-healing cycle on the
// default (single-stripe) runtime.
func TestMemoryPlaneSelfHeals(t *testing.T) { planeSelfHealScenario(t) }

// deadlockWatchdog arms a wall-clock timer that dumps every goroutine's
// stack and panics if the caller has not stopped it within d — turning a
// lock-order deadlock into a diagnosable failure instead of a test-binary
// timeout. Stop the returned timer when the scenario completes.
func deadlockWatchdog(d time.Duration) *time.Timer {
	return time.AfterFunc(d, func() {
		buf := make([]byte, 1<<20)
		n := goruntime.Stack(buf, true)
		panic(fmt.Sprintf("deadlock watchdog fired after %v:\n%s", d, buf[:n]))
	})
}

// TestMemoryPlaneSelfHealsSharded replays the whole self-healing cycle
// against a sharded Memory (4 stripes): every fault path interleaves shard
// locks with plane ticks and host mutations, so a violation of the
// documented shard.mu → plane.mu → host.mu order would deadlock here. The
// watchdog converts such a deadlock into a stack dump; correctness (zero
// acked-write loss, detector/scaler cycle) is asserted by the scenario
// itself.
func TestMemoryPlaneSelfHealsSharded(t *testing.T) {
	wd := deadlockWatchdog(120 * time.Second)
	defer wd.Stop()
	planeSelfHealScenario(t, WithShards(4))
}
