#!/usr/bin/env python3
"""Convert `go test -bench` output on stdin to a JSON benchmark record.

Each Benchmark line has the shape

    BenchmarkName-8   12345   123.4 ns/op   0 B/op   0 allocs/op   1.2 extra-unit

i.e. a name, an iteration count, then (value, unit) pairs — including any
custom b.ReportMetric units. The output is what scripts/bench.sh writes to
BENCH_<n>.json, the perf trajectory across PRs.
"""
import json
import subprocess
import sys


def parse(stream):
    benches = []
    for line in stream:
        line = line.strip()
        if not line.startswith("Benchmark"):
            continue
        fields = line.split()
        if len(fields) < 4 or not fields[1].isdigit():
            continue
        name = fields[0].rsplit("-", 1)[0] if "-" in fields[0] else fields[0]
        entry = {"name": name, "iterations": int(fields[1]), "metrics": {}}
        pairs = fields[2:]
        for value, unit in zip(pairs[0::2], pairs[1::2]):
            try:
                entry["metrics"][unit] = float(value)
            except ValueError:
                pass
        benches.append(entry)
    return benches


def main():
    goversion = subprocess.run(
        ["go", "version"], capture_output=True, text=True
    ).stdout.strip()
    out = {"go": goversion, "benchmarks": parse(sys.stdin)}
    json.dump(out, sys.stdout, indent=2, sort_keys=False)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
