#!/usr/bin/env python3
"""Diff a fresh benchmark run against a recorded baseline and fail on
regressions.

    bench_compare.py BASELINE.json FRESH.json [--threshold 0.15]

Both files are the scripts/bench2json.py format. The gate applies to the
two headline hot-path benchmarks:

  - ns/op more than --threshold (default 15%) above baseline fails;
  - ANY allocs/op increase fails (the hot path is allocation-free by
    construction; one alloc per op is how it regresses silently).

Other shared benchmarks are reported for context but don't gate: figure
drivers run one iteration each, so their ns/op is too noisy to gate on.
Exit status: 0 clean, 1 regression, 2 usage/data error.
"""
import argparse
import json
import sys

HEADLINE = ["BenchmarkSimulatorThroughput", "BenchmarkPredictorFaultPath"]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {b["name"]: b.get("metrics", {}) for b in doc.get("benchmarks", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional ns/op growth on headline benchmarks")
    args = ap.parse_args()

    base, fresh = load(args.baseline), load(args.fresh)
    missing = [n for n in HEADLINE if n not in base or n not in fresh]
    if missing:
        print(f"bench_compare: headline benchmarks missing: {', '.join(missing)}",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    print(f"{'benchmark':<42} {'base ns/op':>12} {'fresh ns/op':>12} "
          f"{'delta':>8}  {'allocs':>13}")
    for name in sorted(set(base) & set(fresh)):
        b, f = base[name], fresh[name]
        bn, fn = b.get("ns/op"), f.get("ns/op")
        ba, fa = b.get("allocs/op", 0.0), f.get("allocs/op", 0.0)
        if bn is None or fn is None:
            continue
        delta = (fn - bn) / bn if bn else 0.0
        gate = name in HEADLINE
        verdict = ""
        if gate:
            if delta > args.threshold:
                verdict = f"FAIL ns/op +{delta:.1%} > {args.threshold:.0%}"
            if fa > ba:
                verdict = (verdict + "; " if verdict else "") + \
                    f"FAIL allocs/op {ba:g} -> {fa:g}"
            if verdict:
                failures.append(f"{name}: {verdict}")
        mark = " *" if gate else ""
        print(f"{name:<42} {bn:>12.4g} {fn:>12.4g} {delta:>+7.1%} "
              f"{ba:>6g}->{fa:<6g}{mark}")
    print("(* gated headline benchmark)")

    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: headline benchmarks within {args.threshold:.0%} ns/op, "
          "no allocs/op growth")


if __name__ == "__main__":
    main()
