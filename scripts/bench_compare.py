#!/usr/bin/env python3
"""Diff a fresh benchmark run against a baseline run and fail on
regressions.

    bench_compare.py BASELINE.json FRESH.json [--threshold 0.15]
                     [--headline NAME,NAME,...] [--zero-alloc PREFIX]

Both files are the scripts/bench2json.py format. The baseline may be the
recorded trajectory file (BENCH_1.json, BENCH_8.json, ...) or — the A/B
mode scripts/bench_ab.sh drives — a fresh run of an older commit on the
SAME machine, which makes the thresholds meaningful on any hardware.

The gate applies to the headline hot-path benchmarks (--headline overrides
the default list):

  - ns/op more than --threshold (default 15%) above baseline fails;
  - ANY allocs/op increase fails (the hot path is allocation-free by
    construction; one alloc per op is how it regresses silently);
  - any fresh benchmark whose name starts with a --zero-alloc prefix must
    report 0 allocs/op, baseline or not (this is how brand-new hit-path
    benchmarks are gated before a baseline containing them exists).

A headline benchmark missing from either file is WARNED about and skipped
rather than fatal: an A/B baseline built from an older commit predates
newly added benchmarks. Only if NO headline benchmark can be compared at
all is the data considered unusable.

Other shared benchmarks are reported for context but don't gate: figure
drivers run one iteration each, so their ns/op is too noisy to gate on.
Exit status: 0 clean, 1 regression, 2 usage/data error.
"""
import argparse
import json
import sys

HEADLINE = ["BenchmarkSimulatorThroughput", "BenchmarkPredictorFaultPath"]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    # A file may carry -count N repetitions of the same benchmark (the A/B
    # harness runs 3). Reduce duplicates best-of-N: minimum ns/op — the run
    # least disturbed by scheduler noise — and maximum allocs/op, so a
    # single allocating repetition still trips the allocation gate.
    out = {}
    for b in doc.get("benchmarks", []):
        name, m = b["name"], b.get("metrics", {})
        if name not in out:
            out[name] = dict(m)
            continue
        acc = out[name]
        for unit, val in m.items():
            if unit == "allocs/op":
                acc[unit] = max(acc.get(unit, 0.0), val)
            elif unit in acc:
                acc[unit] = min(acc[unit], val)
            else:
                acc[unit] = val
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional ns/op growth on headline benchmarks")
    ap.add_argument("--headline", default=",".join(HEADLINE),
                    help="comma-separated gated benchmark names "
                         "(default: %(default)s)")
    ap.add_argument("--zero-alloc", action="append", default=[],
                    metavar="PREFIX",
                    help="fail if any fresh benchmark with this name prefix "
                         "reports allocs/op > 0 (repeatable)")
    args = ap.parse_args()
    headline = [n for n in args.headline.split(",") if n]

    base, fresh = load(args.baseline), load(args.fresh)
    missing = [n for n in headline if n not in base or n not in fresh]
    for n in missing:
        side = "baseline" if n not in base else "fresh run"
        print(f"bench_compare: WARNING: headline benchmark {n} missing from "
              f"{side}; skipping (older baselines predate newer benchmarks)",
              file=sys.stderr)
    gated = [n for n in headline if n not in missing]
    if headline and not gated:
        print("bench_compare: no headline benchmark present in both files; "
              "nothing to gate on", file=sys.stderr)
        sys.exit(2)

    failures = []
    print(f"{'benchmark':<42} {'base ns/op':>12} {'fresh ns/op':>12} "
          f"{'delta':>8}  {'allocs':>13}")
    for name in sorted(set(base) & set(fresh)):
        b, f = base[name], fresh[name]
        bn, fn = b.get("ns/op"), f.get("ns/op")
        ba, fa = b.get("allocs/op", 0.0), f.get("allocs/op", 0.0)
        if bn is None or fn is None:
            continue
        delta = (fn - bn) / bn if bn else 0.0
        gate = name in gated
        verdict = ""
        if gate:
            if delta > args.threshold:
                verdict = f"FAIL ns/op +{delta:.1%} > {args.threshold:.0%}"
            if fa > ba:
                verdict = (verdict + "; " if verdict else "") + \
                    f"FAIL allocs/op {ba:g} -> {fa:g}"
            if verdict:
                failures.append(f"{name}: {verdict}")
        mark = " *" if gate else ""
        print(f"{name:<42} {bn:>12.4g} {fn:>12.4g} {delta:>+7.1%} "
              f"{ba:>6g}->{fa:<6g}{mark}")
    print("(* gated headline benchmark)")

    for prefix in args.zero_alloc:
        hits = 0
        for name, m in sorted(fresh.items()):
            if not name.startswith(prefix) or "allocs/op" not in m:
                continue
            hits += 1
            if m["allocs/op"] > 0:
                failures.append(
                    f"{name}: FAIL allocs/op {m['allocs/op']:g} != 0 "
                    f"(--zero-alloc {prefix})")
        if hits == 0:
            print(f"bench_compare: WARNING: --zero-alloc {prefix} matched no "
                  "fresh benchmark", file=sys.stderr)

    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: headline benchmarks within {args.threshold:.0%} ns/op, "
          "no allocs/op growth")


if __name__ == "__main__":
    main()
