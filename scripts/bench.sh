#!/usr/bin/env bash
# Benchmark baseline: runs the benchmark suite and records the numbers to
# BENCH_1.json (override with BENCH_OUT), seeding the perf trajectory that
# future PRs append to (BENCH_2.json, ...).
#
# Two passes with different timing budgets:
#   - hot-path microbenchmarks get a long -benchtime for stable ns/op;
#   - figure/ablation drivers run one full iteration each (every iteration
#     is a complete experiment, so 1x is already meaningful and keeps the
#     suite fast).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_1.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -benchmem -count 1 -benchtime 2s \
  -bench 'BenchmarkSimulatorThroughput|BenchmarkPredictorFaultPath|BenchmarkFindTrend|BenchmarkMajorityVote|BenchmarkPrefetcherComparison|BenchmarkMemoryGetHit|BenchmarkMemoryConcurrentGet|BenchmarkMemoryGetZtierHit' \
  . | tee "$TMP"

go test -run '^$' -benchmem -count 1 -benchtime 1x \
  -bench 'BenchmarkFig|BenchmarkTable|BenchmarkAblation' \
  . | tee -a "$TMP"

python3 scripts/bench2json.py < "$TMP" > "$OUT"
echo "wrote $OUT"
