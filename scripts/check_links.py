#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

    check_links.py README.md DESIGN.md ...

For every [text](target) and bare <target>:
  - http(s)/mailto links are recorded but not fetched (CI is offline);
  - relative links must resolve to an existing file or directory;
  - #anchors (own-file or cross-file) must match a heading slug in the
    target document, using GitHub's slugification rules (lowercase,
    punctuation stripped, spaces to dashes, -N suffix for duplicates).

Exit status: 0 clean, 1 broken links, 2 usage error.
"""
import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading, seen):
    """GitHub-style anchor slug."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)          # inline markup
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # links → text
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        slug = f"{slug}-{seen[slug]}"
    else:
        seen[slug] = 0
    return slug


def anchors_of(path):
    seen = {}
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(slugify(m.group(1), seen))
    return anchors


def links_of(path):
    links = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                links.append((lineno, m.group(1)))
    return links


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = argv[1:]
    broken = []
    external = 0
    checked = 0
    for md in files:
        if not os.path.exists(md):
            broken.append(f"{md}: file listed for checking does not exist")
            continue
        base = os.path.dirname(md)
        for lineno, target in links_of(md):
            checked += 1
            if target.startswith(("http://", "https://", "mailto:")):
                external += 1
                continue
            if target.startswith("#"):
                if target[1:] not in anchors_of(md):
                    broken.append(f"{md}:{lineno}: broken anchor {target}")
                continue
            path, _, frag = target.partition("#")
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                broken.append(f"{md}:{lineno}: broken link {target} ({resolved} missing)")
                continue
            if frag:
                if not resolved.endswith(".md"):
                    broken.append(f"{md}:{lineno}: anchor on non-markdown target {target}")
                elif frag not in anchors_of(resolved):
                    broken.append(f"{md}:{lineno}: broken anchor {target}")
    for b in broken:
        print(b, file=sys.stderr)
    print(f"check_links: {checked} links in {len(files)} files "
          f"({external} external skipped), {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
