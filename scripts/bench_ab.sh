#!/usr/bin/env bash
# A/B perf gate: benchmark the gated hot paths at a baseline ref (default
# HEAD~1) in a throwaway git worktree AND at the current working tree, then
# compare the two runs with scripts/bench_compare.py.
#
# Unlike the recorded BENCH_1.json baseline — numbers from the machine of
# record, useless as a gate anywhere else — both sides here run back to
# back on the SAME machine, so the 15% ns/op threshold and the allocs/op
# gate hold on laptops and CI runners alike. Benchmarks the baseline commit
# doesn't have yet (e.g. a just-added sweep) are warned about and skipped
# by the comparator; the --zero-alloc prefix still gates them on the fresh
# side.
#
#   BENCH_AB_BASE   baseline git ref            (default HEAD~1)
#   BENCH_AB_TIME   -benchtime for both sides   (default 1s)
#   BENCH_AB_COUNT  -count repetitions per side (default 3; the comparator
#                   takes best-of-N ns/op, worst-of-N allocs/op)
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_REF="${BENCH_AB_BASE:-HEAD~1}"
BENCHTIME="${BENCH_AB_TIME:-1s}"
COUNT="${BENCH_AB_COUNT:-3}"
# The gated hot paths only — figure drivers are too noisy to A/B.
PATTERN='BenchmarkSimulatorThroughput|BenchmarkPredictorFaultPath|BenchmarkMemoryGetHit|BenchmarkMemoryConcurrentGet|BenchmarkMemoryGetZtierHit|BenchmarkMemoryEnsembleGetHit'
HEADLINE='BenchmarkSimulatorThroughput,BenchmarkPredictorFaultPath,BenchmarkMemoryGetHit,BenchmarkMemoryConcurrentGet,BenchmarkMemoryGetHitParallel/procs=8,BenchmarkMemoryGetZtierHit,BenchmarkMemoryEnsembleGetHit'

run_bench() { # $1 = source dir, $2 = output json
  (cd "$1" && go test -run '^$' -benchmem -count "$COUNT" -benchtime "$BENCHTIME" \
    -bench "$PATTERN" .) | python3 scripts/bench2json.py > "$2"
}

TMP="$(mktemp -d)"
cleanup() {
  git worktree remove --force "$TMP/base" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== A side: $BASE_REF =="
git worktree add --quiet --detach "$TMP/base" "$BASE_REF"
run_bench "$TMP/base" "$TMP/base.json"

echo "== B side: working tree =="
run_bench . "$TMP/head.json"

python3 scripts/bench_compare.py "$TMP/base.json" "$TMP/head.json" \
  --headline "$HEADLINE" \
  --zero-alloc BenchmarkMemoryGetHit \
  --zero-alloc BenchmarkMemoryGetZtierHit \
  --zero-alloc BenchmarkMemoryEnsembleGetHit
