package pagecache

import (
	"testing"
	"testing/quick"

	"leap/internal/sim"
)

func TestPolicyString(t *testing.T) {
	if EvictLazy.String() != "lazy" || EvictEager.String() != "eager" {
		t.Fatal("Policy.String broken")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy string")
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(Config{Capacity: 10, Policy: EvictLazy})
	if hit, _ := c.Lookup(5, 0); hit {
		t.Fatal("hit on empty cache")
	}
	c.Insert(5, false, 0)
	hit, pre := c.Lookup(5, 10)
	if !hit || pre {
		t.Fatalf("Lookup = (%v,%v), want (true,false)", hit, pre)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Adds != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPrefetchHitAccounting(t *testing.T) {
	c := New(Config{Capacity: 10, Policy: EvictLazy})
	c.Insert(7, true, 100)
	hit, pre := c.Lookup(7, 600)
	if !hit || !pre {
		t.Fatalf("Lookup = (%v,%v), want (true,true)", hit, pre)
	}
	st := c.Stats()
	if st.PrefetchHits != 1 || st.PrefetchAdds != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Timeliness.Count() != 1 || c.Timeliness.Max() != 500 {
		t.Fatalf("timeliness hist: count=%d max=%d", c.Timeliness.Count(), c.Timeliness.Max())
	}
}

func TestEagerFreesOnHit(t *testing.T) {
	c := New(Config{Capacity: 10, Policy: EvictEager})
	c.Insert(7, true, 0)
	if c.Len() != 1 {
		t.Fatal("insert failed")
	}
	c.Lookup(7, 50)
	if c.Len() != 0 {
		t.Fatal("eager policy did not free the consumed prefetch page")
	}
	st := c.Stats()
	if st.EagerFrees != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Wait time is zero by construction.
	if c.WaitTime.Max() != 0 {
		t.Fatalf("eager wait time max = %d, want 0", c.WaitTime.Max())
	}
	// A second lookup misses: the page now belongs to the process.
	if hit, _ := c.Lookup(7, 60); hit {
		t.Fatal("freed page still resident")
	}
}

func TestEagerKeepsDemandEntries(t *testing.T) {
	c := New(Config{Capacity: 10, Policy: EvictEager})
	c.Insert(3, false, 0) // demand-filled, not prefetched
	c.Lookup(3, 10)
	if c.Len() != 1 {
		t.Fatal("eager policy must not instantly free demand-filled entries")
	}
}

func TestLazyKeepsConsumedUntilScan(t *testing.T) {
	c := New(Config{Policy: EvictLazy, ScanInterval: 1 * sim.Second})
	c.Insert(1, true, 0)
	c.Lookup(1, 1000) // consumed at t=1µs
	if c.Len() != 1 {
		t.Fatal("lazy policy freed a page before any scan")
	}
	// Scans before the interval elapse do nothing.
	c.Tick(sim.Time(sim.Millisecond))
	if c.Len() != 1 {
		t.Fatal("scan ran before interval")
	}
	// After the interval, the consumed page is reclaimed and the wait time
	// recorded.
	c.Tick(sim.Time(2 * sim.Second))
	if c.Len() != 0 {
		t.Fatal("scan did not reclaim the consumed page")
	}
	if c.WaitTime.Count() != 1 {
		t.Fatal("wait time not recorded")
	}
	if w := c.WaitTime.Max(); w < sim.Duration(sim.Second) {
		t.Fatalf("recorded wait %v, want >= 1s", w)
	}
}

func TestLazyScanLeavesUnconsumed(t *testing.T) {
	c := New(Config{Policy: EvictLazy, ScanInterval: sim.Duration(sim.Second)})
	c.Insert(1, true, 0)
	c.Tick(sim.Time(5 * sim.Second))
	if c.Len() != 1 {
		t.Fatal("periodic scan must not evict never-consumed pages absent pressure")
	}
}

func TestCapacityEvictionLRU(t *testing.T) {
	c := New(Config{Capacity: 3, Policy: EvictLazy})
	c.Insert(1, false, 0)
	c.Insert(2, false, 1)
	c.Insert(3, false, 2)
	c.Lookup(1, 3) // 1 is now MRU; LRU order: 2, 3, 1
	c.Insert(4, false, 4)
	if c.Contains(2) {
		t.Fatal("LRU victim should have been page 2")
	}
	for _, p := range []PageID{1, 3, 4} {
		if !c.Contains(p) {
			t.Fatalf("page %d unexpectedly evicted", p)
		}
	}
}

func TestEagerCapacityEvictsPrefetchFIFOFirst(t *testing.T) {
	c := New(Config{Capacity: 3, Policy: EvictEager})
	c.Insert(1, false, 0) // demand entry
	c.Insert(2, true, 1)  // oldest prefetch
	c.Insert(3, true, 2)
	c.Insert(4, true, 3) // over capacity: FIFO head (2) must go
	if c.Contains(2) {
		t.Fatal("FIFO eviction should remove the oldest prefetched page")
	}
	if !c.Contains(1) {
		t.Fatal("demand entry evicted while prefetched pages remain")
	}
	if c.Stats().Pollution != 1 {
		t.Fatalf("pollution = %d, want 1", c.Stats().Pollution)
	}
}

func TestPollutionCountsOnlyUnconsumed(t *testing.T) {
	c := New(Config{Capacity: 2, Policy: EvictLazy})
	c.Insert(1, true, 0)
	c.Lookup(1, 1) // consumed
	c.Insert(2, true, 2)
	c.Insert(3, true, 3) // evicts LRU = 1 (consumed) — not pollution
	if got := c.Stats().Pollution; got != 0 {
		t.Fatalf("pollution = %d, want 0", got)
	}
	c.Insert(4, true, 4) // evicts 2 (never consumed) — pollution
	if got := c.Stats().Pollution; got != 1 {
		t.Fatalf("pollution = %d, want 1", got)
	}
}

func TestInsertExistingRefreshesLRU(t *testing.T) {
	c := New(Config{Capacity: 2, Policy: EvictLazy})
	c.Insert(1, false, 0)
	c.Insert(2, false, 1)
	c.Insert(1, false, 2) // refresh, no new add
	if c.Stats().Adds != 2 {
		t.Fatalf("Adds = %d, want 2", c.Stats().Adds)
	}
	c.Insert(3, false, 3) // evicts 2 (LRU), not 1
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("refresh did not update LRU order")
	}
}

func TestWatermarkScan(t *testing.T) {
	c := New(Config{Capacity: 100, Policy: EvictLazy, HighWatermark: 0.9, LowWatermark: 0.5})
	for i := 0; i < 95; i++ {
		c.Insert(PageID(i), true, sim.Time(i))
	}
	c.Tick(1000)
	if got := c.Len(); got != 50 {
		t.Fatalf("after watermark scan Len = %d, want 50", got)
	}
	// Below the high watermark the scan is idle.
	c.Tick(2000)
	if got := c.Len(); got != 50 {
		t.Fatalf("scan ran below watermark: %d", got)
	}
}

func TestDropRemovesWithoutEvictionCount(t *testing.T) {
	c := New(Config{Capacity: 10, Policy: EvictLazy})
	c.Insert(1, true, 0)
	c.Drop(1)
	if c.Contains(1) || c.Stats().Evictions != 0 {
		t.Fatal("Drop must remove silently")
	}
	c.Drop(99) // absent: no-op
}

func TestStaleCountAndAllocLatency(t *testing.T) {
	c := New(Config{Policy: EvictLazy})
	base := c.AllocLatency()
	for i := 0; i < 100; i++ {
		c.Insert(PageID(i), true, 0)
	}
	if c.StaleCount() != 0 {
		t.Fatal("no page consumed yet")
	}
	allocClean := c.AllocLatency()
	for i := 0; i < 100; i++ {
		c.Lookup(PageID(i), 1)
	}
	if c.StaleCount() != 100 {
		t.Fatalf("StaleCount = %d, want 100", c.StaleCount())
	}
	allocStale := c.AllocLatency()
	if !(allocStale > allocClean && allocClean >= base) {
		t.Fatalf("alloc latency ordering broken: base=%v clean=%v stale=%v", base, allocClean, allocStale)
	}
	// Fully stale lazy cache pays base+750ns (the paper's 36% overhead).
	if allocStale-base != 750*sim.Nanosecond {
		t.Fatalf("stale alloc overhead = %v, want 750ns", allocStale-base)
	}
}

func TestEagerAllocStaysBase(t *testing.T) {
	c := New(Config{Policy: EvictEager})
	for i := 0; i < 100; i++ {
		c.Insert(PageID(i), true, 0)
		c.Lookup(PageID(i), 1)
	}
	// Eager: consumed prefetches are gone, nothing stale accumulates.
	if c.StaleCount() != 0 {
		t.Fatalf("StaleCount = %d, want 0 under eager policy", c.StaleCount())
	}
}

func TestCapacityNeverExceededProperty(t *testing.T) {
	f := func(ops []uint16, eager bool) bool {
		pol := EvictLazy
		if eager {
			pol = EvictEager
		}
		c := New(Config{Capacity: 8, Policy: pol})
		for i, op := range ops {
			page := PageID(op % 64)
			switch op % 3 {
			case 0:
				c.Insert(page, op%2 == 0, sim.Time(i))
			case 1:
				c.Lookup(page, sim.Time(i))
			case 2:
				c.Tick(sim.Time(i))
			}
			if c.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestListIntegrityProperty(t *testing.T) {
	// Property: after arbitrary operations, the LRU list contains exactly
	// the entries in the map, with consistent back-links.
	f := func(ops []uint16) bool {
		c := New(Config{Capacity: 16, Policy: EvictEager})
		for i, op := range ops {
			page := PageID(op % 32)
			if op%2 == 0 {
				c.Insert(page, op%4 == 0, sim.Time(i))
			} else {
				c.Lookup(page, sim.Time(i))
			}
		}
		// Walk forward, count, verify membership and back-links.
		n := 0
		var prev *entry
		for e := c.lruHead; e != nil; e = e.lruNext {
			if got, _ := c.entries.Get(e.page); got != e {
				return false
			}
			if e.lruPrev != prev {
				return false
			}
			prev = e
			n++
			if n > c.entries.Len() {
				return false // cycle
			}
		}
		if n != c.entries.Len() || c.lruTail != prev {
			return false
		}
		// FIFO list only holds prefetched, unconsumed, resident entries.
		m := 0
		for e := c.fifoHead; e != nil; e = e.fifoNext {
			if !e.prefetched || e.consumed {
				return false
			}
			if got, _ := c.entries.Get(e.page); got != e {
				return false
			}
			m++
			if m > c.entries.Len() {
				return false
			}
		}
		return m == c.fifoLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddsEqualsEvictionsPlusResident(t *testing.T) {
	// Conservation: every added page is either resident or was evicted
	// (Drop not used here).
	c := New(Config{Capacity: 32, Policy: EvictLazy})
	for i := 0; i < 1000; i++ {
		c.Insert(PageID(i%200), i%2 == 0, sim.Time(i))
		if i%3 == 0 {
			c.Lookup(PageID(i%200), sim.Time(i))
		}
		c.Tick(sim.Time(i))
	}
	st := c.Stats()
	if st.Adds != st.Evictions+int64(c.Len()) {
		t.Fatalf("conservation violated: adds=%d evictions=%d resident=%d",
			st.Adds, st.Evictions, c.Len())
	}
}

func TestReclaimAgedHonorsGrace(t *testing.T) {
	c := New(Config{Policy: EvictEager})
	c.Insert(1, true, 0)                           // old, unconsumed
	c.Insert(2, true, sim.Time(5*sim.Millisecond)) // fresh, unconsumed
	now := sim.Time(6 * sim.Millisecond)
	freed := c.ReclaimAged(10, 2*sim.Millisecond, now)
	if freed != 1 {
		t.Fatalf("freed = %d, want 1 (only the aged entry)", freed)
	}
	if c.Contains(1) || !c.Contains(2) {
		t.Fatal("wrong victim: grace must protect fresh prefetches")
	}
}

func TestReclaimAgedTakesConsumedImmediately(t *testing.T) {
	c := New(Config{Policy: EvictLazy})
	c.Insert(1, true, 0)
	c.Lookup(1, 1) // consumed: reclaimable regardless of age
	freed := c.ReclaimAged(10, sim.Duration(sim.Second), 2)
	if freed != 1 || c.Contains(1) {
		t.Fatalf("consumed entry not reclaimed (freed=%d)", freed)
	}
}

func TestReclaimAgedBounded(t *testing.T) {
	c := New(Config{Policy: EvictLazy})
	for i := 0; i < 10; i++ {
		c.Insert(PageID(i), true, 0)
	}
	now := sim.Time(sim.Second)
	if freed := c.ReclaimAged(3, 0, now); freed != 3 {
		t.Fatalf("freed = %d, want exactly 3", freed)
	}
	if c.Len() != 7 {
		t.Fatalf("Len = %d, want 7", c.Len())
	}
}

func TestReclaimLRUDrains(t *testing.T) {
	c := New(Config{Policy: EvictLazy})
	for i := 0; i < 5; i++ {
		c.Insert(PageID(i), true, 0)
	}
	if freed := c.ReclaimLRU(100, 1); freed != 5 {
		t.Fatalf("freed = %d, want 5", freed)
	}
	if c.Len() != 0 {
		t.Fatal("cache not drained")
	}
}

func TestOnEvictCallback(t *testing.T) {
	c := New(Config{Capacity: 2, Policy: EvictLazy})
	var evicted []PageID
	c.OnEvict = func(p PageID) { evicted = append(evicted, p) }
	c.Insert(1, true, 0)
	c.Insert(2, true, 1)
	c.Insert(3, true, 2) // evicts 1
	c.Drop(2)            // drop also fires the callback
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("OnEvict calls = %v, want [1 2]", evicted)
	}
}

func TestInsertEvictSteadyStateDoesNotAllocate(t *testing.T) {
	// A bounded cache under constant insert pressure recycles entries from
	// the free list; the steady-state fault path must not allocate.
	c := New(Config{Capacity: 64, Policy: EvictEager})
	next := PageID(0)
	for i := 0; i < 256; i++ { // warm the map and the free list
		c.Insert(next, true, sim.Time(i))
		next++
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			c.Insert(next, true, 0)
			c.Lookup(next, 0) // eager policy frees the entry on consumption
			next++
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state insert/evict allocated %.1f times per run, want 0", allocs)
	}
}

func TestPooledEntriesResetState(t *testing.T) {
	// A recycled entry must not leak the previous occupant's flags: insert a
	// consumed prefetched page, evict it, and reuse the node for a demand
	// page — which must neither count as a prefetch hit nor join the FIFO.
	c := New(Config{Policy: EvictEager})
	c.Insert(1, true, 0)
	c.Lookup(1, 5) // consumed; eager policy frees the entry to the pool
	c.Insert(2, false, 10)
	if hit, wasPre := c.Lookup(2, 11); !hit || wasPre {
		t.Fatalf("recycled entry kept stale state: hit=%v wasPrefetched=%v", hit, wasPre)
	}
	st := c.Stats()
	if st.PrefetchHits != 1 {
		t.Fatalf("PrefetchHits = %d, want 1 (only the genuine prefetched page)", st.PrefetchHits)
	}
}
