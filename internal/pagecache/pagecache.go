// Package pagecache simulates the kernel page cache ("swap cache") that sits
// between the fault handler and the remote backing store, together with the
// two eviction policies the paper compares:
//
//   - Lazy (Linux): pages stay cached after they are consumed, waiting for a
//     kswapd-style background scan that only runs above a memory-pressure
//     watermark. Consumed pages therefore waste cache capacity for a long
//     time (the paper's Figure 4), and every new page allocation pays extra
//     scan time when the LRU list is polluted.
//
//   - Eager (Leap, §4.3): a prefetched page is freed the instant it is
//     consumed, via the PrefetchFifoLruList. Unconsumed prefetched pages are
//     reclaimed FIFO among themselves under pressure; demand-fetched entries
//     follow the usual LRU.
//
// The cache also keeps the statistics the evaluation is built on: cache adds
// (Fig. 9a), prefetch hits/misses, pollution (prefetched-but-never-used
// evictions), consumed-to-freed wait time (Fig. 4), and prefetch-to-first-hit
// timeliness (Fig. 10b).
package pagecache

import (
	"fmt"

	"leap/internal/core"
	"leap/internal/metrics"
	"leap/internal/pagemap"
	"leap/internal/sim"
)

// PageID aliases core.PageID.
type PageID = core.PageID

// Policy selects the eviction policy.
type Policy int

// Available eviction policies.
const (
	// EvictLazy models Linux: consumed pages linger until a background scan.
	EvictLazy Policy = iota
	// EvictEager models Leap: consumed prefetched pages are freed instantly.
	EvictEager
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case EvictLazy:
		return "lazy"
	case EvictEager:
		return "eager"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a Cache.
type Config struct {
	// Capacity is the maximum number of resident entries; 0 means unlimited.
	Capacity int
	// Policy selects lazy or eager reclamation.
	Policy Policy
	// HighWatermark and LowWatermark bound the lazy background scan: the
	// scan starts when occupancy exceeds HighWatermark×Capacity and stops at
	// LowWatermark×Capacity. Defaults: 0.9 and 0.8. Ignored when Capacity
	// is unlimited (the scan then runs on ScanInterval to model kswapd's
	// periodic pass).
	HighWatermark, LowWatermark float64
	// ScanInterval is the period of the background scan when the cache is
	// unbounded. Default 1s of virtual time.
	ScanInterval sim.Duration
}

func (c Config) withDefaults() Config {
	if c.HighWatermark == 0 {
		c.HighWatermark = 0.9
	}
	if c.LowWatermark == 0 {
		c.LowWatermark = 0.8
	}
	if c.ScanInterval == 0 {
		c.ScanInterval = 1 * sim.Second
	}
	return c
}

// Stats aggregates cache accounting. All counts are cumulative.
type Stats struct {
	// Adds is every page inserted (the paper's "Cache Add", Fig. 9a).
	Adds int64
	// PrefetchAdds is the subset of Adds inserted by the prefetcher.
	PrefetchAdds int64
	// Hits and Misses count Lookup outcomes; PrefetchHits is the subset of
	// hits that landed on prefetched entries (coverage numerator).
	Hits, Misses, PrefetchHits int64
	// Evictions counts all removals by policy; Pollution is the subset that
	// were prefetched and never consumed — wasted fetch and cache space.
	Evictions, Pollution int64
	// EagerFrees counts instant frees under the eager policy.
	EagerFrees int64
}

// entry is one cached page. Entries participate in up to two intrusive
// lists: the global LRU (all entries) and the prefetch FIFO (prefetched,
// unconsumed entries) — mirroring how a kernel page sits in multiple lists.
type entry struct {
	page       PageID
	prefetched bool
	consumed   bool
	insertedAt sim.Time
	consumedAt sim.Time

	lruPrev, lruNext   *entry
	fifoPrev, fifoNext *entry
	inFifo             bool
}

// Cache is the simulated page cache. It is not safe for concurrent use.
type Cache struct {
	// OnEvict, when set, is called with the page of every entry removed
	// from the cache (evictions, eager frees, and Drops). The VMM layer
	// uses it to keep per-cgroup charge accounting in sync.
	OnEvict func(PageID)

	cfg     Config
	entries *pagemap.Map[*entry]

	// Global LRU: head = most recent, tail = eviction candidate.
	lruHead, lruTail *entry
	// Leap's PrefetchFifoLruList: head = oldest prefetched page.
	fifoHead, fifoTail *entry
	fifoLen            int

	// free is a free list of entry nodes (linked through lruNext): the
	// insert/evict churn of a paging workload recycles entries instead of
	// allocating one per Insert and leaving the GC to sweep the corpses.
	free *entry

	// staleLen counts resident consumed entries, kept in step with the
	// consumed flag so AllocLatency can price the allocator's scan without
	// re-walking the LRU list.
	staleLen int
	// minInserted is a lower bound on every resident entry's insertedAt
	// (tightened whenever a reclaim walk covers the whole list). With
	// staleLen it lets ReclaimAged prove "nothing is reclaimable" without
	// walking: if even the oldest possible entry is within the grace period,
	// so is everything else.
	minInserted sim.Time

	lastScan sim.Time
	stats    Stats

	// WaitTime is the consumed→freed delay distribution (Fig. 4).
	WaitTime metrics.Histogram
	// Timeliness is the prefetch→first-hit delay distribution (Fig. 10b).
	Timeliness metrics.Histogram
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	return &Cache{cfg: cfg.withDefaults(), entries: pagemap.New[*entry](0)}
}

// Config reports the effective configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats reports a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len reports the number of resident entries.
func (c *Cache) Len() int { return c.entries.Len() }

// Contains reports whether page is resident without touching LRU state.
func (c *Cache) Contains(page PageID) bool {
	return c.entries.Contains(page)
}

// Lookup consults the cache for page at virtual time now. On a hit the entry
// is marked consumed and moved to the LRU head; under the eager policy a
// prefetched entry is freed immediately (§4.3). It reports whether the page
// was present and whether the hit landed on a prefetched entry.
func (c *Cache) Lookup(page PageID, now sim.Time) (hit, wasPrefetched bool) {
	e, ok := c.entries.Get(page)
	if !ok {
		c.stats.Misses++
		return false, false
	}
	c.stats.Hits++
	wasPrefetched = e.prefetched
	if e.prefetched {
		c.stats.PrefetchHits++
		if !e.consumed {
			c.Timeliness.Observe(now.Sub(e.insertedAt))
		}
	}
	if !e.consumed {
		e.consumed = true
		e.consumedAt = now
		c.staleLen++
	}
	if c.cfg.Policy == EvictEager && e.prefetched {
		// Eager eviction: the page table now owns the page; release the
		// cache entry at once. Wait time is by construction ~0.
		c.WaitTime.Observe(0)
		c.stats.EagerFrees++
		c.remove(e)
		c.stats.Evictions++
		return true, wasPrefetched
	}
	c.lruMoveFront(e)
	return true, wasPrefetched
}

// Insert adds page at time now and reports whether a new entry was created.
// The prefetched flag marks prefetcher-driven inserts (demand fills pass
// false). Inserting an already-resident page refreshes its LRU position
// only. If the cache is over capacity, victims are reclaimed immediately
// according to the policy.
func (c *Cache) Insert(page PageID, prefetched bool, now sim.Time) bool {
	if e, ok := c.entries.Get(page); ok {
		c.lruMoveFront(e)
		return false
	}
	e := c.newEntry(page, prefetched, now)
	if c.entries.Len() == 0 || now < c.minInserted {
		c.minInserted = now
	}
	c.entries.Put(page, e)
	c.lruPushFront(e)
	if prefetched {
		c.fifoPushBack(e)
	}
	c.stats.Adds++
	if prefetched {
		c.stats.PrefetchAdds++
	}
	c.enforceCapacity(now)
	return true
}

// Drop removes page if resident, without counting an eviction (used when the
// owning process exits).
func (c *Cache) Drop(page PageID) {
	if e, ok := c.entries.Get(page); ok {
		c.remove(e)
	}
}

// enforceCapacity reclaims entries when the cache exceeds its capacity.
func (c *Cache) enforceCapacity(now sim.Time) {
	if c.cfg.Capacity <= 0 {
		return
	}
	for c.entries.Len() > c.cfg.Capacity {
		c.evictOne(now)
	}
}

// evictOne removes a single victim according to the policy.
func (c *Cache) evictOne(now sim.Time) {
	var victim *entry
	if c.cfg.Policy == EvictEager && c.fifoHead != nil {
		// Among prefetched pages, FIFO order (§4.3: no access history to
		// rank them, oldest prefetch goes first).
		victim = c.fifoHead
	} else {
		victim = c.lruTail
	}
	if victim == nil {
		return
	}
	c.evict(victim, now)
}

func (c *Cache) evict(e *entry, now sim.Time) {
	if e.prefetched && !e.consumed {
		c.stats.Pollution++
	}
	if e.consumed {
		c.WaitTime.Observe(now.Sub(e.consumedAt))
	}
	c.remove(e)
	c.stats.Evictions++
}

// Tick drives the lazy background reclaimer and must be called periodically
// with the advancing virtual time (the fault path does this). Under the
// eager policy it is a no-op. With bounded capacity the scan runs above the
// high watermark and reclaims down to the low watermark; unbounded caches
// scan on ScanInterval, freeing consumed entries only — kswapd has no reason
// to touch untouched pages absent pressure.
func (c *Cache) Tick(now sim.Time) {
	if c.cfg.Policy != EvictLazy {
		return
	}
	if c.cfg.Capacity > 0 {
		high := int(float64(c.cfg.Capacity) * c.cfg.HighWatermark)
		low := int(float64(c.cfg.Capacity) * c.cfg.LowWatermark)
		if c.entries.Len() <= high {
			return
		}
		for c.entries.Len() > low && c.lruTail != nil {
			c.evict(c.lruTail, now)
		}
		return
	}
	if now.Sub(c.lastScan) < c.cfg.ScanInterval {
		return
	}
	c.lastScan = now
	// Periodic pass: free consumed entries (they are reclaimable at no
	// cost); leave unconsumed ones — they may still get hit.
	for e := c.lruTail; e != nil; {
		prev := e.lruPrev
		if e.consumed {
			c.evict(e, now)
		}
		e = prev
	}
}

// ReclaimLRU evicts up to n entries under external memory pressure (the
// kswapd path driven by cgroup charge in the VMM layer) and reports how
// many were reclaimed. Victims follow the policy: eager reclaims the
// prefetch FIFO first, lazy walks the global LRU tail — where consumed
// pages linger, which is precisely the Figure 4 waste.
func (c *Cache) ReclaimLRU(n int, now sim.Time) int {
	freed := 0
	for freed < n && c.entries.Len() > 0 {
		c.evictOne(now)
		freed++
	}
	return freed
}

// ReclaimAged evicts up to n pressure-eligible entries: consumed pages
// (immediately reclaimable) and unconsumed pages older than minAge — the
// one-trip-through-the-inactive-list grace real reclaim gives freshly
// faulted pages. Fresh prefetched pages survive so that pressure cannot
// cancel a prefetch that is about to be used; a flooding prefetcher's
// stale junk does not. Returns the number reclaimed.
func (c *Cache) ReclaimAged(n int, minAge sim.Duration, now sim.Time) int {
	// Nothing consumed and even the oldest entry still within the grace
	// period: the walk below cannot free anything — skip it. This is the
	// common case when a well-behaved prefetcher keeps only fresh pages.
	if c.staleLen == 0 && now.Sub(c.minInserted) <= minAge {
		return 0
	}
	freed := 0
	walkedAll := true
	oldest := now
	e := c.lruTail
	for e != nil {
		if freed >= n {
			walkedAll = false
			break
		}
		prev := e.lruPrev
		if e.consumed || now.Sub(e.insertedAt) > minAge {
			c.evict(e, now)
			freed++
		} else if e.insertedAt < oldest {
			oldest = e.insertedAt
		}
		e = prev
	}
	if walkedAll {
		// Every survivor was visited, so the bound is now exact.
		c.minInserted = oldest
	}
	return freed
}

// StaleCount reports the number of consumed entries still occupying the
// cache — the population the allocator must scan past (Fig. 4's wasted
// area).
func (c *Cache) StaleCount() int { return c.staleLen }

// AllocLatency models the page-allocation delay a fetch pays before data
// can land: a base cost plus scan time proportional to the stale fraction
// of the LRU list. The paper measures eager eviction cutting this wait by
// ~750ns (36%, §4.3); with the default parameters a fully stale lazy cache
// pays ~2.08µs while an eager cache pays the ~1.33µs base.
func (c *Cache) AllocLatency() sim.Duration {
	const (
		base      = 1330 * sim.Nanosecond
		scanSpan  = 750 * sim.Nanosecond
		sampleCap = 4096 // bound the scan-cost estimate work
	)
	n := c.entries.Len()
	if n == 0 {
		return base
	}
	// Estimate the stale fraction the allocator scans past. When the whole
	// list fits in the sample the running staleLen gives the same count a
	// tail walk would; only oversized caches pay the bounded walk.
	scanned, stale := n, c.staleLen
	if n > sampleCap {
		scanned, stale = 0, 0
		for e := c.lruTail; e != nil && scanned < sampleCap; e = e.lruPrev {
			scanned++
			if e.consumed {
				stale++
			}
		}
	}
	frac := float64(stale) / float64(scanned)
	return base + sim.Duration(float64(scanSpan)*frac)
}

// newEntry takes a node off the free list, or allocates when it is empty.
func (c *Cache) newEntry(page PageID, prefetched bool, now sim.Time) *entry {
	e := c.free
	if e == nil {
		return &entry{page: page, prefetched: prefetched, insertedAt: now}
	}
	c.free = e.lruNext
	*e = entry{page: page, prefetched: prefetched, insertedAt: now}
	return e
}

// freeEntry returns a fully unlinked node to the free list.
func (c *Cache) freeEntry(e *entry) {
	e.lruNext = c.free
	c.free = e
}

// --- intrusive list plumbing ---

func (c *Cache) lruPushFront(e *entry) {
	e.lruPrev = nil
	e.lruNext = c.lruHead
	if c.lruHead != nil {
		c.lruHead.lruPrev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

func (c *Cache) lruUnlink(e *entry) {
	if e.lruPrev != nil {
		e.lruPrev.lruNext = e.lruNext
	} else {
		c.lruHead = e.lruNext
	}
	if e.lruNext != nil {
		e.lruNext.lruPrev = e.lruPrev
	} else {
		c.lruTail = e.lruPrev
	}
	e.lruPrev, e.lruNext = nil, nil
}

func (c *Cache) lruMoveFront(e *entry) {
	if c.lruHead == e {
		return
	}
	c.lruUnlink(e)
	c.lruPushFront(e)
}

func (c *Cache) fifoPushBack(e *entry) {
	e.inFifo = true
	e.fifoPrev = c.fifoTail
	e.fifoNext = nil
	if c.fifoTail != nil {
		c.fifoTail.fifoNext = e
	}
	c.fifoTail = e
	if c.fifoHead == nil {
		c.fifoHead = e
	}
	c.fifoLen++
}

func (c *Cache) fifoUnlink(e *entry) {
	if !e.inFifo {
		return
	}
	if e.fifoPrev != nil {
		e.fifoPrev.fifoNext = e.fifoNext
	} else {
		c.fifoHead = e.fifoNext
	}
	if e.fifoNext != nil {
		e.fifoNext.fifoPrev = e.fifoPrev
	} else {
		c.fifoTail = e.fifoPrev
	}
	e.fifoPrev, e.fifoNext = nil, nil
	e.inFifo = false
	c.fifoLen--
}

func (c *Cache) remove(e *entry) {
	c.lruUnlink(e)
	c.fifoUnlink(e)
	if e.consumed {
		c.staleLen--
	}
	c.entries.Delete(e.page)
	if c.OnEvict != nil {
		c.OnEvict(e.page)
	}
	c.freeEntry(e)
}
