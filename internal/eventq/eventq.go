// Package eventq provides a typed, non-boxing binary min-heap for the
// simulators' event queues. container/heap forces every element through an
// interface{}, which costs an allocation per Push on the fault path; this
// heap stores elements inline in a slice instead.
//
// The sift-up/sift-down order is bit-for-bit the same as container/heap's,
// so replacing a container/heap user changes neither the pop order of
// equal-priority elements nor, therefore, any downstream simulation result.
package eventq

// Heap is a binary min-heap ordered by less. The zero value is unusable;
// construct with New. Not safe for concurrent use.
type Heap[T any] struct {
	s    []T
	less func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len reports the number of queued elements.
func (h *Heap[T]) Len() int { return len(h.s) }

// Peek returns the minimum element without removing it. It panics on an
// empty heap, like indexing container/heap's underlying slice would.
func (h *Heap[T]) Peek() T { return h.s[0] }

// Push queues x.
func (h *Heap[T]) Push(x T) {
	h.s = append(h.s, x)
	h.up(len(h.s) - 1)
}

// Pop removes and returns the minimum element.
func (h *Heap[T]) Pop() T {
	n := len(h.s) - 1
	h.s[0], h.s[n] = h.s[n], h.s[0]
	h.down(0, n)
	x := h.s[n]
	var zero T
	h.s[n] = zero // release references held by pointer-bearing elements
	h.s = h.s[:n]
	return x
}

// Fix re-establishes the heap ordering after the element at index i changed
// its key; it is the container/heap Fix.
func (h *Heap[T]) Fix(i int) {
	if !h.down(i, len(h.s)) {
		h.up(i)
	}
}

// Reset empties the heap, keeping its backing storage for reuse.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.s {
		h.s[i] = zero
	}
	h.s = h.s[:0]
}

func (h *Heap[T]) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(h.s[j], h.s[i]) {
			break
		}
		h.s[i], h.s[j] = h.s[j], h.s[i]
		j = i
	}
}

func (h *Heap[T]) down(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(h.s[j2], h.s[j1]) {
			j = j2 // = 2*i + 2  // right child
		}
		if !h.less(h.s[j], h.s[i]) {
			break
		}
		h.s[i], h.s[j] = h.s[j], h.s[i]
		i = j
	}
	return i > i0
}
