package eventq

import (
	"container/heap"
	"testing"
)

// refHeap is a container/heap implementation over the same element type,
// used to prove the pop order — including ties — is identical.
type refElem struct {
	key int
	seq int
}

type refHeap []refElem

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refElem)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func TestMatchesContainerHeapIncludingTies(t *testing.T) {
	// Deterministic pseudo-random keys from a small alphabet so ties are
	// frequent: equal-key elements must pop in exactly container/heap's
	// order, since simulation results depend on it.
	state := uint64(12345)
	next := func() int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % 8)
	}
	q := New(func(a, b refElem) bool { return a.key < b.key })
	var ref refHeap
	seq := 0
	push := func() {
		e := refElem{key: next(), seq: seq}
		seq++
		q.Push(e)
		heap.Push(&ref, e)
	}
	popBoth := func() {
		got := q.Pop()
		want := heap.Pop(&ref).(refElem)
		if got != want {
			t.Fatalf("pop mismatch: got %+v, want %+v", got, want)
		}
	}
	// Interleave pushes and pops in a fixed pattern.
	for round := 0; round < 200; round++ {
		for i := 0; i < 1+round%5; i++ {
			push()
		}
		for i := 0; i < round%3 && q.Len() > 0; i++ {
			popBoth()
		}
	}
	for q.Len() > 0 {
		popBoth()
	}
	if ref.Len() != 0 {
		t.Fatalf("reference heap still has %d elements", ref.Len())
	}
}

func TestPushPopDoesNotAllocate(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	for i := 0; i < 1024; i++ {
		q.Push(i ^ 0x2a)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	// Steady state: capacity is retained, so push/pop cycles are free.
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.Push(64 - i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("push/pop cycle allocated %.1f times per run, want 0", allocs)
	}
}

func TestFixAndReset(t *testing.T) {
	type item struct{ key, id int }
	q := New(func(a, b item) bool { return a.key < b.key })
	q.Push(item{key: 5, id: 1})
	q.Push(item{key: 3, id: 2})
	q.Push(item{key: 8, id: 3})
	q.s[0].key = 9 // demote the current min in place
	q.Fix(0)
	if got := q.Pop(); got.key != 5 {
		t.Fatalf("after Fix, min key = %d, want 5", got.key)
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Reset left %d elements", q.Len())
	}
	q.Push(item{key: 1})
	if q.Peek().key != 1 {
		t.Fatal("heap unusable after Reset")
	}
}
