package paging

import (
	"testing"

	"leap/internal/core"
	"leap/internal/prefetch"
	"leap/internal/sim"
)

// stubPrefetcher returns a scripted candidate window on every miss.
type stubPrefetcher struct {
	window []core.PageID
	hits   int
}

func (s *stubPrefetcher) Name() string { return "stub" }
func (s *stubPrefetcher) OnAccess(_ prefetch.PID, _ core.PageID, miss bool, dst []core.PageID) []core.PageID {
	if !miss {
		return dst
	}
	return append(dst, s.window...)
}
func (s *stubPrefetcher) OnPrefetchHit(prefetch.PID) { s.hits++ }
func (s *stubPrefetcher) Reset()                     { s.hits = 0 }

func newTestEngine(pf prefetch.Prefetcher) *Engine[int] {
	return New[int](Config{Prefetcher: pf, Seed: 7})
}

func TestResidentTouchLRUOrder(t *testing.T) {
	e := newTestEngine(nil)
	r := NewResident(8)
	r.Limit = 16
	now := sim.Time(0)
	for pg := core.PageID(0); pg < 16; pg++ {
		e.MapIn(0, r, 0, pg, now)
	}
	if r.Len() != 16 {
		t.Fatalf("len = %d, want 16 (at budget, no eviction yet)", r.Len())
	}
	// Touch page 0: page 1 becomes the LRU tail.
	if !r.Touch(0) {
		t.Fatal("page 0 missing")
	}
	var evicted []core.PageID
	e.OnEvict = func(_ int, pg core.PageID) bool { evicted = append(evicted, pg); return true }
	e.MapIn(0, r, 0, 100, now) // 17 resident > budget 16: one eviction
	if len(evicted) != 1 {
		t.Fatalf("evictions = %v, want exactly one", evicted)
	}
	if evicted[0] != 1 {
		t.Fatalf("evicted %d, want LRU tail 1 (page 0 was touched)", evicted[0])
	}
	if r.Contains(evicted[0]) {
		t.Fatal("victim still resident")
	}
	if !r.Contains(0) || !r.Contains(100) {
		t.Fatal("touched/just-mapped pages must survive")
	}
}

func TestFaultPathsAndCounters(t *testing.T) {
	pf := &stubPrefetcher{window: []core.PageID{10, 11, 12}}
	e := newTestEngine(pf)
	r := NewResident(8)
	r.Limit = 64
	e.OnInsert = func(int) { r.Charged++ }

	// Miss on page 1: issues the window.
	lat, miss := e.Fault(0, 0, 1, 0)
	if !miss || lat <= 0 {
		t.Fatalf("first access: lat=%v miss=%v", lat, miss)
	}
	e.OnAccess(0, r, 0, 0, 1, miss, 0)
	e.MapIn(0, r, 0, 1, 0)
	if got := e.Counters.Get("prefetch_issued"); got != 3 {
		t.Fatalf("prefetch_issued = %d, want 3", got)
	}

	// Access page 10 immediately: still in flight → inflight hit.
	lat2, miss2 := e.Fault(0, 0, 10, 0)
	if miss2 {
		t.Fatal("in-flight page misclassified as miss")
	}
	if lat2 <= 0 {
		t.Fatal("in-flight hit paid no wait")
	}
	if e.Counters.Get("inflight_hits") != 1 || pf.hits != 1 {
		t.Fatalf("inflight_hits=%d pf hits=%d", e.Counters.Get("inflight_hits"), pf.hits)
	}
	e.OnAccess(0, r, 0, 0, 10, miss2, sim.Time(lat2))
	e.MapIn(0, r, 0, 10, sim.Time(lat2))

	// Let the remaining prefetches land, then hit the cache.
	far := sim.Time(1 * sim.Second)
	e.FlushArrivals(far)
	if r.Charged != 2 {
		t.Fatalf("charged = %d, want 2 landed prefetches", r.Charged)
	}
	_, miss3 := e.Fault(0, 0, 11, far)
	if miss3 {
		t.Fatal("landed prefetch misclassified as miss")
	}
	if e.Counters.Get("cache_hits") != 1 {
		t.Fatalf("cache_hits = %d, want 1", e.Counters.Get("cache_hits"))
	}
}

func TestOnIssueDedupes(t *testing.T) {
	pf := &stubPrefetcher{window: []core.PageID{5, 6, 7}}
	e := newTestEngine(pf)
	r := NewResident(8)
	r.Limit = 64
	var issued [][]core.PageID
	e.OnIssue = func(_ int, pages []core.PageID) {
		cp := make([]core.PageID, len(pages))
		copy(cp, pages)
		issued = append(issued, cp)
	}
	e.MapIn(0, r, 0, 6, 0) // 6 already resident
	e.OnAccess(0, r, 0, 0, 1, true, 0)
	if len(issued) != 1 || len(issued[0]) != 2 {
		t.Fatalf("issued = %v, want one batch of {5,7}", issued)
	}
	// Same window again: everything is in flight now — no hook call.
	e.OnAccess(0, r, 0, 0, 2, true, 0)
	if len(issued) != 1 {
		t.Fatalf("in-flight pages re-issued: %v", issued)
	}
}

func TestCancelPrefetchDropsArrival(t *testing.T) {
	pf := &stubPrefetcher{window: []core.PageID{42}}
	e := newTestEngine(pf)
	r := NewResident(8)
	r.Limit = 64
	e.OnAccess(0, r, 0, 0, 1, true, 0)
	if !e.CancelPrefetch(42) {
		t.Fatal("42 was not in flight")
	}
	if e.CancelPrefetch(42) {
		t.Fatal("double cancel succeeded")
	}
	e.FlushArrivals(sim.Time(1 * sim.Second))
	if e.Cache().Contains(42) {
		t.Fatal("cancelled prefetch still landed in the cache")
	}
	// A later access is a clean full miss.
	_, miss := e.Fault(0, 0, 42, sim.Time(2*sim.Second))
	if !miss {
		t.Fatal("cancelled page served from nowhere")
	}
}

// TestEngineDeterminism replays one access script twice and compares every
// counter and the latency histogram sum.
func TestEngineDeterminism(t *testing.T) {
	run := func() (string, sim.Duration) {
		e := newTestEngine(prefetch.NewLeap(core.Config{}))
		r := NewResident(64)
		r.Limit = 64
		e.OnInsert = func(int) { r.Charged++ }
		e.Cache().OnEvict = func(core.PageID) { r.Charged-- }
		var total sim.Duration
		now := sim.Time(0)
		for i := 0; i < 3000; i++ {
			pg := core.PageID(i % 500)
			e.FlushArrivals(now)
			if r.Touch(pg) {
				continue
			}
			lat, miss := e.Fault(0, 0, pg, now)
			total += lat
			now = now.Add(lat)
			e.OnAccess(0, r, 0, 0, pg, miss, now)
			e.MapIn(0, r, 0, pg, now)
		}
		return e.Counters.String(), total
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("replay diverged:\n%s (%v)\n%s (%v)", c1, t1, c2, t2)
	}
	if c1 == "" {
		t.Fatal("no counters recorded")
	}
}
