// Package paging is the shared fault-path engine of the repository: the
// piece of the paging data path that sits between a residency check and the
// backing store. One access flows through it as
//
//	FlushArrivals → (resident? caller's business) → Fault → OnAccess → MapIn
//
// covering the page-cache lookup, the in-flight-prefetch wait, the full-miss
// trip through the data path + device, prefetch-candidate generation and
// deduplicated (optionally doorbell-batched) issue, and the residency map-in
// with cgroup-style reclaim and eviction writeback.
//
// Both consumers of the fault path run on this engine:
//
//   - internal/vmm, the discrete-event simulator, instantiates Engine[*proc]
//     — every process shares one engine, exactly as processes share a kernel;
//   - leap.Memory, the byte-addressable runtime over the real remote-memory
//     substrate, instantiates the engine with itself as owner and moves
//     actual page images through the hooks.
//
// The engine is deliberately byte-for-byte the code that used to live inside
// vmm.Machine: counter order, RNG draw order and heap tie-breaking are part
// of its contract, because every figure of the paper reproduction replays
// bit-identically from a seed through this path.
//
// The type parameter O is the owner handed back through hooks and arrivals
// (a simulated process, a Memory runtime); the engine never inspects it, so
// hot paths stay free of boxing and allocation.
package paging

import (
	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/eventq"
	"leap/internal/metrics"
	"leap/internal/pagecache"
	"leap/internal/pagemap"
	"leap/internal/prefetch"
	"leap/internal/rdma"
	"leap/internal/sim"
	"leap/internal/storage"
)

// PageID aliases core.PageID.
type PageID = core.PageID

// Config parameterizes an Engine. The zero value of every field selects the
// remote-memory defaults the simulator uses.
type Config struct {
	// Path selects the data path (legacy block layer vs Leap's lean path).
	Path datapath.Config
	// CachePolicy picks lazy (Linux) or eager (Leap) prefetch-cache
	// reclamation; CacheCapacity bounds the prefetch cache in pages
	// (0 = coupled to the owner's residency budget). CacheScanInterval is
	// the lazy background scan period (0 = pagecache default).
	CachePolicy       pagecache.Policy
	CacheCapacity     int
	CacheScanInterval sim.Duration
	// Prefetcher is consulted on every swap-in; nil means none.
	Prefetcher prefetch.Prefetcher
	// Device is the backing store's latency model; nil defaults to remote
	// memory over a fresh default fabric.
	Device storage.Device
	// QueueDepth, when > 1, fans prefetch candidates out in doorbell-style
	// batches of up to this many pages and batches eviction writebacks
	// behind a dirty backlog of the same bound — provided the device
	// supports batched submission (storage.BatchDevice; remote memory
	// does). At 1 (or on non-batching devices) every page is submitted
	// individually, byte-identical to the unbatched engine.
	QueueDepth int
	// Seed drives all stochastic latency models.
	Seed uint64
}

// arrival is a prefetched page in flight. It carries the issuing owner so
// landing it needs no lookup.
type arrival[O any] struct {
	page core.PageID
	at   sim.Time
	who  O
}

// arrivalLess orders arrivals by completion time (eventq preserves
// container/heap's tie order, so the landing sequence of same-time arrivals
// — and with it cache LRU order — is stable).
func arrivalLess[O any](a, b arrival[O]) bool { return a.at < b.at }

// Engine is the shared fault-path core. It is not safe for concurrent use;
// the owning scheduler (the simulator's event loop, a Memory runtime)
// serializes calls.
type Engine[O any] struct {
	path  *datapath.Path
	cache *pagecache.Cache
	dev   storage.Device
	pf    prefetch.Prefetcher

	inflight  *pagemap.Map[sim.Time]
	inflights *eventq.Heap[arrival[O]]

	// blocked holds pages a concurrent owner is demand-fetching outside its
	// serializing lock (the runtime's single-flight window): candidate
	// generation must not re-issue them as prefetches, or the landed
	// prefetch would collide with the demand page's map-in. Empty — and
	// free — for single-threaded owners like the simulator.
	blocked *pagemap.Map[struct{}]

	// Batched submission (QueueDepth > 1 on a BatchDevice): prefetch
	// fan-out goes through batchDev in chunks of qdepth, and evicted pages
	// accumulate in the writeback backlog until it reaches qdepth.
	batchDev   storage.BatchDevice
	qdepth     int
	batchPages []core.PageID
	batchDists []int64
	batchDone  []sim.Time
	wbPages    []core.PageID
	wbDists    []int64

	// resFree is a free list of resEntry nodes (linked through next), so the
	// map-in/evict churn of the fault path stops allocating.
	resFree *resEntry

	lastDevPage core.PageID // device head/locality tracker
	candBuf     []core.PageID
	issuedBuf   []core.PageID

	recording bool

	// OnInsert, when set, is called with the issuing owner whenever a
	// landed prefetch enters the cache (the simulator charges the owning
	// cgroup; the runtime charges itself).
	OnInsert func(O)
	// OnIssue, when set, receives the deduplicated prefetch pages actually
	// submitted by one OnAccess call — the hook a byte-moving runtime uses
	// to fetch real page images alongside the latency model. The slice is
	// reused; callers must not retain it.
	OnIssue func(O, []core.PageID)
	// OnEvict, when set, is called for every resident page evicted by
	// MapIn, before its writeback is priced — the hook a byte-moving
	// runtime uses to write real dirty page images back. It reports
	// whether the victim still travels to the backing store: false means
	// the owner absorbed it locally (sealed it into a compressed victim
	// tier), so MapIn skips the modeled writeback. Returning true
	// everywhere reproduces the legacy pricing exactly.
	OnEvict func(O, core.PageID) bool
	// Owns, when set, restricts prefetch issue to pages the filter accepts.
	// The sharded runtime runs one engine per PageID stripe: the Leap
	// predictor's trend candidates stay in-stripe by construction (trend
	// deltas between in-stripe faults are multiples of the stripe count),
	// but its cold-start neighbor fallback — and baseline prefetchers like
	// readahead — emit adjacent pages that belong to other stripes, and
	// fetching those here would violate the one-owner-per-page invariant.
	// Nil (every single-engine owner) keeps all candidates: byte-identical
	// to the unfiltered engine.
	Owns func(core.PageID) bool

	// ztier, set via EnableZtier, reports pages sealed in the owner's
	// compressed victim tier; ztierLatency is the decompress charge a
	// fault pays to unseal one. Nil keeps the engine byte-identical to the
	// tierless fault path.
	ztier        func(core.PageID) bool
	ztierLatency sim.Duration
	cZtierHits   *int64

	// LastFaultZtier reports whether the most recent Fault landed in the
	// compressed victim tier (EnableZtier): miss stays false — no remote
	// fetch — but the caller must unseal the page's bytes itself.
	LastFaultZtier bool

	// LastFaultSerial is the CPU-serial share of the most recent Fault's
	// latency: the part spent traversing the data path and cache under the
	// owner's lock (lookup cost, request overhead, page allocation), as
	// opposed to waitable device/wire time that concurrent faults overlap.
	// The closed-loop concurrency model (internal/load) reads it per op.
	LastFaultSerial sim.Duration

	// Global metrics.
	FaultLatency metrics.Histogram // all swap-in faults, all owners
	AllocLatency metrics.Histogram // page-allocation cost paid per miss
	Counters     metrics.Counters

	// Pre-resolved counter handles: the fault path increments through these
	// pointers instead of paying a string-map lookup per event.
	cCacheHits      *int64
	cCacheMisses    *int64
	cInflightHits   *int64
	cInflightAdds   *int64
	cPrefetchIssued *int64
	cSwapouts       *int64
}

// New builds an engine. The RNG fork order (device first when defaulted,
// then path) is part of the determinism contract with the simulator.
func New[O any](cfg Config) *Engine[O] {
	rng := sim.NewRNG(cfg.Seed)
	dev := cfg.Device
	if dev == nil {
		dev = storage.NewRemote(rdma.New(rdma.Config{}, rng.Fork(1)))
	}
	pf := cfg.Prefetcher
	if pf == nil {
		pf = prefetch.None{}
	}
	e := &Engine[O]{
		path: datapath.New(cfg.Path, rng.Fork(2)),
		cache: pagecache.New(pagecache.Config{
			Capacity:     cfg.CacheCapacity,
			Policy:       cfg.CachePolicy,
			ScanInterval: cfg.CacheScanInterval,
		}),
		dev:       dev,
		pf:        pf,
		inflight:  pagemap.New[sim.Time](0),
		inflights: eventq.New(arrivalLess[O]),
		blocked:   pagemap.New[struct{}](0),
		recording: true,
	}
	if cfg.QueueDepth > 1 {
		if bd, ok := dev.(storage.BatchDevice); ok {
			e.batchDev = bd
			e.qdepth = cfg.QueueDepth
		}
	}
	e.cCacheHits = e.Counters.Handle("cache_hits")
	e.cCacheMisses = e.Counters.Handle("cache_misses")
	e.cInflightHits = e.Counters.Handle("inflight_hits")
	e.cInflightAdds = e.Counters.Handle("inflight_adds")
	e.cPrefetchIssued = e.Counters.Handle("prefetch_issued")
	e.cSwapouts = e.Counters.Handle("swapouts")
	return e
}

// Cache exposes the page cache for policy wiring and accounting.
func (e *Engine[O]) Cache() *pagecache.Cache { return e.cache }

// Path exposes the data path for stage histograms.
func (e *Engine[O]) Path() *datapath.Path { return e.path }

// Device exposes the backing store.
func (e *Engine[O]) Device() storage.Device { return e.dev }

// Prefetcher exposes the configured prefetcher.
func (e *Engine[O]) Prefetcher() prefetch.Prefetcher { return e.pf }

// EnableZtier attaches a compressed victim tier to the fault path: contains
// reports sealed pages, and a fault landing on one charges the data path's
// hit cost plus latency (the decompress charge) instead of a fabric round
// trip — miss stays false, LastFaultZtier is set, and the caller unseals the
// bytes itself. Prefetch candidate generation skips sealed pages: a sealed
// dirty page's only fresh image is local, so fetching its stale remote copy
// would break read-your-writes. The "ztier_hits" counter is registered here
// rather than in New so engines without a tier keep their counter set — and
// their byte-identical recorded output — unchanged.
func (e *Engine[O]) EnableZtier(contains func(core.PageID) bool, latency sim.Duration) {
	e.ztier = contains
	e.ztierLatency = latency
	e.cZtierHits = e.Counters.Handle("ztier_hits")
}

// SetRecording toggles metric collection; warmup runs with recording off.
func (e *Engine[O]) SetRecording(on bool) { e.recording = on }

// Recording reports whether metric collection is on.
func (e *Engine[O]) Recording() bool { return e.recording }

// FlushArrivals lands every in-flight prefetch that has completed by now and
// ticks the cache's background reclaimer.
func (e *Engine[O]) FlushArrivals(now sim.Time) {
	for e.inflights.Len() > 0 && e.inflights.Peek().at <= now {
		a := e.inflights.Pop()
		if at, ok := e.inflight.Get(a.page); ok && at == a.at {
			e.inflight.Delete(a.page)
			if e.cache.Insert(a.page, true, a.at) && e.OnInsert != nil {
				e.OnInsert(a.who)
			}
		}
	}
	e.cache.Tick(now)
}

// Fault serves one swap-in of a non-resident page at virtual time now and
// returns the latency paid plus whether the page was a full miss (neither
// cached nor in flight — the caller must fetch its bytes, and the
// prefetcher's candidate generation will run). pid is the faulting process
// for prefetch feedback; cpu identifies the faulting core for multi-queue
// devices (the simulator uses the PID for both, the runtime a single core).
func (e *Engine[O]) Fault(pid prefetch.PID, cpu int, page core.PageID, now sim.Time) (latency sim.Duration, miss bool) {
	e.LastFaultZtier = false
	if hit, wasPre := e.cache.Lookup(page, now); hit {
		latency = e.path.HitLatency()
		e.LastFaultSerial = latency
		if wasPre {
			e.pf.OnPrefetchHit(pid)
		}
		if e.recording {
			*e.cCacheHits++
		}
	} else if at, ok := e.inflight.Get(page); ok {
		// The prefetch is on the wire: pay only the remaining time.
		e.inflight.Delete(page)
		wait := at.Sub(now)
		if wait < 0 {
			wait = 0
		}
		hit := e.path.HitLatency()
		latency = hit + wait
		e.LastFaultSerial = hit
		e.pf.OnPrefetchHit(pid)
		if e.recording {
			*e.cInflightHits++
			// An in-flight consumption is still a prefetch success for
			// accuracy accounting (it was added and used).
			*e.cInflightAdds++
		}
	} else if e.ztier != nil && e.ztier(page) {
		// Sealed in the compressed victim tier: the page decompresses
		// locally — all CPU-serial, no fabric round trip, no device-model
		// draw.
		e.LastFaultZtier = true
		latency = e.path.HitLatency() + e.ztierLatency
		e.LastFaultSerial = latency
		if e.recording {
			*e.cZtierHits++
		}
	} else {
		// Full miss: data path overhead + device + page allocation.
		miss = true
		b := e.path.RequestOverhead()
		dist := int64(page - e.lastDevPage)
		e.lastDevPage = page
		submit := now.Add(b.Total())
		done := e.dev.Read(cpu, submit, page, dist)
		alloc := e.cache.AllocLatency()
		latency = b.Total() + done.Sub(submit) + alloc
		e.LastFaultSerial = b.Total() + alloc
		if e.recording {
			*e.cCacheMisses++
			e.AllocLatency.Observe(alloc)
		}
	}
	if e.recording {
		e.FaultLatency.Observe(latency)
	}
	return latency, miss
}

// Hint is an madvise-style access-pattern declaration threaded into the
// fault path per access (see OnAccessHinted). HintNone is the zero value
// and leaves candidate generation untouched.
type Hint uint8

// Hint values. Sequential replaces the predictor's window with a
// straight-line one; Random suppresses issue entirely.
const (
	HintNone Hint = iota
	HintSequential
	HintRandom
)

// SequentialHintWindow is the straight-line window a HintSequential access
// issues: the next N pages after the fault, clamped to the hinted range
// (matches the paper's PW_size_max default of 8).
const SequentialHintWindow = 8

// OnAccess records the access with the prefetcher and, on a miss, collects
// and issues the prefetch window. The prefetcher sees every swap-in (§4.1:
// cache look-ups are monitored, resident pages are not); candidate
// generation sits on the miss path like swapin_readahead.
func (e *Engine[O]) OnAccess(o O, res *Resident, pid prefetch.PID, cpu int, page core.PageID, miss bool, now sim.Time) {
	e.OnAccessHinted(o, res, pid, cpu, page, miss, now, HintNone, 0)
}

// OnAccessHinted is OnAccess carrying an madvise-style hint for this
// access. The prefetcher always records the access — hints steer issue,
// not learning — but the candidates it returns are overridden per the
// hint: HintSequential discards them for a straight-line window of up to
// SequentialHintWindow pages after the fault, clamped below hintEnd
// (exclusive); HintRandom discards them and issues nothing. HintNone is
// byte-identical to OnAccess.
func (e *Engine[O]) OnAccessHinted(o O, res *Resident, pid prefetch.PID, cpu int, page core.PageID, miss bool, now sim.Time, hint Hint, hintEnd core.PageID) {
	e.candBuf = e.pf.OnAccess(pid, page, miss, e.candBuf[:0])
	switch hint {
	case HintRandom:
		e.candBuf = e.candBuf[:0]
	case HintSequential:
		e.candBuf = e.candBuf[:0]
		if miss {
			for c := page + 1; c < hintEnd && c <= page+SequentialHintWindow; c++ {
				e.candBuf = append(e.candBuf, c)
			}
		}
	}
	e.issuePrefetches(o, res, cpu, e.candBuf, now)
}

// Prefetch issues the given pages through the normal prefetch path — the
// same dedup (resident, cached, in flight, blocked, sealed, foreign-stripe)
// and the same device model as predictor-driven windows — without
// consulting the prefetcher. It is the engine half of an madvise(WILLNEED):
// the owner warms pages it knows it will touch. The slice is not retained.
func (e *Engine[O]) Prefetch(o O, res *Resident, cpu int, pages []core.PageID, now sim.Time) {
	e.issuePrefetches(o, res, cpu, pages, now)
}

// issuePrefetches fetches candidate pages into the cache asynchronously.
// Prefetch I/O rides the same device model as demand fetches — occupying
// queues and bandwidth — but nobody blocks on it. Linux batches read-ahead
// pages onto the demand request's trip through the block layer, so no
// per-page block-layer overhead is charged on either path; each page pays
// only dispatch + device time.
func (e *Engine[O]) issuePrefetches(o O, res *Resident, cpu int, cands []core.PageID, now sim.Time) {
	if e.batchDev != nil {
		e.issuePrefetchBatches(o, res, cpu, cands, now)
		return
	}
	e.issuedBuf = e.issuedBuf[:0]
	for _, c := range cands {
		if res.Contains(c) {
			continue
		}
		if e.cache.Contains(c) {
			continue
		}
		if e.inflight.Contains(c) {
			continue
		}
		if e.blocked.Len() > 0 && e.blocked.Contains(c) {
			continue
		}
		if e.ztier != nil && e.ztier(c) {
			continue
		}
		if e.Owns != nil && !e.Owns(c) {
			continue
		}
		dist := int64(c - e.lastDevPage)
		e.lastDevPage = c
		done := e.dev.Read(cpu, now, c, dist)
		e.inflight.Put(c, done)
		e.inflights.Push(arrival[O]{page: c, at: done, who: o})
		if e.OnIssue != nil {
			e.issuedBuf = append(e.issuedBuf, c)
		}
		if e.recording {
			*e.cPrefetchIssued++
		}
	}
	if e.OnIssue != nil && len(e.issuedBuf) > 0 {
		e.OnIssue(o, e.issuedBuf)
	}
}

// issuePrefetchBatches is the doorbell path: the deduplicated candidates go
// to the device in chunks of up to qdepth pages, so a prefetch window costs
// one submission (and one fabric round-trip draw) per chunk instead of one
// per page — the fan-out overlap the async remote engine exists for.
func (e *Engine[O]) issuePrefetchBatches(o O, res *Resident, cpu int, cands []core.PageID, now sim.Time) {
	e.batchPages = e.batchPages[:0]
	e.batchDists = e.batchDists[:0]
	for _, c := range cands {
		if res.Contains(c) || e.cache.Contains(c) || e.inflight.Contains(c) {
			continue
		}
		if e.blocked.Len() > 0 && e.blocked.Contains(c) {
			continue
		}
		if e.ztier != nil && e.ztier(c) {
			continue
		}
		if e.Owns != nil && !e.Owns(c) {
			continue
		}
		e.batchPages = append(e.batchPages, c)
		e.batchDists = append(e.batchDists, int64(c-e.lastDevPage))
		e.lastDevPage = c
	}
	for lo := 0; lo < len(e.batchPages); lo += e.qdepth {
		hi := min(lo+e.qdepth, len(e.batchPages))
		e.batchDone = e.batchDev.ReadBatch(cpu, now,
			e.batchPages[lo:hi], e.batchDists[lo:hi], e.batchDone)
		for i, c := range e.batchPages[lo:hi] {
			done := e.batchDone[i]
			e.inflight.Put(c, done)
			e.inflights.Push(arrival[O]{page: c, at: done, who: o})
			if e.recording {
				*e.cPrefetchIssued++
			}
		}
	}
	if e.OnIssue != nil && len(e.batchPages) > 0 {
		e.OnIssue(o, e.batchPages)
	}
}

// BlockPrefetch marks page as being demand-fetched outside the owner's
// serializing lock: until UnblockPrefetch, candidate generation skips it, so
// a concurrent fault cannot race a prefetch of the same page against the
// demand fetch's map-in. Single-threaded owners never populate the set, so
// the dedup fast path is unaffected.
func (e *Engine[O]) BlockPrefetch(page core.PageID) { e.blocked.Put(page, struct{}{}) }

// UnblockPrefetch ends a BlockPrefetch window.
func (e *Engine[O]) UnblockPrefetch(page core.PageID) { e.blocked.Delete(page) }

// CancelPrefetch forgets an in-flight prefetch of page (its heap entry
// becomes a stale no-op), so a byte-moving runtime can abandon a prefetch
// whose real fetch failed. It reports whether the page was in flight.
func (e *Engine[O]) CancelPrefetch(page core.PageID) bool {
	if !e.inflight.Contains(page) {
		return false
	}
	e.inflight.Delete(page)
	return true
}

// MapIn maps a freshly swapped-in page into res, evicting (and swapping
// out) LRU pages if the budget is exceeded. The page must not already be
// resident — callers only reach here after the residency check missed.
//
// The cgroup charge covers both mapped pages and the owner's share of the
// page cache. Under pressure, reclaim targets the page cache first (kswapd
// prefers cold cache pages over mapped ones) — consumed ghosts and stale
// unconsumed prefetches, which is where a flooding prefetcher churns its own
// pages — then falls back to evicting the owner's LRU pages. Fresh
// prefetches get a 2ms grace so pressure cannot cancel a prefetch that is
// about to be consumed.
func (e *Engine[O]) MapIn(o O, res *Resident, cpu int, page core.PageID, now sim.Time) {
	en := e.newResEntry(page)
	res.m.Put(page, en)
	en.next = res.head
	if res.head != nil {
		res.head.prev = en
	}
	res.head = en
	if res.tail == nil {
		res.tail = en
	}
	if over := int64(res.m.Len()) + res.Charged - res.Limit; over > 0 {
		e.cache.ReclaimAged(int(over), 2*sim.Millisecond, now)
	}
	budget := res.Limit - res.Charged
	if floor := int64(16); budget < floor {
		budget = floor
	}
	for int64(res.m.Len()) > budget && res.tail != nil {
		victim := res.tail
		res.tail = victim.prev
		if res.tail != nil {
			res.tail.next = nil
		} else {
			res.head = nil
		}
		res.m.Delete(victim.page)
		writeback := true
		if e.OnEvict != nil {
			writeback = e.OnEvict(o, victim.page)
		}
		// Write-back to the backing store (asynchronous: occupies the
		// device/fabric but nobody waits). Swap-out is slot-clustered, so
		// it neither pays nor causes read-head seeks. On a batching device
		// the victim joins the bounded dirty backlog instead of paying a
		// submission per page. A victim the owner absorbed locally (sealed
		// into the compressed tier) skips the charge — no bytes traveled.
		if writeback {
			e.QueueWriteback(cpu, victim.page, now)
		}
		e.freeResEntry(victim)
		if e.recording {
			*e.cSwapouts++
		}
	}
}

// QueueWriteback prices one asynchronous page writeback on the modeled
// device — the charge MapIn applies to every evicted victim — without any
// residency bookkeeping: on a batching device the page joins the bounded
// dirty backlog, otherwise it pays an individual submission. The compressed
// tier uses it when a sealed victim overflows to the backing store for
// real.
func (e *Engine[O]) QueueWriteback(cpu int, page core.PageID, now sim.Time) {
	if e.batchDev != nil {
		e.wbPages = append(e.wbPages, page)
		e.wbDists = append(e.wbDists, 1)
		if len(e.wbPages) >= e.qdepth {
			e.FlushWriteback(cpu, now)
		}
	} else {
		e.dev.Write(cpu, now, page, 1)
	}
}

// FlushWriteback drains the eviction backlog as one doorbell. It is a no-op
// when the backlog is empty or the engine is unbatched.
func (e *Engine[O]) FlushWriteback(cpu int, now sim.Time) {
	if len(e.wbPages) == 0 {
		return
	}
	e.batchDone = e.batchDev.WriteBatch(cpu, now, e.wbPages, e.wbDists, e.batchDone)
	e.wbPages = e.wbPages[:0]
	e.wbDists = e.wbDists[:0]
}

// newResEntry takes a node off the free list, or allocates when it is empty.
func (e *Engine[O]) newResEntry(page core.PageID) *resEntry {
	en := e.resFree
	if en == nil {
		return &resEntry{page: page}
	}
	e.resFree = en.next
	en.page = page
	en.prev, en.next = nil, nil
	return en
}

// freeResEntry returns an unlinked node to the free list.
func (e *Engine[O]) freeResEntry(en *resEntry) {
	en.prev = nil
	en.next = e.resFree
	e.resFree = en
}
