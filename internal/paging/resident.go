package paging

import (
	"leap/internal/core"
	"leap/internal/pagemap"
)

// resEntry is one resident page in an owner's LRU list. Entries are pooled
// on the owning engine's free list across all Resident sets.
type resEntry struct {
	page       core.PageID // global address
	prev, next *resEntry
}

// Resident is one owner's residency set — the page-table side of the fault
// path: an LRU-ordered page set bounded by a cgroup-style budget. The
// engine's MapIn inserts pages and evicts (with writeback) past the budget;
// the owner answers its own residency checks with Touch before entering the
// fault path.
type Resident struct {
	// Limit is the local memory budget in pages (the cgroup limit).
	Limit int64
	// Charged tracks page-cache pages attributed to this owner's cgroup:
	// in Linux, swap-cache pages are charged to the faulting cgroup, so a
	// flooding prefetcher squeezes the owner's own resident set. MapIn
	// enforces resident+charged <= limit. The owner keeps it in step via
	// the engine's OnInsert hook and the cache's OnEvict callback.
	Charged int64

	m          *pagemap.Map[*resEntry]
	head, tail *resEntry // head = most recently used
}

// NewResident returns an empty set with capacity hinted to the budget.
func NewResident(hint int) *Resident {
	return &Resident{m: pagemap.New[*resEntry](hint)}
}

// Len reports the number of resident pages.
func (r *Resident) Len() int { return r.m.Len() }

// Contains reports residency without touching LRU order.
func (r *Resident) Contains(page core.PageID) bool { return r.m.Contains(page) }

// Touch reports whether page is resident, moving it to the LRU front when
// it is — the no-fault path of an access.
func (r *Resident) Touch(page core.PageID) bool {
	e, ok := r.m.Get(page)
	if !ok {
		return false
	}
	if r.head == e {
		return true
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if r.tail == e {
		r.tail = e.prev
	}
	// Push front.
	e.prev = nil
	e.next = r.head
	if r.head != nil {
		r.head.prev = e
	}
	r.head = e
	if r.tail == nil {
		r.tail = e
	}
	return true
}
