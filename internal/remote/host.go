package remote

import (
	"fmt"
	"slices"
	"sync"

	"leap/internal/core"
	"leap/internal/sim"
	"leap/internal/ztier"
)

// HostConfig parameterizes a Host.
type HostConfig struct {
	// SlabPages is the slab granularity in pages (default DefaultSlabPages).
	SlabPages int
	// Replicas is the number of copies per slab (default 2, the paper's
	// remote in-memory replication).
	Replicas int
	// QueueDepth caps how many queued page operations the async engine
	// packs into one doorbell-style batched frame per agent (default
	// DefaultQueueDepth). Depth 1 degenerates to one wire frame per page,
	// matching the synchronous path exactly.
	QueueDepth int
	// Seed salts the rendezvous placement hash, so distinct hosts sharing
	// agents spread slabs independently.
	Seed uint64
	// Retry bounds retries, deadlines, backoff and hedging in the async
	// ticket engine (see RetryPolicy). The zero value keeps the legacy
	// unlimited-failover behavior.
	Retry RetryPolicy
	// Compress ships the async engine's batched doorbell frames with page
	// images run through the deterministic ztier block codec: write batches
	// go out compressed, and read batches ask the agent for compressed
	// responses. Single-op frames and the synchronous paths stay raw. The
	// savings show up in the WireRawBytes/WireCompressedBytes stats, not in
	// the latency model — fabric cost models charge per page, and the codec
	// is deterministic, so enabling compression never perturbs simulated
	// timings.
	Compress bool
}

// DefaultQueueDepth is the default per-agent batch limit of the async
// engine.
const DefaultQueueDepth = 8

func (c HostConfig) withDefaults() HostConfig {
	if c.SlabPages <= 0 {
		c.SlabPages = DefaultSlabPages
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.QueueDepth > MaxBatchOps {
		c.QueueDepth = MaxBatchOps
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// HostStats counts host-side remote-memory activity.
type HostStats struct {
	// Reads and Writes count page operations (one per page, whether issued
	// synchronously or through the async engine).
	Reads, Writes int64
	// Failovers counts reads served by a replica after the primary failed.
	Failovers int64
	// SlabsMapped counts slab placements performed.
	SlabsMapped int64
	// Repairs counts slabs re-replicated after agent failures.
	Repairs int64
	// SlabsMoved counts slabs migrated by Rebalance.
	SlabsMoved int64
	// AsyncReads / AsyncWrites count operations issued through the ticket
	// API; CoalescedReads counts async reads that piggybacked on an
	// already-queued read of the same page, and DirtyReads counts reads
	// served from a not-yet-flushed write's buffer (read-your-writes).
	AsyncReads, AsyncWrites, CoalescedReads, DirtyReads int64
	// BatchCalls counts wire frames carrying more than one page;
	// BatchedPages is the total pages those frames carried.
	BatchCalls, BatchedPages int64
	// Retries counts async reads requeued after a failed attempt;
	// DeadlineFailed counts tickets failed by the per-ticket deadline.
	Retries, DeadlineFailed int64
	// HedgedReads counts duplicate reads issued to a second holder because
	// the preferred target was hinted slow; HedgeWins are hedges whose
	// duplicate completed first; HedgeDiscards are queue entries dropped
	// unissued because the racing copy already completed.
	HedgedReads, HedgeWins, HedgeDiscards int64
	// HotCopies counts hot-page replica installs (ReplicateHot); HotReads
	// counts reads served by a hot holder outside the slab placement.
	HotCopies, HotReads int64
	// CompressedFrames counts batched frames that traveled compressed
	// (HostConfig.Compress); WireRawBytes is what those frames' payloads
	// would have cost raw, WireCompressedBytes what they actually cost.
	CompressedFrames, WireRawBytes, WireCompressedBytes int64
}

// Host is the machine-local agent of §4.4: it maps the swap address space
// onto remote slabs, placing each slab on its rendezvous-hashed agents and
// replicating it for fault tolerance. Pages move either synchronously
// (ReadPage/WritePage, one round trip per page) or through the async ticket
// engine (ReadPageAsync/WritePageAsync/Flush), which coalesces duplicate
// reads and drains per-agent queues with doorbell-style batched frames.
// Safe for concurrent use.
type Host struct {
	cfg HostConfig

	mu         sync.Mutex
	transports []Transport
	slabLoad   []int            // slabs placed per agent
	placements map[SlabID][]int // slab → agent indices, primary first
	failed     map[int]bool     // agents marked dead (excluded from placement)
	// acked records, per page, the agent indices that acknowledged its most
	// recent write. A transiently failed replica write leaves that copy
	// stale; reads must prefer acked replicas or they break
	// read-your-writes (divergent replicas).
	acked map[core.PageID][]int
	// degraded tracks pages whose most recent write was acknowledged by
	// fewer than Replicas agents; RepairSlabs re-pushes them.
	degraded map[core.PageID]bool
	// writeGen counts completed writes per page. Paths that copy a page with
	// h.mu released (ReplicateHot, slab migration) snapshot it with their
	// source read and re-check it before certifying the copy into the ack
	// set: a bump in between means a write raced in and the copy is stale.
	writeGen map[core.PageID]uint64
	// syncWrites counts in-flight synchronous WritePage calls per page
	// (their replica fan-out runs with h.mu released). DropHot consults it
	// before copying a hot holder's bytes back onto the placement, so the
	// copy-back can never clobber a concurrent write's fresher bytes.
	syncWrites map[core.PageID]int
	// retired agents are draining for graceful scale-down: excluded from
	// rendezvous ranking (so Rebalance migrates their share away) while
	// remaining fully live copy sources and read targets.
	retired map[int]bool
	// slow agents are hinted lagging by the control plane (SetAgentSlow):
	// reads order away from them, and with RetryPolicy.HedgeReads a read
	// forced onto one is duplicated to another acked holder.
	slow map[int]bool
	// hot maps a page to extra read replicas beyond its slab placement —
	// the control plane's top-K fault-frequency pages (ReplicateHot).
	hot map[core.PageID][]int

	// now is the virtual-time source for per-ticket deadlines; onBackoff
	// receives retry pacing charges (both optional, see SetTimeSource /
	// SetBackoffObserver).
	now       func() sim.Time
	onBackoff func(agent int, d sim.Duration)

	// Async engine state: per-agent FIFO queues of pending operations plus
	// the coalescing indexes (see queue.go).
	queues       [][]queueEntry
	readsPending map[core.PageID]*pendingRead
	dirty        map[core.PageID]*pendingWrite
	bufFree      [][]byte // recycled page buffers for pending writes

	// comp is the wire codec state for HostConfig.Compress (used under mu).
	comp ztier.Compressor

	stats HostStats
}

// NewHost returns a host over the given agent transports. At least
// max(1, Replicas) transports are required.
func NewHost(cfg HostConfig, transports []Transport) (*Host, error) {
	cfg = cfg.withDefaults()
	if len(transports) == 0 {
		return nil, fmt.Errorf("remote: host needs at least one agent")
	}
	if cfg.Replicas > len(transports) {
		cfg.Replicas = len(transports)
	}
	return &Host{
		cfg:          cfg,
		transports:   transports,
		slabLoad:     make([]int, len(transports)),
		placements:   make(map[SlabID][]int),
		acked:        make(map[core.PageID][]int),
		degraded:     make(map[core.PageID]bool),
		writeGen:     make(map[core.PageID]uint64),
		syncWrites:   make(map[core.PageID]int),
		queues:       make([][]queueEntry, len(transports)),
		readsPending: make(map[core.PageID]*pendingRead),
		dirty:        make(map[core.PageID]*pendingWrite),
	}, nil
}

// Stats reports a copy of the counters.
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// SlabLoad reports slabs placed per agent (for balance inspection).
func (h *Host) SlabLoad() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, len(h.slabLoad))
	copy(out, h.slabLoad)
	return out
}

// locate maps a page to its slab and intra-slab offset.
func (h *Host) locate(page core.PageID) (SlabID, uint32) {
	return SlabID(int64(page) / int64(h.cfg.SlabPages)),
		uint32(int64(page) % int64(h.cfg.SlabPages))
}

// placement returns (mapping if needed) the replica set for slab: the
// rendezvous-ranked live agents, walked in score order until Replicas of
// them accept the slab (an agent at capacity or unreachable is skipped, so
// placement degrades gracefully under pressure). Callers hold h.mu.
func (h *Host) placement(slab SlabID) ([]int, error) {
	if p, ok := h.placements[slab]; ok {
		return p, nil
	}
	replicas := make([]int, 0, h.cfg.Replicas)
	for _, idx := range h.rendezvousRank(slab, nil) {
		if len(replicas) == h.cfg.Replicas {
			break
		}
		resp, err := h.transports[idx].Call(&Request{Op: OpMapSlab, Slab: slab})
		if err == nil && resp.Status == StatusOK {
			replicas = append(replicas, idx)
			h.slabLoad[idx]++
		}
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("remote: no agent could map slab %d", slab)
	}
	h.placements[slab] = replicas
	h.stats.SlabsMapped++
	return replicas, nil
}

// WritePage stores one page (len(data) must be PageSize) on every replica.
// It fails only when no replica accepts the write.
func (h *Host) WritePage(page core.PageID, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("remote: WritePage with %d bytes, want %d", len(data), PageSize)
	}
	slab, off := h.locate(page)

	h.mu.Lock()
	if pw, ok := h.dirty[page]; ok {
		// An unflushed async write to the same page is queued: supersede its
		// bytes and flush it now, so the synchronous write cannot be
		// clobbered by an older image when the doorbell finally rings.
		copy(pw.data, data)
		t := &Ticket{host: h}
		pw.superseded = append(pw.superseded, pw.ticket)
		pw.ticket = t
		h.flushLocked()
		err := t.err
		h.mu.Unlock()
		return err
	}
	replicas, err := h.placement(slab)
	if err != nil {
		h.mu.Unlock()
		return err
	}
	// Hot extra holders receive every write too, or their copies would go
	// stale the moment the page is written again.
	targets := h.writeTargets(page, replicas)
	transports := make([]Transport, len(targets))
	for i, idx := range targets {
		transports[i] = h.transports[idx]
	}
	h.stats.Writes++
	h.syncWrites[page]++
	h.mu.Unlock()

	ackedIdx := make([]int, 0, len(targets))
	var lastErr error
	for i, tr := range transports {
		resp, err := tr.Call(&Request{Op: OpWrite, Slab: slab, PageOff: off, Payload: data})
		switch {
		case err != nil:
			lastErr = err
		case resp.Status != StatusOK:
			lastErr = statusError(OpWrite, resp.Status)
		default:
			ackedIdx = append(ackedIdx, targets[i])
		}
	}
	h.mu.Lock()
	if n := h.syncWrites[page]; n <= 1 {
		delete(h.syncWrites, page)
	} else {
		h.syncWrites[page] = n - 1
	}
	h.writeGen[page]++
	if len(ackedIdx) == 0 {
		h.mu.Unlock()
		return fmt.Errorf("remote: write page %d failed on all replicas: %w", page, lastErr)
	}
	h.acked[page] = ackedIdx
	if len(ackedIdx) < h.cfg.Replicas {
		h.degraded[page] = true
	} else {
		delete(h.degraded, page)
	}
	h.mu.Unlock()
	return nil
}

// AckedReplicas reports (a copy of) the agent indices that acknowledged
// page's most recent write — the replicas known to hold its latest bytes.
// Repair extends the set as it re-propagates fresh copies.
func (h *Host) AckedReplicas(page core.PageID) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return slices.Clone(h.acked[page])
}

// DegradedPages reports how many pages are currently under-acknowledged:
// their latest write reached fewer than Replicas agents and has not been
// re-pushed by RepairSlabs yet.
func (h *Host) DegradedPages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.degraded)
}

// UnderReplicated reports how many placed slabs currently have fewer than
// Replicas live (not-failed) replicas — the repair backlog of §4.5.
func (h *Host) UnderReplicated() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, replicas := range h.placements {
		alive := 0
		for _, idx := range replicas {
			if !h.failed[idx] {
				alive++
			}
		}
		if alive < h.cfg.Replicas {
			n++
		}
	}
	return n
}

// ReadPage fetches one page into buf (len PageSize), trying the primary
// first and failing over to replicas.
func (h *Host) ReadPage(page core.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("remote: ReadPage with %d-byte buffer, want %d", len(buf), PageSize)
	}
	slab, off := h.locate(page)

	h.mu.Lock()
	if pw, ok := h.dirty[page]; ok {
		// Read-your-writes: a queued, unflushed write holds the freshest
		// bytes for this page.
		copy(buf, pw.data)
		h.stats.DirtyReads++
		h.stats.Reads++
		h.mu.Unlock()
		return nil
	}
	replicas, ok := h.placements[slab]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("remote: read of never-written page %d", page)
	}
	// Order the attempt list so replicas that acknowledged this page's most
	// recent write come first: a replica that missed a write (transient
	// fault) holds stale bytes and must only be a last resort. Hot extra
	// holders and slow-agent avoidance fold into the same ordering.
	order := h.readCandidates(page, replicas)
	transports := make([]Transport, len(order))
	for i, idx := range order {
		transports[i] = h.transports[idx]
	}
	h.stats.Reads++
	h.mu.Unlock()

	var lastErr error
	for i, tr := range transports {
		resp, err := tr.Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
		switch {
		case err != nil:
			lastErr = err
		case resp.Status != StatusOK:
			lastErr = statusError(OpRead, resp.Status)
		default:
			if i > 0 || !slices.Contains(replicas, order[i]) {
				h.mu.Lock()
				if i > 0 {
					h.stats.Failovers++
				}
				if !slices.Contains(replicas, order[i]) {
					h.stats.HotReads++
				}
				h.mu.Unlock()
			}
			copy(buf, resp.Payload)
			return nil
		}
	}
	return fmt.Errorf("remote: read page %d failed on all replicas: %w", page, lastErr)
}

// Close flushes any queued asynchronous operations (best effort) and closes
// all transports.
func (h *Host) Close() error {
	h.mu.Lock()
	h.flushLocked()
	h.mu.Unlock()
	var first error
	for _, tr := range h.transports {
		if err := tr.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
