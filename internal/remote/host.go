package remote

import (
	"fmt"
	"slices"
	"sync"

	"leap/internal/core"
	"leap/internal/sim"
)

// HostConfig parameterizes a Host.
type HostConfig struct {
	// SlabPages is the slab granularity in pages (default DefaultSlabPages).
	SlabPages int
	// Replicas is the number of copies per slab (default 2, the paper's
	// remote in-memory replication).
	Replicas int
	// Seed drives placement decisions deterministically.
	Seed uint64
}

func (c HostConfig) withDefaults() HostConfig {
	if c.SlabPages <= 0 {
		c.SlabPages = DefaultSlabPages
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	return c
}

// HostStats counts host-side remote-memory activity.
type HostStats struct {
	Reads, Writes int64
	// Failovers counts reads served by a replica after the primary failed.
	Failovers int64
	// SlabsMapped counts slab placements performed.
	SlabsMapped int64
	// Repairs counts slabs re-replicated after agent failures.
	Repairs int64
}

// Host is the machine-local agent of §4.4: it maps the swap address space
// onto remote slabs, placing each slab with power-of-two-choices across
// agents and replicating it for fault tolerance. Safe for concurrent use.
type Host struct {
	cfg HostConfig

	mu         sync.Mutex
	rng        *sim.RNG
	transports []Transport
	slabLoad   []int            // slabs placed per agent
	placements map[SlabID][]int // slab → agent indices, primary first
	failed     map[int]bool     // agents marked dead (excluded from placement)
	// acked records, per page, the agent indices that acknowledged its most
	// recent write. A transiently failed replica write leaves that copy
	// stale; reads must prefer acked replicas or they break
	// read-your-writes (divergent replicas).
	acked map[core.PageID][]int
	// degraded tracks pages whose most recent write was acknowledged by
	// fewer than Replicas agents; RepairSlabs re-pushes them.
	degraded map[core.PageID]bool
	stats    HostStats
}

// NewHost returns a host over the given agent transports. At least
// max(1, Replicas) transports are required.
func NewHost(cfg HostConfig, transports []Transport) (*Host, error) {
	cfg = cfg.withDefaults()
	if len(transports) == 0 {
		return nil, fmt.Errorf("remote: host needs at least one agent")
	}
	if cfg.Replicas > len(transports) {
		cfg.Replicas = len(transports)
	}
	return &Host{
		cfg:        cfg,
		rng:        sim.NewRNG(cfg.Seed),
		transports: transports,
		slabLoad:   make([]int, len(transports)),
		placements: make(map[SlabID][]int),
		acked:      make(map[core.PageID][]int),
		degraded:   make(map[core.PageID]bool),
	}, nil
}

// Stats reports a copy of the counters.
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// SlabLoad reports slabs placed per agent (for balance inspection).
func (h *Host) SlabLoad() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, len(h.slabLoad))
	copy(out, h.slabLoad)
	return out
}

// locate maps a page to its slab and intra-slab offset.
func (h *Host) locate(page core.PageID) (SlabID, uint32) {
	return SlabID(int64(page) / int64(h.cfg.SlabPages)),
		uint32(int64(page) % int64(h.cfg.SlabPages))
}

// pickTwoChoices returns the index of the less-loaded of two distinct
// random agents not present in exclude.
func (h *Host) pickTwoChoices(exclude map[int]bool) int {
	n := len(h.transports)
	candidates := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !exclude[i] && !h.failed[i] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	if len(candidates) == 1 {
		return candidates[0]
	}
	a := candidates[h.rng.Intn(len(candidates))]
	b := candidates[h.rng.Intn(len(candidates))]
	for b == a {
		b = candidates[h.rng.Intn(len(candidates))]
	}
	if h.slabLoad[b] < h.slabLoad[a] {
		return b
	}
	return a
}

// placement returns (mapping if needed) the replica set for slab. Callers
// hold h.mu.
func (h *Host) placement(slab SlabID) ([]int, error) {
	if p, ok := h.placements[slab]; ok {
		return p, nil
	}
	exclude := make(map[int]bool, h.cfg.Replicas)
	replicas := make([]int, 0, h.cfg.Replicas)
	for len(replicas) < h.cfg.Replicas {
		idx := h.pickTwoChoices(exclude)
		if idx < 0 {
			break
		}
		resp, err := h.transports[idx].Call(&Request{Op: OpMapSlab, Slab: slab})
		if err == nil && resp.Status == StatusOK {
			replicas = append(replicas, idx)
			h.slabLoad[idx]++
		}
		exclude[idx] = true
		if len(exclude) == len(h.transports) {
			break
		}
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("remote: no agent could map slab %d", slab)
	}
	h.placements[slab] = replicas
	h.stats.SlabsMapped++
	return replicas, nil
}

// WritePage stores one page (len(data) must be PageSize) on every replica.
// It fails only when no replica accepts the write.
func (h *Host) WritePage(page core.PageID, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("remote: WritePage with %d bytes, want %d", len(data), PageSize)
	}
	slab, off := h.locate(page)

	h.mu.Lock()
	replicas, err := h.placement(slab)
	if err != nil {
		h.mu.Unlock()
		return err
	}
	transports := make([]Transport, len(replicas))
	for i, idx := range replicas {
		transports[i] = h.transports[idx]
	}
	h.stats.Writes++
	h.mu.Unlock()

	ackedIdx := make([]int, 0, len(replicas))
	var lastErr error
	for i, tr := range transports {
		resp, err := tr.Call(&Request{Op: OpWrite, Slab: slab, PageOff: off, Payload: data})
		switch {
		case err != nil:
			lastErr = err
		case resp.Status != StatusOK:
			lastErr = statusError(OpWrite, resp.Status)
		default:
			ackedIdx = append(ackedIdx, replicas[i])
		}
	}
	if len(ackedIdx) == 0 {
		return fmt.Errorf("remote: write page %d failed on all replicas: %w", page, lastErr)
	}
	h.mu.Lock()
	h.acked[page] = ackedIdx
	if len(ackedIdx) < h.cfg.Replicas {
		h.degraded[page] = true
	} else {
		delete(h.degraded, page)
	}
	h.mu.Unlock()
	return nil
}

// AckedReplicas reports (a copy of) the agent indices that acknowledged
// page's most recent write — the replicas known to hold its latest bytes.
// Repair extends the set as it re-propagates fresh copies.
func (h *Host) AckedReplicas(page core.PageID) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return slices.Clone(h.acked[page])
}

// DegradedPages reports how many pages are currently under-acknowledged:
// their latest write reached fewer than Replicas agents and has not been
// re-pushed by RepairSlabs yet.
func (h *Host) DegradedPages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.degraded)
}

// UnderReplicated reports how many placed slabs currently have fewer than
// Replicas live (not-failed) replicas — the repair backlog of §4.5.
func (h *Host) UnderReplicated() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, replicas := range h.placements {
		alive := 0
		for _, idx := range replicas {
			if !h.failed[idx] {
				alive++
			}
		}
		if alive < h.cfg.Replicas {
			n++
		}
	}
	return n
}

// ReadPage fetches one page into buf (len PageSize), trying the primary
// first and failing over to replicas.
func (h *Host) ReadPage(page core.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("remote: ReadPage with %d-byte buffer, want %d", len(buf), PageSize)
	}
	slab, off := h.locate(page)

	h.mu.Lock()
	replicas, ok := h.placements[slab]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("remote: read of never-written page %d", page)
	}
	// Order the attempt list so replicas that acknowledged this page's most
	// recent write come first: a replica that missed a write (transient
	// fault) holds stale bytes and must only be a last resort.
	ackedIdx := h.acked[page]
	order := make([]int, 0, len(replicas))
	for _, idx := range replicas {
		if slices.Contains(ackedIdx, idx) {
			order = append(order, idx)
		}
	}
	for _, idx := range replicas {
		if !slices.Contains(order, idx) {
			order = append(order, idx)
		}
	}
	transports := make([]Transport, len(order))
	for i, idx := range order {
		transports[i] = h.transports[idx]
	}
	h.stats.Reads++
	h.mu.Unlock()

	var lastErr error
	for i, tr := range transports {
		resp, err := tr.Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
		switch {
		case err != nil:
			lastErr = err
		case resp.Status != StatusOK:
			lastErr = statusError(OpRead, resp.Status)
		default:
			if i > 0 {
				h.mu.Lock()
				h.stats.Failovers++
				h.mu.Unlock()
			}
			copy(buf, resp.Payload)
			return nil
		}
	}
	return fmt.Errorf("remote: read page %d failed on all replicas: %w", page, lastErr)
}

// Close closes all transports.
func (h *Host) Close() error {
	var first error
	for _, tr := range h.transports {
		if err := tr.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
