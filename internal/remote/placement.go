package remote

import (
	"fmt"
	"slices"

	"leap/internal/core"
)

// Slab placement uses rendezvous (highest-random-weight) hashing: every
// (slab, agent) pair gets a deterministic pseudo-random score, and a slab
// lives on the Replicas highest-scoring live agents. The property that
// matters is minimal disruption — when an agent joins or leaves, the only
// slabs whose top-Replicas set changes are the ones the new agent now wins
// (or the departed agent held), about a 1/N share — so Rebalance moves
// exactly that share and nothing else. Scores depend only on
// (HostConfig.Seed, slab, agent index), so placement needs no coordination,
// no RNG stream, and replays identically from the configuration.

// hrwScore is the rendezvous weight of agent idx for slab: a splitmix64-
// style finalizer over the (seed, slab, agent) triple, uniform enough that
// per-agent load concentrates tightly around slabs×replicas/agents.
func hrwScore(seed uint64, slab SlabID, idx int) uint64 {
	x := seed ^ uint64(slab)*0x9E3779B97F4A7C15 ^ (uint64(idx)+1)*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rendezvousRank returns the live (not failed, not retired, not excluded)
// agent indices ordered by descending rendezvous score for slab, ties
// broken by index. Callers hold h.mu.
func (h *Host) rendezvousRank(slab SlabID, exclude map[int]bool) []int {
	type scored struct {
		idx   int
		score uint64
	}
	ranked := make([]scored, 0, len(h.transports))
	for i := range h.transports {
		if h.failed[i] || h.retired[i] || exclude[i] {
			continue
		}
		ranked = append(ranked, scored{i, hrwScore(h.cfg.Seed, slab, i)})
	}
	slices.SortFunc(ranked, func(a, b scored) int {
		switch {
		case a.score > b.score:
			return -1
		case a.score < b.score:
			return 1
		case a.idx < b.idx:
			return -1
		case a.idx > b.idx:
			return 1
		}
		return 0
	})
	out := make([]int, len(ranked))
	for i, s := range ranked {
		out[i] = s.idx
	}
	return out
}

// desiredPlacement reports the rendezvous target set for slab under the
// current live-agent population: the top-Replicas ranked agents. Callers
// hold h.mu.
func (h *Host) desiredPlacement(slab SlabID) []int {
	ranked := h.rendezvousRank(slab, nil)
	if len(ranked) > h.cfg.Replicas {
		ranked = ranked[:h.cfg.Replicas]
	}
	return ranked
}

// AddAgent appends a transport to the placement pool and returns its agent
// index. The new agent receives no existing slabs until Rebalance (or a
// repair) migrates its rendezvous share onto it; new placements include it
// immediately.
func (h *Host) AddAgent(tr Transport) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.transports = append(h.transports, tr)
	h.slabLoad = append(h.slabLoad, 0)
	h.queues = append(h.queues, nil)
	return len(h.transports) - 1
}

// Agents reports the current number of transports in the pool (live or
// failed).
func (h *Host) Agents() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.transports)
}

// Transports reports the agent transports in index order (a copy of the
// slice; the transports themselves are shared). Control planes use it to
// probe failed agents and to chain per-call observers onto fault-injecting
// transports.
func (h *Host) Transports() []Transport {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Transport, len(h.transports))
	copy(out, h.transports)
	return out
}

// Retire marks agent idx as draining for graceful scale-down: it leaves
// the rendezvous ranking — new placements skip it and the next Rebalance
// migrates its slab share away — but unlike MarkFailed it stays a fully
// live copy source and read target, so draining never reduces the set of
// fresh copies. The scale-down sequence is Retire → Rebalance →
// PurgeAgent; call Reinstate to roll a drain back.
func (h *Host) Retire(idx int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx < 0 || idx >= len(h.transports) {
		return fmt.Errorf("remote: Retire(%d) out of range", idx)
	}
	if h.retired == nil {
		h.retired = make(map[int]bool)
	}
	h.retired[idx] = true
	return nil
}

// Reinstate cancels a Retire: the agent rejoins the rendezvous ranking.
func (h *Host) Reinstate(idx int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx < 0 || idx >= len(h.transports) {
		return fmt.Errorf("remote: Reinstate(%d) out of range", idx)
	}
	delete(h.retired, idx)
	return nil
}

// RetiredAgents reports the indices currently draining, sorted.
func (h *Host) RetiredAgents() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.retired))
	for i := range h.retired {
		out = append(out, i)
	}
	slices.Sort(out)
	return out
}

// Rebalance converges every placed slab onto its rendezvous target set —
// the minimal-disruption migration run after AddAgent or MarkFailed. For
// each slab whose current replica set differs from the rendezvous ranking
// it copies the slab (page by page, preferring acknowledged sources, the
// same machinery RepairSlabs uses) onto the agents that should now hold it,
// then frees the copies on agents that should not. It reports how many
// slabs moved. Rebalance expects the target agents to be reachable; a copy
// failure aborts with an error, leaving already-migrated slabs in place
// (Rebalance is idempotent — rerun it after healing).
func (h *Host) Rebalance() (moved int, err error) {
	h.mu.Lock()
	type job struct {
		slab    SlabID
		current []int
		desired []int
	}
	var jobs []job
	for slab, replicas := range h.placements {
		desired := h.desiredPlacement(slab)
		if slices.Equal(replicas, desired) {
			continue
		}
		jobs = append(jobs, job{slab, slices.Clone(replicas), desired})
	}
	h.mu.Unlock()
	slices.SortFunc(jobs, func(a, b job) int {
		switch {
		case a.slab < b.slab:
			return -1
		case a.slab > b.slab:
			return 1
		}
		return 0
	})

	for _, j := range jobs {
		if err := h.migrateSlab(j.slab, j.current, j.desired); err != nil {
			return moved, err
		}
		moved++
		h.mu.Lock()
		h.stats.SlabsMoved++
		h.mu.Unlock()
	}
	return moved, nil
}

// migrateSlab moves one slab from its current replica set to the desired
// one: copy to the newcomers (from acknowledged survivors where possible),
// install the new placement, then free the leavers' copies.
func (h *Host) migrateSlab(slab SlabID, current, desired []int) error {
	// Copy sources: the current holders that are still reachable. Live
	// leavers stay eligible while copying, so a page whose only acked
	// holder is a leaver still has its fresh copy available as the source;
	// failed holders cannot serve reads and are skipped.
	h.mu.Lock()
	sources := make([]int, 0, len(current))
	for _, idx := range current {
		if !h.failed[idx] {
			sources = append(sources, idx)
		}
	}
	h.mu.Unlock()
	if len(sources) == 0 {
		return fmt.Errorf("remote: rebalance slab %d: no live replica to copy from", slab)
	}
	for _, target := range desired {
		if slices.Contains(current, target) {
			continue
		}
		if err := h.copySlabTo(slab, sources, target); err != nil {
			return fmt.Errorf("remote: rebalance slab %d: %w", slab, err)
		}
	}

	h.mu.Lock()
	var leavers []int
	for _, idx := range current {
		if !slices.Contains(desired, idx) {
			leavers = append(leavers, idx)
		}
	}
	h.placements[slab] = slices.Clone(desired)
	for _, idx := range desired {
		if !slices.Contains(current, idx) {
			h.slabLoad[idx]++
		}
	}
	for _, idx := range leavers {
		if h.slabLoad[idx] > 0 {
			h.slabLoad[idx]--
		}
	}
	// The leavers' copies are going away: drop them from every page ack set
	// in this slab so reads never prefer a freed copy.
	first := core.PageID(int64(slab) * int64(h.cfg.SlabPages))
	for off := int64(0); off < int64(h.cfg.SlabPages); off++ {
		page := first + core.PageID(off)
		if acked, ok := h.acked[page]; ok {
			rest := slices.DeleteFunc(slices.Clone(acked), func(r int) bool {
				return slices.Contains(leavers, r)
			})
			if len(rest) == 0 {
				// Every acked holder was a leaver and the copy could not
				// certify freshness: the write is no longer recoverable
				// as-acked, so drop the bookkeeping as PurgeAgent does.
				delete(h.acked, page)
				delete(h.degraded, page)
			} else {
				h.acked[page] = rest
			}
		}
		if holders, ok := h.hot[page]; ok {
			// A leaver's slab copy is being freed, and a newcomer's hot copy
			// is now a full placement replica: neither belongs in the hot
			// extra set any longer.
			rest := slices.DeleteFunc(slices.Clone(holders), func(r int) bool {
				return slices.Contains(leavers, r) || slices.Contains(desired, r)
			})
			if len(rest) == 0 {
				delete(h.hot, page)
			} else {
				h.hot[page] = rest
			}
		}
	}
	leaverTransports := make([]Transport, len(leavers))
	for i, idx := range leavers {
		leaverTransports[i] = h.transports[idx]
	}
	h.mu.Unlock()

	for _, tr := range leaverTransports {
		// Best effort: an unreachable leaver keeps a stale copy, but it is
		// no longer in the placement (or any ack set), so nothing reads it.
		_, _ = tr.Call(&Request{Op: OpFreeSlab, Slab: slab})
	}
	return nil
}
