package remote

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"leap/internal/core"
	"leap/internal/rdma"
	"leap/internal/sim"
)

// TestBatchReadRoundTrip: refs → request frame → wire → decode must be
// lossless, including through the generic EncodeRequest/DecodeRequest
// framing the TCP transport uses.
func TestBatchReadRoundTrip(t *testing.T) {
	refs := []BatchRef{{Slab: 7, PageOff: 3}, {Slab: 7, PageOff: 9}, {Slab: 1 << 40, PageOff: 0}}
	req, err := EncodeReadBatch(refs)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := EncodeRequest(&wire, req); err != nil {
		t.Fatal(err)
	}
	again, err := DecodeRequest(&wire)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReadBatch(again)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Fatalf("read batch round trip: got %v want %v", got, refs)
	}
}

// TestBatchWriteRoundTrip mirrors TestBatchReadRoundTrip for write frames.
func TestBatchWriteRoundTrip(t *testing.T) {
	refs := []BatchRef{{Slab: 2, PageOff: 1}, {Slab: 3, PageOff: 0}}
	pages := [][]byte{pageOf(0xAA), pageOf(0x55)}
	req, err := EncodeWriteBatch(refs, pages)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := EncodeRequest(&wire, req); err != nil {
		t.Fatal(err)
	}
	again, err := DecodeRequest(&wire)
	if err != nil {
		t.Fatal(err)
	}
	gotRefs, gotPages, err := DecodeWriteBatch(again)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRefs, refs) {
		t.Fatalf("refs: got %v want %v", gotRefs, refs)
	}
	for i := range pages {
		if !bytes.Equal(gotPages[i], pages[i]) {
			t.Fatalf("page %d corrupted in transit", i)
		}
	}
}

// TestBatchResponseRoundTrips covers both response framings, including a
// mixed-status read response whose failed entries carry no page bytes.
func TestBatchResponseRoundTrips(t *testing.T) {
	results := []BatchReadResult{
		{Status: StatusOK, Page: pageOf(1)},
		{Status: StatusBadSlab},
		{Status: StatusOK, Page: pageOf(2)},
	}
	resp, err := EncodeReadBatchResponse(results)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := EncodeResponse(&wire, resp); err != nil {
		t.Fatal(err)
	}
	again, err := DecodeResponse(&wire)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReadBatchResponse(again)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].Status != StatusBadSlab || got[1].Page != nil {
		t.Fatalf("read response round trip: %+v", got)
	}
	if !bytes.Equal(got[0].Page, results[0].Page) || !bytes.Equal(got[2].Page, results[2].Page) {
		t.Fatal("read response pages corrupted")
	}

	statuses := []uint8{StatusOK, StatusBadBound, StatusOK}
	wresp, err := EncodeWriteBatchResponse(statuses)
	if err != nil {
		t.Fatal(err)
	}
	gotSt, err := DecodeWriteBatchResponse(wresp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSt, statuses) {
		t.Fatalf("write response statuses: got %v want %v", gotSt, statuses)
	}
}

// TestBatchRejectsMalformed: counts out of range, truncated entries, and
// size mismatches must error, never panic.
func TestBatchRejectsMalformed(t *testing.T) {
	if _, err := EncodeReadBatch(nil); err == nil {
		t.Error("empty read batch accepted")
	}
	if _, err := EncodeReadBatch(make([]BatchRef, MaxBatchOps+1)); err == nil {
		t.Error("oversized read batch accepted")
	}
	if _, err := DecodeReadBatch(&Request{Op: OpReadBatch, Payload: []byte{1, 0}}); err == nil {
		t.Error("truncated count accepted")
	}
	if _, err := DecodeReadBatch(&Request{Op: OpReadBatch, Payload: []byte{2, 0, 0, 0, 1, 2, 3}}); err == nil {
		t.Error("truncated refs accepted")
	}
	if _, _, err := DecodeWriteBatch(&Request{Op: OpWriteBatch, Payload: []byte{1, 0, 0, 0}}); err == nil {
		t.Error("write batch with no page bytes accepted")
	}
	if _, err := DecodeReadBatch(&Request{Op: OpRead}); err == nil {
		t.Error("DecodeReadBatch on a non-batch op accepted")
	}
}

// TestAgentBatchOpsMatchSingleOps: a batch against the agent must return
// exactly what the equivalent single-op sequence returns, per entry,
// including per-entry failures.
func TestAgentBatchOpsMatchSingleOps(t *testing.T) {
	a := NewAgent(8, 0)
	a.Handle(&Request{Op: OpMapSlab, Slab: 1})

	refs := []BatchRef{
		{Slab: 1, PageOff: 0},
		{Slab: 1, PageOff: 7},
		{Slab: 99, PageOff: 0}, // unmapped
		{Slab: 1, PageOff: 64}, // out of bounds
	}
	pages := [][]byte{pageOf(1), pageOf(2), pageOf(3), pageOf(4)}
	wreq, err := EncodeWriteBatch(refs, pages)
	if err != nil {
		t.Fatal(err)
	}
	statuses, err := DecodeWriteBatchResponse(a.Handle(wreq))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{StatusOK, StatusOK, StatusBadSlab, StatusBadBound}
	if !reflect.DeepEqual(statuses, want) {
		t.Fatalf("write statuses %v, want %v", statuses, want)
	}

	rreq, err := EncodeReadBatch(refs)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DecodeReadBatchResponse(a.Handle(rreq))
	if err != nil {
		t.Fatal(err)
	}
	for i, ref := range refs {
		single := a.Handle(&Request{Op: OpRead, Slab: ref.Slab, PageOff: ref.PageOff})
		if results[i].Status != single.Status {
			t.Fatalf("entry %d: batch status %d, single status %d", i, results[i].Status, single.Status)
		}
		if single.Status == StatusOK && !bytes.Equal(results[i].Page, single.Payload) {
			t.Fatalf("entry %d: batch bytes differ from single-op bytes", i)
		}
	}
}

// obsAccountant captures the transport call multiset and charges every call
// to a deterministic (σ=0) fabric on a chaos-style serial cursor, so two
// hosts issuing the same calls accumulate exactly the same virtual time.
type obsAccountant struct {
	fabric *rdma.Fabric
	cursor sim.Time
	buf    []sim.Time
	// perAgentOp[agent][op] counts calls.
	perAgentOp map[int]map[uint8]int
	calls      int
}

func newObsAccountant() *obsAccountant {
	return &obsAccountant{
		fabric: rdma.New(rdma.Config{
			OpLatency: sim.Normal{Mu: 4300, Sigma: 0, Floor: 4300},
		}, sim.NewRNG(1)),
		perAgentOp: make(map[int]map[uint8]int),
	}
}

func (r *obsAccountant) observe(o CallObservation) {
	r.calls++
	if r.perAgentOp[o.Agent] == nil {
		r.perAgentOp[o.Agent] = make(map[uint8]int)
	}
	r.perAgentOp[o.Agent][o.Op]++
	r.buf = r.fabric.SubmitBatch(o.Agent, o.Pages, r.cursor, r.buf)
	r.cursor = r.buf[len(r.buf)-1]
}

// TestDepthOneAsyncMatchesSync is the queue-depth-1 parity gate: the async
// engine at depth 1 must issue exactly the same wire calls as the
// synchronous path — same per-agent op counts, all single-page unbatched
// frames (the engine only reorders a write's replica fan-out) — return
// identical bytes, and accumulate an identical simulated total on a
// deterministic fabric accountant.
func TestDepthOneAsyncMatchesSync(t *testing.T) {
	build := func() (*Host, *obsAccountant) {
		rec := newObsAccountant()
		trs := make([]Transport, 3)
		for i := range trs {
			ft := NewFaultTransport(i, NewInProc(NewAgent(8, 0)), nil)
			ft.SetObserver(rec.observe)
			trs[i] = ft
		}
		h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 2, QueueDepth: 1, Seed: 77}, trs)
		if err != nil {
			t.Fatal(err)
		}
		return h, rec
	}

	syncHost, syncRec := build()
	asyncHost, asyncRec := build()

	const pages = 48
	for p := core.PageID(0); p < pages; p++ {
		if err := syncHost.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
		if err := asyncHost.WritePageAsync(p, pageOf(byte(p))).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	syncBuf := make([]byte, PageSize)
	asyncBuf := make([]byte, PageSize)
	for p := core.PageID(0); p < pages; p++ {
		if err := syncHost.ReadPage(p, syncBuf); err != nil {
			t.Fatal(err)
		}
		if err := asyncHost.ReadPageAsync(p, asyncBuf).Wait(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(syncBuf, asyncBuf) {
			t.Fatalf("page %d: async bytes differ from sync bytes", p)
		}
	}
	if syncRec.calls != asyncRec.calls {
		t.Fatalf("call counts diverged at depth 1: sync %d, async %d", syncRec.calls, asyncRec.calls)
	}
	if !reflect.DeepEqual(syncRec.perAgentOp, asyncRec.perAgentOp) {
		t.Fatalf("per-agent op counts diverged at depth 1:\nsync:  %v\nasync: %v",
			syncRec.perAgentOp, asyncRec.perAgentOp)
	}
	if syncRec.cursor != asyncRec.cursor {
		t.Fatalf("simulated totals diverged at depth 1: sync %v, async %v",
			syncRec.cursor, asyncRec.cursor)
	}
	for agent := range asyncRec.perAgentOp {
		for op := range asyncRec.perAgentOp[agent] {
			if op == OpReadBatch || op == OpWriteBatch {
				t.Fatalf("depth-1 engine issued a batched frame (op %d)", op)
			}
		}
	}
}

// TestBatchedReadsReturnSameBytes: the same read set through depth-8
// batched frames and through one-at-a-time sync reads must return
// identical bytes from the same cluster.
func TestBatchedReadsReturnSameBytes(t *testing.T) {
	trs := make([]Transport, 3)
	for i := range trs {
		trs[i] = NewInProc(NewAgent(8, 0))
	}
	h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 2, QueueDepth: 8, Seed: 5}, trs)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 64
	for p := core.PageID(0); p < pages; p++ {
		data := pageOf(byte(p * 3))
		data[1000] = byte(p)
		if err := h.WritePage(p, data); err != nil {
			t.Fatal(err)
		}
	}
	asyncBufs := make([][]byte, pages)
	tickets := make([]*Ticket, pages)
	for p := range asyncBufs {
		asyncBufs[p] = make([]byte, PageSize)
		tickets[p] = h.ReadPageAsync(core.PageID(p), asyncBufs[p])
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	syncBuf := make([]byte, PageSize)
	for p := core.PageID(0); p < pages; p++ {
		if err := tickets[p].Err(); err != nil {
			t.Fatalf("async read %d: %v", p, err)
		}
		if err := h.ReadPage(p, syncBuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(asyncBufs[p], syncBuf) {
			t.Fatalf("page %d: batched bytes differ from one-at-a-time bytes", p)
		}
	}
	if st := h.Stats(); st.BatchCalls == 0 {
		t.Fatalf("depth-8 read sweep never batched: %+v", st)
	}
}

// TestCoalescedAndDirtyReads exercises the engine's two local-completion
// paths directly.
func TestCoalescedAndDirtyReads(t *testing.T) {
	trs := []Transport{NewInProc(NewAgent(8, 0)), NewInProc(NewAgent(8, 0))}
	h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 2, QueueDepth: 4, Seed: 9}, trs)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WritePage(3, pageOf(0x11)); err != nil {
		t.Fatal(err)
	}
	// Two async reads of the same page: one wire request, both buffers
	// filled.
	b1, b2 := make([]byte, PageSize), make([]byte, PageSize)
	t1 := h.ReadPageAsync(3, b1)
	t2 := h.ReadPageAsync(3, b2)
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if t1.Err() != nil || t2.Err() != nil {
		t.Fatal(t1.Err(), t2.Err())
	}
	if b1[0] != 0x11 || b2[0] != 0x11 {
		t.Fatal("coalesced read returned wrong bytes")
	}
	if st := h.Stats(); st.CoalescedReads != 1 {
		t.Fatalf("CoalescedReads = %d, want 1", st.CoalescedReads)
	}

	// A read behind an unflushed write sees the write's bytes immediately.
	h.WritePageAsync(3, pageOf(0x22))
	b3 := make([]byte, PageSize)
	t3 := h.ReadPageAsync(3, b3)
	if !t3.Done() || t3.Err() != nil {
		t.Fatal("dirty read did not complete immediately")
	}
	if b3[0] != 0x22 {
		t.Fatalf("dirty read returned %#x, want 0x22", b3[0])
	}
	if st := h.Stats(); st.DirtyReads != 1 {
		t.Fatalf("DirtyReads = %d, want 1", st.DirtyReads)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	// The sync path also sees dirty bytes (read-your-writes) before flush.
	h.WritePageAsync(3, pageOf(0x33))
	b4 := make([]byte, PageSize)
	if err := h.ReadPage(3, b4); err != nil {
		t.Fatal(err)
	}
	if b4[0] != 0x33 {
		t.Fatalf("sync read of dirty page returned %#x, want 0x33", b4[0])
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncFailover: a crashed primary mid-queue must fail reads over to
// the replica during the flush, like the sync path does.
func TestAsyncFailover(t *testing.T) {
	inprocs := []*InProc{NewInProc(NewAgent(8, 0)), NewInProc(NewAgent(8, 0))}
	h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 2, QueueDepth: 4, Seed: 13},
		[]Transport{inprocs[0], inprocs[1]})
	if err != nil {
		t.Fatal(err)
	}
	for p := core.PageID(0); p < 16; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	inprocs[0].SetFailed(true)
	bufs := make([][]byte, 16)
	tickets := make([]*Ticket, 16)
	for p := range bufs {
		bufs[p] = make([]byte, PageSize)
		tickets[p] = h.ReadPageAsync(core.PageID(p), bufs[p])
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	for p := range tickets {
		if err := tickets[p].Err(); err != nil {
			t.Fatalf("read %d failed despite a live replica: %v", p, err)
		}
		if bufs[p][0] != byte(p) {
			t.Fatalf("read %d returned wrong bytes after failover", p)
		}
	}
	if h.Stats().Failovers == 0 {
		t.Fatal("no failovers recorded — agent 0 held no primaries?")
	}
	// Both replicas dead: tickets must carry errors, not hang or panic.
	inprocs[1].SetFailed(true)
	buf := make([]byte, PageSize)
	tk := h.ReadPageAsync(5, buf)
	if err := tk.Wait(); err == nil {
		t.Fatal("read succeeded with every replica dead")
	}
}

// TestWritePageAsyncPlacementFailureErrors: when no agent can map the
// slab (capacity exhausted), the ticket must complete with an error — the
// enqueue path completes it under the host lock it already holds, so this
// must neither hang nor panic.
func TestWritePageAsyncPlacementFailureErrors(t *testing.T) {
	h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 1, QueueDepth: 4, Seed: 1},
		[]Transport{NewInProc(NewAgent(8, 1))}) // capacity: one slab
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WritePage(0, pageOf(1)); err != nil {
		t.Fatal(err) // fills the only slab slot
	}
	done := make(chan error, 1)
	go func() {
		tk := h.WritePageAsync(100, pageOf(2)) // slab 12: no agent can map it
		done <- tk.Wait()
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write to an unplaceable slab reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WritePageAsync hung on placement failure")
	}
	// The host must still be usable afterwards.
	buf := make([]byte, PageSize)
	if err := h.ReadPage(0, buf); err != nil {
		t.Fatalf("host wedged after placement failure: %v", err)
	}
}

// TestRebalanceMovesOnlyTheShare: adding an agent and rebalancing must move
// roughly 1/(n+1) of the slabs — the rendezvous minimal-disruption property
// — and every page must remain readable with correct bytes afterwards.
func TestRebalanceMovesOnlyTheShare(t *testing.T) {
	agents := []*Agent{NewAgent(4, 0), NewAgent(4, 0), NewAgent(4, 0), NewAgent(4, 0)}
	trs := make([]Transport, 3)
	for i := 0; i < 3; i++ {
		trs[i] = NewInProc(agents[i])
	}
	h, err := NewHost(HostConfig{SlabPages: 4, Replicas: 2, Seed: 31}, trs)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 400 // 100 slabs
	for p := core.PageID(0); p < pages; p++ {
		data := pageOf(byte(p))
		data[77] = byte(p >> 8)
		if err := h.WritePage(p, data); err != nil {
			t.Fatal(err)
		}
	}
	slabs := int(h.Stats().SlabsMapped)

	idx := h.AddAgent(NewInProc(agents[3]))
	if idx != 3 {
		t.Fatalf("AddAgent index = %d, want 3", idx)
	}
	moved, err := h.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	// The newcomer should win ≈ replicas/n of the slab-replica pairs; with
	// 2 replicas over 4 agents that's half the slabs expected to move.
	// Accept a generous band around it, but reject "moved everything".
	if moved == 0 || moved > slabs*3/4 {
		t.Fatalf("Rebalance moved %d of %d slabs", moved, slabs)
	}
	if load := h.SlabLoad(); load[3] == 0 {
		t.Fatal("new agent received nothing")
	}
	// A second rebalance must be a no-op: the placement converged.
	again, err := h.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("second Rebalance moved %d slabs", again)
	}
	buf := make([]byte, PageSize)
	for p := core.PageID(0); p < pages; p++ {
		if err := h.ReadPage(p, buf); err != nil {
			t.Fatalf("read %d after rebalance: %v", p, err)
		}
		if buf[0] != byte(p) || buf[77] != byte(p>>8) {
			t.Fatalf("page %d corrupted by rebalance", p)
		}
	}
}

// TestRebalanceAfterFailureRestoresPlacement: MarkFailed + Rebalance is the
// remove-an-agent path; the failed agent's share must migrate to survivors
// and reads keep working with the failed agent dark.
func TestRebalanceAfterFailureRestoresPlacement(t *testing.T) {
	inprocs := make([]*InProc, 4)
	trs := make([]Transport, 4)
	for i := range trs {
		inprocs[i] = NewInProc(NewAgent(4, 0))
		trs[i] = inprocs[i]
	}
	h, err := NewHost(HostConfig{SlabPages: 4, Replicas: 2, Seed: 17}, trs)
	if err != nil {
		t.Fatal(err)
	}
	for p := core.PageID(0); p < 200; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	inprocs[1].SetFailed(true)
	if err := h.MarkFailed(1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if h.UnderReplicated() != 0 {
		t.Fatalf("%d slabs under-replicated after rebalance", h.UnderReplicated())
	}
	buf := make([]byte, PageSize)
	for p := core.PageID(0); p < 200; p++ {
		if err := h.ReadPage(p, buf); err != nil {
			t.Fatalf("read %d: %v", p, err)
		}
		if buf[0] != byte(p) {
			t.Fatalf("page %d corrupted", p)
		}
	}
}
