package remote

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"leap/internal/core"
	"leap/internal/sim"
)

// failAfter wraps a Transport and starts failing every call once limit
// successful calls have gone through — a link that dies mid-migration.
type failAfter struct {
	inner Transport
	mu    sync.Mutex
	calls int
	limit int // -1 = never fail
}

func (f *failAfter) Call(req *Request) (*Response, error) {
	f.mu.Lock()
	f.calls++
	fail := f.limit >= 0 && f.calls > f.limit
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("remote: link down (injected)")
	}
	return f.inner.Call(req)
}

func (f *failAfter) Close() error { return f.inner.Close() }

func (f *failAfter) heal() {
	f.mu.Lock()
	f.limit = -1
	f.mu.Unlock()
}

// hookTransport wraps a Transport and runs hook once, on the first call
// after arm() — the lever for injecting a state change (e.g. MarkRecovered)
// in the middle of a multi-call repair pass.
type hookTransport struct {
	inner Transport
	mu    sync.Mutex
	armed *bool // shared across wrappers so only the first call fires
	hook  func()
}

func (h *hookTransport) Call(req *Request) (*Response, error) {
	h.mu.Lock()
	fire := *h.armed
	if fire {
		*h.armed = false
	}
	h.mu.Unlock()
	if fire {
		h.hook()
	}
	return h.inner.Call(req)
}

func (h *hookTransport) Close() error { return h.inner.Close() }

// checkFresh asserts every page in [0, pages) reads back want(p) through the
// host, and that every agent in the page's ack set actually serves those
// bytes when read directly — an acked index pointing at a stale or wiped
// copy is a bookkeeping lie waiting to become a wrong read.
func checkFresh(t *testing.T, h *Host, pages int, want func(p core.PageID) []byte) {
	t.Helper()
	buf := make([]byte, PageSize)
	for p := core.PageID(0); p < core.PageID(pages); p++ {
		if err := h.ReadPage(p, buf); err != nil {
			t.Fatalf("page %d: read: %v", p, err)
		}
		if !bytes.Equal(buf, want(p)) {
			t.Fatalf("page %d: host read returned stale bytes", p)
		}
		slab, off := h.locate(p)
		h.mu.Lock()
		acked := append([]int(nil), h.acked[p]...)
		trs := make([]Transport, len(acked))
		for i, idx := range acked {
			trs[i] = h.transports[idx]
		}
		h.mu.Unlock()
		for i, tr := range trs {
			resp, err := tr.Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
			if err != nil || resp.Status != StatusOK {
				t.Fatalf("page %d: acked agent %d unreadable: %v", p, acked[i], err)
			}
			if !bytes.Equal(resp.Payload, want(p)) {
				t.Fatalf("page %d: acked agent %d holds stale bytes", p, acked[i])
			}
		}
	}
}

// TestRebalanceMidMigrationFailure: a copy failure partway through a
// Rebalance must leave placement and ack bookkeeping consistent — migrated
// slabs stay migrated, the half-copied slab keeps its old placement, no
// acked set points at a partial copy — and rerunning Rebalance after the
// link heals converges.
func TestRebalanceMidMigrationFailure(t *testing.T) {
	const slabPages, pages = 8, 64
	h, _ := buildCluster(t, 3, slabPages, 11)
	latest := func(p core.PageID) []byte { return pageOf(byte(p)) }
	for p := core.PageID(0); p < pages; p++ {
		if err := h.WritePage(p, latest(p)); err != nil {
			t.Fatal(err)
		}
	}

	// A fourth agent joins behind a link that dies after 15 calls: one full
	// slab copy (map + 8 page writes) lands, the second dies mid-slab.
	fa := &failAfter{inner: NewInProc(NewAgent(slabPages, 0)), limit: 15}
	newIdx := h.AddAgent(fa)

	moved, err := h.Rebalance()
	if err == nil {
		t.Fatal("rebalance over a dead link reported success")
	}
	if moved < 1 {
		t.Fatalf("no slab migrated before the failure (moved=%d); the mid-migration case was not exercised", moved)
	}

	// Consistency with the newcomer unreachable: every page still reads
	// fresh, and nothing acked points at the half-copied slab on the
	// newcomer (its index may appear only for fully-migrated slabs).
	buf := make([]byte, PageSize)
	for p := core.PageID(0); p < pages; p++ {
		if err := h.ReadPage(p, buf); err != nil {
			t.Fatalf("page %d unreadable after failed rebalance: %v", p, err)
		}
		if !bytes.Equal(buf, latest(p)) {
			t.Fatalf("page %d stale after failed rebalance", p)
		}
	}
	h.mu.Lock()
	for slab, replicas := range h.placements {
		for _, idx := range replicas {
			if idx < 0 || idx > newIdx {
				h.mu.Unlock()
				t.Fatalf("slab %d placement %v references unknown agent", slab, replicas)
			}
		}
	}
	h.mu.Unlock()

	// Heal and rerun: the remaining share migrates, a further run is a
	// no-op, and every acked copy — including those on the newcomer — is
	// byte-fresh.
	fa.heal()
	if _, err := h.Rebalance(); err != nil {
		t.Fatalf("rebalance after heal: %v", err)
	}
	if again, err := h.Rebalance(); err != nil || again != 0 {
		t.Fatalf("rebalance did not converge: moved=%d err=%v", again, err)
	}
	if load := h.SlabLoad()[newIdx]; load == 0 {
		t.Fatal("converged rebalance left the new agent empty")
	}
	checkFresh(t, h, pages, latest)
}

// TestTicketFailureContexts pins the uniform failure shape of the async
// ticket engine: every error is an *OpError carrying the operation, the
// page, the last agent index involved and the attempts consumed, with the
// cause reachable through errors.Is.
func TestTicketFailureContexts(t *testing.T) {
	const page = core.PageID(3)
	latest := pageOf(1)

	// holders reports the page's placement replicas in read order.
	holders := func(h *Host) []int {
		h.mu.Lock()
		defer h.mu.Unlock()
		slab, _ := h.locate(page)
		return append([]int(nil), h.readCandidates(page, h.placements[slab])...)
	}

	cases := []struct {
		name  string
		retry RetryPolicy
		run   func(t *testing.T, h *Host, inprocs []*InProc) error

		wantErr      bool
		wantCause    error
		wantOp       uint8
		wantAgent    int // -1 = pre-dispatch failure, -2 = any valid index
		wantAttempts int // -1 = don't check
	}{
		{
			name: "read-never-written",
			run: func(t *testing.T, h *Host, _ []*InProc) error {
				return h.ReadPageAsync(page, make([]byte, PageSize)).Wait()
			},
			wantErr: true, wantCause: ErrNeverWritten,
			wantOp: OpRead, wantAgent: -1, wantAttempts: 0,
		},
		{
			name: "read-bad-buffer",
			run: func(t *testing.T, h *Host, _ []*InProc) error {
				return h.ReadPageAsync(page, make([]byte, 8)).Wait()
			},
			wantErr: true,
			wantOp:  OpRead, wantAgent: -1, wantAttempts: 0,
		},
		{
			name: "read-all-holders-down",
			run: func(t *testing.T, h *Host, inprocs []*InProc) error {
				if err := h.WritePage(page, latest); err != nil {
					t.Fatal(err)
				}
				for _, p := range inprocs {
					p.SetFailed(true)
				}
				return h.ReadPageAsync(page, make([]byte, PageSize)).Wait()
			},
			wantErr: true, wantCause: ErrAllReplicasFailed,
			wantOp: OpRead, wantAgent: -2, wantAttempts: 2,
		},
		{
			name:  "read-deadline-exceeded",
			retry: RetryPolicy{Deadline: 100 * sim.Microsecond},
			run: func(t *testing.T, h *Host, inprocs []*InProc) error {
				var now sim.Time
				h.SetTimeSource(func() sim.Time { return now })
				if err := h.WritePage(page, latest); err != nil {
					t.Fatal(err)
				}
				for _, p := range inprocs {
					p.SetFailed(true)
				}
				tk := h.ReadPageAsync(page, make([]byte, PageSize))
				now = now.Add(200 * sim.Microsecond) // budget elapses in flight
				err := tk.Wait()
				if got := h.Stats().DeadlineFailed; got != 1 {
					t.Fatalf("DeadlineFailed = %d, want 1", got)
				}
				return err
			},
			wantErr: true, wantCause: ErrDeadlineExceeded,
			wantOp: OpRead, wantAgent: -2, wantAttempts: 1,
		},
		{
			name:  "read-attempts-exhausted",
			retry: RetryPolicy{MaxAttempts: 1},
			run: func(t *testing.T, h *Host, inprocs []*InProc) error {
				if err := h.WritePage(page, latest); err != nil {
					t.Fatal(err)
				}
				inprocs[holders(h)[0]].SetFailed(true)
				return h.ReadPageAsync(page, make([]byte, PageSize)).Wait()
			},
			wantErr: true, wantCause: ErrAttemptsExhausted,
			wantOp: OpRead, wantAgent: -2, wantAttempts: 1,
		},
		{
			name: "read-requeue-after-failover",
			run: func(t *testing.T, h *Host, inprocs []*InProc) error {
				if err := h.WritePage(page, latest); err != nil {
					t.Fatal(err)
				}
				inprocs[holders(h)[0]].SetFailed(true)
				buf := make([]byte, PageSize)
				if err := h.ReadPageAsync(page, buf).Wait(); err != nil {
					return err
				}
				if !bytes.Equal(buf, latest) {
					t.Fatal("failover read returned stale bytes")
				}
				st := h.Stats()
				if st.Retries == 0 || st.Failovers == 0 {
					t.Fatalf("failover not requeued: retries=%d failovers=%d", st.Retries, st.Failovers)
				}
				return nil
			},
		},
		{
			name:  "read-backoff-charged-on-requeue",
			retry: RetryPolicy{MaxAttempts: 4, BackoffBase: 10 * sim.Microsecond},
			run: func(t *testing.T, h *Host, inprocs []*InProc) error {
				var paused sim.Duration
				h.SetBackoffObserver(func(agent int, d sim.Duration) { paused += d })
				if err := h.WritePage(page, latest); err != nil {
					t.Fatal(err)
				}
				inprocs[holders(h)[0]].SetFailed(true)
				buf := make([]byte, PageSize)
				if err := h.ReadPageAsync(page, buf).Wait(); err != nil {
					return err
				}
				if paused <= 0 {
					t.Fatal("retry requeued without charging backoff")
				}
				return nil
			},
		},
		{
			name: "write-all-replicas-down",
			run: func(t *testing.T, h *Host, inprocs []*InProc) error {
				if err := h.WritePage(page, latest); err != nil {
					t.Fatal(err)
				}
				for _, p := range inprocs {
					p.SetFailed(true)
				}
				return h.WritePageAsync(page, pageOf(9)).Wait()
			},
			wantErr: true, wantCause: ErrAllReplicasFailed,
			wantOp: OpWrite, wantAgent: -2, wantAttempts: 2,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inprocs := make([]*InProc, 3)
			trs := make([]Transport, 3)
			for i := range inprocs {
				inprocs[i] = NewInProc(NewAgent(8, 0))
				trs[i] = inprocs[i]
			}
			h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 2, Seed: 11, Retry: tc.retry}, trs)
			if err != nil {
				t.Fatal(err)
			}
			err = tc.run(t, h, inprocs)
			if !tc.wantErr {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			var oe *OpError
			if !errors.As(err, &oe) {
				t.Fatalf("error is not an *OpError: %v", err)
			}
			if tc.wantCause != nil && !errors.Is(err, tc.wantCause) {
				t.Fatalf("cause %v not reachable in %v", tc.wantCause, err)
			}
			if oe.Op != tc.wantOp {
				t.Fatalf("Op = %d, want %d (%v)", oe.Op, tc.wantOp, err)
			}
			if oe.Page != page {
				t.Fatalf("Page = %d, want %d (%v)", oe.Page, page, err)
			}
			switch tc.wantAgent {
			case -1:
				if oe.Agent != -1 {
					t.Fatalf("Agent = %d, want -1 (%v)", oe.Agent, err)
				}
			case -2:
				if oe.Agent < 0 || oe.Agent >= 3 {
					t.Fatalf("Agent = %d, want a valid index (%v)", oe.Agent, err)
				}
			}
			if tc.wantAttempts >= 0 && oe.Attempts != tc.wantAttempts {
				t.Fatalf("Attempts = %d, want %d (%v)", oe.Attempts, tc.wantAttempts, err)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("page %d", page)) {
				t.Fatalf("rendered error lost the page context: %v", err)
			}
		})
	}
}

// TestRecoverDuringRepair: MarkRecovered landing in the middle of a
// RepairSlabs pass (fired from inside a transport call, where the host lock
// is released) must not corrupt bookkeeping — the pass completes, the
// recovered agent rejoins placement via Rebalance with fresh copies only,
// and no acked index ever points at stale bytes.
func TestRecoverDuringRepair(t *testing.T) {
	const slabPages, pages = 8, 64
	inprocs := make([]*InProc, 4)
	trs := make([]Transport, 4)
	armed := false
	for i := range inprocs {
		inprocs[i] = NewInProc(NewAgent(slabPages, 0))
		trs[i] = inprocs[i]
	}
	h, err := NewHost(HostConfig{SlabPages: slabPages, Replicas: 2, Seed: 11}, trs)
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the survivors so the first repair-pass transport call un-fails
	// agent 0 mid-pass.
	hook := func() {
		inprocs[0].SetFailed(false)
		if err := h.MarkRecovered(0); err != nil {
			t.Errorf("MarkRecovered mid-repair: %v", err)
		}
	}
	h.mu.Lock()
	for i := 1; i < 4; i++ {
		h.transports[i] = &hookTransport{inner: trs[i], armed: &armed, hook: hook}
	}
	h.mu.Unlock()

	latest := func(p core.PageID) []byte { return pageOf(byte(p)) }
	for p := core.PageID(0); p < pages; p++ {
		if err := h.WritePage(p, latest(p)); err != nil {
			t.Fatal(err)
		}
	}

	inprocs[0].SetFailed(true)
	if err := h.MarkFailed(0); err != nil {
		t.Fatal(err)
	}
	armed = true
	if _, err := h.RepairSlabs(); err != nil {
		t.Fatalf("repair with mid-pass recovery: %v", err)
	}
	if armed {
		t.Fatal("repair pass made no transport calls; recovery never fired")
	}
	if got := h.FailedAgents(); len(got) != 0 {
		t.Fatalf("FailedAgents = %v after mid-pass recovery", got)
	}
	if n := h.UnderReplicated(); n != 0 {
		t.Fatalf("%d slabs under-replicated after repair", n)
	}
	checkFresh(t, h, pages, latest)

	// The recovered agent re-enters the rendezvous ranking: Rebalance moves
	// its share back (copying only from current fresh holders — its own
	// pre-failure copies are never trusted) and converges.
	if _, err := h.Rebalance(); err != nil {
		t.Fatalf("rebalance after recovery: %v", err)
	}
	if again, err := h.Rebalance(); err != nil || again != 0 {
		t.Fatalf("rebalance did not converge: moved=%d err=%v", again, err)
	}
	checkFresh(t, h, pages, latest)
}

// TestPurgeWhileTicketsInFlight: purging an agent while the async engine
// holds unflushed tickets that reference it (queued reads targeting it,
// write fan-outs including it) must drain cleanly — reads fail over, writes
// ack on the survivors — and a repair pass afterwards restores full
// replication with no stale acked copy.
func TestPurgeWhileTicketsInFlight(t *testing.T) {
	const slabPages, pages, victim = 4, 16, 1
	h, inprocs := buildCluster(t, 3, slabPages, 5)
	old := func(p core.PageID) []byte { return pageOf(byte(p)) }
	for p := core.PageID(0); p < pages; p++ {
		if err := h.WritePage(p, old(p)); err != nil {
			t.Fatal(err)
		}
	}

	// In-flight work: queued reads for the top half, superseding writes for
	// the bottom half. Nothing is flushed yet.
	readBufs := make([][]byte, pages)
	var reads, writes []*Ticket
	for p := core.PageID(pages / 2); p < pages; p++ {
		readBufs[p] = make([]byte, PageSize)
		reads = append(reads, h.ReadPageAsync(p, readBufs[p]))
	}
	newVal := func(p core.PageID) []byte { return pageOf(byte(p) + 100) }
	for p := core.PageID(0); p < pages/2; p++ {
		writes = append(writes, h.WritePageAsync(p, newVal(p)))
	}

	// The victim restarts empty: its transport dies and the control plane
	// purges it — with all those tickets still queued.
	inprocs[victim].SetFailed(true)
	if dropped, err := h.PurgeAgent(victim); err != nil || dropped == 0 {
		t.Fatalf("purge: dropped=%d err=%v", dropped, err)
	}

	if err := h.Flush(); err != nil {
		t.Fatalf("flush across the purge: %v", err)
	}
	for i, tk := range reads {
		if !tk.Done() {
			t.Fatalf("read ticket %d never completed", i)
		}
		p := core.PageID(pages/2 + i)
		if err := tk.Err(); err != nil {
			t.Fatalf("in-flight read of page %d failed: %v", p, err)
		}
		if !bytes.Equal(readBufs[p], old(p)) {
			t.Fatalf("in-flight read of page %d returned stale bytes", p)
		}
	}
	for i, tk := range writes {
		if !tk.Done() {
			t.Fatalf("write ticket %d never completed", i)
		}
		if err := tk.Err(); err != nil {
			t.Fatalf("in-flight write of page %d failed despite a live replica: %v", i, err)
		}
	}
	// The dead victim must not have re-entered any ack set during the drain.
	for p := core.PageID(0); p < pages; p++ {
		for _, idx := range h.AckedReplicas(p) {
			if idx == victim {
				t.Fatalf("page %d re-acked on purged agent %d", p, victim)
			}
		}
	}

	// Repair re-replicates onto the survivors and re-pushes the writes that
	// missed a replica; everything must come back fully replicated and fresh.
	if err := h.MarkFailed(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RepairSlabs(); err != nil {
		t.Fatalf("repair after purge: %v", err)
	}
	if n := h.UnderReplicated(); n != 0 {
		t.Fatalf("%d slabs under-replicated after repair", n)
	}
	if n := h.DegradedPages(); n != 0 {
		t.Fatalf("%d pages degraded after repair", n)
	}
	latest := func(p core.PageID) []byte {
		if p < pages/2 {
			return newVal(p)
		}
		return old(p)
	}
	checkFresh(t, h, pages, latest)
}

// TestRecoverPurgeEdgeOrdering: double MarkRecovered, double PurgeAgent and
// recovering a never-failed agent are all harmless no-ops, in any order,
// and the cluster converges afterwards.
func TestRecoverPurgeEdgeOrdering(t *testing.T) {
	const slabPages, pages = 8, 64
	h, inprocs := buildCluster(t, 4, slabPages, 11)
	latest := func(p core.PageID) []byte { return pageOf(byte(p)) }
	for p := core.PageID(0); p < pages; p++ {
		if err := h.WritePage(p, latest(p)); err != nil {
			t.Fatal(err)
		}
	}

	inprocs[2].SetFailed(true)
	if err := h.MarkFailed(2); err != nil {
		t.Fatal(err)
	}
	if dropped, err := h.PurgeAgent(2); err != nil || dropped == 0 {
		t.Fatalf("first purge: dropped=%d err=%v", dropped, err)
	}
	if dropped, err := h.PurgeAgent(2); err != nil || dropped != 0 {
		t.Fatalf("double purge not a no-op: dropped=%d err=%v", dropped, err)
	}

	inprocs[2].SetFailed(false)
	if err := h.MarkRecovered(2); err != nil {
		t.Fatal(err)
	}
	if err := h.MarkRecovered(2); err != nil {
		t.Fatalf("double recover: %v", err)
	}
	if err := h.MarkRecovered(3); err != nil {
		t.Fatalf("recovering a healthy agent: %v", err)
	}
	if got := h.FailedAgents(); len(got) != 0 {
		t.Fatalf("FailedAgents = %v", got)
	}

	// Purge removed agent 2 from every placement; repair restores the
	// replication factor and rebalance hands agent 2 its share back with
	// fresh copies (its old memory is never referenced again).
	if _, err := h.RepairSlabs(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if again, err := h.Rebalance(); err != nil || again != 0 {
		t.Fatalf("rebalance did not converge: moved=%d err=%v", again, err)
	}
	if n := h.UnderReplicated(); n != 0 {
		t.Fatalf("%d slabs under-replicated", n)
	}
	checkFresh(t, h, pages, latest)
}
