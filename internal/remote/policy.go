package remote

import (
	"errors"
	"fmt"
	"slices"

	"leap/internal/core"
	"leap/internal/sim"
)

// RetryPolicy bounds how hard the async ticket engine fights for a page
// operation before giving up, and whether reads targeting agents hinted slow
// are hedged. The zero value reproduces the legacy behavior exactly: reads
// fail over across every replica with no attempt budget, no deadline, no
// backoff pacing and no hedging — so existing hosts replay bit-identically.
//
// The policy is the datapath half of the self-healing control plane (the
// 3PO observation that tail latency, not mean, decides whether far memory is
// usable): a health monitor marks an agent slow (SetAgentSlow) once its p99
// crosses a threshold, after which reads route around it and duplicate onto
// the next acked holder, so a lagging agent costs one hedge rather than a
// stall.
type RetryPolicy struct {
	// MaxAttempts caps the total transport attempts one read ticket may
	// consume across all replicas, retries included. 0 means unlimited (one
	// attempt per distinct replica, the legacy failover walk).
	MaxAttempts int
	// Deadline is the per-ticket virtual-time budget measured from enqueue.
	// A retry past the deadline fails the ticket with ErrDeadlineExceeded.
	// It requires a time source (Host.SetTimeSource); 0 disables it.
	Deadline sim.Duration
	// BackoffBase is the pacing charged before the first read retry; each
	// further retry doubles it, capped at BackoffCap, with ±25% deterministic
	// jitter derived from (JitterSeed, page, attempt). The charge is
	// delivered through Host.SetBackoffObserver so a virtual-time harness
	// can account for it; 0 disables backoff pacing.
	BackoffBase sim.Duration
	// BackoffCap bounds the exponential backoff (default 16×BackoffBase).
	BackoffCap sim.Duration
	// JitterSeed salts the deterministic backoff jitter.
	JitterSeed uint64
	// HedgeReads duplicates a read whose chosen target is hinted slow onto
	// the next acked holder in the same doorbell; the first completion wins
	// and the loser is discarded at drain time.
	HedgeReads bool
}

// withDefaults fills the derived fields without disturbing the zero-value
// legacy semantics.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BackoffBase > 0 && p.BackoffCap <= 0 {
		p.BackoffCap = 16 * p.BackoffBase
	}
	return p
}

// backoffFor computes the pacing charged before retry number attempt
// (1-based) of a read of page: capped exponential growth with ±25%
// deterministic jitter. It is a pure function of (policy, page, attempt), so
// replays and reorderings cannot perturb it.
func (p RetryPolicy) backoffFor(page core.PageID, attempt int) sim.Duration {
	if p.BackoffBase <= 0 || attempt <= 0 {
		return 0
	}
	d := p.BackoffBase
	for i := 1; i < attempt && d < p.BackoffCap; i++ {
		d *= 2
	}
	if d > p.BackoffCap {
		d = p.BackoffCap
	}
	// ±25% jitter from a splitmix-style hash; the low 16 bits give a
	// uniform fraction in [0, 1).
	x := p.JitterSeed ^ uint64(page)*0x9E3779B97F4A7C15 ^ uint64(attempt)*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	frac := float64(x&0xFFFF) / float64(1<<16) // [0,1)
	return d + sim.Duration(float64(d)/2*(frac-0.5))
}

// Sentinel causes carried by ticket failures; match with errors.Is.
var (
	// ErrDeadlineExceeded marks a ticket that ran out of its per-ticket
	// virtual-time budget before any replica served it.
	ErrDeadlineExceeded = errors.New("deadline exceeded")
	// ErrAttemptsExhausted marks a ticket that consumed its MaxAttempts
	// transport-attempt budget.
	ErrAttemptsExhausted = errors.New("retry attempts exhausted")
	// ErrAllReplicasFailed marks an operation that failed on every holder it
	// could reach.
	ErrAllReplicasFailed = errors.New("failed on all replicas")
	// ErrNoReplica marks an operation with no live holder to try at all.
	ErrNoReplica = errors.New("no replica available")
	// ErrNeverWritten marks a read of a page no write ever placed.
	ErrNeverWritten = errors.New("page never written")
)

// OpError is the uniform failure type of the async ticket engine: every
// ticket that completes with an error carries the operation kind, the page,
// and the last agent index involved (-1 when the failure happened before any
// agent was contacted). Unwrap exposes the underlying cause, so
// errors.Is(err, ErrDeadlineExceeded) etc. work through it.
type OpError struct {
	// Op is the wire operation (OpRead or OpWrite).
	Op uint8
	// Agent is the last agent index attempted, or -1 if none was.
	Agent int
	// Page is the page the operation targeted.
	Page core.PageID
	// Attempts is the number of transport attempts consumed.
	Attempts int
	// Err is the underlying cause.
	Err error
}

// Error renders the failure with its full op context.
func (e *OpError) Error() string {
	op := "op"
	switch e.Op {
	case OpRead:
		op = "read"
	case OpWrite:
		op = "write"
	}
	if e.Agent < 0 {
		return fmt.Sprintf("remote: %s page %d (attempts=%d): %v", op, e.Page, e.Attempts, e.Err)
	}
	return fmt.Sprintf("remote: %s page %d (agent %d, attempts=%d): %v", op, e.Page, e.Agent, e.Attempts, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *OpError) Unwrap() error { return e.Err }

// opError builds the uniform ticket failure.
func opError(op uint8, agent int, page core.PageID, attempts int, err error) *OpError {
	return &OpError{Op: op, Agent: agent, Page: page, Attempts: attempts, Err: err}
}

// SetTimeSource installs the virtual-time source the engine consults for
// per-ticket deadlines (and nothing else). Pass nil to remove; with no time
// source, RetryPolicy.Deadline is inert.
func (h *Host) SetTimeSource(now func() sim.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.now = now
}

// SetBackoffObserver installs f, called with (agent, pause) whenever the
// engine charges retry backoff before requeuing a failed read — the hook a
// virtual-time harness uses to account for pacing. Pass nil to remove.
func (h *Host) SetBackoffObserver(f func(agent int, d sim.Duration)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onBackoff = f
}

// SetAgentSlow records (or clears) the control plane's hint that agent idx
// is lagging: reads order away from slow agents whenever a fresh alternative
// exists, and — with RetryPolicy.HedgeReads — a read that must target a slow
// agent is duplicated onto the next acked holder. Hints are advisory: they
// never exclude an agent from placement (that is MarkFailed's job).
func (h *Host) SetAgentSlow(idx int, slow bool) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx < 0 || idx >= len(h.transports) {
		return fmt.Errorf("remote: SetAgentSlow(%d) out of range", idx)
	}
	if slow {
		if h.slow == nil {
			h.slow = make(map[int]bool)
		}
		h.slow[idx] = true
	} else {
		delete(h.slow, idx)
	}
	return nil
}

// SlowAgents reports the currently slow-hinted agent indices, sorted.
func (h *Host) SlowAgents() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.slow))
	for i := range h.slow {
		out = append(out, i)
	}
	slices.Sort(out)
	return out
}
