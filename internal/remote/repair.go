package remote

import (
	"fmt"

	"leap/internal/core"
)

// MarkFailed records that the agent at index idx is considered dead: it is
// excluded from future placements. Existing placements keep the index so
// reads keep failing over; call RepairSlabs to restore the replication
// factor.
func (h *Host) MarkFailed(idx int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx < 0 || idx >= len(h.transports) {
		return fmt.Errorf("remote: MarkFailed(%d) out of range", idx)
	}
	if h.failed == nil {
		h.failed = make(map[int]bool)
	}
	h.failed[idx] = true
	return nil
}

// FailedAgents reports the indices currently marked failed, sorted.
func (h *Host) FailedAgents() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.failed))
	for i := range h.failed {
		out = append(out, i)
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// RepairSlabs restores the configured replication factor for every slab
// that lost replicas to failed agents: each affected slab is re-placed on a
// healthy agent (power-of-two-choices among the survivors) and its contents
// copied from a surviving replica, page by page. It returns the number of
// slabs repaired.
//
// This is the §4.5 re-replication path: after RepairSlabs, the failure of
// the *other* original replica no longer loses data.
func (h *Host) RepairSlabs() (int, error) {
	h.mu.Lock()
	// Snapshot the work under the lock; copying happens outside it.
	type job struct {
		slab      SlabID
		survivors []int
	}
	var jobs []job
	for slab, replicas := range h.placements {
		alive := make([]int, 0, len(replicas))
		for _, idx := range replicas {
			if !h.failed[idx] {
				alive = append(alive, idx)
			}
		}
		if len(alive) < len(replicas) && len(alive) > 0 {
			jobs = append(jobs, job{slab: slab, survivors: alive})
		}
	}
	h.mu.Unlock()

	repaired := 0
	for _, j := range jobs {
		if err := h.repairOne(j.slab, j.survivors); err != nil {
			return repaired, err
		}
		repaired++
	}
	return repaired, nil
}

// repairOne restores one slab's replica set.
func (h *Host) repairOne(slab SlabID, survivors []int) error {
	h.mu.Lock()
	// Choose a healthy agent not already holding the slab.
	exclude := make(map[int]bool, len(survivors)+len(h.failed))
	for _, idx := range survivors {
		exclude[idx] = true
	}
	for idx := range h.failed {
		exclude[idx] = true
	}
	target := h.pickTwoChoices(exclude)
	if target < 0 {
		h.mu.Unlock()
		return fmt.Errorf("remote: no healthy agent available to repair slab %d", slab)
	}
	dst := h.transports[target]
	h.mu.Unlock()

	if resp, err := dst.Call(&Request{Op: OpMapSlab, Slab: slab}); err != nil {
		return fmt.Errorf("remote: repair map slab %d: %w", slab, err)
	} else if resp.Status != StatusOK {
		return statusError(OpMapSlab, resp.Status)
	}
	// Copy every page from a surviving replica, preferring one that
	// acknowledged the page's most recent write (a survivor that missed a
	// write holds stale bytes). Unwritten pages copy as zeros, which is
	// exactly their state on the source.
	for off := uint32(0); off < uint32(h.cfg.SlabPages); off++ {
		page := core.PageID(int64(slab)*int64(h.cfg.SlabPages) + int64(off))
		h.mu.Lock()
		srcIdx := survivors[0]
		for _, s := range survivors {
			for _, a := range h.acked[page] {
				if s == a {
					srcIdx = s
					break
				}
			}
		}
		src := h.transports[srcIdx]
		h.mu.Unlock()

		rd, err := src.Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
		if err != nil {
			return fmt.Errorf("remote: repair read slab %d off %d: %w", slab, off, err)
		}
		if rd.Status != StatusOK {
			return statusError(OpRead, rd.Status)
		}
		wr, err := dst.Call(&Request{Op: OpWrite, Slab: slab, PageOff: off, Payload: rd.Payload})
		if err != nil {
			return fmt.Errorf("remote: repair write slab %d off %d: %w", slab, off, err)
		}
		if wr.Status != StatusOK {
			return statusError(OpWrite, wr.Status)
		}
		// The repaired copy now carries the freshest bytes we could find.
		h.mu.Lock()
		if acked, ok := h.acked[page]; ok {
			h.acked[page] = append(acked, target)
		}
		h.mu.Unlock()
	}

	h.mu.Lock()
	// Install the new replica set: survivors plus the repaired copy.
	newSet := append(append([]int{}, survivors...), target)
	h.placements[slab] = newSet
	h.slabLoad[target]++
	h.stats.Repairs++
	h.mu.Unlock()
	return nil
}

// PageCount is a helper for tests: it reports how many distinct pages map
// to slab under the current configuration (always SlabPages).
func (h *Host) PageCount(slab SlabID) int64 {
	return int64(h.cfg.SlabPages)
}

// SlabOf reports which slab a page belongs to.
func (h *Host) SlabOf(page core.PageID) SlabID {
	s, _ := h.locate(page)
	return s
}
