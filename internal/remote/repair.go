package remote

import (
	"fmt"
	"slices"

	"leap/internal/core"
)

// MarkFailed records that the agent at index idx is considered dead: it is
// excluded from future placements. Existing placements keep the index so
// reads keep failing over; call RepairSlabs to restore the replication
// factor.
func (h *Host) MarkFailed(idx int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx < 0 || idx >= len(h.transports) {
		return fmt.Errorf("remote: MarkFailed(%d) out of range", idx)
	}
	if h.failed == nil {
		h.failed = make(map[int]bool)
	}
	h.failed[idx] = true
	return nil
}

// MarkRecovered clears a MarkFailed verdict: the agent rejoins the placement
// pool. If the agent came back empty (process restart), call PurgeAgent
// first so stale placements do not point at its wiped memory.
func (h *Host) MarkRecovered(idx int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx < 0 || idx >= len(h.transports) {
		return fmt.Errorf("remote: MarkRecovered(%d) out of range", idx)
	}
	delete(h.failed, idx)
	return nil
}

// PurgeAgent removes agent idx from every placement and acknowledgment set:
// the agent's memory is gone (crash/restart), so nothing may ever read from
// it until repair re-copies data onto it. Slabs whose only replica was idx
// are unplaced entirely — their contents are lost and a future write
// re-places them fresh. It reports how many slab placements dropped the
// agent.
func (h *Host) PurgeAgent(idx int) (dropped int, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx < 0 || idx >= len(h.transports) {
		return 0, fmt.Errorf("remote: PurgeAgent(%d) out of range", idx)
	}
	for slab, replicas := range h.placements {
		if !slices.Contains(replicas, idx) {
			continue
		}
		dropped++
		rest := slices.DeleteFunc(slices.Clone(replicas), func(r int) bool { return r == idx })
		if len(rest) == 0 {
			delete(h.placements, slab)
		} else {
			h.placements[slab] = rest
		}
	}
	h.dropAgentFromHotLocked(idx)
	for page, acked := range h.acked {
		if !slices.Contains(acked, idx) {
			continue
		}
		rest := slices.DeleteFunc(slices.Clone(acked), func(r int) bool { return r == idx })
		if len(rest) == 0 {
			// The last acknowledged copy is gone: the write is lost, and
			// there is nothing left for repushDegraded to propagate — drop
			// the degraded flag too, or the page wedges every future
			// repair barrier with un-actionable work.
			delete(h.acked, page)
			delete(h.degraded, page)
		} else {
			h.acked[page] = rest
		}
	}
	h.slabLoad[idx] = 0
	return dropped, nil
}

// FailedAgents reports the indices currently marked failed, sorted.
func (h *Host) FailedAgents() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.failed))
	for i := range h.failed {
		out = append(out, i)
	}
	slices.Sort(out)
	return out
}

// RepairSlabs restores the configured replication factor for every slab
// that lost replicas (failed agents, purged restarts, or placements that
// never reached the factor): each affected slab is re-placed on a healthy
// agent (power-of-two-choices among the survivors) and its contents copied
// from a surviving replica, page by page. It then re-pushes degraded pages
// — pages whose latest write was acknowledged by fewer than Replicas agents
// — from an acknowledged copy to the replicas that missed it (best effort:
// unreachable targets stay degraded for the next round). It returns the
// number of slabs repaired.
//
// This is the §4.5 re-replication path: after RepairSlabs, the failure of
// the *other* original replica no longer loses data.
func (h *Host) RepairSlabs() (int, error) {
	h.mu.Lock()
	// Snapshot the work under the lock; copying happens outside it. Jobs
	// are sorted by slab so the repair order (and therefore the placement
	// RNG stream and any transport-level accounting) is deterministic.
	type job struct {
		slab      SlabID
		survivors []int
		missing   int
	}
	var jobs []job
	for slab, replicas := range h.placements {
		alive := make([]int, 0, len(replicas))
		for _, idx := range replicas {
			if !h.failed[idx] {
				alive = append(alive, idx)
			}
		}
		if len(alive) > 0 && len(alive) < h.cfg.Replicas {
			jobs = append(jobs, job{slab: slab, survivors: alive, missing: h.cfg.Replicas - len(alive)})
		}
	}
	h.mu.Unlock()
	slices.SortFunc(jobs, func(a, b job) int {
		switch {
		case a.slab < b.slab:
			return -1
		case a.slab > b.slab:
			return 1
		}
		return 0
	})

	repaired := 0
	for _, j := range jobs {
		survivors := j.survivors
		for k := 0; k < j.missing; k++ {
			target, err := h.repairOne(j.slab, survivors)
			if err != nil {
				return repaired, err
			}
			survivors = append(survivors, target)
		}
		repaired++
	}
	if err := h.repushDegraded(); err != nil {
		return repaired, err
	}
	return repaired, nil
}

// repairOne adds one replica to slab, copying contents from survivors, and
// returns the agent index chosen.
func (h *Host) repairOne(slab SlabID, survivors []int) (int, error) {
	h.mu.Lock()
	// Choose the best-ranked healthy agent not already holding the slab —
	// the same rendezvous ordering placement uses, so a later Rebalance has
	// nothing left to move whenever the top-ranked agents are alive.
	exclude := make(map[int]bool, len(survivors))
	for _, idx := range survivors {
		exclude[idx] = true
	}
	ranked := h.rendezvousRank(slab, exclude)
	if len(ranked) == 0 {
		h.mu.Unlock()
		return -1, fmt.Errorf("remote: no healthy agent available to repair slab %d", slab)
	}
	target := ranked[0]
	h.mu.Unlock()

	if err := h.copySlabTo(slab, survivors, target); err != nil {
		return -1, err
	}

	h.mu.Lock()
	// Install the new replica set: survivors plus the repaired copy.
	newSet := append(slices.Clone(survivors), target)
	h.placements[slab] = newSet
	h.slabLoad[target]++
	h.stats.Repairs++
	h.mu.Unlock()
	return target, nil
}

// copySlabTo maps slab on the target agent and copies every page from the
// given source replicas, page by page — the re-replication machinery shared
// by RepairSlabs and Rebalance. For each page it prefers a source that
// acknowledged the page's most recent write (a replica that missed a write
// holds stale bytes); unwritten pages copy as zeros, which is exactly their
// state on the source. A copy certified fresh extends the page's ack set to
// the target; a copy from a stale source does not, so reads never prefer
// possibly-stale bytes.
func (h *Host) copySlabTo(slab SlabID, sources []int, target int) error {
	h.mu.Lock()
	dst := h.transports[target]
	h.mu.Unlock()

	if resp, err := dst.Call(&Request{Op: OpMapSlab, Slab: slab}); err != nil {
		return fmt.Errorf("remote: repair map slab %d: %w", slab, err)
	} else if resp.Status != StatusOK {
		return statusError(OpMapSlab, resp.Status)
	}
	for off := uint32(0); off < uint32(h.cfg.SlabPages); off++ {
		page := core.PageID(int64(slab)*int64(h.cfg.SlabPages) + int64(off))
		h.mu.Lock()
		srcIdx := sources[0]
		srcAcked := false
		for _, s := range sources {
			if slices.Contains(h.acked[page], s) {
				srcIdx = s
				srcAcked = true
				break
			}
		}
		gen := h.writeGen[page]
		src := h.transports[srcIdx]
		h.mu.Unlock()

		rd, err := src.Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
		if err != nil {
			return fmt.Errorf("remote: repair read slab %d off %d: %w", slab, off, err)
		}
		if rd.Status != StatusOK {
			return statusError(OpRead, rd.Status)
		}
		wr, err := dst.Call(&Request{Op: OpWrite, Slab: slab, PageOff: off, Payload: rd.Payload})
		if err != nil {
			return fmt.Errorf("remote: repair write slab %d off %d: %w", slab, off, err)
		}
		if wr.Status != StatusOK {
			return statusError(OpWrite, wr.Status)
		}
		if srcAcked {
			h.mu.Lock()
			// Certify the copy only if no write completed since the source
			// read (the copy would be stale); the target still holds usable
			// bytes, it just stays out of the ack set like any replica that
			// missed a write.
			if acked, ok := h.acked[page]; ok && h.writeGen[page] == gen && !slices.Contains(acked, target) {
				h.acked[page] = append(acked, target)
			}
			h.mu.Unlock()
		}
	}
	return nil
}

// repushDegraded walks the pages whose latest write is under-acknowledged
// and copies the fresh bytes from an acknowledged replica to the live
// replicas that missed the write. Unreachable targets are skipped (the page
// stays degraded); a page with no live acknowledged copy is beyond saving
// by this path and is left for slab-level repair.
func (h *Host) repushDegraded() error {
	h.mu.Lock()
	pages := make([]core.PageID, 0, len(h.degraded))
	for page := range h.degraded {
		pages = append(pages, page)
	}
	h.mu.Unlock()
	slices.Sort(pages)

	for _, page := range pages {
		slab, off := h.locate(page)
		h.mu.Lock()
		replicas := slices.Clone(h.placements[slab])
		acked := slices.Clone(h.acked[page])
		srcIdx := -1
		for _, idx := range acked {
			if !h.failed[idx] && slices.Contains(replicas, idx) {
				srcIdx = idx
				break
			}
		}
		var targets []int
		for _, idx := range replicas {
			if !h.failed[idx] && !slices.Contains(acked, idx) {
				targets = append(targets, idx)
			}
		}
		var src Transport
		if srcIdx >= 0 {
			src = h.transports[srcIdx]
		}
		h.mu.Unlock()

		if src == nil || len(targets) == 0 {
			// Slab-level repair may already have restored full coverage
			// (every live replica acked); clear the flag if so.
			h.mu.Lock()
			if len(h.acked[page]) >= h.cfg.Replicas {
				delete(h.degraded, page)
			}
			h.mu.Unlock()
			continue
		}
		rd, err := src.Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
		if err != nil || rd.Status != StatusOK {
			continue // source unreachable this round; retry next repair
		}
		for _, idx := range targets {
			wr, err := h.transports[idx].Call(&Request{Op: OpWrite, Slab: slab, PageOff: off, Payload: rd.Payload})
			if err != nil || wr.Status != StatusOK {
				continue // target unreachable; page stays degraded
			}
			h.mu.Lock()
			if a, ok := h.acked[page]; ok && !slices.Contains(a, idx) {
				h.acked[page] = append(a, idx)
			}
			h.mu.Unlock()
		}
		h.mu.Lock()
		if len(h.acked[page]) >= h.cfg.Replicas {
			delete(h.degraded, page)
		}
		h.mu.Unlock()
	}
	return nil
}

// PageCount is a helper for tests: it reports how many distinct pages map
// to slab under the current configuration (always SlabPages).
func (h *Host) PageCount(slab SlabID) int64 {
	return int64(h.cfg.SlabPages)
}

// SlabOf reports which slab a page belongs to.
func (h *Host) SlabOf(page core.PageID) SlabID {
	s, _ := h.locate(page)
	return s
}
