package remote

import (
	"encoding/binary"
	"fmt"
	"log"
	"net"
	"sync"

	"leap/internal/ztier"
)

// Agent is a remote-memory server: it donates memory as slabs and serves
// page reads/writes against them. Safe for concurrent use.
type Agent struct {
	mu        sync.Mutex
	slabPages int
	maxSlabs  int
	slabs     map[SlabID][]byte

	// Counters (read under mu).
	reads, writes int64

	// comp is the wire codec state for compressed read responses (used
	// under mu).
	comp ztier.Compressor
}

// NewAgent returns an agent donating maxSlabs slabs of slabPages pages
// each. maxSlabs <= 0 means unlimited.
func NewAgent(slabPages, maxSlabs int) *Agent {
	if slabPages <= 0 {
		slabPages = DefaultSlabPages
	}
	return &Agent{
		slabPages: slabPages,
		maxSlabs:  maxSlabs,
		slabs:     make(map[SlabID][]byte),
	}
}

// SlabPages reports the slab granularity.
func (a *Agent) SlabPages() int { return a.slabPages }

// Reset drops every mapped slab — the memory loss of a process restart.
// Operation counters survive (they are cumulative over the agent's life).
func (a *Agent) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.slabs = make(map[SlabID][]byte)
}

// SlabCount reports the number of mapped slabs.
func (a *Agent) SlabCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.slabs)
}

// Ops reports cumulative (reads, writes).
func (a *Agent) Ops() (reads, writes int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reads, a.writes
}

// Handle processes one request and returns the response. This is the
// transport-independent core used by both the in-process transport and the
// TCP server loop.
func (a *Agent) Handle(req *Request) *Response {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch req.Op {
	case OpPing:
		return &Response{Status: StatusOK}

	case OpMapSlab:
		if _, ok := a.slabs[req.Slab]; ok {
			return &Response{Status: StatusOK} // idempotent
		}
		if a.maxSlabs > 0 && len(a.slabs) >= a.maxSlabs {
			return &Response{Status: StatusNoSpace}
		}
		a.slabs[req.Slab] = make([]byte, a.slabPages*PageSize)
		return &Response{Status: StatusOK}

	case OpFreeSlab:
		delete(a.slabs, req.Slab)
		return &Response{Status: StatusOK}

	case OpRead:
		slab, ok := a.slabs[req.Slab]
		if !ok {
			return &Response{Status: StatusBadSlab}
		}
		off := int(req.PageOff) * PageSize
		if off+PageSize > len(slab) {
			return &Response{Status: StatusBadBound}
		}
		a.reads++
		page := make([]byte, PageSize)
		copy(page, slab[off:off+PageSize])
		return &Response{Status: StatusOK, Payload: page}

	case OpWrite:
		slab, ok := a.slabs[req.Slab]
		if !ok {
			return &Response{Status: StatusBadSlab}
		}
		if len(req.Payload) != PageSize {
			return &Response{Status: StatusBadBound}
		}
		off := int(req.PageOff) * PageSize
		if off+PageSize > len(slab) {
			return &Response{Status: StatusBadBound}
		}
		a.writes++
		copy(slab[off:off+PageSize], req.Payload)
		return &Response{Status: StatusOK}

	case OpStats:
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint32(payload[0:4], uint32(len(a.slabs)))
		binary.LittleEndian.PutUint32(payload[4:8], uint32(a.maxSlabs))
		return &Response{Status: StatusOK, Payload: payload}

	case OpReadBatch:
		refs, err := DecodeReadBatch(req)
		if err != nil {
			return &Response{Status: StatusBadFrame}
		}
		results := make([]BatchReadResult, len(refs))
		for i, ref := range refs {
			slab, ok := a.slabs[ref.Slab]
			if !ok {
				results[i].Status = StatusBadSlab
				continue
			}
			off := int(ref.PageOff) * PageSize
			if off+PageSize > len(slab) {
				results[i].Status = StatusBadBound
				continue
			}
			a.reads++
			results[i] = BatchReadResult{Status: StatusOK, Page: slab[off : off+PageSize]}
		}
		var resp *Response
		if ReadBatchCompressed(req) {
			resp, err = EncodeReadBatchResponseCompressed(results, &a.comp)
		} else {
			resp, err = EncodeReadBatchResponse(results)
		}
		if err != nil {
			return &Response{Status: StatusBadFrame}
		}
		return resp

	case OpWriteBatch:
		refs, pages, err := DecodeWriteBatch(req)
		if err != nil {
			return &Response{Status: StatusBadFrame}
		}
		statuses := make([]uint8, len(refs))
		for i, ref := range refs {
			slab, ok := a.slabs[ref.Slab]
			if !ok {
				statuses[i] = StatusBadSlab
				continue
			}
			off := int(ref.PageOff) * PageSize
			if off+PageSize > len(slab) {
				statuses[i] = StatusBadBound
				continue
			}
			a.writes++
			copy(slab[off:off+PageSize], pages[i])
		}
		resp, err := EncodeWriteBatchResponse(statuses)
		if err != nil {
			return &Response{Status: StatusBadFrame}
		}
		return resp

	default:
		return &Response{Status: StatusBadOp}
	}
}

// Serve accepts connections on l and serves the wire protocol until l is
// closed. Each connection gets its own goroutine; requests within a
// connection are processed in order (the host pipelines at most one request
// per connection).
func (a *Agent) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return fmt.Errorf("remote: accept: %w", err)
		}
		go a.serveConn(conn)
	}
}

func (a *Agent) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := DecodeRequest(conn)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		if err := EncodeResponse(conn, a.Handle(req)); err != nil {
			log.Printf("remote: agent response write: %v", err)
			return
		}
	}
}
