package remote

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"leap/internal/core"
)

// TestHostConcurrentReadWrite hammers one Host from many goroutines —
// writers, readers, a failure-toggling saboteur and a repair loop — and is
// meant to run under -race (CI does). Each writer owns a disjoint page
// range. The saboteur and the repair loop together form TWO concurrent
// fault domains, under which strict read-your-writes is not promised (the
// disciplined single-fault schedules in internal/chaos assert that); what
// must hold even here is integrity: a read returns some value that was
// actually written to the page — never fabricated bytes — and nothing
// panics, races or deadlocks.
func TestHostConcurrentReadWrite(t *testing.T) {
	const (
		agents       = 4
		writers      = 4
		pagesPerGor  = 24
		opsPerWriter = 300
	)
	inprocs := make([]*InProc, agents)
	trs := make([]Transport, agents)
	for i := range trs {
		inprocs[i] = NewInProc(NewAgent(8, 0))
		trs[i] = inprocs[i]
	}
	h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 2, Seed: 99}, trs)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-write every page once so placements exist before the churn.
	for p := core.PageID(0); p < writers*pagesPerGor; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var background, wg sync.WaitGroup
	errs := make(chan error, writers+2)

	// Saboteur: flap agent 3 (transient transport failure, no MarkFailed —
	// reads and writes must ride it out via the other replica).
	background.Add(1)
	go func() {
		defer background.Done()
		for i := 0; !stop.Load(); i++ {
			inprocs[3].SetFailed(i%2 == 0)
		}
		inprocs[3].SetFailed(false)
	}()

	// Repair loop: exercises MarkFailed/RepairSlabs/MarkRecovered
	// concurrently with traffic. Errors are expected (repair may race with
	// the saboteur); panics and data races are not.
	background.Add(1)
	go func() {
		defer background.Done()
		for i := 0; !stop.Load(); i++ {
			idx := i % agents
			if idx == 3 {
				continue // leave the saboteur's agent alone
			}
			_ = h.MarkFailed(idx)
			_, _ = h.RepairSlabs()
			_ = h.MarkRecovered(idx)
			_ = h.FailedAgents()
			_ = h.UnderReplicated()
			_ = h.DegradedPages()
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := core.PageID(w * pagesPerGor)
			buf := make([]byte, PageSize)
			written := make(map[core.PageID]map[byte]bool)
			for i := 0; i < opsPerWriter; i++ {
				p := lo + core.PageID(i%pagesPerGor)
				if written[p] == nil {
					written[p] = map[byte]bool{byte(p): true} // the pre-write value
				}
				v := byte(w*31 + i)
				if err := h.WritePage(p, pageOf(v)); err != nil {
					continue // all replicas down at this instant
				}
				written[p][v] = true
				if err := h.ReadPage(p, buf); err != nil {
					continue // replicas flapped between write and read
				}
				if !written[p][buf[0]] {
					errs <- fmt.Errorf("fabricated read: page %d got %#x, never written", p, buf[0])
					return
				}
			}
		}(w)
	}

	wg.Wait()
	stop.Store(true)
	background.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
