package remote

import (
	"errors"
	"fmt"
	"sync"

	"leap/internal/sim"
)

// ErrInjected marks a transport error produced by fault injection rather
// than a real I/O failure; errors.Is distinguishes chaos from accidents.
var ErrInjected = errors.New("injected fault")

// FaultMode is the switchable failure state of one FaultTransport.
type FaultMode struct {
	// Crashed fails every call: the agent process is gone (its memory is
	// gone too — pair with Agent.Reset on restart).
	Crashed bool
	// Partitioned fails every call like Crashed, but models a network
	// split: the agent keeps its memory and rejoins with old contents.
	Partitioned bool
	// WriteFailProb fails each OpWrite independently with this probability,
	// producing stale-replica divergence (the write lands on the other
	// replicas only).
	WriteFailProb float64
	// ExtraLatency is added virtual time per call for a slow/lagging agent.
	// It never fails the call; it is reported to the observer for timing.
	ExtraLatency sim.Duration
}

// CallObservation is what a FaultTransport reports per call, letting a
// deterministic harness charge virtual time without touching the data path.
type CallObservation struct {
	Agent    int
	Op       uint8
	Pages    int          // page ops the frame carries (>1 for batch frames)
	Injected bool         // the call was failed by fault injection
	Extra    sim.Duration // slow-agent latency to charge (0 when healthy)
}

// FaultTransport decorates a Transport with deterministic fault injection:
// hard crashes, network partitions, transient per-write failures and added
// latency. All probabilistic decisions come from the sim.RNG supplied at
// construction, so a single-threaded caller replays bit-identically from a
// seed. Safe for concurrent use, though concurrent callers naturally race
// for positions in the RNG stream.
type FaultTransport struct {
	agent int
	inner Transport

	mu       sync.Mutex
	mode     FaultMode
	rng      *sim.RNG
	observer func(CallObservation)
	calls    int64
	injected int64
}

// NewFaultTransport wraps inner as agent index agent, drawing write-failure
// decisions from rng.
func NewFaultTransport(agent int, inner Transport, rng *sim.RNG) *FaultTransport {
	return &FaultTransport{agent: agent, inner: inner, rng: rng}
}

// Agent reports the agent index this transport fronts.
func (t *FaultTransport) Agent() int { return t.agent }

// SetMode replaces the fault state.
func (t *FaultTransport) SetMode(mode FaultMode) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mode = mode
}

// Mode reports the current fault state.
func (t *FaultTransport) Mode() FaultMode {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mode
}

// Reachable reports whether calls currently go through at all (reads always
// succeed on a reachable transport; writes may still flake).
func (t *FaultTransport) Reachable() bool {
	m := t.Mode()
	return !m.Crashed && !m.Partitioned
}

// SetObserver installs f, called once per Call (before the inner call, with
// the injection decision already made). Pass nil to remove.
func (t *FaultTransport) SetObserver(f func(CallObservation)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observer = f
}

// Observer reports the currently installed per-call observer (nil when
// none). A harness that must keep an existing observer alive — the runtime
// chaining a control-plane feed onto a chaos harness's accounting hook —
// reads it before SetObserver and calls it from the replacement.
func (t *FaultTransport) Observer() func(CallObservation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.observer
}

// Stats reports (total calls, calls failed by injection).
func (t *FaultTransport) Stats() (calls, injected int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls, t.injected
}

// Call implements Transport.
func (t *FaultTransport) Call(req *Request) (*Response, error) {
	t.mu.Lock()
	mode := t.mode
	var cause string
	switch {
	case mode.Crashed:
		cause = "agent crashed"
	case mode.Partitioned:
		cause = "network partition"
	case mode.WriteFailProb > 0 && (req.Op == OpWrite || req.Op == OpWriteBatch) &&
		t.rng != nil && t.rng.Float64() < mode.WriteFailProb:
		cause = "transient write failure"
	}
	t.calls++
	if cause != "" {
		t.injected++
	}
	obs := t.observer
	t.mu.Unlock()

	if obs != nil {
		obs(CallObservation{
			Agent:    t.agent,
			Op:       req.Op,
			Pages:    BatchPages(req),
			Injected: cause != "",
			Extra:    mode.ExtraLatency,
		})
	}
	if cause != "" {
		return nil, fmt.Errorf("remote: agent %d: %s: %w", t.agent, cause, ErrInjected)
	}
	return t.inner.Call(req)
}

// Close implements Transport.
func (t *FaultTransport) Close() error { return t.inner.Close() }
