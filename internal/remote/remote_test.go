package remote

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"leap/internal/core"
)

func pageOf(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Op: OpWrite, Slab: 7, PageOff: 42, Payload: pageOf(0xAB)}
	if err := EncodeRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.Slab != req.Slab || got.PageOff != req.PageOff ||
		!bytes.Equal(got.Payload, req.Payload) {
		t.Fatal("request round trip mismatch")
	}

	resp := &Response{Status: StatusOK, Payload: pageOf(0xCD)}
	if err := EncodeResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	gotR, err := DecodeResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Status != StatusOK || !bytes.Equal(gotR.Payload, resp.Payload) {
		t.Fatal("response round trip mismatch")
	}
}

func TestProtocolRejectsBadMagic(t *testing.T) {
	buf := bytes.NewBuffer(make([]byte, 64))
	if _, err := DecodeRequest(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestAgentMapReadWrite(t *testing.T) {
	a := NewAgent(16, 4)
	if resp := a.Handle(&Request{Op: OpMapSlab, Slab: 1}); resp.Status != StatusOK {
		t.Fatalf("map: %d", resp.Status)
	}
	data := pageOf(0x5A)
	if resp := a.Handle(&Request{Op: OpWrite, Slab: 1, PageOff: 3, Payload: data}); resp.Status != StatusOK {
		t.Fatalf("write: %d", resp.Status)
	}
	resp := a.Handle(&Request{Op: OpRead, Slab: 1, PageOff: 3})
	if resp.Status != StatusOK || !bytes.Equal(resp.Payload, data) {
		t.Fatal("read mismatch")
	}
	reads, writes := a.Ops()
	if reads != 1 || writes != 1 {
		t.Fatalf("ops = %d/%d", reads, writes)
	}
}

func TestAgentErrors(t *testing.T) {
	a := NewAgent(4, 1)
	if resp := a.Handle(&Request{Op: OpRead, Slab: 9, PageOff: 0}); resp.Status != StatusBadSlab {
		t.Fatalf("read unmapped: %d", resp.Status)
	}
	a.Handle(&Request{Op: OpMapSlab, Slab: 1})
	if resp := a.Handle(&Request{Op: OpMapSlab, Slab: 2}); resp.Status != StatusNoSpace {
		t.Fatalf("over-capacity map: %d", resp.Status)
	}
	if resp := a.Handle(&Request{Op: OpRead, Slab: 1, PageOff: 99}); resp.Status != StatusBadBound {
		t.Fatalf("out-of-bounds read: %d", resp.Status)
	}
	if resp := a.Handle(&Request{Op: OpWrite, Slab: 1, PageOff: 0, Payload: []byte{1}}); resp.Status != StatusBadBound {
		t.Fatalf("short write: %d", resp.Status)
	}
	if resp := a.Handle(&Request{Op: 99}); resp.Status != StatusBadOp {
		t.Fatalf("bad op: %d", resp.Status)
	}
}

func TestAgentMapIdempotentAndFree(t *testing.T) {
	a := NewAgent(4, 2)
	a.Handle(&Request{Op: OpMapSlab, Slab: 1})
	a.Handle(&Request{Op: OpMapSlab, Slab: 1})
	if a.SlabCount() != 1 {
		t.Fatalf("SlabCount = %d, want 1", a.SlabCount())
	}
	a.Handle(&Request{Op: OpFreeSlab, Slab: 1})
	if a.SlabCount() != 0 {
		t.Fatal("free did not release slab")
	}
}

func TestHostWriteReadThroughInProc(t *testing.T) {
	agents := []*Agent{NewAgent(8, 0), NewAgent(8, 0), NewAgent(8, 0)}
	trs := make([]Transport, len(agents))
	for i, a := range agents {
		trs[i] = NewInProc(a)
	}
	h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 2, Seed: 1}, trs)
	if err != nil {
		t.Fatal(err)
	}
	// Write pages across several slabs, read them back.
	for p := core.PageID(0); p < 64; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatalf("write %d: %v", p, err)
		}
	}
	buf := make([]byte, PageSize)
	for p := core.PageID(0); p < 64; p++ {
		if err := h.ReadPage(p, buf); err != nil {
			t.Fatalf("read %d: %v", p, err)
		}
		if buf[0] != byte(p) {
			t.Fatalf("page %d data mismatch: %x", p, buf[0])
		}
	}
	st := h.Stats()
	if st.SlabsMapped != 8 { // 64 pages / 8 per slab
		t.Fatalf("SlabsMapped = %d, want 8", st.SlabsMapped)
	}
}

func TestHostReplicationFailover(t *testing.T) {
	agents := []*Agent{NewAgent(8, 0), NewAgent(8, 0)}
	inprocs := []*InProc{NewInProc(agents[0]), NewInProc(agents[1])}
	h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 2, Seed: 3},
		[]Transport{inprocs[0], inprocs[1]})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WritePage(5, pageOf(0x77)); err != nil {
		t.Fatal(err)
	}
	// Kill agent 0; the read must fail over to the replica regardless of
	// which agent is primary.
	inprocs[0].SetFailed(true)
	buf := make([]byte, PageSize)
	if err := h.ReadPage(5, buf); err != nil {
		t.Fatalf("read with one dead agent: %v", err)
	}
	if buf[0] != 0x77 {
		t.Fatal("failover returned wrong data")
	}
	// Both dead: the read fails.
	inprocs[1].SetFailed(true)
	if err := h.ReadPage(5, buf); err == nil {
		t.Fatal("read succeeded with all agents dead")
	}
}

func TestHostWriteSurvivesOneReplicaFailure(t *testing.T) {
	agents := []*Agent{NewAgent(8, 0), NewAgent(8, 0)}
	inprocs := []*InProc{NewInProc(agents[0]), NewInProc(agents[1])}
	h, _ := NewHost(HostConfig{SlabPages: 8, Replicas: 2, Seed: 3},
		[]Transport{inprocs[0], inprocs[1]})
	if err := h.WritePage(1, pageOf(1)); err != nil {
		t.Fatal(err)
	}
	inprocs[1].SetFailed(true)
	if err := h.WritePage(1, pageOf(2)); err != nil {
		t.Fatalf("write with one dead replica: %v", err)
	}
}

func TestHostPlacementBalance(t *testing.T) {
	// Power-of-two-choices keeps slab load roughly even across agents.
	n := 8
	trs := make([]Transport, n)
	for i := 0; i < n; i++ {
		trs[i] = NewInProc(NewAgent(4, 0))
	}
	h, _ := NewHost(HostConfig{SlabPages: 4, Replicas: 2, Seed: 42}, trs)
	for p := core.PageID(0); p < 4*200; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	load := h.SlabLoad()
	minL, maxL := load[0], load[0]
	for _, l := range load {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	// 200 slabs × 2 replicas over 8 agents = 50 mean. Two-choices keeps the
	// spread tight; allow a generous 40% band.
	if maxL > 70 || minL < 30 {
		t.Fatalf("placement imbalance: %v", load)
	}
}

func TestHostRejectsBadSizes(t *testing.T) {
	h, _ := NewHost(HostConfig{}, []Transport{NewInProc(NewAgent(8, 0))})
	if err := h.WritePage(0, []byte{1, 2}); err == nil {
		t.Fatal("short write accepted")
	}
	if err := h.ReadPage(0, make([]byte, 7)); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if err := h.ReadPage(12345, make([]byte, PageSize)); err == nil {
		t.Fatal("read of never-written page succeeded")
	}
}

func TestHostNeedsAgents(t *testing.T) {
	if _, err := NewHost(HostConfig{}, nil); err == nil {
		t.Fatal("NewHost with no agents succeeded")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	agent := NewAgent(16, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go agent.Serve(l) //nolint:errcheck // listener close ends Serve

	tr, err := DialTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	h, err := NewHost(HostConfig{SlabPages: 16, Replicas: 1, Seed: 1}, []Transport{tr})
	if err != nil {
		t.Fatal(err)
	}
	for p := core.PageID(0); p < 32; p++ {
		if err := h.WritePage(p, pageOf(byte(p*3))); err != nil {
			t.Fatalf("tcp write %d: %v", p, err)
		}
	}
	buf := make([]byte, PageSize)
	for p := core.PageID(0); p < 32; p++ {
		if err := h.ReadPage(p, buf); err != nil {
			t.Fatalf("tcp read %d: %v", p, err)
		}
		if buf[0] != byte(p*3) || buf[PageSize-1] != byte(p*3) {
			t.Fatalf("tcp page %d corrupt", p)
		}
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	agent := NewAgent(64, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go agent.Serve(l) //nolint:errcheck

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tr, err := DialTCP(l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer tr.Close()
			slab := SlabID(c)
			if resp, err := tr.Call(&Request{Op: OpMapSlab, Slab: slab}); err != nil || resp.Status != StatusOK {
				errs <- err
				return
			}
			for i := 0; i < 50; i++ {
				data := pageOf(byte(c*50 + i))
				resp, err := tr.Call(&Request{Op: OpWrite, Slab: slab, PageOff: uint32(i % 64), Payload: data})
				if err != nil || resp.Status != StatusOK {
					errs <- err
					return
				}
				resp, err = tr.Call(&Request{Op: OpRead, Slab: slab, PageOff: uint32(i % 64)})
				if err != nil || resp.Status != StatusOK || !bytes.Equal(resp.Payload, data) {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAgentStatsOp(t *testing.T) {
	a := NewAgent(8, 5)
	a.Handle(&Request{Op: OpMapSlab, Slab: 1})
	resp := a.Handle(&Request{Op: OpStats})
	if resp.Status != StatusOK || len(resp.Payload) != 8 {
		t.Fatal("stats malformed")
	}
	if resp.Payload[0] != 1 || resp.Payload[4] != 5 {
		t.Fatalf("stats payload = %v", resp.Payload)
	}
}
