package remote

import (
	"fmt"
	"slices"

	"leap/internal/core"
)

// Hot-page read replicas: the control plane promotes the top-K
// fault-frequency pages to extra copies beyond their slab placement, so the
// hottest reads can be served by whichever acked holder is least loaded (or
// not hinted slow) instead of always hammering the same two replicas. A hot
// copy is readable only once certified fresh — it joins the page's ack set
// when installed from an acked source and on every subsequent write, exactly
// like a placement replica — so the staleness discipline is unchanged.

// readCandidates returns the ordered attempt list for a page read: acked
// holders first (placement order, hot extras after), then the unacked rest.
// When the control plane has hinted agents slow, each group orders not-slow
// before slow — routing around lag without ever dropping a candidate. With
// no hot copies and no slow hints this is exactly the legacy acked-first
// ordering. Callers hold h.mu.
func (h *Host) readCandidates(page core.PageID, replicas []int) []int {
	cands := replicas
	if extra := h.hot[page]; len(extra) > 0 {
		cands = slices.Clone(replicas)
		for _, idx := range extra {
			if !slices.Contains(cands, idx) {
				cands = append(cands, idx)
			}
		}
	}
	acked := h.acked[page]
	order := make([]int, 0, len(cands))
	appendGroup := func(wantAcked, wantSlow bool) {
		for _, idx := range cands {
			if slices.Contains(acked, idx) == wantAcked && h.slow[idx] == wantSlow {
				order = append(order, idx)
			}
		}
	}
	if len(h.slow) == 0 {
		appendGroup(true, false)
		appendGroup(false, false)
		return order
	}
	appendGroup(true, false)
	appendGroup(true, true)
	appendGroup(false, false)
	appendGroup(false, true)
	return order
}

// writeTargets returns the write fan-out set for page: the slab replicas
// plus any hot extra holders (deduplicated, placement order first). Callers
// hold h.mu.
func (h *Host) writeTargets(page core.PageID, replicas []int) []int {
	extra := h.hot[page]
	if len(extra) == 0 {
		return replicas
	}
	targets := slices.Clone(replicas)
	for _, idx := range extra {
		if !slices.Contains(targets, idx) {
			targets = append(targets, idx)
		}
	}
	return targets
}

// maxHotStaleRetries bounds how many times one ReplicateHot call re-reads
// its source after a concurrent write invalidated the bytes in hand — enough
// to make progress under sporadic writes without livelocking against a page
// under constant write pressure (the control plane retries next refresh).
const maxHotStaleRetries = 3

// ReplicateHot installs extra read replicas for page until it has up to
// extra hot holders beyond its slab placement, choosing the best
// rendezvous-ranked live agents not already holding a copy. The page bytes
// are copied from a holder that acknowledged the latest write; with no live
// acked source the call is a no-op (an uncertifiable copy could never be
// read anyway). Unreachable targets are skipped best-effort. It reports how
// many copies were installed.
//
// The source read and target writes run with h.mu released, so a client
// write can land in between; the per-page write generation is snapshotted
// with the source read and re-checked at install time, so a copy that a
// concurrent write overtook is never certified into the ack set.
func (h *Host) ReplicateHot(page core.PageID, extra int) (added int, err error) {
	slab, off := h.locate(page)

	h.mu.Lock()
	replicas, ok := h.placements[slab]
	if !ok {
		h.mu.Unlock()
		return 0, fmt.Errorf("remote: ReplicateHot(%d): page's slab is not placed", page)
	}
	have := h.hot[page]
	need := extra - len(have)
	if need <= 0 {
		h.mu.Unlock()
		return 0, nil
	}
	exclude := make(map[int]bool, len(replicas)+len(have))
	for _, idx := range replicas {
		exclude[idx] = true
	}
	for _, idx := range have {
		exclude[idx] = true
	}
	ranked := h.rendezvousRank(slab, exclude)
	h.mu.Unlock()

	payload, gen, err := h.hotSourceRead(page, slab, off)
	if err != nil || payload == nil {
		return 0, err
	}

	rereads := 0
	for i := 0; i < len(ranked) && added < need; {
		target := ranked[i]
		h.mu.Lock()
		tr := h.transports[target]
		h.mu.Unlock()
		if resp, err := tr.Call(&Request{Op: OpMapSlab, Slab: slab}); err != nil || resp.Status != StatusOK {
			i++ // unreachable; try the next ranked agent
			continue
		}
		if resp, err := tr.Call(&Request{Op: OpWrite, Slab: slab, PageOff: off, Payload: payload}); err != nil || resp.Status != StatusOK {
			i++
			continue
		}
		h.mu.Lock()
		if h.writeGen[page] != gen {
			// A write completed after our source read: the bytes just pushed
			// are stale and must not join the ack set. Nothing references
			// them; re-read fresh bytes and retry this same target.
			h.mu.Unlock()
			if rereads++; rereads > maxHotStaleRetries {
				return added, nil
			}
			payload, gen, err = h.hotSourceRead(page, slab, off)
			if err != nil || payload == nil {
				return added, err
			}
			continue
		}
		if h.hot == nil {
			h.hot = make(map[core.PageID][]int)
		}
		h.hot[page] = append(h.hot[page], target)
		if acked, ok := h.acked[page]; ok && !slices.Contains(acked, target) {
			h.acked[page] = append(acked, target)
		}
		h.stats.HotCopies++
		h.mu.Unlock()
		added++
		i++
	}
	return added, nil
}

// hotSourceRead snapshots page's write generation and reads its current
// bytes from a live holder that acknowledged the latest write. A nil payload
// with nil error means no live acked source exists (the caller gives up
// without certifying anything). The transport read runs with h.mu released;
// callers compare the returned generation against h.writeGen under the lock
// before trusting the payload as fresh.
func (h *Host) hotSourceRead(page core.PageID, slab SlabID, off uint32) (payload []byte, gen uint64, err error) {
	h.mu.Lock()
	gen = h.writeGen[page]
	srcIdx := -1
	for _, idx := range h.acked[page] {
		if !h.failed[idx] {
			srcIdx = idx
			break
		}
	}
	if srcIdx < 0 {
		h.mu.Unlock()
		return nil, gen, nil
	}
	src := h.transports[srcIdx]
	h.mu.Unlock()

	rd, err := src.Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
	if err != nil {
		return nil, gen, fmt.Errorf("remote: ReplicateHot(%d) read source: %w", page, err)
	}
	if rd.Status != StatusOK {
		return nil, gen, statusError(OpRead, rd.Status)
	}
	return rd.Payload, gen, nil
}

// DropHot demotes page back to its plain slab placement: hot holders leave
// the ack set (so no read path consults a copy that will no longer receive
// writes) and the hot entry is removed. The bytes on the former holders are
// simply abandoned — nothing references them.
//
// When every acked copy is a hot holder (the placement replicas all missed
// the last write), demoting as-is would abandon the only certified copies
// while readers silently fall back to stale placement bytes. Instead the
// page is first copied from a hot holder back onto its live placement
// replicas; if none can take it (or a write to the page is in flight),
// DropHot refuses and reports false so the caller retries later.
func (h *Host) DropHot(page core.PageID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	holders := h.hot[page]
	if len(holders) == 0 {
		return true
	}
	if acked, ok := h.acked[page]; ok {
		rest := slices.DeleteFunc(slices.Clone(acked), func(r int) bool {
			return slices.Contains(holders, r)
		})
		if len(rest) == 0 {
			// With a write in flight the copy-back below could overwrite the
			// write's fresher bytes on a placement replica that then acks it
			// — defer; the next attempt sees the write's own ack set.
			if h.dirty[page] != nil || h.syncWrites[page] > 0 {
				return false
			}
			rest = h.restoreAckedLocked(page, acked)
			if len(rest) == 0 {
				return false
			}
		}
		h.acked[page] = rest
		if len(rest) < h.cfg.Replicas {
			// The last write is certified on fewer than Replicas placement
			// copies once the holders leave: keep it flagged so RepairSlabs
			// re-pushes it.
			h.degraded[page] = true
		} else {
			delete(h.degraded, page)
		}
	}
	delete(h.hot, page)
	return true
}

// restoreAckedLocked copies page's latest bytes from a live acked holder
// onto the live placement replicas and returns the replicas that accepted —
// the certified set that lets DropHot demote without losing the last acked
// write. Callers hold h.mu; like flushLocked, the lock is held across the
// transport calls, so no new write to the page can begin mid-copy.
func (h *Host) restoreAckedLocked(page core.PageID, sources []int) []int {
	slab, off := h.locate(page)
	var payload []byte
	for _, src := range sources {
		if h.failed[src] {
			continue
		}
		rd, err := h.transports[src].Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
		if err == nil && rd.Status == StatusOK {
			payload = rd.Payload
			break
		}
	}
	if payload == nil {
		return nil
	}
	var restored []int
	for _, idx := range h.placements[slab] {
		if h.failed[idx] {
			continue
		}
		wr, err := h.transports[idx].Call(&Request{Op: OpWrite, Slab: slab, PageOff: off, Payload: payload})
		if err == nil && wr.Status == StatusOK {
			restored = append(restored, idx)
		}
	}
	return restored
}

// HotPages reports the pages currently carrying hot extra replicas, sorted.
func (h *Host) HotPages() []core.PageID {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]core.PageID, 0, len(h.hot))
	for page := range h.hot {
		out = append(out, page)
	}
	slices.Sort(out)
	return out
}

// HotHolders reports (a copy of) the extra holders for page, if any.
func (h *Host) HotHolders(page core.PageID) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return slices.Clone(h.hot[page])
}

// dropAgentFromHotLocked removes agent idx from every hot holder set — the
// scrub shared by PurgeAgent and slab migration. A page whose hot set
// empties is demoted (its entry is deleted); the ack-set scrub is the
// caller's responsibility (purge and migration already handle acked).
// Callers hold h.mu.
func (h *Host) dropAgentFromHotLocked(idx int) {
	for page, holders := range h.hot {
		if !slices.Contains(holders, idx) {
			continue
		}
		rest := slices.DeleteFunc(slices.Clone(holders), func(r int) bool { return r == idx })
		if len(rest) == 0 {
			delete(h.hot, page)
		} else {
			h.hot[page] = rest
		}
	}
}
