// Package remote implements the remote-memory substrate of §4.4–4.5: a host
// agent that maps fixed-size memory slabs onto one or more remote agents,
// with power-of-two-choices placement for load balance and two-way
// replication for fault tolerance.
//
// Unlike the latency *models* elsewhere in this repository, this package
// moves real bytes: agents hold slab contents in memory, and the host reads
// and writes 4KB pages through a Transport. Two transports exist — an
// in-process one for unit tests and simulations, and a TCP one (binary
// framed protocol, stdlib net) used by cmd/leapagent and the remoteswap
// example to exercise an actual network path.
package remote

import (
	"encoding/binary"
	"fmt"
	"io"
)

// PageSize is the fixed page size, matching the paper's 4KB unit.
const PageSize = 4096

// DefaultSlabPages is the default slab granularity (pages per slab). The
// real Infiniswap uses 1GB slabs; tests and examples use smaller ones, so
// this is configurable on the Host.
const DefaultSlabPages = 4096 // 16MB

// SlabID names a slab within the cluster-wide remote memory pool. It is
// 64-bit on the wire: hosts namespace pages per process in the high bits,
// so slab numbers exceed 32 bits even at moderate slab sizes.
type SlabID uint64

// Op codes of the wire protocol.
const (
	OpMapSlab  uint8 = 1 // allocate a slab on the agent
	OpFreeSlab uint8 = 2 // release a slab
	OpRead     uint8 = 3 // read one page
	OpWrite    uint8 = 4 // write one page
	OpPing     uint8 = 5 // liveness probe
	OpStats    uint8 = 6 // slab count + capacity
	// OpReadBatch reads up to MaxBatchOps pages in one frame — the
	// doorbell-style batching of §4.4's multi-queue design: one round trip
	// (and one fabric doorbell) amortized over the whole batch.
	OpReadBatch uint8 = 7
	// OpWriteBatch writes up to MaxBatchOps pages in one frame.
	OpWriteBatch uint8 = 8
)

// Status codes of the wire protocol.
const (
	StatusOK       uint8 = 0
	StatusNoSpace  uint8 = 1
	StatusBadSlab  uint8 = 2
	StatusBadOp    uint8 = 3
	StatusBadBound uint8 = 4
	// StatusBadFrame reports a malformed batch payload (bad count or
	// truncated entries). Batch responses carry per-entry statuses; this
	// status is for frames that cannot be parsed at all.
	StatusBadFrame uint8 = 5
)

// MaxBatchOps caps the page operations one batched frame may carry, which
// in turn bounds decoder allocation for hostile input.
const MaxBatchOps = 256

const protoMagic uint8 = 0x4C // 'L'

// Request is one protocol request. Payload is used by OpWrite (exactly
// PageSize bytes) and by the batch ops, whose payloads pack per-page
// entries (see batch.go for the framing).
type Request struct {
	Op      uint8
	Slab    SlabID
	PageOff uint32 // page index within the slab
	Payload []byte
}

// Response is one protocol response. Payload carries page data for OpRead
// and two little-endian uint32s (used, capacity) for OpStats.
type Response struct {
	Status  uint8
	Payload []byte
}

// reqHeaderSize is magic+op+slab+pageoff+payloadlen.
const reqHeaderSize = 1 + 1 + 8 + 4 + 4

// respHeaderSize is magic+status+payloadlen.
const respHeaderSize = 1 + 1 + 4

// batchRefSize is one (slab, pageoff) reference inside a batch payload.
const batchRefSize = 8 + 4

// maxWirePayload bounds any frame payload: the largest legal frame is a
// full *compressed* write batch of incompressible pages — count word plus
// MaxBatchOps × (ref, u16 clen, stored-fallback page of PageSize+1 bytes).
// That exceeds the raw write batch by 3 bytes per entry. Decoders reject
// anything larger before allocating.
const maxWirePayload = 4 + MaxBatchOps*(batchRefSize+2+PageSize+1)

// EncodeRequest writes r to w in wire format.
func EncodeRequest(w io.Writer, r *Request) error {
	var hdr [reqHeaderSize]byte
	hdr[0] = protoMagic
	hdr[1] = r.Op
	binary.LittleEndian.PutUint64(hdr[2:10], uint64(r.Slab))
	binary.LittleEndian.PutUint32(hdr[10:14], r.PageOff)
	binary.LittleEndian.PutUint32(hdr[14:18], uint32(len(r.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("remote: write request header: %w", err)
	}
	if len(r.Payload) > 0 {
		if _, err := w.Write(r.Payload); err != nil {
			return fmt.Errorf("remote: write request payload: %w", err)
		}
	}
	return nil
}

// DecodeRequest reads one request from r. The payload buffer is freshly
// allocated per call; agents reuse requests infrequently enough that this
// simplicity wins.
func DecodeRequest(r io.Reader) (*Request, error) {
	var hdr [reqHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF propagates cleanly for connection close
	}
	if hdr[0] != protoMagic {
		return nil, fmt.Errorf("remote: bad magic 0x%02x", hdr[0])
	}
	req := &Request{
		Op:      hdr[1],
		Slab:    SlabID(binary.LittleEndian.Uint64(hdr[2:10])),
		PageOff: binary.LittleEndian.Uint32(hdr[10:14]),
	}
	n := binary.LittleEndian.Uint32(hdr[14:18])
	if n > maxWirePayload {
		return nil, fmt.Errorf("remote: oversized payload %d", n)
	}
	if n > PageSize && req.Op != OpReadBatch && req.Op != OpWriteBatch {
		return nil, fmt.Errorf("remote: oversized payload %d for op %d", n, req.Op)
	}
	if n > 0 {
		req.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, req.Payload); err != nil {
			return nil, fmt.Errorf("remote: read payload: %w", err)
		}
	}
	return req, nil
}

// EncodeResponse writes resp to w in wire format.
func EncodeResponse(w io.Writer, resp *Response) error {
	var hdr [respHeaderSize]byte
	hdr[0] = protoMagic
	hdr[1] = resp.Status
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(resp.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("remote: write response header: %w", err)
	}
	if len(resp.Payload) > 0 {
		if _, err := w.Write(resp.Payload); err != nil {
			return fmt.Errorf("remote: write response payload: %w", err)
		}
	}
	return nil
}

// DecodeResponse reads one response from r.
func DecodeResponse(r io.Reader) (*Response, error) {
	var hdr [respHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != protoMagic {
		return nil, fmt.Errorf("remote: bad magic 0x%02x", hdr[0])
	}
	resp := &Response{Status: hdr[1]}
	n := binary.LittleEndian.Uint32(hdr[2:6])
	if n > maxWirePayload {
		return nil, fmt.Errorf("remote: oversized payload %d", n)
	}
	if n > 0 {
		resp.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, resp.Payload); err != nil {
			return nil, fmt.Errorf("remote: read payload: %w", err)
		}
	}
	return resp, nil
}

// statusError converts a non-OK status into an error.
func statusError(op uint8, status uint8) error {
	if status == StatusOK {
		return nil
	}
	var what string
	switch status {
	case StatusNoSpace:
		what = "no space"
	case StatusBadSlab:
		what = "unknown slab"
	case StatusBadOp:
		what = "bad op"
	case StatusBadBound:
		what = "offset out of bounds"
	case StatusBadFrame:
		what = "malformed batch frame"
	default:
		what = fmt.Sprintf("status %d", status)
	}
	return fmt.Errorf("remote: op %d failed: %s", op, what)
}
