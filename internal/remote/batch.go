package remote

import (
	"encoding/binary"
	"fmt"

	"leap/internal/ztier"
)

// This file defines the doorbell-style batched frames of the wire protocol:
// one OpReadBatch/OpWriteBatch request carries up to MaxBatchOps page
// operations and one response carries all their results, so a queue of
// pending pages costs one round trip (and one fabric doorbell) instead of
// one per page. The framing packs entries into Request/Response.Payload, so
// every transport — in-process, TCP, fault-injecting — carries batches
// unchanged.
//
// Read batch request payload:   u32 count, then count × (u64 slab, u32 off).
// Read batch response payload:  u32 count, then count × (u8 status,
//                               PageSize bytes present only when status==OK).
// Write batch request payload:  u32 count, then count × (u64 slab, u32 off,
//                               PageSize bytes).
// Write batch response payload: u32 count, then count × u8 status.
//
// Compressed frames: when the high bit of the count word
// (batchCompressFlag) is set, page images travel through the ztier block
// codec instead of raw. A compressed read *request* carries the same refs —
// the flag only asks the agent to compress its response. Entry layouts with
// the flag set:
//
// Read batch response payload:  u32 count|flag, then count × (u8 status,
//                               [u16 clen, clen bytes] only when status==OK).
// Write batch request payload:  u32 count|flag, then count × (u64 slab,
//                               u32 off, u16 clen, clen bytes).
//
// The codec's stored-block fallback bounds clen at
// ztier.MaxEncodedLen(PageSize), so a compressed frame is never more than
// 3 bytes per entry larger than its raw twin and always fits
// maxWirePayload. Decoders accept both layouts transparently, keyed off the
// flag, so mixed fleets interoperate: a host that never sets the flag never
// sees a compressed frame.

// batchCompressFlag marks a batch payload whose page images travel through
// the ztier codec. It rides the high bit of the leading count word:
// MaxBatchOps is far below 2^31, so on legacy frames the bit is always
// zero.
const batchCompressFlag uint32 = 1 << 31

// BatchRef names one page inside a batched frame.
type BatchRef struct {
	Slab    SlabID
	PageOff uint32
}

// BatchReadResult is one page's outcome inside a read-batch response. Page
// is nil unless Status is StatusOK; it aliases the response payload, so
// callers copy before reusing the response.
type BatchReadResult struct {
	Status uint8
	Page   []byte
}

// EncodeReadBatch packs refs into an OpReadBatch request.
func EncodeReadBatch(refs []BatchRef) (*Request, error) {
	if len(refs) == 0 || len(refs) > MaxBatchOps {
		return nil, fmt.Errorf("remote: read batch of %d ops (want 1..%d)", len(refs), MaxBatchOps)
	}
	payload := make([]byte, 4+len(refs)*batchRefSize)
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(refs)))
	off := 4
	for _, r := range refs {
		binary.LittleEndian.PutUint64(payload[off:], uint64(r.Slab))
		binary.LittleEndian.PutUint32(payload[off+8:], r.PageOff)
		off += batchRefSize
	}
	return &Request{Op: OpReadBatch, Payload: payload}, nil
}

// EncodeReadBatchCompressed packs refs into an OpReadBatch request whose
// compress flag asks the agent to return its page images compressed. The
// request itself carries only refs — nothing in it is compressed; the flag
// is a negotiation bit echoed on the response.
func EncodeReadBatchCompressed(refs []BatchRef) (*Request, error) {
	req, err := EncodeReadBatch(refs)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(req.Payload[0:4], uint32(len(refs))|batchCompressFlag)
	return req, nil
}

// ReadBatchCompressed reports whether an OpReadBatch request asks for a
// compressed response.
func ReadBatchCompressed(req *Request) bool {
	return req.Op == OpReadBatch && payloadCompressed(req.Payload)
}

// DecodeReadBatch unpacks an OpReadBatch request payload. The compress flag
// is legal here (it only governs the response shape); ReadBatchCompressed
// reports it.
func DecodeReadBatch(req *Request) ([]BatchRef, error) {
	if req.Op != OpReadBatch {
		return nil, fmt.Errorf("remote: DecodeReadBatch on op %d", req.Op)
	}
	n, _, err := batchCount(req.Payload)
	if err != nil {
		return nil, err
	}
	if len(req.Payload) != 4+n*batchRefSize {
		return nil, fmt.Errorf("remote: read batch payload %dB for %d ops", len(req.Payload), n)
	}
	refs := make([]BatchRef, n)
	off := 4
	for i := range refs {
		refs[i].Slab = SlabID(binary.LittleEndian.Uint64(req.Payload[off:]))
		refs[i].PageOff = binary.LittleEndian.Uint32(req.Payload[off+8:])
		off += batchRefSize
	}
	return refs, nil
}

// EncodeReadBatchResponse packs per-page results into an OpReadBatch
// response. Each OK result must carry exactly PageSize bytes.
func EncodeReadBatchResponse(results []BatchReadResult) (*Response, error) {
	if len(results) == 0 || len(results) > MaxBatchOps {
		return nil, fmt.Errorf("remote: read batch response of %d ops", len(results))
	}
	size := 4
	for _, r := range results {
		size++
		if r.Status == StatusOK {
			if len(r.Page) != PageSize {
				return nil, fmt.Errorf("remote: OK read result with %dB page", len(r.Page))
			}
			size += PageSize
		}
	}
	payload := make([]byte, size)
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(results)))
	off := 4
	for _, r := range results {
		payload[off] = r.Status
		off++
		if r.Status == StatusOK {
			copy(payload[off:], r.Page)
			off += PageSize
		}
	}
	return &Response{Status: StatusOK, Payload: payload}, nil
}

// EncodeReadBatchResponseCompressed packs per-page results into an
// OpReadBatch response with every OK page run through the ztier codec:
// (u8 status, u16 clen, clen bytes) per entry. The codec's stored fallback
// bounds clen, so the frame always fits maxWirePayload.
func EncodeReadBatchResponseCompressed(results []BatchReadResult, comp *ztier.Compressor) (*Response, error) {
	if len(results) == 0 || len(results) > MaxBatchOps {
		return nil, fmt.Errorf("remote: read batch response of %d ops", len(results))
	}
	payload := make([]byte, 4, 4+len(results)*(1+2+ztier.MaxEncodedLen(PageSize)))
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(results))|batchCompressFlag)
	for _, r := range results {
		payload = append(payload, r.Status)
		if r.Status != StatusOK {
			continue
		}
		if len(r.Page) != PageSize {
			return nil, fmt.Errorf("remote: OK read result with %dB page", len(r.Page))
		}
		lenPos := len(payload)
		payload = append(payload, 0, 0) // clen backfilled below
		payload = comp.Compress(payload, r.Page)
		binary.LittleEndian.PutUint16(payload[lenPos:], uint16(len(payload)-lenPos-2))
	}
	return &Response{Status: StatusOK, Payload: payload}, nil
}

// DecodeReadBatchResponse unpacks an OpReadBatch response, raw or
// compressed (keyed off the payload's compress flag). Raw pages alias the
// response payload; compressed pages are freshly allocated.
func DecodeReadBatchResponse(resp *Response) ([]BatchReadResult, error) {
	if resp.Status != StatusOK {
		return nil, statusError(OpReadBatch, resp.Status)
	}
	n, compressed, err := batchCount(resp.Payload)
	if err != nil {
		return nil, err
	}
	results := make([]BatchReadResult, n)
	off := 4
	for i := range results {
		if off >= len(resp.Payload) {
			return nil, fmt.Errorf("remote: read batch response truncated at op %d", i)
		}
		results[i].Status = resp.Payload[off]
		off++
		if results[i].Status != StatusOK {
			continue
		}
		if compressed {
			page, used, err := decodeCompressedPage(resp.Payload[off:])
			if err != nil {
				return nil, fmt.Errorf("remote: read batch response op %d: %w", i, err)
			}
			results[i].Page = page
			off += used
			continue
		}
		if off+PageSize > len(resp.Payload) {
			return nil, fmt.Errorf("remote: read batch response truncated at op %d page", i)
		}
		results[i].Page = resp.Payload[off : off+PageSize]
		off += PageSize
	}
	if off != len(resp.Payload) {
		return nil, fmt.Errorf("remote: read batch response has %d trailing bytes", len(resp.Payload)-off)
	}
	return results, nil
}

// EncodeWriteBatch packs refs and their page images into an OpWriteBatch
// request. pages[i] must be exactly PageSize bytes.
func EncodeWriteBatch(refs []BatchRef, pages [][]byte) (*Request, error) {
	if len(refs) == 0 || len(refs) > MaxBatchOps {
		return nil, fmt.Errorf("remote: write batch of %d ops (want 1..%d)", len(refs), MaxBatchOps)
	}
	if len(pages) != len(refs) {
		return nil, fmt.Errorf("remote: write batch with %d refs but %d pages", len(refs), len(pages))
	}
	payload := make([]byte, 4+len(refs)*(batchRefSize+PageSize))
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(refs)))
	off := 4
	for i, r := range refs {
		if len(pages[i]) != PageSize {
			return nil, fmt.Errorf("remote: write batch page %d has %dB", i, len(pages[i]))
		}
		binary.LittleEndian.PutUint64(payload[off:], uint64(r.Slab))
		binary.LittleEndian.PutUint32(payload[off+8:], r.PageOff)
		copy(payload[off+batchRefSize:], pages[i])
		off += batchRefSize + PageSize
	}
	return &Request{Op: OpWriteBatch, Payload: payload}, nil
}

// EncodeWriteBatchCompressed packs refs and their page images into an
// OpWriteBatch request with every page run through the ztier codec:
// (u64 slab, u32 off, u16 clen, clen bytes) per entry.
func EncodeWriteBatchCompressed(refs []BatchRef, pages [][]byte, comp *ztier.Compressor) (*Request, error) {
	if len(refs) == 0 || len(refs) > MaxBatchOps {
		return nil, fmt.Errorf("remote: write batch of %d ops (want 1..%d)", len(refs), MaxBatchOps)
	}
	if len(pages) != len(refs) {
		return nil, fmt.Errorf("remote: write batch with %d refs but %d pages", len(refs), len(pages))
	}
	payload := make([]byte, 4, 4+len(refs)*(batchRefSize+2+ztier.MaxEncodedLen(PageSize)))
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(refs))|batchCompressFlag)
	for i, r := range refs {
		if len(pages[i]) != PageSize {
			return nil, fmt.Errorf("remote: write batch page %d has %dB", i, len(pages[i]))
		}
		var ref [batchRefSize]byte
		binary.LittleEndian.PutUint64(ref[0:8], uint64(r.Slab))
		binary.LittleEndian.PutUint32(ref[8:12], r.PageOff)
		payload = append(payload, ref[:]...)
		lenPos := len(payload)
		payload = append(payload, 0, 0) // clen backfilled below
		payload = comp.Compress(payload, pages[i])
		binary.LittleEndian.PutUint16(payload[lenPos:], uint16(len(payload)-lenPos-2))
	}
	return &Request{Op: OpWriteBatch, Payload: payload}, nil
}

// DecodeWriteBatch unpacks an OpWriteBatch request payload, raw or
// compressed (keyed off the payload's compress flag). Raw pages alias the
// request payload; compressed pages are freshly allocated.
func DecodeWriteBatch(req *Request) ([]BatchRef, [][]byte, error) {
	if req.Op != OpWriteBatch {
		return nil, nil, fmt.Errorf("remote: DecodeWriteBatch on op %d", req.Op)
	}
	n, compressed, err := batchCount(req.Payload)
	if err != nil {
		return nil, nil, err
	}
	if !compressed && len(req.Payload) != 4+n*(batchRefSize+PageSize) {
		return nil, nil, fmt.Errorf("remote: write batch payload %dB for %d ops", len(req.Payload), n)
	}
	refs := make([]BatchRef, n)
	pages := make([][]byte, n)
	off := 4
	for i := range refs {
		if off+batchRefSize > len(req.Payload) {
			return nil, nil, fmt.Errorf("remote: write batch truncated at op %d ref", i)
		}
		refs[i].Slab = SlabID(binary.LittleEndian.Uint64(req.Payload[off:]))
		refs[i].PageOff = binary.LittleEndian.Uint32(req.Payload[off+8:])
		off += batchRefSize
		if compressed {
			page, used, err := decodeCompressedPage(req.Payload[off:])
			if err != nil {
				return nil, nil, fmt.Errorf("remote: write batch op %d: %w", i, err)
			}
			pages[i] = page
			off += used
			continue
		}
		pages[i] = req.Payload[off : off+PageSize]
		off += PageSize
	}
	if off != len(req.Payload) {
		return nil, nil, fmt.Errorf("remote: write batch has %d trailing bytes", len(req.Payload)-off)
	}
	return refs, pages, nil
}

// EncodeWriteBatchResponse packs per-page statuses into an OpWriteBatch
// response.
func EncodeWriteBatchResponse(statuses []uint8) (*Response, error) {
	if len(statuses) == 0 || len(statuses) > MaxBatchOps {
		return nil, fmt.Errorf("remote: write batch response of %d ops", len(statuses))
	}
	payload := make([]byte, 4+len(statuses))
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(statuses)))
	copy(payload[4:], statuses)
	return &Response{Status: StatusOK, Payload: payload}, nil
}

// DecodeWriteBatchResponse unpacks an OpWriteBatch response.
func DecodeWriteBatchResponse(resp *Response) ([]uint8, error) {
	if resp.Status != StatusOK {
		return nil, statusError(OpWriteBatch, resp.Status)
	}
	n, compressed, err := batchCount(resp.Payload)
	if err != nil {
		return nil, err
	}
	if compressed {
		return nil, fmt.Errorf("remote: write batch response with compress flag")
	}
	if len(resp.Payload) != 4+n {
		return nil, fmt.Errorf("remote: write batch response payload %dB for %d ops", len(resp.Payload), n)
	}
	return append([]uint8(nil), resp.Payload[4:]...), nil
}

// batchCount validates and reads the leading op count of a batch payload,
// separating the compress flag from the count.
func batchCount(payload []byte) (int, bool, error) {
	if len(payload) < 4 {
		return 0, false, fmt.Errorf("remote: batch payload too short (%dB)", len(payload))
	}
	word := binary.LittleEndian.Uint32(payload[0:4])
	compressed := word&batchCompressFlag != 0
	n := word &^ batchCompressFlag
	if n == 0 || n > MaxBatchOps {
		return 0, false, fmt.Errorf("remote: batch of %d ops (want 1..%d)", n, MaxBatchOps)
	}
	return int(n), compressed, nil
}

// payloadCompressed reports whether a batch payload carries the compress
// flag.
func payloadCompressed(payload []byte) bool {
	return len(payload) >= 4 && binary.LittleEndian.Uint32(payload[0:4])&batchCompressFlag != 0
}

// decodeCompressedPage reads one (u16 clen, clen bytes) compressed page
// entry off the front of b, returning the freshly-allocated page image and
// the bytes consumed.
func decodeCompressedPage(b []byte) ([]byte, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("truncated compressed page length")
	}
	clen := int(binary.LittleEndian.Uint16(b))
	if clen == 0 || clen > ztier.MaxEncodedLen(PageSize) {
		return nil, 0, fmt.Errorf("compressed page of %dB (want 1..%d)", clen, ztier.MaxEncodedLen(PageSize))
	}
	if 2+clen > len(b) {
		return nil, 0, fmt.Errorf("truncated compressed page body (%dB of %dB)", len(b)-2, clen)
	}
	page, err := ztier.Decompress(make([]byte, 0, PageSize), b[2:2+clen], PageSize)
	if err != nil {
		return nil, 0, fmt.Errorf("corrupt compressed page: %w", err)
	}
	if len(page) != PageSize {
		return nil, 0, fmt.Errorf("compressed page decoded to %dB, want %d", len(page), PageSize)
	}
	return page, 2 + clen, nil
}

// BatchPages reports the page-op count a request frame represents: the
// batch entry count for batch frames, 1 for everything else. Observers use
// it to charge fabric occupancy per page while paying round-trip latency
// per doorbell.
func BatchPages(req *Request) int {
	if req.Op != OpReadBatch && req.Op != OpWriteBatch {
		return 1
	}
	n, _, err := batchCount(req.Payload)
	if err != nil {
		return 1
	}
	return n
}
