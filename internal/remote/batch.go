package remote

import (
	"encoding/binary"
	"fmt"
)

// This file defines the doorbell-style batched frames of the wire protocol:
// one OpReadBatch/OpWriteBatch request carries up to MaxBatchOps page
// operations and one response carries all their results, so a queue of
// pending pages costs one round trip (and one fabric doorbell) instead of
// one per page. The framing packs entries into Request/Response.Payload, so
// every transport — in-process, TCP, fault-injecting — carries batches
// unchanged.
//
// Read batch request payload:   u32 count, then count × (u64 slab, u32 off).
// Read batch response payload:  u32 count, then count × (u8 status,
//                               PageSize bytes present only when status==OK).
// Write batch request payload:  u32 count, then count × (u64 slab, u32 off,
//                               PageSize bytes).
// Write batch response payload: u32 count, then count × u8 status.

// BatchRef names one page inside a batched frame.
type BatchRef struct {
	Slab    SlabID
	PageOff uint32
}

// BatchReadResult is one page's outcome inside a read-batch response. Page
// is nil unless Status is StatusOK; it aliases the response payload, so
// callers copy before reusing the response.
type BatchReadResult struct {
	Status uint8
	Page   []byte
}

// EncodeReadBatch packs refs into an OpReadBatch request.
func EncodeReadBatch(refs []BatchRef) (*Request, error) {
	if len(refs) == 0 || len(refs) > MaxBatchOps {
		return nil, fmt.Errorf("remote: read batch of %d ops (want 1..%d)", len(refs), MaxBatchOps)
	}
	payload := make([]byte, 4+len(refs)*batchRefSize)
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(refs)))
	off := 4
	for _, r := range refs {
		binary.LittleEndian.PutUint64(payload[off:], uint64(r.Slab))
		binary.LittleEndian.PutUint32(payload[off+8:], r.PageOff)
		off += batchRefSize
	}
	return &Request{Op: OpReadBatch, Payload: payload}, nil
}

// DecodeReadBatch unpacks an OpReadBatch request payload.
func DecodeReadBatch(req *Request) ([]BatchRef, error) {
	if req.Op != OpReadBatch {
		return nil, fmt.Errorf("remote: DecodeReadBatch on op %d", req.Op)
	}
	n, err := batchCount(req.Payload)
	if err != nil {
		return nil, err
	}
	if len(req.Payload) != 4+n*batchRefSize {
		return nil, fmt.Errorf("remote: read batch payload %dB for %d ops", len(req.Payload), n)
	}
	refs := make([]BatchRef, n)
	off := 4
	for i := range refs {
		refs[i].Slab = SlabID(binary.LittleEndian.Uint64(req.Payload[off:]))
		refs[i].PageOff = binary.LittleEndian.Uint32(req.Payload[off+8:])
		off += batchRefSize
	}
	return refs, nil
}

// EncodeReadBatchResponse packs per-page results into an OpReadBatch
// response. Each OK result must carry exactly PageSize bytes.
func EncodeReadBatchResponse(results []BatchReadResult) (*Response, error) {
	if len(results) == 0 || len(results) > MaxBatchOps {
		return nil, fmt.Errorf("remote: read batch response of %d ops", len(results))
	}
	size := 4
	for _, r := range results {
		size++
		if r.Status == StatusOK {
			if len(r.Page) != PageSize {
				return nil, fmt.Errorf("remote: OK read result with %dB page", len(r.Page))
			}
			size += PageSize
		}
	}
	payload := make([]byte, size)
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(results)))
	off := 4
	for _, r := range results {
		payload[off] = r.Status
		off++
		if r.Status == StatusOK {
			copy(payload[off:], r.Page)
			off += PageSize
		}
	}
	return &Response{Status: StatusOK, Payload: payload}, nil
}

// DecodeReadBatchResponse unpacks an OpReadBatch response. Pages alias the
// response payload.
func DecodeReadBatchResponse(resp *Response) ([]BatchReadResult, error) {
	if resp.Status != StatusOK {
		return nil, statusError(OpReadBatch, resp.Status)
	}
	n, err := batchCount(resp.Payload)
	if err != nil {
		return nil, err
	}
	results := make([]BatchReadResult, n)
	off := 4
	for i := range results {
		if off >= len(resp.Payload) {
			return nil, fmt.Errorf("remote: read batch response truncated at op %d", i)
		}
		results[i].Status = resp.Payload[off]
		off++
		if results[i].Status == StatusOK {
			if off+PageSize > len(resp.Payload) {
				return nil, fmt.Errorf("remote: read batch response truncated at op %d page", i)
			}
			results[i].Page = resp.Payload[off : off+PageSize]
			off += PageSize
		}
	}
	if off != len(resp.Payload) {
		return nil, fmt.Errorf("remote: read batch response has %d trailing bytes", len(resp.Payload)-off)
	}
	return results, nil
}

// EncodeWriteBatch packs refs and their page images into an OpWriteBatch
// request. pages[i] must be exactly PageSize bytes.
func EncodeWriteBatch(refs []BatchRef, pages [][]byte) (*Request, error) {
	if len(refs) == 0 || len(refs) > MaxBatchOps {
		return nil, fmt.Errorf("remote: write batch of %d ops (want 1..%d)", len(refs), MaxBatchOps)
	}
	if len(pages) != len(refs) {
		return nil, fmt.Errorf("remote: write batch with %d refs but %d pages", len(refs), len(pages))
	}
	payload := make([]byte, 4+len(refs)*(batchRefSize+PageSize))
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(refs)))
	off := 4
	for i, r := range refs {
		if len(pages[i]) != PageSize {
			return nil, fmt.Errorf("remote: write batch page %d has %dB", i, len(pages[i]))
		}
		binary.LittleEndian.PutUint64(payload[off:], uint64(r.Slab))
		binary.LittleEndian.PutUint32(payload[off+8:], r.PageOff)
		copy(payload[off+batchRefSize:], pages[i])
		off += batchRefSize + PageSize
	}
	return &Request{Op: OpWriteBatch, Payload: payload}, nil
}

// DecodeWriteBatch unpacks an OpWriteBatch request payload. Pages alias the
// request payload.
func DecodeWriteBatch(req *Request) ([]BatchRef, [][]byte, error) {
	if req.Op != OpWriteBatch {
		return nil, nil, fmt.Errorf("remote: DecodeWriteBatch on op %d", req.Op)
	}
	n, err := batchCount(req.Payload)
	if err != nil {
		return nil, nil, err
	}
	if len(req.Payload) != 4+n*(batchRefSize+PageSize) {
		return nil, nil, fmt.Errorf("remote: write batch payload %dB for %d ops", len(req.Payload), n)
	}
	refs := make([]BatchRef, n)
	pages := make([][]byte, n)
	off := 4
	for i := range refs {
		refs[i].Slab = SlabID(binary.LittleEndian.Uint64(req.Payload[off:]))
		refs[i].PageOff = binary.LittleEndian.Uint32(req.Payload[off+8:])
		pages[i] = req.Payload[off+batchRefSize : off+batchRefSize+PageSize]
		off += batchRefSize + PageSize
	}
	return refs, pages, nil
}

// EncodeWriteBatchResponse packs per-page statuses into an OpWriteBatch
// response.
func EncodeWriteBatchResponse(statuses []uint8) (*Response, error) {
	if len(statuses) == 0 || len(statuses) > MaxBatchOps {
		return nil, fmt.Errorf("remote: write batch response of %d ops", len(statuses))
	}
	payload := make([]byte, 4+len(statuses))
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(statuses)))
	copy(payload[4:], statuses)
	return &Response{Status: StatusOK, Payload: payload}, nil
}

// DecodeWriteBatchResponse unpacks an OpWriteBatch response.
func DecodeWriteBatchResponse(resp *Response) ([]uint8, error) {
	if resp.Status != StatusOK {
		return nil, statusError(OpWriteBatch, resp.Status)
	}
	n, err := batchCount(resp.Payload)
	if err != nil {
		return nil, err
	}
	if len(resp.Payload) != 4+n {
		return nil, fmt.Errorf("remote: write batch response payload %dB for %d ops", len(resp.Payload), n)
	}
	return append([]uint8(nil), resp.Payload[4:]...), nil
}

// batchCount validates and reads the leading op count of a batch payload.
func batchCount(payload []byte) (int, error) {
	if len(payload) < 4 {
		return 0, fmt.Errorf("remote: batch payload too short (%dB)", len(payload))
	}
	n := binary.LittleEndian.Uint32(payload[0:4])
	if n == 0 || n > MaxBatchOps {
		return 0, fmt.Errorf("remote: batch of %d ops (want 1..%d)", n, MaxBatchOps)
	}
	return int(n), nil
}

// BatchPages reports the page-op count a request frame represents: the
// batch entry count for batch frames, 1 for everything else. Observers use
// it to charge fabric occupancy per page while paying round-trip latency
// per doorbell.
func BatchPages(req *Request) int {
	if req.Op != OpReadBatch && req.Op != OpWriteBatch {
		return 1
	}
	n, err := batchCount(req.Payload)
	if err != nil {
		return 1
	}
	return n
}
