package remote

import (
	"fmt"
	"slices"

	"leap/internal/core"
	"leap/internal/sim"
)

// The async engine: ReadPageAsync/WritePageAsync enqueue page operations
// onto per-agent request queues and return tickets; Flush (or Ticket.Wait)
// rings the doorbell, draining every queue with batched wire frames of up
// to HostConfig.QueueDepth operations. The engine coalesces duplicate
// in-flight reads (a second read of a queued page rides the same wire
// request), serves reads of not-yet-flushed writes from the dirty buffer
// (read-your-writes), and fails reads over across replicas exactly like the
// synchronous path. Draining is deterministic: agents are visited in index
// order, queues are FIFO, so a single-threaded caller replays
// bit-identically.
//
// Durability semantics: a write is acknowledged — visible to AckedReplicas,
// counted for replication invariants — only once Flush has pushed it and at
// least one replica accepted. An unflushed write lost to a crash was never
// acked, so the chaos harness's "no acked-write loss" invariant is
// unaffected by in-flight batches.

// Ticket is the completion handle of one asynchronous page operation. A
// ticket completes during a Flush (or Wait); Err is meaningful only once
// Done reports true.
type Ticket struct {
	host *Host
	done bool
	err  error
}

// Done reports whether the operation has completed.
func (t *Ticket) Done() bool {
	t.host.mu.Lock()
	defer t.host.mu.Unlock()
	return t.done
}

// Err returns the operation's outcome: nil for success, the failure
// otherwise. It is meaningful only after the ticket completed.
func (t *Ticket) Err() error {
	t.host.mu.Lock()
	defer t.host.mu.Unlock()
	return t.err
}

// Wait flushes the engine until the ticket completes and returns its
// outcome.
func (t *Ticket) Wait() error {
	t.host.mu.Lock()
	defer t.host.mu.Unlock()
	if !t.done {
		t.host.flushLocked()
	}
	return t.err
}

// pendingRead is one queued page read, possibly serving several coalesced
// tickets.
type pendingRead struct {
	page core.PageID
	slab SlabID
	off  uint32

	bufs    [][]byte
	tickets []*Ticket
	tried   []int // agents already attempted (failover history)

	// Retry/hedge state (see RetryPolicy). attempts counts transport
	// attempts consumed; deadline (0 = none) is the absolute virtual-time
	// budget; inflight counts queue entries currently referencing this read
	// (2 while a hedge races); primary/twin are the hedge pair (twin is
	// meaningful only when hedged), for hedge-win and failover attribution;
	// done marks completion — entries still queued for a completed read are
	// discarded unissued at drain time.
	attempts int
	deadline sim.Time
	inflight int
	primary  int
	twin     int
	hedged   bool
	done     bool
}

// pendingWrite is one queued page write, fanned out to every replica of its
// slab.
type pendingWrite struct {
	page core.PageID
	slab SlabID
	off  uint32

	data     []byte // the host's own copy of the page image
	replicas []int  // replica set at enqueue time (placement + hot holders)
	resolved int    // replica sub-operations completed (ok or failed)
	acked    []int
	lastErr  error
	lastIdx  int // agent behind lastErr, for the failure's op context
	ticket   *Ticket
	// superseded holds tickets of earlier writes to the same page that this
	// write replaced before the flush; they complete with its outcome.
	superseded []*Ticket
}

// queueEntry is one slot in a per-agent queue: exactly one of read/write is
// set.
type queueEntry struct {
	read  *pendingRead
	write *pendingWrite
}

// ReadPageAsync enqueues a read of page into buf (len PageSize) and returns
// its ticket. The data lands in buf when the ticket completes. Reads of
// pages with a queued, unflushed write complete immediately from the dirty
// buffer; duplicate reads of an already-queued page coalesce onto one wire
// request.
func (h *Host) ReadPageAsync(page core.PageID, buf []byte) *Ticket {
	t := &Ticket{host: h}
	if len(buf) != PageSize {
		return h.failTicket(t, opError(OpRead, -1, page, 0,
			fmt.Errorf("buffer is %d bytes, want %d", len(buf), PageSize)))
	}
	slab, off := h.locate(page)

	h.mu.Lock()
	defer h.mu.Unlock()
	h.stats.AsyncReads++
	if pw, ok := h.dirty[page]; ok {
		// Read-your-writes: the freshest bytes are the queued write's.
		copy(buf, pw.data)
		h.stats.DirtyReads++
		h.stats.Reads++
		t.done = true
		return t
	}
	if pr, ok := h.readsPending[page]; ok {
		pr.bufs = append(pr.bufs, buf)
		pr.tickets = append(pr.tickets, t)
		h.stats.CoalescedReads++
		h.stats.Reads++
		return t
	}
	replicas, ok := h.placements[slab]
	if !ok {
		t.done = true
		t.err = opError(OpRead, -1, page, 0, ErrNeverWritten)
		return t
	}
	pr := &pendingRead{page: page, slab: slab, off: off, bufs: [][]byte{buf}, tickets: []*Ticket{t}}
	target := h.readOrder(page, replicas, nil)
	if target < 0 {
		t.done = true
		t.err = opError(OpRead, -1, page, 0, ErrNoReplica)
		return t
	}
	pol := h.cfg.Retry
	if pol.Deadline > 0 && h.now != nil {
		pr.deadline = h.now().Add(pol.Deadline)
	}
	pr.primary = target
	h.readsPending[page] = pr
	h.queues[target] = append(h.queues[target], queueEntry{read: pr})
	pr.inflight = 1
	if pol.HedgeReads && h.slow[target] {
		// The best candidate is hinted slow: duplicate the read onto the
		// next holder so the slow agent costs one extra frame, not a stall.
		// Only a holder that acknowledged the latest write may serve as the
		// twin — an unacked replica can hold stale bytes, and a winning
		// hedge must be as fresh as the read it replaces. (The target being
		// slow means every acked holder is slow, so the twin is too; racing
		// two slow agents still beats stalling on one.) First completion
		// wins; the loser is discarded unissued.
		if second := h.readOrder(page, replicas, []int{target}); second >= 0 && slices.Contains(h.acked[page], second) {
			h.queues[second] = append(h.queues[second], queueEntry{read: pr})
			pr.inflight++
			pr.hedged = true
			pr.twin = second
			h.stats.HedgedReads++
		}
	}
	h.stats.Reads++
	return t
}

// WritePageAsync enqueues a write of data (len PageSize) to page and
// returns its ticket. The engine keeps its own copy of data, so the caller
// may reuse the buffer immediately. A second write to the same page before
// the flush supersedes the first (last writer wins — both tickets complete
// with the final outcome). The write is durable — acknowledged, visible to
// reads from other hosts' perspectives — only once flushed.
func (h *Host) WritePageAsync(page core.PageID, data []byte) *Ticket {
	t := &Ticket{host: h}
	if len(data) != PageSize {
		return h.failTicket(t, fmt.Errorf("remote: WritePageAsync with %d bytes, want %d", len(data), PageSize))
	}
	slab, off := h.locate(page)

	h.mu.Lock()
	defer h.mu.Unlock()
	h.stats.AsyncWrites++
	if pw, ok := h.dirty[page]; ok {
		// Supersede in place: the queued sub-operations will carry the new
		// bytes (last writer wins); the earlier write's ticket completes
		// with the same flush outcome.
		copy(pw.data, data)
		pw.superseded = append(pw.superseded, pw.ticket)
		pw.ticket = t
		return t
	}
	replicas, err := h.placement(slab)
	if err != nil {
		// h.mu is already held here; completing inline avoids failTicket's
		// re-lock.
		t.done = true
		t.err = opError(OpWrite, -1, page, 0, err)
		return t
	}
	pw := &pendingWrite{
		page:     page,
		slab:     slab,
		off:      off,
		data:     h.pageBuf(),
		replicas: slices.Clone(h.writeTargets(page, replicas)),
		lastIdx:  -1,
		ticket:   t,
	}
	copy(pw.data, data)
	h.dirty[page] = pw
	for _, idx := range pw.replicas {
		h.queues[idx] = append(h.queues[idx], queueEntry{write: pw})
	}
	h.stats.Writes++
	return t
}

// Flush drains every queue: per-agent batches of up to QueueDepth
// operations go out as doorbell frames (single-op frames when only one
// operation is queued), read failures retry on the next replica, and every
// ticket issued before the call completes. It returns the first write
// ticket error observed, if any (read outcomes are per-ticket).
func (h *Host) Flush() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.flushLocked()
}

// PendingWrites reports the queued, unflushed write count — the dirty
// backlog an eviction pipeline bounds before ringing the doorbell.
func (h *Host) PendingWrites() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.dirty)
}

// failTicket completes t immediately with err.
func (h *Host) failTicket(t *Ticket, err error) *Ticket {
	h.mu.Lock()
	defer h.mu.Unlock()
	t.done = true
	t.err = err
	return t
}

// pageBuf takes a PageSize buffer off the free list.
func (h *Host) pageBuf() []byte {
	if n := len(h.bufFree); n > 0 {
		buf := h.bufFree[n-1]
		h.bufFree = h.bufFree[:n-1]
		return buf
	}
	return make([]byte, PageSize)
}

// readOrder returns the preferred holder for a page read — the first
// readCandidates entry (acked first, hot extras included, slow agents
// last) not already tried — or -1 when every candidate has been tried.
// Callers hold h.mu.
func (h *Host) readOrder(page core.PageID, replicas []int, tried []int) int {
	for _, idx := range h.readCandidates(page, replicas) {
		if !slices.Contains(tried, idx) {
			return idx
		}
	}
	return -1
}

// flushLocked drains the queues to completion. Callers hold h.mu. The lock
// is held across transport calls — the engine's determinism (and the chaos
// harness's virtual-time accounting) depends on single-file draining.
func (h *Host) flushLocked() error {
	var firstErr error
	for {
		active := false
		for idx := range h.queues {
			if len(h.queues[idx]) == 0 {
				continue
			}
			active = true
			if err := h.drainAgent(idx); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if !active {
			break
		}
	}
	return firstErr
}

// drainAgent issues one batch (a contiguous run of same-kind entries, up to
// QueueDepth) from agent idx's queue. Reads that already completed
// elsewhere — the losing half of a hedge — are discarded unissued: they
// consume no wire slot and charge no latency. Callers hold h.mu.
func (h *Host) drainAgent(idx int) error {
	q := h.queues[idx]
	var batch []queueEntry
	isRead := false
	consumed := 0
	for consumed < len(q) {
		e := q[consumed]
		if e.read != nil && e.read.done {
			e.read.inflight--
			h.stats.HedgeDiscards++
			consumed++
			continue
		}
		if len(batch) == 0 {
			isRead = e.read != nil
		} else if (e.read != nil) != isRead || len(batch) == h.cfg.QueueDepth {
			break
		}
		if e.read != nil {
			e.read.inflight--
		}
		batch = append(batch, e)
		consumed++
	}
	h.queues[idx] = q[consumed:]
	if len(h.queues[idx]) == 0 {
		h.queues[idx] = nil // release the backing array between doorbells
	}
	if len(batch) == 0 {
		return nil
	}
	if isRead {
		return h.issueReads(idx, batch)
	}
	return h.issueWrites(idx, batch)
}

// issueReads sends a read batch to agent idx and lands the results.
// Callers hold h.mu.
func (h *Host) issueReads(idx int, batch []queueEntry) error {
	tr := h.transports[idx]
	var resp *Response
	var err error
	if len(batch) == 1 {
		pr := batch[0].read
		pr.attempts++
		resp, err = tr.Call(&Request{Op: OpRead, Slab: pr.slab, PageOff: pr.off})
		if err == nil && resp.Status == StatusOK {
			h.completeRead(batch[0].read, idx, resp.Payload)
			return nil
		}
		st := uint8(StatusOK)
		if err == nil {
			st = resp.Status
		}
		h.retryRead(pr, idx, err, st)
		return nil
	}

	refs := make([]BatchRef, len(batch))
	for i, e := range batch {
		e.read.attempts++
		refs[i] = BatchRef{Slab: e.read.slab, PageOff: e.read.off}
	}
	var req *Request
	var encErr error
	if h.cfg.Compress {
		req, encErr = EncodeReadBatchCompressed(refs)
	} else {
		req, encErr = EncodeReadBatch(refs)
	}
	if encErr != nil {
		// Wrap as a read OpError: Flush's return value is attributed by op
		// kind (a read failure must never be mistaken for lost acked data).
		return opError(OpRead, idx, batch[0].read.page, 0, encErr)
	}
	h.stats.BatchCalls++
	h.stats.BatchedPages += int64(len(batch))
	resp, err = tr.Call(req)
	if err != nil {
		for _, e := range batch {
			h.retryRead(e.read, idx, err, StatusOK)
		}
		return nil
	}
	results, decErr := DecodeReadBatchResponse(resp)
	if decErr != nil || len(results) != len(batch) {
		if decErr == nil {
			decErr = fmt.Errorf("remote: read batch response carried %d results for %d ops",
				len(results), len(batch))
		}
		for _, e := range batch {
			h.retryRead(e.read, idx, decErr, resp.Status)
		}
		return nil
	}
	if payloadCompressed(resp.Payload) {
		raw := 4
		for _, r := range results {
			raw++
			if r.Status == StatusOK {
				raw += PageSize
			}
		}
		h.stats.CompressedFrames++
		h.stats.WireRawBytes += int64(raw)
		h.stats.WireCompressedBytes += int64(len(resp.Payload))
	}
	for i, e := range batch {
		if results[i].Status == StatusOK {
			h.completeRead(e.read, idx, results[i].Page)
		} else {
			h.retryRead(e.read, idx, nil, results[i].Status)
		}
	}
	return nil
}

// completeRead copies data into every coalesced buffer and completes the
// tickets. Callers hold h.mu.
func (h *Host) completeRead(pr *pendingRead, idx int, data []byte) {
	for _, buf := range pr.bufs {
		copy(buf, data)
	}
	if pr.hedged && idx != pr.primary {
		h.stats.HedgeWins++
	}
	// Failed attempts inside the hedge pair are the hedge doing its job, not
	// failovers; Failovers counts only reads that walked past the pair, so
	// the hedge and failover stats stay distinguishable.
	for _, a := range pr.tried {
		if !pr.hedged || (a != pr.primary && a != pr.twin) {
			h.stats.Failovers++
			break
		}
	}
	pr.done = true
	delete(h.readsPending, pr.page)
	for _, t := range pr.tickets {
		t.done = true
	}
}

// retryRead handles a failed read attempt: under the retry policy it either
// requeues on the next untried holder (charging backoff pacing through the
// observer), defers to a still-racing hedge twin, or fails the tickets with
// a uniform OpError carrying the last agent and the cause. Callers hold
// h.mu.
func (h *Host) retryRead(pr *pendingRead, idx int, err error, status uint8) {
	pr.tried = append(pr.tried, idx)
	lastErr := err
	if lastErr == nil && status != StatusOK {
		lastErr = statusError(OpRead, status)
	}
	if pr.inflight > 0 {
		// A hedge twin is still queued on another agent: let it race before
		// deciding this read's fate. The failed attempt is already charged to
		// pr.attempts/pr.tried, so the deadline and MaxAttempts budgets are
		// enforced the moment the twin resolves without completing the read.
		return
	}
	fail := func(cause error) {
		pr.done = true
		delete(h.readsPending, pr.page)
		ferr := opError(OpRead, idx, pr.page, pr.attempts, cause)
		for _, t := range pr.tickets {
			t.done = true
			t.err = ferr
		}
	}
	pol := h.cfg.Retry
	if pr.deadline > 0 && h.now != nil && h.now() >= pr.deadline {
		h.stats.DeadlineFailed++
		fail(fmt.Errorf("%w (last: %v)", ErrDeadlineExceeded, lastErr))
		return
	}
	if pol.MaxAttempts > 0 && pr.attempts >= pol.MaxAttempts {
		fail(fmt.Errorf("%w (last: %v)", ErrAttemptsExhausted, lastErr))
		return
	}
	replicas := h.placements[pr.slab]
	next := h.readOrder(pr.page, replicas, pr.tried)
	if next >= 0 {
		if d := pol.backoffFor(pr.page, pr.attempts); d > 0 && h.onBackoff != nil {
			h.onBackoff(next, d)
		}
		h.stats.Retries++
		pr.inflight++
		h.queues[next] = append(h.queues[next], queueEntry{read: pr})
		return
	}
	fail(fmt.Errorf("%w: %v", ErrAllReplicasFailed, lastErr))
}

// issueWrites sends a write batch to agent idx and resolves the per-replica
// sub-operations. Callers hold h.mu.
func (h *Host) issueWrites(idx int, batch []queueEntry) error {
	tr := h.transports[idx]
	var firstErr error
	resolve := func(pw *pendingWrite, ok bool, err error) {
		pw.resolved++
		if ok {
			pw.acked = append(pw.acked, idx)
		} else if err != nil {
			pw.lastErr = err
			pw.lastIdx = idx
		}
		if pw.resolved == len(pw.replicas) {
			if ferr := h.finishWrite(pw); ferr != nil && firstErr == nil {
				firstErr = ferr
			}
		}
	}

	if len(batch) == 1 {
		pw := batch[0].write
		resp, err := tr.Call(&Request{Op: OpWrite, Slab: pw.slab, PageOff: pw.off, Payload: pw.data})
		switch {
		case err != nil:
			resolve(pw, false, err)
		case resp.Status != StatusOK:
			resolve(pw, false, statusError(OpWrite, resp.Status))
		default:
			resolve(pw, true, nil)
		}
		return firstErr
	}

	refs := make([]BatchRef, len(batch))
	pages := make([][]byte, len(batch))
	for i, e := range batch {
		refs[i] = BatchRef{Slab: e.write.slab, PageOff: e.write.off}
		pages[i] = e.write.data
	}
	var req *Request
	var encErr error
	if h.cfg.Compress {
		req, encErr = EncodeWriteBatchCompressed(refs, pages, &h.comp)
	} else {
		req, encErr = EncodeWriteBatch(refs, pages)
	}
	if encErr != nil {
		return opError(OpWrite, idx, batch[0].write.page, 0, encErr)
	}
	if h.cfg.Compress {
		h.stats.CompressedFrames++
		h.stats.WireRawBytes += int64(4 + len(batch)*(batchRefSize+PageSize))
		h.stats.WireCompressedBytes += int64(len(req.Payload))
	}
	h.stats.BatchCalls++
	h.stats.BatchedPages += int64(len(batch))
	resp, err := tr.Call(req)
	if err != nil {
		for _, e := range batch {
			resolve(e.write, false, err)
		}
		return firstErr
	}
	statuses, decErr := DecodeWriteBatchResponse(resp)
	if decErr != nil || len(statuses) != len(batch) {
		if decErr == nil {
			decErr = statusError(OpWriteBatch, resp.Status)
		}
		for _, e := range batch {
			resolve(e.write, false, decErr)
		}
		return firstErr
	}
	for i, e := range batch {
		if statuses[i] == StatusOK {
			resolve(e.write, true, nil)
		} else {
			resolve(e.write, false, statusError(OpWrite, statuses[i]))
		}
	}
	return firstErr
}

// finishWrite finalizes a fully-resolved pending write: ack bookkeeping
// mirrors the synchronous WritePage exactly. Callers hold h.mu. It returns
// the write's error, if the write failed on every replica.
func (h *Host) finishWrite(pw *pendingWrite) error {
	delete(h.dirty, pw.page)
	h.writeGen[pw.page]++
	var err error
	if len(pw.acked) == 0 {
		err = opError(OpWrite, pw.lastIdx, pw.page, len(pw.replicas),
			fmt.Errorf("%w: %v", ErrAllReplicasFailed, pw.lastErr))
	} else {
		h.acked[pw.page] = pw.acked
		if len(pw.acked) < h.cfg.Replicas {
			h.degraded[pw.page] = true
		} else {
			delete(h.degraded, pw.page)
		}
	}
	h.bufFree = append(h.bufFree, pw.data)
	pw.data = nil
	pw.ticket.done = true
	pw.ticket.err = err
	for _, t := range pw.superseded {
		t.done = true
		t.err = err
	}
	return err
}
