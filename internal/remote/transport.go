package remote

import (
	"fmt"
	"net"
	"sync"
)

// Transport carries requests from the host to one agent. Implementations
// must be safe for concurrent use.
type Transport interface {
	// Call performs one round trip.
	Call(req *Request) (*Response, error)
	// Close releases the transport.
	Close() error
}

// InProc is a Transport that invokes an Agent directly — the zero-cost path
// used by simulations and unit tests.
type InProc struct {
	agent *Agent
	// Fail simulates a crashed agent when true (for failover tests).
	mu   sync.Mutex
	fail bool
}

// NewInProc returns an in-process transport bound to agent.
func NewInProc(agent *Agent) *InProc { return &InProc{agent: agent} }

// SetFailed toggles simulated failure.
func (t *InProc) SetFailed(fail bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fail = fail
}

// Call implements Transport.
func (t *InProc) Call(req *Request) (*Response, error) {
	t.mu.Lock()
	failed := t.fail
	t.mu.Unlock()
	if failed {
		return nil, fmt.Errorf("remote: agent unreachable (simulated)")
	}
	return t.agent.Handle(req), nil
}

// Close implements Transport.
func (t *InProc) Close() error { return nil }

// TCP is a Transport over a single TCP connection with the binary wire
// protocol. A mutex serializes round trips; the host opens one transport
// per (agent, CPU core) to get multi-queue parallelism, mirroring the
// paper's per-core RDMA connections.
type TCP struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialTCP connects to an agent at addr ("host:port").
func DialTCP(addr string) (*TCP, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	return &TCP{conn: conn}, nil
}

// Call implements Transport.
func (t *TCP) Call(req *Request) (*Response, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := EncodeRequest(t.conn, req); err != nil {
		return nil, err
	}
	return DecodeResponse(t.conn)
}

// Close implements Transport.
func (t *TCP) Close() error { return t.conn.Close() }
