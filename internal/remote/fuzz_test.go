package remote

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest hammers the request decoder with arbitrary bytes: it
// must never panic or over-allocate, only return errors.
func FuzzDecodeRequest(f *testing.F) {
	// Seed with a valid request.
	var buf bytes.Buffer
	_ = EncodeRequest(&buf, &Request{Op: OpWrite, Slab: 7, PageOff: 3, Payload: make([]byte, PageSize)})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{protoMagic})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode identically.
		var out bytes.Buffer
		if err := EncodeRequest(&out, req); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeRequest(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Op != req.Op || again.Slab != req.Slab || again.PageOff != req.PageOff ||
			!bytes.Equal(again.Payload, req.Payload) {
			t.Fatal("request round trip diverged")
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for responses.
func FuzzDecodeResponse(f *testing.F) {
	var buf bytes.Buffer
	_ = EncodeResponse(&buf, &Response{Status: StatusOK, Payload: make([]byte, PageSize)})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{protoMagic}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeResponse(&out, resp); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeResponse(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Status != resp.Status || !bytes.Equal(again.Payload, resp.Payload) {
			t.Fatal("response round trip diverged")
		}
	})
}

// FuzzAgentHandle feeds arbitrary requests to an agent: every request must
// produce a response without panicking, and the agent must stay within its
// slab budget.
func FuzzAgentHandle(f *testing.F) {
	f.Add(uint8(OpMapSlab), uint64(1), uint32(0), []byte{})
	f.Add(uint8(OpWrite), uint64(2), uint32(3), make([]byte, PageSize))
	f.Add(uint8(99), uint64(0), uint32(0), []byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, op uint8, slab uint64, off uint32, payload []byte) {
		if len(payload) > PageSize {
			payload = payload[:PageSize]
		}
		a := NewAgent(8, 4)
		resp := a.Handle(&Request{Op: op, Slab: SlabID(slab), PageOff: off, Payload: payload})
		if resp == nil {
			t.Fatal("nil response")
		}
		if a.SlabCount() > 4 {
			t.Fatalf("agent exceeded slab budget: %d", a.SlabCount())
		}
	})
}
