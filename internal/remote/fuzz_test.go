package remote

import (
	"bytes"
	"testing"

	"leap/internal/ztier"
)

// FuzzDecodeRequest hammers the request decoder with arbitrary bytes: it
// must never panic or over-allocate, only return errors.
func FuzzDecodeRequest(f *testing.F) {
	// Seed with a valid request.
	var buf bytes.Buffer
	_ = EncodeRequest(&buf, &Request{Op: OpWrite, Slab: 7, PageOff: 3, Payload: make([]byte, PageSize)})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{protoMagic})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Batched frames: a read batch and a two-page write batch.
	buf.Reset()
	rb, _ := EncodeReadBatch([]BatchRef{{Slab: 1, PageOff: 0}, {Slab: 2, PageOff: 5}})
	_ = EncodeRequest(&buf, rb)
	f.Add(bytes.Clone(buf.Bytes()))
	buf.Reset()
	wb, _ := EncodeWriteBatch([]BatchRef{{Slab: 3, PageOff: 1}, {Slab: 3, PageOff: 2}},
		[][]byte{make([]byte, PageSize), make([]byte, PageSize)})
	_ = EncodeRequest(&buf, wb)
	f.Add(bytes.Clone(buf.Bytes()))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode identically.
		var out bytes.Buffer
		if err := EncodeRequest(&out, req); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeRequest(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Op != req.Op || again.Slab != req.Slab || again.PageOff != req.PageOff ||
			!bytes.Equal(again.Payload, req.Payload) {
			t.Fatal("request round trip diverged")
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for responses.
func FuzzDecodeResponse(f *testing.F) {
	var buf bytes.Buffer
	_ = EncodeResponse(&buf, &Response{Status: StatusOK, Payload: make([]byte, PageSize)})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{protoMagic}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeResponse(&out, resp); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeResponse(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Status != resp.Status || !bytes.Equal(again.Payload, resp.Payload) {
			t.Fatal("response round trip diverged")
		}
	})
}

// FuzzAgentHandle feeds arbitrary requests to an agent: every request must
// produce a response without panicking, and the agent must stay within its
// slab budget. Batch ops (arbitrary payloads posing as batch frames
// included) go through the same entry point.
func FuzzAgentHandle(f *testing.F) {
	f.Add(uint8(OpMapSlab), uint64(1), uint32(0), []byte{})
	f.Add(uint8(OpWrite), uint64(2), uint32(3), make([]byte, PageSize))
	f.Add(uint8(99), uint64(0), uint32(0), []byte{1, 2, 3})
	rb, _ := EncodeReadBatch([]BatchRef{{Slab: 1, PageOff: 0}})
	f.Add(uint8(OpReadBatch), uint64(0), uint32(0), rb.Payload)
	wb, _ := EncodeWriteBatch([]BatchRef{{Slab: 1, PageOff: 0}}, [][]byte{make([]byte, PageSize)})
	f.Add(uint8(OpWriteBatch), uint64(0), uint32(0), wb.Payload)

	f.Fuzz(func(t *testing.T, op uint8, slab uint64, off uint32, payload []byte) {
		if len(payload) > maxWirePayload {
			payload = payload[:maxWirePayload]
		}
		a := NewAgent(8, 4)
		resp := a.Handle(&Request{Op: op, Slab: SlabID(slab), PageOff: off, Payload: payload})
		if resp == nil {
			t.Fatal("nil response")
		}
		if a.SlabCount() > 4 {
			t.Fatalf("agent exceeded slab budget: %d", a.SlabCount())
		}
	})
}

// FuzzBatchFrames hammers the batch entry decoders — raw and compressed —
// with arbitrary payloads: they must never panic; anything that decodes
// must re-encode (in both framings) and decode to the same entries
// (round-trip closure). isRead selects the read decoders, which also run
// the payload through the read-*response* decoder, the other frame shape
// that carries compressed page images.
func FuzzBatchFrames(f *testing.F) {
	var seedComp ztier.Compressor
	rb, _ := EncodeReadBatch([]BatchRef{{Slab: 9, PageOff: 2}, {Slab: 9, PageOff: 3}})
	f.Add(true, rb.Payload)
	wb, _ := EncodeWriteBatch([]BatchRef{{Slab: 4, PageOff: 0}}, [][]byte{make([]byte, PageSize)})
	f.Add(false, wb.Payload)
	f.Add(true, []byte{})
	f.Add(false, []byte{0xff, 0xff, 0xff, 0xff})
	crb, _ := EncodeReadBatchCompressed([]BatchRef{{Slab: 9, PageOff: 2}})
	f.Add(true, crb.Payload)
	cwb, _ := EncodeWriteBatchCompressed([]BatchRef{{Slab: 4, PageOff: 1}},
		[][]byte{bytes.Repeat([]byte{0xAB}, PageSize)}, &seedComp)
	f.Add(false, cwb.Payload)
	cresp, _ := EncodeReadBatchResponseCompressed([]BatchReadResult{
		{Status: StatusOK, Page: bytes.Repeat([]byte("leap"), PageSize/4)},
		{Status: StatusBadSlab},
	}, &seedComp)
	f.Add(true, cresp.Payload)

	f.Fuzz(func(t *testing.T, isRead bool, payload []byte) {
		if len(payload) > maxWirePayload {
			payload = payload[:maxWirePayload]
		}
		var comp ztier.Compressor
		if isRead {
			if refs, err := DecodeReadBatch(&Request{Op: OpReadBatch, Payload: payload}); err == nil {
				again, err := EncodeReadBatch(refs)
				if err != nil {
					t.Fatalf("re-encode of decoded read batch failed: %v", err)
				}
				refs2, err := DecodeReadBatch(again)
				if err != nil || !slicesEqualRefs(refs, refs2) {
					t.Fatalf("read batch round trip diverged: %v vs %v (%v)", refs, refs2, err)
				}
				creq, err := EncodeReadBatchCompressed(refs)
				if err != nil {
					t.Fatalf("compressed re-encode of read batch failed: %v", err)
				}
				if !ReadBatchCompressed(creq) {
					t.Fatal("compressed read batch lost its flag")
				}
				refs3, err := DecodeReadBatch(creq)
				if err != nil || !slicesEqualRefs(refs, refs3) {
					t.Fatalf("compressed read batch round trip diverged (%v)", err)
				}
			}
			// The same bytes as a hostile read response (raw or compressed):
			// decoded results must survive a compressed re-encode.
			results, err := DecodeReadBatchResponse(&Response{Status: StatusOK, Payload: payload})
			if err != nil {
				return
			}
			cre, err := EncodeReadBatchResponseCompressed(results, &comp)
			if err != nil {
				t.Fatalf("compressed re-encode of read results failed: %v", err)
			}
			results2, err := DecodeReadBatchResponse(cre)
			if err != nil || len(results2) != len(results) {
				t.Fatalf("compressed read response round trip diverged (%v)", err)
			}
			for i := range results {
				if results[i].Status != results2[i].Status || !bytes.Equal(results[i].Page, results2[i].Page) {
					t.Fatalf("read result %d diverged through compression", i)
				}
			}
			return
		}
		refs, pages, err := DecodeWriteBatch(&Request{Op: OpWriteBatch, Payload: payload})
		if err != nil {
			return
		}
		again, err := EncodeWriteBatch(refs, pages)
		if err != nil {
			t.Fatalf("re-encode of decoded write batch failed: %v", err)
		}
		refs2, pages2, err := DecodeWriteBatch(again)
		if err != nil || !slicesEqualRefs(refs, refs2) {
			t.Fatalf("write batch refs round trip diverged (%v)", err)
		}
		for i := range pages {
			if !bytes.Equal(pages[i], pages2[i]) {
				t.Fatalf("write batch page %d round trip diverged", i)
			}
		}
		creq, err := EncodeWriteBatchCompressed(refs, pages, &comp)
		if err != nil {
			t.Fatalf("compressed re-encode of write batch failed: %v", err)
		}
		refs3, pages3, err := DecodeWriteBatch(creq)
		if err != nil || !slicesEqualRefs(refs, refs3) {
			t.Fatalf("compressed write batch refs round trip diverged (%v)", err)
		}
		for i := range pages {
			if !bytes.Equal(pages[i], pages3[i]) {
				t.Fatalf("compressed write batch page %d round trip diverged", i)
			}
		}
	})
}

func slicesEqualRefs(a, b []BatchRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
