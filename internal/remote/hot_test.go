package remote

import (
	"bytes"
	"slices"
	"sync"
	"testing"

	"leap/internal/core"
)

// opHookTransport wraps a Transport and runs hook once, on the first call
// matching op after arming — the lever for injecting a concurrent client
// write at an exact point inside a multi-call control-plane operation (e.g.
// between ReplicateHot's source read and its target install).
type opHookTransport struct {
	inner Transport
	op    uint8
	mu    sync.Mutex
	armed *bool // shared across wrappers so only the first matching call fires
	hook  func()
}

func (o *opHookTransport) Call(req *Request) (*Response, error) {
	o.mu.Lock()
	fire := req.Op == o.op && *o.armed
	if fire {
		*o.armed = false
	}
	o.mu.Unlock()
	if fire {
		o.hook()
	}
	return o.inner.Call(req)
}

func (o *opHookTransport) Close() error { return o.inner.Close() }

// TestReplicateHotRacingWrite: a client write that lands between
// ReplicateHot's source read and its install must not leave the new hot
// holder certified with the pre-write bytes. The write fires from a hook on
// the first OpMapSlab call — after the source read, before the copy is
// installed — which is exactly the TOCTOU window; the host must detect the
// interleaved write and re-read, so the holder joins the ack set holding the
// latest bytes.
func TestReplicateHotRacingWrite(t *testing.T) {
	const slabPages, pages = 8, 64
	const page = core.PageID(3)
	h, _ := buildCluster(t, 4, slabPages, 11)
	v1, v2 := pageOf(1), pageOf(2)
	for p := core.PageID(0); p < pages; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.WritePage(page, v1); err != nil {
		t.Fatal(err)
	}

	armed := false
	hook := func() {
		if err := h.WritePage(page, v2); err != nil {
			t.Errorf("racing write: %v", err)
		}
	}
	h.mu.Lock()
	for i, tr := range h.transports {
		h.transports[i] = &opHookTransport{inner: tr, op: OpMapSlab, armed: &armed, hook: hook}
	}
	h.mu.Unlock()

	armed = true
	added, err := h.ReplicateHot(page, 1)
	if err != nil {
		t.Fatalf("ReplicateHot: %v", err)
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	if armed {
		t.Fatal("ReplicateHot never mapped a target; the race was not exercised")
	}

	holders := h.HotHolders(page)
	if len(holders) != 1 {
		t.Fatalf("HotHolders = %v, want one", holders)
	}
	acked := h.AckedReplicas(page)
	if !slices.Contains(acked, holders[0]) {
		t.Fatalf("hot holder %d not certified in ack set %v", holders[0], acked)
	}
	// Every acked copy — the hot holder included — must hold the racing
	// write's bytes, or a read preferring acked holders returns stale data
	// as fresh.
	slab, off := h.locate(page)
	h.mu.Lock()
	trs := make([]Transport, len(acked))
	for i, idx := range acked {
		trs[i] = h.transports[idx]
	}
	h.mu.Unlock()
	for i, tr := range trs {
		resp, err := tr.Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("acked agent %d unreadable: %v", acked[i], err)
		}
		if !bytes.Equal(resp.Payload, v2) {
			t.Fatalf("acked agent %d holds stale bytes after racing write", acked[i])
		}
	}
	buf := make([]byte, PageSize)
	if err := h.ReadPage(page, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, v2) {
		t.Fatal("host read returned stale bytes after racing write")
	}
}

// TestDropHotRestoresCertification: when every acked copy of a page is a hot
// holder (the placement replicas all missed the last write), DropHot must
// copy the page back onto the placement before demoting — or refuse — so the
// last acked write is never silently dropped from certification.
func TestDropHotRestoresCertification(t *testing.T) {
	const slabPages, pages = 8, 64
	const page = core.PageID(5)
	h, inprocs := buildCluster(t, 4, slabPages, 11)
	v1, v2 := pageOf(1), pageOf(2)
	for p := core.PageID(0); p < pages; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.WritePage(page, v1); err != nil {
		t.Fatal(err)
	}
	if added, err := h.ReplicateHot(page, 1); err != nil || added != 1 {
		t.Fatalf("ReplicateHot: added=%d err=%v", added, err)
	}
	holder := h.HotHolders(page)[0]

	// The placement replicas miss the next write: only the hot holder acks.
	slab, off := h.locate(page)
	h.mu.Lock()
	replicas := slices.Clone(h.placements[slab])
	h.mu.Unlock()
	for _, idx := range replicas {
		inprocs[idx].SetFailed(true)
	}
	if err := h.WritePage(page, v2); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	if acked := h.AckedReplicas(page); len(acked) != 1 || acked[0] != holder {
		t.Fatalf("acked = %v, want only hot holder %d", acked, holder)
	}

	// With the placement replicas still unreachable there is nowhere to put
	// the only certified copy: the demotion must be refused, and reads must
	// keep serving the acked bytes.
	if h.DropHot(page) {
		t.Fatal("DropHot demoted the only certified copy with placement unreachable")
	}
	if got := h.HotPages(); len(got) != 1 || got[0] != page {
		t.Fatalf("HotPages = %v after refused drop, want [%d]", got, page)
	}
	buf := make([]byte, PageSize)
	if err := h.ReadPage(page, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, v2) {
		t.Fatal("read after refused drop returned stale bytes")
	}

	// Placement heals: the drop now copies the bytes back, re-certifies the
	// placement replicas, and demotes cleanly.
	for _, idx := range replicas {
		inprocs[idx].SetFailed(false)
	}
	if !h.DropHot(page) {
		t.Fatal("DropHot refused with placement reachable")
	}
	if got := h.HotPages(); len(got) != 0 {
		t.Fatalf("HotPages = %v after drop, want none", got)
	}
	acked := h.AckedReplicas(page)
	slices.Sort(acked)
	want := slices.Clone(replicas)
	slices.Sort(want)
	if !slices.Equal(acked, want) {
		t.Fatalf("acked = %v after drop, want placement %v", acked, want)
	}
	if n := h.DegradedPages(); n != 0 {
		t.Fatalf("DegradedPages = %d after restoring full certification", n)
	}
	for _, idx := range replicas {
		h.mu.Lock()
		tr := h.transports[idx]
		h.mu.Unlock()
		resp, err := tr.Call(&Request{Op: OpRead, Slab: slab, PageOff: off})
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("replica %d unreadable: %v", idx, err)
		}
		if !bytes.Equal(resp.Payload, v2) {
			t.Fatalf("replica %d holds stale bytes after copy-back", idx)
		}
	}
	if err := h.ReadPage(page, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, v2) {
		t.Fatal("read after drop returned stale bytes")
	}
}

// TestDropHotPartialRestoreStaysDegraded: if the copy-back reaches only some
// placement replicas, the page must stay flagged degraded so RepairSlabs
// finishes the job.
func TestDropHotPartialRestoreStaysDegraded(t *testing.T) {
	const slabPages, pages = 8, 64
	const page = core.PageID(5)
	h, inprocs := buildCluster(t, 4, slabPages, 11)
	v2 := pageOf(2)
	for p := core.PageID(0); p < pages; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	if added, err := h.ReplicateHot(page, 1); err != nil || added != 1 {
		t.Fatalf("ReplicateHot: added=%d err=%v", added, err)
	}
	slab, _ := h.locate(page)
	h.mu.Lock()
	replicas := slices.Clone(h.placements[slab])
	h.mu.Unlock()
	for _, idx := range replicas {
		inprocs[idx].SetFailed(true)
	}
	if err := h.WritePage(page, v2); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	// Only one placement replica comes back: the drop restores what it can.
	inprocs[replicas[0]].SetFailed(false)
	if !h.DropHot(page) {
		t.Fatal("DropHot refused with a reachable placement replica")
	}
	if acked := h.AckedReplicas(page); len(acked) != 1 || acked[0] != replicas[0] {
		t.Fatalf("acked = %v, want [%d]", acked, replicas[0])
	}
	if n := h.DegradedPages(); n != 1 {
		t.Fatalf("DegradedPages = %d after partial restore, want 1", n)
	}
	// Repair finishes the re-push once the other replica heals.
	inprocs[replicas[1]].SetFailed(false)
	if _, err := h.RepairSlabs(); err != nil {
		t.Fatal(err)
	}
	if n := h.DegradedPages(); n != 0 {
		t.Fatalf("DegradedPages = %d after repair", n)
	}
	buf := make([]byte, PageSize)
	if err := h.ReadPage(page, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, v2) {
		t.Fatal("read after repair returned stale bytes")
	}
}

// TestHedgeWinIsNotAFailover: a hedged read whose slow primary fails while
// the twin completes is the hedge doing its job — it must count as a
// HedgeWin, not a Failover, so the two stats stay distinguishable.
func TestHedgeWinIsNotAFailover(t *testing.T) {
	const slabPages, pages = 8, 64
	inprocs := make([]*InProc, 3)
	trs := make([]Transport, 3)
	for i := range inprocs {
		inprocs[i] = NewInProc(NewAgent(slabPages, 0))
		trs[i] = inprocs[i]
	}
	h, err := NewHost(HostConfig{SlabPages: slabPages, Replicas: 2, Seed: 11,
		Retry: RetryPolicy{HedgeReads: true}}, trs)
	if err != nil {
		t.Fatal(err)
	}
	for p := core.PageID(0); p < pages; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	// Pick a page whose primary holder has the lower agent index, so the
	// drain (agent-index order) issues the failing primary before the twin
	// — the exact interleaving that used to double-count as a failover.
	page := core.PageID(-1)
	var order []int
	for p := core.PageID(0); p < pages; p++ {
		slab, _ := h.locate(p)
		h.mu.Lock()
		cand := h.readCandidates(p, h.placements[slab])
		h.mu.Unlock()
		if len(cand) >= 2 && cand[0] < cand[1] {
			page, order = p, cand
			break
		}
	}
	if page < 0 {
		t.Fatal("no page with ascending holder order")
	}
	primary, twin := order[0], order[1]

	// Both acked holders are hinted slow (otherwise the read would simply
	// order away from the slow one) and the primary is down.
	for _, idx := range []int{primary, twin} {
		if err := h.SetAgentSlow(idx, true); err != nil {
			t.Fatal(err)
		}
	}
	inprocs[primary].SetFailed(true)

	buf := make([]byte, PageSize)
	if err := h.ReadPageAsync(page, buf).Wait(); err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if !bytes.Equal(buf, pageOf(byte(page))) {
		t.Fatal("hedged read returned stale bytes")
	}
	st := h.Stats()
	if st.HedgedReads != 1 || st.HedgeWins != 1 {
		t.Fatalf("HedgedReads=%d HedgeWins=%d, want 1/1", st.HedgedReads, st.HedgeWins)
	}
	if st.Failovers != 0 {
		t.Fatalf("Failovers = %d for a loss inside the hedge pair, want 0", st.Failovers)
	}
	if st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 (the twin was already queued)", st.Retries)
	}
}

// TestHedgeNeverTargetsUnackedHolder: a degraded page (one replica missed
// the last write) with its only acked holder hinted slow must not hedge onto
// the stale replica — a winning hedge there would return stale bytes as
// fresh.
func TestHedgeNeverTargetsUnackedHolder(t *testing.T) {
	const slabPages, pages = 8, 64
	inprocs := make([]*InProc, 3)
	trs := make([]Transport, 3)
	for i := range inprocs {
		inprocs[i] = NewInProc(NewAgent(slabPages, 0))
		trs[i] = inprocs[i]
	}
	h, err := NewHost(HostConfig{SlabPages: slabPages, Replicas: 2, Seed: 11,
		Retry: RetryPolicy{HedgeReads: true}}, trs)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := pageOf(1), pageOf(2)
	const page = core.PageID(3)
	if err := h.WritePage(page, v1); err != nil {
		t.Fatal(err)
	}
	slab, _ := h.locate(page)
	h.mu.Lock()
	replicas := slices.Clone(h.placements[slab])
	h.mu.Unlock()

	// replicas[1] misses the second write: it still holds v1.
	inprocs[replicas[1]].SetFailed(true)
	if err := h.WritePage(page, v2); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	inprocs[replicas[1]].SetFailed(false)
	if err := h.SetAgentSlow(replicas[0], true); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, PageSize)
	if err := h.ReadPageAsync(page, buf).Wait(); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, v2) {
		t.Fatal("read of a degraded page returned stale bytes")
	}
	if st := h.Stats(); st.HedgedReads != 0 {
		t.Fatalf("HedgedReads = %d onto an unacked holder, want 0", st.HedgedReads)
	}
}
