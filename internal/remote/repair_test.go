package remote

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"leap/internal/core"
)

// flaky wraps a Transport and fails every nth call — transient network
// faults, as opposed to InProc's hard kill.
type flaky struct {
	inner Transport
	mu    sync.Mutex
	n     int
	count int
}

func (f *flaky) Call(req *Request) (*Response, error) {
	f.mu.Lock()
	f.count++
	fail := f.n > 0 && f.count%f.n == 0
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("remote: transient fault (injected)")
	}
	return f.inner.Call(req)
}

func (f *flaky) Close() error { return f.inner.Close() }

func buildCluster(t *testing.T, n, slabPages int, seed uint64) (*Host, []*InProc) {
	t.Helper()
	inprocs := make([]*InProc, n)
	trs := make([]Transport, n)
	for i := 0; i < n; i++ {
		inprocs[i] = NewInProc(NewAgent(slabPages, 0))
		trs[i] = inprocs[i]
	}
	h, err := NewHost(HostConfig{SlabPages: slabPages, Replicas: 2, Seed: seed}, trs)
	if err != nil {
		t.Fatal(err)
	}
	return h, inprocs
}

func TestRepairRestoresReplication(t *testing.T) {
	h, inprocs := buildCluster(t, 4, 16, 11)
	// Write 8 slabs' worth of pages.
	for p := core.PageID(0); p < 128; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}

	// Kill agent 0 for good.
	inprocs[0].SetFailed(true)
	if err := h.MarkFailed(0); err != nil {
		t.Fatal(err)
	}
	if got := h.FailedAgents(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("FailedAgents = %v", got)
	}

	repaired, err := h.RepairSlabs()
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("nothing repaired despite a dead agent holding replicas")
	}
	if h.Stats().Repairs != int64(repaired) {
		t.Fatalf("Repairs stat %d != repaired %d", h.Stats().Repairs, repaired)
	}

	// Now kill EVERY original placement by failing one more agent at a
	// time and verifying data stays readable: with repair done, each slab
	// again has two live replicas, so any single additional failure is
	// survivable.
	inprocs[1].SetFailed(true)
	buf := make([]byte, PageSize)
	for p := core.PageID(0); p < 128; p++ {
		if err := h.ReadPage(p, buf); err != nil {
			t.Fatalf("read %d after repair + second failure: %v", p, err)
		}
		if buf[0] != byte(p) {
			t.Fatalf("page %d corrupted after repair", p)
		}
	}
}

func TestRepairCopiesContentExactly(t *testing.T) {
	h, inprocs := buildCluster(t, 3, 8, 13)
	want := make(map[core.PageID][]byte)
	for p := core.PageID(0); p < 32; p++ {
		data := pageOf(byte(p * 7))
		data[100] = byte(p)
		want[p] = append([]byte(nil), data...)
		if err := h.WritePage(p, data); err != nil {
			t.Fatal(err)
		}
	}
	inprocs[2].SetFailed(true)
	if err := h.MarkFailed(2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RepairSlabs(); err != nil {
		t.Fatal(err)
	}
	// All remaining agents dead except repaired copies' hosts: verify by
	// reading everything back.
	buf := make([]byte, PageSize)
	for p, data := range want {
		if err := h.ReadPage(p, buf); err != nil {
			t.Fatalf("read %d: %v", p, err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("page %d content mismatch after repair", p)
		}
	}
}

func TestRepairNoHealthyAgent(t *testing.T) {
	h, inprocs := buildCluster(t, 2, 8, 17)
	if err := h.WritePage(0, pageOf(1)); err != nil {
		t.Fatal(err)
	}
	inprocs[0].SetFailed(true)
	if err := h.MarkFailed(0); err != nil {
		t.Fatal(err)
	}
	// Only one agent left and it already holds the slab: repair must fail
	// loudly, not silently under-replicate.
	if _, err := h.RepairSlabs(); err == nil {
		t.Fatal("repair succeeded with no spare agent")
	}
}

func TestMarkFailedValidation(t *testing.T) {
	h, _ := buildCluster(t, 2, 8, 19)
	if err := h.MarkFailed(99); err == nil {
		t.Fatal("out-of-range MarkFailed accepted")
	}
}

func TestFailedAgentExcludedFromNewPlacements(t *testing.T) {
	h, inprocs := buildCluster(t, 3, 8, 23)
	inprocs[0].SetFailed(true)
	if err := h.MarkFailed(0); err != nil {
		t.Fatal(err)
	}
	// New slabs must avoid the dead agent entirely.
	for p := core.PageID(0); p < 80; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	if load := h.SlabLoad(); load[0] != 0 {
		t.Fatalf("dead agent received %d new slabs", load[0])
	}
}

func TestFlakyTransportWritesSurvive(t *testing.T) {
	// Transient faults on one replica: writes succeed via the other; reads
	// fail over. No data is lost as long as one call path works.
	agents := []*Agent{NewAgent(16, 0), NewAgent(16, 0)}
	fl := &flaky{inner: NewInProc(agents[0]), n: 3} // every 3rd call fails
	trs := []Transport{fl, NewInProc(agents[1])}
	h, err := NewHost(HostConfig{SlabPages: 16, Replicas: 2, Seed: 29}, trs)
	if err != nil {
		t.Fatal(err)
	}
	for p := core.PageID(0); p < 64; p++ {
		if err := h.WritePage(p, pageOf(byte(p))); err != nil {
			t.Fatalf("write %d under flaky transport: %v", p, err)
		}
	}
	buf := make([]byte, PageSize)
	for p := core.PageID(0); p < 64; p++ {
		if err := h.ReadPage(p, buf); err != nil {
			t.Fatalf("read %d under flaky transport: %v", p, err)
		}
		if buf[0] != byte(p) {
			t.Fatalf("page %d corrupted under flaky transport", p)
		}
	}
}

func TestPurgeAgentClearsOrphanedDegradedFlag(t *testing.T) {
	// A page whose ONLY acked holder is purged loses its last fresh copy:
	// the degraded flag must go with the acked entry, or the page wedges
	// every future repair barrier with un-actionable re-push work.
	agents := []*Agent{NewAgent(8, 0), NewAgent(8, 0)}
	inprocs := []*InProc{NewInProc(agents[0]), NewInProc(agents[1])}
	h, err := NewHost(HostConfig{SlabPages: 8, Replicas: 2, Seed: 3},
		[]Transport{inprocs[0], inprocs[1]})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WritePage(1, pageOf(1)); err != nil {
		t.Fatal(err)
	}
	// Fail one replica transiently so the rewrite is acked by a single agent.
	acked := h.AckedReplicas(1)
	if len(acked) != 2 {
		t.Fatalf("setup: acked = %v", acked)
	}
	down := acked[1]
	inprocs[down].SetFailed(true)
	if err := h.WritePage(1, pageOf(2)); err != nil {
		t.Fatal(err)
	}
	if h.DegradedPages() != 1 {
		t.Fatalf("DegradedPages = %d, want 1", h.DegradedPages())
	}
	sole := h.AckedReplicas(1)
	if len(sole) != 1 {
		t.Fatalf("acked after partial write = %v", sole)
	}
	// Crash the sole holder and purge it: the write is lost, and the
	// degraded flag must not survive as permanent un-repairable backlog.
	inprocs[down].SetFailed(false)
	if _, err := h.PurgeAgent(sole[0]); err != nil {
		t.Fatal(err)
	}
	if got := h.DegradedPages(); got != 0 {
		t.Fatalf("DegradedPages = %d after purging the only acked holder, want 0", got)
	}
	if got := h.AckedReplicas(1); len(got) != 0 {
		t.Fatalf("acked survived purge: %v", got)
	}
}

func TestMarkRecoveredAndPurgeValidation(t *testing.T) {
	h, _ := buildCluster(t, 2, 8, 19)
	if err := h.MarkRecovered(99); err == nil {
		t.Fatal("out-of-range MarkRecovered accepted")
	}
	if _, err := h.PurgeAgent(-1); err == nil {
		t.Fatal("out-of-range PurgeAgent accepted")
	}
	if err := h.MarkFailed(0); err != nil {
		t.Fatal(err)
	}
	if err := h.MarkRecovered(0); err != nil {
		t.Fatal(err)
	}
	if got := h.FailedAgents(); len(got) != 0 {
		t.Fatalf("FailedAgents after recover = %v", got)
	}
}

func TestSlabOfConsistentWithWrites(t *testing.T) {
	h, _ := buildCluster(t, 2, 8, 31)
	if h.SlabOf(0) != h.SlabOf(7) {
		t.Fatal("pages 0 and 7 should share a slab at SlabPages=8")
	}
	if h.SlabOf(7) == h.SlabOf(8) {
		t.Fatal("pages 7 and 8 should be in different slabs")
	}
	if h.PageCount(0) != 8 {
		t.Fatalf("PageCount = %d", h.PageCount(0))
	}
}
