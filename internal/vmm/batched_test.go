package vmm

import (
	"reflect"
	"testing"

	"leap/internal/datapath"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/rdma"
	"leap/internal/remote"
	"leap/internal/sim"
	"leap/internal/storage"
	"leap/internal/workload"
)

// leapCfgAtDepth is the full Leap stack on remote memory with the given
// doorbell queue depth.
func leapCfgAtDepth(depth int, seed uint64) Config {
	return Config{
		Path:             datapath.Config{Kind: datapath.Lean},
		CachePolicy:      pagecache.EvictEager,
		Prefetcher:       prefetch.NewLeap(coreConfig()),
		RemoteQueueDepth: depth,
		Seed:             seed,
	}
}

// TestBatchedPrefetchDeterministic pins the doorbell fan-out path: same
// seed, same depth → identical results.
func TestBatchedPrefetchDeterministic(t *testing.T) {
	run := func() Result {
		apps := []App{{PID: 1, Gen: workload.NewSequential(4000, 9), LimitPages: 1200}}
		_, res, err := Run(leapCfgAtDepth(8, 9), apps, 2000, 8000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed batched runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestQueueDepthOneMatchesUnbatched: RemoteQueueDepth 1 must not even
// engage the batch machinery — results are bit-identical to the zero-value
// (unbatched) configuration.
func TestQueueDepthOneMatchesUnbatched(t *testing.T) {
	run := func(depth int) Result {
		cfg := leapCfgAtDepth(depth, 21)
		apps := []App{{PID: 1, Gen: workload.NewSequential(4000, 21), LimitPages: 1200}}
		_, res, err := Run(cfg, apps, 2000, 8000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(0), run(1); !reflect.DeepEqual(a, b) {
		t.Fatalf("depth 1 diverged from unbatched:\n%+v\n%+v", a, b)
	}
}

// TestBatchedPrefetchFasterOnSequential: on a sequential scan (steady
// prefetch windows) the doorbell path must not be slower than per-page
// submission — the whole point of amortizing the round trip.
func TestBatchedPrefetchFaster(t *testing.T) {
	run := func(depth int) Result {
		apps := []App{{PID: 1, Gen: workload.NewSequential(4000, 33), LimitPages: 1200}}
		_, res, err := Run(leapCfgAtDepth(depth, 33), apps, 2000, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shallow, deep := run(1), run(8)
	if deep.Makespan > shallow.Makespan {
		t.Fatalf("depth-8 run slower than depth-1: %v > %v", deep.Makespan, shallow.Makespan)
	}
	if deep.PrefetchIssued == 0 {
		t.Fatal("batched run issued no prefetches")
	}
}

// TestBatchedEndToEndRealBytes drives the doorbell path against the real
// replicated store — batched wire frames, async writeback backlog — and
// requires zero corruption: the async pipeline must preserve
// read-your-writes through the dirty backlog.
func TestBatchedEndToEndRealBytes(t *testing.T) {
	agents := []*remote.Agent{
		remote.NewAgent(4096, 0),
		remote.NewAgent(4096, 0),
		remote.NewAgent(4096, 0),
	}
	trs := make([]remote.Transport, len(agents))
	for i, a := range agents {
		trs[i] = remote.NewInProc(a)
	}
	host, err := remote.NewHost(remote.HostConfig{SlabPages: 4096, Replicas: 2, Seed: 55}, trs)
	if err != nil {
		t.Fatal(err)
	}
	dev := storage.NewBacked(storage.NewRemote(rdma.New(rdma.Config{}, sim.NewRNG(55))), host)
	dev.WritebackBacklog = 32
	cfg := leapCfgAtDepth(8, 55)
	cfg.Device = dev
	apps := []App{{PID: 1, Gen: workload.NewSequential(3000, 55), LimitPages: 1000}}
	_, res, err := Run(cfg, apps, 4000, 12000)
	if err != nil {
		t.Fatal(err)
	}
	dev.FlushWriteback()
	if res.Faults == 0 {
		t.Fatal("no faults: the store was never exercised")
	}
	if got := dev.Corrupt.Load(); got != 0 {
		t.Fatalf("%d corrupted pages through the async batched store", got)
	}
	if dev.Verified.Load() == 0 {
		t.Fatal("no verified reads")
	}
	if st := host.Stats(); st.BatchCalls == 0 || st.AsyncWrites == 0 {
		t.Fatalf("store never saw the async batched path: %+v", st)
	}
}

// TestBatchedFabricAccounting: a depth-8 sequential run must issue fewer
// fabric round-trip draws than pages read, while total fabric ops still
// count every page — occupancy is per page, latency per doorbell.
func TestBatchedFabricAccounting(t *testing.T) {
	fabric := rdma.New(rdma.Config{}, sim.NewRNG(3))
	dev := storage.NewRemote(fabric)
	cfg := leapCfgAtDepth(8, 3)
	cfg.Device = dev
	apps := []App{{PID: 1, Gen: workload.NewSequential(4000, 3), LimitPages: 1200}}
	_, res, err := Run(cfg, apps, 2000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if fabric.Ops() < res.Faults {
		t.Fatalf("fabric ops %d below fault count %d: pages went uncharged", fabric.Ops(), res.Faults)
	}
}
