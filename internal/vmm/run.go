package vmm

import (
	"leap/internal/metrics"
	"leap/internal/sim"
)

// ProcResult is the per-process outcome of a run.
type ProcResult struct {
	PID      PID
	Name     string
	Accesses int64
	Faults   int64
	Ops      int64
	// Time is the process's local completion time.
	Time sim.Duration
	// OpsPerSec is application-level throughput (TPS/OPS in the paper's
	// Figure 11c/d terms).
	OpsPerSec float64
	// Latency summarizes this process's 4KB swap-in latencies.
	Latency metrics.Summary
}

// Result is the aggregate outcome of a measured run.
type Result struct {
	// Makespan is the slowest process's completion time.
	Makespan sim.Duration
	// Latency summarizes 4KB swap-in latency across all processes.
	Latency metrics.Summary
	// Faults is total swap-in faults; ResidentHits is accesses that paid no
	// fault.
	Faults, ResidentHits int64
	// CacheAdds / CacheMisses mirror Figure 9a. PrefetchIssued counts pages
	// requested by the prefetcher (cache adds plus in-flight consumptions).
	CacheAdds, CacheMisses, PrefetchIssued int64
	// Pollution counts prefetched pages evicted unused.
	Pollution int64
	// Accuracy is prefetch hits / prefetch issued; Coverage is prefetch
	// hits / faults (§3.1 definitions).
	Accuracy, Coverage float64
	// PerProc holds per-process results in App order.
	PerProc []ProcResult
}

// Collect derives a Result covering the measured phase (everything since
// recording was last enabled).
func (m *Machine) Collect() Result {
	st := m.eng.Cache().Stats()
	inflightHits := m.eng.Counters.Get("inflight_hits")
	prefetchHits := st.PrefetchHits - m.cacheStats0.PrefetchHits + inflightHits
	issued := m.eng.Counters.Get("prefetch_issued")
	faults := m.eng.Counters.Get("faults")

	r := Result{
		Makespan:       m.measuredMakespan(),
		Latency:        m.eng.FaultLatency.Summarize(),
		Faults:         faults,
		ResidentHits:   m.eng.Counters.Get("resident_hits"),
		CacheAdds:      st.Adds - m.cacheStats0.Adds,
		CacheMisses:    m.eng.Counters.Get("cache_misses"),
		PrefetchIssued: issued,
		Pollution:      st.Pollution - m.cacheStats0.Pollution,
	}
	if issued > 0 {
		r.Accuracy = float64(prefetchHits) / float64(issued)
	}
	if faults > 0 {
		r.Coverage = float64(prefetchHits) / float64(faults)
	}
	for _, p := range m.procs {
		dur := p.clock.Sub(p.clock0)
		pr := ProcResult{
			PID:      p.app.PID,
			Name:     p.app.Gen.Name(),
			Accesses: p.accesses - p.accesses0,
			Faults:   p.faults - p.faults0,
			Ops:      p.ops - p.ops0,
			Time:     dur,
			Latency:  p.Latency.Summarize(),
		}
		if dur > 0 {
			pr.OpsPerSec = float64(pr.Ops) / dur.Seconds()
		}
		r.PerProc = append(r.PerProc, pr)
	}
	return r
}

// Run builds a machine, performs warmup accesses per process without
// recording, then measures the next measured accesses per process and
// returns the machine (for histogram access) and the collected result.
func Run(cfg Config, apps []App, warmup, measured int64) (*Machine, Result, error) {
	m, err := NewMachine(cfg, apps)
	if err != nil {
		return nil, Result{}, err
	}
	if warmup > 0 {
		m.SetRecording(false)
		m.Run(warmup)
		m.SetRecording(true)
	}
	m.Run(measured)
	return m, m.Collect(), nil
}
