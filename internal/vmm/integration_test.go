package vmm

import (
	"testing"

	"leap/internal/datapath"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/rdma"
	"leap/internal/remote"
	"leap/internal/sim"
	"leap/internal/storage"
	"leap/internal/workload"
)

// newBackedDevice builds a remote-memory device whose latency comes from
// the fabric model and whose data lives in a real, replicated in-process
// remote store.
func newBackedDevice(t *testing.T, seed uint64) *storage.Backed {
	t.Helper()
	agents := []*remote.Agent{
		remote.NewAgent(4096, 0),
		remote.NewAgent(4096, 0),
		remote.NewAgent(4096, 0),
	}
	trs := make([]remote.Transport, len(agents))
	for i, a := range agents {
		trs[i] = remote.NewInProc(a)
	}
	host, err := remote.NewHost(remote.HostConfig{SlabPages: 4096, Replicas: 2, Seed: seed}, trs)
	if err != nil {
		t.Fatal(err)
	}
	inner := storage.NewRemote(rdma.New(rdma.Config{}, sim.NewRNG(seed)))
	return storage.NewBacked(inner, host)
}

// TestEndToEndRealBytes runs the full Leap stack — fault handler, cache,
// prefetcher, lean path — against a backing store that holds real page
// images with two-way replication, and verifies that every page read back
// after a swap-out carries the bytes that were written.
func TestEndToEndRealBytes(t *testing.T) {
	dev := newBackedDevice(t, 77)
	pf := prefetch.NewLeap(coreConfig())
	cfg := Config{
		Path:        datapath.Config{Kind: datapath.Lean},
		CachePolicy: pagecache.EvictEager,
		Prefetcher:  pf,
		Device:      dev,
		Seed:        77,
	}
	// Cyclic scan over 3000 pages with a 1000-page budget: every page is
	// repeatedly evicted (written to the store) and re-faulted (read back).
	apps := []App{{PID: 1, Gen: workload.NewSequential(3000, 77), LimitPages: 1000}}
	_, res, err := Run(cfg, apps, 4000, 12000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 {
		t.Fatal("no faults: the store was never exercised")
	}
	if got := dev.Corrupt.Load(); got != 0 {
		t.Fatalf("%d corrupted pages read from the remote store", got)
	}
	if dev.Verified.Load() < 10000 {
		t.Fatalf("only %d verified reads; the store barely ran", dev.Verified.Load())
	}
	t.Logf("verified=%d cold=%d faults=%d coverage=%.2f",
		dev.Verified.Load(), dev.ColdReads.Load(), res.Faults, res.Coverage)
}

// TestEndToEndMultiProcessRealBytes interleaves two processes over the
// same replicated store: page namespaces must never collide.
func TestEndToEndMultiProcessRealBytes(t *testing.T) {
	dev := newBackedDevice(t, 99)
	pf := prefetch.NewLeap(coreConfig())
	cfg := Config{
		Path:        datapath.Config{Kind: datapath.Lean},
		CachePolicy: pagecache.EvictEager,
		Prefetcher:  pf,
		Device:      dev,
		Seed:        99,
	}
	apps := []App{
		{PID: 1, Gen: workload.NewSequential(2000, 1), LimitPages: 700},
		{PID: 2, Gen: workload.NewStride(20000, 10, 2), LimitPages: 700},
	}
	_, res, err := Run(cfg, apps, 3000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if got := dev.Corrupt.Load(); got != 0 {
		t.Fatalf("%d corrupted pages with two processes", got)
	}
	if dev.Verified.Load() == 0 {
		t.Fatal("no verified reads")
	}
	if res.Faults == 0 {
		t.Fatal("no faults")
	}
}

// TestEndToEndSurvivesAgentFailure kills one replica mid-run; reads must
// keep verifying through the surviving copies.
func TestEndToEndSurvivesAgentFailure(t *testing.T) {
	agents := []*remote.Agent{
		remote.NewAgent(128, 0),
		remote.NewAgent(128, 0),
		remote.NewAgent(128, 0),
	}
	inprocs := make([]*remote.InProc, len(agents))
	trs := make([]remote.Transport, len(agents))
	for i, a := range agents {
		inprocs[i] = remote.NewInProc(a)
		trs[i] = inprocs[i]
	}
	// Small slabs (128 pages) spread placements over every agent, so the
	// killed agent is guaranteed to be primary for some slabs.
	host, err := remote.NewHost(remote.HostConfig{SlabPages: 128, Replicas: 2, Seed: 5}, trs)
	if err != nil {
		t.Fatal(err)
	}
	dev := storage.NewBacked(storage.NewRemote(rdma.New(rdma.Config{}, sim.NewRNG(5))), host)

	cfg := Config{
		Path:        datapath.Config{Kind: datapath.Lean},
		CachePolicy: pagecache.EvictEager,
		Prefetcher:  prefetch.NewLeap(coreConfig()),
		Device:      dev,
		Seed:        5,
	}
	apps := []App{{PID: 1, Gen: workload.NewSequential(3000, 5), LimitPages: 1000}}
	m, err := NewMachine(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(6000) // populate the store
	inprocs[2].SetFailed(true)
	m.Run(6000) // keep running with one agent dark

	if got := dev.Corrupt.Load(); got != 0 {
		t.Fatalf("%d corrupted pages after agent failure", got)
	}
	if host.Stats().Failovers == 0 {
		t.Fatal("no failovers recorded — the dead agent was never primary, rerun with another seed")
	}
}
