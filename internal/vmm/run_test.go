package vmm

import (
	"reflect"
	"testing"

	"leap/internal/workload"
)

// runLinearScanReference is the pre-heap scheduler: an O(P) scan per step
// that picks the first proc holding the smallest clock. The heap scheduler
// must reproduce its pick sequence exactly.
func runLinearScanReference(m *Machine, accesses int64) {
	target := make(map[PID]int64, len(m.procs))
	for _, p := range m.procs {
		target[p.app.PID] = p.accesses + accesses
	}
	for {
		var next *proc
		for _, p := range m.procs {
			if p.accesses >= target[p.app.PID] {
				continue
			}
			if next == nil || p.clock < next.clock {
				next = p
			}
		}
		if next == nil {
			return
		}
		m.step(next)
	}
}

// mixedApps builds a process mix with identical generators on some PIDs so
// clock ties actually occur (every proc starts at clock 0).
func mixedApps() []App {
	return []App{
		{PID: 1, Gen: workload.NewSequential(1<<18, 5), LimitPages: 2048},
		{PID: 2, Gen: workload.NewStride(1<<18, 10, 5), LimitPages: 2048},
		{PID: 3, Gen: workload.NewSequential(1<<18, 5), LimitPages: 2048}, // same seed as PID 1: lockstep clocks
		{PID: 4, Gen: workload.NewApp(workload.VoltDBProfile(), 9), LimitPages: 4096},
		{PID: 5, Gen: workload.NewUniform(1<<16, 7), LimitPages: 1024},
	}
}

func TestHeapSchedulerMatchesLinearScan(t *testing.T) {
	mk := func() *Machine {
		m, err := NewMachine(leanLeap(77), mixedApps())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	heapM, refM := mk(), mk()

	// Split across two Run calls to exercise carried-over targets too.
	heapM.Run(2000)
	heapM.Run(1000)
	runLinearScanReference(refM, 2000)
	runLinearScanReference(refM, 1000)

	got, want := heapM.Collect(), refM.Collect()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("heap scheduler diverged from linear-scan reference:\n got %+v\nwant %+v", got, want)
	}
	for _, p := range heapM.procs {
		if rp := refM.byPID[p.app.PID]; p.clock != rp.clock || p.accesses != rp.accesses {
			t.Fatalf("pid %d: clock/accesses (%v,%d) vs reference (%v,%d)",
				p.app.PID, p.clock, p.accesses, rp.clock, rp.accesses)
		}
	}
}

func TestRunZeroAccessesIsNoop(t *testing.T) {
	m, err := NewMachine(leanLeap(3), mixedApps())
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	m.Run(-5)
	for _, p := range m.procs {
		if p.accesses != 0 || p.clock != 0 {
			t.Fatalf("pid %d advanced on empty run: accesses=%d clock=%v",
				p.app.PID, p.accesses, p.clock)
		}
	}
}

func TestManyProcessScheduling(t *testing.T) {
	// The Fig13-style high-process-count case the heap exists for: every
	// proc must complete exactly its quota regardless of interleaving.
	var apps []App
	for pid := 1; pid <= 24; pid++ {
		apps = append(apps, App{
			PID:        PID(pid),
			Gen:        workload.NewStride(1<<18, int64(1+pid%7), uint64(pid)),
			LimitPages: 512,
		})
	}
	m, err := NewMachine(leanLeap(13), apps)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(500)
	for _, p := range m.procs {
		if p.accesses != 500 {
			t.Fatalf("pid %d ran %d accesses, want 500", p.app.PID, p.accesses)
		}
	}
}
