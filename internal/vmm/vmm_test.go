package vmm

import (
	"testing"

	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/sim"
	"leap/internal/storage"
	"leap/internal/workload"
)

// coreConfig is the paper-default Leap predictor configuration.
func coreConfig() core.Config { return core.Config{} }

// leanLeap is the full Leap configuration: lean path, Leap prefetcher,
// eager eviction.
func leanLeap(seed uint64) Config {
	p, _ := prefetch.New("leap")
	return Config{
		Path:        datapath.Config{Kind: datapath.Lean},
		CachePolicy: pagecache.EvictEager,
		Prefetcher:  p,
		Seed:        seed,
	}
}

// legacyLinux is the stock configuration: legacy path, read-ahead, lazy
// eviction.
func legacyLinux(seed uint64) Config {
	p, _ := prefetch.New("readahead")
	return Config{
		Path:        datapath.Config{Kind: datapath.Legacy},
		CachePolicy: pagecache.EvictLazy,
		Prefetcher:  p,
		Seed:        seed,
	}
}

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(Config{}, nil); err == nil {
		t.Fatal("no apps accepted")
	}
	if _, err := NewMachine(Config{}, []App{{PID: 1, Gen: nil}}); err == nil {
		t.Fatal("nil generator accepted")
	}
	g := workload.NewSequential(100, 1)
	if _, err := NewMachine(Config{}, []App{
		{PID: 1, Gen: g, LimitPages: 10},
		{PID: 1, Gen: g, LimitPages: 10},
	}); err == nil {
		t.Fatal("duplicate pid accepted")
	}
}

func TestFullMemoryNoFaultsAfterWarmup(t *testing.T) {
	// Limit >= working set: after one pass everything is resident.
	gen := workload.NewSequential(1000, 1)
	m, res, err := Run(leanLeap(1), []App{{PID: 1, Gen: gen, LimitPages: 2000}}, 2000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 0 {
		t.Fatalf("faults = %d with full memory, want 0", res.Faults)
	}
	if res.ResidentHits != 5000 {
		t.Fatalf("resident hits = %d, want 5000", res.ResidentHits)
	}
	_ = m
}

func TestMemoryLimitForcesFaults(t *testing.T) {
	// Cyclic scan over 1000 pages with a 500-page budget: LRU keeps the
	// wrong half; nearly every access faults.
	gen := workload.NewSequential(1000, 1)
	cfg := Config{Path: datapath.Config{Kind: datapath.Lean}, Seed: 2}
	_, res, err := Run(cfg, []App{{PID: 1, Gen: gen, LimitPages: 500}}, 2000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults < 2900 {
		t.Fatalf("faults = %d, want ~3000 (cyclic scan defeats LRU)", res.Faults)
	}
}

func TestResidentSetNeverExceedsLimit(t *testing.T) {
	gen := workload.NewUniform(2000, 3)
	m, err := NewMachine(leanLeap(3), []App{{PID: 1, Gen: gen, LimitPages: 100}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		m.step(m.procs[0])
		if got := m.procs[0].res.Len(); got > 100 {
			t.Fatalf("resident set %d exceeds limit 100", got)
		}
	}
	if m.Counters().Get("swapouts") == 0 {
		t.Fatal("no swap-outs recorded despite evictions")
	}
}

func TestLeapBeatsLegacyOnStride(t *testing.T) {
	// The paper's Stride-10 microbenchmark: Leap detects the stride and
	// serves from cache; the legacy path misses every time. Median gap
	// should be order(s) of magnitude (paper: 104×).
	mkApps := func() []App {
		return []App{{PID: 1, Gen: workload.NewStride(1<<20, 10, 7), LimitPages: 4096}}
	}
	_, legacy, err := Run(legacyLinux(4), mkApps(), 3000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	_, leap, err := Run(leanLeap(4), mkApps(), 3000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if leap.Latency.P50 >= legacy.Latency.P50 {
		t.Fatalf("Leap p50 %v not better than legacy %v", leap.Latency.P50, legacy.Latency.P50)
	}
	ratio := float64(legacy.Latency.P50) / float64(leap.Latency.P50)
	if ratio < 20 {
		t.Fatalf("stride median improvement %.1f×, want >= 20×", ratio)
	}
	// Steady state with PWsizemax=8: each window's lead miss re-arms the
	// prefetcher, so 8 hits follow every 9th fault — coverage 8/9 ≈ 0.889.
	if leap.Coverage < 0.85 {
		t.Fatalf("Leap stride coverage = %.3f, want >= 0.85", leap.Coverage)
	}
}

func TestLegacySequentialCacheHitRate(t *testing.T) {
	// §2.2: with read-ahead, ~80% of sequential requests hit the cache.
	apps := []App{{PID: 1, Gen: workload.NewSequential(1<<20, 9), LimitPages: 4096}}
	_, res, err := Run(legacyLinux(5), apps, 3000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	hitRate := 1 - float64(res.CacheMisses)/float64(res.Faults)
	if hitRate < 0.6 {
		t.Fatalf("sequential hit rate = %.3f, want >= 0.6", hitRate)
	}
}

func TestLegacyStrideAllMisses(t *testing.T) {
	// §2.2: under Stride-10 every access misses the cache on the default
	// path (read-ahead's aligned blocks of <=8 pages never cover stride-10
	// targets... except when the 8-block happens to contain the next
	// stride; allow a small hit rate).
	apps := []App{{PID: 1, Gen: workload.NewStride(1<<20, 10, 11), LimitPages: 4096}}
	_, res, err := Run(legacyLinux(6), apps, 3000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	missRate := float64(res.CacheMisses) / float64(res.Faults)
	if missRate < 0.9 {
		t.Fatalf("stride miss rate = %.3f, want >= 0.9", missRate)
	}
}

func TestInflightHitPaysRemainingTime(t *testing.T) {
	// With Leap on a fast sequential stream, some hits land while the
	// prefetch is still in flight; their latency must be below a full miss.
	apps := []App{{PID: 1, Gen: workload.NewSequential(1<<20, 13), LimitPages: 4096}}
	m, res, err := Run(leanLeap(7), apps, 1000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters().Get("inflight_hits") == 0 {
		t.Skip("no in-flight hits at this parameterization")
	}
	if res.Latency.P99 > 50*sim.Microsecond {
		t.Fatalf("Leap sequential p99 = %v, want well under a legacy miss", res.Latency.P99)
	}
}

func TestPrefetchCacheCapacityRespected(t *testing.T) {
	cfg := leanLeap(8)
	cfg.CacheCapacity = 16
	apps := []App{{PID: 1, Gen: workload.NewSequential(1<<20, 15), LimitPages: 4096}}
	m, err := NewMachine(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10000)
	if got := m.Cache().Len(); got > 16 {
		t.Fatalf("cache grew to %d, capacity 16", got)
	}
}

func TestMultiProcessIsolationHelps(t *testing.T) {
	// The §4.1 isolation ablation: two similar-speed patterned processes.
	// Per-process predictors see clean streams; a single shared predictor
	// sees their interleaving — alternating huge deltas with no majority —
	// and loses coverage.
	mkApps := func() []App {
		return []App{
			{PID: 1, Gen: workload.NewSequential(1<<20, 21), LimitPages: 4096},
			{PID: 2, Gen: workload.NewStride(1<<20, 7, 22), LimitPages: 4096},
		}
	}
	run := func(shared bool) Result {
		lp := prefetch.NewLeap(coreConfig())
		lp.Shared = shared
		cfg := Config{
			Path:        datapath.Config{Kind: datapath.Lean},
			CachePolicy: pagecache.EvictEager,
			Prefetcher:  lp,
			Seed:        10,
		}
		_, res, err := Run(cfg, mkApps(), 2000, 15000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	isolated := run(false)
	shared := run(true)
	if isolated.Coverage <= shared.Coverage {
		t.Fatalf("isolation gave no coverage benefit: isolated %.3f vs shared %.3f",
			isolated.Coverage, shared.Coverage)
	}
	if isolated.Latency.P50 >= shared.Latency.P50 {
		t.Fatalf("isolation gave no latency benefit: isolated p50 %v vs shared %v",
			isolated.Latency.P50, shared.Latency.P50)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() (Result, error) {
		apps := []App{{PID: 1, Gen: workload.NewApp(workload.PowerGraphProfile(), 5), LimitPages: 8192}}
		_, res, err := Run(leanLeap(42), apps, 1000, 10000)
		return res, err
	}
	a, errA := mk()
	b, errB := mk()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.Makespan != b.Makespan || a.Faults != b.Faults || a.CacheAdds != b.CacheAdds {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestWarmupExcludedFromResults(t *testing.T) {
	apps := []App{{PID: 1, Gen: workload.NewSequential(1000, 1), LimitPages: 2000}}
	_, res, err := Run(leanLeap(11), apps, 1500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// All 1000 pages were loaded during warmup; the measured phase must
	// show zero faults and an accesses count of exactly 1000.
	if res.PerProc[0].Accesses != 1000 {
		t.Fatalf("measured accesses = %d, want 1000", res.PerProc[0].Accesses)
	}
	if res.Faults != 0 {
		t.Fatalf("measured faults = %d, want 0", res.Faults)
	}
}

func TestOpsAccounting(t *testing.T) {
	prof := workload.VoltDBProfile() // 12 accesses per op
	apps := []App{{PID: 1, Gen: workload.NewApp(prof, 3), LimitPages: prof.TotalPages}}
	_, res, err := Run(leanLeap(12), apps, 0, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerProc[0].Ops != 100 {
		t.Fatalf("ops = %d, want 100 (1200 accesses / 12 per op)", res.PerProc[0].Ops)
	}
	if res.PerProc[0].OpsPerSec <= 0 {
		t.Fatal("OpsPerSec not computed")
	}
}

func TestDiskDeviceIntegration(t *testing.T) {
	// The same engine must run against HDD for the Figure 8b/11 disk rows.
	pf, _ := prefetch.New("readahead")
	cfg := Config{
		Path:        datapath.Config{Kind: datapath.Legacy},
		CachePolicy: pagecache.EvictLazy,
		Prefetcher:  pf,
		Device:      storage.NewHDD(sim.NewRNG(55)),
		Seed:        13,
	}
	apps := []App{{PID: 1, Gen: workload.NewStride(1<<18, 10, 17), LimitPages: 4096}}
	_, res, err := Run(cfg, apps, 500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Disk miss ≈ 34µs path + ~91µs device: medians above 100µs.
	if res.Latency.P50 < 100*sim.Microsecond {
		t.Fatalf("disk stride p50 = %v, want >= 100µs", res.Latency.P50)
	}
}

func TestAccuracyCoverageBounds(t *testing.T) {
	apps := []App{{PID: 1, Gen: workload.NewApp(workload.PowerGraphProfile(), 19), LimitPages: 16384}}
	_, res, err := Run(leanLeap(14), apps, 2000, 15000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("accuracy = %v out of [0,1]", res.Accuracy)
	}
	if res.Coverage < 0 || res.Coverage > 1 {
		t.Fatalf("coverage = %v out of [0,1]", res.Coverage)
	}
}

func TestEagerEvictionReducesAllocLatency(t *testing.T) {
	// Same config except the eviction policy: eager should not be slower.
	mkApps := func() []App {
		return []App{{PID: 1, Gen: workload.NewSequential(1<<20, 23), LimitPages: 4096}}
	}
	lazyCfg := leanLeap(15)
	lazyCfg.CachePolicy = pagecache.EvictLazy
	_, lazy, err := Run(lazyCfg, mkApps(), 2000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	_, eager, err := Run(leanLeap(15), mkApps(), 2000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if eager.Latency.Mean > lazy.Latency.Mean {
		t.Fatalf("eager mean %v > lazy mean %v", eager.Latency.Mean, lazy.Latency.Mean)
	}
}

func TestCgroupChargeInvariant(t *testing.T) {
	// Property: after every step, resident + charged stays within the limit
	// plus the single in-flight insertion.
	pf, _ := prefetch.New("nextnline") // the most aggressive flooder
	cfg := Config{
		Path:        datapath.Config{Kind: datapath.Legacy},
		CachePolicy: pagecache.EvictLazy,
		Prefetcher:  pf,
		Seed:        31,
	}
	apps := []App{{PID: 1, Gen: workload.NewSequential(1<<20, 31), LimitPages: 256}}
	m, err := NewMachine(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8000; i++ {
		m.step(m.procs[0])
		p := m.procs[0]
		occupancy := int64(p.res.Len()) + p.res.Charged
		// The floor-16 backstop and the one-page insert give small slack.
		if occupancy > p.app.LimitPages+32 {
			t.Fatalf("step %d: occupancy %d far exceeds limit %d",
				i, occupancy, p.app.LimitPages)
		}
	}
}

func TestChargeAccountingBalanced(t *testing.T) {
	// charged must equal the number of resident cache entries attributed to
	// the pid at any quiescent point.
	cfg := leanLeap(33)
	apps := []App{{PID: 1, Gen: workload.NewStride(1<<20, 10, 33), LimitPages: 4096}}
	m, err := NewMachine(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(5000)
	if got, want := m.byPID[1].res.Charged, int64(m.Cache().Len()); got != want {
		t.Fatalf("charged = %d, cache holds %d", got, want)
	}
}

func TestFaultTraceCapture(t *testing.T) {
	cfg := leanLeap(35)
	cfg.CaptureFaults = true
	apps := []App{{PID: 1, Gen: workload.NewSequential(2000, 35), LimitPages: 100}}
	m, res, err := Run(cfg, apps, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.FaultTrace(1)
	if int64(len(tr)) != res.Faults {
		t.Fatalf("trace has %d entries, faults %d", len(tr), res.Faults)
	}
	if m.FaultTrace(99) != nil {
		t.Fatal("unknown pid returned a trace")
	}
}
