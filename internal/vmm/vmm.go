// Package vmm simulates the disaggregated virtual-memory path: processes
// with cgroup-style local-memory limits fault on non-resident pages, the
// fault handler consults the page cache, misses traverse a data path
// (legacy block layer or Leap's lean path) to a backing device, and a
// pluggable prefetcher decides what else to bring in. Evicted pages are
// written back to the backing store.
//
// The engine is a discrete-event simulation over virtual time: each process
// advances its own clock; shared resources (device, RDMA fabric queues,
// page cache, the prefetch in-flight set) interleave by always stepping the
// process with the smallest local clock. Everything is deterministic given
// the configuration seed.
//
// The fault path itself — cache lookup, in-flight wait, miss pricing,
// prefetch issue, residency map-in with reclaim — lives in internal/paging
// and is shared verbatim with the leap.Memory runtime; this package owns
// only what is simulator-specific: the process scheduler, per-process
// clocks and metrics, and workload generation.
//
// Page identity: process pid's virtual page v maps to the global swap
// address pid<<40 | v. Per-process deltas are preserved (Leap's per-process
// predictors see clean patterns), while the *stream* interleaving of
// different processes still garbles the global-stream baselines — the
// first-order effect behind the paper's isolation argument (§4.1). Linux's
// additional pathology of interleaved swap-slot allocation is not modeled;
// see DESIGN.md.
package vmm

import (
	"fmt"

	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/eventq"
	"leap/internal/metrics"
	"leap/internal/pagecache"
	"leap/internal/paging"
	"leap/internal/prefetch"
	"leap/internal/sim"
	"leap/internal/storage"
	"leap/internal/workload"
)

// PID aliases prefetch.PID.
type PID = prefetch.PID

// pidShift namespaces per-process pages in the global swap space.
const pidShift = 40

// globalPage maps (pid, virtual page) to the global swap address.
func globalPage(pid PID, v core.PageID) core.PageID {
	return core.PageID(int64(pid)<<pidShift | int64(v))
}

// Config parameterizes one simulated host machine.
type Config struct {
	// Path selects the data path (legacy block layer vs Leap's lean path).
	Path datapath.Config
	// CachePolicy picks lazy (Linux) or eager (Leap) prefetch-cache
	// reclamation; CacheCapacity bounds the prefetch cache in pages
	// (0 = unlimited), the Figure 12 knob. CacheScanInterval is the lazy
	// background scan period (0 = pagecache default).
	CachePolicy       pagecache.Policy
	CacheCapacity     int
	CacheScanInterval sim.Duration
	// Prefetcher is consulted on every swap-in; nil means none.
	Prefetcher prefetch.Prefetcher
	// Device is the backing store; nil defaults to remote memory over a
	// fresh default fabric.
	Device storage.Device
	// RemoteQueueDepth, when > 1, fans prefetch candidates out in
	// doorbell-style batches of up to this many pages and batches eviction
	// writebacks behind a dirty backlog of the same bound — provided the
	// device supports batched submission (storage.BatchDevice; remote
	// memory does). At 1 (or on non-batching devices) every page is
	// submitted individually, byte-identical to the unbatched engine.
	RemoteQueueDepth int
	// CaptureFaults records each process's fault addresses (virtual pages)
	// for pattern analysis (the Figure 3 classifier input).
	CaptureFaults bool
	// Seed drives all stochastic latency models.
	Seed uint64
}

// App is one process to simulate: a workload generator plus its local
// memory budget in pages (the cgroup limit).
type App struct {
	PID        PID
	Gen        workload.Generator
	LimitPages int64
	// PreloadPages marks virtual pages [0, PreloadPages) resident at start,
	// modeling an application whose budgeted memory is already populated
	// (the paper's 100%-memory runs do not page at all). Clamped to
	// LimitPages.
	PreloadPages int64
}

// proc is the runtime state of one simulated process.
type proc struct {
	app   App
	clock sim.Time
	// order is the process's index in Machine.procs; the scheduler breaks
	// clock ties by order so the pick sequence matches a first-wins linear
	// scan over the App slice.
	order int
	// target is the access count this proc runs to in the current Machine.Run.
	target int64
	// accPerOp caches app.Gen.AccessesPerOp(), hoisting the interface call
	// out of the per-access path (generators report a constant); opLeft
	// counts down accesses to the next completed operation, replacing a
	// per-access modulo.
	accPerOp int64
	opLeft   int64

	// res is this process's residency set (page table + LRU + cgroup
	// charge), managed by the shared paging engine.
	res *paging.Resident

	accesses int64
	faults   int64
	// ops counts completed application-level operations.
	ops int64

	// Measurement baselines, snapshotted when recording turns on, so
	// warmup work is excluded from results.
	clock0    sim.Time
	accesses0 int64
	faults0   int64
	ops0      int64

	// faultTrace holds faulted virtual pages when capture is enabled.
	faultTrace []core.PageID

	// Latency is this process's 4KB swap-in latency distribution.
	Latency metrics.Histogram
}

// procLess orders the scheduler heap by (clock, order): the unique least
// element is exactly the proc a first-wins linear scan would pick.
func procLess(a, b *proc) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.order < b.order
}

// Machine simulates one host. Not safe for concurrent use.
type Machine struct {
	cfg Config
	// eng is the shared fault-path engine (internal/paging): page cache,
	// in-flight prefetch tracking, miss pricing, prefetch issue, residency
	// map-in. All processes share it, exactly as processes share a kernel.
	eng *paging.Engine[*proc]

	procs []*proc
	byPID map[PID]*proc
	// sched orders runnable procs by (clock, order) so Run picks the next
	// proc in O(log P) instead of scanning all processes per step.
	sched *eventq.Heap[*proc]

	recording bool
	// cacheStats0 snapshots cache counters at measurement start.
	cacheStats0 pagecache.Stats

	// Pre-resolved counter handles for the simulator-owned counters (the
	// engine resolves its own).
	cResidentHits *int64
	cFaults       *int64
}

// NewMachine builds a machine with the given apps.
func NewMachine(cfg Config, apps []App) (*Machine, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("vmm: no apps")
	}
	eng := paging.New[*proc](paging.Config{
		Path:              cfg.Path,
		CachePolicy:       cfg.CachePolicy,
		CacheCapacity:     cfg.CacheCapacity,
		CacheScanInterval: cfg.CacheScanInterval,
		Prefetcher:        cfg.Prefetcher,
		Device:            cfg.Device,
		QueueDepth:        cfg.RemoteQueueDepth,
		Seed:              cfg.Seed,
	})
	m := &Machine{
		cfg:       cfg,
		eng:       eng,
		byPID:     make(map[PID]*proc),
		sched:     eventq.New(procLess),
		recording: true,
	}
	m.cResidentHits = eng.Counters.Handle("resident_hits")
	m.cFaults = eng.Counters.Handle("faults")
	eng.OnInsert = func(p *proc) { p.res.Charged++ }
	// Evictions cluster by process, so memoize the last pid→proc mapping
	// instead of paying a map lookup per evicted page.
	var lastEvictPID PID
	var lastEvictProc *proc
	eng.Cache().OnEvict = func(page core.PageID) {
		pid := PID(int64(page) >> pidShift)
		if lastEvictProc == nil || lastEvictPID != pid {
			lastEvictProc = m.byPID[pid]
			lastEvictPID = pid
			if lastEvictProc == nil {
				return
			}
		}
		lastEvictProc.res.Charged--
	}
	for _, a := range apps {
		if a.Gen == nil {
			return nil, fmt.Errorf("vmm: app %d has no generator", a.PID)
		}
		if _, dup := m.byPID[a.PID]; dup {
			return nil, fmt.Errorf("vmm: duplicate pid %d", a.PID)
		}
		p := &proc{
			app:      a,
			order:    len(m.procs),
			accPerOp: int64(a.Gen.AccessesPerOp()),
			res:      paging.NewResident(int(a.LimitPages)),
		}
		p.res.Limit = a.LimitPages
		p.opLeft = p.accPerOp
		preload := a.PreloadPages
		if preload > a.LimitPages {
			preload = a.LimitPages
		}
		for v := int64(0); v < preload; v++ {
			m.eng.MapIn(p, p.res, int(a.PID), globalPage(a.PID, core.PageID(v)), 0)
		}
		m.procs = append(m.procs, p)
		m.byPID[a.PID] = p
	}
	return m, nil
}

// Cache exposes the page cache for experiment accounting.
func (m *Machine) Cache() *pagecache.Cache { return m.eng.Cache() }

// Path exposes the data path for stage histograms.
func (m *Machine) Path() *datapath.Path { return m.eng.Path() }

// Device exposes the backing store.
func (m *Machine) Device() storage.Device { return m.eng.Device() }

// Counters exposes the fault-path counter set (cache_hits, cache_misses,
// inflight_hits, prefetch_issued, faults, resident_hits, swapouts, ...).
func (m *Machine) Counters() *metrics.Counters { return &m.eng.Counters }

// FaultLatency exposes the all-process swap-in latency distribution.
func (m *Machine) FaultLatency() *metrics.Histogram { return &m.eng.FaultLatency }

// AllocLatency exposes the per-miss page-allocation latency distribution.
func (m *Machine) AllocLatency() *metrics.Histogram { return &m.eng.AllocLatency }

// SetRecording toggles metric collection; warmup runs with recording off.
// Turning recording on snapshots per-process clocks and cache counters so
// results cover only the measured phase.
func (m *Machine) SetRecording(on bool) {
	if on && !m.recording {
		for _, p := range m.procs {
			p.clock0 = p.clock
			p.accesses0 = p.accesses
			p.faults0 = p.faults
			p.ops0 = p.ops
		}
		m.cacheStats0 = m.eng.Cache().Stats()
	}
	m.recording = on
	m.eng.SetRecording(on)
}

// ProcLatency reports the latency histogram of pid's swap-ins.
func (m *Machine) ProcLatency(pid PID) *metrics.Histogram {
	if p, ok := m.byPID[pid]; ok {
		return &p.Latency
	}
	return nil
}

// ProcTime reports pid's local virtual clock.
func (m *Machine) ProcTime(pid PID) sim.Time {
	if p, ok := m.byPID[pid]; ok {
		return p.clock
	}
	return 0
}

// ProcFaults reports pid's fault count.
func (m *Machine) ProcFaults(pid PID) int64 {
	if p, ok := m.byPID[pid]; ok {
		return p.faults
	}
	return 0
}

// FaultTrace reports pid's recorded fault addresses (virtual pages);
// non-nil only when Config.CaptureFaults is set.
func (m *Machine) FaultTrace(pid PID) []core.PageID {
	if p, ok := m.byPID[pid]; ok {
		return p.faultTrace
	}
	return nil
}

// MaxTime reports the largest process clock — the makespan.
func (m *Machine) MaxTime() sim.Time {
	var max sim.Time
	for _, p := range m.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// measuredMakespan reports the longest measured-phase duration across
// processes.
func (m *Machine) measuredMakespan() sim.Duration {
	var max sim.Duration
	for _, p := range m.procs {
		if d := p.clock.Sub(p.clock0); d > max {
			max = d
		}
	}
	return max
}

// Step runs one access of process p and returns the swap-in latency paid
// (0 for residency hits).
func (m *Machine) step(p *proc) sim.Duration {
	eng := m.eng
	a := p.app.Gen.Next()
	p.clock = p.clock.Add(a.Think)
	now := p.clock
	eng.FlushArrivals(now)
	p.accesses++
	if p.opLeft--; p.opLeft == 0 {
		p.ops++
		p.opLeft = p.accPerOp
	}

	page := globalPage(p.app.PID, a.Page)

	// Resident: no fault, no cost beyond think time.
	if p.res.Touch(page) {
		if m.recording {
			*m.cResidentHits++
		}
		return 0
	}

	// Swap-in fault: the shared engine serves it (cache hit, in-flight
	// wait, or full miss through data path + device).
	p.faults++
	if m.recording {
		*m.cFaults++
		if m.cfg.CaptureFaults {
			p.faultTrace = append(p.faultTrace, a.Page)
		}
	}
	latency, miss := eng.Fault(p.app.PID, int(p.app.PID), page, now)
	if m.recording {
		p.Latency.Observe(latency)
	}
	p.clock = p.clock.Add(latency)

	// Record the access, collect and issue prefetch candidates on a miss,
	// and map the faulted page in (evicting past the cgroup budget).
	eng.OnAccess(p, p.res, p.app.PID, int(p.app.PID), page, miss, p.clock)
	eng.MapIn(p, p.res, int(p.app.PID), page, p.clock)
	return latency
}

// Run advances the machine until every process has performed accesses
// accesses (beyond whatever it has already done). Processes interleave by
// local virtual time: each iteration steps the runnable proc with the
// smallest (clock, order) key. The scheduler heap makes that pick O(log P)
// per step — stepping a proc only grows its own clock, so a single
// sift-down of the root restores the heap — while (clock, order) is a total
// order, which keeps the pick sequence identical to the previous
// first-wins linear scan at any process count.
func (m *Machine) Run(accesses int64) {
	if accesses <= 0 {
		return
	}
	m.sched.Reset()
	for _, p := range m.procs {
		p.target = p.accesses + accesses
		m.sched.Push(p)
	}
	for m.sched.Len() > 0 {
		p := m.sched.Peek()
		m.step(p)
		if p.accesses >= p.target {
			m.sched.Pop()
		} else {
			m.sched.Fix(0)
		}
	}
	// Drain any partially-filled writeback backlog so device accounting
	// (and a Backed store's final image) covers every evicted page.
	m.eng.FlushWriteback(0, m.MaxTime())
}
