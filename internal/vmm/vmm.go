// Package vmm simulates the disaggregated virtual-memory path: processes
// with cgroup-style local-memory limits fault on non-resident pages, the
// fault handler consults the page cache, misses traverse a data path
// (legacy block layer or Leap's lean path) to a backing device, and a
// pluggable prefetcher decides what else to bring in. Evicted pages are
// written back to the backing store.
//
// The engine is a discrete-event simulation over virtual time: each process
// advances its own clock; shared resources (device, RDMA fabric queues,
// page cache, the prefetch in-flight set) interleave by always stepping the
// process with the smallest local clock. Everything is deterministic given
// the configuration seed.
//
// Page identity: process pid's virtual page v maps to the global swap
// address pid<<40 | v. Per-process deltas are preserved (Leap's per-process
// predictors see clean patterns), while the *stream* interleaving of
// different processes still garbles the global-stream baselines — the
// first-order effect behind the paper's isolation argument (§4.1). Linux's
// additional pathology of interleaved swap-slot allocation is not modeled;
// see DESIGN.md.
package vmm

import (
	"fmt"

	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/eventq"
	"leap/internal/metrics"
	"leap/internal/pagecache"
	"leap/internal/pagemap"
	"leap/internal/prefetch"
	"leap/internal/rdma"
	"leap/internal/sim"
	"leap/internal/storage"
	"leap/internal/workload"
)

// PID aliases prefetch.PID.
type PID = prefetch.PID

// pidShift namespaces per-process pages in the global swap space.
const pidShift = 40

// globalPage maps (pid, virtual page) to the global swap address.
func globalPage(pid PID, v core.PageID) core.PageID {
	return core.PageID(int64(pid)<<pidShift | int64(v))
}

// Config parameterizes one simulated host machine.
type Config struct {
	// Path selects the data path (legacy block layer vs Leap's lean path).
	Path datapath.Config
	// CachePolicy picks lazy (Linux) or eager (Leap) prefetch-cache
	// reclamation; CacheCapacity bounds the prefetch cache in pages
	// (0 = unlimited), the Figure 12 knob. CacheScanInterval is the lazy
	// background scan period (0 = pagecache default).
	CachePolicy       pagecache.Policy
	CacheCapacity     int
	CacheScanInterval sim.Duration
	// Prefetcher is consulted on every swap-in; nil means none.
	Prefetcher prefetch.Prefetcher
	// Device is the backing store; nil defaults to remote memory over a
	// fresh default fabric.
	Device storage.Device
	// RemoteQueueDepth, when > 1, fans prefetch candidates out in
	// doorbell-style batches of up to this many pages and batches eviction
	// writebacks behind a dirty backlog of the same bound — provided the
	// device supports batched submission (storage.BatchDevice; remote
	// memory does). At 1 (or on non-batching devices) every page is
	// submitted individually, byte-identical to the unbatched engine.
	RemoteQueueDepth int
	// CaptureFaults records each process's fault addresses (virtual pages)
	// for pattern analysis (the Figure 3 classifier input).
	CaptureFaults bool
	// Seed drives all stochastic latency models.
	Seed uint64
}

// App is one process to simulate: a workload generator plus its local
// memory budget in pages (the cgroup limit).
type App struct {
	PID        PID
	Gen        workload.Generator
	LimitPages int64
	// PreloadPages marks virtual pages [0, PreloadPages) resident at start,
	// modeling an application whose budgeted memory is already populated
	// (the paper's 100%-memory runs do not page at all). Clamped to
	// LimitPages.
	PreloadPages int64
}

// resEntry is one resident page in a process's LRU list.
type resEntry struct {
	page       core.PageID // global address
	prev, next *resEntry
}

// proc is the runtime state of one simulated process.
type proc struct {
	app   App
	clock sim.Time
	// order is the process's index in Machine.procs; the scheduler breaks
	// clock ties by order so the pick sequence matches a first-wins linear
	// scan over the App slice.
	order int
	// target is the access count this proc runs to in the current Machine.Run.
	target int64
	// accPerOp caches app.Gen.AccessesPerOp(), hoisting the interface call
	// out of the per-access path (generators report a constant); opLeft
	// counts down accesses to the next completed operation, replacing a
	// per-access modulo.
	accPerOp int64
	opLeft   int64

	// charged tracks page-cache pages attributed to this process's cgroup:
	// in Linux, swap-cache pages are charged to the faulting cgroup, so a
	// flooding prefetcher squeezes the process's own resident set. The
	// fault path enforces resident+charged <= limit.
	charged int64

	resident *pagemap.Map[*resEntry]
	lruHead  *resEntry // most recently used
	lruTail  *resEntry

	accesses int64
	faults   int64
	// ops counts completed application-level operations.
	ops int64

	// Measurement baselines, snapshotted when recording turns on, so
	// warmup work is excluded from results.
	clock0    sim.Time
	accesses0 int64
	faults0   int64
	ops0      int64

	// faultTrace holds faulted virtual pages when capture is enabled.
	faultTrace []core.PageID

	// Latency is this process's 4KB swap-in latency distribution.
	Latency metrics.Histogram
}

// arrival is a prefetched page in flight. It carries the issuing proc so
// landing it needs no pid lookup.
type arrival struct {
	page core.PageID
	at   sim.Time
	proc *proc
}

// arrivalLess orders arrivals by completion time (eventq preserves
// container/heap's tie order, so the landing sequence of same-time arrivals
// — and with it cache LRU order — is unchanged from the boxed heap).
func arrivalLess(a, b arrival) bool { return a.at < b.at }

// procLess orders the scheduler heap by (clock, order): the unique least
// element is exactly the proc a first-wins linear scan would pick.
func procLess(a, b *proc) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.order < b.order
}

// Machine simulates one host. Not safe for concurrent use.
type Machine struct {
	cfg   Config
	path  *datapath.Path
	cache *pagecache.Cache
	dev   storage.Device
	pf    prefetch.Prefetcher

	procs []*proc
	byPID map[PID]*proc
	// sched orders runnable procs by (clock, order) so Run picks the next
	// proc in O(log P) instead of scanning all processes per step.
	sched *eventq.Heap[*proc]

	inflight  *pagemap.Map[sim.Time]
	inflights *eventq.Heap[arrival]

	// Batched submission (RemoteQueueDepth > 1 on a BatchDevice): prefetch
	// fan-out goes through batchDev in chunks of qdepth, and evicted pages
	// accumulate in the writeback backlog until it reaches qdepth.
	batchDev   storage.BatchDevice
	qdepth     int
	batchPages []core.PageID
	batchDists []int64
	batchDone  []sim.Time
	wbPages    []core.PageID
	wbDists    []int64

	// resFree is a free list of resEntry nodes (linked through next), so the
	// map-in/evict churn of the fault path stops allocating.
	resFree *resEntry

	lastDevPage core.PageID // device head/locality tracker
	candBuf     []core.PageID

	recording bool
	// cacheStats0 snapshots cache counters at measurement start.
	cacheStats0 pagecache.Stats

	// Global metrics.
	FaultLatency metrics.Histogram // all swap-in faults, all processes
	AllocLatency metrics.Histogram // page-allocation cost paid per miss
	Counters     metrics.Counters

	// Pre-resolved counter handles: the fault path increments through these
	// pointers instead of paying a string-map lookup per event.
	cResidentHits   *int64
	cFaults         *int64
	cCacheHits      *int64
	cCacheMisses    *int64
	cInflightHits   *int64
	cInflightAdds   *int64
	cPrefetchIssued *int64
	cSwapouts       *int64
}

// NewMachine builds a machine with the given apps.
func NewMachine(cfg Config, apps []App) (*Machine, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("vmm: no apps")
	}
	rng := sim.NewRNG(cfg.Seed)
	dev := cfg.Device
	if dev == nil {
		dev = storage.NewRemote(rdma.New(rdma.Config{}, rng.Fork(1)))
	}
	pf := cfg.Prefetcher
	if pf == nil {
		pf = prefetch.None{}
	}
	m := &Machine{
		cfg:  cfg,
		path: datapath.New(cfg.Path, rng.Fork(2)),
		cache: pagecache.New(pagecache.Config{
			Capacity:     cfg.CacheCapacity,
			Policy:       cfg.CachePolicy,
			ScanInterval: cfg.CacheScanInterval,
		}),
		dev:       dev,
		pf:        pf,
		byPID:     make(map[PID]*proc),
		sched:     eventq.New(procLess),
		inflight:  pagemap.New[sim.Time](0),
		inflights: eventq.New(arrivalLess),
		recording: true,
	}
	if cfg.RemoteQueueDepth > 1 {
		if bd, ok := dev.(storage.BatchDevice); ok {
			m.batchDev = bd
			m.qdepth = cfg.RemoteQueueDepth
		}
	}
	m.cResidentHits = m.Counters.Handle("resident_hits")
	m.cFaults = m.Counters.Handle("faults")
	m.cCacheHits = m.Counters.Handle("cache_hits")
	m.cCacheMisses = m.Counters.Handle("cache_misses")
	m.cInflightHits = m.Counters.Handle("inflight_hits")
	m.cInflightAdds = m.Counters.Handle("inflight_adds")
	m.cPrefetchIssued = m.Counters.Handle("prefetch_issued")
	m.cSwapouts = m.Counters.Handle("swapouts")
	// Evictions cluster by process, so memoize the last pid→proc mapping
	// instead of paying a map lookup per evicted page.
	var lastEvictPID PID
	var lastEvictProc *proc
	m.cache.OnEvict = func(page core.PageID) {
		pid := PID(int64(page) >> pidShift)
		if lastEvictProc == nil || lastEvictPID != pid {
			lastEvictProc = m.byPID[pid]
			lastEvictPID = pid
			if lastEvictProc == nil {
				return
			}
		}
		lastEvictProc.charged--
	}
	for _, a := range apps {
		if a.Gen == nil {
			return nil, fmt.Errorf("vmm: app %d has no generator", a.PID)
		}
		if _, dup := m.byPID[a.PID]; dup {
			return nil, fmt.Errorf("vmm: duplicate pid %d", a.PID)
		}
		p := &proc{
			app:      a,
			order:    len(m.procs),
			accPerOp: int64(a.Gen.AccessesPerOp()),
			resident: pagemap.New[*resEntry](int(a.LimitPages)),
		}
		p.opLeft = p.accPerOp
		preload := a.PreloadPages
		if preload > a.LimitPages {
			preload = a.LimitPages
		}
		for v := int64(0); v < preload; v++ {
			m.insertResident(p, globalPage(a.PID, core.PageID(v)), 0)
		}
		m.procs = append(m.procs, p)
		m.byPID[a.PID] = p
	}
	return m, nil
}

// Cache exposes the page cache for experiment accounting.
func (m *Machine) Cache() *pagecache.Cache { return m.cache }

// Path exposes the data path for stage histograms.
func (m *Machine) Path() *datapath.Path { return m.path }

// Device exposes the backing store.
func (m *Machine) Device() storage.Device { return m.dev }

// SetRecording toggles metric collection; warmup runs with recording off.
// Turning recording on snapshots per-process clocks and cache counters so
// results cover only the measured phase.
func (m *Machine) SetRecording(on bool) {
	if on && !m.recording {
		for _, p := range m.procs {
			p.clock0 = p.clock
			p.accesses0 = p.accesses
			p.faults0 = p.faults
			p.ops0 = p.ops
		}
		m.cacheStats0 = m.cache.Stats()
	}
	m.recording = on
}

// ProcLatency reports the latency histogram of pid's swap-ins.
func (m *Machine) ProcLatency(pid PID) *metrics.Histogram {
	if p, ok := m.byPID[pid]; ok {
		return &p.Latency
	}
	return nil
}

// ProcTime reports pid's local virtual clock.
func (m *Machine) ProcTime(pid PID) sim.Time {
	if p, ok := m.byPID[pid]; ok {
		return p.clock
	}
	return 0
}

// ProcFaults reports pid's fault count.
func (m *Machine) ProcFaults(pid PID) int64 {
	if p, ok := m.byPID[pid]; ok {
		return p.faults
	}
	return 0
}

// FaultTrace reports pid's recorded fault addresses (virtual pages);
// non-nil only when Config.CaptureFaults is set.
func (m *Machine) FaultTrace(pid PID) []core.PageID {
	if p, ok := m.byPID[pid]; ok {
		return p.faultTrace
	}
	return nil
}

// MaxTime reports the largest process clock — the makespan.
func (m *Machine) MaxTime() sim.Time {
	var max sim.Time
	for _, p := range m.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// measuredMakespan reports the longest measured-phase duration across
// processes.
func (m *Machine) measuredMakespan() sim.Duration {
	var max sim.Duration
	for _, p := range m.procs {
		if d := p.clock.Sub(p.clock0); d > max {
			max = d
		}
	}
	return max
}

// flushArrivals lands every in-flight prefetch that has completed by now.
func (m *Machine) flushArrivals(now sim.Time) {
	for m.inflights.Len() > 0 && m.inflights.Peek().at <= now {
		a := m.inflights.Pop()
		if at, ok := m.inflight.Get(a.page); ok && at == a.at {
			m.inflight.Delete(a.page)
			if m.cache.Insert(a.page, true, a.at) {
				a.proc.charged++
			}
		}
	}
	m.cache.Tick(now)
}

// newResEntry takes a node off the free list, or allocates when it is empty.
func (m *Machine) newResEntry(page core.PageID) *resEntry {
	e := m.resFree
	if e == nil {
		return &resEntry{page: page}
	}
	m.resFree = e.next
	e.page = page
	e.prev, e.next = nil, nil
	return e
}

// freeResEntry returns an unlinked node to the free list.
func (m *Machine) freeResEntry(e *resEntry) {
	e.prev = nil
	e.next = m.resFree
	m.resFree = e
}

// touchResident moves e to the front of p's LRU.
func (p *proc) touchResident(e *resEntry) {
	if p.lruHead == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if p.lruTail == e {
		p.lruTail = e.prev
	}
	// Push front.
	e.prev = nil
	e.next = p.lruHead
	if p.lruHead != nil {
		p.lruHead.prev = e
	}
	p.lruHead = e
	if p.lruTail == nil {
		p.lruTail = e
	}
}

// insertResident maps a page into p, evicting (and swapping out) the LRU
// page if the limit is exceeded. The page must not already be resident —
// both call sites guarantee it: the fault path only reaches here after the
// residency check missed (and nothing in between inserts), and preload maps
// distinct pages into an empty set.
func (m *Machine) insertResident(p *proc, page core.PageID, now sim.Time) {
	e := m.newResEntry(page)
	p.resident.Put(page, e)
	e.next = p.lruHead
	if p.lruHead != nil {
		p.lruHead.prev = e
	}
	p.lruHead = e
	if p.lruTail == nil {
		p.lruTail = e
	}
	// The cgroup charge covers both mapped pages and this process's share
	// of the page cache. Under pressure, reclaim targets the page cache
	// first (kswapd prefers cold cache pages over mapped ones) — consumed
	// ghosts and stale unconsumed prefetches, which is where a flooding
	// prefetcher churns its own pages — then falls back to evicting the
	// process's LRU pages. Fresh prefetches get a 2ms grace so pressure
	// cannot cancel a prefetch that is about to be consumed.
	if over := int64(p.resident.Len()) + p.charged - p.app.LimitPages; over > 0 {
		m.cache.ReclaimAged(int(over), 2*sim.Millisecond, now)
	}
	budget := p.app.LimitPages - p.charged
	if floor := int64(16); budget < floor {
		budget = floor
	}
	for int64(p.resident.Len()) > budget && p.lruTail != nil {
		victim := p.lruTail
		p.lruTail = victim.prev
		if p.lruTail != nil {
			p.lruTail.next = nil
		} else {
			p.lruHead = nil
		}
		p.resident.Delete(victim.page)
		// Write-back to the backing store (asynchronous: occupies the
		// device/fabric but nobody waits). Swap-out is slot-clustered, so
		// it neither pays nor causes read-head seeks. On a batching device
		// the victim joins the bounded dirty backlog instead of paying a
		// submission per page.
		if m.batchDev != nil {
			m.wbPages = append(m.wbPages, victim.page)
			m.wbDists = append(m.wbDists, 1)
			if len(m.wbPages) >= m.qdepth {
				m.flushWriteback(int(p.app.PID), now)
			}
		} else {
			m.dev.Write(int(p.app.PID), now, victim.page, 1)
		}
		m.freeResEntry(victim)
		if m.recording {
			*m.cSwapouts++
		}
	}
}

// issuePrefetches fetches candidate pages into the cache asynchronously.
// Prefetch I/O rides the same device model as demand fetches — occupying
// queues and bandwidth — but nobody blocks on it. Linux batches read-ahead
// pages onto the demand request's trip through the block layer, so no
// per-page block-layer overhead is charged on either path; each page pays
// only dispatch + device time.
func (m *Machine) issuePrefetches(p *proc, cands []core.PageID, now sim.Time) {
	if m.batchDev != nil {
		m.issuePrefetchBatches(p, cands, now)
		return
	}
	for _, c := range cands {
		if p.resident.Contains(c) {
			continue
		}
		if m.cache.Contains(c) {
			continue
		}
		if m.inflight.Contains(c) {
			continue
		}
		dist := int64(c - m.lastDevPage)
		m.lastDevPage = c
		done := m.dev.Read(int(p.app.PID), now, c, dist)
		m.inflight.Put(c, done)
		m.inflights.Push(arrival{page: c, at: done, proc: p})
		if m.recording {
			*m.cPrefetchIssued++
		}
	}
}

// issuePrefetchBatches is the doorbell path: the deduplicated candidates go
// to the device in chunks of up to qdepth pages, so a prefetch window costs
// one submission (and one fabric round-trip draw) per chunk instead of one
// per page — the fan-out overlap the async remote engine exists for.
func (m *Machine) issuePrefetchBatches(p *proc, cands []core.PageID, now sim.Time) {
	m.batchPages = m.batchPages[:0]
	m.batchDists = m.batchDists[:0]
	for _, c := range cands {
		if p.resident.Contains(c) || m.cache.Contains(c) || m.inflight.Contains(c) {
			continue
		}
		m.batchPages = append(m.batchPages, c)
		m.batchDists = append(m.batchDists, int64(c-m.lastDevPage))
		m.lastDevPage = c
	}
	for lo := 0; lo < len(m.batchPages); lo += m.qdepth {
		hi := min(lo+m.qdepth, len(m.batchPages))
		m.batchDone = m.batchDev.ReadBatch(int(p.app.PID), now,
			m.batchPages[lo:hi], m.batchDists[lo:hi], m.batchDone)
		for i, c := range m.batchPages[lo:hi] {
			done := m.batchDone[i]
			m.inflight.Put(c, done)
			m.inflights.Push(arrival{page: c, at: done, proc: p})
			if m.recording {
				*m.cPrefetchIssued++
			}
		}
	}
}

// Step runs one access of process p and returns the swap-in latency paid
// (0 for residency hits).
func (m *Machine) step(p *proc) sim.Duration {
	a := p.app.Gen.Next()
	p.clock = p.clock.Add(a.Think)
	now := p.clock
	m.flushArrivals(now)
	p.accesses++
	if p.opLeft--; p.opLeft == 0 {
		p.ops++
		p.opLeft = p.accPerOp
	}

	page := globalPage(p.app.PID, a.Page)

	// Resident: no fault, no cost beyond think time.
	if e, ok := p.resident.Get(page); ok {
		p.touchResident(e)
		if m.recording {
			*m.cResidentHits++
		}
		return 0
	}

	// Swap-in fault.
	p.faults++
	if m.recording {
		*m.cFaults++
		if m.cfg.CaptureFaults {
			p.faultTrace = append(p.faultTrace, a.Page)
		}
	}
	var latency sim.Duration
	miss := false

	if hit, wasPre := m.cache.Lookup(page, now); hit {
		latency = m.path.HitLatency()
		if wasPre {
			m.pf.OnPrefetchHit(p.app.PID)
		}
		if m.recording {
			*m.cCacheHits++
		}
	} else if at, ok := m.inflight.Get(page); ok {
		// The prefetch is on the wire: pay only the remaining time.
		m.inflight.Delete(page)
		wait := at.Sub(now)
		if wait < 0 {
			wait = 0
		}
		latency = m.path.HitLatency() + wait
		m.pf.OnPrefetchHit(p.app.PID)
		if m.recording {
			*m.cInflightHits++
			// An in-flight consumption is still a prefetch success for
			// accuracy accounting (it was added and used).
			*m.cInflightAdds++
		}
	} else {
		// Full miss: data path overhead + device + page allocation.
		miss = true
		b := m.path.RequestOverhead()
		dist := int64(page - m.lastDevPage)
		m.lastDevPage = page
		submit := now.Add(b.Total())
		done := m.dev.Read(int(p.app.PID), submit, page, dist)
		alloc := m.cache.AllocLatency()
		latency = b.Total() + done.Sub(submit) + alloc
		if m.recording {
			*m.cCacheMisses++
			m.AllocLatency.Observe(alloc)
		}
	}

	if m.recording {
		m.FaultLatency.Observe(latency)
		p.Latency.Observe(latency)
	}
	p.clock = p.clock.Add(latency)

	// Record the access and, on a miss, collect prefetch candidates. The
	// prefetcher sees every swap-in (§4.1: cache look-ups are monitored,
	// resident pages are not); candidate generation sits on the miss path
	// like swapin_readahead.
	m.candBuf = m.pf.OnAccess(p.app.PID, page, miss, m.candBuf[:0])
	m.issuePrefetches(p, m.candBuf, p.clock)

	// The faulted page becomes resident.
	m.insertResident(p, page, p.clock)
	return latency
}

// flushWriteback drains the eviction backlog as one doorbell.
func (m *Machine) flushWriteback(cpu int, now sim.Time) {
	if len(m.wbPages) == 0 {
		return
	}
	m.batchDone = m.batchDev.WriteBatch(cpu, now, m.wbPages, m.wbDists, m.batchDone)
	m.wbPages = m.wbPages[:0]
	m.wbDists = m.wbDists[:0]
}

// Run advances the machine until every process has performed accesses
// accesses (beyond whatever it has already done). Processes interleave by
// local virtual time: each iteration steps the runnable proc with the
// smallest (clock, order) key. The scheduler heap makes that pick O(log P)
// per step — stepping a proc only grows its own clock, so a single
// sift-down of the root restores the heap — while (clock, order) is a total
// order, which keeps the pick sequence identical to the previous
// first-wins linear scan at any process count.
func (m *Machine) Run(accesses int64) {
	if accesses <= 0 {
		return
	}
	m.sched.Reset()
	for _, p := range m.procs {
		p.target = p.accesses + accesses
		m.sched.Push(p)
	}
	for m.sched.Len() > 0 {
		p := m.sched.Peek()
		m.step(p)
		if p.accesses >= p.target {
			m.sched.Pop()
		} else {
			m.sched.Fix(0)
		}
	}
	// Drain any partially-filled writeback backlog so device accounting
	// (and a Backed store's final image) covers every evicted page.
	if m.batchDev != nil {
		m.flushWriteback(0, m.MaxTime())
	}
}
