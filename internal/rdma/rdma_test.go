package rdma

import (
	"math"
	"testing"

	"leap/internal/sim"
)

func TestUnloadedLatency(t *testing.T) {
	f := New(Config{}, sim.NewRNG(1))
	var sum float64
	const n = 100000
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		// Space submissions out so queues never back up.
		now = now.Add(100 * sim.Microsecond)
		done := f.Submit(i%8, now)
		sum += float64(done.Sub(now))
	}
	mean := sum / n
	if math.Abs(mean-4300)/4300 > 0.05 {
		t.Fatalf("unloaded mean latency = %.0fns, want ~4300ns", mean)
	}
	if f.Ops() != n {
		t.Fatalf("Ops = %d, want %d", f.Ops(), n)
	}
}

func TestQueueCongestion(t *testing.T) {
	f := New(Config{Queues: 1, ServiceTime: sim.Microsecond}, sim.NewRNG(2))
	// Burst of 100 ops at t=0 on one queue: the k-th op waits ~k·service.
	var last sim.Time
	for i := 0; i < 100; i++ {
		last = f.Submit(0, 0)
	}
	if last < sim.Time(99*sim.Microsecond) {
		t.Fatalf("burst did not queue: last completion %v", sim.Duration(last))
	}
	if f.QueueDelay.Max() < 90*sim.Microsecond {
		t.Fatalf("queue delay max = %v, want ~99µs", f.QueueDelay.Max())
	}
}

func TestQueuesAreIndependent(t *testing.T) {
	f := New(Config{Queues: 4, ServiceTime: 10 * sim.Microsecond}, sim.NewRNG(3))
	// Saturate queue 0.
	for i := 0; i < 50; i++ {
		f.Submit(0, 0)
	}
	// Queue 1 is still idle: no queue delay.
	f.Submit(1, 0)
	// The final op's queue delay (on queue 1) must be zero; check via
	// utilization instead: only 2 of 4 queues busy at t=0+.
	u := f.Utilization(1)
	if u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5 (2 of 4 busy)", u)
	}
}

func TestCoreToQueueMapping(t *testing.T) {
	f := New(Config{Queues: 4}, sim.NewRNG(4))
	// Core 5 maps to queue 1; saturating core 1 must delay core 5.
	for i := 0; i < 100; i++ {
		f.Submit(1, 0)
	}
	before := f.QueueDelay.Count()
	f.Submit(5, 0)
	if f.QueueDelay.Count() != before+1 {
		t.Fatal("submit not recorded")
	}
	if f.QueueDelay.Max() == 0 {
		t.Fatal("core 5 did not share core 1's queue backlog")
	}
}

func TestSubmitAsyncSharesQueues(t *testing.T) {
	f := New(Config{Queues: 1, ServiceTime: 5 * sim.Microsecond}, sim.NewRNG(5))
	f.SubmitAsync(0, 0)
	done := f.Submit(0, 0)
	// The sync op had to wait for the async one's occupancy.
	if done < sim.Time(5*sim.Microsecond) {
		t.Fatalf("async op did not occupy the queue: done=%v", sim.Duration(done))
	}
}

func TestUtilizationDrains(t *testing.T) {
	f := New(Config{Queues: 2, ServiceTime: sim.Microsecond}, sim.NewRNG(6))
	f.Submit(0, 0)
	if f.Utilization(0) == 0 {
		t.Fatal("queue not busy immediately after submit")
	}
	if u := f.Utilization(sim.Time(sim.Second)); u != 0 {
		t.Fatalf("utilization after drain = %v, want 0", u)
	}
}

func TestDefaults(t *testing.T) {
	f := New(Config{}, sim.NewRNG(7))
	if f.Queues() != 8 {
		t.Fatalf("default queues = %d, want 8", f.Queues())
	}
	if f.MeanOpLatency() != 4300 {
		t.Fatalf("default mean op latency = %v, want 4.3µs", f.MeanOpLatency())
	}
}
