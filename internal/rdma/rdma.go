// Package rdma models the RDMA fabric that carries remote-memory traffic: a
// set of per-core dispatch queues (the paper's multi-queue I/O design, §4.4)
// in front of a network with the paper's measured 4.3µs average 4KB-op
// latency.
//
// Each queue serializes the wire occupancy of its operations, so a burst of
// prefetches delays the demand fetch that shares the queue — the congestion
// effect behind the paper's observation that Leap's adaptive throttling
// "helps the most by not congesting the RDMA" (§5.3.3). Queues are chosen
// per submitting core, mirroring the per-CPU-core RDMA connections of the
// real system.
package rdma

import (
	"leap/internal/metrics"
	"leap/internal/sim"
)

// Config parameterizes the fabric.
type Config struct {
	// Queues is the number of per-core dispatch queues (default 8).
	Queues int
	// OpLatency is the unloaded one-op completion latency (default: normal
	// around the paper's 4.3µs with modest jitter).
	OpLatency sim.Dist
	// ServiceTime is the per-op wire/NIC occupancy that serializes a queue
	// (default 1µs ≈ a 4KB transfer plus doorbell/WQE setup on 56Gbps
	// InfiniBand).
	ServiceTime sim.Duration
	// StreamTime is the occupancy of each op after the first within one
	// doorbell batch (default 600ns ≈ the bare 4KB wire time): posting n
	// work requests with a single doorbell pays the setup once, so batched
	// ops stream at wire rate while individually-submitted ops pay the full
	// ServiceTime each. Only SubmitBatch uses it.
	StreamTime sim.Duration
}

func (c Config) withDefaults() Config {
	if c.Queues <= 0 {
		c.Queues = 8
	}
	if c.OpLatency == nil {
		c.OpLatency = sim.Normal{Mu: 4300, Sigma: 600, Floor: 2500}
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 1 * sim.Microsecond
	}
	if c.StreamTime <= 0 || c.StreamTime > c.ServiceTime {
		c.StreamTime = 600 * sim.Nanosecond
		if c.StreamTime > c.ServiceTime {
			c.StreamTime = c.ServiceTime
		}
	}
	return c
}

// Fabric is the simulated RDMA network. Not safe for concurrent use.
type Fabric struct {
	cfg    Config
	rng    *sim.RNG
	freeAt []sim.Time // per-queue: when the queue next drains

	// QueueDelay records time spent waiting for the dispatch queue — the
	// congestion signal.
	QueueDelay metrics.Histogram
	ops        int64
}

// New returns a Fabric seeded deterministically.
func New(cfg Config, rng *sim.RNG) *Fabric {
	cfg = cfg.withDefaults()
	return &Fabric{cfg: cfg, rng: rng, freeAt: make([]sim.Time, cfg.Queues)}
}

// Ops reports the total operations carried.
func (f *Fabric) Ops() int64 { return f.ops }

// Queues reports the configured queue count.
func (f *Fabric) Queues() int { return f.cfg.Queues }

// Submit enqueues one 4KB operation on core's dispatch queue at time now and
// returns the completion time. The op waits for the queue to drain, occupies
// it for the service time, and completes after the network latency.
func (f *Fabric) Submit(core int, now sim.Time) (done sim.Time) {
	q := core % len(f.freeAt)
	start := now
	if f.freeAt[q] > start {
		start = f.freeAt[q]
	}
	f.QueueDelay.Observe(start.Sub(now))
	f.freeAt[q] = start.Add(f.cfg.ServiceTime)
	f.ops++
	return start.Add(f.cfg.OpLatency.Sample(f.rng))
}

// SubmitAsync books queue occupancy for a background operation (prefetch or
// writeback) without a waiting requester; the returned time is when the data
// lands.
func (f *Fabric) SubmitAsync(core int, now sim.Time) (done sim.Time) {
	return f.Submit(core, now)
}

// SubmitBatch enqueues n 4KB operations as one doorbell on core's dispatch
// queue: the batch waits for the queue once, pays the per-op setup
// (ServiceTime) once, streams the remaining ops at wire rate (StreamTime),
// and pays one round-trip latency — completion of op i is
// start + latency + i×StreamTime. done is filled with the n completion
// times (allocated when nil or short) and returned. A batch of 1 is exactly
// Submit: same queue accounting, same single latency draw, so depth-1
// callers replay bit-identically against the unbatched path.
func (f *Fabric) SubmitBatch(core, n int, now sim.Time, done []sim.Time) []sim.Time {
	if cap(done) < n {
		done = make([]sim.Time, n)
	}
	done = done[:n]
	q := core % len(f.freeAt)
	start := now
	if f.freeAt[q] > start {
		start = f.freeAt[q]
	}
	f.QueueDelay.Observe(start.Sub(now))
	f.freeAt[q] = start.Add(f.cfg.ServiceTime + sim.Duration(n-1)*f.cfg.StreamTime)
	f.ops += int64(n)
	first := start.Add(f.cfg.OpLatency.Sample(f.rng))
	for i := range done {
		done[i] = first.Add(sim.Duration(i) * f.cfg.StreamTime)
	}
	return done
}

// Utilization reports the fraction of queues still busy at time now — a
// coarse congestion probe used by tests.
func (f *Fabric) Utilization(now sim.Time) float64 {
	busy := 0
	for _, t := range f.freeAt {
		if t > now {
			busy++
		}
	}
	return float64(busy) / float64(len(f.freeAt))
}

// MeanOpLatency reports the configured unloaded mean op latency.
func (f *Fabric) MeanOpLatency() sim.Duration { return f.cfg.OpLatency.Mean() }
