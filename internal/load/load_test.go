package load

import (
	"testing"

	"leap/internal/runtime"
)

func openMem(t testing.TB, opts ...runtime.Option) *runtime.Memory {
	t.Helper()
	mem, err := runtime.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mem.Close() })
	return mem
}

// TestSequentialDeterministic replays one seeded run twice: stats, final
// oracle and final image must match exactly.
func TestSequentialDeterministic(t *testing.T) {
	cfg := Config{Clients: 3, OpsPerClient: 400, PagesPerClient: 64, Seed: 7}
	run := func() (runtime.Stats, []*Stream) {
		mem := openMem(t, runtime.WithSeed(5), runtime.WithCacheCapacity(96))
		res, err := Sequential(mem, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := VerifyFinal(mem, cfg, res.Streams); err != nil {
			t.Fatal(err)
		}
		return mem.Stats(), res.Streams
	}
	sa, oa := run()
	sb, ob := run()
	if sa != sb {
		t.Fatalf("stats diverged across replays:\n%+v\n%+v", sa, sb)
	}
	for i := range oa {
		av, bv := oa[i].Versions(), ob[i].Versions()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("client %d oracle diverged at slot %d: %d vs %d", i, j, av[j], bv[j])
			}
		}
	}
}

// TestDriveMatchesOracle runs the concurrent mode and checks the final
// image against the per-client oracles, and that the per-client operation
// streams are identical to Sequential's (interleaving is the only degree
// of freedom).
func TestDriveMatchesOracle(t *testing.T) {
	cfg := Config{Clients: 4, Goroutines: 4, OpsPerClient: 300, PagesPerClient: 48, Seed: 11}
	mem := openMem(t, runtime.WithSeed(3), runtime.WithCacheCapacity(64))
	res, err := Drive(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFinal(mem, cfg, res.Streams); err != nil {
		t.Fatal(err)
	}

	seqMem := openMem(t, runtime.WithSeed(3), runtime.WithCacheCapacity(64))
	seqRes, err := Sequential(seqMem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Streams {
		cv, sv := res.Streams[i].Versions(), seqRes.Streams[i].Versions()
		for j := range cv {
			if cv[j] != sv[j] {
				t.Fatalf("client %d: Drive and Sequential oracles diverged at slot %d", i, j)
			}
		}
	}
}

// TestMeasureModel pins the closed-loop model's structure: determinism
// across replays, monotone non-decreasing throughput in goroutines, and a
// serial fraction in (0, 1].
func TestMeasureModel(t *testing.T) {
	cfg := Config{Clients: 2, OpsPerClient: 500, PagesPerClient: 128, Seed: 21}
	measure := func() Measurement {
		mem := openMem(t, runtime.WithSeed(9), runtime.WithCacheCapacity(64), runtime.WithQueueDepth(8))
		ms, err := Measure(mem, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	a := measure()
	if b := measure(); a != b {
		t.Fatalf("measurement diverged across replays:\n%+v\n%+v", a, b)
	}
	if a.Faults == 0 || a.Total <= 0 || a.Serial <= 0 || a.Serial > a.Total {
		t.Fatalf("degenerate measurement: %+v", a)
	}
	prev := 0.0
	for g := 1; g <= 16; g *= 2 {
		th := a.Throughput(g)
		if th < prev {
			t.Fatalf("throughput decreased at g=%d: %f < %f", g, th, prev)
		}
		prev = th
	}
	if f := a.SerialFraction(); f <= 0 || f > 1 {
		t.Fatalf("serial fraction %f out of range", f)
	}
}
