package load

import (
	"leap/internal/runtime"
	"leap/internal/sim"
)

// OpOverhead is the CPU cost charged per operation on top of the fault
// latency the runtime reports: the lean data path's entry cost (the §4.2
// figure the paper measures at ~0.27µs), paid by hits and misses alike.
// Without it a fully-resident run would model as infinitely fast.
const OpOverhead = 270 * sim.Nanosecond

// Measurement is a deterministic closed-loop profile of one load run: the
// serialized virtual time the operations cost, split into the CPU-serial
// share (work under the fault-path lock: data-path traversal, cache and
// predictor bookkeeping — one goroutine at a time no matter how many
// drive) and the waitable remainder (remote wire time that concurrent
// faults overlap). Makespan/Throughput project the profile onto g
// goroutines with the work-conserving bound
//
//	makespan(g) = max(Serial, Total/g)
//
// — Amdahl's law over the fault path. The projection is exact for a
// perfectly balanced closed loop and an upper bound otherwise; because it
// is computed from one deterministic run, every figure built on it is
// byte-identical across runs, which real-goroutine timing could never be.
type Measurement struct {
	// Ops is the operations executed; Faults of them paid a fault.
	Ops, Faults int64
	// Total is the serialized virtual time of the run: fault latencies
	// plus OpOverhead per op. Serial is the share that cannot overlap.
	Total, Serial sim.Duration
}

// Measure runs cfg's streams on the calling goroutine (the Sequential
// interleave), recording each operation's virtual-time cost and serial
// share via Memory.LastFault. The Memory must not be driven by any other
// goroutine during the measurement.
func Measure(mem *runtime.Memory, cfg Config) (Measurement, error) {
	cfg = cfg.withDefaults()
	var ms Measurement
	_, ops, err := sequential(mem, cfg, func(*Stream) {
		total, serial := mem.LastFault()
		ms.Total += total + OpOverhead
		ms.Serial += serial + OpOverhead
		if total > 0 {
			ms.Faults++
		}
	})
	ms.Ops = ops
	return ms, err
}

// Makespan models the run's completion time when g goroutines drive the
// closed loop: the waitable work spreads over g workers, the serial work
// does not. Monotonically non-increasing in g.
func (ms Measurement) Makespan(g int) sim.Duration {
	if g < 1 {
		g = 1
	}
	span := ms.Total / sim.Duration(g)
	if span < ms.Serial {
		span = ms.Serial
	}
	return span
}

// Throughput reports modeled operations per virtual second at g
// goroutines. Monotonically non-decreasing in g.
func (ms Measurement) Throughput(g int) float64 {
	span := ms.Makespan(g)
	if span <= 0 {
		return 0
	}
	return float64(ms.Ops) / span.Seconds()
}

// SerialFraction reports the Amdahl serial share of the run's virtual
// time — the scaling ceiling: throughput saturates at Total/Serial times
// the single-goroutine rate.
func (ms Measurement) SerialFraction() float64 {
	if ms.Total <= 0 {
		return 0
	}
	return float64(ms.Serial) / float64(ms.Total)
}
