// Package load is the closed-loop load generator for the leap.Memory
// runtime: M logical clients, each with a private page range and a
// deterministic operation stream (stamped page writes, read-your-writes
// verified reads, cross-client reads), driven three ways —
//
//   - Drive: N real goroutines hammer a shared Memory through per-client
//     handles. Thread interleaving is the scheduler's; per-client program
//     order, the stamp oracle and the final image stay checkable. This is
//     the stress/race/chaos mode.
//   - Sequential: one goroutine executes the same streams in a seeded
//     pseudo-random interleave, verifying read-your-writes after every
//     read. Fully deterministic — a failing seed replays exactly. This is
//     the property-test mode.
//   - Measure: Sequential plus per-operation virtual-latency recording
//     (total and CPU-serial share via Memory.LastFault), feeding the
//     closed-loop concurrency model that `leapbench -fig concurrency`
//     renders. Deterministic, so the figure is byte-identical across runs.
//
// Every stream is a pure function of (Config.Seed, client id): Drive,
// Sequential and Measure issue identical per-client operation sequences,
// only the interleaving differs.
package load

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"leap/internal/core"
	"leap/internal/remote"
	"leap/internal/runtime"
	"leap/internal/sim"
)

// IO is the access surface a stream drives; *runtime.Memory and
// *runtime.Client both satisfy it.
type IO interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
}

// Config sizes a load run.
type Config struct {
	// Clients is the number of logical clients (predictor isolation
	// domains); each owns the page range [id*PagesPerClient,
	// (id+1)*PagesPerClient).
	Clients int
	// Goroutines is the worker count for Drive (client c runs on worker
	// c mod Goroutines, so each client keeps a single-writer program
	// order). Sequential and Measure ignore it.
	Goroutines int
	// OpsPerClient is how many operations each client performs.
	OpsPerClient int
	// PagesPerClient is each client's private range (default 256).
	PagesPerClient int64
	// Seed drives every stream and the Sequential/Measure interleave.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Goroutines <= 0 {
		c.Goroutines = 1
	}
	if c.PagesPerClient <= 0 {
		c.PagesPerClient = 256
	}
	return c
}

// Span reports the total page span the run touches.
func (c Config) Span() int64 { return int64(c.Clients) * c.PagesPerClient }

// Stamp layout: bytes 0..7 page id, 8..15 version, rest a (page, version)-
// keyed pattern. A page whose first 16 bytes are zero was never written.
const stampHeader = 16

// fillStamp writes the stamp image for (page, version) into buf.
func fillStamp(page core.PageID, version uint64, buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(page))
	binary.LittleEndian.PutUint64(buf[8:16], version)
	x := uint64(page)*0x9E3779B97F4A7C15 + version*0xBF58476D1CE4E5B9 + 1
	for i := stampHeader; i < len(buf); i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
}

// checkStamp verifies buf holds exactly the stamp image for (page,
// version); version 0 means never written, i.e. all zeros.
func checkStamp(page core.PageID, version uint64, buf []byte) error {
	if version == 0 {
		for i, b := range buf {
			if b != 0 {
				return fmt.Errorf("page %d: unwritten page has nonzero byte at %d", page, i)
			}
		}
		return nil
	}
	want := make([]byte, len(buf))
	fillStamp(page, version, want)
	for i := range buf {
		if buf[i] != want[i] {
			return fmt.Errorf("page %d: version %d image differs at byte %d (got %#x want %#x; header page=%d version=%d)",
				page, version, i, buf[i], want[i],
				binary.LittleEndian.Uint64(buf[0:8]), binary.LittleEndian.Uint64(buf[8:16]))
		}
	}
	return nil
}

// Stream is one client's deterministic operation sequence plus its oracle:
// the last version this client wrote to each of its pages. A Stream is
// driven by exactly one goroutine at a time.
type Stream struct {
	// Client is the logical client id (also the predictor PID).
	Client int

	cfg      Config
	rng      *sim.RNG
	versions []uint64 // oracle: last written version per own page
	nextSeq  int64    // write cursor through the own range
	writes   int64    // total writes so far (version source)
	done     int      // ops executed
	buf      []byte
}

// NewStream builds client id's stream for cfg.
func NewStream(id int, cfg Config) *Stream {
	cfg = cfg.withDefaults()
	return &Stream{
		Client:   id,
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15),
		versions: make([]uint64, cfg.PagesPerClient),
		buf:      make([]byte, remote.PageSize),
	}
}

// Done reports whether the stream has executed all its operations.
func (s *Stream) Done() bool { return s.done >= s.cfg.OpsPerClient }

// Versions exposes the oracle: the last version written per own page
// (index = page offset within the client's range, 0 = never written). Read
// it only after the stream's driver finished.
func (s *Stream) Versions() []uint64 { return s.versions }

// base is the first page of the client's own range.
func (s *Stream) base() int64 { return int64(s.Client) * s.cfg.PagesPerClient }

// Step executes the stream's next operation against io: a stamped write of
// the next own page (~50%), a verified read-your-writes read of a random
// own page (~30%), or a cross-client read of any page, checked for image
// consistency (~20%). Every operation touches exactly one page,
// page-aligned. It reports an error on I/O failure or a verification
// violation.
func (s *Stream) Step(io IO) error {
	if s.Done() {
		return nil
	}
	s.done++
	r := s.rng.Float64()
	switch {
	case r < 0.5:
		// Write the next own page (round-robin through the range) with a
		// fresh stamp. Versions are globally unique per stream, so a stale
		// read can never alias a fresh one.
		slot := s.nextSeq % s.cfg.PagesPerClient
		s.nextSeq++
		s.writes++
		version := uint64(s.writes)
		page := core.PageID(s.base() + slot)
		fillStamp(page, version, s.buf)
		if _, err := io.WriteAt(s.buf, int64(page)*remote.PageSize); err != nil {
			return fmt.Errorf("client %d: write page %d: %w", s.Client, page, err)
		}
		s.versions[slot] = version
	case r < 0.8:
		// Read-your-writes: a random own page must carry exactly the last
		// version this client wrote (or zeros when never written).
		slot := s.rng.Int63n(s.cfg.PagesPerClient)
		page := core.PageID(s.base() + slot)
		if _, err := io.ReadAt(s.buf, int64(page)*remote.PageSize); err != nil {
			return fmt.Errorf("client %d: read own page %d: %w", s.Client, page, err)
		}
		if err := checkStamp(page, s.versions[slot], s.buf); err != nil {
			return fmt.Errorf("client %d: read-your-writes violation: %w", s.Client, err)
		}
	default:
		// Cross-client read: any page in the run's span. The writer's
		// current version is unknowable from here, but the image must be
		// internally consistent — header page id matching and the body
		// matching the header's version (i.e. no torn page).
		page := core.PageID(s.rng.Int63n(s.cfg.Span()))
		if _, err := io.ReadAt(s.buf, int64(page)*remote.PageSize); err != nil {
			return fmt.Errorf("client %d: cross read page %d: %w", s.Client, page, err)
		}
		hdrPage := binary.LittleEndian.Uint64(s.buf[0:8])
		hdrVersion := binary.LittleEndian.Uint64(s.buf[8:16])
		if hdrPage == 0 && hdrVersion == 0 {
			break // never written (or mid-initialization zeros): fine
		}
		if hdrPage != uint64(page) {
			return fmt.Errorf("client %d: cross read page %d returned page %d's image", s.Client, page, hdrPage)
		}
		if err := checkStamp(page, hdrVersion, s.buf); err != nil {
			return fmt.Errorf("client %d: torn page: %w", s.Client, err)
		}
	}
	return nil
}

// Result summarizes a completed run.
type Result struct {
	// Ops is the total operations executed.
	Ops int64
	// Streams holds every client's stream (oracle included) for VerifyFinal.
	Streams []*Stream
}

// Drive runs cfg with real concurrency: Goroutines workers share mem,
// worker w driving the streams of clients {c : c mod Goroutines == w}
// round-robin through per-client handles. It returns after every stream
// finished (or the first error). The interleaving is nondeterministic; the
// per-client oracles are not.
func Drive(mem *runtime.Memory, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	streams := make([]*Stream, cfg.Clients)
	for i := range streams {
		streams[i] = NewStream(i, cfg)
	}
	workers := cfg.Goroutines
	if workers > cfg.Clients {
		workers = cfg.Clients
	}
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []*Stream
			var ios []*runtime.Client
			for c := w; c < cfg.Clients; c += workers {
				mine = append(mine, streams[c])
				ios = append(ios, mem.Client(c))
			}
			for {
				active := false
				for i, s := range mine {
					if s.Done() {
						continue
					}
					active = true
					if err := s.Step(ios[i]); err != nil {
						errs <- err
						return
					}
				}
				if !active {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	res := Result{Ops: int64(cfg.Clients) * int64(cfg.OpsPerClient), Streams: streams}
	return res, <-errs
}

// DriveTimed runs Drive and reports the wall-clock duration of the run —
// the real-goroutine throughput measurement mode behind the concurrency
// figure's measured block. Unlike everything else in this package the
// duration is wall time, not virtual time: it depends on the machine, the
// scheduler and GOMAXPROCS, and is NOT deterministic across runs. Keep it
// out of anything gated on byte-identical output (the figure renders it
// under a strippable "  measured" prefix).
func DriveTimed(mem *runtime.Memory, cfg Config) (Result, time.Duration, error) {
	start := time.Now()
	res, err := Drive(mem, cfg)
	return res, time.Since(start), err
}

// Sequential runs cfg on the calling goroutine: the same per-client
// streams, interleaved by a seeded scheduler (a deterministic stand-in for
// thread scheduling), every read verified as it happens. A run is a pure
// function of (mem's options, cfg) — rerun with the same seed to replay a
// failure exactly.
func Sequential(mem *runtime.Memory, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res, _, err := sequential(mem, cfg, nil)
	return res, err
}

// sequential is Sequential with an optional per-op observer (Measure's
// recording hook), called after each Step with the acting stream.
func sequential(mem *runtime.Memory, cfg Config, observe func(*Stream)) (Result, int64, error) {
	streams := make([]*Stream, cfg.Clients)
	ios := make([]*runtime.Client, cfg.Clients)
	for i := range streams {
		streams[i] = NewStream(i, cfg)
		ios[i] = mem.Client(i)
	}
	if cfg.OpsPerClient <= 0 {
		return Result{Streams: streams}, 0, nil
	}
	sched := sim.NewRNG(cfg.Seed ^ 0xC0FFEE)
	remaining := cfg.Clients
	var ops int64
	for remaining > 0 {
		c := sched.Intn(cfg.Clients)
		s := streams[c]
		if s.Done() {
			continue
		}
		if err := s.Step(ios[c]); err != nil {
			return Result{Ops: ops, Streams: streams}, ops, err
		}
		ops++
		if s.Done() {
			remaining--
		}
		if observe != nil {
			observe(s)
		}
	}
	return Result{Ops: ops, Streams: streams}, ops, nil
}

// VerifyFinal checks the final image against the sequential oracle: after
// the run (and a Flush), every page of every client's range must hold
// exactly the last version its owning stream wrote — the "no acked write
// lost, no stale image resurrected" gate. Reads go through mem.ReadAt.
func VerifyFinal(mem *runtime.Memory, cfg Config, streams []*Stream) error {
	cfg = cfg.withDefaults()
	buf := make([]byte, remote.PageSize)
	for _, s := range streams {
		for slot := int64(0); slot < cfg.PagesPerClient; slot++ {
			page := core.PageID(s.base() + slot)
			if _, err := mem.ReadAt(buf, int64(page)*remote.PageSize); err != nil {
				return fmt.Errorf("final verify: read page %d: %w", page, err)
			}
			if err := checkStamp(page, s.versions[slot], buf); err != nil {
				return fmt.Errorf("final verify: client %d: %w", s.Client, err)
			}
		}
	}
	return nil
}
