package chaos

import (
	"encoding/binary"
	"fmt"
	"strings"

	"leap/internal/core"
	"leap/internal/metrics"
	"leap/internal/rdma"
	"leap/internal/remote"
	"leap/internal/sim"
)

// Config sizes a chaos run. The zero value of every field selects a
// sensible default.
type Config struct {
	// Agents is the cluster size (default 4; Library schedules need ≥4).
	Agents int
	// SlabPages is the slab granularity in pages (default 16 — small slabs
	// keep repair copies cheap and placements numerous).
	SlabPages int
	// Replicas per slab (default 2, the paper's replication factor).
	Replicas int
	// Pages is the working-set size the workload touches (default 256).
	Pages int64
	// Ops is the number of workload operations to run (default 4000).
	Ops int
	// WriteFrac is the probability an op is a write (default 0.35).
	WriteFrac float64
	// OpGap is the mean virtual-time gap between ops, exponentially
	// distributed (default 5µs).
	OpGap sim.Duration
	// FailDetect is the virtual time burned by one failed transport
	// attempt before failing over — the timeout/err-detection cost that
	// shapes the failover-latency CDF (default 30µs).
	FailDetect sim.Duration
	// RepairEvery, when positive, runs Host.RepairSlabs on a virtual-time
	// period — the background repair daemon whose traffic interferes with
	// the workload through the shared fabric queues.
	RepairEvery sim.Duration
	// QueueDepth selects the datapath: 1 (the default) issues every page
	// operation synchronously; >1 groups up to QueueDepth operations
	// through the host's async ticket engine and drains them with one
	// doorbell per agent (batched wire frames). Fault events still fire
	// between enqueues, so crashes land while batches are in flight — the
	// invariants must hold regardless.
	QueueDepth int
	// Seed drives everything: workload, placement, fault decisions, fabric
	// jitter.
	Seed uint64
	// Fabric parameterizes the simulated RDMA network ops are charged to.
	Fabric rdma.Config
}

func (c Config) withDefaults() Config {
	if c.Agents <= 0 {
		c.Agents = 4
	}
	if c.SlabPages <= 0 {
		c.SlabPages = 16
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Pages <= 0 {
		c.Pages = 256
	}
	if c.Ops <= 0 {
		c.Ops = 4000
	}
	if c.WriteFrac <= 0 {
		c.WriteFrac = 0.35
	}
	if c.OpGap <= 0 {
		c.OpGap = 5 * sim.Microsecond
	}
	if c.FailDetect <= 0 {
		c.FailDetect = 30 * sim.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1
	}
	return c
}

// Horizon estimates the virtual time a run spans (ops × mean gap), the
// natural scale for Library schedules.
func (c Config) Horizon() sim.Duration {
	c = c.withDefaults()
	return sim.Duration(c.Ops) * c.OpGap
}

// Report is the outcome of one chaos run: throughput/latency accounting,
// failure and repair activity, and the invariant violations (which must be
// zero for every shipped schedule).
type Report struct {
	Schedule string
	Ops      int64
	Reads    int64
	Writes   int64

	// WriteFailures counts host-level write errors (no replica reachable).
	WriteFailures int64
	// FailoverReads counts successful reads that needed more than one
	// transport attempt — served by a replica after the primary failed.
	FailoverReads int64
	// DegradedReads counts reads that failed or returned stale bytes while
	// no acknowledged holder of the page was reachable — the window where
	// staleness is permitted (last-resort reads) rather than a bug.
	DegradedReads int64

	// ScaleUps / ScaleDowns count elastic transitions the schedule drove:
	// agents provisioned into the pool and agents gracefully drained out.
	ScaleUps   int64
	ScaleDowns int64

	// FreshnessViolations counts reads that failed or returned stale bytes
	// even though an acknowledged holder WAS reachable. Always a bug.
	FreshnessViolations int64
	// LostPages counts pages whose final post-repair readback did not
	// return the last acked write. Always a bug.
	LostPages int64
	// BarrierViolations counts repair barriers (repairs run with every
	// agent healthy) that left under-replicated slabs or degraded pages.
	BarrierViolations int64

	// RepairRounds / RepairedSlabs / RepairErrors describe repair activity;
	// RepairTime is the virtual time repair traffic occupied.
	RepairRounds  int64
	RepairedSlabs int64
	RepairErrors  int64
	RepairTime    sim.Duration

	// Latency distributions in virtual time.
	ReadLatency     metrics.Histogram
	WriteLatency    metrics.Histogram
	FailoverLatency metrics.Histogram

	// Failovers/Repairs mirror the host's own counters for cross-checking.
	HostStats remote.HostStats
	// Elapsed is the total virtual time of the run.
	Elapsed sim.Duration
}

// Violations sums the invariant breaches: zero for a correct service under
// a disciplined schedule.
func (r *Report) Violations() int64 {
	return r.FreshnessViolations + r.LostPages + r.BarrierViolations
}

// String renders a compact deterministic summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %-16s ops=%d (r=%d w=%d) elapsed=%v\n",
		r.Schedule, r.Ops, r.Reads, r.Writes, r.Elapsed)
	fmt.Fprintf(&b, "  read p50=%v p99=%v  write p50=%v  failovers=%d (p99=%v)\n",
		r.ReadLatency.Percentile(50), r.ReadLatency.Percentile(99),
		r.WriteLatency.Percentile(50), r.FailoverReads, r.FailoverLatency.Percentile(99))
	fmt.Fprintf(&b, "  repairs: rounds=%d slabs=%d errs=%d time=%v  degraded-reads=%d write-failures=%d\n",
		r.RepairRounds, r.RepairedSlabs, r.RepairErrors, r.RepairTime, r.DegradedReads, r.WriteFailures)
	fmt.Fprintf(&b, "  violations: freshness=%d lost=%d barrier=%d\n",
		r.FreshnessViolations, r.LostPages, r.BarrierViolations)
	if r.ScaleUps+r.ScaleDowns > 0 {
		fmt.Fprintf(&b, "  elastic: scale-ups=%d scale-downs=%d\n", r.ScaleUps, r.ScaleDowns)
	}
	return b.String()
}

// pageState is the harness's model of one page: the version of the last
// acked write and the agents known to hold it.
type pageState struct {
	version uint32
	holders []int
}

// Cluster owns a remote.Host, its agents (optionally in-process) and the
// fault transports between them, plus the virtual clock and fabric that
// make runs deterministic. Not safe for concurrent use: determinism comes
// from single-threaded execution over virtual time.
type Cluster struct {
	cfg    Config
	clock  *sim.Clock
	rng    *sim.RNG // workload stream
	fabric *rdma.Fabric
	host   *remote.Host
	agents []*remote.Agent // nil entries when transports are external
	faults []*remote.FaultTransport

	// Per-op virtual-time cursor, advanced by the transport observer.
	cursor    sim.Time
	callsInOp int

	model      map[core.PageID]*pageState
	written    []core.PageID // model keys in first-write order
	lastRepair sim.Time
	report     Report
	buf        []byte
	ran        bool

	// Elastic state: the RNG feeding fault transports of agents provisioned
	// mid-run (created lazily off a dedicated seed so static schedules keep
	// their exact historical RNG streams), the agents drained out of the
	// pool, and the active gradual-slowdown ramps.
	scaleRNG *sim.RNG
	drained  map[int]bool
	ramps    []rampState

	// Batched-mode state (QueueDepth > 1): the open doorbell group, its
	// per-page bookkeeping, and a read-buffer pool.
	group       []groupOp
	groupWrites map[core.PageID]uint32 // page → version queued in this group
	groupReads  map[core.PageID]bool
	bufPool     [][]byte
	doneBuf     []sim.Time
}

// rampDuration is the virtual time a SlowRamp takes to reach its peak
// latency; shorter windows simply stop partway up.
const rampDuration = 1 * sim.Millisecond

// rampState is one in-progress SlowRamp.
type rampState struct {
	agent int
	peak  sim.Duration
	start sim.Time
}

// groupOp is one enqueued-but-unflushed operation in batched mode.
type groupOp struct {
	page    core.PageID
	isWrite bool
	version uint32 // writes: queued version; reads: expected version
	buf     []byte // reads: destination
	ticket  *remote.Ticket
	dirty   bool // read served immediately from a queued write's buffer
	isNew   bool // writes: page had never been written before
}

// New builds a cluster of cfg.Agents in-process agents behind fault
// transports.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	agents := make([]*remote.Agent, cfg.Agents)
	inner := make([]remote.Transport, cfg.Agents)
	for i := range agents {
		agents[i] = remote.NewAgent(cfg.SlabPages, 0)
		inner[i] = remote.NewInProc(agents[i])
	}
	c, err := NewWithTransports(cfg, inner)
	if err != nil {
		return nil, err
	}
	c.agents = agents
	return c, nil
}

// NewWithTransports builds a cluster over caller-supplied transports (e.g.
// TCP connections to real agent processes), wrapping each in a
// FaultTransport. Restart events cannot wipe external agents' memory; the
// host-side purge still keeps reads correct.
func NewWithTransports(cfg Config, inner []remote.Transport) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if len(inner) != cfg.Agents {
		return nil, fmt.Errorf("chaos: %d transports for %d agents", len(inner), cfg.Agents)
	}
	base := sim.NewRNG(cfg.Seed)
	c := &Cluster{
		cfg:         cfg,
		clock:       &sim.Clock{},
		rng:         base.Fork(1),
		fabric:      rdma.New(cfg.Fabric, base.Fork(2)),
		agents:      make([]*remote.Agent, cfg.Agents),
		faults:      make([]*remote.FaultTransport, cfg.Agents),
		model:       make(map[core.PageID]*pageState),
		buf:         make([]byte, remote.PageSize),
		groupWrites: make(map[core.PageID]uint32),
		groupReads:  make(map[core.PageID]bool),
	}
	transports := make([]remote.Transport, cfg.Agents)
	for i, tr := range inner {
		ft := remote.NewFaultTransport(i, tr, base.Fork(0x100+uint64(i)))
		ft.SetObserver(c.observe)
		c.faults[i] = ft
		transports[i] = ft
	}
	host, err := remote.NewHost(remote.HostConfig{
		SlabPages:  cfg.SlabPages,
		Replicas:   cfg.Replicas,
		QueueDepth: cfg.QueueDepth,
		Seed:       base.Uint64(),
	}, transports)
	if err != nil {
		return nil, err
	}
	c.host = host
	return c, nil
}

// Host exposes the cluster's host for inspection.
func (c *Cluster) Host() *remote.Host { return c.host }

// Faults exposes the per-agent fault transports (for custom scripting).
func (c *Cluster) Faults() []*remote.FaultTransport { return c.faults }

// observe charges one transport call to the fabric (or the failure-detect
// timeout) on the current op's virtual-time cursor. A batched frame is one
// doorbell: it pays the round-trip latency once and per-page service time,
// so the cursor lands on the batch's last completion.
func (c *Cluster) observe(o remote.CallObservation) {
	c.callsInOp++
	if o.Injected {
		c.cursor = c.cursor.Add(c.cfg.FailDetect)
		return
	}
	c.doneBuf = c.fabric.SubmitBatch(o.Agent, o.Pages, c.cursor, c.doneBuf)
	c.cursor = c.doneBuf[len(c.doneBuf)-1]
	if o.Extra > 0 {
		c.cursor = c.cursor.Add(o.Extra)
	}
}

// timed runs f with the cursor rebased to now, advances the clock to the
// op's completion and returns its virtual latency.
func (c *Cluster) timed(f func() error) (sim.Duration, int, error) {
	c.cursor = c.clock.Now()
	c.callsInOp = 0
	err := f()
	lat := c.cursor.Sub(c.clock.Now())
	c.clock.AdvanceTo(c.cursor)
	return lat, c.callsInOp, err
}

// fill writes the deterministic page payload for (page, version) into buf.
func fill(buf []byte, page core.PageID, version uint32) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(page))
	binary.LittleEndian.PutUint32(buf[8:12], version)
	b := byte(uint64(page)*31 + uint64(version)*7 + 13)
	for i := 12; i < len(buf); i++ {
		buf[i] = b
	}
}

// fresh reports whether buf holds exactly the (page, version) payload.
func fresh(buf []byte, page core.PageID, version uint32) bool {
	if binary.LittleEndian.Uint64(buf[0:8]) != uint64(page) ||
		binary.LittleEndian.Uint32(buf[8:12]) != version {
		return false
	}
	b := byte(uint64(page)*31 + uint64(version)*7 + 13)
	for i := 12; i < len(buf); i += 256 {
		if buf[i] != b {
			return false
		}
	}
	return buf[len(buf)-1] == b
}

// holderReachable reports whether any agent known to hold page's latest
// bytes is currently reachable.
func (c *Cluster) holderReachable(st *pageState) bool {
	for _, idx := range st.holders {
		if c.faults[idx].Reachable() {
			return true
		}
	}
	return false
}

// refreshHolders re-derives every tracked page's holder set from the
// host's acknowledgment bookkeeping (repair extends it as it re-copies).
func (c *Cluster) refreshHolders() {
	for _, page := range c.written {
		c.model[page].holders = c.host.AckedReplicas(page)
	}
}

// apply executes one schedule event at the (already advanced) clock.
func (c *Cluster) apply(e Event) error {
	if e.Kind != Repair && e.Kind != ScaleUp && (e.Agent < 0 || e.Agent >= len(c.faults)) {
		return fmt.Errorf("chaos: event %q targets agent %d of %d", e, e.Agent, len(c.faults))
	}
	// Fault dimensions compose per-field, so overlapping windows on one
	// agent (e.g. a flaky phase inside a slow phase) end independently.
	// Crash and Restart are the exceptions: a crashed process takes its
	// slowness/flakiness down with it, and a restarted one comes back clean.
	update := func(agent int, f func(*remote.FaultMode)) {
		m := c.faults[agent].Mode()
		f(&m)
		c.faults[agent].SetMode(m)
	}
	switch e.Kind {
	case Crash:
		c.faults[e.Agent].SetMode(remote.FaultMode{Crashed: true})
		return c.host.MarkFailed(e.Agent)
	case Restart:
		return c.restart(e.Agent)
	case Partition:
		update(e.Agent, func(m *remote.FaultMode) { m.Partitioned = true })
	case Heal:
		update(e.Agent, func(m *remote.FaultMode) { m.Partitioned = false })
	case SlowStart:
		update(e.Agent, func(m *remote.FaultMode) { m.ExtraLatency = e.Extra })
	case SlowEnd:
		c.dropRamp(e.Agent)
		update(e.Agent, func(m *remote.FaultMode) { m.ExtraLatency = 0 })
	case SlowRamp:
		c.dropRamp(e.Agent)
		c.ramps = append(c.ramps, rampState{agent: e.Agent, peak: e.Extra, start: c.clock.Now()})
	case FlakyStart:
		update(e.Agent, func(m *remote.FaultMode) { m.WriteFailProb = e.Prob })
	case FlakyEnd:
		update(e.Agent, func(m *remote.FaultMode) { m.WriteFailProb = 0 })
	case Repair:
		c.runRepair()
	case ScaleUp:
		return c.scaleUp()
	case ScaleDown:
		return c.scaleDown(e.Agent)
	}
	return nil
}

// scaleUp provisions a fresh in-process agent at the next free index, adds
// it to the host's placement pool and rebalances its rendezvous share onto
// it under virtual-time accounting. The new agent's fault-decision RNG comes
// from a dedicated stream (seeded off Config.Seed) so provisioning never
// perturbs the workload, fabric or static-agent streams — static schedules
// replay bit-identically whether or not the elastic machinery exists.
func (c *Cluster) scaleUp() error {
	idx := len(c.faults)
	if c.scaleRNG == nil {
		c.scaleRNG = sim.NewRNG(c.cfg.Seed ^ 0xe1a57ec)
	}
	ag := remote.NewAgent(c.cfg.SlabPages, 0)
	ft := remote.NewFaultTransport(idx, remote.NewInProc(ag), c.scaleRNG.Fork(uint64(idx)))
	ft.SetObserver(c.observe)
	c.agents = append(c.agents, ag)
	c.faults = append(c.faults, ft)
	if got := c.host.AddAgent(ft); got != idx {
		return fmt.Errorf("chaos: scale-up expected index %d, host assigned %d", idx, got)
	}
	_, _, err := c.timed(func() error {
		_, rerr := c.host.Rebalance()
		return rerr
	})
	c.refreshHolders()
	c.report.ScaleUps++
	return err
}

// scaleDown gracefully drains agent idx: Retire it out of the rendezvous
// ranking, Rebalance its slabs onto the survivors (the retiree stays a live
// copy source throughout, so no fresh copy is ever lost), then PurgeAgent.
// A drain that would leave fewer live agents than the replication factor is
// a schedule error.
func (c *Cluster) scaleDown(idx int) error {
	if c.drained[idx] {
		return fmt.Errorf("chaos: scaledown %d: agent already drained", idx)
	}
	live := 0
	for i, ft := range c.faults {
		if i != idx && !c.drained[i] && !ft.Mode().Crashed {
			live++
		}
	}
	if live < c.cfg.Replicas {
		return fmt.Errorf("chaos: scaledown %d would leave %d live agents for %d replicas",
			idx, live, c.cfg.Replicas)
	}
	if err := c.host.Retire(idx); err != nil {
		return err
	}
	_, _, err := c.timed(func() error {
		_, rerr := c.host.Rebalance()
		return rerr
	})
	if err != nil {
		// Roll the drain back: the agent still holds everything it held.
		_ = c.host.Reinstate(idx)
		return fmt.Errorf("chaos: scaledown %d: rebalance: %w", idx, err)
	}
	if _, err := c.host.PurgeAgent(idx); err != nil {
		return err
	}
	if c.drained == nil {
		c.drained = make(map[int]bool)
	}
	c.drained[idx] = true
	c.refreshHolders()
	c.report.ScaleDowns++
	return nil
}

// dropRamp removes agent idx's active ramp, if any.
func (c *Cluster) dropRamp(idx int) {
	for i, r := range c.ramps {
		if r.agent == idx {
			c.ramps = append(c.ramps[:i], c.ramps[i+1:]...)
			return
		}
	}
}

// stepRamps advances every active SlowRamp to the latency its elapsed time
// calls for: peak × min(1, elapsed/rampDuration). Called once per workload
// op; with no ramps active it is a no-op, so non-elastic runs are untouched.
func (c *Cluster) stepRamps() {
	now := c.clock.Now()
	for _, r := range c.ramps {
		frac := float64(now.Sub(r.start)) / float64(rampDuration)
		if frac > 1 {
			frac = 1
		}
		target := sim.Duration(float64(r.peak) * frac)
		m := c.faults[r.agent].Mode()
		if m.ExtraLatency != target {
			m.ExtraLatency = target
			c.faults[r.agent].SetMode(m)
		}
	}
}

// restart brings a crashed agent back empty and rejoins it.
func (c *Cluster) restart(idx int) error {
	if c.agents[idx] != nil {
		c.agents[idx].Reset()
	}
	if _, err := c.host.PurgeAgent(idx); err != nil {
		return err
	}
	if err := c.host.MarkRecovered(idx); err != nil {
		return err
	}
	c.faults[idx].SetMode(remote.FaultMode{})
	c.refreshHolders()
	return nil
}

// runRepair invokes the host's repair path under virtual-time accounting
// and, when the whole cluster is healthy (a barrier), asserts that the
// replication factor and page freshness were fully restored.
func (c *Cluster) runRepair() {
	healthy := true
	for _, ft := range c.faults {
		m := ft.Mode()
		if m.Crashed || m.Partitioned || m.WriteFailProb > 0 {
			healthy = false
			break
		}
	}
	var repaired int
	lat, _, err := c.timed(func() error {
		var rerr error
		repaired, rerr = c.host.RepairSlabs()
		return rerr
	})
	c.report.RepairRounds++
	c.report.RepairedSlabs += int64(repaired)
	c.report.RepairTime += lat
	if err != nil {
		c.report.RepairErrors++
	}
	c.refreshHolders()
	if healthy {
		if err != nil || c.host.UnderReplicated() > 0 || c.host.DegradedPages() > 0 {
			c.report.BarrierViolations++
		}
	}
	c.lastRepair = c.clock.Now()
}

// doWrite performs one model-checked write.
func (c *Cluster) doWrite(page core.PageID) {
	st := c.model[page]
	version := uint32(1)
	if st != nil {
		version = st.version + 1
	}
	fill(c.buf, page, version)
	lat, _, err := c.timed(func() error { return c.host.WritePage(page, c.buf) })
	c.report.Writes++
	if err != nil {
		// Unacked write: the model keeps the previous version.
		c.report.WriteFailures++
		return
	}
	c.report.WriteLatency.Observe(lat)
	if st == nil {
		st = &pageState{}
		c.model[page] = st
		c.written = append(c.written, page)
	}
	st.version = version
	st.holders = c.host.AckedReplicas(page)
}

// doRead performs one model-checked read.
func (c *Cluster) doRead(page core.PageID) {
	st := c.model[page]
	lat, calls, err := c.timed(func() error { return c.host.ReadPage(page, c.buf) })
	c.report.Reads++
	reachable := c.holderReachable(st)
	switch {
	case err != nil:
		if reachable {
			c.report.FreshnessViolations++
		} else {
			c.report.DegradedReads++
		}
	case !fresh(c.buf, page, st.version):
		if reachable {
			c.report.FreshnessViolations++
		} else {
			c.report.DegradedReads++
		}
	default:
		c.report.ReadLatency.Observe(lat)
		if calls > 1 {
			c.report.FailoverReads++
			c.report.FailoverLatency.Observe(lat)
		}
	}
}

// readBuf takes a page buffer off the pool.
func (c *Cluster) readBuf() []byte {
	if n := len(c.bufPool); n > 0 {
		buf := c.bufPool[n-1]
		c.bufPool = c.bufPool[:n-1]
		return buf
	}
	return make([]byte, remote.PageSize)
}

// enqueueWrite queues one model-checked write into the open doorbell group.
// A second write to a page already queued supersedes it (last writer wins),
// exactly as the host engine promises.
func (c *Cluster) enqueueWrite(page core.PageID) {
	st := c.model[page]
	version := uint32(1)
	if st != nil {
		version = st.version + 1
	}
	if v, ok := c.groupWrites[page]; ok {
		version = v + 1
	}
	fill(c.buf, page, version)
	t := c.host.WritePageAsync(page, c.buf)
	c.group = append(c.group, groupOp{
		page: page, isWrite: true, version: version, ticket: t, isNew: st == nil,
	})
	c.groupWrites[page] = version
	c.report.Writes++
}

// enqueueRead queues one model-checked read. A read of a page with a queued
// write in the same group completes immediately from the dirty buffer
// (read-your-writes); its expectation is the queued version.
func (c *Cluster) enqueueRead(page core.PageID) {
	op := groupOp{page: page, buf: c.readBuf()}
	if v, ok := c.groupWrites[page]; ok {
		op.version = v
		op.dirty = true
	} else {
		op.version = c.model[page].version
	}
	op.ticket = c.host.ReadPageAsync(page, op.buf)
	c.group = append(c.group, op)
	c.groupReads[page] = true
	c.report.Reads++
}

// flushGroup rings the doorbell: it drains the host's queues under
// virtual-time accounting and resolves every queued operation against the
// model. The whole group shares one measured latency (the ops complete
// together at doorbell completion); failover counting uses the host's own
// counter delta across the flush.
func (c *Cluster) flushGroup() {
	if len(c.group) == 0 {
		return
	}
	failovers0 := c.host.Stats().Failovers
	lat, _, _ := c.timed(func() error { return c.host.Flush() })

	// Writes first: bring the model's versions and holder sets up to date
	// before judging reads.
	for _, op := range c.group {
		if !op.isWrite {
			continue
		}
		if err := op.ticket.Err(); err != nil {
			c.report.WriteFailures++
			continue
		}
		st := c.model[op.page]
		if st == nil {
			st = &pageState{}
			c.model[op.page] = st
			c.written = append(c.written, op.page)
		}
		if op.version > st.version {
			st.version = op.version
		}
		st.holders = c.host.AckedReplicas(op.page)
		c.report.WriteLatency.Observe(lat)
	}
	for _, op := range c.group {
		if op.isWrite {
			continue
		}
		st := c.model[op.page]
		err := op.ticket.Err()
		ok := err == nil && fresh(op.buf, op.page, op.version)
		switch {
		case ok:
			c.report.ReadLatency.Observe(lat)
		case op.dirty:
			// A dirty read is served host-locally; it cannot legitimately
			// miss its own queued bytes.
			c.report.FreshnessViolations++
		case st != nil && c.holderReachable(st):
			c.report.FreshnessViolations++
		default:
			c.report.DegradedReads++
		}
		c.bufPool = append(c.bufPool, op.buf)
	}
	if d := c.host.Stats().Failovers - failovers0; d > 0 {
		c.report.FailoverReads += d
		for i := int64(0); i < d; i++ {
			c.report.FailoverLatency.Observe(lat)
		}
	}
	c.group = c.group[:0]
	clear(c.groupWrites)
	clear(c.groupReads)
}

// Run executes the workload under the schedule and returns the report. The
// run ends with a full heal + repair barrier and a complete readback, so
// "zero acked-write losses" is checked against every page ever written.
//
// A Cluster is single-use: the clock, fabric queues and page model all
// carry the run's history, so a second Run is rejected — build a fresh
// Cluster per schedule.
func (c *Cluster) Run(sched Schedule) (*Report, error) {
	if c.ran {
		return nil, fmt.Errorf("chaos: Cluster is single-use; build a new one per Run")
	}
	// Scale-ups grow the pool mid-run, so the static bound is the initial
	// size plus every provisioned agent; apply() still rejects an event that
	// targets an index before its scale-up has happened.
	if maxA, limit := sched.MaxAgent(), c.cfg.Agents+sched.ScaleUps(); maxA >= limit {
		return nil, fmt.Errorf("chaos: schedule %q needs agent %d, cluster has %d",
			sched.Name, maxA, limit)
	}
	c.ran = true
	c.report = Report{Schedule: sched.Name}
	batched := c.cfg.QueueDepth > 1
	events := sched.sorted()
	ei := 0
	for op := 0; op < c.cfg.Ops; op++ {
		gap := sim.Duration(c.rng.ExpFloat64() * float64(c.cfg.OpGap))
		next := c.clock.Now().Add(gap)
		for ei < len(events) && sim.Time(0).Add(events[ei].At) <= next {
			c.clock.AdvanceTo(sim.Time(0).Add(events[ei].At))
			// Fault events deliberately land between enqueues — a crash
			// here hits a batch in flight. Repair is host maintenance, so
			// it drains the doorbell first.
			if events[ei].Kind == Repair {
				c.flushGroup()
			}
			if err := c.apply(events[ei]); err != nil {
				return nil, err
			}
			ei++
		}
		c.clock.AdvanceTo(next)
		if len(c.ramps) > 0 {
			c.stepRamps()
		}
		if c.cfg.RepairEvery > 0 && c.clock.Now().Sub(c.lastRepair) >= c.cfg.RepairEvery {
			c.flushGroup()
			c.runRepair()
		}
		c.report.Ops++
		page := core.PageID(c.rng.Int63n(c.cfg.Pages))
		if len(c.written) == 0 || c.rng.Float64() < c.cfg.WriteFrac {
			if !batched {
				c.doWrite(page)
			} else {
				// A write behind a queued wire read of the same page would
				// make the read's expected version ambiguous (flush order
				// vs failover order); draining first keeps the model exact.
				if c.groupReads[page] {
					c.flushGroup()
				}
				c.enqueueWrite(page)
			}
		} else {
			target := c.written[c.rng.Intn(len(c.written))]
			if !batched {
				c.doRead(target)
			} else {
				c.enqueueRead(target)
			}
		}
		if batched && len(c.group) >= c.cfg.QueueDepth {
			c.flushGroup()
		}
	}
	c.flushGroup()
	// Drain any schedule tail, then close with a full heal + barrier.
	for ; ei < len(events); ei++ {
		c.clock.AdvanceTo(sim.Time(0).Add(events[ei].At))
		if err := c.apply(events[ei]); err != nil {
			return nil, err
		}
	}
	for i, ft := range c.faults {
		if ft.Mode().Crashed {
			if err := c.restart(i); err != nil {
				return nil, err
			}
		} else {
			ft.SetMode(remote.FaultMode{})
		}
	}
	c.runRepair()
	// Final verification: every page ever acked must read back its last
	// written value.
	for _, page := range c.written {
		st := c.model[page]
		_, _, err := c.timed(func() error { return c.host.ReadPage(page, c.buf) })
		if err != nil || !fresh(c.buf, page, st.version) {
			c.report.LostPages++
		}
	}
	c.report.HostStats = c.host.Stats()
	c.report.Elapsed = c.clock.Now().Sub(0)
	out := c.report
	return &out, nil
}
