package chaos

import (
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"leap/internal/sim"
)

// elasticCase runs one randomized elastic schedule — fault windows plus
// scale-up/scale-down/slow-ramp transitions — against a fresh cluster.
// Everything derives from caseSeed, so a failure reproduces from the seed.
func elasticCase(caseSeed uint64, ops, windows int) (*Report, Schedule, error) {
	cfg := Config{
		Agents:    4 + int(caseSeed%3), // 4–6 agents, room for drains
		SlabPages: 4,
		Pages:     48,
		Ops:       ops,
		WriteFrac: 0.45,
		Seed:      caseSeed,
	}
	sched := RandomSchedule(caseSeed^0xe1a57ec5, GenConfig{
		Agents:     cfg.Agents,
		Horizon:    cfg.Horizon(),
		MaxWindows: windows,
		Elastic:    true,
	})
	c, err := New(cfg)
	if err != nil {
		return nil, sched, err
	}
	rep, err := c.Run(sched)
	return rep, sched, err
}

// shrinkElastic reduces a failing elastic case as shrink does for the
// static suite: halve the op count, then trim windows, while it still fails.
func shrinkElastic(t *testing.T, caseSeed uint64, ops, windows int) (int, int) {
	t.Helper()
	fails := func(o, w int) bool {
		rep, _, err := elasticCase(caseSeed, o, w)
		return err != nil || rep.Violations() != 0
	}
	for ops > 25 && fails(ops/2, windows) {
		ops /= 2
	}
	for windows > 1 && fails(ops, windows-1) {
		windows--
	}
	return ops, windows
}

// TestHostPropertyElasticSchedules extends the randomized property suite to
// elastic clusters: under ANY generated interleaving of workload, faults,
// repairs, agent provisioning (scale-up + rebalance), graceful drains
// (retire → rebalance → purge) and gradual slow-ramps, the PR-2 invariants
// must still hold — no read misses the freshest acked value while a holder
// is reachable, every healthy-cluster repair barrier restores the
// replication factor, and every acked write survives to the final readback.
//
// ≥1000 cases run even under -short. Replay one case with
// LEAP_CHAOS_SEED=<seed> go test -run TestHostPropertyElasticSchedules.
func TestHostPropertyElasticSchedules(t *testing.T) {
	const ops, windows = 120, 5
	if env := os.Getenv("LEAP_CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("bad LEAP_CHAOS_SEED: %v", err)
		}
		runElasticCase(t, seed, ops, windows)
		return
	}
	cases := 2000
	if testing.Short() {
		cases = 1000
	}
	for i := 0; i < cases; i++ {
		runElasticCase(t, 0xE1A5<<20|uint64(i), ops, windows)
	}
}

func runElasticCase(t *testing.T, seed uint64, ops, windows int) {
	t.Helper()
	rep, sched, err := elasticCase(seed, ops, windows)
	if err != nil {
		t.Fatalf("case seed=%#x: run error: %v\nschedule:\n%s", seed, err, sched)
	}
	if rep.Violations() == 0 {
		return
	}
	sOps, sWindows := shrinkElastic(t, seed, ops, windows)
	srep, ssched, _ := elasticCase(seed, sOps, sWindows)
	t.Fatalf("case seed=%#x violated invariants (replay: LEAP_CHAOS_SEED=%#x)\n"+
		"full case:\n%s\nshrunk to ops=%d windows=%d:\n%s\nshrunk schedule:\n%s",
		seed, seed, rep, sOps, sWindows, srep, ssched)
}

// TestElasticCasesAreNotVacuous checks the elastic generator actually
// exercises all three transition kinds somewhere in a modest seed sample —
// a suite that never scales proves nothing about elasticity.
func TestElasticCasesAreNotVacuous(t *testing.T) {
	var ups, downs, ramps int64
	for i := 0; i < 60; i++ {
		seed := 0xE1A5<<20 | uint64(i)
		rep, sched, err := elasticCase(seed, 120, 5)
		if err != nil {
			t.Fatalf("seed=%#x: %v", seed, err)
		}
		ups += rep.ScaleUps
		downs += rep.ScaleDowns
		for _, e := range sched.Events {
			if e.Kind == SlowRamp {
				ramps++
			}
		}
	}
	if ups == 0 || downs == 0 || ramps == 0 {
		t.Fatalf("elastic sample never exercised transitions: ups=%d downs=%d ramps=%d",
			ups, downs, ramps)
	}
}

// TestElasticLibrarySchedules runs every shipped elastic scenario at two
// doorbell depths and requires a clean report through each transition.
func TestElasticLibrarySchedules(t *testing.T) {
	for _, depth := range []int{1, 8} {
		for _, sched := range ElasticLibrary(Config{}.Horizon()) {
			cfg := Config{Seed: 7, QueueDepth: depth}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Run(sched)
			if err != nil {
				t.Fatalf("depth=%d %s: %v", depth, sched.Name, err)
			}
			if rep.Violations() != 0 {
				t.Errorf("depth=%d %s: violations\n%s", depth, sched.Name, rep)
			}
		}
	}
}

// TestScaleDownMovesDataBeforePurge pins the drain ordering: after a
// scale-down event the victim holds no placements, every previously acked
// page still has live holders, and the report counts the transition.
func TestScaleDownMovesDataBeforePurge(t *testing.T) {
	sched := Schedule{Name: "drain-check", Events: []Event{
		{At: 2 * sim.Millisecond, Kind: ScaleDown, Agent: 2},
		{At: 3 * sim.Millisecond, Kind: Repair, Agent: -1},
	}}
	c, err := New(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations() != 0 || rep.ScaleDowns != 1 {
		t.Fatalf("drain run unclean:\n%s", rep)
	}
	for _, page := range c.written {
		for _, h := range c.model[page].holders {
			if h == 2 {
				t.Fatalf("page %d still acked on drained agent 2", page)
			}
		}
	}
	if got := c.host.RetiredAgents(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("RetiredAgents = %v, want [2]", got)
	}
}

// TestScaleDownBelowReplicasRejected: draining the cluster below the
// replication factor is a schedule error, not a silent data loss.
func TestScaleDownBelowReplicasRejected(t *testing.T) {
	sched := Schedule{Name: "over-drain", Events: []Event{
		{At: 1 * sim.Millisecond, Kind: ScaleDown, Agent: 0},
		{At: 2 * sim.Millisecond, Kind: ScaleDown, Agent: 1},
		{At: 3 * sim.Millisecond, Kind: ScaleDown, Agent: 2},
	}}
	c, err := New(Config{Agents: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(sched); err == nil ||
		!strings.Contains(err.Error(), "would leave") {
		t.Fatalf("over-drain accepted: %v", err)
	}
}

// TestScaleEventBeforeProvisionRejected: an event may not target an agent
// index whose scale-up has not happened yet.
func TestScaleEventBeforeProvisionRejected(t *testing.T) {
	sched := Schedule{Name: "premature", Events: []Event{
		{At: 1 * sim.Millisecond, Kind: Crash, Agent: 4},
		{At: 5 * sim.Millisecond, Kind: ScaleUp, Agent: -1},
	}}
	c, err := New(Config{Agents: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(sched); err == nil ||
		!strings.Contains(err.Error(), "targets agent") {
		t.Fatalf("premature reference accepted: %v", err)
	}
}

// TestElasticScheduleRoundTrips extends the String→Parse round-trip
// guarantee to elastic schedules, whose grammar adds the agentless scaleup
// verb and the slowramp latency parameter.
func TestElasticScheduleRoundTrips(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		s := RandomSchedule(seed, GenConfig{Agents: 5, Horizon: 10 * sim.Millisecond, MaxWindows: 5, Elastic: true})
		again, err := Parse(s.Name, s.String())
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v\n%s", seed, err, s)
		}
		if !reflect.DeepEqual(s.Events, again.Events) {
			t.Fatalf("seed %d: round trip diverged:\n%v\n%v", seed, s.Events, again.Events)
		}
	}
	for _, s := range ElasticLibrary(10 * sim.Millisecond) {
		again, err := Parse(s.Name, s.String())
		if err != nil {
			t.Fatalf("%s: re-parse: %v", s.Name, err)
		}
		if !reflect.DeepEqual(s.Events, again.Events) {
			t.Fatalf("%s: round trip diverged", s.Name)
		}
	}
}

// FuzzScheduleParse fuzzes the schedule grammar: any input Parse accepts
// must survive a String→Parse round trip exactly — the property that makes
// a printed failing schedule a faithful reproduction. The seed corpus
// covers every verb, including the scale-event syntax added for elastic
// schedules (agentless scaleup, scaledown, slowramp with latency).
func FuzzScheduleParse(f *testing.F) {
	f.Add("5ms crash 0\n7ms restart 0\n8ms repair\n")
	f.Add("1ms partition 2\n2ms heal 2\n")
	f.Add("100µs slow 1 250µs\n900µs endslow 1\n")
	f.Add("3ms flaky 3 0.25\n5ms endflaky 3\n")
	f.Add("2ms scaleup\n4ms repair\n")
	f.Add("1ms scaledown 1\n2ms repair\n")
	f.Add("500µs slowramp 2 300µs\n6ms endslow 2\n")
	f.Add("# comment\n\n2ms scaleup # trailing\n9ms scaledown 4\n")
	f.Add("10ns crash 0\n15ns scaleup\n1s slowramp 0 123ns\n")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse("fuzz", text)
		if err != nil {
			return
		}
		again, err := Parse(s.Name, s.String())
		if err != nil {
			t.Fatalf("rendered schedule failed to re-parse: %v\n%s", err, s)
		}
		if !reflect.DeepEqual(s.Events, again.Events) {
			t.Fatalf("round trip diverged:\n%v\n%v", s.Events, again.Events)
		}
	})
}
