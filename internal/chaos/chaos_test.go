package chaos

import (
	"net"
	"reflect"
	"strings"
	"testing"

	"leap/internal/remote"
	"leap/internal/sim"
)

func TestScheduleParseStringRoundTrip(t *testing.T) {
	text := `
# crash window on agent 0
1ms crash 0
2ms repair
3.50ms restart 0
4ms repair
5ms slow 1 250.00µs
6ms endslow 1
7ms flaky 2 0.25
8ms endflaky 2
9ms partition 3
10ms heal 3
`
	s, err := Parse("demo", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 10 {
		t.Fatalf("parsed %d events, want 10", len(s.Events))
	}
	if s.MaxAgent() != 3 {
		t.Fatalf("MaxAgent = %d, want 3", s.MaxAgent())
	}
	// String → Parse must reproduce the events exactly.
	again, err := Parse("demo", s.String())
	if err != nil {
		t.Fatalf("re-parse of String(): %v\n%s", err, s.String())
	}
	if !reflect.DeepEqual(s.Events, again.Events) {
		t.Fatalf("round trip diverged:\n%v\n%v", s.Events, again.Events)
	}
}

func TestScheduleParseRejects(t *testing.T) {
	bad := []string{
		"5ms",             // time with no verb (must error, not panic)
		"5ms explode 0",   // unknown verb
		"5 crash 0",       // unitless time
		"5ms crash",       // missing agent
		"5ms crash -1",    // negative agent
		"5ms slow 1",      // missing latency
		"5ms flaky 1 1.5", // probability out of range
		"5ms repair 0",    // trailing field
		"5ms crash 0 7",   // trailing field
	}
	for _, text := range bad {
		if _, err := Parse("bad", text); err == nil {
			t.Errorf("Parse(%q) accepted", text)
		}
	}
}

func TestLibraryScenarioLookup(t *testing.T) {
	if _, ok := Scenario("crash-restart", sim.Millisecond); !ok {
		t.Fatal("crash-restart missing from library")
	}
	if _, ok := Scenario("nope", sim.Millisecond); ok {
		t.Fatal("unknown scenario found")
	}
}

// TestLibrarySchedulesUpholdInvariants is the shipped-scenario gate: every
// library schedule must finish with zero acked-write losses, zero freshness
// violations and every repair barrier fully restoring replication.
func TestLibrarySchedulesUpholdInvariants(t *testing.T) {
	cfg := Config{Ops: 3000, Pages: 192, Seed: 7, RepairEvery: 0}
	for _, sched := range Library(cfg.Horizon()) {
		sched := sched
		t.Run(sched.Name, func(t *testing.T) {
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Run(sched)
			if err != nil {
				t.Fatal(err)
			}
			if v := rep.Violations(); v != 0 {
				t.Fatalf("schedule %s: %d violations\n%s", sched.Name, v, rep)
			}
			if rep.Reads == 0 || rep.Writes == 0 {
				t.Fatalf("schedule %s: vacuous run\n%s", sched.Name, rep)
			}
		})
	}
}

// TestCrashScheduleExercisesFailover makes sure the harness actually sees
// degraded-mode behaviour, not a quietly idle fault path.
func TestCrashScheduleExercisesFailover(t *testing.T) {
	cfg := Config{Ops: 4000, Pages: 256, Seed: 11}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := Scenario("crash-restart", cfg.Horizon())
	rep, err := c.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailoverReads == 0 {
		t.Fatalf("crash-restart produced no failover reads\n%s", rep)
	}
	if rep.RepairedSlabs == 0 {
		t.Fatalf("crash-restart repaired nothing\n%s", rep)
	}
	if rep.FailoverLatency.Percentile(50) <= rep.ReadLatency.Percentile(50) {
		t.Fatalf("failover reads not slower than ordinary reads\n%s", rep)
	}
	if rep.Violations() != 0 {
		t.Fatalf("violations\n%s", rep)
	}
}

// TestFlakyScheduleDiverges checks that transient write failures really
// create under-acknowledged pages and that repair re-converges them.
func TestFlakyScheduleDiverges(t *testing.T) {
	cfg := Config{Ops: 3000, Pages: 128, Seed: 13}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := Scenario("flaky-writes", cfg.Horizon())
	rep, err := c.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	_, injected := c.Faults()[2].Stats()
	if injected == 0 {
		t.Fatal("flaky window injected nothing")
	}
	if rep.Violations() != 0 {
		t.Fatalf("violations\n%s", rep)
	}
	if c.Host().DegradedPages() != 0 {
		t.Fatalf("degraded pages survived the final barrier: %d", c.Host().DegradedPages())
	}
}

// TestRunDeterministic replays runs with the same (config, schedule, seed)
// and requires identical reports — including latency histograms.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{Ops: 2500, Pages: 160, Seed: 42, RepairEvery: 2 * sim.Millisecond}
	run := func() *Report {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sched, _ := Scenario("mixed", cfg.Horizon())
		rep, err := c.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed chaos runs diverged:\n%s\n%s", a, b)
	}
	if !strings.Contains(a.String(), "mixed") {
		t.Fatal("report rendering lost the schedule name")
	}
}

// TestSeedChangesOutcome guards against the RNG plumbing silently going
// constant.
func TestSeedChangesOutcome(t *testing.T) {
	out := make([]*Report, 2)
	for i, seed := range []uint64{1, 2} {
		cfg := Config{Ops: 1500, Pages: 96, Seed: seed}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sched, _ := Scenario("crash-restart", cfg.Horizon())
		if out[i], err = c.Run(sched); err != nil {
			t.Fatal(err)
		}
	}
	if reflect.DeepEqual(out[0], out[1]) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestClusterOverTCPTransports drives the chaos harness over real TCP
// loopback agents: the fault decorator blackholes the wire instead of
// killing processes, and the invariants must hold just the same.
func TestClusterOverTCPTransports(t *testing.T) {
	cfg := Config{Agents: 4, Ops: 800, Pages: 64, Seed: 17}
	var inner []remote.Transport
	for i := 0; i < cfg.Agents; i++ {
		agent := remote.NewAgent(16, 0)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go agent.Serve(l) //nolint:errcheck // listener close ends Serve
		tr, err := remote.DialTCP(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		inner = append(inner, tr)
	}
	c, err := NewWithTransports(cfg, inner)
	if err != nil {
		t.Fatal(err)
	}
	// Partition + flaky only: Restart cannot wipe an external agent, and a
	// purge-without-wipe crash is covered by the in-process tests.
	sched, _ := Scenario("partition", cfg.Horizon())
	rep, err := c.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations() != 0 {
		t.Fatalf("violations over TCP\n%s", rep)
	}
	if rep.DegradedReads+rep.FailoverReads == 0 && rep.Ops == 0 {
		t.Fatal("vacuous TCP run")
	}
}

// TestScheduleValidation rejects schedules referencing agents beyond the
// cluster.
func TestScheduleValidation(t *testing.T) {
	c, err := New(Config{Agents: 2, Ops: 10})
	if err != nil {
		t.Fatal(err)
	}
	bad := Schedule{Name: "oob", Events: []Event{{At: 0, Kind: Crash, Agent: 7}}}
	if _, err := c.Run(bad); err == nil {
		t.Fatal("out-of-range schedule accepted")
	}
}

// TestOverlappingWindowsComposePerField: a flaky window opening and
// closing inside a slow window must not clobber the slowness — fault
// dimensions are independent fields of FaultMode.
func TestOverlappingWindowsComposePerField(t *testing.T) {
	cfg := Config{Ops: 2000, Pages: 96, Seed: 5}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := cfg.Horizon()
	sched := Schedule{Name: "overlap", Events: []Event{
		{At: h / 10, Kind: SlowStart, Agent: 1, Extra: 200 * sim.Microsecond},
		{At: 2 * h / 10, Kind: FlakyStart, Agent: 1, Prob: 0.5},
		{At: 4 * h / 10, Kind: FlakyEnd, Agent: 1},
		// Probe the mode right after endflaky via the drain: slowness must
		// still be active until SlowEnd.
		{At: 8 * h / 10, Kind: SlowEnd, Agent: 1},
		{At: 9 * h / 10, Kind: Repair, Agent: -1},
	}}
	// Run partially by hand: apply up to FlakyEnd and check the composed mode.
	c2, _ := New(cfg)
	for _, e := range sched.Events[:3] {
		if err := c2.apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if m := c2.Faults()[1].Mode(); m.ExtraLatency != 200*sim.Microsecond || m.WriteFailProb != 0 {
		t.Fatalf("after endflaky inside slow window, mode = %+v", m)
	}
	// And the full run must still uphold the invariants.
	rep, err := c.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations() != 0 {
		t.Fatalf("violations under overlapping windows\n%s", rep)
	}
}

// TestClusterSingleUse: the clock, fabric queues and page model carry a
// run's history, so reuse must be rejected rather than silently wrong.
func TestClusterSingleUse(t *testing.T) {
	c, err := New(Config{Ops: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Schedule{Name: "first"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Schedule{Name: "second"}); err == nil {
		t.Fatal("second Run on the same Cluster accepted")
	}
}
