// Package chaos is the deterministic fault-injection harness for the
// remote-memory cluster of §4.4–4.5: it drives a real remote.Host and its
// agents through scripted failure schedules — crash/restart, network
// partitions, transient write failures (stale-replica divergence) and
// slow/lagging agents — entirely on virtual time. A run is a pure function
// of (Config, Schedule, seed): every transport call is charged to a
// simulated RDMA fabric, every probabilistic decision flows from sim.RNG
// forks, and the resulting Report replays bit-identically.
//
// The harness model-checks the service as it runs: it tracks, per page,
// which agents acknowledged the latest write (the holders of the fresh
// bytes) and flags any read that returns stale data or fails while a holder
// was reachable. Shipped schedules (Library) and the randomized generator
// (RandomSchedule) keep faults within the paper's fault model — one faulty
// agent at a time, repair between fault windows — under which the service
// must lose nothing.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"leap/internal/sim"
)

// Kind enumerates schedule event types.
type Kind int

const (
	// Crash makes an agent unreachable and wipes its memory on Restart;
	// the host is told (MarkFailed) so placement routes around it.
	Crash Kind = iota
	// Restart brings a crashed agent back empty: its slabs are wiped, the
	// host purges placements pointing at it, and it rejoins the pool.
	Restart
	// Partition makes an agent unreachable without telling the host and
	// without losing its memory — a network split, healed by Heal.
	Partition
	// Heal ends a Partition.
	Heal
	// SlowStart adds per-call virtual latency to an agent (lagging node).
	SlowStart
	// SlowEnd removes the added latency.
	SlowEnd
	// FlakyStart makes each write to the agent fail independently with the
	// given probability — the stale-replica divergence generator.
	FlakyStart
	// FlakyEnd ends the flaky window.
	FlakyEnd
	// Repair runs Host.RepairSlabs (slab re-replication plus degraded-page
	// re-push). A Repair while every agent is healthy is a barrier: the
	// harness asserts full replication was restored.
	Repair
	// ScaleUp provisions a brand-new agent (next free index), adds it to the
	// host's placement pool and rebalances its rendezvous share onto it —
	// elastic growth. Needs no agent field.
	ScaleUp
	// ScaleDown gracefully drains the target agent: Retire (leave the
	// rendezvous ranking), Rebalance (migrate its slabs to the survivors),
	// then PurgeAgent. Unlike Crash, no copy is ever lost — that is the
	// invariant elastic schedules check.
	ScaleDown
	// SlowRamp raises the target agent's per-call latency linearly from zero
	// to Extra over rampDuration of virtual time — a degrading NIC or a
	// thermally throttling node, the gradual counterpart of SlowStart. Ended
	// by SlowEnd like an ordinary slow window.
	SlowRamp
)

// verbs maps each Kind to its schedule-file verb.
var verbs = map[Kind]string{
	Crash:      "crash",
	Restart:    "restart",
	Partition:  "partition",
	Heal:       "heal",
	SlowStart:  "slow",
	SlowEnd:    "endslow",
	FlakyStart: "flaky",
	FlakyEnd:   "endflaky",
	Repair:     "repair",
	ScaleUp:    "scaleup",
	ScaleDown:  "scaledown",
	SlowRamp:   "slowramp",
}

// Event is one scheduled fault action at a virtual-time offset from the
// start of the run.
type Event struct {
	At    sim.Duration
	Kind  Kind
	Agent int          // target agent; -1 for Repair
	Extra sim.Duration // SlowStart: latency added per call
	Prob  float64      // FlakyStart: per-write failure probability
}

// fmtDur renders a duration losslessly for schedule files: the largest
// unit that divides it exactly, falling back to integer nanoseconds.
// (sim.Duration.String() rounds to two decimals, which would make the
// String→Parse round trip lossy for ns-precision times.)
func fmtDur(d sim.Duration) string {
	switch {
	case d >= sim.Second && d%sim.Second == 0:
		return fmt.Sprintf("%ds", d/sim.Second)
	case d >= sim.Millisecond && d%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", d/sim.Millisecond)
	case d >= sim.Microsecond && d%sim.Microsecond == 0:
		return fmt.Sprintf("%dµs", d/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", d)
	}
}

// String renders the event in schedule-file syntax.
func (e Event) String() string {
	switch e.Kind {
	case Repair:
		return fmt.Sprintf("%s repair", fmtDur(e.At))
	case ScaleUp:
		return fmt.Sprintf("%s scaleup", fmtDur(e.At))
	case SlowStart:
		return fmt.Sprintf("%s slow %d %s", fmtDur(e.At), e.Agent, fmtDur(e.Extra))
	case SlowRamp:
		return fmt.Sprintf("%s slowramp %d %s", fmtDur(e.At), e.Agent, fmtDur(e.Extra))
	case FlakyStart:
		return fmt.Sprintf("%s flaky %d %g", fmtDur(e.At), e.Agent, e.Prob)
	default:
		return fmt.Sprintf("%s %s %d", fmtDur(e.At), verbs[e.Kind], e.Agent)
	}
}

// Schedule is a named, time-ordered fault script.
type Schedule struct {
	Name   string
	Events []Event
}

// sorted returns the events ordered by time, ties kept in input order.
func (s Schedule) sorted() []Event {
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MaxAgent reports the highest agent index the schedule references (-1 for
// an agent-free schedule), so runners can validate cluster sizes.
func (s Schedule) MaxAgent() int {
	maxIdx := -1
	for _, e := range s.Events {
		if e.Kind != Repair && e.Kind != ScaleUp && e.Agent > maxIdx {
			maxIdx = e.Agent
		}
	}
	return maxIdx
}

// ScaleUps counts the schedule's ScaleUp events — the number of agents the
// cluster may grow by, so runners can size their validation accordingly.
func (s Schedule) ScaleUps() int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == ScaleUp {
			n++
		}
	}
	return n
}

// String renders the schedule in the textual format Parse accepts: one
// event per line, `<time> <verb> [agent] [param]`, '#' comments allowed.
func (s Schedule) String() string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "# schedule: %s\n", s.Name)
	}
	for _, e := range s.sorted() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads a schedule from its textual form. Lines are
// `<time> <verb> [agent] [param]` where time is a sim duration ("5ms",
// "200µs"), verb is one of crash, restart, partition, heal, slow, endslow,
// flaky, endflaky, repair; slow takes a latency parameter and flaky a
// probability in [0,1]. Blank lines and '#' comments are skipped.
func Parse(name, text string) (Schedule, error) {
	s := Schedule{Name: name}
	for lineNo, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return Schedule{}, fmt.Errorf("chaos: line %d: want `<time> <verb> [agent] [param]`, got %q", lineNo+1, line)
		}
		at, err := sim.ParseDuration(fields[0])
		if err != nil {
			return Schedule{}, fmt.Errorf("chaos: line %d: %v", lineNo+1, err)
		}
		ev := Event{At: at, Agent: -1}
		verb := fields[1]
		found := false
		for k, v := range verbs {
			if v == verb {
				ev.Kind = k
				found = true
				break
			}
		}
		if !found {
			return Schedule{}, fmt.Errorf("chaos: line %d: unknown verb %q", lineNo+1, verb)
		}
		want := 2 // fields consumed so far
		if ev.Kind != Repair && ev.Kind != ScaleUp {
			if len(fields) < 3 {
				return Schedule{}, fmt.Errorf("chaos: line %d: %s needs an agent index", lineNo+1, verb)
			}
			ev.Agent, err = strconv.Atoi(fields[2])
			if err != nil || ev.Agent < 0 {
				return Schedule{}, fmt.Errorf("chaos: line %d: bad agent %q", lineNo+1, fields[2])
			}
			want = 3
		}
		switch ev.Kind {
		case SlowStart, SlowRamp:
			if len(fields) < 4 {
				return Schedule{}, fmt.Errorf("chaos: line %d: %s needs a latency", lineNo+1, verb)
			}
			if ev.Extra, err = sim.ParseDuration(fields[3]); err != nil {
				return Schedule{}, fmt.Errorf("chaos: line %d: %v", lineNo+1, err)
			}
			want = 4
		case FlakyStart:
			if len(fields) < 4 {
				return Schedule{}, fmt.Errorf("chaos: line %d: flaky needs a probability", lineNo+1)
			}
			if ev.Prob, err = strconv.ParseFloat(fields[3], 64); err != nil || ev.Prob < 0 || ev.Prob > 1 {
				return Schedule{}, fmt.Errorf("chaos: line %d: bad probability %q", lineNo+1, fields[3])
			}
			want = 4
		}
		if len(fields) > want {
			return Schedule{}, fmt.Errorf("chaos: line %d: trailing fields %v", lineNo+1, fields[want:])
		}
		s.Events = append(s.Events, ev)
	}
	s.Events = s.sorted()
	return s, nil
}

// Library returns the shipped scenario suite scaled to a run of roughly
// horizon virtual time. Schedules reference agents 0–3, so clusters need at
// least four agents. Every schedule upholds the single-fault-domain
// discipline (one faulty agent at a time, repair between windows), under
// which zero acked-write loss is required, not merely hoped for.
func Library(horizon sim.Duration) []Schedule {
	at := func(frac float64) sim.Duration { return sim.Duration(float64(horizon) * frac) }
	return []Schedule{
		{Name: "baseline"},
		{Name: "crash-restart", Events: []Event{
			{At: at(0.15), Kind: Crash, Agent: 0},
			{At: at(0.20), Kind: Repair, Agent: -1}, // re-replicate while down
			{At: at(0.55), Kind: Restart, Agent: 0},
			{At: at(0.60), Kind: Repair, Agent: -1}, // barrier
		}},
		{Name: "rolling-crashes", Events: []Event{
			{At: at(0.10), Kind: Crash, Agent: 0},
			{At: at(0.22), Kind: Restart, Agent: 0},
			{At: at(0.25), Kind: Repair, Agent: -1},
			{At: at(0.40), Kind: Crash, Agent: 1},
			{At: at(0.52), Kind: Restart, Agent: 1},
			{At: at(0.55), Kind: Repair, Agent: -1},
			{At: at(0.70), Kind: Crash, Agent: 2},
			{At: at(0.82), Kind: Restart, Agent: 2},
			{At: at(0.85), Kind: Repair, Agent: -1},
		}},
		{Name: "partition", Events: []Event{
			{At: at(0.20), Kind: Partition, Agent: 1},
			{At: at(0.50), Kind: Heal, Agent: 1},
			{At: at(0.52), Kind: Repair, Agent: -1},
		}},
		{Name: "flaky-writes", Events: []Event{
			{At: at(0.10), Kind: FlakyStart, Agent: 2, Prob: 0.3},
			{At: at(0.60), Kind: FlakyEnd, Agent: 2},
			{At: at(0.62), Kind: Repair, Agent: -1},
		}},
		{Name: "slow-agent", Events: []Event{
			{At: at(0.20), Kind: SlowStart, Agent: 1, Extra: 250 * sim.Microsecond},
			{At: at(0.70), Kind: SlowEnd, Agent: 1},
		}},
		{Name: "mixed", Events: []Event{
			{At: at(0.08), Kind: Crash, Agent: 0},
			{At: at(0.14), Kind: Repair, Agent: -1},
			{At: at(0.22), Kind: Restart, Agent: 0},
			{At: at(0.25), Kind: Repair, Agent: -1},
			{At: at(0.32), Kind: FlakyStart, Agent: 1, Prob: 0.25},
			{At: at(0.48), Kind: FlakyEnd, Agent: 1},
			{At: at(0.50), Kind: Repair, Agent: -1},
			{At: at(0.56), Kind: SlowStart, Agent: 2, Extra: 150 * sim.Microsecond},
			{At: at(0.72), Kind: SlowEnd, Agent: 2},
			{At: at(0.76), Kind: Partition, Agent: 3},
			{At: at(0.88), Kind: Heal, Agent: 3},
			{At: at(0.90), Kind: Repair, Agent: -1},
		}},
	}
}

// ElasticLibrary returns the shipped elastic scenario suite scaled to a run
// of roughly horizon virtual time: scale-ups and graceful drains under load,
// churn (grow then shrink), a crash landing on a freshly provisioned agent,
// and a gradual slow-ramp. Schedules assume a four-agent cluster; the same
// zero-loss invariants as Library apply through every transition.
func ElasticLibrary(horizon sim.Duration) []Schedule {
	at := func(frac float64) sim.Duration { return sim.Duration(float64(horizon) * frac) }
	return []Schedule{
		{Name: "scale-up", Events: []Event{
			{At: at(0.25), Kind: ScaleUp, Agent: -1},
			{At: at(0.30), Kind: Repair, Agent: -1}, // barrier
		}},
		{Name: "scale-down", Events: []Event{
			{At: at(0.30), Kind: ScaleDown, Agent: 0},
			{At: at(0.35), Kind: Repair, Agent: -1}, // barrier
		}},
		{Name: "elastic-churn", Events: []Event{
			{At: at(0.10), Kind: ScaleUp, Agent: -1},
			{At: at(0.15), Kind: Repair, Agent: -1},
			{At: at(0.40), Kind: ScaleDown, Agent: 4}, // drain the newcomer
			{At: at(0.45), Kind: Repair, Agent: -1},
			{At: at(0.65), Kind: ScaleDown, Agent: 1},
			{At: at(0.70), Kind: Repair, Agent: -1},
		}},
		{Name: "crash-newcomer", Events: []Event{
			{At: at(0.10), Kind: ScaleUp, Agent: -1},
			{At: at(0.15), Kind: Repair, Agent: -1},
			{At: at(0.35), Kind: Crash, Agent: 4},
			{At: at(0.40), Kind: Repair, Agent: -1}, // re-replicate while down
			{At: at(0.60), Kind: Restart, Agent: 4},
			{At: at(0.65), Kind: Repair, Agent: -1}, // barrier
		}},
		{Name: "slow-ramp", Events: []Event{
			{At: at(0.20), Kind: SlowRamp, Agent: 1, Extra: 250 * sim.Microsecond},
			{At: at(0.70), Kind: SlowEnd, Agent: 1},
		}},
	}
}

// Scenario fetches one Library schedule by name.
func Scenario(name string, horizon sim.Duration) (Schedule, bool) {
	for _, s := range Library(horizon) {
		if s.Name == name {
			return s, true
		}
	}
	return Schedule{}, false
}

// GenConfig sizes RandomSchedule.
type GenConfig struct {
	Agents     int          // cluster size (faults target [0, Agents))
	Horizon    sim.Duration // approximate run length the schedule spans
	MaxWindows int          // fault windows to generate (default 3)
	// Elastic adds scale-up, scale-down and slow-ramp windows to the kind
	// pool. The generator tracks the live population: scale-ups append new
	// agent indices (which later windows may then target), scale-downs
	// remove a random live agent and never shrink the pool below four, so a
	// subsequent crash window still leaves the replication factor coverable.
	Elastic bool
}

// RandomSchedule generates a randomized fault schedule from seed, for
// property testing. It follows the single-fault-domain grammar: fault
// windows never overlap, each window targets one agent with one fault kind
// (crash/restart, partition, flaky writes, or slowness), and every window
// closes with full healing followed by a Repair barrier. Within that
// grammar, window kinds, targets, lengths and gaps are all random — the
// seed is the reproduction (and shrinking) handle. With GenConfig.Elastic
// the kind pool additionally holds scale-up, scale-down and slow-ramp
// windows, so schedules drive elastic transitions under the same barriers.
func RandomSchedule(seed uint64, g GenConfig) Schedule {
	if g.Agents < 2 {
		g.Agents = 2
	}
	if g.Horizon <= 0 {
		g.Horizon = 10 * sim.Millisecond
	}
	if g.MaxWindows <= 0 {
		g.MaxWindows = 3
	}
	rng := sim.NewRNG(seed)
	s := Schedule{Name: fmt.Sprintf("random-%d", seed)}
	if g.Elastic {
		s.Name = fmt.Sprintf("elastic-%d", seed)
	}
	// The live population, mutated by elastic windows: scale-ups append the
	// next fresh index, scale-downs remove their victim so no later window
	// targets a drained agent.
	avail := make([]int, g.Agents)
	for i := range avail {
		avail[i] = i
	}
	next := g.Agents
	kinds := 4
	if g.Elastic {
		kinds = 7
	}
	slot := g.Horizon / sim.Duration(g.MaxWindows)
	for w := 0; w < g.MaxWindows; w++ {
		base := sim.Duration(w) * slot
		// Random start inside the first half of the slot, random duration
		// within the remainder; the barrier lands before the next slot.
		start := base + sim.Duration(rng.Int63n(int64(slot/2)+1))
		dur := sim.Duration(rng.Int63n(int64(slot/4)+1)) + slot/8
		end := start + dur
		agent := avail[rng.Intn(len(avail))]
		kind := rng.Intn(kinds)
		if kind == 5 && len(avail) <= 4 {
			kind = 4 // too small to drain safely: grow instead
		}
		switch kind {
		case 0: // crash, sometimes repaired while down, then restart
			s.Events = append(s.Events, Event{At: start, Kind: Crash, Agent: agent})
			if rng.Intn(2) == 0 {
				s.Events = append(s.Events, Event{At: start + dur/2, Kind: Repair, Agent: -1})
			}
			s.Events = append(s.Events, Event{At: end, Kind: Restart, Agent: agent})
		case 1:
			s.Events = append(s.Events, Event{At: start, Kind: Partition, Agent: agent})
			s.Events = append(s.Events, Event{At: end, Kind: Heal, Agent: agent})
		case 2:
			prob := 0.1 + 0.5*rng.Float64()
			s.Events = append(s.Events, Event{At: start, Kind: FlakyStart, Agent: agent, Prob: prob})
			s.Events = append(s.Events, Event{At: end, Kind: FlakyEnd, Agent: agent})
		case 3:
			extra := sim.Duration(rng.Int63n(int64(300 * sim.Microsecond)))
			s.Events = append(s.Events, Event{At: start, Kind: SlowStart, Agent: agent, Extra: extra})
			s.Events = append(s.Events, Event{At: end, Kind: SlowEnd, Agent: agent})
		case 4: // elastic growth; the newcomer is fair game for later windows
			s.Events = append(s.Events, Event{At: start, Kind: ScaleUp, Agent: -1})
			avail = append(avail, next)
			next++
		case 5: // graceful drain of a random live agent
			s.Events = append(s.Events, Event{At: start, Kind: ScaleDown, Agent: agent})
			for i, a := range avail {
				if a == agent {
					avail = append(avail[:i], avail[i+1:]...)
					break
				}
			}
		case 6: // gradual slowdown ramping to a random peak
			extra := sim.Duration(rng.Int63n(int64(300*sim.Microsecond))) + 50*sim.Microsecond
			s.Events = append(s.Events, Event{At: start, Kind: SlowRamp, Agent: agent, Extra: extra})
			s.Events = append(s.Events, Event{At: end, Kind: SlowEnd, Agent: agent})
		}
		s.Events = append(s.Events, Event{At: end + slot/16 + 1, Kind: Repair, Agent: -1})
	}
	s.Events = s.sorted()
	return s
}
