package chaos

import (
	"reflect"
	"testing"

	"leap/internal/sim"
)

// TestBatchedLibrarySchedulesUpholdInvariants runs every shipped schedule
// through the async doorbell datapath at several queue depths: fault events
// land between enqueues, so crashes and partitions hit batches in flight,
// and the acked-write invariants must hold exactly as in synchronous mode.
func TestBatchedLibrarySchedulesUpholdInvariants(t *testing.T) {
	for _, depth := range []int{2, 4, 8} {
		cfg := Config{Ops: 3000, Pages: 192, Seed: 7, QueueDepth: depth}
		for _, sched := range Library(cfg.Horizon()) {
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Run(sched)
			if err != nil {
				t.Fatalf("depth %d, schedule %s: %v", depth, sched.Name, err)
			}
			if v := rep.Violations(); v != 0 {
				t.Fatalf("depth %d, schedule %s: %d violations\n%s", depth, sched.Name, v, rep)
			}
			if rep.Reads == 0 || rep.Writes == 0 {
				t.Fatalf("depth %d, schedule %s: vacuous run\n%s", depth, sched.Name, rep)
			}
		}
	}
}

// TestBatchedCrashMidBatchNoAckedLoss is the targeted crash-while-a-batch-
// is-in-flight case: an agent crashes while writes are queued but not yet
// flushed. Writes that never got acked may fail (the model keeps the prior
// version); writes that were acked must survive to the final readback.
func TestBatchedCrashMidBatchNoAckedLoss(t *testing.T) {
	cfg := Config{Ops: 2500, Pages: 128, Seed: 23, QueueDepth: 8, WriteFrac: 0.6}
	h := cfg.Horizon()
	// Crash at an odd offset so it lands mid-group with high probability
	// (groups flush every 8 ops), repair while down, restart, barrier.
	sched := Schedule{Name: "crash-mid-batch", Events: []Event{
		{At: h / 7, Kind: Crash, Agent: 1},
		{At: h / 5, Kind: Repair, Agent: -1},
		{At: h / 2, Kind: Restart, Agent: 1},
		{At: h/2 + h/20, Kind: Repair, Agent: -1},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations() != 0 {
		t.Fatalf("acked-write invariants violated with a crash mid-batch:\n%s", rep)
	}
	st := rep.HostStats
	if st.BatchCalls == 0 || st.BatchedPages <= st.BatchCalls {
		t.Fatalf("run never used batched frames: %+v", st)
	}
	if st.AsyncWrites == 0 || st.AsyncReads == 0 {
		t.Fatalf("run never used the async engine: %+v", st)
	}
}

// TestBatchedRunDeterministic pins the batched datapath's determinism:
// same (config, schedule, seed) → identical report, histograms included.
func TestBatchedRunDeterministic(t *testing.T) {
	cfg := Config{Ops: 2000, Pages: 160, Seed: 42, QueueDepth: 4,
		RepairEvery: 2 * sim.Millisecond}
	run := func() *Report {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sched, _ := Scenario("mixed", cfg.Horizon())
		rep, err := c.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed batched runs diverged:\n%s\n%s", a, b)
	}
}

// TestBatchedPropertyRandomSchedules extends the randomized property suite
// to the async datapath: disciplined random fault schedules at random queue
// depths (2–8), zero violations required.
func TestBatchedPropertyRandomSchedules(t *testing.T) {
	cases := 400
	if testing.Short() {
		cases = 150
	}
	for i := 0; i < cases; i++ {
		seed := 0xBA7C4<<16 | uint64(i)
		cfg := Config{
			Agents:     3 + int(seed%3),
			SlabPages:  4,
			Pages:      48,
			Ops:        120,
			WriteFrac:  0.45,
			Seed:       seed,
			QueueDepth: 2 + int((seed>>8)%7), // 2–8
		}
		sched := RandomSchedule(seed^0x5eedfa17, GenConfig{
			Agents:     cfg.Agents,
			Horizon:    cfg.Horizon(),
			MaxWindows: 4,
		})
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run(sched)
		if err != nil {
			t.Fatalf("case seed=%#x depth=%d: %v\nschedule:\n%s", seed, cfg.QueueDepth, err, sched)
		}
		if rep.Violations() != 0 {
			t.Fatalf("case seed=%#x depth=%d violated invariants:\n%s\nschedule:\n%s",
				seed, cfg.QueueDepth, rep, sched)
		}
	}
}

// TestBatchedCoalescingObserved checks the engine actually coalesces
// duplicate reads and serves read-your-writes from the dirty buffer
// somewhere in a plain batched run — the stats that prove the features are
// live, not dead code.
func TestBatchedCoalescingObserved(t *testing.T) {
	var coalesced, dirty int64
	for seed := uint64(0); seed < 8; seed++ {
		cfg := Config{Ops: 4000, Pages: 32, Seed: seed, QueueDepth: 8, WriteFrac: 0.5}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run(Schedule{Name: "baseline"})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violations() != 0 {
			t.Fatalf("seed %d: violations\n%s", seed, rep)
		}
		coalesced += rep.HostStats.CoalescedReads
		dirty += rep.HostStats.DirtyReads
	}
	if coalesced == 0 {
		t.Error("no run coalesced a duplicate in-flight read")
	}
	if dirty == 0 {
		t.Error("no run served a read from a queued write (read-your-writes)")
	}
}
