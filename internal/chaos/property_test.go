package chaos

import (
	"os"
	"reflect"
	"strconv"
	"testing"

	"leap/internal/sim"
)

// propertyCase runs one randomized schedule against a fresh cluster and
// reports the violations. Everything derives from caseSeed, so a failure
// reproduces from the seed alone.
func propertyCase(caseSeed uint64, ops int, windows int) (*Report, Schedule, error) {
	cfg := Config{
		Agents:    3 + int(caseSeed%3), // 3–5 agents
		SlabPages: 4,
		Pages:     48,
		Ops:       ops,
		WriteFrac: 0.45,
		Seed:      caseSeed,
	}
	sched := RandomSchedule(caseSeed^0x5eedfa17, GenConfig{
		Agents:     cfg.Agents,
		Horizon:    cfg.Horizon(),
		MaxWindows: windows,
	})
	c, err := New(cfg)
	if err != nil {
		return nil, sched, err
	}
	rep, err := c.Run(sched)
	return rep, sched, err
}

// shrink reduces a failing case by halving the op count and trimming fault
// windows while the failure persists, and reports the smallest
// reproduction found. The seed is the replay handle: re-run with
// LEAP_CHAOS_SEED=<seed> to get exactly this case back.
func shrink(t *testing.T, caseSeed uint64, ops, windows int) (int, int) {
	t.Helper()
	fails := func(o, w int) bool {
		rep, _, err := propertyCase(caseSeed, o, w)
		return err != nil || rep.Violations() != 0
	}
	for ops > 25 && fails(ops/2, windows) {
		ops /= 2
	}
	for windows > 1 && fails(ops, windows-1) {
		windows--
	}
	return ops, windows
}

// TestHostPropertyRandomSchedules is the randomized-schedule property suite
// for remote.Host: after ANY generated interleaving of writes, reads,
// crash/restart cycles, partitions, flaky-write windows, slow agents and
// RepairSlabs calls, (a) every read observes the freshest acked value
// whenever any acknowledged holder is reachable, (b) every repair barrier
// restores the replication factor and clears degraded pages, and (c) after
// the final repair every acked page reads back its last written value.
//
// ≥1000 cases run even under -short. A failure prints the case seed;
// replay just that case with LEAP_CHAOS_SEED=<seed> go test -run
// TestHostPropertyRandomSchedules, and the shrinker reports the smallest
// (ops, windows) reproduction for the seed.
func TestHostPropertyRandomSchedules(t *testing.T) {
	const ops, windows = 120, 4
	if env := os.Getenv("LEAP_CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("bad LEAP_CHAOS_SEED: %v", err)
		}
		runPropertyCase(t, seed, ops, windows)
		return
	}
	cases := 2500
	if testing.Short() {
		cases = 1000
	}
	for i := 0; i < cases; i++ {
		runPropertyCase(t, 0xC4A05<<16|uint64(i), ops, windows)
	}
}

func runPropertyCase(t *testing.T, seed uint64, ops, windows int) {
	t.Helper()
	rep, sched, err := propertyCase(seed, ops, windows)
	if err != nil {
		t.Fatalf("case seed=%#x: run error: %v\nschedule:\n%s", seed, err, sched)
	}
	if rep.Violations() == 0 {
		return
	}
	sOps, sWindows := shrink(t, seed, ops, windows)
	srep, ssched, _ := propertyCase(seed, sOps, sWindows)
	t.Fatalf("case seed=%#x violated invariants (replay: LEAP_CHAOS_SEED=%#x)\n"+
		"full case:\n%s\nshrunk to ops=%d windows=%d:\n%s\nshrunk schedule:\n%s",
		seed, seed, rep, sOps, sWindows, srep, ssched)
}

// TestPropertyCasesAreNotVacuous samples a few case seeds and checks the
// generator actually injects faults and the workload actually exercises
// failover paths somewhere in the sample.
func TestPropertyCasesAreNotVacuous(t *testing.T) {
	var injected, failovers, repairs int64
	for i := 0; i < 40; i++ {
		seed := 0xC4A05<<16 | uint64(i)
		cfg := Config{Agents: 3 + int(seed%3), SlabPages: 4, Pages: 48, Ops: 120, WriteFrac: 0.45, Seed: seed}
		sched := RandomSchedule(seed^0x5eedfa17, GenConfig{Agents: cfg.Agents, Horizon: cfg.Horizon(), MaxWindows: 4})
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		failovers += rep.FailoverReads
		repairs += rep.RepairedSlabs
		for _, ft := range c.Faults() {
			_, inj := ft.Stats()
			injected += inj
		}
	}
	if injected == 0 || failovers == 0 || repairs == 0 {
		t.Fatalf("sample of property cases never exercised faults: injected=%d failovers=%d repairs=%d",
			injected, failovers, repairs)
	}
}

// TestRandomScheduleRoundTrips checks that generated schedules — whose
// event times have nanosecond precision — survive String→Parse exactly, so
// a printed failing schedule is a faithful reproduction.
func TestRandomScheduleRoundTrips(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		s := RandomSchedule(seed, GenConfig{Agents: 4, Horizon: 10 * sim.Millisecond, MaxWindows: 4})
		again, err := Parse(s.Name, s.String())
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v\n%s", seed, err, s)
		}
		if !reflect.DeepEqual(s.Events, again.Events) {
			t.Fatalf("seed %d: round trip diverged:\n%v\n%v", seed, s.Events, again.Events)
		}
	}
}

// TestRandomScheduleDeterministic pins the generator itself: same seed,
// same schedule.
func TestRandomScheduleDeterministic(t *testing.T) {
	g := GenConfig{Agents: 4, Horizon: 10 * sim.Millisecond, MaxWindows: 4}
	a := RandomSchedule(99, g)
	b := RandomSchedule(99, g)
	if a.String() != b.String() {
		t.Fatalf("generator nondeterministic:\n%s\n%s", a, b)
	}
	if c := RandomSchedule(100, g); c.String() == a.String() {
		t.Fatal("different seeds generated identical schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("empty schedule generated")
	}
}
