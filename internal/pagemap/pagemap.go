// Package pagemap provides an open-addressing hash map keyed by
// core.PageID, specialized for the simulators' hottest state: residency
// sets, the prefetch in-flight table, and the page-cache index. Each
// simulated access performs tens of membership tests on these tables, and
// the runtime map's generic hashing shows up as a top profile entry; this
// map replaces it with one multiply and a linear probe over a single slot
// array (state, key and value share a cache line).
//
// The map is deterministic (layout depends only on the operation sequence),
// supports no iteration, and is not safe for concurrent use. Deleted slots
// become tombstones; the table rehashes in slot order — also deterministic
// — when occupancy plus tombstones crosses the load limit.
package pagemap

import "leap/internal/core"

const (
	slotEmpty = iota
	slotFull
	slotTomb
)

// minCap keeps tiny maps from rehashing constantly; must be a power of two.
const minCap = 16

type slot[V any] struct {
	key   core.PageID
	val   V
	state uint8
}

// Map is a PageID-keyed hash table. The zero value is not usable; call New.
type Map[V any] struct {
	slots []slot[V]
	n     int  // live entries
	tombs int  // tombstoned slots
	shift uint // 64 - log2(len(slots)), for Fibonacci hashing

	// spare retains the previous array after a same-size tombstone purge,
	// so steady churn (insert/delete at stable occupancy) rehashes without
	// allocating.
	spare []slot[V]
}

// New returns a map sized for about hint entries.
func New[V any](hint int) *Map[V] {
	capacity := minCap
	for capacity < hint*3 {
		capacity <<= 1
	}
	m := &Map[V]{}
	m.alloc(capacity)
	return m
}

func (m *Map[V]) alloc(capacity int) {
	m.slots = make([]slot[V], capacity)
	m.tombs = 0
	m.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		m.shift--
	}
}

// home maps a key to its home slot (Fibonacci hashing: high bits of a
// multiplicative hash, which scatters the sequential page numbers paging
// workloads produce).
func (m *Map[V]) home(k core.PageID) int {
	return int((uint64(k) * 0x9E3779B97F4A7C15) >> m.shift)
}

// Len reports the number of live entries.
func (m *Map[V]) Len() int { return m.n }

// Get reports the value stored for k.
func (m *Map[V]) Get(k core.PageID) (V, bool) {
	mask := len(m.slots) - 1
	for i := m.home(k); ; i = (i + 1) & mask {
		s := &m.slots[i]
		if s.state == slotEmpty {
			var zero V
			return zero, false
		}
		if s.state == slotFull && s.key == k {
			return s.val, true
		}
	}
}

// Contains reports whether k is present.
func (m *Map[V]) Contains(k core.PageID) bool {
	_, ok := m.Get(k)
	return ok
}

// Put stores v for k, replacing any existing value.
func (m *Map[V]) Put(k core.PageID, v V) {
	// Cap occupancy (live + tombstones) at 50%: linear probing degrades
	// sharply past that, and the tables here are small relative to the
	// simulation's footprint.
	if (m.n+m.tombs+1)*2 > len(m.slots) {
		m.rehash()
	}
	mask := len(m.slots) - 1
	first := -1 // first tombstone on the probe path
	for i := m.home(k); ; i = (i + 1) & mask {
		s := &m.slots[i]
		switch s.state {
		case slotEmpty:
			if first >= 0 {
				s = &m.slots[first]
				m.tombs--
			}
			s.state = slotFull
			s.key = k
			s.val = v
			m.n++
			return
		case slotFull:
			if s.key == k {
				s.val = v
				return
			}
		case slotTomb:
			if first < 0 {
				first = i
			}
		}
	}
}

// Delete removes k if present.
func (m *Map[V]) Delete(k core.PageID) {
	mask := len(m.slots) - 1
	for i := m.home(k); ; i = (i + 1) & mask {
		s := &m.slots[i]
		if s.state == slotEmpty {
			return
		}
		if s.state == slotFull && s.key == k {
			s.state = slotTomb
			var zero V
			s.val = zero // release pointer-bearing values
			m.n--
			m.tombs++
			return
		}
	}
}

// rehash rebuilds the table, growing when live entries (not tombstones)
// justify it. Rebuilding walks slots in array order, so layout stays a pure
// function of the operation history.
func (m *Map[V]) rehash() {
	capacity := len(m.slots)
	if (m.n+1)*3 > capacity {
		capacity <<= 1
	}
	old := m.slots
	if len(m.spare) == capacity {
		m.slots = m.spare
		m.spare = nil
		clear(m.slots)
		m.tombs = 0
	} else {
		m.alloc(capacity)
	}
	m.n = 0
	for i := range old {
		if old[i].state == slotFull {
			m.Put(old[i].key, old[i].val)
		}
	}
	if len(old) == len(m.slots) {
		clear(old) // don't let the scratch copy pin heap objects
		m.spare = old
	} else {
		// Grown: any previous-size spare can never be reused — release it.
		m.spare = nil
	}
}
