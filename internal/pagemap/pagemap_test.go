package pagemap

import (
	"testing"

	"leap/internal/core"
)

// TestDifferentialAgainstBuiltinMap drives the same pseudo-random operation
// stream through Map and a builtin map and requires identical observable
// behavior at every step.
func TestDifferentialAgainstBuiltinMap(t *testing.T) {
	m := New[int64](0)
	ref := make(map[core.PageID]int64)

	state := uint64(0xC0FFEE)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	// Keys from a small space so puts, overwrites and deletes collide;
	// include the pid<<40 namespacing pattern the simulators use.
	key := func() core.PageID {
		k := core.PageID(next() % 512)
		if next()%4 == 0 {
			k |= core.PageID(int64(1+next()%3) << 40)
		}
		return k
	}
	for op := 0; op < 200000; op++ {
		k := key()
		switch next() % 4 {
		case 0, 1:
			v := int64(next())
			m.Put(k, v)
			ref[k] = v
		case 2:
			m.Delete(k)
			delete(ref, k)
		default:
			got, ok := m.Get(k)
			want, wantOK := ref[k]
			if ok != wantOK || got != want {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", op, k, got, ok, want, wantOK)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
	for k, want := range ref {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("final: Get(%d) = (%d,%v), want (%d,true)", k, got, ok, want)
		}
	}
}

func TestSteadyStateChurnDoesNotAllocate(t *testing.T) {
	m := New[int64](256)
	for i := 0; i < 256; i++ {
		m.Put(core.PageID(i), int64(i))
	}
	k := core.PageID(1000)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			m.Put(k+core.PageID(i), 1)
		}
		for i := 0; i < 64; i++ {
			m.Delete(k + core.PageID(i))
		}
	})
	// Tombstone purges rebuild into same-size tables; churn may trigger an
	// occasional rehash but must not allocate per operation.
	if allocs > 1 {
		t.Fatalf("churn allocated %.2f times per run, want <= 1", allocs)
	}
}

func TestPointerValuesReleasedOnDelete(t *testing.T) {
	type big struct{ buf [64]byte }
	m := New[*big](0)
	m.Put(1, &big{})
	m.Delete(1)
	if v, ok := m.Get(1); ok || v != nil {
		t.Fatalf("Get after Delete = (%v,%v)", v, ok)
	}
}
