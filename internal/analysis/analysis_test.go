package analysis

import (
	"math"
	"testing"

	"leap/internal/core"
)

func seqPages(start, n int) []core.PageID {
	out := make([]core.PageID, n)
	for i := range out {
		out[i] = core.PageID(start + i)
	}
	return out
}

func TestStrictPureSequential(t *testing.T) {
	faults := seqPages(100, 50)
	for _, w := range []int{2, 4, 8} {
		m := ClassifyStrict(faults, w)
		if m.Sequential != 1 {
			t.Fatalf("W%d: %+v, want all sequential", w, m)
		}
	}
}

func TestStrictPureStride(t *testing.T) {
	faults := make([]core.PageID, 50)
	for i := range faults {
		faults[i] = core.PageID(i * 10)
	}
	m := ClassifyStrict(faults, 8)
	if m.Stride != 1 {
		t.Fatalf("stride-10: %+v, want all stride", m)
	}
}

func TestStrictWindowDecay(t *testing.T) {
	// Sequential runs of 4 separated by jumps: W2 sees mostly sequential,
	// W8 sees none.
	var faults []core.PageID
	for r := 0; r < 50; r++ {
		faults = append(faults, seqPages(r*1000, 4)...)
	}
	w2 := ClassifyStrict(faults, 2)
	w8 := ClassifyStrict(faults, 8)
	if w2.Sequential < 0.7 {
		t.Fatalf("W2 sequential = %.3f, want >= 0.7", w2.Sequential)
	}
	if w8.Sequential != 0 {
		t.Fatalf("W8 sequential = %.3f, want 0 (no run spans 8)", w8.Sequential)
	}
}

func TestMajorityToleratesInterruption(t *testing.T) {
	// A long sequential run with every 8th access replaced by a random
	// jump: strict W8 classifies nearly everything as other; majority
	// recovers most windows. (A jump inside the window produces two
	// non-unit deltas — the jump out and the return — so up to 2 of 7
	// deltas deviate, leaving 5 ≥ ⌊7/2⌋+1 = 4.)
	faults := seqPages(0, 200)
	for i := 7; i < len(faults); i += 8 {
		faults[i] = core.PageID(100000 + i)
	}
	strict := ClassifyStrict(faults, 8)
	maj := ClassifyMajority(faults, 8)
	if strict.Sequential > 0.05 {
		t.Fatalf("strict seq = %.3f, want ~0", strict.Sequential)
	}
	if maj.Sequential < 0.6 {
		t.Fatalf("majority seq = %.3f, want >= 0.6", maj.Sequential)
	}
}

func TestMajorityStrideDetection(t *testing.T) {
	faults := make([]core.PageID, 100)
	for i := range faults {
		faults[i] = core.PageID(i * 7)
	}
	// Sprinkle irregularities.
	faults[10] = 3
	faults[40] = 9999
	m := ClassifyMajority(faults, 8)
	if m.Stride < 0.8 {
		t.Fatalf("majority stride = %.3f, want >= 0.8", m.Stride)
	}
}

func TestRandomIsOther(t *testing.T) {
	// LCG-scattered addresses: no pattern.
	faults := make([]core.PageID, 500)
	seed := uint64(7)
	for i := range faults {
		seed = seed*6364136223846793005 + 1442695040888963407
		faults[i] = core.PageID(seed % (1 << 30))
	}
	// At window 2 a single delta always "matches itself": the paper notes
	// that "all non-sequential patterns with X = 2 fall under the stride
	// category" (§2.3) — exactly what the classifier must reproduce.
	w2 := ClassifyStrict(faults, 2)
	if w2.Stride < 0.95 {
		t.Fatalf("strict W2 stride = %.3f, want ~1 (degenerate window)", w2.Stride)
	}
	for _, w := range []int{4, 8} {
		strict := ClassifyStrict(faults, w)
		if strict.Other < 0.95 {
			t.Fatalf("strict W%d other = %.3f, want ~1", w, strict.Other)
		}
	}
	maj := ClassifyMajority(faults, 8)
	if maj.Other < 0.95 {
		t.Fatalf("majority other = %.3f, want ~1", maj.Other)
	}
}

func TestMixSumsToOne(t *testing.T) {
	faults := seqPages(0, 100)
	faults[50] = 9
	for _, w := range []int{2, 4, 8} {
		for _, m := range []Mix{ClassifyStrict(faults, w), ClassifyMajority(faults, w)} {
			if s := m.Sequential + m.Stride + m.Other; math.Abs(s-1) > 1e-9 {
				t.Fatalf("W%d mix sums to %v", w, s)
			}
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if m := ClassifyStrict(nil, 8); m != (Mix{}) {
		t.Fatal("nil faults must classify to zero mix")
	}
	if m := ClassifyStrict(seqPages(0, 3), 8); m != (Mix{}) {
		t.Fatal("too-short trace must classify to zero mix")
	}
	if m := ClassifyStrict(seqPages(0, 10), 1); m != (Mix{}) {
		t.Fatal("window < 2 must classify to zero mix")
	}
}

func TestMixString(t *testing.T) {
	m := Mix{Sequential: 0.5, Stride: 0.25, Other: 0.25}
	if got := m.String(); got != "seq=50.0% stride=25.0% other=25.0%" {
		t.Fatalf("String = %q", got)
	}
}

func TestMajorityAtLeastStrictProperty(t *testing.T) {
	// Majority classification never finds fewer patterned windows than
	// strict: strict-sequential windows are majority-sequential too.
	seed := uint64(3)
	for trial := 0; trial < 20; trial++ {
		faults := make([]core.PageID, 300)
		pos := core.PageID(0)
		for i := range faults {
			seed = seed*6364136223846793005 + 1442695040888963407
			switch seed % 3 {
			case 0:
				pos++
			case 1:
				pos += 7
			default:
				pos = core.PageID(seed % 10000)
			}
			faults[i] = pos
		}
		strict := ClassifyStrict(faults, 8)
		maj := ClassifyMajority(faults, 8)
		if maj.Other > strict.Other+1e-9 {
			t.Fatalf("majority found fewer patterns than strict: %+v vs %+v", maj, strict)
		}
	}
}
