// Package analysis implements the pattern classifier behind the paper's
// Figure 3: sliding windows of page-fault addresses are labeled sequential,
// stride, or other, under either strict matching (every delta in the window
// identical — what Linux-style detectors need) or majority matching (a
// Boyer–Moore majority delta exists — what Leap needs).
//
// The gap between the two classifications at window 8 is the paper's
// motivating measurement: majority detection finds 11.3–29.7% more
// sequential windows because it forgives transient interruptions.
package analysis

import (
	"fmt"

	"leap/internal/core"
)

// Mix is the fraction of windows per class; fields sum to 1 when any
// windows were classified.
type Mix struct {
	Sequential float64
	Stride     float64
	Other      float64
}

// String renders the mix as percentages.
func (m Mix) String() string {
	return fmt.Sprintf("seq=%.1f%% stride=%.1f%% other=%.1f%%",
		m.Sequential*100, m.Stride*100, m.Other*100)
}

// windowClass labels one window's deltas.
type windowClass int

const (
	classSequential windowClass = iota
	classStride
	classOther
)

// strictClass requires every delta identical: all 1 → sequential; all equal
// non-unit (including negative) → stride; anything else → other.
func strictClass(deltas []int64) windowClass {
	first := deltas[0]
	for _, d := range deltas[1:] {
		if d != first {
			return classOther
		}
	}
	if first == 1 {
		return classSequential
	}
	return classStride
}

// majorityClass requires only a Boyer–Moore majority delta.
func majorityClass(deltas []int64) windowClass {
	maj, ok := core.MajorityVote(deltas)
	if !ok {
		return classOther
	}
	if maj == 1 {
		return classSequential
	}
	return classStride
}

// classify slides a window of `window` addresses over faults and tallies
// the class of each window's window-1 deltas.
func classify(faults []core.PageID, window int, f func([]int64) windowClass) Mix {
	if window < 2 || len(faults) < window {
		return Mix{}
	}
	deltas := make([]int64, window-1)
	var counts [3]int
	total := 0
	for i := 0; i+window <= len(faults); i++ {
		for j := 0; j < window-1; j++ {
			deltas[j] = int64(faults[i+j+1]) - int64(faults[i+j])
		}
		counts[f(deltas)]++
		total++
	}
	return Mix{
		Sequential: float64(counts[classSequential]) / float64(total),
		Stride:     float64(counts[classStride]) / float64(total),
		Other:      float64(counts[classOther]) / float64(total),
	}
}

// ClassifyStrict reproduces Figure 3's strict bars: every delta in the
// window must match.
func ClassifyStrict(faults []core.PageID, window int) Mix {
	return classify(faults, window, strictClass)
}

// ClassifyMajority reproduces Figure 3's majority bar: a majority delta
// suffices.
func ClassifyMajority(faults []core.PageID, window int) Mix {
	return classify(faults, window, majorityClass)
}
