// Package trace provides a compact binary format for page-access traces —
// capture a workload generator's stream to a file, inspect it, and replay
// it through the simulators. Traces make experiments portable: the exact
// access sequence behind a result can be archived and re-run, which is also
// how the paper's "trace-driven" reproduction band is exercised.
//
// Format: an 8-byte magic ("LEAPTRC1"), then one varint-encoded record per
// access: pid delta, page delta, think delta (all relative to the previous
// record, which makes typical traces ~3 bytes/record).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"leap/internal/core"
	"leap/internal/prefetch"
	"leap/internal/sim"
	"leap/internal/workload"
)

// Magic identifies trace files.
var Magic = [8]byte{'L', 'E', 'A', 'P', 'T', 'R', 'C', '1'}

// Record is one trace entry.
type Record struct {
	PID   prefetch.PID
	Page  core.PageID
	Think sim.Duration
}

// Writer streams records to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	buf [3 * binary.MaxVarintLen64]byte

	prevPID   int64
	prevPage  int64
	prevThink int64
	count     int64
	headerOut bool
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if !tw.headerOut {
		if _, err := tw.w.Write(Magic[:]); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
		tw.headerOut = true
	}
	n := binary.PutVarint(tw.buf[:], int64(r.PID)-tw.prevPID)
	n += binary.PutVarint(tw.buf[n:], int64(r.Page)-tw.prevPage)
	n += binary.PutVarint(tw.buf[n:], int64(r.Think)-tw.prevThink)
	tw.prevPID, tw.prevPage, tw.prevThink = int64(r.PID), int64(r.Page), int64(r.Think)
	tw.count++
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	return nil
}

// Count reports records written.
func (tw *Writer) Count() int64 { return tw.count }

// Flush drains buffered output. Call before closing the underlying file.
func (tw *Writer) Flush() error {
	if !tw.headerOut {
		// An empty trace still carries the magic.
		if _, err := tw.w.Write(Magic[:]); err != nil {
			return err
		}
		tw.headerOut = true
	}
	return tw.w.Flush()
}

// Reader streams records from an io.Reader.
type Reader struct {
	r         *bufio.Reader
	prevPID   int64
	prevPage  int64
	prevThink int64
	started   bool
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next record, or io.EOF at the end of the trace.
func (tr *Reader) Next() (Record, error) {
	if !tr.started {
		var magic [8]byte
		if _, err := io.ReadFull(tr.r, magic[:]); err != nil {
			return Record{}, fmt.Errorf("trace: read header: %w", err)
		}
		if magic != Magic {
			return Record{}, errors.New("trace: bad magic")
		}
		tr.started = true
	}
	dPID, err := binary.ReadVarint(tr.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: read pid: %w", err)
	}
	dPage, err := binary.ReadVarint(tr.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: read page: %w", err)
	}
	dThink, err := binary.ReadVarint(tr.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: read think: %w", err)
	}
	tr.prevPID += dPID
	tr.prevPage += dPage
	tr.prevThink += dThink
	return Record{
		PID:   prefetch.PID(tr.prevPID),
		Page:  core.PageID(tr.prevPage),
		Think: sim.Duration(tr.prevThink),
	}, nil
}

// ReadAll slurps the full trace.
func ReadAll(r io.Reader) ([]Record, error) {
	tr := NewReader(r)
	var out []Record
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Capture records n accesses of gen under the given pid.
func Capture(w io.Writer, gen workload.Generator, pid prefetch.PID, n int64) error {
	tw := NewWriter(w)
	for i := int64(0); i < n; i++ {
		a := gen.Next()
		if err := tw.Write(Record{PID: pid, Page: a.Page, Think: a.Think}); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Replay is a workload.Generator that replays a record slice, cycling at
// the end so simulations can run past the capture length.
type Replay struct {
	name    string
	records []Record
	pos     int
	pages   int64
	perOp   int
}

// NewReplay wraps records as a generator. perOp forwards AccessesPerOp.
func NewReplay(name string, records []Record, perOp int) (*Replay, error) {
	if len(records) == 0 {
		return nil, errors.New("trace: empty replay")
	}
	if perOp < 1 {
		perOp = 1
	}
	var maxPage core.PageID
	for _, r := range records {
		if r.Page > maxPage {
			maxPage = r.Page
		}
	}
	return &Replay{name: name, records: records, pages: int64(maxPage) + 1, perOp: perOp}, nil
}

// Name implements workload.Generator.
func (g *Replay) Name() string { return g.name }

// Pages implements workload.Generator.
func (g *Replay) Pages() int64 { return g.pages }

// AccessesPerOp implements workload.Generator.
func (g *Replay) AccessesPerOp() int { return g.perOp }

// Next implements workload.Generator.
func (g *Replay) Next() workload.Access {
	r := g.records[g.pos]
	g.pos = (g.pos + 1) % len(g.records)
	return workload.Access{Page: r.Page, Think: r.Think}
}

// SplitByPID partitions records by process.
func SplitByPID(records []Record) map[prefetch.PID][]Record {
	out := make(map[prefetch.PID][]Record)
	for _, r := range records {
		out[r.PID] = append(out[r.PID], r)
	}
	return out
}
