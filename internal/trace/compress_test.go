package trace

import (
	"bytes"
	"testing"

	"leap/internal/workload"
)

func TestCompressedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCompressedWriter(&buf)
	want := []Record{
		{PID: 1, Page: 100, Think: 500},
		{PID: 1, Page: 101, Think: 480},
		{PID: 3, Page: 77, Think: 9},
	}
	for _, r := range want {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAutoDetectPlain(t *testing.T) {
	var buf bytes.Buffer
	if err := Capture(&buf, workload.NewSequential(100, 1), 2, 50); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("plain auto-read got %d records", len(got))
	}
}

func TestCompressionShrinksRepetitiveTraces(t *testing.T) {
	var plain, compressed bytes.Buffer
	gen := workload.NewSequential(1000, 3)
	if err := Capture(&plain, gen, 1, 5000); err != nil {
		t.Fatal(err)
	}
	cw := NewCompressedWriter(&compressed)
	gen2 := workload.NewSequential(1000, 3)
	for i := 0; i < 5000; i++ {
		a := gen2.Next()
		if err := cw.Write(Record{PID: 1, Page: a.Page, Think: a.Think}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if compressed.Len() >= plain.Len() {
		t.Fatalf("gzip did not shrink: %d vs %d", compressed.Len(), plain.Len())
	}
}

func TestOpenReaderEmptyInput(t *testing.T) {
	if _, err := OpenReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}
