package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// gzipMagic is the two-byte gzip header.
var gzipMagic = [2]byte{0x1f, 0x8b}

// OpenReader returns a Reader over r, transparently decompressing gzip
// input (detected by magic bytes). Plain traces pass through untouched.
func OpenReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("trace: peek header: %w", err)
	}
	if head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: open gzip: %w", err)
		}
		return NewReader(gz), nil
	}
	return NewReader(br), nil
}

// ReadAllAuto slurps a trace with transparent gzip detection.
func ReadAllAuto(r io.Reader) ([]Record, error) {
	tr, err := OpenReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// CompressedWriter wraps a Writer whose output is gzip-compressed. Close
// flushes both the trace and the gzip stream.
type CompressedWriter struct {
	*Writer
	gz *gzip.Writer
}

// NewCompressedWriter returns a gzip-compressed trace writer over w.
func NewCompressedWriter(w io.Writer) *CompressedWriter {
	gz := gzip.NewWriter(w)
	return &CompressedWriter{Writer: NewWriter(gz), gz: gz}
}

// Close flushes the trace and terminates the gzip stream. The underlying
// file is not closed.
func (cw *CompressedWriter) Close() error {
	if err := cw.Writer.Flush(); err != nil {
		return err
	}
	return cw.gz.Close()
}
