package trace

import (
	"bytes"
	"testing"
)

// FuzzReadAll hammers the trace decoder with arbitrary bytes: no panics,
// no unbounded allocation — errors only.
func FuzzReadAll(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Record{PID: 1, Page: 100, Think: 500})
	_ = w.Write(Record{PID: 2, Page: 50, Think: 100})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(Magic[:])
	f.Add(append(append([]byte{}, Magic[:]...), 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must round trip.
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, r := range records {
			if err := w.Write(r); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip count %d != %d", len(again), len(records))
		}
		for i := range records {
			if again[i] != records[i] {
				t.Fatalf("record %d diverged", i)
			}
		}
	})
}

// FuzzReadAllAuto covers the gzip auto-detection path too.
func FuzzReadAllAuto(f *testing.F) {
	var gz bytes.Buffer
	cw := NewCompressedWriter(&gz)
	_ = cw.Write(Record{PID: 1, Page: 7, Think: 3})
	_ = cw.Close()
	f.Add(gz.Bytes())
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadAllAuto(bytes.NewReader(data)) // must not panic
	})
}
