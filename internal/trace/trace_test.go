package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"leap/internal/core"
	"leap/internal/prefetch"
	"leap/internal/sim"
	"leap/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{PID: 1, Page: 100, Think: 500},
		{PID: 1, Page: 101, Think: 480},
		{PID: 2, Page: 9999999, Think: 0},
		{PID: 1, Page: 50, Think: 1 << 40},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace returned %d records", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader(make([]byte, 32))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{PID: 1, Page: 5, Think: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	all := buf.Bytes()
	r := NewReader(bytes.NewReader(all[:len(all)-1]))
	_, err := r.Next()
	if err == nil {
		// First record may decode if truncation hit its last byte; then the
		// next read must fail.
		_, err = r.Next()
	}
	if err == nil || errors.Is(err, io.EOF) && len(all) > 9 {
		// A mid-record truncation must not look like clean EOF unless the
		// cut landed exactly on a record boundary.
		t.Log("truncation landed on a record boundary; acceptable")
	}
}

func TestCompactness(t *testing.T) {
	// Sequential records should encode in ~3 bytes each.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		if err := w.Write(Record{PID: 1, Page: core.PageID(i), Think: 500}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 8+4*1000 {
		t.Fatalf("1000 sequential records took %d bytes", buf.Len())
	}
}

func TestCaptureAndReplay(t *testing.T) {
	var buf bytes.Buffer
	gen := workload.NewStride(1000, 10, 3)
	if err := Capture(&buf, gen, 7, 500); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("captured %d records", len(recs))
	}
	for _, r := range recs {
		if r.PID != 7 {
			t.Fatalf("record pid = %d", r.PID)
		}
	}
	rep, err := NewReplay("stride-replay", recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Replay reproduces the original pages (fresh generator, same seed).
	orig := workload.NewStride(1000, 10, 3)
	for i := 0; i < 500; i++ {
		if got, want := rep.Next().Page, orig.Next().Page; got != want {
			t.Fatalf("replay access %d = %d, want %d", i, got, want)
		}
	}
	// ...and cycles afterwards.
	if rep.Next().Page != recs[0].Page {
		t.Fatal("replay did not cycle")
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay("x", nil, 1); err == nil {
		t.Fatal("empty replay accepted")
	}
}

func TestReplayMetadata(t *testing.T) {
	recs := []Record{{PID: 1, Page: 9, Think: 1}, {PID: 1, Page: 3, Think: 1}}
	rep, err := NewReplay("meta", recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name() != "meta" || rep.Pages() != 10 || rep.AccessesPerOp() != 4 {
		t.Fatalf("metadata: name=%q pages=%d perOp=%d", rep.Name(), rep.Pages(), rep.AccessesPerOp())
	}
}

func TestSplitByPID(t *testing.T) {
	recs := []Record{
		{PID: 1, Page: 1}, {PID: 2, Page: 2}, {PID: 1, Page: 3},
	}
	m := SplitByPID(recs)
	if len(m) != 2 || len(m[1]) != 2 || len(m[2]) != 1 {
		t.Fatalf("split = %v", m)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pids []uint8, pages []int32, thinks []uint16) bool {
		n := len(pids)
		if len(pages) < n {
			n = len(pages)
		}
		if len(thinks) < n {
			n = len(thinks)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				PID:   prefetch.PID(pids[i]),
				Page:  core.PageID(pages[i]),
				Think: sim.Duration(thinks[i]),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if w.Write(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
