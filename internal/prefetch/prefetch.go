// Package prefetch defines the common prefetcher interface consumed by the
// paging data path, and implements the paper's four competitors:
//
//   - None: no prefetching (lower bound).
//   - Next-N-Line [Mittal'16 survey, §5.2.3]: on every fault bring the next
//     N sequentially adjacent pages, unconditionally.
//   - Stride [Baer & Chen '91]: confirm a stride over consecutive faults and
//     fetch along it; depth adapts to measured usefulness.
//   - Read-Ahead: Linux's swap read-ahead — an aligned block of pages
//     around the fault, with a window that doubles after sequential faults
//     and halves otherwise (access history of size 2, hit-driven
//     aggressiveness).
//   - Leap: the paper's majority-trend predictor (internal/core), isolated
//     per process.
//
// The baselines deliberately observe the *global* fault stream (no process
// isolation), reproducing the Linux behaviour the paper criticizes in §2.3;
// Leap keeps per-process state. The adapter's Shared knob flips Leap to a
// single global predictor for the isolation ablation.
package prefetch

import (
	"fmt"
	"sort"

	"leap/internal/core"
)

// PageID aliases core.PageID: a 4KB page index in the remote/swap space.
type PageID = core.PageID

// PID identifies a simulated process.
type PID int

// Prefetcher decides which pages to bring into the cache after each
// remote-page access. Implementations are not safe for concurrent use; the
// data path serializes calls.
//
// The miss flag mirrors the kernel structure: every swap-in fault (minor or
// major) is observed, but candidates are only generated on cache misses —
// swapin_readahead, and Leap's do_prefetch that replaces it, sit on the
// major-fault path. Hits between two misses accumulate as feedback
// (OnPrefetchHit) that adaptive prefetchers use to size the next window.
type Prefetcher interface {
	// Name reports a stable identifier ("leap", "readahead", ...).
	Name() string
	// OnAccess records that process pid touched page (a fault or a
	// prefetch-cache hit — both reach the swap-in path). When miss is true
	// (the page had to be fetched) it appends the pages to prefetch to dst.
	// It returns dst.
	OnAccess(pid PID, page PageID, miss bool, dst []PageID) []PageID
	// OnPrefetchHit reports that a previously prefetched page was consumed
	// by pid — the feedback signal adaptive prefetchers use.
	OnPrefetchHit(pid PID)
	// Reset discards all learned state.
	Reset()
}

// Factory builds a fresh Prefetcher.
type Factory func() Prefetcher

var registry = map[string]Factory{}

// Register installs a factory under name; it panics on duplicates (a
// programming error at init time).
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("prefetch: duplicate registration %q", name))
	}
	registry[name] = f
}

// New builds a registered prefetcher by name.
func New(name string) (Prefetcher, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown prefetcher %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names reports the registered prefetcher names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("none", func() Prefetcher { return None{} })
	Register("nextnline", func() Prefetcher { return NewNextNLine(8) })
	Register("stride", func() Prefetcher { return NewStride(8) })
	Register("readahead", func() Prefetcher { return NewReadAhead(8) })
	Register("ghb", func() Prefetcher { return NewGHB(8) })
	Register("leap", func() Prefetcher { return NewLeap(core.Config{}) })
}

// None never prefetches.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (None) OnAccess(_ PID, _ PageID, _ bool, dst []PageID) []PageID { return dst }

// OnPrefetchHit implements Prefetcher.
func (None) OnPrefetchHit(PID) {}

// Reset implements Prefetcher.
func (None) Reset() {}
