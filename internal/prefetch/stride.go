package prefetch

// Stride is the classic stride prefetcher [Baer & Chen '91] adapted to the
// paging setting, matching the paper's baseline description: "brings pages
// following a stride pattern relative to the current page upon a cache
// miss; the aggressiveness depends on the accuracy of the past prefetch."
//
// With no program counter visible to the swap path, the stride is the
// delta between the last two faults of the global stream. That makes the
// predictor eager and error-prone on irregular streams — any two unrelated
// faults define a "stride" — which is exactly why the paper's Figure 9/10
// show it with the worst pollution, coverage, and completion time. Depth
// adapts to prefetch-hit feedback: it doubles when the previous window was
// used and halves when it was not.
type Stride struct {
	maxDepth int

	lastAddr PageID
	hasLast  bool
	stride   int64

	depth int
	hits  int
}

// NewStride returns a stride prefetcher with the given maximum depth (the
// evaluation uses 8).
func NewStride(maxDepth int) *Stride {
	if maxDepth < 1 {
		maxDepth = 1
	}
	return &Stride{maxDepth: maxDepth, depth: 1}
}

// Name implements Prefetcher.
func (p *Stride) Name() string { return "stride" }

// OnAccess implements Prefetcher. Stride state tracks every access; fetches
// trigger on misses.
func (p *Stride) OnAccess(_ PID, page PageID, miss bool, dst []PageID) []PageID {
	if !p.hasLast {
		p.lastAddr, p.hasLast = page, true
		return dst
	}
	s := int64(page) - int64(p.lastAddr)
	p.lastAddr = page
	p.stride = s
	if !miss || s == 0 {
		return dst
	}

	// Adapt depth to feedback since the last issue.
	if p.hits > 0 {
		p.depth *= 2
		if p.depth > p.maxDepth {
			p.depth = p.maxDepth
		}
	} else if p.depth > 1 {
		p.depth /= 2
	}
	p.hits = 0

	for k := 1; k <= p.depth; k++ {
		c := page + PageID(int64(k)*p.stride)
		if c < 0 {
			break
		}
		dst = append(dst, c)
	}
	return dst
}

// OnPrefetchHit implements Prefetcher.
func (p *Stride) OnPrefetchHit(PID) { p.hits++ }

// Reset implements Prefetcher.
func (p *Stride) Reset() {
	*p = Stride{maxDepth: p.maxDepth, depth: 1}
}
