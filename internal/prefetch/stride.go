package prefetch

// Stride is the classic stride prefetcher [Baer & Chen '91] adapted to the
// paging setting, matching the paper's baseline description: "brings pages
// following a stride pattern relative to the current page upon a cache
// miss; the aggressiveness depends on the accuracy of the past prefetch."
//
// With no program counter visible to the swap path, the stride is the
// delta between the last two *misses* of the global stream — a hit between
// two misses is feedback, not a new stride sample, so it must not redefine
// the stride the next miss extrapolates from. That still makes the
// predictor eager and error-prone on irregular streams — any two unrelated
// misses define a "stride" — which is exactly why the paper's Figure 9/10
// show it with the worst pollution, coverage, and completion time. Depth
// adapts to prefetch-hit feedback per client: it doubles when the faulting
// client consumed the previous window and halves when it did not (the
// depth itself stays global, like Linux's one swap path).
type Stride struct {
	maxDepth int

	lastAddr PageID
	hasLast  bool
	stride   int64

	depth int
	hits  map[PID]int
}

// NewStride returns a stride prefetcher with the given maximum depth (the
// evaluation uses 8).
func NewStride(maxDepth int) *Stride {
	if maxDepth < 1 {
		maxDepth = 1
	}
	return &Stride{maxDepth: maxDepth, depth: 1, hits: make(map[PID]int)}
}

// Name implements Prefetcher.
func (p *Stride) Name() string { return "stride" }

// OnAccess implements Prefetcher. Stride state advances only on misses: a
// prefetch-cache hit between two misses feeds depth adaptation through
// OnPrefetchHit but must not silently redefine the stride.
func (p *Stride) OnAccess(pid PID, page PageID, miss bool, dst []PageID) []PageID {
	if !miss {
		return dst
	}
	if !p.hasLast {
		p.lastAddr, p.hasLast = page, true
		return dst
	}
	s := int64(page) - int64(p.lastAddr)
	p.lastAddr = page
	p.stride = s
	if s == 0 {
		return dst
	}

	// Adapt depth to the faulting client's feedback since its last issue.
	if p.hits[pid] > 0 {
		p.depth *= 2
		if p.depth > p.maxDepth {
			p.depth = p.maxDepth
		}
	} else if p.depth > 1 {
		p.depth /= 2
	}
	p.hits[pid] = 0

	for k := 1; k <= p.depth; k++ {
		c := page + PageID(int64(k)*p.stride)
		if c < 0 {
			break
		}
		dst = append(dst, c)
	}
	return dst
}

// OnPrefetchHit implements Prefetcher: the consuming client gets the
// credit, so interleaved tenants cannot grow each other's depth.
func (p *Stride) OnPrefetchHit(pid PID) { p.hits[pid]++ }

// Reset implements Prefetcher.
func (p *Stride) Reset() {
	*p = Stride{maxDepth: p.maxDepth, depth: 1, hits: make(map[PID]int)}
}
