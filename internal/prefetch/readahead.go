package prefetch

// ReadAhead models Linux's swap cluster read-ahead (mm/swap_state.c,
// swapin_nr_pages in the v4.x line): on every major fault it reads an
// aligned block of pages containing the faulted page. The block size
// adapts between 2 and the maximum (2^page_cluster = 8 by default) using
// prefetch-hit feedback and the last two fault addresses: it doubles after
// hits or consecutive faults, and halves otherwise. It never turns off
// completely — the always-read-a-cluster behaviour behind the paper's
// cache-pollution critique (§2.3) and Figure 9a's high cache-add count.
//
// Like Linux, it observes the global fault stream: interleaved processes
// both trigger and break its sequentiality test. Hit feedback, however, is
// attributed to the consuming client (per PID): one tenant's consumed
// window must not double the window another tenant's fault sees.
type ReadAhead struct {
	maxWindow int

	lastAddr PageID
	hasLast  bool
	window   int
	hits     map[PID]int
}

// NewReadAhead returns a read-ahead prefetcher with the given maximum
// window (Linux's default swap cluster is 8 pages; the paper evaluates
// with 8).
func NewReadAhead(maxWindow int) *ReadAhead {
	if maxWindow < 2 {
		maxWindow = 2
	}
	return &ReadAhead{maxWindow: maxWindow, window: maxWindow, hits: make(map[PID]int)}
}

// Name implements Prefetcher. The sequentiality test tracks every swap-in;
// block reads are issued on misses.
func (p *ReadAhead) Name() string { return "readahead" }

// OnAccess implements Prefetcher.
func (p *ReadAhead) OnAccess(pid PID, page PageID, miss bool, dst []PageID) []PageID {
	sequential := p.hasLast && (page == p.lastAddr+1 || page == p.lastAddr)
	p.lastAddr, p.hasLast = page, true
	if !miss {
		return dst
	}

	// The §2.3 critique in action: the window decision hangs on the last
	// two faults. A consecutive pair with hits doubles the window; a
	// consecutive pair alone holds it; any non-consecutive pair halves it —
	// so a single interruption (noise, another process, a stride) collapses
	// the window even mid-scan. The hits consulted are the faulting
	// client's own.
	switch {
	case sequential && p.hits[pid] > 0:
		p.window *= 2
	case sequential:
		// Hold.
	default:
		p.window /= 2
	}
	if p.window > p.maxWindow {
		p.window = p.maxWindow
	}
	if p.window < 2 {
		p.window = 2 // the cluster read never fully stops
	}
	p.hits[pid] = 0

	// Aligned block of `window` pages containing the faulted page.
	start := page - page%PageID(p.window)
	for c := start; c < start+PageID(p.window); c++ {
		if c != page && c >= 0 {
			dst = append(dst, c)
		}
	}
	return dst
}

// OnPrefetchHit implements Prefetcher: the consuming client gets the
// credit, so interleaved tenants cannot grow each other's window.
func (p *ReadAhead) OnPrefetchHit(pid PID) { p.hits[pid]++ }

// Reset implements Prefetcher.
func (p *ReadAhead) Reset() {
	*p = ReadAhead{maxWindow: p.maxWindow, window: p.maxWindow, hits: make(map[PID]int)}
}
