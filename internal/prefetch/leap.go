package prefetch

import "leap/internal/core"

// Leap adapts internal/core's majority-trend predictor to the Prefetcher
// interface. By default each process gets its own predictor — the paper's
// page-access isolation (§4.1); setting Shared before first use collapses
// all processes onto a single predictor, which exists only for the
// isolation ablation bench.
type Leap struct {
	// Shared disables per-process isolation when true.
	Shared bool

	cfg   core.Config
	procs map[PID]*core.Predictor

	// lastPID/lastPred memoize the most recent predictor lookup: the fault
	// path typically issues runs of accesses from one process, and the
	// map hit per access is measurable at simulation scale.
	lastPID  PID
	lastPred *core.Predictor
}

// NewLeap returns a Leap prefetcher; zero Config fields take the paper's
// defaults (Hsize=32, Nsplit=2, PWsizemax=8).
func NewLeap(cfg core.Config) *Leap {
	return &Leap{cfg: cfg, procs: make(map[PID]*core.Predictor)}
}

// Name implements Prefetcher.
func (p *Leap) Name() string { return "leap" }

func (p *Leap) predictor(pid PID) *core.Predictor {
	if p.Shared {
		pid = 0
	}
	if p.lastPred != nil && p.lastPID == pid {
		return p.lastPred
	}
	pr, ok := p.procs[pid]
	if !ok {
		pr = core.NewPredictor(p.cfg)
		p.procs[pid] = pr
	}
	p.lastPID, p.lastPred = pid, pr
	return pr
}

// OnAccess implements Prefetcher. Every swap-in is recorded in the access
// history (§4.1's log_access_history); candidate generation — the
// do_prefetch that replaces swapin_readahead — runs only on cache misses.
func (p *Leap) OnAccess(pid PID, page PageID, miss bool, dst []PageID) []PageID {
	pr := p.predictor(pid)
	pr.Record(page)
	if !miss {
		return dst
	}
	return pr.PredictInto(page, dst)
}

// OnPrefetchHit implements Prefetcher.
func (p *Leap) OnPrefetchHit(pid PID) { p.predictor(pid).NoteHit() }

// Reset implements Prefetcher.
func (p *Leap) Reset() {
	p.procs = make(map[PID]*core.Predictor)
	p.lastPred = nil
}

// Predictor exposes pid's predictor (created on first use), for direct
// inspection of its window and history through a live fault path.
func (p *Leap) Predictor(pid PID) *core.Predictor { return p.predictor(pid) }

// ProcessStats reports the per-process predictor statistics, keyed by PID
// (key 0 when Shared).
func (p *Leap) ProcessStats() map[PID]core.Stats {
	out := make(map[PID]core.Stats, len(p.procs))
	for pid, pr := range p.procs {
		out[pid] = pr.Stats()
	}
	return out
}
