package prefetch

import "fmt"

// Ensemble is the online per-client prefetcher selector: a regret-tracking
// bandit over the existing zoo. One instance of each arm runs per stripe,
// observing the full interleaved swap-in stream — exactly the deployment a
// fixed policy would see, which is what makes the one-arm parity oracle
// exact and keeps the global-stream baselines (stride, read-ahead, GHB)
// honest about cross-tenant interference. What is per client (PID) is the
// *selection*: each client scores every arm against its own accesses, and
// only its current winner's candidates are issued for its faults; the
// losers run as shadows, their predictions parked in bounded per-client
// shadow sets that later accesses score against. At the end of each epoch
// (a fixed number of misses) the arms' coverage-minus-pollution scores are
// compared and the selection switches only after a challenger beats the
// incumbent by a hysteresis margin for SwitchStreak consecutive epochs —
// so selection is a pure function of the access stream, deterministic
// given the seed that produced it.
//
// The design follows the ROADMAP's learned-prefetching line (Hashemi et
// al.) collapsed to its cheapest deployable form: instead of learning a
// predictor, learn *which* predictor, with the accuracy/coverage counters
// the runtime already keeps (§3.1 definitions) as the reward signal.
type Ensemble struct {
	cfg   EnsembleConfig
	arms  []string
	insts []Prefetcher // one shared instance per arm, like a fixed policy

	clients map[PID]*ensClient

	// lastPID/lastClient memoize the most recent client lookup, like
	// Leap's predictor memo: fault paths issue runs from one process.
	lastPID    PID
	lastClient *ensClient

	scratch []PageID // shadow arms' prediction buffer, reused

	// Cross-client totals for Stats aggregation.
	epochs   int64
	switches int64
	regret   int64
}

// EnsembleConfig tunes the selector. The zero value of every field selects
// the defaults listed on it.
type EnsembleConfig struct {
	// Arms names the candidate prefetchers, in priority order: index 0 is
	// the initial selection for every client and the tiebreak winner.
	// Default: leap, ghb, stride, readahead, nextnline. "ensemble" itself
	// and "none" are rejected (none has nothing to score).
	Arms []string
	// EpochFaults is the number of misses per client between selection
	// decisions (default 64).
	EpochFaults int
	// Hysteresis is the score margin a challenger must exceed the
	// incumbent by (default 0.1); SwitchStreak is how many consecutive
	// epochs it must hold the margin (default 2).
	Hysteresis   float64
	SwitchStreak int
	// ShadowWindow bounds each shadow arm's parked predictions, in pages
	// (default 256): the oldest prediction is forgotten when a new one
	// overflows the window.
	ShadowWindow int
	// PollutionPenalty weights unconsumed predictions against coverage in
	// the score (default 0.25): score = hits/faults − penalty·misses/issued.
	PollutionPenalty float64
	// HistoryLimit caps each client's recorded selection history (default
	// 64 events; recording stops at the cap, the selector keeps running).
	HistoryLimit int
}

// DefaultEnsembleArms is the default candidate set, in priority order.
var DefaultEnsembleArms = []string{"leap", "ghb", "stride", "readahead", "nextnline"}

// Defaults for EnsembleConfig's zero fields.
const (
	defaultEpochFaults      = 64
	defaultHysteresis       = 0.1
	defaultSwitchStreak     = 2
	defaultShadowWindow     = 256
	defaultPollutionPenalty = 0.25
	defaultHistoryLimit     = 64
)

// Selection is one entry of a client's selection history: the arm that took
// over at the client's Fault-th miss (Fault 0 is the initial selection).
type Selection struct {
	// Fault is the client's cumulative miss count when the arm took over.
	Fault int64
	// Arm is the selected prefetcher's registered name.
	Arm string
}

// ensClient is one client's selector state: the shadow sets and epoch
// counters scoring each shared arm against this client's accesses, and the
// selection machine.
type ensClient struct {
	shadow []shadowSet

	// Per-arm epoch counters: issued predictions and scored hits (real
	// engine feedback for the selected arm, shadow consumption for the
	// rest). Reset every epoch.
	issued []int64
	hits   []int64

	faults      int64 // misses this epoch
	totalFaults int64 // misses since the client appeared

	selected   int
	challenger int
	streak     int

	history []Selection
}

// shadowSet parks a shadow arm's recent predictions: a FIFO ring bounded by
// ShadowWindow plus a refcounted membership map. A later access to a parked
// page consumes it — the counterfactual prefetch hit.
type shadowSet struct {
	ring []PageID
	head int
	n    int
	m    map[PageID]int32
}

func (s *shadowSet) add(pg PageID) {
	if s.n == len(s.ring) {
		old := s.ring[s.head]
		if c, ok := s.m[old]; ok {
			if c <= 1 {
				delete(s.m, old)
			} else {
				s.m[old] = c - 1
			}
		}
	} else {
		s.n++
	}
	s.ring[s.head] = pg
	s.head = (s.head + 1) % len(s.ring)
	s.m[pg]++
}

// consume reports (and forgets) a parked prediction of pg. Stale ring slots
// are tolerated: eviction checks membership before decrementing.
func (s *shadowSet) consume(pg PageID) bool {
	if _, ok := s.m[pg]; !ok {
		return false
	}
	delete(s.m, pg)
	return true
}

func (s *shadowSet) clear() {
	s.head, s.n = 0, 0
	clear(s.m)
}

// NewEnsemble builds the selector, validating the arm names against the
// registry. The zero config takes every default.
func NewEnsemble(cfg EnsembleConfig) (*Ensemble, error) {
	if len(cfg.Arms) == 0 {
		cfg.Arms = DefaultEnsembleArms
	}
	if cfg.EpochFaults <= 0 {
		cfg.EpochFaults = defaultEpochFaults
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = defaultHysteresis
	}
	if cfg.SwitchStreak <= 0 {
		cfg.SwitchStreak = defaultSwitchStreak
	}
	if cfg.ShadowWindow <= 0 {
		cfg.ShadowWindow = defaultShadowWindow
	}
	if cfg.PollutionPenalty <= 0 {
		cfg.PollutionPenalty = defaultPollutionPenalty
	}
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = defaultHistoryLimit
	}
	arms := make([]string, len(cfg.Arms))
	insts := make([]Prefetcher, len(cfg.Arms))
	seen := map[string]bool{}
	for i, name := range cfg.Arms {
		if name == "ensemble" || name == "none" {
			return nil, fmt.Errorf("prefetch: ensemble arm %q not allowed", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("prefetch: duplicate ensemble arm %q", name)
		}
		seen[name] = true
		p, err := New(name)
		if err != nil {
			return nil, fmt.Errorf("prefetch: ensemble arm %d: %w", i, err)
		}
		arms[i], insts[i] = name, p
	}
	return &Ensemble{cfg: cfg, arms: arms, insts: insts, clients: make(map[PID]*ensClient)}, nil
}

// Name implements Prefetcher.
func (e *Ensemble) Name() string { return "ensemble" }

// Arms reports the resolved candidate names, in priority order.
func (e *Ensemble) Arms() []string {
	out := make([]string, len(e.arms))
	copy(out, e.arms)
	return out
}

func (e *Ensemble) client(pid PID) *ensClient {
	if e.lastClient != nil && e.lastPID == pid {
		return e.lastClient
	}
	c, ok := e.clients[pid]
	if !ok {
		c = &ensClient{
			shadow:     make([]shadowSet, len(e.arms)),
			issued:     make([]int64, len(e.arms)),
			hits:       make([]int64, len(e.arms)),
			challenger: -1,
		}
		for i := range c.shadow {
			c.shadow[i] = shadowSet{
				ring: make([]PageID, e.cfg.ShadowWindow),
				m:    make(map[PageID]int32, e.cfg.ShadowWindow),
			}
		}
		c.history = append(c.history, Selection{Fault: 0, Arm: e.arms[0]})
		e.clients[pid] = c
	}
	e.lastPID, e.lastClient = pid, c
	return c
}

// OnAccess implements Prefetcher. Every arm observes the access; only the
// arm this client selected has its candidates appended to dst. The other
// arms' candidates are parked in the client's shadow sets, and a parked
// page being accessed now is that arm's counterfactual prefetch hit — it
// is consumed, scored, and fed back to the arm as OnPrefetchHit so its
// internal window adaptation runs as if its window had been issued.
func (e *Ensemble) OnAccess(pid PID, page PageID, miss bool, dst []PageID) []PageID {
	c := e.client(pid)
	for i, arm := range e.insts {
		if i == c.selected {
			before := len(dst)
			dst = arm.OnAccess(pid, page, miss, dst)
			c.issued[i] += int64(len(dst) - before)
			continue
		}
		sh := &c.shadow[i]
		if sh.consume(page) {
			c.hits[i]++
			arm.OnPrefetchHit(pid)
		}
		e.scratch = arm.OnAccess(pid, page, miss, e.scratch[:0])
		for _, p := range e.scratch {
			c.issued[i]++
			sh.add(p)
		}
	}
	if miss {
		c.faults++
		c.totalFaults++
		if c.faults >= int64(e.cfg.EpochFaults) {
			e.endEpoch(c)
		}
	}
	return dst
}

// OnPrefetchHit implements Prefetcher: real engine feedback belongs to the
// selected arm — it is the one whose predictions were actually issued.
func (e *Ensemble) OnPrefetchHit(pid PID) {
	c := e.client(pid)
	c.hits[c.selected]++
	e.insts[c.selected].OnPrefetchHit(pid)
}

// score is the epoch reward for arm i: coverage minus weighted pollution.
// Coverage is scored hits over the epoch's misses; pollution is the
// unconsumed fraction of the arm's predictions (clamped at 0 — shadow hits
// may consume predictions parked in an earlier epoch).
func (c *ensClient) score(i int, penalty float64) float64 {
	cov := float64(c.hits[i]) / float64(c.faults)
	var pol float64
	if c.issued[i] > 0 {
		if waste := c.issued[i] - c.hits[i]; waste > 0 {
			pol = float64(waste) / float64(c.issued[i])
		}
	}
	return cov - penalty*pol
}

// endEpoch closes the client's epoch: score every arm, accumulate regret,
// advance the hysteresis state machine, and reset the epoch counters.
func (e *Ensemble) endEpoch(c *ensClient) {
	e.epochs++
	best, bestScore := 0, c.score(0, e.cfg.PollutionPenalty)
	bestHits := c.hits[0]
	for i := 1; i < len(e.insts); i++ {
		if s := c.score(i, e.cfg.PollutionPenalty); s > bestScore {
			best, bestScore = i, s
		}
		if c.hits[i] > bestHits {
			bestHits = c.hits[i]
		}
	}
	// Regret in the bandit sense, measured in prefetch hits: what the best
	// arm scored this epoch beyond what the selected arm scored.
	if d := bestHits - c.hits[c.selected]; d > 0 {
		e.regret += d
	}
	if best != c.selected && bestScore > c.score(c.selected, e.cfg.PollutionPenalty)+e.cfg.Hysteresis {
		if c.challenger == best {
			c.streak++
		} else {
			c.challenger, c.streak = best, 1
		}
		if c.streak >= e.cfg.SwitchStreak {
			c.selected = best
			c.challenger, c.streak = -1, 0
			e.switches++
			if len(c.history) < e.cfg.HistoryLimit {
				c.history = append(c.history, Selection{Fault: c.totalFaults, Arm: e.arms[best]})
			}
			// The new incumbent's predictions now issue for real; the old
			// one restarts as a shadow. Clear every shadow set so no arm
			// is scored on a stale counterfactual.
			for i := range c.shadow {
				c.shadow[i].clear()
			}
		}
	} else {
		c.challenger, c.streak = -1, 0
	}
	for i := range c.issued {
		c.issued[i], c.hits[i] = 0, 0
	}
	c.faults = 0
}

// Reset implements Prefetcher.
func (e *Ensemble) Reset() {
	for _, p := range e.insts {
		p.Reset()
	}
	e.clients = make(map[PID]*ensClient)
	e.lastClient = nil
	e.epochs, e.switches, e.regret = 0, 0, 0
}

// Selected reports the arm currently routing pid's live prefetches (ok
// false before the client's first access).
func (e *Ensemble) Selected(pid PID) (string, bool) {
	c, ok := e.clients[pid]
	if !ok {
		return "", false
	}
	return e.arms[c.selected], true
}

// History reports a copy of pid's selection history: the initial arm plus
// every switch, capped at HistoryLimit.
func (e *Ensemble) History(pid PID) []Selection {
	c, ok := e.clients[pid]
	if !ok {
		return nil
	}
	out := make([]Selection, len(c.history))
	copy(out, c.history)
	return out
}

// ClientArm exposes the named arm's shared per-stripe instance, gated on
// pid having appeared on this stripe (ok false for an unknown client or
// arm) — e.g. the "leap" arm for per-process predictor statistics.
func (e *Ensemble) ClientArm(pid PID, name string) (Prefetcher, bool) {
	if _, ok := e.clients[pid]; !ok {
		return nil, false
	}
	for i, n := range e.arms {
		if n == name {
			return e.insts[i], true
		}
	}
	return nil, false
}

// Totals reports the selector's cross-client accounting: clients seen,
// epochs closed, switches taken, and cumulative regret in prefetch hits.
func (e *Ensemble) Totals() (clients int, epochs, switches, regret int64) {
	return len(e.clients), e.epochs, e.switches, e.regret
}

func init() {
	Register("ensemble", func() Prefetcher {
		en, err := NewEnsemble(EnsembleConfig{})
		if err != nil {
			// Unreachable: the default config is always valid.
			panic(err)
		}
		return en
	})
}
