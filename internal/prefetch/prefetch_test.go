package prefetch

import (
	"reflect"
	"testing"
	"testing/quick"

	"leap/internal/core"
)

func TestRegistry(t *testing.T) {
	want := []string{"ensemble", "ghb", "leap", "nextnline", "none", "readahead", "stride"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("New(bogus) did not error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("none", func() Prefetcher { return None{} })
}

func TestNone(t *testing.T) {
	var p None
	if got := p.OnAccess(1, 100, true, nil); len(got) != 0 {
		t.Fatalf("None predicted %v", got)
	}
	dst := []PageID{5}
	if got := p.OnAccess(1, 100, true, dst); len(got) != 1 || got[0] != 5 {
		t.Fatalf("None broke the append contract: %v", got)
	}
	p.OnPrefetchHit(1) // must not panic
	p.Reset()
}

func TestNextNLine(t *testing.T) {
	p := NewNextNLine(4)
	got := p.OnAccess(1, 100, true, nil)
	want := []PageID{101, 102, 103, 104}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OnAccess = %v, want %v", got, want)
	}
	// Unconditional: random accesses predict just as much.
	if got := p.OnAccess(1, 9999, true, nil); len(got) != 4 {
		t.Fatalf("NextNLine throttled: %v", got)
	}
}

func TestNextNLineMinDepth(t *testing.T) {
	p := NewNextNLine(0)
	if got := p.OnAccess(1, 10, true, nil); len(got) != 1 {
		t.Fatalf("depth floor broken: %v", got)
	}
}

func TestStridePredictsFromLastDelta(t *testing.T) {
	p := NewStride(8)
	if got := p.OnAccess(1, 100, true, nil); len(got) != 0 {
		t.Fatalf("predicted on first access: %v", got)
	}
	got := p.OnAccess(1, 110, true, nil) // delta 10 established
	if len(got) == 0 || got[0] != 120 {
		t.Fatalf("stride predicted %v, want [120 ...]", got)
	}
}

func TestStrideAggressiveOnIrregularity(t *testing.T) {
	// The baseline's weakness (Figure 9): any two unrelated faults define a
	// "stride", so irregular streams still trigger (wrong) prefetches.
	p := NewStride(8)
	p.OnAccess(1, 100, true, nil)
	p.OnAccess(1, 110, true, nil)
	got := p.OnAccess(1, 5000, true, nil) // delta 4890
	if len(got) == 0 || got[0] != 5000+4890 {
		t.Fatalf("irregular delta predicted %v, want [9890 ...]", got)
	}
	// Hits on no-hit windows shrink depth back toward 1.
	n := len(p.OnAccess(1, 5010, true, nil))
	if n > 1 {
		t.Fatalf("depth did not shrink without hits: %d", n)
	}
}

func TestStrideSkipsZeroDelta(t *testing.T) {
	p := NewStride(8)
	p.OnAccess(1, 100, true, nil)
	if got := p.OnAccess(1, 100, true, nil); len(got) != 0 {
		t.Fatalf("zero delta predicted %v", got)
	}
}

func TestStrideDepthAdapts(t *testing.T) {
	p := NewStride(8)
	p.OnAccess(1, 0, true, nil)
	p.OnAccess(1, 10, true, nil)
	n1 := len(p.OnAccess(1, 20, true, nil))
	p.OnPrefetchHit(1)
	n2 := len(p.OnAccess(1, 30, true, nil))
	p.OnPrefetchHit(1)
	n3 := len(p.OnAccess(1, 40, true, nil))
	if !(n1 <= n2 && n2 <= n3) || n3 < 2 {
		t.Fatalf("depth did not grow with hits: %d %d %d", n1, n2, n3)
	}
	// No hits: depth halves.
	n4 := len(p.OnAccess(1, 50, true, nil))
	if n4 > n3 {
		t.Fatalf("depth grew without hits: %d -> %d", n3, n4)
	}
}

func TestStrideHitBetweenMissesKeepsStride(t *testing.T) {
	// Regression: a prefetch-cache hit between two misses must not redefine
	// the stride. Before the fix, the hit at 15 rewrote lastAddr, so the
	// next miss at 20 extrapolated a bogus stride of 5 and predicted 25.
	p := NewStride(8)
	p.OnAccess(1, 0, true, nil)
	p.OnAccess(1, 10, true, nil)  // stride 10 established
	p.OnAccess(1, 15, false, nil) // hit: feedback only, not a stride sample
	got := p.OnAccess(1, 20, true, nil)
	if len(got) == 0 || got[0] != 30 {
		t.Fatalf("predicted %v after a hit between misses, want [30 ...]", got)
	}
}

func TestStrideHitAttributionPerClient(t *testing.T) {
	// Regression: before PID-keyed hit feedback, client 1's consumed window
	// doubled the depth client 2's fault saw.
	p := NewStride(8)
	p.OnAccess(1, 0, true, nil)
	p.OnAccess(1, 10, true, nil)
	p.OnPrefetchHit(1) // client 1 consumed its window
	if n := len(p.OnAccess(2, 20, true, nil)); n != 1 {
		t.Fatalf("client 2 issued %d pages on client 1's credit, want 1", n)
	}
	if n := len(p.OnAccess(1, 30, true, nil)); n != 2 {
		t.Fatalf("client 1's own credit yielded depth %d, want 2", n)
	}
}

func TestReadAheadHitAttributionPerClient(t *testing.T) {
	// Regression: the window decision must consult the faulting client's
	// own hits, not a global tally another tenant filled.
	p := NewReadAhead(8)
	for _, a := range []PageID{90000, 16, 55554, 320, 77776} {
		p.OnAccess(1, a, true, nil) // decay the window to the minimum
	}
	p.OnPrefetchHit(1)
	p.OnPrefetchHit(1) // client 1 banks two hits
	p.OnAccess(2, 200, true, nil)
	if n := len(p.OnAccess(2, 201, true, nil)); n != 1 {
		t.Fatalf("client 2's sequential pair grew the window on client 1's hits: %d candidates, want 1", n)
	}
	p.OnAccess(1, 300, true, nil)
	p.OnPrefetchHit(1)
	if n := len(p.OnAccess(1, 301, true, nil)); n <= 1 {
		t.Fatalf("client 1's own hit did not grow the window: %d candidates", n)
	}
}

func TestStrideNeverNegative(t *testing.T) {
	p := NewStride(8)
	p.OnAccess(1, 30, true, nil)
	p.OnAccess(1, 20, true, nil)
	got := p.OnAccess(1, 10, true, nil) // stride -10 confirmed
	for _, c := range got {
		if c < 0 {
			t.Fatalf("negative candidate: %v", got)
		}
	}
}

func TestReadAheadAlignedBlock(t *testing.T) {
	p := NewReadAhead(8)
	p.OnPrefetchHit(1)
	p.OnAccess(1, 100, true, nil)
	got := p.OnAccess(1, 101, true, nil) // sequential pair
	if len(got) == 0 {
		t.Fatal("sequential pair produced no read-ahead")
	}
	// All candidates must lie in one aligned block containing 101 and
	// exclude 101 itself.
	for _, c := range got {
		if c == 101 {
			t.Fatalf("block includes the faulted page: %v", got)
		}
		if c/8 != 101/8 && c/4 != 101/4 && c/2 != 101/2 {
			t.Fatalf("candidate %d not in an aligned block around 101: %v", c, got)
		}
	}
}

func TestReadAheadShrinksOnRandomButNeverStops(t *testing.T) {
	p := NewReadAhead(8)
	// Random faults decay the window to the 2-page minimum — the cluster
	// read never fully turns off (Linux swapin behaviour).
	n := 8
	addrs := []PageID{90000, 16, 55554, 320, 77776, 1234, 999998}
	for _, a := range addrs {
		n = len(p.OnAccess(1, a, true, nil))
	}
	if n != 1 { // 2-page aligned block minus the faulted page
		t.Fatalf("window did not decay to minimum (got %d candidates)", n)
	}
}

func TestReadAheadRegrowsAfterDecay(t *testing.T) {
	p := NewReadAhead(8)
	for _, a := range []PageID{90000, 16, 55554, 320, 77776} {
		p.OnAccess(1, a, true, nil)
	}
	small := len(p.OnAccess(1, 200, true, nil))
	if small != 1 {
		t.Fatalf("window not at minimum after random faults: %d candidates", small)
	}
	// A sequential pair alone holds the window; growth needs hits too.
	p.OnPrefetchHit(1)
	got := len(p.OnAccess(1, 201, true, nil))
	if got <= small {
		t.Fatalf("read-ahead did not regrow after a hit + sequential pair: %d -> %d", small, got)
	}
	// Further hits on consecutive faults double it toward the max.
	p.OnPrefetchHit(1)
	n1 := len(p.OnAccess(1, 202, true, nil))
	p.OnPrefetchHit(1)
	n2 := len(p.OnAccess(1, 203, true, nil))
	if !(n1 <= n2 && n2 <= 7) {
		t.Fatalf("hit-driven growth broken: %d, %d", n1, n2)
	}
}

func TestLeapPerProcessIsolation(t *testing.T) {
	p := NewLeap(core.Config{})
	// Process 1: sequential. Process 2: interleaved random faults that would
	// destroy a shared history.
	seed := uint64(1)
	for i := 0; i < 100; i++ {
		p.OnAccess(1, PageID(i), true, nil)
		seed = seed*6364136223846793005 + 1
		p.OnAccess(2, PageID(seed%(1<<30)), true, nil)
	}
	got := p.OnAccess(1, 100, true, nil)
	if len(got) == 0 || got[0] != 101 {
		t.Fatalf("isolated predictor lost the sequential trend: %v", got)
	}
	stats := p.ProcessStats()
	if len(stats) != 2 {
		t.Fatalf("expected 2 per-process predictors, got %d", len(stats))
	}
	if stats[1].TrendHits == 0 {
		t.Fatal("process 1 should have trend hits")
	}
}

func TestLeapSharedModeCollapses(t *testing.T) {
	p := NewLeap(core.Config{})
	p.Shared = true
	for i := 0; i < 50; i++ {
		p.OnAccess(PID(i%5), PageID(i), true, nil)
	}
	if len(p.ProcessStats()) != 1 {
		t.Fatal("shared mode must keep exactly one predictor")
	}
}

func TestLeapHitFeedbackGrowsWindow(t *testing.T) {
	p := NewLeap(core.Config{})
	for i := 0; i < 40; i++ {
		p.OnAccess(7, PageID(i), true, nil)
	}
	for k := 0; k < 8; k++ {
		p.OnPrefetchHit(7)
	}
	got := p.OnAccess(7, 40, true, nil)
	if len(got) != 8 {
		t.Fatalf("window = %d after 8 hits, want 8", len(got))
	}
}

func TestLeapReset(t *testing.T) {
	p := NewLeap(core.Config{})
	p.OnAccess(1, 1, true, nil)
	p.Reset()
	if len(p.ProcessStats()) != 0 {
		t.Fatal("Reset kept predictors")
	}
}

func TestAllPrefetchersNeverPredictNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		names := Names()
		for _, name := range names {
			p, err := New(name)
			if err != nil {
				return false
			}
			s := seed
			for i := 0; i < 200; i++ {
				s = s*6364136223846793005 + 1442695040888963407
				page := PageID(s % (1 << 20))
				for _, c := range p.OnAccess(PID(s%3), page, true, nil) {
					if c < 0 {
						return false
					}
				}
				if s%4 == 0 {
					p.OnPrefetchHit(PID(s % 3))
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOnAccessAppendContract(t *testing.T) {
	// Property: OnAccess must append to dst, preserving its contents.
	for _, name := range Names() {
		p, _ := New(name)
		// Warm up so adaptive prefetchers actually predict.
		for i := 0; i < 30; i++ {
			p.OnAccess(1, PageID(i), true, nil)
			p.OnPrefetchHit(1)
		}
		dst := []PageID{424242}
		out := p.OnAccess(1, 30, true, dst)
		if out[0] != 424242 {
			t.Errorf("%s: OnAccess clobbered dst", name)
		}
	}
}
