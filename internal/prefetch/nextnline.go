package prefetch

// NextNLine is the classic next-N-line prefetcher: every access to page P
// requests P+1 … P+N. It has no adaptivity whatsoever — maximal coverage on
// sequential streams, maximal pollution on everything else — which is
// exactly the contrast the paper's Figure 9/10 draws.
type NextNLine struct {
	n int
}

// NewNextNLine returns a Next-N-Line prefetcher with depth n (the paper's
// evaluation uses 8, matching the 8-page prefetch window).
func NewNextNLine(n int) *NextNLine {
	if n < 1 {
		n = 1
	}
	return &NextNLine{n: n}
}

// Name implements Prefetcher.
func (p *NextNLine) Name() string { return "nextnline" }

// OnAccess implements Prefetcher. Candidates are generated on misses only
// ("pages sequentially mapped to the page with the cache miss").
func (p *NextNLine) OnAccess(_ PID, page PageID, miss bool, dst []PageID) []PageID {
	if !miss {
		return dst
	}
	for k := 1; k <= p.n; k++ {
		dst = append(dst, page+PageID(k))
	}
	return dst
}

// OnPrefetchHit implements Prefetcher: Next-N-Line ignores feedback.
func (p *NextNLine) OnPrefetchHit(PID) {}

// Reset implements Prefetcher.
func (p *NextNLine) Reset() {}
