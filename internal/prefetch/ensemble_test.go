package prefetch

import (
	"reflect"
	"testing"
)

func TestEnsembleArmValidation(t *testing.T) {
	cases := []struct {
		name string
		arms []string
	}{
		{"self", []string{"ensemble"}},
		{"none", []string{"leap", "none"}},
		{"duplicate", []string{"leap", "leap"}},
		{"unknown", []string{"bogus"}},
	}
	for _, tc := range cases {
		if _, err := NewEnsemble(EnsembleConfig{Arms: tc.arms}); err == nil {
			t.Errorf("%s: NewEnsemble(%v) did not error", tc.name, tc.arms)
		}
	}
	en, err := NewEnsemble(EnsembleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := en.Arms(); !reflect.DeepEqual(got, DefaultEnsembleArms) {
		t.Fatalf("default Arms() = %v, want %v", got, DefaultEnsembleArms)
	}
	if en.Name() != "ensemble" {
		t.Fatalf("Name() = %q", en.Name())
	}
}

// ensemblePairJumpStream drives the classic shadow-separating stream: pairs
// of consecutive misses separated by large jumps. Next-N-line scores a
// counterfactual hit on every second access; stride's extrapolations from
// the alternating deltas land nowhere.
func ensemblePairJumpStream(en *Ensemble, accesses int) {
	base := PageID(0)
	for i := 0; i < accesses; i++ {
		pg := base
		if i%2 == 1 {
			pg = base + 1
			base += 1000
		}
		en.OnAccess(1, pg, true, nil)
	}
}

func TestEnsembleSwitchesToBetterArm(t *testing.T) {
	en, err := NewEnsemble(EnsembleConfig{
		Arms:         []string{"stride", "nextnline"},
		EpochFaults:  8,
		SwitchStreak: 2,
		Hysteresis:   0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if arm, ok := en.Selected(1); ok || arm != "" {
		t.Fatalf("Selected before first access = %q, %v", arm, ok)
	}
	ensemblePairJumpStream(en, 40)
	if arm, ok := en.Selected(1); !ok || arm != "nextnline" {
		t.Fatalf("Selected = %q, %v; want nextnline", arm, ok)
	}
	h := en.History(1)
	if len(h) != 2 || h[0].Arm != "stride" || h[0].Fault != 0 || h[1].Arm != "nextnline" {
		t.Fatalf("History = %+v", h)
	}
	if h[1].Fault <= 0 {
		t.Fatalf("switch recorded at fault %d", h[1].Fault)
	}
	clients, epochs, switches, regret := en.Totals()
	if clients != 1 || switches != 1 || epochs < 4 {
		t.Fatalf("Totals = %d clients, %d epochs, %d switches", clients, epochs, switches)
	}
	if regret <= 0 {
		t.Fatalf("regret = %d; stride held the selection while nextnline scored shadow hits", regret)
	}
	// The new incumbent's candidates now issue for real.
	got := en.OnAccess(1, 5_000_000, true, nil)
	want := []PageID{5_000_001, 5_000_002, 5_000_003, 5_000_004, 5_000_005, 5_000_006, 5_000_007, 5_000_008}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-switch candidates = %v, want %v", got, want)
	}
}

func TestEnsembleDeterministic(t *testing.T) {
	run := func() ([][]PageID, []Selection) {
		en, err := NewEnsemble(EnsembleConfig{
			Arms:         []string{"stride", "nextnline"},
			EpochFaults:  8,
			SwitchStreak: 2,
			Hysteresis:   0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		var outs [][]PageID
		base := PageID(0)
		for i := 0; i < 60; i++ {
			pg := base
			if i%2 == 1 {
				pg = base + 1
				base += 1000
			}
			out := en.OnAccess(2, pg, true, nil)
			cp := make([]PageID, len(out))
			copy(cp, out)
			outs = append(outs, cp)
			if i%5 == 0 {
				en.OnPrefetchHit(2)
			}
		}
		return outs, en.History(2)
	}
	o1, h1 := run()
	o2, h2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("same stream produced different candidate sequences")
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatalf("same stream produced different histories: %+v vs %+v", h1, h2)
	}
}

// TestEnsembleOneArmShadowFree pins the parity contract the runtime-level
// oracle (TestEnsembleOneArmMatchesFixed) relies on: with a single arm the
// selected arm sees exactly the fixed policy's OnAccess/OnPrefetchHit
// stream, so outputs match call for call.
func TestEnsembleOneArmShadowFree(t *testing.T) {
	en, err := NewEnsemble(EnsembleConfig{Arms: []string{"readahead"}})
	if err != nil {
		t.Fatal(err)
	}
	fixed := NewReadAhead(8)
	s := uint64(99)
	for i := 0; i < 300; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		pg := PageID(s % 4096)
		miss := s%3 != 0
		got := en.OnAccess(3, pg, miss, nil)
		want := fixed.OnAccess(3, pg, miss, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: ensemble = %v, fixed = %v", i, got, want)
		}
		if s%7 == 0 {
			en.OnPrefetchHit(3)
			fixed.OnPrefetchHit(3)
		}
	}
	clients, _, switches, regret := en.Totals()
	if clients != 1 || switches != 0 || regret != 0 {
		t.Fatalf("one-arm Totals: %d clients, %d switches, %d regret", clients, switches, regret)
	}
}

func TestEnsembleClientArmAndReset(t *testing.T) {
	en, err := NewEnsemble(EnsembleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	en.OnAccess(5, 100, true, nil)
	if _, ok := en.ClientArm(5, "leap"); !ok {
		t.Fatal("ClientArm(5, leap) not found after access")
	}
	if _, ok := en.ClientArm(5, "bogus"); ok {
		t.Fatal("ClientArm found an arm that is not configured")
	}
	if _, ok := en.ClientArm(99, "leap"); ok {
		t.Fatal("ClientArm found an unseen client")
	}
	en.Reset()
	if _, ok := en.ClientArm(5, "leap"); ok {
		t.Fatal("Reset kept client state")
	}
	if clients, epochs, switches, regret := en.Totals(); clients+int(epochs+switches+regret) != 0 {
		t.Fatal("Reset kept totals")
	}
	// The memoized client pointer must not survive Reset.
	en.OnAccess(5, 100, true, nil)
	if _, ok := en.Selected(5); !ok {
		t.Fatal("client not rebuilt after Reset")
	}
}

func TestShadowSetWindowAndConsume(t *testing.T) {
	s := shadowSet{ring: make([]PageID, 2), m: make(map[PageID]int32, 2)}
	s.add(1)
	s.add(2)
	s.add(3) // evicts 1
	if s.consume(1) {
		t.Fatal("evicted page still consumable")
	}
	if !s.consume(3) {
		t.Fatal("parked page not consumable")
	}
	if s.consume(3) {
		t.Fatal("page consumed twice")
	}
	// Duplicate parks collapse to one consumable entry (whole-key delete).
	s.clear()
	s.add(7)
	s.add(7)
	if !s.consume(7) || s.consume(7) {
		t.Fatal("duplicate parks must consume exactly once")
	}
}
