package prefetch

import (
	"testing"
)

func TestGHBNeedsHistory(t *testing.T) {
	p := NewGHB(8)
	if got := p.OnAccess(1, 100, true, nil); len(got) != 0 {
		t.Fatalf("predicted with no history: %v", got)
	}
	if got := p.OnAccess(1, 101, true, nil); len(got) != 0 {
		t.Fatalf("predicted with one delta: %v", got)
	}
}

func TestGHBReplaysRecurringSequence(t *testing.T) {
	p := NewGHB(4)
	// Teach it an irregular but recurring delta sequence: +3 +5 +2 +7,
	// repeated from different bases.
	deltas := []int64{3, 5, 2, 7}
	page := PageID(1000)
	p.OnAccess(1, page, true, nil)
	for rep := 0; rep < 3; rep++ {
		for _, d := range deltas {
			page += PageID(d)
			p.OnAccess(1, page, true, nil)
			// Replayed windows get consumed during teaching, so the
			// adaptive depth holds instead of decaying.
			p.OnPrefetchHit(1)
		}
	}
	// Start the sequence once more: after the (+3, +5) pair recurs, the
	// buffer should replay what followed last time: +2 then +7.
	page += 3
	p.OnAccess(1, page, true, nil)
	page += 5
	got := p.OnAccess(1, page, true, nil)
	if len(got) < 2 {
		t.Fatalf("no replay predictions: %v", got)
	}
	if got[0] != page+2 || got[1] != page+2+7 {
		t.Fatalf("replay = %v, want [%d %d ...]", got, page+2, page+2+7)
	}
}

func TestGHBSequentialWorks(t *testing.T) {
	p := NewGHB(4)
	var got []PageID
	for i := 0; i < 20; i++ {
		got = p.OnAccess(1, PageID(100+i), true, nil)
	}
	if len(got) == 0 || got[0] != 120 {
		t.Fatalf("sequential replay = %v, want [120 ...]", got)
	}
}

func TestGHBNoPredictionOnHits(t *testing.T) {
	p := NewGHB(4)
	for i := 0; i < 20; i++ {
		p.OnAccess(1, PageID(i), true, nil)
	}
	if got := p.OnAccess(1, 20, false, nil); len(got) != 0 {
		t.Fatalf("predicted on a cache hit: %v", got)
	}
}

func TestGHBNeverNegative(t *testing.T) {
	p := NewGHB(8)
	// Descending pattern near zero.
	for i := 30; i >= 0; i -= 3 {
		for _, c := range p.OnAccess(1, PageID(i), true, nil) {
			if c < 0 {
				t.Fatalf("negative candidate %d", c)
			}
		}
	}
}

func TestGHBBufferWraps(t *testing.T) {
	p := NewGHB(4)
	// Push far more deltas than the buffer holds; must not panic and must
	// still predict on fresh recurrences.
	for i := 0; i < ghbBufferSize*3; i++ {
		p.OnAccess(1, PageID(i*2), true, nil)
	}
	got := p.OnAccess(1, PageID(ghbBufferSize*3*2+2), true, nil)
	_ = got // prediction depends on aliasing; the test is absence of panics
	if p.n != ghbBufferSize {
		t.Fatalf("buffer fill = %d, want %d", p.n, ghbBufferSize)
	}
}

func TestGHBReset(t *testing.T) {
	p := NewGHB(4)
	for i := 0; i < 20; i++ {
		p.OnAccess(1, PageID(i), true, nil)
	}
	p.Reset()
	if got := p.OnAccess(1, 100, true, nil); len(got) != 0 {
		t.Fatalf("predicted right after reset: %v", got)
	}
	if p.Name() != "ghb" {
		t.Fatal("reset lost identity")
	}
}

func TestGHBRegistered(t *testing.T) {
	p, err := New("ghb")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "ghb" {
		t.Fatalf("Name = %q", p.Name())
	}
}
