package prefetch

// GHB is a Global History Buffer prefetcher in the delta-correlation (G/DC)
// style of Nesbit & Smith [HPCA'04], the "GHB PC" row of the paper's
// Table 1, adapted to the paging setting (no program counter: the index is
// the pair of the two most recent fault deltas).
//
// A circular global history buffer holds the last N fault deltas. On a
// miss, the last two deltas form a correlation key; the most recent earlier
// occurrence of that key is located through an index table, and the deltas
// that followed it are replayed from the current page as predictions.
//
// Strengths and weaknesses match Table 1: it captures recurring *irregular*
// delta sequences that stride/read-ahead cannot (temporal locality ✓), but
// costs more memory (buffer + index) and more work per fault than Leap's
// O(1)-space majority vote, and in the kernel's PC-less setting its keys
// alias heavily across phases and processes.
type GHB struct {
	maxDepth int // configured prediction-depth ceiling
	depth    int // current adaptive prediction depth per miss

	// outstanding counts predictions issued since the last depth
	// adaptation; hits holds per-client consumed-prefetch feedback. Depth
	// only adapts once a window is actually out (outstanding > 0), so a
	// cold buffer neither grows nor decays.
	outstanding int
	hits        map[PID]int

	buf  []int64 // circular delta history
	link []int   // per-entry pointer to the previous occurrence of its key
	gen  []int64 // generation stamp per slot, to invalidate stale links
	head int     // next write position
	n    int     // valid entries
	tick int64   // monotone insertion counter

	// index maps a delta-pair key to the buffer position of its most
	// recent occurrence (and that occurrence's generation).
	index map[[2]int64]ghbRef

	lastAddr  PageID
	hasLast   bool
	prevDelta int64
	hasPrev   bool
}

// ghbBufferSize bounds the global history (deltas retained).
const ghbBufferSize = 256

// ghbRef locates a buffer entry at a specific generation; if the slot has
// been overwritten since (generation mismatch), the reference is stale.
type ghbRef struct {
	pos int
	gen int64
}

// NewGHB returns a GHB prefetcher predicting up to depth pages per miss.
// The replay depth adapts between 1 and depth on per-client prefetch-hit
// feedback: a consumed window doubles it, an unconsumed one halves it.
func NewGHB(depth int) *GHB {
	if depth < 1 {
		depth = 1
	}
	return &GHB{
		maxDepth: depth,
		depth:    depth,
		hits:     make(map[PID]int),
		buf:      make([]int64, ghbBufferSize),
		link:     make([]int, ghbBufferSize),
		gen:      make([]int64, ghbBufferSize),
		index:    make(map[[2]int64]ghbRef),
	}
}

// Name implements Prefetcher.
func (p *GHB) Name() string { return "ghb" }

// push appends a delta to the history buffer and returns its position.
func (p *GHB) push(d int64) int {
	pos := p.head
	p.buf[pos] = d
	p.tick++
	p.gen[pos] = p.tick
	p.link[pos] = -1
	p.head = (p.head + 1) % len(p.buf)
	if p.n < len(p.buf) {
		p.n++
	}
	return pos
}

// live reports whether ref still refers to the entry it indexed.
func (p *GHB) live(ref ghbRef) bool {
	return ref.pos >= 0 && p.gen[ref.pos] == ref.gen
}

// OnAccess implements Prefetcher.
func (p *GHB) OnAccess(pid PID, page PageID, miss bool, dst []PageID) []PageID {
	if !p.hasLast {
		p.lastAddr, p.hasLast = page, true
		return dst
	}
	delta := int64(page) - int64(p.lastAddr)
	p.lastAddr = page

	var key [2]int64
	haveKey := false
	if p.hasPrev {
		key = [2]int64{p.prevDelta, delta}
		haveKey = true
	}
	p.prevDelta, p.hasPrev = delta, true

	pos := p.push(delta)
	if !haveKey {
		return dst
	}
	// Chain this occurrence to the previous one of the same key, then
	// re-index.
	prior, seen := p.index[key]
	if seen && p.live(prior) {
		p.link[pos] = prior.pos
	}
	p.index[key] = ghbRef{pos: pos, gen: p.gen[pos]}

	if !miss || !seen || !p.live(prior) {
		return dst
	}

	// Adapt the replay depth to the faulting client's feedback on the last
	// issued window: consumed doubles, ignored halves. Only adapts when a
	// window is actually outstanding, so teaching a cold buffer leaves the
	// depth untouched.
	if p.outstanding > 0 {
		if p.hits[pid] > 0 {
			p.depth *= 2
			if p.depth > p.maxDepth {
				p.depth = p.maxDepth
			}
		} else if p.depth > 1 {
			p.depth /= 2
		}
		p.hits[pid] = 0
		p.outstanding = 0
	}

	// Walk the occurrence chain (newest first) until one has forward room
	// to replay from — for pure strides the most recent occurrence is
	// adjacent to the present and yields nothing; an older one does.
	cand := prior.pos
	for hops := 0; hops < 4 && cand >= 0; hops++ {
		before := len(dst)
		cur := int64(page)
		walk := (cand + 1) % len(p.buf)
		for k := 0; k < p.depth; k++ {
			if walk == pos { // caught up to the present
				break
			}
			cur += p.buf[walk]
			if cur >= 0 {
				dst = append(dst, PageID(cur))
			}
			walk = (walk + 1) % len(p.buf)
		}
		if len(dst) > before {
			p.outstanding += len(dst) - before
			return dst
		}
		next := p.link[cand]
		if next == cand {
			break
		}
		cand = next
	}
	return dst
}

// OnPrefetchHit implements Prefetcher: classic GHB has no hit feedback,
// but the paging setting supplies it for free, and without it the replay
// depth cannot adapt. Credit goes to the consuming client.
func (p *GHB) OnPrefetchHit(pid PID) { p.hits[pid]++ }

// Reset implements Prefetcher.
func (p *GHB) Reset() {
	*p = *NewGHB(p.maxDepth)
}
