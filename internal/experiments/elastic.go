package experiments

import (
	"fmt"
	"math"
	"strings"

	"leap/internal/control"
	"leap/internal/core"
	"leap/internal/metrics"
	"leap/internal/rdma"
	"leap/internal/remote"
	"leap/internal/sim"
)

// The `-fig elastic` experiment drives the remote-memory engine open-loop
// through a diurnal traffic ramp — arrival gaps shrink sinusoidally to a
// peak and widen again — with a network partition landing on one agent
// during the ramp-up. The same workload runs twice: a static 3-agent
// cluster, and the same cluster under the internal/control plane (failure
// detector + autoscaler + hot-page replicas, provisioning up to 8 agents).
// The static run rides out the fault paying the failure-detection timeout
// on every read whose primary is partitioned and saturates its three fabric
// queues at peak; the control loop fails the partitioned agent over after a
// few ticks of error pressure, re-replicates, grows the pool through the
// peak and drains it again as traffic falls. Everything is deterministic:
// σ=0 latency distributions, seeded RNG forks, virtual time — two runs of
// the same (Scale, seed) are byte-identical.

// Elastic model constants: per-call host submission cost on the serial CPU
// cursor, the failure-detection timeout charged per unreachable call, the
// per-op wire occupancy that makes fabric queues the scaling bottleneck,
// and the cluster size bounds.
const (
	elasticSubmitCost = 300 * sim.Nanosecond
	elasticDetectCost = 30 * sim.Microsecond
	elasticService    = 5 * sim.Microsecond
	elasticMinAgents  = 3
	elasticMaxAgents  = 8
	elasticGapMax     = 12 * sim.Microsecond
	elasticGapMin     = 1700 * sim.Nanosecond
)

// ElasticRow is one run of the ramp: overall and windowed tail latency,
// fault exposure, and the control actions taken.
type ElasticRow struct {
	Label   string
	Ops     int64
	P50     sim.Duration
	P99     sim.Duration
	PeakP99 sim.Duration // ops in the middle tenth of the ramp (peak load)
	FaultP9 sim.Duration // p99 of ops inside the partition window
	// Failover is the virtual time the run was exposed to the fault: for
	// the control run, partition start → the detector's fail+repair action;
	// for the static run, the whole partition window.
	Failover sim.Duration
	LiveEnd  int // live agents when the run ends
	ScaleUps, ScaleDowns,
	Fails, Recovers, HotAdds int
}

// ElasticResult is the `-fig elastic` output: the static baseline row and
// the self-healing row over the identical workload.
type ElasticResult struct {
	Static  ElasticRow
	Control ElasticRow
}

// elasticLoop charges transport calls to the open-loop accounting model:
// submission cost on a serial host-CPU cursor, wire time on the per-agent
// fabric queues, the detection timeout for unreachable agents. When a
// control plane is attached every call is also reported as an observation.
//
// Background traffic — the populate pass, and repair/rebalance copies run
// by control actions — rides a reserved lane (its own fabric instance and
// cursor, the paper's throttled-background-I/O discipline) so maintenance
// never queues behind demand fetches; it is also invisible to the detector,
// which watches demand-path submissions only.
type elasticLoop struct {
	fabric *rdma.Fabric
	plane  *control.Plane
	cursor sim.Time // serial host CPU: per-call submission cost
	// ready is the current op's issue time: detection timeouts push it out,
	// so a failover retry (inherently sequential — the timeout must elapse
	// first) submits late, while the op's parallel fan-out calls and every
	// other op are unaffected. The timeout is waiting, not CPU burn.
	ready    sim.Time
	done     sim.Time // completion of the current op's last call
	buf      []sim.Time
	bg       bool // charging the background lane
	bgFabric *rdma.Fabric
	bgCursor sim.Time
}

func (l *elasticLoop) observe(o remote.CallObservation) {
	if l.bg {
		if o.Injected {
			l.bgCursor = l.bgCursor.Add(elasticDetectCost)
			return
		}
		l.bgCursor = l.bgCursor.Add(elasticSubmitCost)
		l.buf = l.bgFabric.SubmitBatch(o.Agent, o.Pages, l.bgCursor, l.buf)
		return
	}
	if o.Injected {
		l.ready = l.ready.Add(elasticDetectCost)
		if l.plane != nil {
			l.plane.ObserveCall(o.Agent, elasticDetectCost, true)
		}
		if l.ready > l.done {
			l.done = l.ready
		}
		return
	}
	l.cursor = l.cursor.Add(elasticSubmitCost)
	submit := l.cursor
	if l.ready > submit {
		submit = l.ready
	}
	l.buf = l.fabric.SubmitBatch(o.Agent, o.Pages, submit, l.buf)
	last := l.buf[len(l.buf)-1]
	if l.plane != nil {
		l.plane.ObserveCall(o.Agent, last.Sub(submit), false)
	}
	if o.Extra > 0 {
		last = last.Add(o.Extra)
	}
	if last > l.done {
		l.done = last
	}
}

// runElastic executes the ramp once. withControl attaches the control plane
// (detector thresholds tuned to the model's error and queue-delay scales);
// without it the cluster is frozen at its initial size and the fault is
// never routed around.
func runElastic(withControl bool, ops int, seed uint64) ElasticRow {
	base := sim.NewRNG(seed ^ 0xe1a5f1)
	wire := rdma.Config{
		Queues:      elasticMaxAgents,
		OpLatency:   sim.Normal{Mu: 4300, Sigma: 0, Floor: 4300},
		ServiceTime: elasticService,
	}
	loop := &elasticLoop{
		fabric:   rdma.New(wire, base.Fork(1)),
		bgFabric: rdma.New(wire, base.Fork(2)),
	}
	fts := make([]*remote.FaultTransport, 0, elasticMaxAgents)
	transports := make([]remote.Transport, 0, elasticMinAgents)
	for i := 0; i < elasticMinAgents; i++ {
		ft := remote.NewFaultTransport(i, remote.NewInProc(remote.NewAgent(16, 0)), nil)
		ft.SetObserver(loop.observe)
		fts = append(fts, ft)
		transports = append(transports, ft)
	}
	host, err := remote.NewHost(remote.HostConfig{
		SlabPages: 16,
		Replicas:  2,
		Seed:      seed,
	}, transports)
	if err != nil {
		panic(err)
	}

	var plane *control.Plane
	var actions []control.Action
	if withControl {
		hooks := control.Hooks{
			Provision: func() (remote.Transport, bool) {
				if len(fts) >= elasticMaxAgents {
					return nil, false
				}
				ft := remote.NewFaultTransport(len(fts), remote.NewInProc(remote.NewAgent(16, 0)), nil)
				ft.SetObserver(loop.observe)
				fts = append(fts, ft)
				return ft, true
			},
			Probe: func(agent int) bool {
				if agent < 0 || agent >= len(fts) {
					return false
				}
				m := fts[agent].Mode()
				return !m.Crashed && !m.Partitioned
			},
			OnAction: func(a control.Action) { actions = append(actions, a) },
		}
		plane = control.New(control.Config{
			Detector: control.DetectorConfig{
				SuspectErr: 0.2,
				FailErr:    0.5,
			},
			Scaler: control.ScalerConfig{
				Min:      elasticMinAgents,
				Max:      elasticMaxAgents,
				HighLat:  12 * sim.Microsecond,
				LowLat:   5 * sim.Microsecond,
				UpTicks:  2,
				Cooldown: 3,
			},
			HotK:     8,
			HotEvery: 4,
		}, host, hooks)
		loop.plane = plane
	}

	const pageCount = 1024
	rng := base.Fork(3)
	page := make([]byte, remote.PageSize)
	buf := make([]byte, remote.PageSize)

	// Unmeasured population pass on the background lane: placements, slab
	// maps, initial contents.
	loop.bg = true
	for p := 0; p < pageCount; p++ {
		page[0] = byte(p)
		if err := host.WritePage(core.PageID(p), page); err != nil {
			panic(err)
		}
	}
	loop.bg = false

	// The diurnal ramp: gap(i) shrinks from GapMax to GapMin at mid-run and
	// recovers. The partition lands on agent 1 during the ramp-up.
	faultStart, faultEnd := int(float64(ops)*0.15), int(float64(ops)*0.30)
	peakLo, peakHi := int(float64(ops)*0.45), int(float64(ops)*0.55)
	tickOps := ops / 120
	if tickOps < 1 {
		tickOps = 1
	}
	// 20% of accesses hit a 16-page hot set, strided one page per slab so
	// the skew exercises hot-page replication without collapsing onto a
	// single fabric queue.
	const hotHead, hotStride = 16, 64

	var all, peak, fault metrics.Histogram
	var faultAt sim.Time
	arrival := sim.Time(0)
	for i := 0; i < ops; i++ {
		frac := float64(i) / float64(ops)
		gap := elasticGapMax - sim.Duration(float64(elasticGapMax-elasticGapMin)*math.Sin(math.Pi*frac))
		arrival = arrival.Add(gap)
		switch i {
		case faultStart:
			fts[1].SetMode(remote.FaultMode{Partitioned: true})
			faultAt = arrival
		case faultEnd:
			fts[1].SetMode(remote.FaultMode{})
		}

		if loop.cursor < arrival {
			loop.cursor = arrival
		}
		loop.ready = loop.cursor
		loop.done = loop.cursor
		var target core.PageID
		if rng.Float64() < 0.2 {
			target = core.PageID(rng.Int63n(hotHead) * hotStride)
		} else {
			target = core.PageID(rng.Int63n(pageCount))
		}
		if rng.Float64() < 0.2 {
			page[0] = byte(target)
			_ = host.WritePage(target, page)
		} else {
			if plane != nil {
				plane.ObserveRead(target)
			}
			_ = host.ReadPage(target, buf)
		}
		lat := loop.done.Sub(arrival)
		all.Observe(lat)
		if i >= peakLo && i < peakHi {
			peak.Observe(lat)
		}
		if i >= faultStart && i < faultEnd {
			fault.Observe(lat)
		}
		if plane != nil && (i+1)%tickOps == 0 {
			// Control actions (repair, rebalance, hot copies) run on the
			// background lane: maintenance traffic never queues ahead of
			// demand fetches.
			loop.bg = true
			plane.Tick(arrival)
			loop.bg = false
		}
	}

	row := ElasticRow{
		Ops:     int64(ops),
		P50:     all.Percentile(50),
		P99:     all.Percentile(99),
		PeakP99: peak.Percentile(99),
		FaultP9: fault.Percentile(99),
		LiveEnd: elasticMinAgents,
	}
	if withControl {
		row.Label = "self-healing"
		row.LiveEnd = plane.LiveAgents()
		for _, a := range actions {
			if a.Err != nil {
				continue
			}
			switch a.Kind {
			case control.ActScaleUp:
				row.ScaleUps++
			case control.ActScaleDown:
				row.ScaleDowns++
			case control.ActFail:
				row.Fails++
				if row.Failover == 0 {
					row.Failover = a.At.Sub(faultAt)
				}
			case control.ActRecover:
				row.Recovers++
			case control.ActHotAdd:
				row.HotAdds++
			}
		}
	} else {
		row.Label = "static"
		// Exposure is the whole window: nothing ever routes around the fault.
		gapSum := sim.Duration(0)
		for i := faultStart; i < faultEnd; i++ {
			frac := float64(i) / float64(ops)
			gapSum += elasticGapMax - sim.Duration(float64(elasticGapMax-elasticGapMin)*math.Sin(math.Pi*frac))
		}
		row.Failover = gapSum
	}
	return row
}

// Elastic runs the `-fig elastic` comparison.
func Elastic(s Scale, seed uint64) ElasticResult {
	ops := int(s.Measured / 5)
	return ElasticResult{
		Static:  runElastic(false, ops, seed),
		Control: runElastic(true, ops, seed),
	}
}

// String renders the figure.
func (r ElasticResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure E — elastic: diurnal ramp with a mid-ramp partition, static vs self-healing cluster (%d→%d agents)\n",
		elasticMinAgents, elasticMaxAgents)
	fmt.Fprintf(&b, "  %-13s %8s %10s %10s %10s %10s %12s %5s\n",
		"cluster", "ops", "p50", "p99", "peak-p99", "fault-p99", "exposure", "live")
	for _, row := range []ElasticRow{r.Static, r.Control} {
		fmt.Fprintf(&b, "  %-13s %8d %10v %10v %10v %10v %12v %5d\n",
			row.Label, row.Ops, row.P50, row.P99, row.PeakP99, row.FaultP9,
			row.Failover, row.LiveEnd)
	}
	fmt.Fprintf(&b, "  control actions: scale-up=%d scale-down=%d fail=%d recover=%d hot-add=%d\n",
		r.Control.ScaleUps, r.Control.ScaleDowns, r.Control.Fails,
		r.Control.Recovers, r.Control.HotAdds)
	if r.Static.P99 > 0 {
		fmt.Fprintf(&b, "  p99 %.2f× lower with the control loop; fault exposure %v → %v (detect+repair vs ride it out)\n",
			float64(r.Static.P99)/float64(r.Control.P99), r.Static.Failover, r.Control.Failover)
	}
	fmt.Fprintf(&b, "  (open loop: arrivals follow the ramp regardless of completions; the static run pays the %v detection timeout per partitioned-primary read and saturates %d fabric queues at peak)\n",
		elasticDetectCost, elasticMinAgents)
	return b.String()
}
