package experiments

import (
	"fmt"
	"strings"

	"leap/internal/metrics"
	"leap/internal/prefetch"
	"leap/internal/remote"
	"leap/internal/runtime"
	"leap/internal/workload"
)

// ensembleApps are the application models the selector ablation drives, in
// presentation order — the same four the compressed-tier figure uses.
var ensembleApps = []string{"powergraph", "numpy", "voltdb", "memcached"}

// EnsemblePolicies are the columns of the ablation: the online selector
// first, then every fixed arm it chooses between, in presentation order.
var EnsemblePolicies = []string{"ensemble", "leap", "ghb", "stride", "readahead", "nextnline"}

// ensembleFramePages is every cell's residency budget: identical across
// policies, so the prefetching policy is the only variable.
const ensembleFramePages = 1024

// EnsembleCell is one (app, policy) outcome over the live runtime.
type EnsembleCell struct {
	HitRatio           float64
	Accuracy, Coverage float64
	Latency            metrics.Summary
	// Switches counts arm changes the selector took during the measured
	// window; Final is the arm routing the driving client's prefetches at
	// the end of the run. Both are zero-valued ("-") for fixed policies.
	Switches int64
	Final    string
}

// EnsembleResult is the selector ablation: each application runs once per
// policy at equal RAM and an identical access stream, the online ensemble
// against every fixed arm it selects among.
type EnsembleResult struct {
	// Cells keyed "<app>/<policy>".
	Cells map[string]EnsembleCell
	// Accesses measured per cell and Warmup accesses driven (recording
	// off) before measurement, for the caption.
	Accesses, Warmup int64
}

// Cell fetches one entry.
func (r EnsembleResult) Cell(app, policy string) (EnsembleCell, bool) {
	c, ok := r.Cells[app+"/"+policy]
	return c, ok
}

// Ensemble drives leap.Memory through the application models under the
// online per-client selector and under each fixed arm. Every policy in an
// app's row shares the cell seed, so the populate pass, the warmup stream
// and the measured stream are identical access-for-access — the policy is
// the only variable. The warmup (recording off, like the simulator's) is
// what gives the selector its convergence window: a deployed ensemble is
// judged on steady state, not on the epochs it spends learning.
func Ensemble(s Scale, seed uint64) EnsembleResult {
	accesses := s.Measured / 2
	if accesses < 2000 {
		accesses = 2000
	}
	warmup := accesses
	out := EnsembleResult{Cells: map[string]EnsembleCell{}, Accesses: accesses, Warmup: warmup}
	for ai, app := range ensembleApps {
		p, ok := workload.ByName(app)
		if !ok {
			panic("unknown app " + app)
		}
		// The paper's 50%-memory regime: shrink the working set so the
		// frame budget is a meaningful fraction of it (see Ztier).
		p.TotalPages /= 8
		cellSeed := seed + uint64(ai)*977
		for _, policy := range EnsemblePolicies {
			out.Cells[app+"/"+policy] = ensembleCell(p, policy, accesses, warmup, cellSeed)
		}
	}
	return out
}

// ensembleCell runs one (app, policy) configuration.
func ensembleCell(p workload.Profile, policy string, accesses, warmup int64, seed uint64) EnsembleCell {
	opts := []runtime.Option{
		runtime.WithSeed(seed),
		runtime.WithQueueDepth(8),
		runtime.WithCacheCapacity(ensembleFramePages),
	}
	if policy == "ensemble" {
		opts = append(opts, runtime.WithEnsemble(prefetch.EnsembleConfig{}))
	} else {
		opts = append(opts, runtime.WithPrefetcherFactory(func() prefetch.Prefetcher {
			pf, err := prefetch.New(policy)
			if err != nil {
				panic(err)
			}
			return pf
		}))
	}
	mem, err := runtime.Open(opts...)
	if err != nil {
		panic(err)
	}
	defer mem.Close()

	// Populate the hot region (recording off) so misses fetch real images
	// from the cluster rather than materializing zeros.
	mem.SetRecording(false)
	hot := int64(float64(p.TotalPages) * p.HotFraction)
	populate := min(hot, 3*int64(ensembleFramePages))
	buf := make([]byte, remote.PageSize)
	for pg := int64(0); pg < populate; pg++ {
		buf[0] = byte(pg)
		if _, err := mem.WriteAt(buf, pg*remote.PageSize); err != nil {
			panic(err)
		}
	}

	// Warmup: the same generator that will be measured drives unrecorded
	// accesses first — fixed arms adapt their windows, the selector runs
	// its epochs and converges.
	gen := workload.NewApp(p, seed)
	client := mem.Client(0)
	for i := int64(0); i < warmup; i++ {
		if _, err := client.Get(gen.Next().Page); err != nil {
			panic(err)
		}
	}
	mem.SetRecording(true)
	sw0 := mem.Stats().Ensemble.Switches

	for i := int64(0); i < accesses; i++ {
		if _, err := client.Get(gen.Next().Page); err != nil {
			panic(err)
		}
	}
	st := mem.Stats()
	cell := EnsembleCell{
		HitRatio: st.HitRatio,
		Accuracy: st.Accuracy,
		Coverage: st.Coverage,
		Latency:  st.Latency,
		Final:    "-",
	}
	if policy == "ensemble" {
		cell.Switches = st.Ensemble.Switches - sw0
		if h := client.SelectionHistory(); len(h) > 0 {
			cell.Final = h[len(h)-1].Arm
		}
	}
	return cell
}

// String renders the selector ablation table.
func (r EnsembleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ensemble — online per-client prefetcher selection vs fixed policies (%d accesses/cell after %d warmup, %d-page budget)\n",
		r.Accesses, r.Warmup, ensembleFramePages)
	fmt.Fprintf(&b, "  %-12s %-10s %9s %9s %9s %11s %11s %9s %-10s\n",
		"app", "policy", "hit", "accuracy", "coverage", "p50", "p99", "switches", "final")
	for _, app := range ensembleApps {
		for _, policy := range EnsemblePolicies {
			c := r.Cells[app+"/"+policy]
			sw := "-"
			if policy == "ensemble" {
				sw = fmt.Sprint(c.Switches)
			}
			fmt.Fprintf(&b, "  %-12s %-10s %8.1f%% %8.1f%% %8.1f%% %11v %11v %9s %-10s\n",
				app, policy, 100*c.HitRatio, 100*c.Accuracy, 100*c.Coverage,
				c.Latency.P50, c.Latency.P99, sw, c.Final)
		}
	}
	b.WriteString("  (equal RAM and identical access streams per app row; the policy is the only variable)\n")
	return b.String()
}
