package experiments

import (
	"fmt"
	"strings"
)

// Table1Row is one prefetching technique's qualitative property vector
// (Table 1 of the paper).
type Table1Row struct {
	Technique   string
	LowCompute  bool // low computational complexity
	LowMemory   bool // low memory overhead
	Unmodified  bool // works with unmodified applications
	HWSWIndep   bool // no special hardware/software dependency
	TemporalLoc bool // exploits temporal locality
	SpatialLoc  bool // exploits spatial locality
	HighUtil    bool // high prefetch utilization
}

// Table1 reproduces the paper's qualitative comparison matrix. The rows are
// fixed claims from the paper, included so leapbench prints the complete
// evaluation artifact set; the quantitative counterparts are Figures 9/10.
func Table1() []Table1Row {
	return []Table1Row{
		{"Next-N-Line", true, true, true, true, false, true, false},
		{"Stride", true, true, true, true, false, true, false},
		{"GHB PC", false, false, true, false, true, true, true},
		{"Instruction Prefetch", false, false, false, false, true, true, true},
		{"Linux Read-Ahead", true, true, true, true, true, true, false},
		{"Leap Prefetcher", true, true, true, true, true, true, true},
	}
}

// RenderTable1 prints the matrix.
func RenderTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — prefetching techniques compared (✓ = has property)\n")
	fmt.Fprintf(&b, "  %-22s %7s %7s %7s %7s %7s %7s %7s\n",
		"technique", "lowCPU", "lowMem", "unmod", "indep", "tempor", "spatial", "util")
	mark := func(v bool) string {
		if v {
			return "✓"
		}
		return "✗"
	}
	for _, r := range Table1() {
		fmt.Fprintf(&b, "  %-22s %7s %7s %7s %7s %7s %7s %7s\n", r.Technique,
			mark(r.LowCompute), mark(r.LowMemory), mark(r.Unmodified), mark(r.HWSWIndep),
			mark(r.TemporalLoc), mark(r.SpatialLoc), mark(r.HighUtil))
	}
	return b.String()
}
