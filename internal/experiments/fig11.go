package experiments

import (
	"fmt"
	"strings"

	"leap/internal/sim"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// MemFractions is the Figure 11 memory-limit grid.
var MemFractions = []float64{1.0, 0.5, 0.25}

// SystemNames is the Figure 11 medium set.
var SystemNames = []string{"disk", "d-vmm", "d-vmm+leap"}

// Fig11Cell is one (app, system, fraction) outcome.
type Fig11Cell struct {
	Completion sim.Duration
	OpsPerSec  float64
	P99        sim.Duration
}

// Fig11Result reproduces Figure 11: application performance across media
// and memory limits. Completion time matters for PowerGraph/NumPy;
// throughput (TPS/OPS) for VoltDB/Memcached.
type Fig11Result struct {
	// Cells is keyed "<app>/<system>/<frac>", e.g. "voltdb/d-vmm+leap/0.50".
	Cells map[string]Fig11Cell
}

func fig11Key(app, system string, frac float64) string {
	return fmt.Sprintf("%s/%s/%.2f", app, system, frac)
}

// Cell fetches one grid entry.
func (r Fig11Result) Cell(app, system string, frac float64) (Fig11Cell, bool) {
	c, ok := r.Cells[fig11Key(app, system, frac)]
	return c, ok
}

func systemConfig(system string, seed uint64) vmm.Config {
	switch system {
	case "disk":
		return DiskConfig(seed)
	case "d-vmm":
		return DVMMConfig(seed)
	case "d-vmm+leap":
		return DVMMLeapConfig(seed)
	default:
		panic("experiments: unknown system " + system)
	}
}

// Fig11 runs the full grid: 4 apps × 3 systems × 3 memory limits.
func Fig11(s Scale, seed uint64) Fig11Result {
	out := Fig11Result{Cells: map[string]Fig11Cell{}}
	for ai, prof := range workload.Profiles() {
		for _, system := range SystemNames {
			for _, frac := range MemFractions {
				runSeed := seed + uint64(ai)*97
				cfg := systemConfig(system, runSeed)
				_, res := mustRun(cfg, []vmm.App{appAt(prof, 1, frac, runSeed)}, s)
				out.Cells[fig11Key(prof.AppName, system, frac)] = Fig11Cell{
					Completion: res.Makespan,
					OpsPerSec:  res.PerProc[0].OpsPerSec,
					P99:        res.Latency.P99,
				}
			}
		}
	}
	return out
}

// String renders the four panels.
func (r Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — application performance across media and memory limits\n")
	for _, prof := range workload.Profiles() {
		app := prof.AppName
		throughput := app == "voltdb" || app == "memcached"
		if throughput {
			fmt.Fprintf(&b, "  %s (ops/sec; higher is better)\n", app)
		} else {
			fmt.Fprintf(&b, "  %s (completion; lower is better)\n", app)
		}
		fmt.Fprintf(&b, "    %-12s", "system")
		for _, f := range MemFractions {
			fmt.Fprintf(&b, " %14.0f%%", f*100)
		}
		b.WriteByte('\n')
		for _, system := range SystemNames {
			fmt.Fprintf(&b, "    %-12s", system)
			for _, f := range MemFractions {
				c := r.Cells[fig11Key(app, system, f)]
				if throughput {
					fmt.Fprintf(&b, " %15.0f", c.OpsPerSec)
				} else {
					fmt.Fprintf(&b, " %15v", c.Completion)
				}
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "  (paper: Leap improves Infiniswap completion 1.56×/2.38× on PowerGraph,\n")
	fmt.Fprintf(&b, "   1.27×/1.4× on NumPy; throughput 2.76×/10.16× on VoltDB, 1.11×/1.21× on\n")
	fmt.Fprintf(&b, "   Memcached at 50%%/25%% limits)\n")
	return b.String()
}
