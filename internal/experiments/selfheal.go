package experiments

import (
	"fmt"
	"strings"

	"leap/internal/control"
	"leap/internal/core"
	"leap/internal/metrics"
	"leap/internal/remote"
	"leap/internal/runtime"
	"leap/internal/sim"
)

// The `-fig selfheal` experiment is the runtime-integration counterpart of
// `-fig elastic`: instead of an open-loop model of a host, it drives the
// real leap.Memory fault path — predictor, prefetch windows, async ticket
// engine, eviction — over a four-agent in-process cluster while agents
// misbehave mid-run. Four logical clients with distinct access patterns
// (sequential, strided, hotspot, uniform) share the Memory through Client
// handles; one agent is partitioned during the run and another turns slow.
// The identical workload runs twice: unsupervised, and with
// runtime.WithControlPlane attached. The unsupervised run pays the
// failure-detection timeout on every fetch whose primary is partitioned and
// the slow agent's lag on every fetch it serves; the supervised run's
// detector fails the partitioned agent (re-replicating its slabs), routes
// reads away from the slow one, and probation brings the healed agent back.
// Deterministic throughout: virtual time, seeded placement, a fixed fault
// timeline — two runs of the same (Scale, seed) are byte-identical.

// Self-healing model constants: the failure-detection timeout a fetch pays
// per call that dies on an unreachable agent, the injected lag of the slow
// agent, and the cluster shape.
const (
	selfhealAgents = 4
	selfhealDetect = 30 * sim.Microsecond
	selfhealSlow   = 40 * sim.Microsecond
	selfhealPages  = 4096 // 4 tenants × 1024-page regions
	selfhealCache  = 32
)

// SelfhealRow is one run of the shared-tenant workload.
type SelfhealRow struct {
	Label    string
	Ops      int64
	P50, P99 sim.Duration
	FaultP99 sim.Duration // p99 of ops inside the partition window
	HitRatio float64
	Live     int // serving agents at the end
	Suspects, Clears, Fails, Recovers,
	HotAdds int64
}

// SelfhealResult is the `-fig selfheal` output: the unsupervised baseline
// and the control-plane row over the identical workload and fault timeline.
type SelfhealResult struct {
	Baseline SelfhealRow
	Control  SelfhealRow
}

// selfhealLoop is the harness's per-call accounting: virtual-time penalties
// the transports expose but the runtime's latency model does not charge
// (the detection timeout on injected failures, the slow agent's lag). The
// runtime chains its control-plane feed onto this observer, so the penalty
// stream and the detector see the same calls.
type selfhealLoop struct {
	pend sim.Duration
}

func (l *selfhealLoop) observe(o remote.CallObservation) {
	if o.Op == remote.OpPing { // control-plane probes are free
		return
	}
	if o.Injected {
		l.pend += selfhealDetect
		return
	}
	l.pend += o.Extra
}

// selfhealPattern generates the i-th page offset of tenant t inside its
// 1024-page region. Tenants 0/1 scan (unit and 8-page stride), tenant 2 is
// an 80/20 hotspot, tenant 3 uniform; the LCG streams are seeded per
// tenant, so the mix replays exactly.
type selfhealPattern struct {
	tenant int
	pos    int64
	rnd    uint64
}

func (p *selfhealPattern) next() int64 {
	const region = int64(selfhealPages / selfhealAgents)
	switch p.tenant {
	case 0: // sequential
		off := p.pos % region
		p.pos++
		return off
	case 1: // stride-8
		off := (p.pos * 8) % region
		p.pos++
		return off
	case 2: // 80/20 hotspot over an 8-page head, strided one page per slab
		// so the head spreads across agents and spatial prefetch cannot
		// cover it — the head pages keep faulting, which is exactly the
		// signal hot-page replication feeds on.
		p.rnd = p.rnd*6364136223846793005 + 1442695040888963407
		r := p.rnd >> 11
		if r%10 < 8 {
			return int64(r%8) * 64
		}
		return int64(r % uint64(region))
	default: // uniform
		p.rnd = p.rnd*6364136223846793005 + 1442695040888963407
		return int64((p.rnd >> 11) % uint64(region))
	}
}

// runSelfheal executes the workload once over a fresh cluster.
func runSelfheal(withControl bool, ops int, seed uint64) SelfhealRow {
	loop := &selfhealLoop{}
	fts := make([]*remote.FaultTransport, selfhealAgents)
	transports := make([]remote.Transport, selfhealAgents)
	for i := range fts {
		ft := remote.NewFaultTransport(i, remote.NewInProc(remote.NewAgent(64, 0)), nil)
		ft.SetObserver(loop.observe) // installed before Open: the runtime chains onto it
		fts[i] = ft
		transports[i] = ft
	}
	host, err := remote.NewHost(remote.HostConfig{
		SlabPages: 64,
		Replicas:  2,
		Seed:      seed,
	}, transports)
	if err != nil {
		panic(err)
	}

	opts := []runtime.Option{
		runtime.WithRemoteHost(host),
		runtime.WithSeed(seed),
		runtime.WithCacheCapacity(selfhealCache),
		runtime.WithQueueDepth(8),
	}
	if withControl {
		opts = append(opts,
			// FailErr equals SuspectErr deliberately: suspecting an agent
			// routes reads away from it, so a partitioned agent's error EWMA
			// freezes (no traffic, no update) — the frozen value that made it
			// suspect must also clear the fail bar, or it idles in suspect
			// until the partition heals. The slow agent suspects on latency
			// with a zero error EWMA, so it never escalates (FailLat 0).
			runtime.WithControlPlane(control.Config{
				Detector: control.DetectorConfig{
					SuspectLat: 20 * sim.Microsecond,
					SuspectErr: 0.2,
					FailErr:    0.2,
				},
				HotK:     8,
				HotEvery: 4,
			}),
			// The harness ticks explicitly below so maintenance traffic
			// (repairs, hot copies) lands between measured ops, not inside
			// one unlucky op's latency.
			runtime.WithControlInterval(sim.Duration(1)<<40),
		)
	}
	mem, err := runtime.Open(opts...)
	if err != nil {
		panic(err)
	}
	defer mem.Close()

	// Populate every tenant region through the runtime (recording off, like
	// a warmup): real bytes land on the cluster, and the written set is what
	// feeds the control plane's hot-page frequency samples later.
	mem.SetRecording(false)
	buf := make([]byte, remote.PageSize)
	for p := int64(0); p < selfhealPages; p++ {
		buf[0] = byte(p)
		if _, err := mem.WriteAt(buf, p*remote.PageSize); err != nil {
			panic(err)
		}
	}
	if err := mem.Flush(); err != nil {
		panic(err)
	}
	mem.SetRecording(true)

	clients := make([]*runtime.Client, selfhealAgents)
	pats := make([]*selfhealPattern, selfhealAgents)
	for t := range clients {
		clients[t] = mem.Client(t)
		pats[t] = &selfhealPattern{tenant: t, rnd: seed ^ uint64(t)*0x9e3779b97f4a7c15}
	}

	// Fault timeline, in op indices: agent 1 is partitioned for a third of
	// the run, agent 2 turns slow shortly after it heals.
	faultStart, faultHeal := int(float64(ops)*0.20), int(float64(ops)*0.55)
	slowStart, slowEnd := int(float64(ops)*0.60), int(float64(ops)*0.85)
	tickOps := ops / 60
	if tickOps < 1 {
		tickOps = 1
	}

	var all, fault metrics.Histogram
	const region = int64(selfhealPages / selfhealAgents)
	for i := 0; i < ops; i++ {
		switch i {
		case faultStart:
			fts[1].SetMode(remote.FaultMode{Partitioned: true})
		case faultHeal:
			fts[1].SetMode(remote.FaultMode{})
		case slowStart:
			fts[2].SetMode(remote.FaultMode{ExtraLatency: selfhealSlow})
		case slowEnd:
			fts[2].SetMode(remote.FaultMode{})
		}

		t := i % selfhealAgents
		pg := core.PageID(int64(t)*region + pats[t].next())
		loop.pend = 0
		before := mem.Now()
		if _, err := clients[t].Get(pg); err != nil {
			panic(err)
		}
		lat := mem.Now().Sub(before) + loop.pend
		all.Observe(lat)
		if i >= faultStart && i < faultHeal {
			fault.Observe(lat)
		}
		if withControl && (i+1)%tickOps == 0 {
			mem.TickControl()
		}
	}

	st := mem.Stats()
	row := SelfhealRow{
		Ops:      int64(ops),
		P50:      all.Percentile(50),
		P99:      all.Percentile(99),
		FaultP99: fault.Percentile(99),
		HitRatio: st.HitRatio,
		Live:     selfhealAgents,
	}
	if withControl {
		row.Label = "control-plane"
		row.Live = st.Control.Live
		row.Suspects = st.Control.Suspects
		row.Clears = st.Control.Clears
		row.Fails = st.Control.Fails
		row.Recovers = st.Control.Recovers
		row.HotAdds = st.Control.HotAdds
	} else {
		row.Label = "unsupervised"
	}
	return row
}

// Selfheal runs the `-fig selfheal` comparison.
func Selfheal(s Scale, seed uint64) SelfhealResult {
	ops := int(s.Measured / 4)
	if ops < 4000 {
		ops = 4000
	}
	return SelfhealResult{
		Baseline: runSelfheal(false, ops, seed),
		Control:  runSelfheal(true, ops, seed),
	}
}

// String renders the figure.
func (r SelfhealResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure S — selfheal: leap.Memory under mid-run agent faults, unsupervised vs WithControlPlane (%d agents, %d tenants)\n",
		selfhealAgents, selfhealAgents)
	fmt.Fprintf(&b, "  %-14s %8s %10s %10s %10s %7s %5s\n",
		"runtime", "ops", "p50", "p99", "fault-p99", "hit", "live")
	for _, row := range []SelfhealRow{r.Baseline, r.Control} {
		fmt.Fprintf(&b, "  %-14s %8d %10v %10v %10v %6.1f%% %5d\n",
			row.Label, row.Ops, row.P50, row.P99, row.FaultP99, 100*row.HitRatio, row.Live)
	}
	fmt.Fprintf(&b, "  control actions: suspect=%d clear=%d fail=%d recover=%d hot-add=%d\n",
		r.Control.Suspects, r.Control.Clears, r.Control.Fails,
		r.Control.Recovers, r.Control.HotAdds)
	if r.Control.P99 > 0 {
		fmt.Fprintf(&b, "  p99 %.2f× lower with the control plane; fault-window p99 %v → %v (fail+repair vs paying %v per dead-primary call)\n",
			float64(r.Baseline.P99)/float64(r.Control.P99),
			r.Baseline.FaultP99, r.Control.FaultP99, selfhealDetect)
	}
	fmt.Fprintf(&b, "  (real fault path end to end: predictor, prefetch windows, ticket engine and eviction all run; the control plane is the only variable)\n")
	return b.String()
}
