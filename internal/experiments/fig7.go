package experiments

import (
	"fmt"
	"strings"

	"leap/internal/metrics"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// Fig7Cell compares default vs Leap on one (abstraction, pattern) pair.
type Fig7Cell struct {
	Default metrics.Summary
	Leap    metrics.Summary
}

// MedianGain is the p50 improvement factor.
func (c Fig7Cell) MedianGain() float64 {
	if c.Leap.P50 == 0 {
		return 0
	}
	return float64(c.Default.P50) / float64(c.Leap.P50)
}

// TailGain is the p99 improvement factor.
func (c Fig7Cell) TailGain() float64 {
	if c.Leap.P99 == 0 {
		return 0
	}
	return float64(c.Default.P99) / float64(c.Leap.P99)
}

// Fig7Result reproduces Figure 7: 4KB access latency with and without Leap
// for D-VMM and D-VFS under Sequential and Stride-10.
type Fig7Result struct {
	// Cells is keyed "<abstraction>/<pattern>", e.g. "d-vmm/stride-10".
	Cells map[string]Fig7Cell
	// Hists keeps raw histograms keyed "<abstraction>/<pattern>/<system>".
	Hists map[string]*metrics.Histogram
}

// Fig7 runs the four comparisons.
func Fig7(s Scale, seed uint64) Fig7Result {
	r := Fig7Result{Cells: map[string]Fig7Cell{}, Hists: map[string]*metrics.Histogram{}}
	patterns := []struct {
		name   string
		stride int64
	}{{"sequential", 1}, {"stride-10", 10}}

	for _, pat := range patterns {
		// D-VMM.
		mDef, resDef := mustRun(DVMMConfig(seed),
			[]vmm.App{microApp(workload.NewStride(1<<20, pat.stride, seed), 1)}, s)
		mLeap, resLeap := mustRun(DVMMLeapConfig(seed),
			[]vmm.App{microApp(workload.NewStride(1<<20, pat.stride, seed), 1)}, s)
		r.Cells["d-vmm/"+pat.name] = Fig7Cell{Default: resDef.Latency, Leap: resLeap.Latency}
		r.Hists["d-vmm/"+pat.name+"/default"] = mDef.ProcLatency(1)
		r.Hists["d-vmm/"+pat.name+"/leap"] = mLeap.ProcLatency(1)

		// D-VFS.
		fDef := runVFSPattern(DVFSConfig(seed), pat.stride, s)
		fLeap := runVFSPattern(DVFSLeapConfig(seed), pat.stride, s)
		r.Cells["d-vfs/"+pat.name] = Fig7Cell{
			Default: fDef.ReadLatency.Summarize(),
			Leap:    fLeap.ReadLatency.Summarize(),
		}
		r.Hists["d-vfs/"+pat.name+"/default"] = &fDef.ReadLatency
		r.Hists["d-vfs/"+pat.name+"/leap"] = &fLeap.ReadLatency
	}
	return r
}

// String renders the comparison with the paper's headline factors.
func (r Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — 4KB access latency, default vs Leap\n")
	fmt.Fprintf(&b, "  %-22s %12s %12s %10s %12s %12s %10s\n",
		"series", "p50 def", "p50 leap", "gain", "p99 def", "p99 leap", "gain")
	paper := map[string]string{
		"d-vmm/sequential": "4.07×/5.48×",
		"d-vmm/stride-10":  "104.04×/22.06×",
		"d-vfs/sequential": "1.99×/3.42×",
		"d-vfs/stride-10":  "24.96×/17.32×",
	}
	for _, key := range []string{
		"d-vmm/sequential", "d-vmm/stride-10", "d-vfs/sequential", "d-vfs/stride-10",
	} {
		c := r.Cells[key]
		fmt.Fprintf(&b, "  %-22s %12v %12v %9.1f× %12v %12v %9.1f×  (paper %s)\n",
			key, c.Default.P50, c.Leap.P50, c.MedianGain(),
			c.Default.P99, c.Leap.P99, c.TailGain(), paper[key])
	}
	return b.String()
}
