package experiments

import (
	"fmt"
	"strings"

	"leap/internal/metrics"
	"leap/internal/remote"
	"leap/internal/runtime"
	"leap/internal/workload"
)

// ztierApps are the application models the compressed-tier figure drives,
// in presentation order.
var ztierApps = []string{"powergraph", "numpy", "voltdb", "memcached"}

// ztierFramePages is the tier-off residency budget. The tier-on
// configuration spends the same RAM differently: a quarter of the frames
// are handed to the compressed victim tier as a byte budget, so any hit
// ratio it wins back comes purely from compression stretching those bytes
// over more pages.
const ztierFramePages = 2048

// ZtierCell is one (app, mode) outcome over the live runtime.
type ZtierCell struct {
	HitRatio float64
	Latency  metrics.Summary
	// ZtierHits counts faults served by decompressing a sealed victim
	// locally instead of paying a fabric round trip; Ratio is the tier's
	// realized compression ratio. Both are 0 with the tier off.
	ZtierHits int64
	Ratio     float64
	// WireSaved is the fraction of batched-frame payload bytes saved by
	// on-wire compression (0 with compression off).
	WireSaved float64
}

// ZtierResult is the compressed-tier table: each application runs twice at
// equal RAM — all frames, versus 3/4 frames plus the remaining quarter as
// compressed-tier bytes with on-wire batch compression enabled.
type ZtierResult struct {
	// Cells keyed "<app>/off" and "<app>/tier".
	Cells map[string]ZtierCell
	// Accesses per cell (scale-dependent), for the caption.
	Accesses int64
}

// Cell fetches one entry.
func (r ZtierResult) Cell(app, mode string) (ZtierCell, bool) {
	c, ok := r.Cells[app+"/"+mode]
	return c, ok
}

// Ztier drives leap.Memory through the application models with and without
// the compressed victim tier, holding total local RAM fixed. Pages carry
// semi-compressible record data, so the tier's effective capacity — and
// with it the hit ratio — depends on the realized compression ratio.
func Ztier(s Scale, seed uint64) ZtierResult {
	accesses := s.Measured / 4
	if accesses < 2000 {
		accesses = 2000
	}
	out := ZtierResult{Cells: map[string]ZtierCell{}, Accesses: accesses}
	for ai, app := range ztierApps {
		p, ok := workload.ByName(app)
		if !ok {
			panic("unknown app " + app)
		}
		// Scale the working set down so the RAM budget is a meaningful
		// fraction of it (the paper's 50%-memory regime), preserving the
		// apps' relative footprints.
		p.TotalPages /= 8
		cellSeed := seed + uint64(ai)*977
		out.Cells[app+"/off"] = ztierCell(p, false, accesses, cellSeed)
		out.Cells[app+"/tier"] = ztierCell(p, true, accesses, cellSeed)
	}
	return out
}

// ztierCell runs one (app, mode) configuration.
func ztierCell(p workload.Profile, tier bool, accesses int64, seed uint64) ZtierCell {
	opts := []runtime.Option{
		runtime.WithSeed(seed),
		runtime.WithQueueDepth(8),
	}
	if tier {
		reserve := ztierFramePages / 4
		opts = append(opts,
			runtime.WithCacheCapacity(ztierFramePages-reserve),
			runtime.WithCompressedTier(int64(reserve)*remote.PageSize),
			runtime.WithWireCompression(true),
		)
	} else {
		opts = append(opts, runtime.WithCacheCapacity(ztierFramePages))
	}
	mem, err := runtime.Open(opts...)
	if err != nil {
		panic(err)
	}
	defer mem.Close()

	// Populate the hot region with semi-compressible records (recording
	// off, like the simulator's warmup): these written pages are the
	// tier's seal candidates once the residency LRU evicts them.
	mem.SetRecording(false)
	hot := int64(float64(p.TotalPages) * p.HotFraction)
	populate := min(hot, 3*int64(ztierFramePages))
	buf := make([]byte, remote.PageSize)
	for pg := int64(0); pg < populate; pg++ {
		fillSemiPage(buf, uint64(pg)*2654435761+seed)
		if _, err := mem.WriteAt(buf, pg*remote.PageSize); err != nil {
			panic(err)
		}
	}
	mem.SetRecording(true)
	host0 := mem.Host().Stats()

	gen := workload.NewApp(p, seed)
	for i := int64(0); i < accesses; i++ {
		if _, err := mem.Get(gen.Next().Page); err != nil {
			panic(err)
		}
	}
	st := mem.Stats()
	cell := ZtierCell{
		HitRatio:  st.HitRatio,
		Latency:   st.Latency,
		ZtierHits: st.Ztier.Hits,
		Ratio:     st.Ztier.Ratio,
	}
	if raw := st.Host.WireRawBytes - host0.WireRawBytes; raw > 0 {
		comp := st.Host.WireCompressedBytes - host0.WireCompressedBytes
		cell.WireSaved = 1 - float64(comp)/float64(raw)
	}
	return cell
}

// fillSemiPage writes a semi-compressible page image: repeated 16-byte
// records, each with one pseudo-random byte — the mixed-entropy pages of a
// real heap, compressing a few-fold under the ztier codec rather than
// collapsing to nothing.
func fillSemiPage(dst []byte, seed uint64) {
	const record = "record-deadbeef!"
	for off := 0; off+len(record) <= len(dst); off += len(record) {
		copy(dst[off:], record)
		seed = seed*6364136223846793005 + 1442695040888963407
		dst[off+12] = byte(seed >> 33)
	}
}

// String renders the compressed-tier table.
func (r ZtierResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ztier — compressed victim tier at equal RAM (%d accesses/cell, %d-page budget; tier mode trades 1/4 of the frames for compressed bytes)\n",
		r.Accesses, ztierFramePages)
	fmt.Fprintf(&b, "  %-12s %-5s %9s %11s %11s %8s %7s %10s\n",
		"app", "mode", "hit", "p50", "p99", "z-hits", "ratio", "wire-saved")
	for _, app := range ztierApps {
		for _, mode := range []string{"off", "tier"} {
			c := r.Cells[app+"/"+mode]
			fmt.Fprintf(&b, "  %-12s %-5s %8.1f%% %11v %11v %8d %7.2f %9.1f%%\n",
				app, mode, 100*c.HitRatio, c.Latency.P50, c.Latency.P99,
				c.ZtierHits, c.Ratio, 100*c.WireSaved)
		}
	}
	b.WriteString("  (a z-hit decompresses a sealed victim locally instead of paying a fabric round trip)\n")
	return b.String()
}
