package experiments

import "testing"

func TestRunnerRegistryComplete(t *testing.T) {
	want := []string{"1", "2", "3", "4", "table1", "7", "8a", "8b", "9", "10", "11", "12", "13", "resilience", "scaling", "elastic", "runtime", "selfheal", "concurrency", "ztier", "ensemble", "ablations"}
	got := Figures()
	if len(got) != len(want) {
		t.Fatalf("Figures() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Figures()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, ok := RunFigure("nope", Small, 1); ok {
		t.Fatal("unknown figure accepted")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// The whole point of the parallel runner: concurrency must not change a
	// single output byte. Use a subset that exercises vmm, vfs and the
	// static table.
	names := []string{"1", "7", "9", "table1"}
	seq := RunAll(names, Small, 42, 1)
	par := RunAll(names, Small, 42, 4)
	if len(seq) != len(names) || len(par) != len(names) {
		t.Fatalf("result lengths: seq=%d par=%d want %d", len(seq), len(par), len(names))
	}
	for i := range names {
		if seq[i].Name != names[i] || par[i].Name != names[i] {
			t.Fatalf("position %d: names %q/%q, want %q", i, seq[i].Name, par[i].Name, names[i])
		}
		if seq[i].Output != par[i].Output {
			t.Errorf("figure %s: parallel output differs from sequential", names[i])
		}
		if seq[i].Output == "" {
			t.Errorf("figure %s: empty output", names[i])
		}
	}
}
