package experiments

import (
	"strings"
	"testing"
)

// TestElasticDeterministic is the acceptance gate for `leapbench -fig
// elastic`: byte-identical output for the same seed across repeated runs
// and across -parallel settings.
func TestElasticDeterministic(t *testing.T) {
	a, ok := RunFigure("elastic", Small, 42)
	if !ok {
		t.Fatal("elastic figure not registered")
	}
	b, _ := RunFigure("elastic", Small, 42)
	if a.Output != b.Output {
		t.Fatalf("same-seed elastic runs diverged:\n%s\n---\n%s", a.Output, b.Output)
	}

	names := []string{"elastic", "1"}
	seq := RunAll(names, Small, 42, 1)
	par := RunAll(names, Small, 42, 4)
	for i := range names {
		if seq[i].Output != par[i].Output {
			t.Fatalf("figure %s: parallel output differs from sequential", names[i])
		}
	}
	if seq[0].Output != a.Output {
		t.Fatal("runner output differs from direct RunFigure output")
	}
}

// TestElasticControlImprovesTail checks the figure's substance: the control
// loop must strictly improve the overall and peak p99 over the static
// baseline, actually detect the injected partition, route around it faster
// than riding out the whole window, and exercise the autoscaler.
func TestElasticControlImprovesTail(t *testing.T) {
	r := Elastic(Small, 42)
	st, ctl := r.Static, r.Control

	if st.Ops == 0 || st.Ops != ctl.Ops {
		t.Fatalf("op counts diverge: static=%d control=%d", st.Ops, ctl.Ops)
	}
	if ctl.P99 >= st.P99 {
		t.Fatalf("control p99 %v not strictly below static %v", ctl.P99, st.P99)
	}
	if ctl.PeakP99 >= st.PeakP99 {
		t.Fatalf("control peak-p99 %v not strictly below static %v", ctl.PeakP99, st.PeakP99)
	}
	if ctl.Fails < 1 || ctl.Recovers < 1 {
		t.Fatalf("detector missed the partition: fails=%d recovers=%d", ctl.Fails, ctl.Recovers)
	}
	if ctl.ScaleUps < 1 || ctl.ScaleDowns < 1 {
		t.Fatalf("autoscaler never acted: ups=%d downs=%d", ctl.ScaleUps, ctl.ScaleDowns)
	}
	if ctl.Failover <= 0 || ctl.Failover >= st.Failover {
		t.Fatalf("failover %v not inside (0, %v)", ctl.Failover, st.Failover)
	}
	if ctl.LiveEnd < elasticMinAgents || ctl.LiveEnd > elasticMaxAgents {
		t.Fatalf("live agents %d outside [%d, %d]", ctl.LiveEnd, elasticMinAgents, elasticMaxAgents)
	}

	// The static row must report zero control activity — it has no plane.
	if st.Fails != 0 || st.ScaleUps != 0 || st.ScaleDowns != 0 || st.HotAdds != 0 {
		t.Fatalf("static row reports control actions: %+v", st)
	}
	if !strings.Contains(r.String(), "lower with the control loop") {
		t.Fatalf("rendered figure missing the comparison line:\n%s", r)
	}
}
