package experiments

import (
	"fmt"
	goruntime "runtime"
	"strings"
	"time"

	"leap/internal/core"
	"leap/internal/load"
	"leap/internal/prefetch"
	"leap/internal/runtime"
	"leap/internal/sim"
)

// ConcurrencyRow is one (queue depth, clients, goroutines) grid point of the
// multi-client runtime sweep.
type ConcurrencyRow struct {
	Depth      int
	Clients    int
	Goroutines int
	Ops        int64
	Makespan   sim.Duration
	// KopsPerSec is the modeled closed-loop throughput at this goroutine
	// count, in thousands of operations per virtual second.
	KopsPerSec float64
	// HitRatio and SerialFrac are properties of the (depth, clients) run,
	// repeated on each of its goroutine rows.
	HitRatio   float64
	SerialFrac float64
}

// ConcurrencyResult is the `-fig concurrency` sweep: the concurrent
// leap.Memory runtime under the closed-loop multi-client load
// (internal/load), projected onto 1–8 driving goroutines with the
// deterministic Amdahl model measured off the real fault path (see
// load.Measurement). Each (depth, clients) cell is one live run over a
// fresh in-process cluster — real bytes, real placement — whose per-client
// streams feed per-client predictors through Memory.Client; goroutine
// scaling then spreads the waitable wire time while the lock-serialized
// CPU share stays put, so throughput rises monotonically with goroutines
// until the serial fraction caps it. The isolation block replays the
// paper's §4.1 argument at runtime scale: the same interleaved multi-client
// load with one shared predictor instead of per-client ones.
type ConcurrencyResult struct {
	Rows []ConcurrencyRow
	// IsolatedHitRatio vs SharedHitRatio: the §4.1 per-client isolation
	// ablation at the widest client count and deepest queue.
	IsolatedHitRatio, SharedHitRatio float64
	// IsolationClients is the client count the ablation ran at.
	IsolationClients int
	// OpsPerRun is the total operation count of each (depth, clients) run.
	OpsPerRun int64
	// Measured is the real-goroutine block: load.DriveTimed wall-clock
	// throughput of the sharded runtime at each goroutine count on this
	// machine. Unlike Rows it is NOT deterministic (wall time, scheduler,
	// GOMAXPROCS); String renders it under the "  measured" prefix so
	// byte-identity gates can strip it (StripMeasured).
	Measured []MeasuredRow
	// MeasuredProcs/MeasuredShards/MeasuredClients/MeasuredOps describe the
	// measured block's shape: the GOMAXPROCS it observed (never mutated),
	// the WithShards stripe count, the client count, and the ops per run.
	MeasuredProcs, MeasuredShards, MeasuredClients int
	MeasuredOps                                    int64
}

// MeasuredRow is one goroutine count of the measured real-goroutine sweep.
type MeasuredRow struct {
	// Goroutines is the load.Drive worker count.
	Goroutines int
	// Ops is the operations the run executed; Wall is its wall-clock
	// duration; KopsPerSec is Ops/Wall in thousands per (real) second.
	Ops        int64
	Wall       time.Duration
	KopsPerSec float64
}

// The sweep grid.
var (
	concurrencyDepths     = []int{1, 8}
	concurrencyClients    = []int{1, 2, 4}
	concurrencyGoroutines = []int{1, 2, 4, 8}
)

// concurrencyPages is each client's private page range; the shared cache
// budget stays at concurrencyCache pages, so wider client counts oversubscribe
// local memory harder (span = clients × pages).
const (
	concurrencyPages = 256
	concurrencyCache = 256
)

// concurrencyRun measures one (depth, clients) cell and reports the
// measurement plus the run's hit ratio.
func concurrencyRun(depth, clients int, ops int64, seed uint64, shared bool) (load.Measurement, float64) {
	pf := prefetch.NewLeap(core.Config{})
	pf.Shared = shared
	mem, err := runtime.Open(
		runtime.WithSeed(seed),
		runtime.WithPrefetcher(pf),
		runtime.WithCacheCapacity(concurrencyCache),
		runtime.WithQueueDepth(depth),
		runtime.WithConcurrency(8),
	)
	if err != nil {
		panic(err)
	}
	defer mem.Close()
	cfg := load.Config{
		Clients:        clients,
		OpsPerClient:   int(ops) / clients,
		PagesPerClient: concurrencyPages,
		Seed:           seed ^ uint64(depth)<<16 ^ uint64(clients)<<8,
	}
	ms, err := load.Measure(mem, cfg)
	if err != nil {
		panic(err)
	}
	return ms, mem.Stats().HitRatio
}

// measuredGoroutines is the goroutine sweep of the measured block and
// measuredShards its WithShards stripe count (one stripe per expected
// core, so hit-path locks split 8 ways).
var measuredGoroutines = []int{1, 2, 4, 8}

const (
	measuredShards  = 8
	measuredClients = 8
)

// measuredRun executes one real-goroutine run: g workers drive
// measuredClients clients over a fresh sharded Memory through
// load.DriveTimed, and the row reports wall-clock throughput. The numbers
// are machine-dependent by nature; determinism gates strip them.
func measuredRun(g int, ops int64, seed uint64) MeasuredRow {
	mem, err := runtime.Open(
		runtime.WithSeed(seed),
		runtime.WithShards(measuredShards),
		runtime.WithCacheCapacity(concurrencyCache),
		runtime.WithQueueDepth(8),
		runtime.WithConcurrency(8),
	)
	if err != nil {
		panic(err)
	}
	defer mem.Close()
	cfg := load.Config{
		Clients:        measuredClients,
		Goroutines:     g,
		OpsPerClient:   int(ops) / measuredClients,
		PagesPerClient: 64,
		Seed:           seed ^ 0xD81E,
	}
	res, wall, err := load.DriveTimed(mem, cfg)
	if err != nil {
		panic(err)
	}
	row := MeasuredRow{Goroutines: g, Ops: res.Ops, Wall: wall}
	if wall > 0 {
		row.KopsPerSec = float64(res.Ops) / wall.Seconds() / 1e3
	}
	return row
}

// Concurrency runs the goroutines × clients sweep at each queue depth.
func Concurrency(s Scale, seed uint64) ConcurrencyResult {
	ops := s.Measured / 4
	if ops < 2000 {
		ops = 2000
	}
	out := ConcurrencyResult{OpsPerRun: ops}
	deepest := concurrencyDepths[len(concurrencyDepths)-1]
	widest := concurrencyClients[len(concurrencyClients)-1]
	for _, depth := range concurrencyDepths {
		for _, clients := range concurrencyClients {
			ms, hit := concurrencyRun(depth, clients, ops, seed, false)
			if depth == deepest && clients == widest {
				// This cell doubles as the isolated half of the §4.1
				// ablation (the run is deterministic; re-running it could
				// only reproduce the same number).
				out.IsolatedHitRatio = hit
			}
			for _, g := range concurrencyGoroutines {
				out.Rows = append(out.Rows, ConcurrencyRow{
					Depth:      depth,
					Clients:    clients,
					Goroutines: g,
					Ops:        ms.Ops,
					Makespan:   ms.Makespan(g),
					KopsPerSec: ms.Throughput(g) / 1e3,
					HitRatio:   hit,
					SerialFrac: ms.SerialFraction(),
				})
			}
		}
	}
	out.IsolationClients = widest
	_, out.SharedHitRatio = concurrencyRun(deepest, widest, ops, seed, true)
	// The measured block: the same closed loop driven by real goroutines
	// over the sharded runtime, timed on the wall clock. GOMAXPROCS is
	// observed, never mutated — figures may run in parallel with other work.
	out.MeasuredProcs = goruntime.GOMAXPROCS(0)
	out.MeasuredShards = measuredShards
	out.MeasuredClients = measuredClients
	out.MeasuredOps = ops
	for _, g := range measuredGoroutines {
		out.Measured = append(out.Measured, measuredRun(g, ops, seed))
	}
	return out
}

// Row fetches one grid point.
func (r ConcurrencyResult) Row(depth, clients, goroutines int) (ConcurrencyRow, bool) {
	for _, row := range r.Rows {
		if row.Depth == depth && row.Clients == clients && row.Goroutines == goroutines {
			return row, true
		}
	}
	return ConcurrencyRow{}, false
}

// GoroutineGain reports throughput at the most goroutines over one
// goroutine for a (depth, clients) cell.
func (r ConcurrencyResult) GoroutineGain(depth, clients int) float64 {
	lo, ok1 := r.Row(depth, clients, concurrencyGoroutines[0])
	hi, ok2 := r.Row(depth, clients, concurrencyGoroutines[len(concurrencyGoroutines)-1])
	if !ok1 || !ok2 || lo.KopsPerSec == 0 {
		return 0
	}
	return hi.KopsPerSec / lo.KopsPerSec
}

// String renders the figure.
func (r ConcurrencyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure C — concurrency: multi-client leap.Memory (closed loop, %d ops/run, modeled goroutine scaling)\n", r.OpsPerRun)
	fmt.Fprintf(&b, "  %5s %7s %10s %8s %12s %10s %8s\n",
		"depth", "clients", "goroutines", "ops", "Kops/s", "makespan", "hit")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %5d %7d %10d %8d %12.1f %10v %7.1f%%\n",
			row.Depth, row.Clients, row.Goroutines, row.Ops,
			row.KopsPerSec, row.Makespan, 100*row.HitRatio)
	}
	fmt.Fprintf(&b, "  goroutine scaling (throughput ×, %d vs 1 goroutines):",
		concurrencyGoroutines[len(concurrencyGoroutines)-1])
	for _, depth := range concurrencyDepths {
		for _, clients := range concurrencyClients {
			fmt.Fprintf(&b, "  d%d/c%d %.2f×", depth, clients, r.GoroutineGain(depth, clients))
		}
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  §4.1 isolation at %d clients: per-client predictors %.1f%% hit vs shared predictor %.1f%% hit\n",
		r.IsolationClients, 100*r.IsolatedHitRatio, 100*r.SharedHitRatio)
	fmt.Fprintf(&b, "  (each cell is one live run over the in-proc cluster; goroutine rows spread its waitable wire time, the lock-serialized share is the ceiling)\n")
	// The measured block renders last, every line under the "  measured"
	// prefix: wall-clock numbers are machine- and run-dependent, and
	// byte-identity gates (tests, CI two-run diffs) strip exactly these
	// lines via StripMeasured / `grep -v '^  measured'`.
	if len(r.Measured) > 0 {
		fmt.Fprintf(&b, "  measured real-goroutine load.Drive (wall clock, nondeterministic): GOMAXPROCS=%d shards=%d clients=%d %d ops/run\n",
			r.MeasuredProcs, r.MeasuredShards, r.MeasuredClients, r.MeasuredOps)
		for _, row := range r.Measured {
			fmt.Fprintf(&b, "  measured   g=%d %10.1f Kops/s (wall %v, %d ops)\n",
				row.Goroutines, row.KopsPerSec, row.Wall.Round(time.Microsecond), row.Ops)
		}
	}
	return b.String()
}

// StripMeasured removes the nondeterministic measured block from a rendered
// concurrency figure: every line carrying the "  measured" prefix. The
// remainder is the deterministic model — byte-identical across runs for
// equal seeds — which is what determinism gates must compare.
func StripMeasured(out string) string {
	lines := strings.Split(out, "\n")
	kept := lines[:0]
	for _, ln := range lines {
		if strings.HasPrefix(ln, "  measured") {
			continue
		}
		kept = append(kept, ln)
	}
	return strings.Join(kept, "\n")
}
