package experiments

import (
	"testing"
)

// TestZtierDeterministic is the acceptance gate for `leapbench -fig ztier`:
// byte-identical output for the same seed across repeated runs and across
// -parallel settings. The figure drives real page images through the
// compressed tier and the wire codec, so this also pins the codec's
// determinism end to end.
func TestZtierDeterministic(t *testing.T) {
	a, ok := RunFigure("ztier", Small, 42)
	if !ok {
		t.Fatal("ztier figure not registered")
	}
	b, _ := RunFigure("ztier", Small, 42)
	if a.Output != b.Output {
		t.Fatalf("same-seed ztier runs diverged:\n%s\n---\n%s", a.Output, b.Output)
	}
	names := []string{"ztier", "1"}
	seq := RunAll(names, Small, 42, 1)
	par := RunAll(names, Small, 42, 4)
	for i := range names {
		if StripMeasured(seq[i].Output) != StripMeasured(par[i].Output) {
			t.Fatalf("figure %s: parallel output differs from sequential", names[i])
		}
	}
	if seq[0].Output != a.Output {
		t.Fatal("runner output differs from direct RunFigure output")
	}
}

// TestZtierTierWins pins the headline acceptance criterion: with the tier
// enabled at equal RAM, at least one application workload shows a strictly
// higher hit ratio than the tier-off run — and every tier cell that hit the
// tier realized a compression ratio above 1 (the pages are designed
// semi-compressible).
func TestZtierTierWins(t *testing.T) {
	r := Ztier(Small, 42)
	wins := 0
	for _, app := range ztierApps {
		off, ok1 := r.Cell(app, "off")
		tier, ok2 := r.Cell(app, "tier")
		if !ok1 || !ok2 {
			t.Fatalf("missing cells for %s", app)
		}
		if off.ZtierHits != 0 || off.Ratio != 0 {
			t.Fatalf("%s: tier-off cell reports tier activity: %+v", app, off)
		}
		if tier.HitRatio > off.HitRatio {
			wins++
		}
		if tier.ZtierHits > 0 && tier.Ratio <= 1 {
			t.Fatalf("%s: tier hit %d times at ratio %.2f — compression never paid",
				app, tier.ZtierHits, tier.Ratio)
		}
	}
	if wins == 0 {
		t.Fatalf("no app improved its hit ratio with the tier on at equal RAM:\n%s", r)
	}
}

// TestZtierWireCompressionObserved checks the on-wire leg: at least one
// tier cell must have moved compressed batched frames and saved bytes.
func TestZtierWireCompressionObserved(t *testing.T) {
	r := Ztier(Small, 42)
	for _, app := range ztierApps {
		if c, _ := r.Cell(app, "tier"); c.WireSaved > 0 {
			return
		}
	}
	t.Fatalf("no tier cell observed on-wire compression savings:\n%s", r)
}
