package experiments

import (
	"fmt"
	"strings"

	"leap/internal/sim"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// CacheSizes is the Figure 12 prefetch-cache grid in pages (4KB each):
// unlimited, 320MB, 32MB, 3.2MB.
var CacheSizes = []struct {
	Name  string
	Pages int
}{
	{"no limit", 0},
	{"320MB", 81920},
	{"32MB", 8192},
	{"3.2MB", 819},
}

// Fig12Cell is one (app, cache size) outcome.
type Fig12Cell struct {
	Completion sim.Duration
	OpsPerSec  float64
}

// Fig12Result reproduces Figure 12: Leap's performance as the prefetch
// cache shrinks to O(1)MB.
type Fig12Result struct {
	// Cells keyed "<app>/<size name>".
	Cells map[string]Fig12Cell
}

// Cell fetches one entry.
func (r Fig12Result) Cell(app, size string) (Fig12Cell, bool) {
	c, ok := r.Cells[app+"/"+size]
	return c, ok
}

// Fig12 runs the four applications at 50% memory on the full Leap stack
// under each cache limit.
func Fig12(s Scale, seed uint64) Fig12Result {
	out := Fig12Result{Cells: map[string]Fig12Cell{}}
	for ai, prof := range workload.Profiles() {
		for _, size := range CacheSizes {
			runSeed := seed + uint64(ai)*131
			cfg := DVMMLeapConfig(runSeed)
			cfg.CacheCapacity = size.Pages
			_, res := mustRun(cfg, []vmm.App{appAt(prof, 1, 0.5, runSeed)}, s)
			out.Cells[prof.AppName+"/"+size.Name] = Fig12Cell{
				Completion: res.Makespan,
				OpsPerSec:  res.PerProc[0].OpsPerSec,
			}
		}
	}
	return out
}

// String renders both panels.
func (r Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — Leap under constrained prefetch cache (@50%% memory)\n")
	fmt.Fprintf(&b, "  %-12s", "app")
	for _, size := range CacheSizes {
		fmt.Fprintf(&b, " %14s", size.Name)
	}
	b.WriteByte('\n')
	for _, prof := range workload.Profiles() {
		app := prof.AppName
		throughput := app == "voltdb" || app == "memcached"
		fmt.Fprintf(&b, "  %-12s", app)
		for _, size := range CacheSizes {
			c := r.Cells[app+"/"+size.Name]
			if throughput {
				fmt.Fprintf(&b, " %14.0f", c.OpsPerSec)
			} else {
				fmt.Fprintf(&b, " %14v", c.Completion)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  (paper: ≤13%% degradation even at O(1)MB cache)\n")
	return b.String()
}
