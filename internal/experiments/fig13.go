package experiments

import (
	"fmt"
	"strings"

	"leap/internal/sim"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// Fig13Row is one application's completion time when all four run
// concurrently.
type Fig13Row struct {
	App     string
	Default sim.Duration
	Leap    sim.Duration
}

// Gain is the completion-time improvement factor.
func (r Fig13Row) Gain() float64 {
	if r.Leap == 0 {
		return 0
	}
	return float64(r.Default) / float64(r.Leap)
}

// Fig13Result reproduces Figure 13: the four applications sharing one host
// and one remote fabric at 50% memory each — the test of per-process
// isolation and congestion behaviour.
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13 runs the concurrent mix on D-VMM and D-VMM+Leap.
func Fig13(s Scale, seed uint64) Fig13Result {
	apps := func(sd uint64) []vmm.App {
		var out []vmm.App
		for i, prof := range workload.Profiles() {
			out = append(out, appAt(prof, vmm.PID(i+1), 0.5, sd+uint64(i)))
		}
		return out
	}
	_, def := mustRun(DVMMConfig(seed), apps(seed), s)
	_, leap := mustRun(DVMMLeapConfig(seed), apps(seed), s)

	var out Fig13Result
	for i, prof := range workload.Profiles() {
		out.Rows = append(out.Rows, Fig13Row{
			App:     prof.AppName,
			Default: def.PerProc[i].Time,
			Leap:    leap.PerProc[i].Time,
		})
	}
	return out
}

// Row fetches one app's row.
func (r Fig13Result) Row(app string) (Fig13Row, bool) {
	for _, row := range r.Rows {
		if row.App == app {
			return row, true
		}
	}
	return Fig13Row{}, false
}

// String renders the comparison.
func (r Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13 — four applications concurrently (@50%% memory each)\n")
	fmt.Fprintf(&b, "  %-12s %14s %14s %8s\n", "app", "d-vmm", "d-vmm+leap", "gain")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %14v %14v %7.2f×\n", row.App, row.Default, row.Leap, row.Gain())
	}
	fmt.Fprintf(&b, "  (paper: 1.1–2.4× improvement across the mix)\n")
	return b.String()
}
