package experiments

import (
	"strings"
	"testing"
)

// TestRuntimeDeterministic is the reproducibility gate on the live-runtime
// figure: two runs from the same (scale, seed) must render byte-identically
// — real bytes over the in-proc cluster included.
func TestRuntimeDeterministic(t *testing.T) {
	a := Runtime(Small, 42).String()
	b := Runtime(Small, 42).String()
	if a != b {
		t.Fatalf("runtime figure not deterministic:\n%s\n---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty output")
	}
}

// TestRuntimeLeapBeatsBaselines is the acceptance gate from the paper's
// thesis, over real remote memory: with the Leap prefetcher the runtime's
// hit ratio is strictly above WithPrefetcher(none) on both microbenchmark
// patterns, and above read-ahead on stride (where read-ahead's sequential
// assumption collapses).
func TestRuntimeLeapBeatsBaselines(t *testing.T) {
	r := Runtime(Small, 42)
	for _, wl := range []string{"sequential", "stride-10"} {
		lp, ok1 := r.Cell(wl, "leap")
		np, ok2 := r.Cell(wl, "none")
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing cells", wl)
		}
		if lp.HitRatio <= np.HitRatio {
			t.Errorf("%s: leap hit ratio %.4f not strictly above none %.4f",
				wl, lp.HitRatio, np.HitRatio)
		}
		if lp.Latency.P50 >= np.Latency.P50 {
			t.Errorf("%s: leap p50 %v not below none %v", wl, lp.Latency.P50, np.Latency.P50)
		}
	}
	lp, _ := r.Cell("stride-10", "leap")
	ra, _ := r.Cell("stride-10", "readahead")
	if lp.HitRatio <= ra.HitRatio {
		t.Errorf("stride-10: leap %.4f not above readahead %.4f", lp.HitRatio, ra.HitRatio)
	}
	// Random traffic must suspend Leap's prefetching, not flood the wire.
	rnd, _ := r.Cell("random", "leap")
	if rnd.HitRatio > 0.05 {
		t.Errorf("random: implausible hit ratio %.4f", rnd.HitRatio)
	}
}

// TestDescribeGolden pins the -list inventory: every figure name appears
// with a one-line description, in presentation order.
func TestDescribeGolden(t *testing.T) {
	const want = `1           data-path latency breakdown: stock block layer vs Leap's lean path
2           4KB read latency CDFs across disaggregated VMM/VFS stacks
3           page-fault pattern mix (sequential/stride/irregular) per application
4           consumed-page wait time under lazy vs eager cache eviction
table1      majority-trend prefetching contrasted with prior prefetcher classes
7           microbenchmark latency CDFs: default path vs Leap, sequential and stride
8a          prefetcher comparison on the sequential microbenchmark
8b          prefetcher comparison on the stride-10 microbenchmark
9           cache adds and prefetch accuracy/coverage per prefetcher and app
10          application 4KB latency CDFs and prefetch timeliness on Leap
11          application completion time and throughput at 100%/50%/25% memory
12          Leap under shrinking prefetch-cache budgets
13          multi-process isolation: per-process predictors vs global stream
resilience  chaos harness: scripted faults, failover latency, repair traffic
scaling     async ticket engine throughput over agents × queue-depth grid
elastic     self-healing control plane: diurnal ramp, static vs detector+autoscaler
runtime     end-to-end leap.Memory: prefetchers over a live in-proc remote cluster
selfheal    leap.Memory under mid-run agent faults: unsupervised vs WithControlPlane
concurrency multi-client leap.Memory: modeled throughput over goroutines × clients
ztier       compressed victim tier: hit ratio, hit latency and compression ratio at equal RAM
ensemble    online per-client prefetcher selection vs every fixed policy, per application
ablations   design-choice sweeps: majority vote, windows, eviction, isolation
`
	if got := Describe(); got != want {
		t.Fatalf("Describe() golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Belt and braces: the inventory must cover exactly Figures().
	for _, name := range Figures() {
		if !strings.Contains(Describe(), name+" ") && !strings.HasPrefix(Describe(), name+" ") {
			t.Errorf("Describe() missing figure %q", name)
		}
	}
}
