package experiments

import (
	"fmt"
	"strings"

	"leap/internal/rdma"
	"leap/internal/sim"
	"leap/internal/storage"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// Fig1Result is the per-stage data path latency breakdown of Figure 1: the
// average time a 4KB page request spends in each stage of the default
// kernel path, plus device access times for the three media.
type Fig1Result struct {
	// Host-side legacy stages (means over the measured run).
	Entry, BioPrep, Staging, Dispatch sim.Duration
	// Device access means.
	HDD, SSD, RDMA sim.Duration
	// HitPath is the cache-hit service time.
	HitPath sim.Duration
	// LegacyMissMean / LeanMissMean are end-to-end miss costs on remote
	// memory for the two paths.
	LegacyMissMean, LeanMissMean sim.Duration
}

// Fig1 measures the breakdown by driving stride-10 misses (no prefetcher,
// so every fault traverses the full path) through both path variants and
// sampling each device model.
func Fig1(s Scale, seed uint64) Fig1Result {
	// Legacy path over remote memory, no prefetching: pure miss traffic.
	cfg := DVMMConfig(seed)
	cfg.Prefetcher = nil
	m, legacy := mustRun(cfg, []vmm.App{
		microApp(workload.NewStride(1<<20, 10, seed), 1),
	}, s)

	leanCfg := DVMMLeapConfig(seed)
	leanCfg.Prefetcher = nil
	leanCfg.CachePolicy = 0
	_, lean := mustRun(leanCfg, []vmm.App{
		microApp(workload.NewStride(1<<20, 10, seed), 1),
	}, s)

	p := m.Path()
	r := Fig1Result{
		Entry:          p.EntryHist.Mean(),
		BioPrep:        p.BioPrepHist.Mean(),
		Staging:        p.StagingHist.Mean(),
		Dispatch:       p.DispatchHist.Mean(),
		HitPath:        270 * sim.Nanosecond,
		LegacyMissMean: legacy.Latency.Mean,
		LeanMissMean:   lean.Latency.Mean,
	}

	// Device stage means, sampled in isolation (unloaded).
	rng := sim.NewRNG(seed ^ 0xdead)
	hdd := storage.NewHDD(rng.Fork(1))
	ssd := storage.NewSSD(rng.Fork(2))
	rm := storage.NewRemote(rdma.New(rdma.Config{}, rng.Fork(3)))
	var hddSum, ssdSum, rdmaSum sim.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		now := sim.Time(i) * sim.Time(sim.Millisecond)
		hddSum += hdd.Read(i, now, 0, 10).Sub(now)
		ssdSum += ssd.Read(i, now, 0, 10).Sub(now)
		rdmaSum += rm.Read(i, now, 0, 10).Sub(now)
	}
	r.HDD = hddSum / n
	r.SSD = ssdSum / n
	r.RDMA = rdmaSum / n
	return r
}

// String renders the Figure 1 stage table.
func (r Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — data path stage latency breakdown (stride-10 misses)\n")
	fmt.Fprintf(&b, "  %-34s paper      measured\n", "stage")
	row := func(name, paper string, v sim.Duration) {
		fmt.Fprintf(&b, "  %-34s %-10s %v\n", name, paper, v)
	}
	row("fault/VFS entry + cache lookup", "0.27µs", r.Entry)
	row("block-layer bio preparation", "10.04µs", r.BioPrep)
	row("request-queue staging/batching", "21.88µs", r.Staging)
	row("dispatch queue", "2.1µs", r.Dispatch)
	row("device: HDD (near seek)", "91.48µs", r.HDD)
	row("device: SSD", "20µs", r.SSD)
	row("device: RDMA 4KB", "4.3µs", r.RDMA)
	row("cache hit service", "0.27µs", r.HitPath)
	fmt.Fprintf(&b, "  %-34s %-10s %v\n", "end-to-end miss (legacy, remote)", "~38.3µs", r.LegacyMissMean)
	fmt.Fprintf(&b, "  %-34s %-10s %v\n", "end-to-end miss (lean, remote)", "~7µs", r.LeanMissMean)
	return b.String()
}
