package experiments

import (
	"fmt"
	"strings"

	"leap/internal/metrics"
	"leap/internal/prefetch"
	"leap/internal/sim"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// PrefetcherNames is the Figure 9/10 competitor set, in presentation order.
// GHB is this repository's extension: the paper lists it in Table 1 but
// excludes it from the runtime comparison because of its memory overhead;
// having built it, we measure it too.
var PrefetcherNames = []string{"nextnline", "stride", "readahead", "ghb", "leap"}

// Fig9Row is one prefetcher's cache behaviour and completion time
// (Figures 9a and 9b) plus the quality metrics reused by Figure 10.
type Fig9Row struct {
	Prefetcher string
	CacheAdds  int64
	CacheMiss  int64
	Completion sim.Duration
	Accuracy   float64
	Coverage   float64
	// Timeliness is the prefetch→first-hit distribution (Figure 10b).
	Timeliness metrics.Summary
}

// Fig9Result holds all rows.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 runs PowerGraph on disk (stock block-layer path, 50% memory),
// swapping only the prefetching algorithm — isolating the algorithm's
// effect exactly as §5.2.3 does.
func Fig9(s Scale, seed uint64) Fig9Result {
	prof := workload.PowerGraphProfile()
	var out Fig9Result
	for _, name := range PrefetcherNames {
		pf, err := prefetch.New(name)
		if err != nil {
			panic(err)
		}
		cfg := DiskConfig(seed)
		cfg.Prefetcher = pf
		m, res := mustRun(cfg, []vmm.App{appAt(prof, 1, 0.5, seed)}, s)
		out.Rows = append(out.Rows, Fig9Row{
			Prefetcher: name,
			CacheAdds:  res.CacheAdds,
			CacheMiss:  res.CacheMisses,
			Completion: res.Makespan,
			Accuracy:   res.Accuracy,
			Coverage:   res.Coverage,
			Timeliness: m.Cache().Timeliness.Summarize(),
		})
	}
	return out
}

// Row returns the row for a prefetcher name.
func (r Fig9Result) Row(name string) (Fig9Row, bool) {
	for _, row := range r.Rows {
		if row.Prefetcher == name {
			return row, true
		}
	}
	return Fig9Row{}, false
}

// String renders Figures 9a and 9b.
func (r Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — prefetcher cache behaviour and completion (PowerGraph on disk @50%%)\n")
	fmt.Fprintf(&b, "  %-12s %12s %12s %14s\n", "prefetcher", "cache adds", "cache miss", "completion")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %12d %12d %14v\n",
			row.Prefetcher, row.CacheAdds, row.CacheMiss, row.Completion)
	}
	fmt.Fprintf(&b, "  (paper: Leap uses 28–62%% fewer cache adds; 1.7–10.5× fewer misses;\n")
	fmt.Fprintf(&b, "   completion 1.75×/2.59×/3.36× better than Read-Ahead/Next-N-Line/Stride)\n")
	return b.String()
}

// Fig10Result reuses the Figure 9 runs for the prefetcher quality metrics.
type Fig10Result struct {
	Rows []Fig9Row
}

// Fig10 derives accuracy/coverage/timeliness from the same configuration.
func Fig10(s Scale, seed uint64) Fig10Result {
	return Fig10Result{Rows: Fig9(s, seed).Rows}
}

// Row returns the row for a prefetcher name.
func (r Fig10Result) Row(name string) (Fig9Row, bool) {
	return Fig9Result{Rows: r.Rows}.Row(name)
}

// String renders Figures 10a and 10b.
func (r Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — prefetcher quality (PowerGraph on disk @50%%)\n")
	fmt.Fprintf(&b, "  %-12s %10s %10s %14s %14s\n",
		"prefetcher", "accuracy", "coverage", "timeliness p50", "timeliness p99")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %9.1f%% %9.1f%% %14v %14v\n",
			row.Prefetcher, row.Accuracy*100, row.Coverage*100,
			row.Timeliness.P50, row.Timeliness.P99)
	}
	fmt.Fprintf(&b, "  (paper: Leap trades 0.9–10.9%% accuracy for 3.1–37.5%% more coverage\n")
	fmt.Fprintf(&b, "   and 12.4×/13.9× better median timeliness than Read-Ahead/Next-N-Line)\n")
	return b.String()
}
