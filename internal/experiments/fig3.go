package experiments

import (
	"fmt"
	"strings"

	"leap/internal/analysis"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// Fig3Row is one application's pattern mix across window sizes.
type Fig3Row struct {
	App        string
	StrictW2   analysis.Mix
	StrictW4   analysis.Mix
	StrictW8   analysis.Mix
	MajorityW8 analysis.Mix
	Faults     int
}

// Fig3Result reproduces Figure 3: the fraction of sequential/stride/other
// page-fault windows per application at 50% memory, under strict matching
// (windows 2/4/8) and majority detection (window 8).
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 runs each application at 50% memory on the default D-VMM stack,
// captures the fault stream, and classifies it.
func Fig3(s Scale, seed uint64) Fig3Result {
	var out Fig3Result
	for i, prof := range workload.Profiles() {
		cfg := DVMMConfig(seed + uint64(i))
		cfg.CaptureFaults = true
		m, _ := mustRun(cfg, []vmm.App{appAt(prof, 1, 0.5, seed+uint64(i))}, s)
		faults := m.FaultTrace(1)
		out.Rows = append(out.Rows, Fig3Row{
			App:        prof.AppName,
			StrictW2:   analysis.ClassifyStrict(faults, 2),
			StrictW4:   analysis.ClassifyStrict(faults, 4),
			StrictW8:   analysis.ClassifyStrict(faults, 8),
			MajorityW8: analysis.ClassifyMajority(faults, 8),
			Faults:     len(faults),
		})
	}
	return out
}

// String renders the Figure 3 table.
func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — page-fault pattern mix at 50%% memory (seq/stride/other %%)\n")
	fmt.Fprintf(&b, "  %-12s %-26s %-26s %-26s %-26s\n",
		"app", "strict W2", "strict W4", "strict W8", "majority W8")
	cell := func(m analysis.Mix) string {
		return fmt.Sprintf("%5.1f/%5.1f/%5.1f", m.Sequential*100, m.Stride*100, m.Other*100)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %-26s %-26s %-26s %-26s (n=%d)\n",
			row.App, cell(row.StrictW2), cell(row.StrictW4), cell(row.StrictW8),
			cell(row.MajorityW8), row.Faults)
	}
	fmt.Fprintf(&b, "  (paper: majority@W8 detects 11.3–29.7%% more sequential windows than strict@W8;\n")
	fmt.Fprintf(&b, "   Memcached ≈96%% irregular, VoltDB 69%% irregular)\n")
	return b.String()
}
