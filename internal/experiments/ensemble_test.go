package experiments

import (
	"testing"
)

// TestEnsembleDeterministic is the acceptance gate for `leapbench -fig
// ensemble`: byte-identical output for the same seed across repeated runs
// and across -parallel settings. The figure runs the online selector's full
// epoch/hysteresis machinery per cell, so this also pins the selector's
// determinism end to end.
func TestEnsembleDeterministic(t *testing.T) {
	a, ok := RunFigure("ensemble", Small, 42)
	if !ok {
		t.Fatal("ensemble figure not registered")
	}
	b, _ := RunFigure("ensemble", Small, 42)
	if a.Output != b.Output {
		t.Fatalf("same-seed ensemble runs diverged:\n%s\n---\n%s", a.Output, b.Output)
	}
	names := []string{"ensemble", "1"}
	seq := RunAll(names, Small, 42, 1)
	par := RunAll(names, Small, 42, 4)
	for i := range names {
		if StripMeasured(seq[i].Output) != StripMeasured(par[i].Output) {
			t.Fatalf("figure %s: parallel output differs from sequential", names[i])
		}
	}
	if seq[0].Output != a.Output {
		t.Fatal("runner output differs from direct RunFigure output")
	}
}

// ensembleGateTolerance is the hit-ratio slack the selector is allowed
// against the best fixed policy: convergence noise, worth a handful of
// accesses per cell. A wrong selection costs whole percentage points (e.g.
// next-N-line on memcached gives up ~8 points), so the bound still has
// teeth — the tolerance is an order of magnitude below any real
// mis-selection.
const ensembleGateTolerance = 0.002

// TestEnsembleBeatsFixedPolicies pins the headline acceptance criterion: on
// every application workload the online selector's hit ratio reaches the
// best fixed policy (within convergence tolerance), clearly beats the mean
// of the zoo, and leaves the worst arm far behind — picking one fixed
// policy for all apps is strictly dominated.
func TestEnsembleBeatsFixedPolicies(t *testing.T) {
	r := Ensemble(Small, 42)
	for _, app := range ensembleApps {
		ens, ok := r.Cell(app, "ensemble")
		if !ok {
			t.Fatalf("missing ensemble cell for %s", app)
		}
		best, worst, sum := -1.0, 2.0, 0.0
		bestName := ""
		for _, policy := range EnsemblePolicies[1:] {
			c, ok := r.Cell(app, policy)
			if !ok {
				t.Fatalf("missing %s cell for %s", policy, app)
			}
			if c.Switches != 0 || c.Final != "-" {
				t.Fatalf("%s/%s: fixed policy reports selector activity: %+v", app, policy, c)
			}
			if c.HitRatio > best {
				best, bestName = c.HitRatio, policy
			}
			if c.HitRatio < worst {
				worst = c.HitRatio
			}
			sum += c.HitRatio
		}
		mean := sum / float64(len(EnsemblePolicies)-1)
		if ens.HitRatio+ensembleGateTolerance < best {
			t.Errorf("%s: ensemble hit %.4f below best fixed %.4f (%s) beyond tolerance",
				app, ens.HitRatio, best, bestName)
		}
		if ens.HitRatio <= mean {
			t.Errorf("%s: ensemble hit %.4f does not beat the zoo mean %.4f", app, ens.HitRatio, mean)
		}
		if ens.HitRatio <= worst {
			t.Errorf("%s: ensemble hit %.4f does not beat the worst arm %.4f", app, ens.HitRatio, worst)
		}
		if ens.Final == "-" || ens.Final == "" {
			t.Errorf("%s: ensemble cell reports no final selection", app)
		}
	}
	if t.Failed() {
		t.Logf("full table:\n%s", Ensemble(Small, 42))
	}
}
