package experiments

import (
	"fmt"
	"strings"

	"leap/internal/core"
	"leap/internal/metrics"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/sim"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// Fig8aResult is the benefit breakdown of Figure 8a: the 4KB access latency
// distribution as Leap's components are enabled one at a time on
// PowerGraph at 50% memory.
type Fig8aResult struct {
	// PathOnly: lean data path, no prefetcher, lazy eviction.
	PathOnly metrics.Summary
	// PathPrefetcher: + the Leap prefetcher, still lazy eviction.
	PathPrefetcher metrics.Summary
	// Full: + eager eviction (complete Leap).
	Full metrics.Summary
	// Hists for CCDF rendering keyed by stage name.
	Hists map[string]*metrics.Histogram
}

// Fig8a runs the three cumulative configurations.
func Fig8a(s Scale, seed uint64) Fig8aResult {
	prof := workload.PowerGraphProfile()
	apps := func(sd uint64) []vmm.App { return []vmm.App{appAt(prof, 1, 0.5, sd)} }

	pathOnly := DVMMLeapConfig(seed)
	pathOnly.Prefetcher = nil
	pathOnly.CachePolicy = pagecache.EvictLazy
	m1, r1 := mustRun(pathOnly, apps(seed), s)

	withPf := DVMMLeapConfig(seed)
	withPf.CachePolicy = pagecache.EvictLazy
	m2, r2 := mustRun(withPf, apps(seed), s)

	full := DVMMLeapConfig(seed)
	m3, r3 := mustRun(full, apps(seed), s)

	return Fig8aResult{
		PathOnly:       r1.Latency,
		PathPrefetcher: r2.Latency,
		Full:           r3.Latency,
		Hists: map[string]*metrics.Histogram{
			"path":            m1.ProcLatency(1),
			"path+prefetcher": m2.ProcLatency(1),
			"full leap":       m3.ProcLatency(1),
		},
	}
}

// String renders the CCDF-style table.
func (r Fig8aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8a — benefit breakdown, PowerGraph @50%% (4KB access latency)\n")
	fmt.Fprintf(&b, "  %-18s %10s %10s %10s %10s %10s\n", "config", "p50", "p85", "p95", "p99", "mean")
	row := func(name string, s metrics.Summary, h *metrics.Histogram) {
		fmt.Fprintf(&b, "  %-18s %10v %10v %10v %10v %10v\n",
			name, s.P50, h.Percentile(85), s.P95, s.P99, s.Mean)
	}
	row("path", r.PathOnly, r.Hists["path"])
	row("path+prefetcher", r.PathPrefetcher, r.Hists["path+prefetcher"])
	row("full leap", r.Full, r.Hists["full leap"])
	fmt.Fprintf(&b, "  (paper: prefetcher gives sub-µs to p85; eviction trims tail another ~22%%)\n")
	return b.String()
}

// Fig8bResult reproduces Figure 8b: the Leap prefetcher alone (legacy data
// path, lazy eviction) against Linux read-ahead while paging to slow
// storage.
type Fig8bResult struct {
	// Completion times per (device, prefetcher).
	HDDReadAhead, HDDLeap sim.Duration
	SSDReadAhead, SSDLeap sim.Duration
}

// Gains reports the completion-time improvement factors (HDD, SSD).
func (r Fig8bResult) Gains() (hdd, ssd float64) {
	if r.HDDLeap > 0 {
		hdd = float64(r.HDDReadAhead) / float64(r.HDDLeap)
	}
	if r.SSDLeap > 0 {
		ssd = float64(r.SSDReadAhead) / float64(r.SSDLeap)
	}
	return
}

// Fig8b swaps only the prefetching algorithm on the stock disk path.
func Fig8b(s Scale, seed uint64) Fig8bResult {
	prof := workload.PowerGraphProfile()
	run := func(base func(uint64) vmm.Config, leapPf bool) sim.Duration {
		cfg := base(seed)
		if leapPf {
			cfg.Prefetcher = prefetch.NewLeap(core.Config{})
		}
		_, res := mustRun(cfg, []vmm.App{appAt(prof, 1, 0.5, seed)}, s)
		return res.Makespan
	}
	return Fig8bResult{
		HDDReadAhead: run(DiskConfig, false),
		HDDLeap:      run(DiskConfig, true),
		SSDReadAhead: run(SSDConfig, false),
		SSDLeap:      run(SSDConfig, true),
	}
}

// String renders the slow-storage comparison.
func (r Fig8bResult) String() string {
	var b strings.Builder
	hdd, ssd := r.Gains()
	fmt.Fprintf(&b, "Figure 8b — Leap prefetcher on slow storage (PowerGraph @50%%, legacy path)\n")
	fmt.Fprintf(&b, "  %-18s %14s %14s %8s\n", "device", "read-ahead", "leap prefetch", "gain")
	fmt.Fprintf(&b, "  %-18s %14v %14v %7.2f×  (paper 1.61×)\n", "HDD", r.HDDReadAhead, r.HDDLeap, hdd)
	fmt.Fprintf(&b, "  %-18s %14v %14v %7.2f×  (paper 1.25×)\n", "SSD", r.SSDReadAhead, r.SSDLeap, ssd)
	return b.String()
}
