package experiments

import (
	"fmt"
	"strings"
	"time"
)

// FigureResult is one figure driver's rendered output plus how long it took
// in wall time. Output is deterministic given (name, Scale, seed); Elapsed
// is the only field that varies between runs.
type FigureResult struct {
	Name    string
	Output  string
	Elapsed time.Duration
}

// figureRunner pairs a figure name with its driver and a one-line
// description (the -list inventory). Drivers are pure: each builds its own
// machines from (Scale, seed), so distinct figures can run concurrently.
type figureRunner struct {
	name string
	desc string
	run  func(Scale, uint64) string
}

// figureRegistry lists every figure in the paper's presentation order.
var figureRegistry = []figureRunner{
	{"1", "data-path latency breakdown: stock block layer vs Leap's lean path",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig1(s, seed)) }},
	{"2", "4KB read latency CDFs across disaggregated VMM/VFS stacks",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig2(s, seed)) }},
	{"3", "page-fault pattern mix (sequential/stride/irregular) per application",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig3(s, seed)) }},
	{"4", "consumed-page wait time under lazy vs eager cache eviction",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig4(s, seed)) }},
	{"table1", "majority-trend prefetching contrasted with prior prefetcher classes",
		func(Scale, uint64) string { return RenderTable1() }},
	{"7", "microbenchmark latency CDFs: default path vs Leap, sequential and stride",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig7(s, seed)) }},
	{"8a", "prefetcher comparison on the sequential microbenchmark",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig8a(s, seed)) }},
	{"8b", "prefetcher comparison on the stride-10 microbenchmark",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig8b(s, seed)) }},
	{"9", "cache adds and prefetch accuracy/coverage per prefetcher and app",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig9(s, seed)) }},
	{"10", "application 4KB latency CDFs and prefetch timeliness on Leap",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig10(s, seed)) }},
	{"11", "application completion time and throughput at 100%/50%/25% memory",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig11(s, seed)) }},
	{"12", "Leap under shrinking prefetch-cache budgets",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig12(s, seed)) }},
	{"13", "multi-process isolation: per-process predictors vs global stream",
		func(s Scale, seed uint64) string { return fmt.Sprint(Fig13(s, seed)) }},
	{"resilience", "chaos harness: scripted faults, failover latency, repair traffic",
		func(s Scale, seed uint64) string { return fmt.Sprint(Resilience(s, seed)) }},
	{"scaling", "async ticket engine throughput over agents × queue-depth grid",
		func(s Scale, seed uint64) string { return fmt.Sprint(Scaling(s, seed)) }},
	{"elastic", "self-healing control plane: diurnal ramp, static vs detector+autoscaler",
		func(s Scale, seed uint64) string { return fmt.Sprint(Elastic(s, seed)) }},
	{"runtime", "end-to-end leap.Memory: prefetchers over a live in-proc remote cluster",
		func(s Scale, seed uint64) string { return fmt.Sprint(Runtime(s, seed)) }},
	{"selfheal", "leap.Memory under mid-run agent faults: unsupervised vs WithControlPlane",
		func(s Scale, seed uint64) string { return fmt.Sprint(Selfheal(s, seed)) }},
	{"concurrency", "multi-client leap.Memory: modeled throughput over goroutines × clients",
		func(s Scale, seed uint64) string { return fmt.Sprint(Concurrency(s, seed)) }},
	{"ztier", "compressed victim tier: hit ratio, hit latency and compression ratio at equal RAM",
		func(s Scale, seed uint64) string { return fmt.Sprint(Ztier(s, seed)) }},
	{"ensemble", "online per-client prefetcher selection vs every fixed policy, per application",
		func(s Scale, seed uint64) string { return fmt.Sprint(Ensemble(s, seed)) }},
	{"ablations", "design-choice sweeps: majority vote, windows, eviction, isolation",
		func(s Scale, seed uint64) string {
			parts := []string{
				fmt.Sprint(AblationMajorityVsStrict(s, seed)),
				fmt.Sprint(AblationWindowDoubling(s, seed)),
				fmt.Sprint(AblationEviction(s, seed)),
				fmt.Sprint(AblationIsolation(s, seed)),
				fmt.Sprint(AblationHistorySize(s, seed)),
				fmt.Sprint(AblationMaxWindow(s, seed)),
				fmt.Sprint(AblationThrottling(s, seed)),
			}
			return strings.Join(parts, "\n")
		}},
}

// Figures reports the registered figure names in presentation order.
func Figures() []string {
	names := make([]string, len(figureRegistry))
	for i, r := range figureRegistry {
		names[i] = r.name
	}
	return names
}

// Describe renders the figure inventory — one "name  description" line per
// registered figure, in presentation order (the leapbench -list output).
func Describe() string {
	var b strings.Builder
	for _, r := range figureRegistry {
		fmt.Fprintf(&b, "%-11s %s\n", r.name, r.desc)
	}
	return b.String()
}

// RunFigure runs one named figure, reporting false for an unknown name.
func RunFigure(name string, s Scale, seed uint64) (FigureResult, bool) {
	for _, r := range figureRegistry {
		if r.name == name {
			start := time.Now()
			out := r.run(s, seed)
			return FigureResult{Name: name, Output: out, Elapsed: time.Since(start)}, true
		}
	}
	return FigureResult{}, false
}

// RunAll runs the named figures with up to parallelism concurrent workers
// and returns results in input order. Every driver owns its seed and
// machines, so concurrency cannot perturb outputs: RunAll(names, s, seed, 8)
// produces the same Output fields as running the names one at a time.
// Unknown names produce a result whose Output is an error line, keeping
// positions stable. parallelism < 1 means one worker per figure.
func RunAll(names []string, s Scale, seed uint64, parallelism int) []FigureResult {
	results := make([]FigureResult, 0, len(names))
	ForEach(names, s, seed, parallelism, func(r FigureResult) {
		results = append(results, r)
	})
	return results
}

// ForEach is RunAll with streaming: emit is called once per figure, in
// input order, as soon as that figure and everything before it have
// finished — so a long tail figure doesn't hold earlier output hostage.
// emit runs on the caller's goroutine.
func ForEach(names []string, s Scale, seed uint64, parallelism int, emit func(FigureResult)) {
	if parallelism < 1 || parallelism > len(names) {
		parallelism = len(names)
	}
	results := make([]FigureResult, len(names))
	done := make([]chan struct{}, len(names))
	for i := range done {
		done[i] = make(chan struct{})
	}
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		go func() {
			for i := range work {
				res, ok := RunFigure(names[i], s, seed)
				if !ok {
					res = FigureResult{
						Name:   names[i],
						Output: fmt.Sprintf("unknown figure %q", names[i]),
					}
				}
				results[i] = res
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range names {
			work <- i
		}
		close(work)
	}()
	for i := range names {
		<-done[i]
		emit(results[i])
	}
}
