package experiments

import (
	"strings"
	"testing"
)

// TestScalingDeterministic is the acceptance gate for `leapbench -fig
// scaling`: byte-identical output for the same seed across repeated runs
// and across -parallel settings.
func TestScalingDeterministic(t *testing.T) {
	a, ok := RunFigure("scaling", Small, 42)
	if !ok {
		t.Fatal("scaling figure not registered")
	}
	b, _ := RunFigure("scaling", Small, 42)
	if a.Output != b.Output {
		t.Fatalf("same-seed scaling runs diverged:\n%s\n---\n%s", a.Output, b.Output)
	}
	names := []string{"scaling", "1"}
	seq := RunAll(names, Small, 42, 1)
	par := RunAll(names, Small, 42, 4)
	for i := range names {
		if seq[i].Output != par[i].Output {
			t.Fatalf("figure %s: parallel output differs from sequential", names[i])
		}
	}
	if seq[0].Output != a.Output {
		t.Fatal("runner output differs from direct RunFigure output")
	}
}

// TestScalingThroughputMonotonicInDepth asserts the acceptance criterion:
// at every fixed agent count, throughput is monotonically non-decreasing
// from queue depth 1 through 8 (the latency models are σ=0, so this is a
// structural property, not a statistical one).
func TestScalingThroughputMonotonicInDepth(t *testing.T) {
	r := Scaling(Small, 42)
	if len(r.Rows) != len(scalingAgents)*len(scalingDepths) {
		t.Fatalf("sweep has %d rows", len(r.Rows))
	}
	for _, agents := range scalingAgents {
		prev := -1.0
		for _, depth := range scalingDepths {
			row, ok := r.Row(agents, depth)
			if !ok {
				t.Fatalf("missing grid point (%d, %d)", agents, depth)
			}
			if row.OpsPerSec < prev {
				t.Fatalf("agents=%d: throughput fell from depth %d: %.1f < %.1f\n%s",
					agents, depth, row.OpsPerSec, prev, r)
			}
			prev = row.OpsPerSec
		}
		if gain := r.DepthGain(agents); gain < 1.5 {
			t.Fatalf("agents=%d: depth amortization only %.2f× — batching is not paying", agents, gain)
		}
	}
}

// TestScalingBatchingObserved: deeper queues must actually produce fatter
// doorbells, and the single-op grid point must stay strictly unbatched.
func TestScalingBatchingObserved(t *testing.T) {
	r := Scaling(Small, 42)
	for _, agents := range scalingAgents {
		d1, _ := r.Row(agents, 1)
		d8, _ := r.Row(agents, 8)
		if d1.PagesPerDB != 1.0 {
			t.Fatalf("agents=%d depth=1 packed %f pages per doorbell, want exactly 1", agents, d1.PagesPerDB)
		}
		if d8.PagesPerDB <= 1.5 {
			t.Fatalf("agents=%d depth=8 packed only %f pages per doorbell", agents, d8.PagesPerDB)
		}
	}
	out := r.String()
	for _, want := range []string{"agents", "queue-depth amortization", "doorbells"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}
