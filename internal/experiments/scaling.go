package experiments

import (
	"fmt"
	"strings"

	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/metrics"
	"leap/internal/rdma"
	"leap/internal/remote"
	"leap/internal/sim"
)

// ScalingRow is one (agents, queue depth) point: closed-loop throughput and
// per-op tail latency of the sharded remote-memory engine.
type ScalingRow struct {
	Agents     int
	Depth      int
	Ops        int64
	Elapsed    sim.Duration
	OpsPerSec  float64
	P50        sim.Duration
	P99        sim.Duration
	Doorbells  int64
	PagesPerDB float64
}

// ScalingResult is the `-fig scaling` sweep: the rendezvous-sharded,
// batched, asynchronous remote-memory engine driven closed-loop at a
// pipeline window of agents × depth outstanding operations per doorbell
// round — the fio-style iodepth discipline. Throughput rises along both
// axes: deeper doorbells amortize the per-submission dispatch cost and the
// wire round trip over more pages (3PO's observation that prefetch benefit
// is bounded by how fast the far-memory path drains), and more agents drain
// batches in parallel behind independent fabric queues. Every latency
// distribution in the sweep is configured deterministic (σ=0), so the
// figure is a pure function of (Scale, seed) and the depth-1→8 throughput
// gain is structural, not sampling noise.
type ScalingResult struct {
	Rows []ScalingRow
}

// scalingAgents and scalingDepths are the sweep grid.
var (
	scalingAgents = []int{1, 2, 4, 8}
	scalingDepths = []int{1, 2, 4, 8}
)

// scalingLoop charges one closed-loop driver's virtual time: transport
// calls observed from the host's flush become doorbells — host-side
// submission cost on a serial cursor, wire time on the fabric's per-agent
// queues — and the group completes when its last page lands.
type scalingLoop struct {
	fabric   *rdma.Fabric
	path     *datapath.Path
	cursor   sim.Time // host CPU: doorbell submissions serialize here
	done     sim.Time // latest wire completion in the open group
	buf      []sim.Time
	doorbell int64
	pages    int64
}

func (l *scalingLoop) observe(o remote.CallObservation) {
	// One doorbell: the host traverses the lean submission path once for
	// the whole frame, then the fabric streams its pages.
	l.cursor = l.cursor.Add(l.path.DoorbellOverhead().Total())
	l.buf = l.fabric.SubmitBatch(o.Agent, o.Pages, l.cursor, l.buf)
	l.doorbell++
	l.pages += int64(o.Pages)
	if last := l.buf[len(l.buf)-1]; last > l.done {
		l.done = last
	}
}

// deterministicPath is the lean path with σ=0 stage costs (paper means).
func deterministicPath(rng *sim.RNG) *datapath.Path {
	return datapath.New(datapath.Config{
		Kind:     datapath.Lean,
		Entry:    sim.Normal{Mu: 270, Sigma: 0, Floor: 270},
		Dispatch: sim.Normal{Mu: 2100, Sigma: 0, Floor: 2100},
		HitPath:  sim.Normal{Mu: 270, Sigma: 0, Floor: 270},
	}, rng)
}

// runScalingPoint measures one (agents, depth) grid point.
func runScalingPoint(agents, depth, ops int, seed uint64) ScalingRow {
	base := sim.NewRNG(seed ^ uint64(agents)<<8 ^ uint64(depth))
	loop := &scalingLoop{
		fabric: rdma.New(rdma.Config{
			Queues:    agents,
			OpLatency: sim.Normal{Mu: 4300, Sigma: 0, Floor: 4300},
		}, base.Fork(1)),
		path: deterministicPath(base.Fork(2)),
	}
	transports := make([]remote.Transport, agents)
	for i := 0; i < agents; i++ {
		ft := remote.NewFaultTransport(i, remote.NewInProc(remote.NewAgent(64, 0)), nil)
		ft.SetObserver(loop.observe)
		transports[i] = ft
	}
	replicas := 2
	if agents < 2 {
		replicas = 1
	}
	host, err := remote.NewHost(remote.HostConfig{
		SlabPages:  64,
		Replicas:   replicas,
		QueueDepth: depth,
		Seed:       seed,
	}, transports)
	if err != nil {
		panic(err)
	}

	const pageCount = 1024
	window := agents * depth // outstanding ops per doorbell round
	rng := base.Fork(3)
	page := make([]byte, remote.PageSize)
	bufs := make([][]byte, window)
	for i := range bufs {
		bufs[i] = make([]byte, remote.PageSize)
	}
	var clock sim.Time

	// flushGroup rings the doorbell for the open group and advances the
	// closed loop to its completion, returning the group's latency.
	flushGroup := func() sim.Duration {
		start := clock
		loop.cursor, loop.done = clock, clock
		if err := host.Flush(); err != nil {
			panic(err)
		}
		end := loop.done
		if loop.cursor > end {
			end = loop.cursor
		}
		clock = end
		return end.Sub(start)
	}

	// Populate every page (unmeasured warmup: placements, slab maps).
	for lo := 0; lo < pageCount; lo += window {
		for p := lo; p < min(lo+window, pageCount); p++ {
			page[0] = byte(p)
			host.WritePageAsync(core.PageID(p), page)
		}
		flushGroup()
	}

	// Measured closed loop: window outstanding ops per round, 70/30
	// read/write over the populated pages. Writes enqueue before reads —
	// the eviction-writeback batch then the prefetch fan-out, as the paging
	// layer issues them — which also packs same-kind doorbells tighter.
	var hist metrics.Histogram
	measured := int64(0)
	start := clock
	kinds := make([]bool, window) // true = write
	targets := make([]core.PageID, window)
	for measured < int64(ops) {
		n := window
		for i := 0; i < n; i++ {
			kinds[i] = rng.Float64() < 0.3
			targets[i] = core.PageID(rng.Int63n(pageCount))
		}
		for i := 0; i < n; i++ {
			if kinds[i] {
				page[0] = byte(targets[i])
				host.WritePageAsync(targets[i], page)
			}
		}
		for i := 0; i < n; i++ {
			if !kinds[i] {
				host.ReadPageAsync(targets[i], bufs[i])
			}
		}
		lat := flushGroup()
		for i := 0; i < n; i++ {
			hist.Observe(lat)
		}
		measured += int64(n)
	}
	elapsed := clock.Sub(start)

	row := ScalingRow{
		Agents:    agents,
		Depth:     depth,
		Ops:       measured,
		Elapsed:   elapsed,
		P50:       hist.Percentile(50),
		P99:       hist.Percentile(99),
		Doorbells: loop.doorbell,
	}
	if elapsed > 0 {
		row.OpsPerSec = float64(measured) / elapsed.Seconds()
	}
	if loop.doorbell > 0 {
		row.PagesPerDB = float64(loop.pages) / float64(loop.doorbell)
	}
	return row
}

// Scaling runs the agents × depth sweep.
func Scaling(s Scale, seed uint64) ScalingResult {
	ops := int(s.Measured / 5)
	var out ScalingResult
	for _, agents := range scalingAgents {
		for _, depth := range scalingDepths {
			out.Rows = append(out.Rows, runScalingPoint(agents, depth, ops, seed))
		}
	}
	return out
}

// Row fetches one grid point.
func (r ScalingResult) Row(agents, depth int) (ScalingRow, bool) {
	for _, row := range r.Rows {
		if row.Agents == agents && row.Depth == depth {
			return row, true
		}
	}
	return ScalingRow{}, false
}

// DepthGain reports throughput at the deepest queue over depth 1 for the
// given agent count.
func (r ScalingResult) DepthGain(agents int) float64 {
	shallow, ok1 := r.Row(agents, scalingDepths[0])
	deep, ok2 := r.Row(agents, scalingDepths[len(scalingDepths)-1])
	if !ok1 || !ok2 || shallow.OpsPerSec == 0 {
		return 0
	}
	return deep.OpsPerSec / shallow.OpsPerSec
}

// String renders the figure.
func (r ScalingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure S — scaling: sharded+batched+async remote-memory engine (closed loop, window = agents×depth)\n")
	fmt.Fprintf(&b, "  %6s %6s %8s %12s %10s %10s %10s %9s\n",
		"agents", "depth", "ops", "Kops/s", "p50", "p99", "doorbells", "pages/db")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %6d %6d %8d %12.1f %10v %10v %10d %9.2f\n",
			row.Agents, row.Depth, row.Ops, row.OpsPerSec/1e3,
			row.P50, row.P99, row.Doorbells, row.PagesPerDB)
	}
	fmt.Fprintf(&b, "  queue-depth amortization (throughput ×, depth %d vs 1):",
		scalingDepths[len(scalingDepths)-1])
	for _, agents := range scalingAgents {
		fmt.Fprintf(&b, "  %d-agent %.2f×", agents, r.DepthGain(agents))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  (deterministic σ=0 latencies; doorbell batching amortizes the %v dispatch and the wire round trip — the 3PO drain-rate bound)\n",
		2100*sim.Nanosecond)
	return b.String()
}
