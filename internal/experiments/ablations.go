package experiments

import (
	"fmt"
	"strings"

	"leap/internal/core"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/sim"
	"leap/internal/storage"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	Label      string
	Completion sim.Duration
	P50, P99   sim.Duration
	Coverage   float64
	Accuracy   float64
	Pollution  int64
}

// AblationResult is a named sweep.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Row fetches a labeled row.
func (r AblationResult) Row(label string) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.Label == label {
			return row, true
		}
	}
	return AblationRow{}, false
}

// String renders the sweep.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s\n", r.Name)
	fmt.Fprintf(&b, "  %-18s %14s %10s %10s %9s %9s %10s\n",
		"config", "completion", "p50", "p99", "coverage", "accuracy", "pollution")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %14v %10v %10v %8.1f%% %8.1f%% %10d\n",
			row.Label, row.Completion, row.P50, row.P99,
			row.Coverage*100, row.Accuracy*100, row.Pollution)
	}
	return b.String()
}

// powerGraphLeapRun runs PowerGraph @50% on the Leap stack with a custom
// predictor config, returning the ablation row.
func powerGraphLeapRun(label string, cc core.Config, shared bool, policy pagecache.Policy, s Scale, seed uint64) AblationRow {
	prof := workload.PowerGraphProfile()
	lp := prefetch.NewLeap(cc)
	lp.Shared = shared
	cfg := DVMMLeapConfig(seed)
	cfg.Prefetcher = lp
	cfg.CachePolicy = policy
	_, res := mustRun(cfg, []vmm.App{appAt(prof, 1, 0.5, seed)}, s)
	return AblationRow{
		Label:      label,
		Completion: res.Makespan,
		P50:        res.Latency.P50,
		P99:        res.Latency.P99,
		Coverage:   res.Coverage,
		Accuracy:   res.Accuracy,
		Pollution:  res.Pollution,
	}
}

// AblationMajorityVsStrict compares the paper's majority vote against
// strict trend matching (DESIGN.md's first called-out choice).
func AblationMajorityVsStrict(s Scale, seed uint64) AblationResult {
	return AblationResult{
		Name: "majority vote vs strict trend detection (PowerGraph @50%)",
		Rows: []AblationRow{
			powerGraphLeapRun("majority", core.Config{}, false, pagecache.EvictEager, s, seed),
			powerGraphLeapRun("strict", core.Config{StrictDetection: true}, false, pagecache.EvictEager, s, seed),
		},
	}
}

// AblationWindowDoubling sweeps NSplit: 1 disables the small-window fast
// path (full-history scan immediately), larger values start smaller.
func AblationWindowDoubling(s Scale, seed uint64) AblationResult {
	r := AblationResult{Name: "window doubling (NSplit sweep, PowerGraph @50%)"}
	for _, nsplit := range []int{1, 2, 4, 8} {
		r.Rows = append(r.Rows, powerGraphLeapRun(
			fmt.Sprintf("nsplit=%d", nsplit),
			core.Config{NSplit: nsplit}, false, pagecache.EvictEager, s, seed))
	}
	return r
}

// AblationEviction compares eager vs lazy reclamation under the full Leap
// stack.
func AblationEviction(s Scale, seed uint64) AblationResult {
	return AblationResult{
		Name: "eager vs lazy prefetch-cache eviction (PowerGraph @50%)",
		Rows: []AblationRow{
			powerGraphLeapRun("eager", core.Config{}, false, pagecache.EvictEager, s, seed),
			powerGraphLeapRun("lazy", core.Config{}, false, pagecache.EvictLazy, s, seed),
		},
	}
}

// AblationIsolation compares per-process predictors against one shared
// predictor under a concurrent two-app mix.
func AblationIsolation(s Scale, seed uint64) AblationResult {
	run := func(label string, shared bool) AblationRow {
		lp := prefetch.NewLeap(core.Config{})
		lp.Shared = shared
		cfg := DVMMLeapConfig(seed)
		cfg.Prefetcher = lp
		apps := []vmm.App{
			microApp(workload.NewSequential(1<<20, seed), 1),
			microApp(workload.NewStride(1<<20, 7, seed+1), 2),
		}
		_, res := mustRun(cfg, apps, s)
		return AblationRow{
			Label:      label,
			Completion: res.Makespan,
			P50:        res.Latency.P50,
			P99:        res.Latency.P99,
			Coverage:   res.Coverage,
			Accuracy:   res.Accuracy,
			Pollution:  res.Pollution,
		}
	}
	return AblationResult{
		Name: "per-process isolation vs shared history (sequential + stride-7 mix)",
		Rows: []AblationRow{run("isolated", false), run("shared", true)},
	}
}

// AblationHistorySize sweeps Hsize.
func AblationHistorySize(s Scale, seed uint64) AblationResult {
	r := AblationResult{Name: "access history size (Hsize sweep, PowerGraph @50%)"}
	for _, h := range []int{8, 16, 32, 64, 128} {
		r.Rows = append(r.Rows, powerGraphLeapRun(
			fmt.Sprintf("hsize=%d", h),
			core.Config{HistorySize: h}, false, pagecache.EvictEager, s, seed))
	}
	return r
}

// AblationMaxWindow sweeps PWsizemax.
func AblationMaxWindow(s Scale, seed uint64) AblationResult {
	r := AblationResult{Name: "max prefetch window (PWsizemax sweep, PowerGraph @50%)"}
	for _, w := range []int{2, 4, 8, 16, 32} {
		r.Rows = append(r.Rows, powerGraphLeapRun(
			fmt.Sprintf("pwmax=%d", w),
			core.Config{MaxPrefetchWindow: w}, false, pagecache.EvictEager, s, seed))
	}
	return r
}

// ThrottlingRow is one prefetcher's RDMA congestion footprint on a random
// workload (the §5.3.3 claim: Leap's adaptive throttling "helps the most by
// not congesting the RDMA").
type ThrottlingRow struct {
	Prefetcher    string
	Issued        int64
	QueueDelayP99 sim.Duration
	FaultP99      sim.Duration
	OpsPerSec     float64
}

// ThrottlingResult holds the sweep.
type ThrottlingResult struct {
	Rows []ThrottlingRow
}

// Row fetches a row by prefetcher name.
func (r ThrottlingResult) Row(name string) (ThrottlingRow, bool) {
	for _, row := range r.Rows {
		if row.Prefetcher == name {
			return row, true
		}
	}
	return ThrottlingRow{}, false
}

// String renders the table.
func (r ThrottlingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — RDMA congestion under random access (Memcached @50%%)\n")
	fmt.Fprintf(&b, "  %-12s %12s %16s %12s %12s\n",
		"prefetcher", "issued", "queue-delay p99", "fault p99", "ops/sec")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %12d %16v %12v %12.0f\n",
			row.Prefetcher, row.Issued, row.QueueDelayP99, row.FaultP99, row.OpsPerSec)
	}
	fmt.Fprintf(&b, "  (paper §5.3.3: adaptive throttling avoids congesting the RDMA fabric)\n")
	return b.String()
}

// AblationThrottling measures fabric queue delay on the lean path when the
// prefetcher floods (next-n-line) versus throttles (leap) versus issues
// nothing at all (none), on the mostly-random Memcached workload.
func AblationThrottling(s Scale, seed uint64) ThrottlingResult {
	prof := workload.MemcachedProfile()
	var out ThrottlingResult
	for _, name := range []string{"nextnline", "leap", "none"} {
		pf, err := prefetch.New(name)
		if err != nil {
			panic(err)
		}
		cfg := DVMMLeapConfig(seed)
		cfg.Prefetcher = pf
		m, res := mustRun(cfg, []vmm.App{appAt(prof, 1, 0.5, seed)}, s)
		row := ThrottlingRow{
			Prefetcher: name,
			Issued:     res.PrefetchIssued,
			FaultP99:   res.Latency.P99,
			OpsPerSec:  res.PerProc[0].OpsPerSec,
		}
		if rm, ok := m.Device().(*storage.Remote); ok {
			row.QueueDelayP99 = rm.Fabric().QueueDelay.Percentile(99)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
