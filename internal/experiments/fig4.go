package experiments

import (
	"fmt"
	"strings"

	"leap/internal/metrics"
	"leap/internal/pagecache"
	"leap/internal/sim"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// Fig4Result reproduces Figure 4 (and the §4.3 eager-eviction claim): how
// long consumed prefetched pages linger in the cache before reclamation,
// under Linux's lazy policy versus Leap's eager policy, plus the page
// allocation cost each policy leaves behind.
type Fig4Result struct {
	LazyWait  metrics.Summary
	EagerWait metrics.Summary
	// AllocLazy / AllocEager are the page-allocation latencies at the end
	// of the run (the paper: eager saves ~750ns, 36%).
	AllocLazy, AllocEager sim.Duration
}

// Fig4 drives PowerGraph at 50% memory with read-ahead prefetching on the
// default path, toggling only the eviction policy.
func Fig4(s Scale, seed uint64) Fig4Result {
	prof := workload.PowerGraphProfile()

	// The lazy scan period is compressed so the simulated run (hundreds of
	// virtual milliseconds) spans many kswapd passes; the paper's absolute
	// waits (seconds, Fig. 4's x-axis) scale with the real scan cadence.
	lazyCfg := DVMMConfig(seed)
	lazyCfg.CachePolicy = pagecache.EvictLazy
	lazyCfg.CacheScanInterval = 20 * sim.Millisecond
	mLazy, _ := mustRun(lazyCfg, []vmm.App{appAt(prof, 1, 0.5, seed)}, s)

	eagerCfg := DVMMConfig(seed)
	eagerCfg.CachePolicy = pagecache.EvictEager
	mEager, _ := mustRun(eagerCfg, []vmm.App{appAt(prof, 1, 0.5, seed)}, s)

	return Fig4Result{
		LazyWait:   mLazy.Cache().WaitTime.Summarize(),
		EagerWait:  mEager.Cache().WaitTime.Summarize(),
		AllocLazy:  mLazy.AllocLatency().Mean(),
		AllocEager: mEager.AllocLatency().Mean(),
	}
}

// String renders the comparison.
func (r Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — consumed prefetch pages: wait time until reclamation\n")
	fmt.Fprintf(&b, "  %-8s %12s %12s %12s %12s\n", "policy", "p50", "p90", "p99", "max")
	fmt.Fprintf(&b, "  %-8s %12v %12v %12v %12v\n", "lazy",
		r.LazyWait.P50, r.LazyWait.P90, r.LazyWait.P99, r.LazyWait.Max)
	fmt.Fprintf(&b, "  %-8s %12v %12v %12v %12v\n", "eager",
		r.EagerWait.P50, r.EagerWait.P90, r.EagerWait.P99, r.EagerWait.Max)
	fmt.Fprintf(&b, "  page allocation latency: lazy %v vs eager %v (paper: −750ns, −36%%)\n",
		r.AllocLazy, r.AllocEager)
	return b.String()
}
