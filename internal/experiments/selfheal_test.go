package experiments

import "testing"

// TestSelfhealDeterministic is the reproducibility gate on the
// runtime-integration figure: the full leap.Memory fault path plus an
// attached control plane must replay byte-identically from (Scale, seed).
func TestSelfhealDeterministic(t *testing.T) {
	a := Selfheal(Small, 42).String()
	b := Selfheal(Small, 42).String()
	if a != b {
		t.Fatalf("selfheal figure not deterministic:\n%s\n---\n%s", a, b)
	}
}

// TestSelfhealControlWins pins the figure's claim: under the same faults,
// the supervised runtime's tail is strictly better than the unsupervised
// one, and the control plane demonstrably walked the whole detector cycle
// (suspect, fail+repair, probation recovery) and replicated hot pages.
func TestSelfhealControlWins(t *testing.T) {
	r := Selfheal(Small, 42)
	if r.Control.P99 >= r.Baseline.P99 {
		t.Errorf("control p99 %v not below baseline %v", r.Control.P99, r.Baseline.P99)
	}
	if r.Control.FaultP99 >= r.Baseline.FaultP99 {
		t.Errorf("control fault-window p99 %v not below baseline %v",
			r.Control.FaultP99, r.Baseline.FaultP99)
	}
	if r.Control.Suspects < 1 || r.Control.Fails < 1 || r.Control.Recovers < 1 {
		t.Errorf("detector cycle incomplete: suspects=%d fails=%d recovers=%d",
			r.Control.Suspects, r.Control.Fails, r.Control.Recovers)
	}
	if r.Control.HotAdds < 1 {
		t.Errorf("no hot-page replicas added (HotAdds=%d)", r.Control.HotAdds)
	}
	// The workload is identical; supervision must not change what the cache
	// sees. (Hit ratio equality is the cheap proxy for that.)
	if r.Control.HitRatio != r.Baseline.HitRatio {
		t.Errorf("hit ratio diverged: control %.4f vs baseline %.4f",
			r.Control.HitRatio, r.Baseline.HitRatio)
	}
	if r.Baseline.Fails != 0 || r.Baseline.Suspects != 0 {
		t.Errorf("baseline row reports control actions: %+v", r.Baseline)
	}
}
