package experiments

import (
	"strings"
	"testing"
)

// TestResilienceDeterministic is the acceptance gate for `leapbench -fig
// resilience`: byte-identical output for the same seed across repeated
// runs and across -parallel settings.
func TestResilienceDeterministic(t *testing.T) {
	a, ok := RunFigure("resilience", Small, 42)
	if !ok {
		t.Fatal("resilience figure not registered")
	}
	b, _ := RunFigure("resilience", Small, 42)
	if a.Output != b.Output {
		t.Fatalf("same-seed resilience runs diverged:\n%s\n---\n%s", a.Output, b.Output)
	}

	// Across the parallel runner: resilience next to other figures, one
	// worker vs many, must not change a byte.
	names := []string{"resilience", "1"}
	seq := RunAll(names, Small, 42, 1)
	par := RunAll(names, Small, 42, 4)
	for i := range names {
		if seq[i].Output != par[i].Output {
			t.Fatalf("figure %s: parallel output differs from sequential", names[i])
		}
	}
	if seq[0].Output != a.Output {
		t.Fatal("runner output differs from direct RunFigure output")
	}
}

// TestResilienceInvariantsAndShape checks the figure's substance: zero
// violations across all schedules, real failover activity under crashes,
// and a visible fault-tolerance cost relative to baseline.
func TestResilienceInvariantsAndShape(t *testing.T) {
	r := Resilience(Small, 42)
	if len(r.Rows) < 6 {
		t.Fatalf("only %d schedules ran", len(r.Rows))
	}
	if v := r.TotalViolations(); v != 0 {
		t.Fatalf("resilience suite reported %d invariant violations:\n%s", v, r)
	}
	crash, ok := r.Row("crash-restart")
	if !ok {
		t.Fatal("crash-restart row missing")
	}
	if crash.Failovers == 0 || crash.RepairedSlabs == 0 {
		t.Fatalf("crash-restart shows no degraded-mode activity:\n%s", r)
	}
	if len(r.FailoverCDF) == 0 {
		t.Fatal("failover CDF empty")
	}
	base, _ := r.Row("baseline")
	if base.Failovers != 0 || base.Violations != 0 {
		t.Fatalf("baseline schedule is not clean: %+v", base)
	}
	out := r.String()
	for _, want := range []string{"crash-restart", "failover latency CDF", "total violations 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}
