package experiments

import (
	"fmt"
	"strings"

	"leap/internal/chaos"
	"leap/internal/sim"
)

// ResilienceRow is one chaos schedule's outcome: degraded-mode performance
// and the invariant checks (which must all be zero violations).
type ResilienceRow struct {
	Schedule      string
	Reads, Writes int64
	ReadP50       sim.Duration
	ReadP99       sim.Duration
	Failovers     int64
	FailoverP99   sim.Duration
	RepairedSlabs int64
	RepairTime    sim.Duration
	DegradedReads int64
	Violations    int64
}

// ResilienceResult reproduces the resilience suite: the remote-memory
// service of §4.4–4.5 under the shipped chaos schedules — agent
// crash/restart cycles, partitions, transient write failures, slow agents
// and a background repair daemon — all on virtual time, so the entire
// figure is a pure function of (Scale, seed).
type ResilienceResult struct {
	Rows []ResilienceRow
	// FailoverCDF is the failover-read latency distribution under the
	// crash-restart schedule (percentile, latency) — the cost of detecting
	// a dead primary and retrying a replica.
	FailoverCDF []struct {
		Pct     float64
		Latency sim.Duration
	}
}

// resilienceConfig sizes the chaos runs from the experiment scale.
func resilienceConfig(s Scale, seed uint64) chaos.Config {
	cfg := chaos.Config{
		Ops:   int(s.Measured / 5),
		Pages: 256,
		Seed:  seed,
	}
	// Background repair daemon: a few rounds per run, so repair traffic
	// interferes with the workload through the shared fabric queues. The
	// period stays longer than the schedules' crash→repair windows so the
	// scheduled repair (not the daemon) is the first responder and the
	// failover window stays observable.
	cfg.RepairEvery = cfg.Horizon() / 3
	return cfg
}

// Resilience runs every shipped chaos schedule and collects the comparison.
func Resilience(s Scale, seed uint64) ResilienceResult {
	cfg := resilienceConfig(s, seed)
	var out ResilienceResult
	for _, sched := range chaos.Library(cfg.Horizon()) {
		c, err := chaos.New(cfg)
		if err != nil {
			panic(err)
		}
		rep, err := c.Run(sched)
		if err != nil {
			panic(err)
		}
		out.Rows = append(out.Rows, ResilienceRow{
			Schedule:      sched.Name,
			Reads:         rep.Reads,
			Writes:        rep.Writes,
			ReadP50:       rep.ReadLatency.Percentile(50),
			ReadP99:       rep.ReadLatency.Percentile(99),
			Failovers:     rep.FailoverReads,
			FailoverP99:   rep.FailoverLatency.Percentile(99),
			RepairedSlabs: rep.RepairedSlabs,
			RepairTime:    rep.RepairTime,
			DegradedReads: rep.DegradedReads,
			Violations:    rep.Violations(),
		})
		if sched.Name == "crash-restart" {
			for _, p := range []float64{25, 50, 75, 90, 95, 99} {
				out.FailoverCDF = append(out.FailoverCDF, struct {
					Pct     float64
					Latency sim.Duration
				}{p, rep.FailoverLatency.Percentile(p)})
			}
		}
	}
	return out
}

// Row fetches one schedule's row.
func (r ResilienceResult) Row(schedule string) (ResilienceRow, bool) {
	for _, row := range r.Rows {
		if row.Schedule == schedule {
			return row, true
		}
	}
	return ResilienceRow{}, false
}

// Overhead reports a schedule's read-p99 inflation over the baseline
// schedule (1.0 = no overhead).
func (r ResilienceResult) Overhead(schedule string) float64 {
	base, ok1 := r.Row("baseline")
	row, ok2 := r.Row(schedule)
	if !ok1 || !ok2 || base.ReadP99 == 0 {
		return 0
	}
	return float64(row.ReadP99) / float64(base.ReadP99)
}

// TotalViolations sums invariant breaches across every schedule; the
// resilience claim is exactly that this is zero.
func (r ResilienceResult) TotalViolations() int64 {
	var n int64
	for _, row := range r.Rows {
		n += row.Violations
	}
	return n
}

// String renders the figure.
func (r ResilienceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure R — resilience: remote-memory service under scheduled faults (virtual time)\n")
	fmt.Fprintf(&b, "  %-16s %6s %6s %10s %10s %6s %12s %7s %10s %6s %5s\n",
		"schedule", "reads", "writes", "read-p50", "read-p99", "f/over", "f/over-p99", "repairs", "rep-time", "degr", "viol")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-16s %6d %6d %10v %10v %6d %12v %7d %10v %6d %5d\n",
			row.Schedule, row.Reads, row.Writes, row.ReadP50, row.ReadP99,
			row.Failovers, row.FailoverP99, row.RepairedSlabs, row.RepairTime,
			row.DegradedReads, row.Violations)
	}
	fmt.Fprintf(&b, "  failover latency CDF (crash-restart):")
	for _, pt := range r.FailoverCDF {
		fmt.Fprintf(&b, "  p%g=%v", pt.Pct, pt.Latency)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  fault-tolerance overhead (read-p99 vs baseline):")
	for _, row := range r.Rows {
		if row.Schedule == "baseline" {
			continue
		}
		fmt.Fprintf(&b, "  %s %.2f×", row.Schedule, r.Overhead(row.Schedule))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  (invariants: zero acked-write losses, replication factor restored after every repair window — total violations %d)\n",
		r.TotalViolations())
	return b.String()
}
