// Package experiments contains one driver per table and figure of the
// paper's evaluation (§2 motivation and §5), each reproducing the same
// rows/series the paper reports on top of the simulation substrates. The
// drivers are deterministic given (Scale, seed); cmd/leapbench renders them
// and bench_test.go wraps each in a testing.B benchmark.
//
// Naming follows the paper: "Disk" is local HDD swap through the stock
// kernel path; "D-VMM" is disaggregated VMM (Infiniswap-style) on the
// default data path; "D-VMM+Leap" swaps in the lean path, the Leap
// prefetcher and eager eviction; "D-VFS" is the file abstraction (Remote
// Regions-style).
package experiments

import (
	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/sim"
	"leap/internal/storage"
	"leap/internal/vfs"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// Scale sizes a run: per-process warmup and measured access counts.
type Scale struct {
	Warmup   int64
	Measured int64
}

// Standard scales: Full for cmd/leapbench runs, Small for tests and quick
// benches.
var (
	Full  = Scale{Warmup: 30000, Measured: 150000}
	Small = Scale{Warmup: 3000, Measured: 15000}
)

// cachePages leaves the prefetch cache unbounded in the presets: the cgroup
// charge coupling in internal/vmm is what constrains it, so cache space
// competes with the application's resident set and pollution has a real
// cost — aggressive prefetchers churn their own unconsumed pages under
// pressure (Figure 9a's Next-N-Line miss count). Figure 12 overrides this
// with its explicit size grid.
const cachePages = 0

// DiskConfig is local HDD swap on the stock path: legacy block layer,
// read-ahead, lazy reclaim.
func DiskConfig(seed uint64) vmm.Config {
	pf, _ := prefetch.New("readahead")
	return vmm.Config{
		Path:          datapath.Config{Kind: datapath.Legacy},
		CachePolicy:   pagecache.EvictLazy,
		CacheCapacity: cachePages,
		Prefetcher:    pf,
		Device:        storage.NewHDD(sim.NewRNG(seed ^ 0xd15c)),
		Seed:          seed,
	}
}

// SSDConfig is local SSD swap on the stock path.
func SSDConfig(seed uint64) vmm.Config {
	cfg := DiskConfig(seed)
	cfg.Device = storage.NewSSD(sim.NewRNG(seed ^ 0x55d))
	return cfg
}

// DVMMConfig is Infiniswap-style remote paging on the default data path.
func DVMMConfig(seed uint64) vmm.Config {
	pf, _ := prefetch.New("readahead")
	return vmm.Config{
		Path:          datapath.Config{Kind: datapath.Legacy},
		CachePolicy:   pagecache.EvictLazy,
		CacheCapacity: cachePages,
		Prefetcher:    pf,
		Seed:          seed,
	}
}

// DVMMLeapConfig is remote paging with the full Leap stack: lean path,
// majority-trend prefetcher, eager eviction.
func DVMMLeapConfig(seed uint64) vmm.Config {
	return vmm.Config{
		Path:          datapath.Config{Kind: datapath.Lean},
		CachePolicy:   pagecache.EvictEager,
		CacheCapacity: cachePages,
		Prefetcher:    prefetch.NewLeap(core.Config{}),
		Seed:          seed,
	}
}

// DVFSConfig is Remote-Regions-style file access on the default path.
func DVFSConfig(seed uint64) vfs.Config {
	pf, _ := prefetch.New("readahead")
	return vfs.Config{
		Path:        datapath.Config{Kind: datapath.Legacy},
		CachePolicy: pagecache.EvictLazy,
		Prefetcher:  pf,
		Seed:        seed,
	}
}

// DVFSLeapConfig is the file abstraction with the Leap stack.
func DVFSLeapConfig(seed uint64) vfs.Config {
	return vfs.Config{
		Path:        datapath.Config{Kind: datapath.Lean},
		CachePolicy: pagecache.EvictEager,
		Prefetcher:  prefetch.NewLeap(core.Config{}),
		Seed:        seed,
	}
}

// appAt builds a vmm.App running profile at the given memory fraction
// (1.0 = 100% of peak usage fits locally, the paper's cgroup knob). The
// budget starts populated, as in the paper's steady-state measurements.
func appAt(p workload.Profile, pid vmm.PID, memFrac float64, seed uint64) vmm.App {
	limit := int64(float64(p.TotalPages) * memFrac)
	if limit < 1 {
		limit = 1
	}
	return vmm.App{
		PID:          pid,
		Gen:          workload.NewApp(p, seed),
		LimitPages:   limit,
		PreloadPages: limit,
	}
}

// microApp builds a microbenchmark App (Sequential or Stride-10): the §2.2
// setup gives the 2GB working set a 1GB budget, and the cyclic scan defeats
// LRU so essentially every access faults; the budget still leaves ample
// slack for the prefetch cache.
func microApp(gen workload.Generator, pid vmm.PID) vmm.App {
	return vmm.App{PID: pid, Gen: gen, LimitPages: 8192}
}

// mustRun wraps vmm.Run, panicking on configuration errors (experiment
// definitions are static; an error is a bug, not an input condition).
func mustRun(cfg vmm.Config, apps []vmm.App, s Scale) (*vmm.Machine, vmm.Result) {
	m, res, err := vmm.Run(cfg, apps, s.Warmup, s.Measured)
	if err != nil {
		panic(err)
	}
	return m, res
}
