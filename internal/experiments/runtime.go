package experiments

import (
	"fmt"
	"strings"

	"leap/internal/core"
	"leap/internal/metrics"
	"leap/internal/prefetch"
	"leap/internal/remote"
	"leap/internal/runtime"
)

// RuntimePrefetchers are the policies the end-to-end runtime table
// compares, in presentation order.
var RuntimePrefetchers = []string{"leap", "readahead", "none"}

// runtimeWorkloads are the access patterns the runtime figure drives
// through leap.Memory: the §2.2 microbenchmarks plus a random stream that
// should suspend Leap's prefetching.
var runtimeWorkloads = []struct {
	Name   string
	Stride int64 // 0 = seeded pseudo-random pages
}{
	{"sequential", 1},
	{"stride-10", 10},
	{"random", 0},
}

// RuntimeCell is one (workload, prefetcher) outcome over the live runtime.
type RuntimeCell struct {
	HitRatio           float64
	Accuracy, Coverage float64
	Latency            metrics.Summary
	// RemoteReads counts real page images fetched from the remote host;
	// BatchedPages is how many rode multi-op doorbell frames.
	RemoteReads, BatchedPages int64
}

// RuntimeResult is the end-to-end leap.Memory table: every cell is a real
// run over the in-process remote-memory cluster — actual bytes placed,
// replicated and fetched — with virtual-time latency accounting.
type RuntimeResult struct {
	// Cells keyed "<workload>/<prefetcher>".
	Cells map[string]RuntimeCell
	// Accesses per cell (scale-dependent), for the caption.
	Accesses int64
}

// Cell fetches one entry.
func (r RuntimeResult) Cell(workload, pf string) (RuntimeCell, bool) {
	c, ok := r.Cells[workload+"/"+pf]
	return c, ok
}

// Runtime drives leap.Memory — the unified runtime over the real remote
// substrate — through the microbenchmark patterns under each prefetcher.
// Every run opens a fresh three-agent in-process cluster, writes a working
// set through the async ticket engine, then measures a page-granular scan.
func Runtime(s Scale, seed uint64) RuntimeResult {
	accesses := s.Measured / 4
	if accesses < 2000 {
		accesses = 2000
	}
	out := RuntimeResult{Cells: map[string]RuntimeCell{}, Accesses: accesses}
	for wi, wl := range runtimeWorkloads {
		for _, name := range RuntimePrefetchers {
			out.Cells[wl.Name+"/"+name] = runtimeCell(wl.Name, wl.Stride,
				name, accesses, seed+uint64(wi)*977)
		}
	}
	return out
}

// runtimeCell runs one (workload, prefetcher) configuration.
func runtimeCell(wlName string, stride int64, pfName string, accesses int64, seed uint64) RuntimeCell {
	pf, err := prefetch.New(pfName)
	if err != nil {
		panic(err)
	}
	mem, err := runtime.Open(
		runtime.WithSeed(seed),
		runtime.WithPrefetcher(pf),
		runtime.WithCacheCapacity(256),
		runtime.WithQueueDepth(8),
	)
	if err != nil {
		panic(err)
	}
	defer mem.Close()

	const span = int64(1) << 18 // 1GB address space
	// Populate a slice of the address space (recording off, like the
	// simulator's warmup) so misses fetch real images from the cluster
	// rather than materializing zeros.
	mem.SetRecording(false)
	buf := make([]byte, remote.PageSize)
	populate := min(accesses, 4096)
	for p := int64(0); p < populate; p++ {
		pg := (p * max(stride, 1)) % span
		buf[0] = byte(pg)
		if _, err := mem.WriteAt(buf, pg*remote.PageSize); err != nil {
			panic(err)
		}
	}
	mem.SetRecording(true)
	host0 := mem.Host().Stats()

	// Measure a fresh scan of the same pattern. A seeded LCG drives the
	// random stream, so every run replays exactly.
	rnd := seed | 1
	pg := int64(0)
	for i := int64(0); i < accesses; i++ {
		var target int64
		if stride > 0 {
			target = pg % span
			pg += stride
		} else {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			target = int64(rnd>>11) % span
			if target < 0 {
				target = -target
			}
		}
		if _, err := mem.Get(core.PageID(target)); err != nil {
			panic(err)
		}
	}
	st := mem.Stats()
	return RuntimeCell{
		HitRatio:     st.HitRatio,
		Accuracy:     st.Accuracy,
		Coverage:     st.Coverage,
		Latency:      st.Latency,
		RemoteReads:  st.Host.Reads - host0.Reads,
		BatchedPages: st.Host.BatchedPages - host0.BatchedPages,
	}
}

// String renders the runtime table.
func (r RuntimeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Runtime — leap.Memory over a live in-proc remote-memory cluster (%d accesses/cell, real bytes)\n", r.Accesses)
	fmt.Fprintf(&b, "  %-12s %-10s %9s %9s %9s %11s %11s %8s\n",
		"workload", "prefetch", "hit", "accuracy", "coverage", "p50", "p99", "rd-pages")
	for _, wl := range runtimeWorkloads {
		for _, name := range RuntimePrefetchers {
			c := r.Cells[wl.Name+"/"+name]
			fmt.Fprintf(&b, "  %-12s %-10s %8.1f%% %8.1f%% %8.1f%% %11v %11v %8d\n",
				wl.Name, name, 100*c.HitRatio, 100*c.Accuracy, 100*c.Coverage,
				c.Latency.P50, c.Latency.P99, c.RemoteReads)
		}
	}
	b.WriteString("  (one fault path from predictor to ticket engine; the prefetcher is the only variable)\n")
	return b.String()
}
