package experiments

import (
	"strings"
	"testing"
)

// TestConcurrencyDeterministic is the acceptance gate for `leapbench -fig
// concurrency`: byte-identical output for the same seed across repeated
// runs and across -parallel settings — the real-goroutine nondeterminism
// lives in the stress suites, never in the figure.
func TestConcurrencyDeterministic(t *testing.T) {
	a, ok := RunFigure("concurrency", Small, 42)
	if !ok {
		t.Fatal("concurrency figure not registered")
	}
	b, _ := RunFigure("concurrency", Small, 42)
	if a.Output != b.Output {
		t.Fatalf("same-seed concurrency runs diverged:\n%s\n---\n%s", a.Output, b.Output)
	}
	names := []string{"concurrency", "1"}
	seq := RunAll(names, Small, 42, 1)
	par := RunAll(names, Small, 42, 4)
	for i := range names {
		if seq[i].Output != par[i].Output {
			t.Fatalf("figure %s: parallel output differs from sequential", names[i])
		}
	}
	if seq[0].Output != a.Output {
		t.Fatal("runner output differs from direct RunFigure output")
	}
	if !strings.Contains(a.Output, "isolation") {
		t.Fatal("figure output lost the §4.1 isolation block")
	}
}

// TestConcurrencyThroughputMonotonicInGoroutines asserts the acceptance
// criterion: at queue depth ≥ 2, modeled throughput is monotonically
// non-decreasing from 1 through 4 (and on to 8) goroutines at every client
// count, and multi-goroutine scaling actually pays at the widest cell.
func TestConcurrencyThroughputMonotonicInGoroutines(t *testing.T) {
	r := Concurrency(Small, 42)
	wantRows := len(concurrencyDepths) * len(concurrencyClients) * len(concurrencyGoroutines)
	if len(r.Rows) != wantRows {
		t.Fatalf("sweep has %d rows, want %d", len(r.Rows), wantRows)
	}
	for _, depth := range concurrencyDepths {
		for _, clients := range concurrencyClients {
			prev := -1.0
			for _, g := range concurrencyGoroutines {
				row, ok := r.Row(depth, clients, g)
				if !ok {
					t.Fatalf("missing grid point (%d, %d, %d)", depth, clients, g)
				}
				if row.KopsPerSec < prev {
					t.Fatalf("depth=%d clients=%d: throughput fell at %d goroutines: %.1f < %.1f\n%s",
						depth, clients, g, row.KopsPerSec, prev, r)
				}
				prev = row.KopsPerSec
				if row.SerialFrac <= 0 || row.SerialFrac > 1 {
					t.Fatalf("depth=%d clients=%d: serial fraction %.3f out of range",
						depth, clients, row.SerialFrac)
				}
			}
			if depth >= 2 {
				if gain := r.GoroutineGain(depth, clients); gain < 1.25 {
					t.Fatalf("depth=%d clients=%d: goroutine scaling only %.2f× — overlap is not paying",
						depth, clients, gain)
				}
			}
		}
	}
}

// TestConcurrencyIsolationWins pins the §4.1 runtime replay: on the
// interleaved multi-client load, per-client predictors must strictly beat
// one shared predictor on hit ratio.
func TestConcurrencyIsolationWins(t *testing.T) {
	r := Concurrency(Small, 42)
	if r.IsolatedHitRatio <= r.SharedHitRatio {
		t.Fatalf("per-client predictors %.4f not strictly above shared predictor %.4f at %d clients",
			r.IsolatedHitRatio, r.SharedHitRatio, r.IsolationClients)
	}
}
