package experiments

import (
	goruntime "runtime"
	"strings"
	"testing"
)

// TestConcurrencyDeterministic is the acceptance gate for `leapbench -fig
// concurrency`: byte-identical output for the same seed across repeated
// runs and across -parallel settings — after stripping the measured block,
// the one deliberately wall-clock (and so nondeterministic) section of the
// figure. The real-goroutine nondeterminism lives there and in the stress
// suites, never in the deterministic model.
func TestConcurrencyDeterministic(t *testing.T) {
	a, ok := RunFigure("concurrency", Small, 42)
	if !ok {
		t.Fatal("concurrency figure not registered")
	}
	b, _ := RunFigure("concurrency", Small, 42)
	if StripMeasured(a.Output) != StripMeasured(b.Output) {
		t.Fatalf("same-seed concurrency runs diverged outside the measured block:\n%s\n---\n%s", a.Output, b.Output)
	}
	names := []string{"concurrency", "1"}
	seq := RunAll(names, Small, 42, 1)
	par := RunAll(names, Small, 42, 4)
	for i := range names {
		if StripMeasured(seq[i].Output) != StripMeasured(par[i].Output) {
			t.Fatalf("figure %s: parallel output differs from sequential", names[i])
		}
	}
	if StripMeasured(seq[0].Output) != StripMeasured(a.Output) {
		t.Fatal("runner output differs from direct RunFigure output")
	}
	if !strings.Contains(a.Output, "isolation") {
		t.Fatal("figure output lost the §4.1 isolation block")
	}
	// The measured block must be present — and must vanish under the strip.
	if !strings.Contains(a.Output, "\n  measured") {
		t.Fatal("figure output lost the measured real-goroutine block")
	}
	if strings.Contains(StripMeasured(a.Output), "measured") {
		t.Fatal("StripMeasured left measured lines behind")
	}
}

// TestConcurrencyThroughputMonotonicInGoroutines asserts the acceptance
// criterion: at queue depth ≥ 2, modeled throughput is monotonically
// non-decreasing from 1 through 4 (and on to 8) goroutines at every client
// count, and multi-goroutine scaling actually pays at the widest cell.
func TestConcurrencyThroughputMonotonicInGoroutines(t *testing.T) {
	r := Concurrency(Small, 42)
	wantRows := len(concurrencyDepths) * len(concurrencyClients) * len(concurrencyGoroutines)
	if len(r.Rows) != wantRows {
		t.Fatalf("sweep has %d rows, want %d", len(r.Rows), wantRows)
	}
	for _, depth := range concurrencyDepths {
		for _, clients := range concurrencyClients {
			prev := -1.0
			for _, g := range concurrencyGoroutines {
				row, ok := r.Row(depth, clients, g)
				if !ok {
					t.Fatalf("missing grid point (%d, %d, %d)", depth, clients, g)
				}
				if row.KopsPerSec < prev {
					t.Fatalf("depth=%d clients=%d: throughput fell at %d goroutines: %.1f < %.1f\n%s",
						depth, clients, g, row.KopsPerSec, prev, r)
				}
				prev = row.KopsPerSec
				if row.SerialFrac <= 0 || row.SerialFrac > 1 {
					t.Fatalf("depth=%d clients=%d: serial fraction %.3f out of range",
						depth, clients, row.SerialFrac)
				}
			}
			if depth >= 2 {
				if gain := r.GoroutineGain(depth, clients); gain < 1.25 {
					t.Fatalf("depth=%d clients=%d: goroutine scaling only %.2f× — overlap is not paying",
						depth, clients, gain)
				}
			}
		}
	}
}

// TestConcurrencyMeasuredScaling checks the measured real-goroutine block:
// structurally always (every sweep point present, positive throughput,
// exact op counts, GOMAXPROCS observed not mutated), and — only on machines
// with 8+ cores, where the acceptance criterion is meaningful — monotone
// non-decreasing throughput to 8 goroutines with a generous tolerance for
// scheduler noise.
func TestConcurrencyMeasuredScaling(t *testing.T) {
	procsBefore := goruntime.GOMAXPROCS(0)
	r := Concurrency(Small, 42)
	if got := goruntime.GOMAXPROCS(0); got != procsBefore {
		t.Fatalf("figure mutated GOMAXPROCS: %d -> %d", procsBefore, got)
	}
	if len(r.Measured) != len(measuredGoroutines) {
		t.Fatalf("measured block has %d rows, want %d", len(r.Measured), len(measuredGoroutines))
	}
	for i, row := range r.Measured {
		if row.Goroutines != measuredGoroutines[i] {
			t.Fatalf("measured row %d ran %d goroutines, want %d", i, row.Goroutines, measuredGoroutines[i])
		}
		if row.Ops != int64(measuredClients)*(r.MeasuredOps/int64(measuredClients)) {
			t.Fatalf("measured row g=%d executed %d ops, want %d", row.Goroutines, row.Ops,
				int64(measuredClients)*(r.MeasuredOps/int64(measuredClients)))
		}
		if row.KopsPerSec <= 0 || row.Wall <= 0 {
			t.Fatalf("measured row g=%d reports no throughput: %+v", row.Goroutines, row)
		}
	}
	if r.MeasuredProcs != procsBefore || r.MeasuredShards < 8 {
		t.Fatalf("measured block shape off: procs=%d shards=%d", r.MeasuredProcs, r.MeasuredShards)
	}
	if goruntime.NumCPU() < 8 {
		t.Skipf("monotonicity needs 8+ cores, have %d: measured scaling is flat by construction here", goruntime.NumCPU())
	}
	prev := 0.0
	for _, row := range r.Measured {
		// 0.85: wall-clock measurement jitters; the criterion is "monotone
		// to 8 goroutines", not "never a scheduler hiccup".
		if row.KopsPerSec < prev*0.85 {
			t.Errorf("measured throughput fell at %d goroutines: %.1f < %.1f Kops/s\n%s",
				row.Goroutines, row.KopsPerSec, prev, r)
		}
		if row.KopsPerSec > prev {
			prev = row.KopsPerSec
		}
	}
}

// TestConcurrencyIsolationWins pins the §4.1 runtime replay: on the
// interleaved multi-client load, per-client predictors must strictly beat
// one shared predictor on hit ratio.
func TestConcurrencyIsolationWins(t *testing.T) {
	r := Concurrency(Small, 42)
	if r.IsolatedHitRatio <= r.SharedHitRatio {
		t.Fatalf("per-client predictors %.4f not strictly above shared predictor %.4f at %d clients",
			r.IsolatedHitRatio, r.SharedHitRatio, r.IsolationClients)
	}
}
