package experiments

import (
	"math"
	"strings"
	"testing"

	"leap/internal/sim"
)

// relErr reports |got-want|/want.
func relErr(got, want sim.Duration) float64 {
	return math.Abs(float64(got)-float64(want)) / float64(want)
}

func TestFig1StageCalibration(t *testing.T) {
	r := Fig1(Small, 1)
	checks := []struct {
		name string
		got  sim.Duration
		want sim.Duration
		tol  float64
	}{
		{"entry", r.Entry, 270, 0.10},
		{"bioPrep", r.BioPrep, 10040, 0.10},
		{"staging", r.Staging, 21880, 0.15},
		{"dispatch", r.Dispatch, 2100, 0.10},
		{"ssd", r.SSD, 20000, 0.10},
		{"rdma", r.RDMA, 4300, 0.10},
		{"hdd", r.HDD, 91480, 0.10},
	}
	for _, c := range checks {
		if relErr(c.got, c.want) > c.tol {
			t.Errorf("%s = %v, want ~%v", c.name, c.got, c.want)
		}
	}
	// The paper's headline gap: legacy end-to-end ~38µs vs lean ~7µs.
	if r.LegacyMissMean < 30*sim.Microsecond || r.LegacyMissMean > 50*sim.Microsecond {
		t.Errorf("legacy miss mean = %v, want ~38µs", r.LegacyMissMean)
	}
	if r.LeanMissMean > 12*sim.Microsecond {
		t.Errorf("lean miss mean = %v, want ~7µs", r.LeanMissMean)
	}
	if !strings.Contains(r.String(), "Figure 1") {
		t.Error("String() missing title")
	}
}

func TestFig2Shapes(t *testing.T) {
	r := Fig2(Small, 2)
	// Stride-10 on the default path: disk slower than remote media; D-VMM
	// median near the measured ~38µs.
	disk := r.Stride["disk"]
	dvmm := r.Stride["d-vmm"]
	dvfs := r.Stride["d-vfs"]
	if disk.P50 <= dvmm.P50 {
		t.Errorf("disk stride p50 %v should exceed d-vmm %v", disk.P50, dvmm.P50)
	}
	if dvmm.Mean < 25*sim.Microsecond || dvmm.Mean > 60*sim.Microsecond {
		t.Errorf("d-vmm stride mean = %v, want ~38µs", dvmm.Mean)
	}
	if dvfs.Mean < 20*sim.Microsecond {
		t.Errorf("d-vfs stride mean = %v, want ~30-40µs", dvfs.Mean)
	}
	// Sequential beats stride everywhere (read-ahead works there).
	for _, medium := range []string{"disk", "d-vmm", "d-vfs"} {
		if r.Sequential[medium].P50 >= r.Stride[medium].P50 {
			t.Errorf("%s: sequential p50 %v not below stride p50 %v",
				medium, r.Sequential[medium].P50, r.Stride[medium].P50)
		}
	}
	if !strings.Contains(r.String(), "stride-10") {
		t.Error("String() missing pattern tables")
	}
}

func TestFig3Shapes(t *testing.T) {
	r := Fig3(Small, 3)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byApp := map[string]Fig3Row{}
	for _, row := range r.Rows {
		byApp[row.App] = row
		if row.Faults == 0 {
			t.Fatalf("%s captured no faults", row.App)
		}
	}
	// Strict sequential decays with window size for the patterned apps.
	for _, app := range []string{"powergraph", "numpy"} {
		row := byApp[app]
		if !(row.StrictW8.Sequential < row.StrictW2.Sequential) {
			t.Errorf("%s: strict seq W8 %.3f !< W2 %.3f", app,
				row.StrictW8.Sequential, row.StrictW2.Sequential)
		}
		// Majority at W8 recovers sequential windows vs strict at W8.
		if row.MajorityW8.Sequential <= row.StrictW8.Sequential {
			t.Errorf("%s: majority seq %.3f not above strict %.3f", app,
				row.MajorityW8.Sequential, row.StrictW8.Sequential)
		}
	}
	// Memcached is overwhelmingly irregular; VoltDB majority-irregular.
	if byApp["memcached"].MajorityW8.Other < 0.85 {
		t.Errorf("memcached other = %.3f, want >= 0.85", byApp["memcached"].MajorityW8.Other)
	}
	if byApp["voltdb"].MajorityW8.Other < 0.45 {
		t.Errorf("voltdb other = %.3f, want >= 0.45", byApp["voltdb"].MajorityW8.Other)
	}
}

func TestFig4EagerVsLazy(t *testing.T) {
	r := Fig4(Small, 4)
	// Eager frees at consumption: zero wait. Lazy waits for scans: large.
	if r.EagerWait.Max != 0 {
		t.Errorf("eager wait max = %v, want 0", r.EagerWait.Max)
	}
	if r.LazyWait.Count == 0 || r.LazyWait.P50 <= 0 {
		t.Errorf("lazy wait distribution empty: %+v", r.LazyWait)
	}
	// Ghost pages inflate the allocator's scan cost under lazy eviction;
	// pressure reclaim bounds the effect, so assert direction, not size.
	if r.AllocEager > r.AllocLazy {
		t.Errorf("alloc eager %v above lazy %v", r.AllocEager, r.AllocLazy)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Leap is the only row with every property.
	for _, r := range rows {
		all := r.LowCompute && r.LowMemory && r.Unmodified && r.HWSWIndep &&
			r.TemporalLoc && r.SpatialLoc && r.HighUtil
		if all != (r.Technique == "Leap Prefetcher") {
			t.Errorf("%s: all-properties = %v", r.Technique, all)
		}
	}
	if !strings.Contains(RenderTable1(), "Read-Ahead") {
		t.Error("render missing rows")
	}
}

func TestFig7Gains(t *testing.T) {
	r := Fig7(Small, 7)
	stride := r.Cells["d-vmm/stride-10"]
	if g := stride.MedianGain(); g < 20 {
		t.Errorf("d-vmm stride median gain = %.1f×, want >= 20× (paper 104×)", g)
	}
	if g := stride.TailGain(); g < 3 {
		t.Errorf("d-vmm stride tail gain = %.1f×, want >= 3× (paper 22×)", g)
	}
	seq := r.Cells["d-vmm/sequential"]
	if g := seq.MedianGain(); g < 1.5 {
		t.Errorf("d-vmm sequential median gain = %.1f×, want >= 1.5× (paper 4.07×)", g)
	}
	vfsStride := r.Cells["d-vfs/stride-10"]
	if g := vfsStride.MedianGain(); g < 8 {
		t.Errorf("d-vfs stride median gain = %.1f×, want >= 8× (paper 24.96×)", g)
	}
}

func TestFig8aOrdering(t *testing.T) {
	r := Fig8a(Small, 8)
	// Each added component improves (or at least does not hurt) the median
	// and the mean.
	if r.PathPrefetcher.P50 > r.PathOnly.P50 {
		t.Errorf("prefetcher worsened p50: %v > %v", r.PathPrefetcher.P50, r.PathOnly.P50)
	}
	// Eager eviction must not regress the mean (pressure reclaim already
	// bounds lazy ghosts, so the remaining gain is small; allow 2% noise).
	if float64(r.Full.Mean) > float64(r.PathPrefetcher.Mean)*1.02 {
		t.Errorf("eager eviction worsened mean: %v > %v", r.Full.Mean, r.PathPrefetcher.Mean)
	}
	// The prefetcher must push the median into sub-µs territory (paper:
	// sub-µs to p85).
	if r.Full.P50 > sim.Microsecond {
		t.Errorf("full leap p50 = %v, want sub-µs", r.Full.P50)
	}
}

func TestFig8bGains(t *testing.T) {
	r := Fig8b(Small, 9)
	hdd, ssd := r.Gains()
	if hdd < 1.05 {
		t.Errorf("HDD gain = %.2f×, want > 1 (paper 1.61×)", hdd)
	}
	if ssd < 1.0 {
		t.Errorf("SSD gain = %.2f×, want >= 1 (paper 1.25×)", ssd)
	}
}

func TestFig9Orderings(t *testing.T) {
	r := Fig9(Small, 10)
	leap, _ := r.Row("leap")
	ra, _ := r.Row("readahead")
	nnl, _ := r.Row("nextnline")
	st, _ := r.Row("stride")
	// Figure 9a: Leap adds far fewer pages to the cache than the aggressive
	// Next-N-Line (paper: 28–62% fewer) and misses less than Read-Ahead and
	// Stride (paper: 1.74× and 10.5×).
	if float64(leap.CacheAdds) > 0.7*float64(nnl.CacheAdds) {
		t.Errorf("leap adds %d not ≲70%% of next-n-line's %d", leap.CacheAdds, nnl.CacheAdds)
	}
	if leap.CacheMiss >= ra.CacheMiss {
		t.Errorf("leap misses %d not below read-ahead %d", leap.CacheMiss, ra.CacheMiss)
	}
	if leap.CacheMiss >= st.CacheMiss {
		t.Errorf("leap misses %d not below stride %d", leap.CacheMiss, st.CacheMiss)
	}
	// Figure 9b: Leap completes ahead of Read-Ahead and Stride. Against
	// Next-N-Line our seek-accurate HDD model under-prices the flood of
	// sequential junk reads (NCQ + streaming), so only near-parity is
	// asserted; the paper's 2.59× gap relies on that waste being expensive.
	// See EXPERIMENTS.md (known deviations).
	for _, other := range []Fig9Row{ra, st} {
		if leap.Completion >= other.Completion {
			t.Errorf("leap completion %v not below %s %v",
				leap.Completion, other.Prefetcher, other.Completion)
		}
	}
	if float64(leap.Completion) > 1.15*float64(nnl.Completion) {
		t.Errorf("leap completion %v far above next-n-line %v", leap.Completion, nnl.Completion)
	}
}

func TestFig10Quality(t *testing.T) {
	r := Fig10(Small, 10)
	leap, _ := r.Row("leap")
	ra, _ := r.Row("readahead")
	st, _ := r.Row("stride")
	// Coverage: Leap highest (paper: +3.06–37.51%).
	if leap.Coverage <= ra.Coverage {
		t.Errorf("leap coverage %.3f not above read-ahead %.3f", leap.Coverage, ra.Coverage)
	}
	if leap.Coverage <= st.Coverage {
		t.Errorf("leap coverage %.3f not above stride %.3f", leap.Coverage, st.Coverage)
	}
	// Sanity bounds.
	for _, row := range r.Rows {
		if row.Accuracy < 0 || row.Accuracy > 1 || row.Coverage < 0 || row.Coverage > 1 {
			t.Errorf("%s: metrics out of range: %+v", row.Prefetcher, row)
		}
	}
}

func TestFig11Shapes(t *testing.T) {
	r := Fig11(Small, 11)
	apps := []string{"powergraph", "numpy", "voltdb", "memcached"}
	for _, app := range apps {
		// At 100% memory nothing pages: all systems equivalent (within
		// noise) and faster than their 50% runs.
		for _, system := range SystemNames {
			c100, _ := r.Cell(app, system, 1.0)
			c50, _ := r.Cell(app, system, 0.5)
			if c100.Completion > c50.Completion {
				t.Errorf("%s/%s: 100%% slower than 50%% (%v vs %v)",
					app, system, c100.Completion, c50.Completion)
			}
		}
		// Leap beats stock D-VMM at 50% and 25%.
		for _, frac := range []float64{0.5, 0.25} {
			dvmm, _ := r.Cell(app, "d-vmm", frac)
			leap, _ := r.Cell(app, "d-vmm+leap", frac)
			if leap.Completion > dvmm.Completion {
				t.Errorf("%s@%.0f%%: leap %v slower than d-vmm %v",
					app, frac*100, leap.Completion, dvmm.Completion)
			}
		}
		// Disk is the slowest medium under pressure.
		disk, _ := r.Cell(app, "disk", 0.25)
		leap, _ := r.Cell(app, "d-vmm+leap", 0.25)
		if disk.Completion < leap.Completion {
			t.Errorf("%s: disk faster than leap at 25%% (%v vs %v)",
				app, disk.Completion, leap.Completion)
		}
	}
	// Throughput view: VoltDB TPS with Leap at 50% must beat stock D-VMM
	// (paper: 2.76×).
	dvmm, _ := r.Cell("voltdb", "d-vmm", 0.5)
	leap, _ := r.Cell("voltdb", "d-vmm+leap", 0.5)
	if leap.OpsPerSec <= dvmm.OpsPerSec {
		t.Errorf("voltdb TPS: leap %.0f not above d-vmm %.0f", leap.OpsPerSec, dvmm.OpsPerSec)
	}
}

func TestFig12BoundedDegradation(t *testing.T) {
	r := Fig12(Small, 12)
	for _, app := range []string{"powergraph", "numpy", "voltdb", "memcached"} {
		unlimited, _ := r.Cell(app, "no limit")
		smallest, _ := r.Cell(app, "3.2MB")
		if unlimited.Completion == 0 || smallest.Completion == 0 {
			t.Fatalf("%s: missing cells", app)
		}
		deg := float64(smallest.Completion)/float64(unlimited.Completion) - 1
		// Paper: 11.87–13.05% drop; allow extra slack for the small scale.
		if deg > 0.30 {
			t.Errorf("%s: degradation at 3.2MB cache = %.1f%%, want <= 30%%", app, deg*100)
		}
	}
}

func TestFig13AllAppsImprove(t *testing.T) {
	r := Fig13(Small, 13)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if g := row.Gain(); g < 1.0 {
			t.Errorf("%s: concurrent gain = %.2f×, want >= 1 (paper 1.1–2.4×)", row.App, g)
		}
	}
}

func TestAblationMajorityVsStrict(t *testing.T) {
	r := AblationMajorityVsStrict(Small, 14)
	maj, _ := r.Row("majority")
	strict, _ := r.Row("strict")
	if maj.Coverage <= strict.Coverage {
		t.Errorf("majority coverage %.3f not above strict %.3f", maj.Coverage, strict.Coverage)
	}
	if maj.Completion > strict.Completion {
		t.Errorf("majority completion %v slower than strict %v", maj.Completion, strict.Completion)
	}
}

func TestAblationIsolation(t *testing.T) {
	r := AblationIsolation(Small, 15)
	iso, _ := r.Row("isolated")
	sh, _ := r.Row("shared")
	if iso.Coverage <= sh.Coverage {
		t.Errorf("isolated coverage %.3f not above shared %.3f", iso.Coverage, sh.Coverage)
	}
}

func TestAblationEviction(t *testing.T) {
	r := AblationEviction(Small, 16)
	eager, _ := r.Row("eager")
	lazy, _ := r.Row("lazy")
	// Pressure-driven reclaim already bounds lazy ghosts, so the completion
	// gap is small; eager must at least not regress beyond noise.
	if float64(eager.Completion) > 1.02*float64(lazy.Completion) {
		t.Errorf("eager completion %v slower than lazy %v", eager.Completion, lazy.Completion)
	}
}

func TestAblationSweepsRun(t *testing.T) {
	for _, r := range []AblationResult{
		AblationWindowDoubling(Small, 17),
		AblationHistorySize(Small, 18),
		AblationMaxWindow(Small, 19),
	} {
		if len(r.Rows) < 2 {
			t.Errorf("%s: only %d rows", r.Name, len(r.Rows))
		}
		for _, row := range r.Rows {
			if row.Completion <= 0 {
				t.Errorf("%s/%s: zero completion", r.Name, row.Label)
			}
		}
		if len(r.String()) == 0 {
			t.Errorf("%s: empty render", r.Name)
		}
	}
}

func TestAblationThrottling(t *testing.T) {
	r := AblationThrottling(Small, 20)
	leapRow, _ := r.Row("leap")
	nnl, _ := r.Row("nextnline")
	none, _ := r.Row("none")
	// Leap suspends on randomness: near-zero issues; Next-N-Line floods.
	if leapRow.Issued > nnl.Issued/10 {
		t.Errorf("leap issued %d, want ≪ next-n-line's %d", leapRow.Issued, nnl.Issued)
	}
	// Flooding congests the fabric: its queue delay dominates Leap's.
	if nnl.QueueDelayP99 <= leapRow.QueueDelayP99 {
		t.Errorf("flood queue delay %v not above leap's %v",
			nnl.QueueDelayP99, leapRow.QueueDelayP99)
	}
	// With no useful prefetching possible, Leap performs like 'none', not
	// worse (the §5.3.4 Memcached claim).
	if leapRow.OpsPerSec < none.OpsPerSec*0.95 {
		t.Errorf("leap OPS %.0f well below none %.0f", leapRow.OpsPerSec, none.OpsPerSec)
	}
	if len(r.String()) == 0 {
		t.Error("empty render")
	}
}
