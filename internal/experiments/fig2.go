package experiments

import (
	"fmt"
	"strings"

	"leap/internal/core"
	"leap/internal/metrics"
	"leap/internal/vfs"
	"leap/internal/vmm"
	"leap/internal/workload"
)

// Fig2Result holds the default-path latency distributions of Figure 2:
// Disk, disaggregated VMM and disaggregated VFS under the Sequential and
// Stride-10 microbenchmarks.
type Fig2Result struct {
	// Sequential and Stride map series name → latency summary.
	Sequential map[string]metrics.Summary
	Stride     map[string]metrics.Summary
	// Hists keeps the raw histograms for CDF rendering, keyed
	// "<pattern>/<series>".
	Hists map[string]*metrics.Histogram
}

// runVFSPattern drives the §2.2 D-VFS microbenchmark: bulk sequential
// write, then patterned reads.
func runVFSPattern(cfg vfs.Config, stride int64, s Scale) *vfs.FS {
	f := vfs.New(cfg)
	region := int64(1 << 20)
	// Warmup phase: writes + unmeasured reads land outside the measured
	// histograms (the FS has no recording toggle; use a fresh FS and skip
	// its write-phase latencies by resetting the read histogram).
	for i := int64(0); i < s.Warmup; i++ {
		f.Write(1, core.PageID(i%region), 200)
	}
	pos := int64(0)
	f.ReadLatency.Reset()
	for i := int64(0); i < s.Measured; i++ {
		f.Read(1, core.PageID(pos), 200)
		pos = (pos + stride) % region
	}
	return f
}

// Fig2 reproduces Figure 2 on the default data path everywhere.
func Fig2(s Scale, seed uint64) Fig2Result {
	r := Fig2Result{
		Sequential: map[string]metrics.Summary{},
		Stride:     map[string]metrics.Summary{},
		Hists:      map[string]*metrics.Histogram{},
	}

	type mk struct {
		name string
		cfg  func(uint64) vmm.Config
	}
	mediums := []mk{
		{"disk", DiskConfig},
		{"d-vmm", DVMMConfig},
	}
	patterns := []struct {
		name   string
		stride int64
	}{
		{"sequential", 1},
		{"stride-10", 10},
	}

	for _, med := range mediums {
		for _, pat := range patterns {
			gen := workload.NewStride(1<<20, pat.stride, seed)
			m, res := mustRun(med.cfg(seed), []vmm.App{microApp(gen, 1)}, s)
			key := pat.name + "/" + med.name
			h := m.ProcLatency(1)
			r.Hists[key] = h
			if pat.name == "sequential" {
				r.Sequential[med.name] = res.Latency
			} else {
				r.Stride[med.name] = res.Latency
			}
		}
	}

	// D-VFS series.
	for _, pat := range patterns {
		f := runVFSPattern(DVFSConfig(seed), pat.stride, s)
		key := pat.name + "/d-vfs"
		r.Hists[key] = &f.ReadLatency
		if pat.name == "sequential" {
			r.Sequential["d-vfs"] = f.ReadLatency.Summarize()
		} else {
			r.Stride["d-vfs"] = f.ReadLatency.Summarize()
		}
	}
	return r
}

// CDFSteps is the probability grid used when rendering CDF tables.
var CDFSteps = []float64{10, 25, 50, 75, 90, 95, 99, 99.9}

// String renders both CDF tables.
func (r Fig2Result) String() string {
	var b strings.Builder
	for _, pat := range []string{"sequential", "stride-10"} {
		series := map[string]*metrics.Histogram{}
		for key, h := range r.Hists {
			if strings.HasPrefix(key, pat+"/") {
				series[strings.TrimPrefix(key, pat+"/")] = h
			}
		}
		fmt.Fprint(&b, metrics.RenderCDFTable(
			fmt.Sprintf("Figure 2 (%s) — 4KB access latency, default data path", pat),
			series, CDFSteps))
		b.WriteByte('\n')
	}
	return b.String()
}
