package core

import "testing"

// findTrendReference is the pre-optimization FindTrend: a from-scratch
// majority election per doubling window. The incremental version must agree
// with it on every history.
func findTrendReference(h *AccessHistory, nsplit int) (int64, bool) {
	return findTrend(h, nsplit, majorityInWindow)
}

func TestFindTrendMatchesReference(t *testing.T) {
	// Deterministic xorshift so the test needs no seed plumbing.
	state := uint64(0x9E3779B97F4A7C15)
	next := func(n int64) int64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int64(state % uint64(n))
	}
	for _, hsize := range []int{2, 4, 8, 32, 64} {
		for _, nsplit := range []int{1, 2, 4, 8} {
			if nsplit > hsize {
				continue
			}
			h := NewAccessHistory(hsize)
			// Check at every fill level, including partially filled and
			// wrapped rings, with a small delta alphabet so majorities occur.
			for i := 0; i < 3*hsize; i++ {
				h.Push(next(4) - 1)
				gotD, gotOK := FindTrend(h, nsplit)
				wantD, wantOK := findTrendReference(h, nsplit)
				if gotD != wantD || gotOK != wantOK {
					t.Fatalf("hsize=%d nsplit=%d push#%d %v: FindTrend = (%d,%v), reference = (%d,%v)",
						hsize, nsplit, i, h, gotD, gotOK, wantD, wantOK)
				}
			}
		}
	}
}

// TestFindTrendPaperExample replays the worked example of §3.2.1 / Figure 5:
// Hsize=8, Nsplit=2, addresses 0x48, 0x45, 0x42, 0x3F, 0x3C, 0x02, 0x04,
// 0x06, 0x08, 0x0A, 0x0C, 0x10, 0x39, 0x12, 0x14, 0x16. The paper's timeline
// labels deltas t0..t15 (t0 = +72 presumes a prior access at 0x00).
func TestFindTrendPaperExample(t *testing.T) {
	h := NewAccessHistory(8)
	const nsplit = 2

	addrs := []PageID{
		0x48, 0x45, 0x42, 0x3F, // t0..t3
		0x3C, 0x02, 0x04, 0x06, // t4..t7
		0x08, 0x0A, 0x0C, 0x10, // t8..t11
		0x39, 0x12, 0x14, 0x16, // t12..t15
	}
	prev := PageID(0x00)
	record := func(a PageID) {
		h.Push(int64(a) - int64(prev))
		prev = a
	}

	// Feed through t3 and check: trend of -3 found within the t0–t3 window.
	for _, a := range addrs[:4] {
		record(a)
	}
	if d, ok := FindTrend(h, nsplit); !ok || d != -3 {
		t.Fatalf("at t3: FindTrend = (%d,%v), want (-3,true)", d, ok)
	}

	// Feed through t7: neither the t4–t7 window nor the full t0–t7 window
	// has a majority (Figure 5b).
	for _, a := range addrs[4:8] {
		record(a)
	}
	if d, ok := FindTrend(h, nsplit); ok {
		t.Fatalf("at t7: FindTrend found %d, want no majority", d)
	}

	// t8: the t5–t8 window has a majority of +2 (Figure 5c).
	record(addrs[8])
	if d, ok := FindTrend(h, nsplit); !ok || d != 2 {
		t.Fatalf("at t8: FindTrend = (%d,%v), want (+2,true)", d, ok)
	}

	// Feed through t15: majority of +2 across t8–t15, ignoring the
	// short-term variations at t12/t13 (Figure 5d).
	for _, a := range addrs[9:] {
		record(a)
	}
	if d, ok := FindTrend(h, nsplit); !ok || d != 2 {
		t.Fatalf("at t15: FindTrend = (%d,%v), want (+2,true)", d, ok)
	}
}

func TestFindTrendEmptyHistory(t *testing.T) {
	h := NewAccessHistory(8)
	if _, ok := FindTrend(h, 2); ok {
		t.Fatal("FindTrend on empty history reported a trend")
	}
}

func TestFindTrendPartialHistory(t *testing.T) {
	// With fewer entries than the smallest window, detection still works on
	// what exists.
	h := NewAccessHistory(32)
	h.Push(1)
	h.Push(1)
	if d, ok := FindTrend(h, 2); !ok || d != 1 {
		t.Fatalf("FindTrend = (%d,%v), want (1,true)", d, ok)
	}
}

func TestFindTrendSmallWindowPrefersRecent(t *testing.T) {
	// An old stride of +5 followed by a fresh run of +1: the small initial
	// window must detect the new trend even though +5 still dominates the
	// full history.
	h := NewAccessHistory(16)
	for i := 0; i < 12; i++ {
		h.Push(5)
	}
	for i := 0; i < 4; i++ {
		h.Push(1)
	}
	// Initial window = 16/2 = 8: contains 4×(+1) then 4×(+5): no majority.
	// Hmm — but doubling reaches 16 where +5 has 12/16 ≥ 9: majority +5.
	// Use Nsplit=4 so the initial window is 4 and sees only +1s.
	if d, ok := FindTrend(h, 4); !ok || d != 1 {
		t.Fatalf("FindTrend = (%d,%v), want (1,true)", d, ok)
	}
}

func TestFindTrendWindowDoublingFindsOldTrend(t *testing.T) {
	// Recent irregularity, strong older trend: small windows fail, the
	// doubled window recovers the majority.
	h := NewAccessHistory(16)
	for i := 0; i < 13; i++ {
		h.Push(7)
	}
	h.Push(-1)
	h.Push(3)
	h.Push(12) // 3 most recent are noise
	if d, ok := FindTrend(h, 4); !ok || d != 7 {
		t.Fatalf("FindTrend = (%d,%v), want (7,true)", d, ok)
	}
}

func TestFindTrendInterleavedStridesNoMajority(t *testing.T) {
	// Two perfectly interleaved strides produce alternating deltas with no
	// majority anywhere — the case §3.2.2 calls out as random-looking.
	h := NewAccessHistory(16)
	for i := 0; i < 8; i++ {
		h.Push(100)
		h.Push(-90)
	}
	if d, ok := FindTrend(h, 2); ok {
		t.Fatalf("FindTrend found %d for interleaved strides, want none", d)
	}
}

func TestFindTrendNSplitOne(t *testing.T) {
	// NSplit=1 searches the full window immediately.
	h := NewAccessHistory(8)
	for i := 0; i < 8; i++ {
		h.Push(2)
	}
	if d, ok := FindTrend(h, 1); !ok || d != 2 {
		t.Fatalf("FindTrend = (%d,%v), want (2,true)", d, ok)
	}
}

func TestFindTrendToleratesMinorityIrregularity(t *testing.T) {
	// ⌊w/2⌋−1 irregularities within a window must not hide the trend.
	h := NewAccessHistory(8)
	seq := []int64{1, 1, 9, 1, 5, 1, 1, 1} // 6 of 8 are +1
	for _, d := range seq {
		h.Push(d)
	}
	if d, ok := FindTrend(h, 1); !ok || d != 1 {
		t.Fatalf("FindTrend = (%d,%v), want (1,true)", d, ok)
	}
}

func TestFindTrendStrictRequiresUniformWindow(t *testing.T) {
	h := NewAccessHistory(8)
	for i := 0; i < 8; i++ {
		h.Push(3)
	}
	if d, ok := FindTrendStrict(h, 2); !ok || d != 3 {
		t.Fatalf("FindTrendStrict = (%d,%v), want (3,true)", d, ok)
	}
	// One irregular delta inside the smallest window kills strict detection
	// (majority tolerates it).
	h.Push(99)
	h.Push(3)
	if _, ok := FindTrendStrict(h, 2); ok {
		t.Fatal("strict detection survived an irregularity")
	}
	if d, ok := FindTrend(h, 2); !ok || d != 3 {
		t.Fatalf("majority detection lost the trend: (%d,%v)", d, ok)
	}
}

func TestStrictDetectionConfigWiring(t *testing.T) {
	strict := NewPredictor(Config{StrictDetection: true})
	loose := NewPredictor(Config{})
	// Sequential run with periodic noise: strict suspends, majority keeps
	// predicting.
	feed := func(p *Predictor) int {
		total := 0
		for i := 0; i < 64; i++ {
			page := PageID(1000 + i)
			if i%6 == 5 {
				page = PageID(999999 + i) // noise
			}
			p.Record(page)
			total += len(p.Predict(page))
		}
		return total
	}
	ns, nl := feed(strict), feed(loose)
	if ns >= nl {
		t.Fatalf("strict predicted %d pages, majority %d — strict should predict less under noise", ns, nl)
	}
}
