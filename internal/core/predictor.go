package core

import "fmt"

// Config parameterizes a Predictor. The zero value is usable: each field
// falls back to the paper's default (§5: Hsize=32, PWsizemax=8, Nsplit=2).
type Config struct {
	// HistorySize is Hsize, the number of deltas retained per process.
	HistorySize int
	// NSplit controls the smallest trend-detection window, Hsize/NSplit.
	NSplit int
	// MaxPrefetchWindow is PWsizemax, the cap on pages prefetched per fault.
	MaxPrefetchWindow int
	// StrictDetection replaces the majority vote with strict matching: a
	// trend is detected only when every delta in the window agrees. This
	// exists solely for the majority-vs-strict ablation — it is the rigid
	// behaviour the paper's §2.3 argues against.
	StrictDetection bool
}

// Defaults used when a Config field is zero, matching the paper's evaluation
// setup.
const (
	DefaultHistorySize       = 32
	DefaultNSplit            = 2
	DefaultMaxPrefetchWindow = 8
)

func (c Config) withDefaults() Config {
	if c.HistorySize == 0 {
		c.HistorySize = DefaultHistorySize
	}
	if c.NSplit == 0 {
		c.NSplit = DefaultNSplit
	}
	if c.MaxPrefetchWindow == 0 {
		c.MaxPrefetchWindow = DefaultMaxPrefetchWindow
	}
	return c
}

func (c Config) validate() error {
	if c.HistorySize < 2 {
		return fmt.Errorf("core: HistorySize %d, need >= 2", c.HistorySize)
	}
	if c.NSplit < 1 || c.NSplit > c.HistorySize {
		return fmt.Errorf("core: NSplit %d, need 1..HistorySize", c.NSplit)
	}
	if c.MaxPrefetchWindow < 1 {
		return fmt.Errorf("core: MaxPrefetchWindow %d, need >= 1", c.MaxPrefetchWindow)
	}
	return nil
}

// Stats counts predictor activity. All fields are cumulative.
type Stats struct {
	// Faults is the number of recorded page accesses.
	Faults int64
	// TrendHits counts faults where FindTrend detected a majority delta.
	TrendHits int64
	// Speculative counts prefetch decisions taken without a current majority
	// (Algorithm 2 line 25: window issued around Pt with the latest trend).
	Speculative int64
	// Suspended counts faults where prefetching was fully suspended
	// (PWsize = 0).
	Suspended int64
	// PagesPredicted is the total number of candidate pages produced.
	PagesPredicted int64
	// WindowGrowths and WindowShrinks track PWsize transitions.
	WindowGrowths int64
	WindowShrinks int64
}

// Predictor is the per-process Leap prefetch engine: an AccessHistory plus
// the adaptive prefetch-window state of Algorithm 2. It is not safe for
// concurrent use; the owning data path serializes calls.
type Predictor struct {
	cfg  Config
	hist *AccessHistory

	lastAddr PageID
	hasLast  bool

	// trend is the latest majority delta detected by FindTrend ("current
	// trend" in the paper); it persists across faults where no majority
	// exists so the speculative branch can keep using it.
	trend    int64
	hasTrend bool

	// prevWindow is PWsize(t-1); hits is Chit, prefetched-cache hits observed
	// since the last prefetch decision.
	prevWindow int
	hits       int

	stats Stats
}

// NewPredictor returns a Predictor for one process. Zero Config fields take
// the paper's defaults; invalid explicit values panic, as misconfiguration
// is a programming error.
func NewPredictor(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Predictor{cfg: cfg, hist: NewAccessHistory(cfg.HistorySize)}
}

// Config reports the effective (defaulted) configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Stats reports a copy of the cumulative statistics.
func (p *Predictor) Stats() Stats { return p.stats }

// History exposes the underlying access history for inspection (tests,
// debugging, the Fig. 3 classifier).
func (p *Predictor) History() *AccessHistory { return p.hist }

// Window reports the current prefetch window size PWsize — the page count
// the most recent decision issued (0 while suspended). It grows with
// NoteHit feedback and shrinks smoothly without it (Algorithm 2).
func (p *Predictor) Window() int { return p.prevWindow }

// NoteHit informs the predictor that one of its previously predicted pages
// was consumed from the cache. This is Chit in Algorithm 2: the feedback
// signal that grows the prefetch window.
func (p *Predictor) NoteHit() { p.hits++ }

// Record logs a page access (the paper's log_access_history hook in
// do_swap_page): it appends the delta from the previous access to the
// history. The first access establishes the base address only.
func (p *Predictor) Record(addr PageID) {
	p.stats.Faults++
	if p.hasLast {
		p.hist.Push(int64(addr) - int64(p.lastAddr))
	}
	p.lastAddr = addr
	p.hasLast = true
}

// Predict implements DoPrefetch (Algorithm 2) for a fault on page addr,
// returning the pages to prefetch (possibly none). Record(addr) must have
// been called first; OnFault does both.
func (p *Predictor) Predict(addr PageID) []PageID {
	return p.PredictInto(addr, nil)
}

// OnFault is the common fault-path entry: Record followed by PredictInto.
func (p *Predictor) OnFault(addr PageID, dst []PageID) []PageID {
	p.Record(addr)
	return p.PredictInto(addr, dst)
}

// PredictInto is Predict with a caller-supplied backing slice, which it
// appends to and returns (same contract as append).
func (p *Predictor) PredictInto(addr PageID, dst []PageID) []PageID {
	// Refresh the current trend. FindTrend is O(Hsize) with Hsize=32 by
	// default — the paper's measured overhead argument (§3.3) is exactly
	// that this is cheap enough to run on every fault.
	var delta int64
	var found bool
	if p.cfg.StrictDetection {
		delta, found = FindTrendStrict(p.hist, p.cfg.NSplit)
	} else {
		delta, found = FindTrend(p.hist, p.cfg.NSplit)
	}
	if found {
		p.trend = delta
		p.hasTrend = true
		p.stats.TrendHits++
	}

	window := p.windowSize(found)
	if window == 0 {
		p.stats.Suspended++
		return dst
	}

	useDelta := p.trend // current trend if found, else latest known (line 25)
	speculative := !found
	if found && delta == 0 {
		// A zero majority delta carries no direction (same page re-faulting);
		// treat it as trendless and fall back to the speculative branch.
		speculative = true
	}
	if speculative {
		p.stats.Speculative++
	}

	before := len(dst)
	if speculative && !p.hasTrend {
		// No trend has ever been seen: bring the window's worth of pages
		// around Pt (alternating +1, -1, +2, ...), the closest neighbors.
		for k := 1; len(dst)-before < window; k++ {
			if c := addr + PageID(k); c >= 0 {
				dst = append(dst, c)
			}
			if len(dst)-before >= window {
				break
			}
			if c := addr - PageID(k); c >= 0 {
				dst = append(dst, c)
			}
			if k > window {
				break
			}
		}
	} else {
		d := useDelta
		if speculative && d == 0 {
			d = 1
		}
		for k := 1; k <= window; k++ {
			c := addr + PageID(int64(k)*d)
			if c < 0 {
				break
			}
			dst = append(dst, c)
		}
	}
	p.stats.PagesPredicted += int64(len(dst) - before)
	return dst
}

// windowSize implements GetPrefetchWindowSize (Algorithm 2 lines 1–17).
func (p *Predictor) windowSize(trendFound bool) int {
	var w int
	if p.hits == 0 {
		// No prefetched page was consumed since the last decision.
		if trendFound && p.followsTrend() {
			w = 1 // keep a minimal window along the trend
		} else {
			w = 0 // suspend
		}
	} else {
		w = ceilPow2(p.hits + 1)
		if w > p.cfg.MaxPrefetchWindow {
			w = p.cfg.MaxPrefetchWindow
		}
	}
	// Smooth shrink: never drop below half the previous window at once, so a
	// transient miss burst cannot instantly kill an established pattern.
	if w < p.prevWindow/2 {
		w = p.prevWindow / 2
	}
	switch {
	case w > p.prevWindow:
		p.stats.WindowGrowths++
	case w < p.prevWindow:
		p.stats.WindowShrinks++
	}
	p.hits = 0
	p.prevWindow = w
	return w
}

// followsTrend reports whether the most recent recorded delta equals the
// current trend ("Pt follows the current trend", Algorithm 2 line 6).
func (p *Predictor) followsTrend() bool {
	if !p.hasTrend || p.hist.Len() == 0 {
		return false
	}
	return p.hist.At(0) == p.trend
}

// Reset clears all learned state, as on process exit/exec.
func (p *Predictor) Reset() {
	p.hist.Reset()
	p.hasLast = false
	p.hasTrend = false
	p.trend = 0
	p.prevWindow = 0
	p.hits = 0
	p.stats = Stats{}
}

// ceilPow2 rounds n up to the next power of two (n >= 1).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
