package core

import (
	"testing"
	"testing/quick"
)

func TestAccessHistoryPushAt(t *testing.T) {
	h := NewAccessHistory(4)
	if h.Len() != 0 || h.Cap() != 4 {
		t.Fatalf("fresh history Len=%d Cap=%d", h.Len(), h.Cap())
	}
	h.Push(1)
	h.Push(2)
	h.Push(3)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	// At(0) is newest.
	want := []int64{3, 2, 1}
	for i, w := range want {
		if got := h.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestAccessHistoryWraps(t *testing.T) {
	h := NewAccessHistory(3)
	for d := int64(1); d <= 5; d++ {
		h.Push(d)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	want := []int64{5, 4, 3} // newest-first, oldest two evicted
	for i, w := range want {
		if got := h.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestAccessHistoryAtPanics(t *testing.T) {
	h := NewAccessHistory(2)
	h.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	h.At(1)
}

func TestAccessHistorySizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAccessHistory(1) did not panic")
		}
	}()
	NewAccessHistory(1)
}

func TestAccessHistoryReset(t *testing.T) {
	h := NewAccessHistory(4)
	h.Push(1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not clear history")
	}
	h.Push(9)
	if h.At(0) != 9 {
		t.Fatal("history unusable after Reset")
	}
}

func TestAccessHistorySnapshotString(t *testing.T) {
	h := NewAccessHistory(4)
	h.Push(-3)
	h.Push(2)
	got := h.Snapshot(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != -3 {
		t.Fatalf("Snapshot = %v", got)
	}
	if s := h.String(); s != "[+2 -3]" {
		t.Fatalf("String = %q", s)
	}
}

func TestAccessHistoryFIFOProperty(t *testing.T) {
	// Property: after pushing any sequence, At(i) equals the i-th most
	// recent pushed value (for i < min(len, cap)).
	f := func(vals []int64) bool {
		h := NewAccessHistory(8)
		for _, v := range vals {
			h.Push(v)
		}
		n := len(vals)
		if n > 8 {
			n = 8
		}
		if h.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if h.At(i) != vals[len(vals)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
