package core

import (
	"testing"
	"testing/quick"
)

func TestConfigDefaults(t *testing.T) {
	p := NewPredictor(Config{})
	cfg := p.Config()
	if cfg.HistorySize != 32 || cfg.NSplit != 2 || cfg.MaxPrefetchWindow != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{HistorySize: -1},
		{HistorySize: 8, NSplit: 9, MaxPrefetchWindow: 8},
		{HistorySize: 8, NSplit: 2, MaxPrefetchWindow: -2},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPredictor(%+v) did not panic", cfg)
				}
			}()
			NewPredictor(cfg)
		}()
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 17: 32}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// drive simulates the fault loop: each fault records + predicts; predictions
// that the (synthetic) future actually touches are reported back as hits.
func drive(p *Predictor, addrs []PageID) (predicted map[PageID]bool) {
	predicted = make(map[PageID]bool)
	for _, a := range addrs {
		if predicted[a] {
			p.NoteHit()
			// A consumed prefetch would fault no further; still record the
			// access so the history reflects the true stream.
			p.Record(a)
			continue
		}
		for _, c := range p.OnFault(a, nil) {
			predicted[c] = true
		}
	}
	return predicted
}

func TestSequentialStreamGrowsWindowAndPredicts(t *testing.T) {
	p := NewPredictor(Config{})
	var addrs []PageID
	for i := 0; i < 200; i++ {
		addrs = append(addrs, PageID(1000+i))
	}
	drive(p, addrs)
	st := p.Stats()
	if st.TrendHits == 0 {
		t.Fatal("no trends detected on a sequential stream")
	}
	if st.PagesPredicted == 0 {
		t.Fatal("no pages predicted on a sequential stream")
	}
	// Steady state: nearly all accesses after warmup must be prefetch hits,
	// i.e. most faults are avoided. Faults recorded = all 200 (Record runs on
	// hits too); but prediction coverage should be large.
	if st.PagesPredicted < 150 {
		t.Fatalf("predicted only %d pages over a 200-access sequential stream", st.PagesPredicted)
	}
}

func TestStrideStreamPredictsStride(t *testing.T) {
	p := NewPredictor(Config{})
	// Stride-10 pattern, the paper's §2 microbenchmark.
	for i := 0; i < 50; i++ {
		p.Record(PageID(i * 10))
	}
	got := p.Predict(PageID(490))
	if len(got) == 0 {
		t.Fatal("no predictions for an established stride")
	}
	for i, c := range got {
		want := PageID(490 + 10*(i+1))
		if c != want {
			t.Fatalf("candidate %d = %d, want %d", i, c, want)
		}
	}
}

func TestRandomStreamSuspendsPrefetching(t *testing.T) {
	p := NewPredictor(Config{})
	// Deterministic pseudo-random walk with no repeated delta.
	addr := PageID(1 << 20)
	seed := uint64(12345)
	next := func() PageID {
		seed = seed*6364136223846793005 + 1442695040888963407
		return PageID(seed % (1 << 24))
	}
	totalPredicted := int64(0)
	for i := 0; i < 500; i++ {
		addr = next()
		cands := p.OnFault(addr, nil)
		totalPredicted += int64(len(cands))
	}
	st := p.Stats()
	if st.Suspended < 400 {
		t.Fatalf("suspended on only %d of 500 random faults", st.Suspended)
	}
	if totalPredicted > 50 {
		t.Fatalf("predicted %d pages on random stream, want near zero", totalPredicted)
	}
}

func TestWindowGrowthToMax(t *testing.T) {
	p := NewPredictor(Config{MaxPrefetchWindow: 8})
	// Establish a sequential trend.
	for i := 0; i < 20; i++ {
		p.Record(PageID(i))
	}
	// Report escalating hit counts and check the window ramps 1→2→4→8 and
	// saturates at PWsizemax.
	sizes := []int{}
	for round := 0; round < 6; round++ {
		base := PageID(20 + round*10)
		for k := 0; k < 8; k++ {
			p.NoteHit()
		}
		p.Record(base)
		got := p.Predict(base)
		sizes = append(sizes, len(got))
	}
	for _, s := range sizes {
		if s > 8 {
			t.Fatalf("window exceeded max: %v", sizes)
		}
	}
	if sizes[len(sizes)-1] != 8 {
		t.Fatalf("window did not saturate at 8: %v", sizes)
	}
}

func TestSmoothShrinkNoInstantSuspend(t *testing.T) {
	p := NewPredictor(Config{})
	// Grow the window to 8 with a hot sequential stream.
	for i := 0; i < 20; i++ {
		p.Record(PageID(i))
	}
	for k := 0; k < 8; k++ {
		p.NoteHit()
	}
	p.Record(20)
	if got := len(p.Predict(20)); got != 8 {
		t.Fatalf("setup: window = %d, want 8", got)
	}
	// Now: zero hits and a fault off-trend. The window must halve (4), not
	// suspend outright.
	p.Record(100000)
	if got := len(p.Predict(100000)); got != 4 {
		t.Fatalf("after one cold fault window = %d, want 4 (smooth shrink)", got)
	}
	// Repeated cold faults decay 2, 1, then 0.
	p.Record(200000)
	if got := len(p.Predict(200000)); got != 2 {
		t.Fatalf("decay step = %d, want 2", got)
	}
	p.Record(300000)
	if got := len(p.Predict(300000)); got != 1 {
		t.Fatalf("decay step = %d, want 1", got)
	}
	p.Record(400000)
	if got := len(p.Predict(400000)); got != 0 {
		t.Fatalf("decay step = %d, want 0 (suspended)", got)
	}
	if p.Stats().Suspended == 0 {
		t.Fatal("suspension not counted")
	}
}

func TestSpeculativePrefetchUsesLatestTrend(t *testing.T) {
	p := NewPredictor(Config{HistorySize: 8, NSplit: 2, MaxPrefetchWindow: 8})
	// Strong +3 trend.
	for i := 0; i < 10; i++ {
		p.Record(PageID(i * 3))
	}
	// Break the trend hard enough that no majority exists in any window,
	// while hits keep the window open: speculative branch engages.
	noise := []PageID{1000, 500, 3000, 100, 4000, 900, 2000, 700}
	var lastCands []PageID
	for _, a := range noise {
		p.NoteHit() // keep Chit > 0 so PWsize stays nonzero
		p.Record(a)
		lastCands = p.Predict(a)
	}
	if p.Stats().Speculative == 0 {
		t.Fatal("speculative branch never taken")
	}
	if len(lastCands) == 0 {
		t.Fatal("speculation produced no candidates")
	}
	// Candidates follow the latest known trend (+3) from the faulting page.
	want := noise[len(noise)-1] + 3
	if lastCands[0] != want {
		t.Fatalf("speculative candidate = %d, want %d (latest trend +3)", lastCands[0], want)
	}
}

func TestSpeculativeWithoutAnyTrendSurroundsPt(t *testing.T) {
	p := NewPredictor(Config{HistorySize: 8, NSplit: 2, MaxPrefetchWindow: 8})
	// No history at all, but force Chit > 0 (e.g. hits on another path):
	// candidates surround Pt.
	p.NoteHit()
	p.NoteHit()
	p.Record(100)
	cands := p.Predict(100)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0] != 101 || (len(cands) > 1 && cands[1] != 99) {
		t.Fatalf("candidates = %v, want to surround 100", cands)
	}
}

func TestPredictNeverReturnsNegativePages(t *testing.T) {
	p := NewPredictor(Config{})
	// Descending stream near zero: candidates would go negative.
	for i := 20; i >= 0; i-- {
		p.Record(PageID(i))
	}
	for k := 0; k < 8; k++ {
		p.NoteHit()
	}
	p.Record(0)
	for _, c := range p.Predict(0) {
		if c < 0 {
			t.Fatalf("negative candidate %d", c)
		}
	}
}

func TestPredictIntoAppends(t *testing.T) {
	p := NewPredictor(Config{})
	for i := 0; i < 20; i++ {
		p.Record(PageID(i))
	}
	p.NoteHit()
	buf := make([]PageID, 0, 16)
	buf = append(buf, 777)
	p.Record(20)
	out := p.PredictInto(20, buf)
	if out[0] != 777 {
		t.Fatal("PredictInto did not preserve existing elements")
	}
	if len(out) < 2 {
		t.Fatal("PredictInto appended nothing")
	}
}

func TestResetClearsState(t *testing.T) {
	p := NewPredictor(Config{})
	for i := 0; i < 50; i++ {
		p.Record(PageID(i))
	}
	p.Reset()
	if p.Stats().Faults != 0 || p.History().Len() != 0 {
		t.Fatal("Reset left state behind")
	}
	// After reset, a cold fault must not predict.
	p.Record(5)
	if got := p.Predict(5); len(got) != 0 {
		t.Fatalf("predicted %v immediately after reset", got)
	}
}

func TestZeroDeltaMajorityFallsBackToSpeculation(t *testing.T) {
	p := NewPredictor(Config{HistorySize: 8, NSplit: 2})
	// Same page over and over: majority delta 0 (directionless).
	for i := 0; i < 10; i++ {
		p.Record(42)
	}
	p.NoteHit()
	p.Record(42)
	cands := p.Predict(42)
	for _, c := range cands {
		if c == 42 {
			t.Fatalf("predicted the faulting page itself: %v", cands)
		}
	}
	if p.Stats().Speculative == 0 {
		t.Fatal("zero-delta majority did not take the speculative branch")
	}
}

func TestPredictorDeterminism(t *testing.T) {
	run := func() Stats {
		p := NewPredictor(Config{})
		addrs := make([]PageID, 0, 300)
		for i := 0; i < 100; i++ {
			addrs = append(addrs, PageID(i))
		}
		for i := 0; i < 100; i++ {
			addrs = append(addrs, PageID(10000+i*7))
		}
		for i := 0; i < 100; i++ {
			addrs = append(addrs, PageID((i*2654435761)%65536))
		}
		drive(p, addrs)
		return p.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic predictor: %+v vs %+v", a, b)
	}
}

func TestPredictorPropertyCandidatesFollowTrendWhenDetected(t *testing.T) {
	// Property: for any positive stride s and window, once the stride is
	// established every candidate equals Pt + k·s.
	f := func(strideRaw uint8, hitsRaw uint8) bool {
		stride := int64(strideRaw%100) + 1
		hits := int(hitsRaw % 10)
		p := NewPredictor(Config{})
		for i := 0; i < 40; i++ {
			p.Record(PageID(int64(i) * stride))
		}
		for k := 0; k < hits; k++ {
			p.NoteHit()
		}
		pt := PageID(40 * stride)
		p.Record(pt)
		for i, c := range p.Predict(pt) {
			if c != pt+PageID(int64(i+1)*stride) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := NewPredictor(Config{})
	for i := 0; i < 10; i++ {
		p.OnFault(PageID(i), nil)
	}
	st := p.Stats()
	if st.Faults != 10 {
		t.Fatalf("Faults = %d, want 10", st.Faults)
	}
	if st.TrendHits == 0 {
		t.Fatal("sequential faults should detect trends")
	}
}
