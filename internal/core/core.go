// Package core implements the Leap prefetching algorithm from
// "Effectively Prefetching Remote Memory with Leap" (Maruf & Chowdhury,
// USENIX ATC 2020): an online, majority-trend-based predictor of future
// remote page accesses.
//
// The algorithm has two halves, mirroring §3.2 of the paper:
//
//   - Trend detection (Algorithm 1): page-fault addresses are recorded as
//     deltas between consecutive faults in a small per-process ring buffer
//     (AccessHistory). FindTrend runs the Boyer–Moore majority vote over a
//     window of recent deltas, starting with a small window (Hsize/NSplit)
//     and doubling until a majority delta emerges or the whole history is
//     searched. Majority — at least ⌊w/2⌋+1 occurrences in a window of w —
//     rather than strict repetition makes the detector robust to short-term
//     irregularities such as interleaved threads.
//
//   - Candidate generation (Algorithm 2): the prefetch window size adapts to
//     measured utility. Hits on previously prefetched pages since the last
//     prefetch grow the window (rounded up to a power of two, capped at
//     MaxPrefetchWindow); zero hits shrink it smoothly (halving, not
//     suspending immediately); prefetching suspends entirely only when the
//     window has decayed and the faulting page does not follow the current
//     trend. With a detected trend the candidates are Pt + k·Δmaj; without
//     one, a window-worth of pages around Pt following the latest known
//     trend is speculatively fetched.
//
// Predictor is single-goroutine by design — the enclosing data path owns
// locking — and allocation-free on the fault path except for the returned
// candidate slice, which can be reused via PredictInto.
package core
