package core

// FindTrend implements Algorithm 1 of the paper. It searches for a majority
// delta ("trend") in the most recent window of the access history, starting
// with a window of Hsize/nsplit entries and doubling on failure until the
// window covers the whole history. It reports the majority delta and whether
// one was found.
//
// Starting small makes detection cheap and quick to react when the trend is
// strong (a regular trend is majority in any suffix); growing the window
// tolerates short-term irregularities that would hide the trend from a small
// window (see the t8 step of the paper's Figure 5 walk-through).
//
// The election state is carried across the doubling windows: a Boyer–Moore
// scan of window 2w processes the same elements in the same order as the
// scan of window w plus the w..2w-1 extension, so each history entry is fed
// to the election exactly once per call no matter how many times the window
// doubles. Only the verification pass (a geometric series, <= 2·Hsize total)
// re-reads earlier entries.
func FindTrend(h *AccessHistory, nsplit int) (int64, bool) {
	hsize := h.Cap()
	if nsplit < 1 {
		nsplit = 1
	}
	w := hsize / nsplit
	if w < 1 {
		w = 1
	}
	var candidate int64
	count := 0
	scanned := 0
	for {
		lim := w
		if lim > h.n {
			lim = h.n
		}
		if lim > scanned {
			candidate, count = h.voteRange(candidate, count, scanned, lim)
			scanned = lim
		}
		if lim > 0 && h.occurrences(candidate, lim) >= lim/2+1 {
			return candidate, true
		}
		if w >= hsize || w >= h.n {
			// Window already covers everything recorded; no trend.
			return 0, false
		}
		w *= 2
		if w > hsize {
			w = hsize
		}
	}
}

// FindTrendStrict is the ablation variant: a trend exists only when every
// delta in some window agrees — the rigid detection style of §2.3's
// baselines.
func FindTrendStrict(h *AccessHistory, nsplit int) (int64, bool) {
	return findTrend(h, nsplit, strictInWindow)
}

func findTrend(h *AccessHistory, nsplit int, detect func(*AccessHistory, int) (int64, bool)) (int64, bool) {
	hsize := h.Cap()
	if nsplit < 1 {
		nsplit = 1
	}
	w := hsize / nsplit
	if w < 1 {
		w = 1
	}
	for {
		if delta, ok := detect(h, w); ok {
			return delta, true
		}
		if w >= hsize || w >= h.Len() {
			// Window already covers everything recorded; no trend.
			return 0, false
		}
		w *= 2
		if w > hsize {
			w = hsize
		}
	}
}

// strictInWindow detects a trend only if all w most recent deltas are equal.
func strictInWindow(h *AccessHistory, w int) (int64, bool) {
	if w > h.Len() {
		w = h.Len()
	}
	if w == 0 {
		return 0, false
	}
	first := h.At(0)
	for i := 1; i < w; i++ {
		if h.At(i) != first {
			return 0, false
		}
	}
	return first, true
}
