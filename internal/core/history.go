package core

import (
	"fmt"
	"strings"
)

// PageID identifies a 4KB page in the remote (swap) address space. Deltas
// between consecutively faulted PageIDs are what the predictor learns from.
type PageID int64

// AccessHistory is the fixed-size FIFO ring of deltas between consecutive
// page accesses described in §4.1 of the paper. Storing deltas instead of
// absolute addresses both shrinks the state and makes trends (sequential,
// stride) appear as repeated values, which is what the majority vote detects.
//
// Index 0 is the most recent delta (the paper's Hhead); index Len()-1 is the
// oldest retained one.
type AccessHistory struct {
	deltas []int64
	head   int // position of the most recent delta
	n      int // number of valid entries, <= len(deltas)
}

// NewAccessHistory returns a history retaining size deltas. Size must be at
// least 2; the paper's default (and the package default) is 32.
func NewAccessHistory(size int) *AccessHistory {
	if size < 2 {
		panic(fmt.Sprintf("core: AccessHistory size %d, need >= 2", size))
	}
	return &AccessHistory{deltas: make([]int64, size)}
}

// Cap reports the configured Hsize.
func (h *AccessHistory) Cap() int { return len(h.deltas) }

// Len reports how many deltas are currently recorded (saturates at Cap).
func (h *AccessHistory) Len() int { return h.n }

// Push records the newest delta, evicting the oldest when full.
func (h *AccessHistory) Push(delta int64) {
	if h.n == 0 {
		h.head = 0
		h.deltas[0] = delta
		h.n = 1
		return
	}
	h.head = (h.head + 1) % len(h.deltas)
	h.deltas[h.head] = delta
	if h.n < len(h.deltas) {
		h.n++
	}
}

// At reports the i-th most recent delta; At(0) is the newest. It panics if
// i >= Len().
func (h *AccessHistory) At(i int) int64 {
	if i < 0 || i >= h.n {
		panic(fmt.Sprintf("core: AccessHistory.At(%d) with %d entries", i, h.n))
	}
	idx := h.head - i
	if idx < 0 {
		idx += len(h.deltas)
	}
	return h.deltas[idx]
}

// Reset forgets all recorded deltas.
func (h *AccessHistory) Reset() { h.n = 0; h.head = 0 }

// voteRange continues a Boyer–Moore election over the recency range
// [from, to): it feeds entries At(from)..At(to-1) into the running
// (candidate, count) state and returns the updated state. Feeding ranges
// [0,a) then [a,b) is exactly equivalent to a single scan of [0,b), which is
// what lets FindTrend reuse the election across its doubling windows. The
// ring is walked directly to keep this loop free of per-element call and
// bounds-check overhead — it runs on every simulated page fault.
func (h *AccessHistory) voteRange(candidate int64, count, from, to int) (int64, int) {
	if to > h.n {
		to = h.n
	}
	idx := h.head - from
	if idx < 0 {
		idx += len(h.deltas)
	}
	for i := from; i < to; i++ {
		x := h.deltas[idx]
		switch {
		case count == 0:
			candidate, count = x, 1
		case x == candidate:
			count++
		default:
			count--
		}
		idx--
		if idx < 0 {
			idx = len(h.deltas) - 1
		}
	}
	return candidate, count
}

// occurrences counts how many of the w most recent entries equal x.
func (h *AccessHistory) occurrences(x int64, w int) int {
	if w > h.n {
		w = h.n
	}
	idx := h.head
	occ := 0
	for i := 0; i < w; i++ {
		if h.deltas[idx] == x {
			occ++
		}
		idx--
		if idx < 0 {
			idx = len(h.deltas) - 1
		}
	}
	return occ
}

// Snapshot appends the deltas newest-first to dst and returns it, for
// debugging and tests.
func (h *AccessHistory) Snapshot(dst []int64) []int64 {
	for i := 0; i < h.n; i++ {
		dst = append(dst, h.At(i))
	}
	return dst
}

// String renders the history newest-first, e.g. "[+2 +2 -3]".
func (h *AccessHistory) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < h.n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%+d", h.At(i))
	}
	b.WriteByte(']')
	return b.String()
}
