package core

import (
	"testing"
	"testing/quick"
)

func naiveMajority(xs []int64) (int64, bool) {
	counts := make(map[int64]int)
	for _, x := range xs {
		counts[x]++
	}
	for v, c := range counts {
		if c >= len(xs)/2+1 {
			return v, true
		}
	}
	return 0, false
}

func TestMajorityVoteBasics(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
		ok   bool
	}{
		{nil, 0, false},
		{[]int64{5}, 5, true},
		{[]int64{1, 1}, 1, true},
		{[]int64{1, 2}, 0, false},
		{[]int64{-3, -3, -3, 72}, -3, true},
		{[]int64{2, 2, -58, -3}, 0, false},
		{[]int64{1, 2, 3, 2, 2}, 2, true},
		{[]int64{1, 2, 3, 4, 5, 6, 7, 7}, 0, false},
		{[]int64{7, 7, 7, 7, 1, 2, 3, 4}, 0, false}, // exactly half is not majority
		{[]int64{7, 7, 7, 7, 7, 1, 2, 3}, 7, true},
	}
	for _, c := range cases {
		got, ok := MajorityVote(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("MajorityVote(%v) = (%d,%v), want (%d,%v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestMajorityVoteMatchesNaive(t *testing.T) {
	// Property: Boyer–Moore + verification agrees with exhaustive counting.
	f := func(raw []uint8) bool {
		// Small alphabet to make majorities common.
		xs := make([]int64, len(raw))
		for i, r := range raw {
			xs[i] = int64(r % 4)
		}
		gotV, gotOK := MajorityVote(xs)
		wantV, wantOK := naiveMajority(xs)
		if gotOK != wantOK {
			return false
		}
		return !gotOK || gotV == wantV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityInWindowMatchesSlice(t *testing.T) {
	// Property: the ring-walking variant agrees with MajorityVote on the
	// materialized window.
	f := func(raw []uint8, wRaw uint8) bool {
		h := NewAccessHistory(16)
		for _, r := range raw {
			h.Push(int64(r % 3))
		}
		w := int(wRaw%16) + 1
		gotV, gotOK := majorityInWindow(h, w)
		if w > h.Len() {
			w = h.Len()
		}
		window := make([]int64, 0, w)
		for i := 0; i < w; i++ {
			window = append(window, h.At(i))
		}
		wantV, wantOK := MajorityVote(window)
		if gotOK != wantOK {
			return false
		}
		return !gotOK || gotV == wantV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityInWindowEmpty(t *testing.T) {
	h := NewAccessHistory(4)
	if _, ok := majorityInWindow(h, 4); ok {
		t.Fatal("empty window reported a majority")
	}
}
