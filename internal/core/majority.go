package core

// MajorityVote runs the Boyer–Moore majority vote algorithm [Boyer & Moore
// 1991] over xs and reports the verified majority element: a value occurring
// at least ⌊len(xs)/2⌋+1 times. The second return is false when no such
// element exists.
//
// The algorithm is the paper's core primitive: linear time, constant space.
// The first pass elects a candidate by pairing off distinct values; the
// second pass verifies the candidate actually holds a majority (the election
// alone can nominate a non-majority value).
func MajorityVote(xs []int64) (int64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	candidate, count := xs[0], 1
	for _, x := range xs[1:] {
		switch {
		case count == 0:
			candidate, count = x, 1
		case x == candidate:
			count++
		default:
			count--
		}
	}
	occurrences := 0
	for _, x := range xs {
		if x == candidate {
			occurrences++
		}
	}
	if occurrences >= len(xs)/2+1 {
		return candidate, true
	}
	return 0, false
}

// majorityInWindow elects and verifies a majority over the w most recent
// history entries without materializing a slice. It mirrors MajorityVote but
// walks the ring directly so the fault path stays allocation-free.
func majorityInWindow(h *AccessHistory, w int) (int64, bool) {
	if w > h.Len() {
		w = h.Len()
	}
	if w == 0 {
		return 0, false
	}
	candidate, count := h.At(0), 1
	for i := 1; i < w; i++ {
		x := h.At(i)
		switch {
		case count == 0:
			candidate, count = x, 1
		case x == candidate:
			count++
		default:
			count--
		}
	}
	occurrences := 0
	for i := 0; i < w; i++ {
		if h.At(i) == candidate {
			occurrences++
		}
	}
	if occurrences >= w/2+1 {
		return candidate, true
	}
	return 0, false
}
