// Package storage provides the backing-store device models a page fetch
// ultimately lands on: rotational disk (HDD), flash (SSD), and disaggregated
// remote memory over the RDMA fabric. All three implement one Device
// interface so the paging path is medium-agnostic, mirroring how the paper
// runs the same workloads against disk swap, Infiniswap, and Leap.
//
// Devices are calibrated to the paper's Figure 1 stage costs: HDD ≈ 91.5µs
// for the short seeks a strided swap layout produces (milliseconds for long
// seeks), SSD ≈ 20µs, remote memory ≈ 4.3µs per 4KB op. HDD serializes on a
// single head; SSD exposes channel parallelism; remote memory inherits the
// fabric's per-core queue behaviour.
package storage

import (
	"leap/internal/core"
	"leap/internal/metrics"
	"leap/internal/rdma"
	"leap/internal/sim"
)

// BatchDevice is the optional batched extension of Device: devices that
// support doorbell-style submission (remote memory's multi-queue fabric)
// implement it, and the paging layer fans prefetches and eviction
// writebacks out through it when a queue depth > 1 is configured. A batch
// of 1 must behave exactly like the single-op call (same latency samples,
// same accounting), so depth-1 configurations replay bit-identically
// against the unbatched path.
type BatchDevice interface {
	Device
	// ReadBatch starts reads of pages as one doorbell on core's queue at
	// time now and returns per-page completion times (filled into done,
	// allocated when nil or short). dists mirrors Read's distance argument,
	// one entry per page.
	ReadBatch(core int, now sim.Time, pages []core.PageID, dists []int64, done []sim.Time) []sim.Time
	// WriteBatch behaves like ReadBatch for page-out traffic.
	WriteBatch(core int, now sim.Time, pages []core.PageID, dists []int64, done []sim.Time) []sim.Time
}

// Device is a backing store for 4KB pages. Implementations are not safe for
// concurrent use.
type Device interface {
	// Name reports a short identifier ("hdd", "ssd", "remote").
	Name() string
	// Read starts a read of page at time now whose target is distance pages
	// away from the previous access (0 = same page, 1 = sequential next);
	// core identifies the submitting CPU for multi-queue devices. It
	// returns the completion time. Latency-model devices ignore page;
	// byte-backed devices (Backed) use it to address real data.
	Read(core int, now sim.Time, page core.PageID, distance int64) sim.Time
	// Write behaves like Read for page-out traffic.
	Write(core int, now sim.Time, page core.PageID, distance int64) sim.Time
	// MeanReadLatency reports the unloaded expected read latency for a
	// near-sequential access, for documentation and sanity checks.
	MeanReadLatency() sim.Duration
}

// HDD models a rotational disk serving a swap partition: a single head
// serializes all requests, and each request costs a positioning step that
// depends on the distance from the previous request plus a fixed per-page
// transfer. Streaming adjacent pages is therefore cheap (the head is
// already positioned), short hops cost a partial rotation, stride-scale
// hops land at the paper's measured 91.48µs (Figure 1, stride-10), and
// long jumps pay a seek. The long-seek figure assumes a short-stroked swap
// partition with an elevator scheduler, not a full-platter average.
type HDD struct {
	rng    *sim.RNG
	freeAt sim.Time

	posSeq  sim.Dist // |d| <= 1: head already positioned
	posNear sim.Dist // |d| <= 16384: short seek + rotation (the paper's stride measurements)
	posFar  sim.Dist // beyond: seek across the partition
	xfer    sim.Dist // per-4KB transfer

	// Reads counts operations, for bandwidth accounting in experiments.
	Reads, Writes int64
	// Busy records time the head was occupied.
	Busy sim.Duration
}

// NewHDD returns an HDD with paper-calibrated latencies.
func NewHDD(rng *sim.RNG) *HDD {
	return &HDD{
		rng:     rng,
		posSeq:  sim.Normal{Mu: 5 * sim.Microsecond, Sigma: 1 * sim.Microsecond, Floor: 2 * sim.Microsecond},
		posNear: sim.LogNormal{MeanVal: sim.Duration(85.5 * float64(sim.Microsecond)), Sigma: 0.35, Floor: 30 * sim.Microsecond},
		posFar:  sim.LogNormal{MeanVal: 300 * sim.Microsecond, Sigma: 0.5, Floor: 100 * sim.Microsecond},
		xfer:    sim.Normal{Mu: 6 * sim.Microsecond, Sigma: 1 * sim.Microsecond, Floor: 3 * sim.Microsecond},
	}
}

// Name implements Device.
func (d *HDD) Name() string { return "hdd" }

func (d *HDD) service(now sim.Time, distance int64) sim.Time {
	if distance < 0 {
		distance = -distance
	}
	var pos sim.Duration
	switch {
	case distance <= 1:
		pos = d.posSeq.Sample(d.rng)
	case distance <= 16384:
		pos = d.posNear.Sample(d.rng)
	default:
		pos = d.posFar.Sample(d.rng)
	}
	// NCQ-style overlap: when requests are already queued at the device,
	// the controller orders them and overlaps positioning with rotation,
	// roughly halving the effective positioning cost of batched I/O. Deep
	// prefetch batches benefit; isolated synchronous misses do not.
	start := now
	if d.freeAt > start {
		start = d.freeAt
		pos /= 2
	}
	cost := pos + d.xfer.Sample(d.rng)
	d.freeAt = start.Add(cost)
	d.Busy += cost
	return d.freeAt
}

// Read implements Device.
func (d *HDD) Read(_ int, now sim.Time, _ core.PageID, distance int64) sim.Time {
	d.Reads++
	return d.service(now, distance)
}

// Write implements Device. Swap-out writes are charged the sequential cost
// regardless of logical distance: Linux's swap slot allocator clusters
// outgoing pages into contiguous slots precisely so page-out is a
// sequential append, and the elevator merges them.
func (d *HDD) Write(_ int, now sim.Time, _ core.PageID, _ int64) sim.Time {
	d.Writes++
	return d.service(now, 1)
}

// MeanReadLatency implements Device.
func (d *HDD) MeanReadLatency() sim.Duration { return d.posNear.Mean() + d.xfer.Mean() }

// SSD models a flash device: near-constant latency, multiple independent
// channels, writes costlier than reads.
type SSD struct {
	rng    *sim.RNG
	freeAt []sim.Time

	read  sim.Dist
	write sim.Dist

	Reads, Writes int64
}

// NewSSD returns an SSD with paper-calibrated latencies (Fig. 1: 20µs reads)
// and 8 channels.
func NewSSD(rng *sim.RNG) *SSD {
	return &SSD{
		rng:    rng,
		freeAt: make([]sim.Time, 8),
		read:   sim.LogNormal{MeanVal: 20 * sim.Microsecond, Sigma: 0.3, Floor: 8 * sim.Microsecond},
		write:  sim.LogNormal{MeanVal: 50 * sim.Microsecond, Sigma: 0.4, Floor: 20 * sim.Microsecond},
	}
}

// Name implements Device.
func (d *SSD) Name() string { return "ssd" }

func (d *SSD) service(core int, now sim.Time, dist sim.Dist) sim.Time {
	q := core % len(d.freeAt)
	start := now
	if d.freeAt[q] > start {
		start = d.freeAt[q]
	}
	// Channel occupancy is a fraction of the op latency (controller
	// pipelining); 2µs per 4KB keeps a channel at ~500MB/s.
	d.freeAt[q] = start.Add(2 * sim.Microsecond)
	return start.Add(dist.Sample(d.rng))
}

// Read implements Device.
func (d *SSD) Read(cpu int, now sim.Time, _ core.PageID, _ int64) sim.Time {
	d.Reads++
	return d.service(cpu, now, d.read)
}

// Write implements Device.
func (d *SSD) Write(cpu int, now sim.Time, _ core.PageID, _ int64) sim.Time {
	d.Writes++
	return d.service(cpu, now, d.write)
}

// MeanReadLatency implements Device.
func (d *SSD) MeanReadLatency() sim.Duration { return d.read.Mean() }

// Remote is disaggregated remote memory reached over the RDMA fabric. Reads
// and writes are single RDMA ops; congestion and queueing come from the
// fabric model.
type Remote struct {
	fabric *rdma.Fabric

	Reads, Writes int64
	// ReadLatency records per-op completion latency (device portion only).
	ReadLatency metrics.Histogram
}

// NewRemote returns a remote-memory device on the given fabric.
func NewRemote(fabric *rdma.Fabric) *Remote {
	return &Remote{fabric: fabric}
}

// Name implements Device.
func (d *Remote) Name() string { return "remote" }

// Read implements Device.
func (d *Remote) Read(cpu int, now sim.Time, _ core.PageID, _ int64) sim.Time {
	d.Reads++
	done := d.fabric.Submit(cpu, now)
	d.ReadLatency.Observe(done.Sub(now))
	return done
}

// Write implements Device.
func (d *Remote) Write(cpu int, now sim.Time, _ core.PageID, _ int64) sim.Time {
	d.Writes++
	return d.fabric.Submit(cpu, now)
}

// ReadBatch implements BatchDevice: the pages go out as one fabric
// doorbell, paying the round-trip latency once and streaming back at the
// service rate (rdma.Fabric.SubmitBatch). A batch of 1 is exactly Read.
func (d *Remote) ReadBatch(cpu int, now sim.Time, pages []core.PageID, dists []int64, done []sim.Time) []sim.Time {
	d.Reads += int64(len(pages))
	done = d.fabric.SubmitBatch(cpu, len(pages), now, done)
	for _, t := range done {
		d.ReadLatency.Observe(t.Sub(now))
	}
	return done
}

// WriteBatch implements BatchDevice.
func (d *Remote) WriteBatch(cpu int, now sim.Time, pages []core.PageID, dists []int64, done []sim.Time) []sim.Time {
	d.Writes += int64(len(pages))
	return d.fabric.SubmitBatch(cpu, len(pages), now, done)
}

// MeanReadLatency implements Device.
func (d *Remote) MeanReadLatency() sim.Duration { return d.fabric.MeanOpLatency() }

// Fabric exposes the underlying fabric for congestion probes.
func (d *Remote) Fabric() *rdma.Fabric { return d.fabric }
