package storage

import (
	"math"
	"testing"

	"leap/internal/rdma"
	"leap/internal/sim"
)

func meanRead(d Device, distance int64, n int, gap sim.Duration) float64 {
	var sum float64
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		now = now.Add(gap)
		done := d.Read(i, now, 0, distance)
		sum += float64(done.Sub(now))
	}
	return sum / float64(n)
}

func TestHDDSeekTiers(t *testing.T) {
	seq := meanRead(NewHDD(sim.NewRNG(1)), 1, 20000, 10*sim.Millisecond)
	near := meanRead(NewHDD(sim.NewRNG(2)), 10, 20000, 10*sim.Millisecond)
	far := meanRead(NewHDD(sim.NewRNG(3)), 100000, 20000, 100*sim.Millisecond)
	if !(seq < near && near < far) {
		t.Fatalf("seek tiers out of order: seq=%.0f near=%.0f far=%.0f", seq, near, far)
	}
	// Stride-scale distance ≈ the paper's 91.48µs figure (Fig. 1).
	if math.Abs(near-91480)/91480 > 0.08 {
		t.Fatalf("HDD near-seek mean = %.0fns, want ~91480ns", near)
	}
	// Streaming is an order of magnitude cheaper than seeking.
	if seq > near/4 {
		t.Fatalf("HDD streaming %.0fns not well below near seek %.0fns", seq, near)
	}
	if far < float64(250*sim.Microsecond) {
		t.Fatalf("HDD far seek = %.0fns, want >= 250µs", far)
	}
}

func TestHDDSerializesOnHead(t *testing.T) {
	d := NewHDD(sim.NewRNG(4))
	// Two overlapping requests: the second completes after the first.
	t1 := d.Read(0, 0, 0, 10)
	t2 := d.Read(1, 0, 0, 10)
	if t2 <= t1 {
		t.Fatalf("HDD head did not serialize: %v then %v", t1, t2)
	}
	if d.Reads != 2 {
		t.Fatalf("Reads = %d", d.Reads)
	}
	if d.Busy <= 0 {
		t.Fatal("busy time not accounted")
	}
}

func TestSSDLatencyFlat(t *testing.T) {
	// SSD latency must be distance-insensitive.
	near := meanRead(NewSSD(sim.NewRNG(5)), 1, 20000, sim.Millisecond)
	far := meanRead(NewSSD(sim.NewRNG(6)), 1<<30, 20000, sim.Millisecond)
	if math.Abs(near-far)/near > 0.05 {
		t.Fatalf("SSD latency distance-sensitive: %.0f vs %.0f", near, far)
	}
	if math.Abs(near-20000)/20000 > 0.08 {
		t.Fatalf("SSD mean read = %.0fns, want ~20µs", near)
	}
}

func TestSSDWritesSlower(t *testing.T) {
	d := NewSSD(sim.NewRNG(7))
	var rsum, wsum float64
	const n = 20000
	for i := 0; i < n; i++ {
		now := sim.Time(i) * sim.Time(sim.Millisecond)
		rsum += float64(d.Read(i, now, 0, 1).Sub(now))
		wsum += float64(d.Write(i, now, 0, 1).Sub(now))
	}
	if wsum <= rsum {
		t.Fatal("SSD writes should be slower than reads")
	}
}

func TestSSDChannelsParallel(t *testing.T) {
	d := NewSSD(sim.NewRNG(8))
	// 8 simultaneous reads on distinct channels do not serialize fully.
	var maxDone sim.Time
	for core := 0; core < 8; core++ {
		done := d.Read(core, 0, 0, 1)
		if done > maxDone {
			maxDone = done
		}
	}
	// Full serialization would take >= 8×8µs floor; parallel channels keep
	// the makespan near one op's latency.
	if maxDone > sim.Time(80*sim.Microsecond) {
		t.Fatalf("SSD channels appear serialized: makespan %v", sim.Duration(maxDone))
	}
}

func TestRemoteUsesFabric(t *testing.T) {
	fabric := rdma.New(rdma.Config{}, sim.NewRNG(9))
	d := NewRemote(fabric)
	got := meanRead(d, 1, 50000, 100*sim.Microsecond)
	if math.Abs(got-4300)/4300 > 0.05 {
		t.Fatalf("remote mean read = %.0fns, want ~4.3µs", got)
	}
	if fabric.Ops() != 50000 {
		t.Fatalf("fabric ops = %d", fabric.Ops())
	}
	if d.ReadLatency.Count() != 50000 {
		t.Fatal("read latency histogram not populated")
	}
}

func TestRemoteCongestionUnderBurst(t *testing.T) {
	fabric := rdma.New(rdma.Config{Queues: 1, ServiceTime: 2 * sim.Microsecond}, sim.NewRNG(10))
	d := NewRemote(fabric)
	var last sim.Time
	for i := 0; i < 64; i++ {
		last = d.Read(0, 0, 0, 1)
	}
	if last < sim.Time(63*2*sim.Microsecond) {
		t.Fatalf("burst did not congest the single queue: %v", sim.Duration(last))
	}
}

func TestDeviceNamesAndMeans(t *testing.T) {
	fabric := rdma.New(rdma.Config{}, sim.NewRNG(11))
	devs := []Device{NewHDD(sim.NewRNG(11)), NewSSD(sim.NewRNG(12)), NewRemote(fabric)}
	wantNames := []string{"hdd", "ssd", "remote"}
	for i, d := range devs {
		if d.Name() != wantNames[i] {
			t.Errorf("device %d name = %q, want %q", i, d.Name(), wantNames[i])
		}
		if d.MeanReadLatency() <= 0 {
			t.Errorf("%s MeanReadLatency = %v", d.Name(), d.MeanReadLatency())
		}
	}
	// Speed ordering: remote < ssd < hdd (near seek).
	if !(devs[2].MeanReadLatency() < devs[1].MeanReadLatency() &&
		devs[1].MeanReadLatency() < devs[0].MeanReadLatency()) {
		t.Fatal("device speed ordering violated")
	}
}
