package storage

import (
	"fmt"
	"sync/atomic"

	"leap/internal/core"
	"leap/internal/remote"
	"leap/internal/sim"
)

// Backed pairs a latency-model Device with a real remote-memory store: every
// simulated page-out writes an actual page image through the remote.Host
// (slab placement, replication, failover — real bytes), and every simulated
// page-in fetches and verifies it. Page contents are a deterministic
// function of the page number, so verification needs no shadow copy.
//
// Backed makes the simulation end-to-end honest: a run that completes with
// zero corruption has exercised the entire remote-memory substrate under
// the exact access pattern the latency results describe.
type Backed struct {
	inner Device
	store *remote.Host

	// Verified counts reads whose contents checked out; ColdReads counts
	// reads of pages never written (initial faults have no remote image;
	// a fresh slab also zero-fills its other pages).
	Verified  atomic.Int64
	ColdReads atomic.Int64
	// Corrupt counts verification failures (must stay zero).
	Corrupt atomic.Int64

	written  map[core.PageID]bool
	writeBuf []byte
	readBuf  []byte
}

// NewBacked wraps inner with the real store.
func NewBacked(inner Device, store *remote.Host) *Backed {
	return &Backed{
		inner:    inner,
		store:    store,
		written:  make(map[core.PageID]bool),
		writeBuf: make([]byte, remote.PageSize),
		readBuf:  make([]byte, remote.PageSize),
	}
}

// Name implements Device.
func (d *Backed) Name() string { return d.inner.Name() + "+backed" }

// pageByte computes the deterministic fill byte for a page/offset pair.
func pageByte(page core.PageID, i int) byte {
	x := uint64(page)*0x9E3779B97F4A7C15 + uint64(i)
	return byte(x ^ (x >> 17))
}

// Read implements Device: the latency comes from the model; the data comes
// from (and is verified against) the real store.
func (d *Backed) Read(cpu int, now sim.Time, page core.PageID, distance int64) sim.Time {
	done := d.inner.Read(cpu, now, page, distance)
	if !d.written[page] {
		// Never swapped out: there is no remote image to verify (the slab,
		// if mapped for a neighbour, holds zeros here). A cold fault.
		d.ColdReads.Add(1)
		return done
	}
	if err := d.store.ReadPage(page, d.readBuf); err != nil {
		d.Corrupt.Add(1) // a written page must be readable
		return done
	}
	for _, i := range []int{0, 1, 255, 4095} {
		if d.readBuf[i] != pageByte(page, i) {
			d.Corrupt.Add(1)
			return done
		}
	}
	d.Verified.Add(1)
	return done
}

// Write implements Device.
func (d *Backed) Write(cpu int, now sim.Time, page core.PageID, distance int64) sim.Time {
	done := d.inner.Write(cpu, now, page, distance)
	for _, i := range []int{0, 1, 255, 4095} {
		d.writeBuf[i] = pageByte(page, i)
	}
	if err := d.store.WritePage(page, d.writeBuf); err != nil {
		// Surface store failures loudly: the simulation's correctness story
		// depends on them not happening.
		panic(fmt.Sprintf("storage: backed write of page %d failed: %v", page, err))
	}
	d.written[page] = true
	return done
}

// MeanReadLatency implements Device.
func (d *Backed) MeanReadLatency() sim.Duration { return d.inner.MeanReadLatency() }
