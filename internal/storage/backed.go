package storage

import (
	"fmt"
	"sync/atomic"

	"leap/internal/core"
	"leap/internal/remote"
	"leap/internal/sim"
)

// Backed pairs a latency-model Device with a real remote-memory store: every
// simulated page-out writes an actual page image through the remote.Host
// (slab placement, replication, failover — real bytes), and every simulated
// page-in fetches and verifies it. Page contents are a deterministic
// function of the page number, so verification needs no shadow copy.
//
// Backed makes the simulation end-to-end honest: a run that completes with
// zero corruption has exercised the entire remote-memory substrate under
// the exact access pattern the latency results describe.
type Backed struct {
	inner Device
	store *remote.Host

	// WritebackBacklog, when positive, switches page-out to the store's
	// async ticket engine: writes queue as dirty pages and the doorbell
	// rings (Host.Flush) only when the backlog reaches this bound — the
	// bounded asynchronous eviction-writeback pipeline. Reads of still-dirty
	// pages are served from the queued buffer (read-your-writes), so
	// verification stays exact. Zero keeps the synchronous write-through
	// path.
	WritebackBacklog int

	// Verified counts reads whose contents checked out; ColdReads counts
	// reads of pages never written (initial faults have no remote image;
	// a fresh slab also zero-fills its other pages).
	Verified  atomic.Int64
	ColdReads atomic.Int64
	// Corrupt counts verification failures (must stay zero).
	Corrupt atomic.Int64

	written  map[core.PageID]bool
	writeBuf []byte
	readBuf  []byte
	bufPool  [][]byte
}

// NewBacked wraps inner with the real store.
func NewBacked(inner Device, store *remote.Host) *Backed {
	return &Backed{
		inner:    inner,
		store:    store,
		written:  make(map[core.PageID]bool),
		writeBuf: make([]byte, remote.PageSize),
		readBuf:  make([]byte, remote.PageSize),
	}
}

// Name implements Device.
func (d *Backed) Name() string { return d.inner.Name() + "+backed" }

// pageByte computes the deterministic fill byte for a page/offset pair.
func pageByte(page core.PageID, i int) byte {
	x := uint64(page)*0x9E3779B97F4A7C15 + uint64(i)
	return byte(x ^ (x >> 17))
}

// Read implements Device: the latency comes from the model; the data comes
// from (and is verified against) the real store.
func (d *Backed) Read(cpu int, now sim.Time, page core.PageID, distance int64) sim.Time {
	done := d.inner.Read(cpu, now, page, distance)
	if !d.written[page] {
		// Never swapped out: there is no remote image to verify (the slab,
		// if mapped for a neighbour, holds zeros here). A cold fault.
		d.ColdReads.Add(1)
		return done
	}
	if err := d.store.ReadPage(page, d.readBuf); err != nil {
		d.Corrupt.Add(1) // a written page must be readable
		return done
	}
	for _, i := range []int{0, 1, 255, 4095} {
		if d.readBuf[i] != pageByte(page, i) {
			d.Corrupt.Add(1)
			return done
		}
	}
	d.Verified.Add(1)
	return done
}

// Write implements Device.
func (d *Backed) Write(cpu int, now sim.Time, page core.PageID, distance int64) sim.Time {
	done := d.inner.Write(cpu, now, page, distance)
	d.storeWrite(page)
	return done
}

// storeWrite pushes page's deterministic image into the real store,
// synchronously or through the bounded async pipeline.
func (d *Backed) storeWrite(page core.PageID) {
	for _, i := range []int{0, 1, 255, 4095} {
		d.writeBuf[i] = pageByte(page, i)
	}
	if d.WritebackBacklog > 0 {
		// Async pipeline: the store copies the buffer, so writeBuf is
		// immediately reusable. The ticket's outcome is checked when the
		// bounded backlog forces the doorbell.
		d.store.WritePageAsync(page, d.writeBuf)
		if d.store.PendingWrites() >= d.WritebackBacklog {
			d.flushWriteback()
		}
	} else if err := d.store.WritePage(page, d.writeBuf); err != nil {
		// Surface store failures loudly: the simulation's correctness story
		// depends on them not happening.
		panic(fmt.Sprintf("storage: backed write of page %d failed: %v", page, err))
	}
	d.written[page] = true
}

// flushWriteback rings the store doorbell and surfaces any write failure.
func (d *Backed) flushWriteback() {
	if err := d.store.Flush(); err != nil {
		panic(fmt.Sprintf("storage: backed writeback flush failed: %v", err))
	}
}

// ReadBatch implements BatchDevice: latency comes from the inner device's
// doorbell (or per-op model when the inner device cannot batch); the data
// is fetched through the store's async ticket engine — coalesced, batched
// wire frames — and verified per page.
func (d *Backed) ReadBatch(cpu int, now sim.Time, pages []core.PageID, dists []int64, done []sim.Time) []sim.Time {
	if bd, ok := d.inner.(BatchDevice); ok {
		done = bd.ReadBatch(cpu, now, pages, dists, done)
	} else {
		if cap(done) < len(pages) {
			done = make([]sim.Time, len(pages))
		}
		done = done[:len(pages)]
		for i, page := range pages {
			done[i] = d.inner.Read(cpu, now, page, dists[i])
		}
	}
	tickets := make([]*remote.Ticket, len(pages))
	for i, page := range pages {
		if !d.written[page] {
			d.ColdReads.Add(1)
			continue
		}
		tickets[i] = d.store.ReadPageAsync(page, d.pageBuf(i))
	}
	if err := d.store.Flush(); err != nil {
		// Read tickets carry their own outcome; a flush error here is a
		// failed write left over in the queue.
		panic(fmt.Sprintf("storage: backed batch flush failed: %v", err))
	}
	for i, page := range pages {
		if tickets[i] == nil {
			continue
		}
		buf := d.bufPool[i]
		if tickets[i].Err() != nil {
			d.Corrupt.Add(1)
			continue
		}
		ok := true
		for _, j := range []int{0, 1, 255, 4095} {
			if buf[j] != pageByte(page, j) {
				ok = false
				break
			}
		}
		if ok {
			d.Verified.Add(1)
		} else {
			d.Corrupt.Add(1)
		}
	}
	return done
}

// WriteBatch implements BatchDevice.
func (d *Backed) WriteBatch(cpu int, now sim.Time, pages []core.PageID, dists []int64, done []sim.Time) []sim.Time {
	if bd, ok := d.inner.(BatchDevice); ok {
		done = bd.WriteBatch(cpu, now, pages, dists, done)
	} else {
		if cap(done) < len(pages) {
			done = make([]sim.Time, len(pages))
		}
		done = done[:len(pages)]
		for i, page := range pages {
			done[i] = d.inner.Write(cpu, now, page, dists[i])
		}
	}
	for _, page := range pages {
		d.storeWrite(page)
	}
	return done
}

// pageBuf returns the i-th scratch page buffer, growing the pool on demand.
func (d *Backed) pageBuf(i int) []byte {
	for len(d.bufPool) <= i {
		d.bufPool = append(d.bufPool, make([]byte, remote.PageSize))
	}
	return d.bufPool[i]
}

// FlushWriteback drains any queued async writebacks — call at the end of a
// run so the store holds every page image before final verification.
func (d *Backed) FlushWriteback() {
	if d.WritebackBacklog > 0 {
		d.flushWriteback()
	}
}

// MeanReadLatency implements Device.
func (d *Backed) MeanReadLatency() sim.Duration { return d.inner.MeanReadLatency() }
