// Package control is the self-healing control plane over a live
// remote.Host: a per-agent health monitor / failure detector, an autoscaler,
// and a hot-page replicator, all driven from virtual time so every decision
// replays deterministically.
//
// The recovery primitives themselves (MarkFailed, RepairSlabs,
// MarkRecovered, Rebalance, Retire, PurgeAgent, ReplicateHot) live in
// internal/remote and were previously invoked by hand from tests and
// examples; this package closes the loop. A harness feeds the plane
// per-call observations (ObserveCall, typically from a FaultTransport
// observer) and page-fault frequencies (ObserveRead), then calls Tick on a
// fixed virtual-time cadence; the plane decides, acts on the host, and
// reports every action it took.
//
// The detector's state machine per agent:
//
//	healthy ──p99/err EWMA ≥ suspect──▶ suspect ──≥ fail threshold──▶ failed
//	   ▲                                   │                            │
//	   └──── ClearTicks clean ticks ◀──────┘        MarkFailed +        │
//	   │                                            RepairSlabs         │
//	   └── MarkRecovered + Rebalance ◀── probation (Probe-driven, ◀─────┘
//	                                      flap damping lengthens it)
//
// A suspect agent is hinted slow to the host (reads order away from it and
// hedge onto another acked holder); only a failed agent leaves placement.
// Recovery assumes the agent's memory survived the outage (a slow or
// partitioned agent, the cases the detector can see). An agent that
// restarted empty must go through PurgeAgent before rejoining — that is the
// harness's call to make, because only the harness knows the difference.
package control

import (
	"fmt"
	"slices"
	"sync"

	"leap/internal/core"
	"leap/internal/remote"
	"leap/internal/sim"
)

// DetectorConfig tunes the per-agent failure detector.
type DetectorConfig struct {
	// LatAlpha and ErrAlpha are the EWMA smoothing factors for the per-tick
	// p99 submit latency and the op error rate (defaults 0.3 / 0.3).
	LatAlpha, ErrAlpha float64
	// SuspectLat / FailLat are p99-EWMA thresholds: above SuspectLat an
	// agent turns suspect (hinted slow), above FailLat it is failed.
	SuspectLat, FailLat sim.Duration
	// SuspectErr / FailErr are error-rate-EWMA thresholds in [0,1].
	SuspectErr, FailErr float64
	// ClearTicks is how many consecutive clean ticks a suspect needs to
	// return to healthy (default 3).
	ClearTicks int
	// ProbationTicks is how many consecutive successful probes a failed
	// agent needs to be recovered (default 3). Each prior failure of the
	// same agent adds FlapPenalty ticks — flap damping, so an agent that
	// keeps bouncing pays an ever longer probation.
	ProbationTicks int
	// FlapPenalty is the probation surcharge per prior failure (default 2).
	FlapPenalty int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.LatAlpha <= 0 || c.LatAlpha > 1 {
		c.LatAlpha = 0.3
	}
	if c.ErrAlpha <= 0 || c.ErrAlpha > 1 {
		c.ErrAlpha = 0.3
	}
	if c.ClearTicks <= 0 {
		c.ClearTicks = 3
	}
	if c.ProbationTicks <= 0 {
		c.ProbationTicks = 3
	}
	if c.FlapPenalty < 0 {
		c.FlapPenalty = 2
	}
	return c
}

// ScalerConfig tunes the autoscaler.
type ScalerConfig struct {
	// Min and Max bound the live agent pool. Max 0 (the zero value)
	// disables scale-up entirely — set it explicitly to allow growth.
	// Min 0 defaults to 1.
	Min, Max int
	// HighLat / LowLat are cluster-latency (mean of live agents' p99 EWMA)
	// thresholds: sustained above HighLat grows the pool, sustained below
	// LowLat shrinks it.
	HighLat, LowLat sim.Duration
	// UpTicks / DownTicks are how many consecutive ticks the pressure must
	// persist before acting (defaults 3 / 6 — shrinking is deliberately
	// slower than growing).
	UpTicks, DownTicks int
	// Cooldown is the tick count after any scale action during which the
	// scaler holds still (default 5), so one burst cannot thrash the pool.
	Cooldown int
}

func (c ScalerConfig) withDefaults() ScalerConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.UpTicks <= 0 {
		c.UpTicks = 3
	}
	if c.DownTicks <= 0 {
		c.DownTicks = 6
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5
	}
	return c
}

// Config assembles the control plane.
type Config struct {
	Detector DetectorConfig
	Scaler   ScalerConfig
	// HotK is how many top-fault-frequency pages carry extra read replicas
	// (0 disables hot replication); HotExtra is the number of extra copies
	// per hot page (default 1); HotEvery is the refresh cadence in ticks
	// (default 8).
	HotK, HotExtra, HotEvery int
}

func (c Config) withDefaults() Config {
	c.Detector = c.Detector.withDefaults()
	c.Scaler = c.Scaler.withDefaults()
	if c.HotExtra <= 0 {
		c.HotExtra = 1
	}
	if c.HotEvery <= 0 {
		c.HotEvery = 8
	}
	return c
}

// Hooks connect the plane to its environment.
//
// Provision and Probe are invoked from inside Tick with the plane's internal
// lock held (their answers feed the decision in progress): they may call into
// the host or the harness, but must not call back into Plane methods
// (AgentPhase, LiveAgents, Tick, ...) or they self-deadlock. ObserveCall and
// ObserveRead remain safe from anywhere, including hooks. OnAction is
// delivered after Tick releases the lock, so it may call anything.
type Hooks struct {
	// Provision returns a transport for a brand-new agent when the scaler
	// wants one beyond the already-known pool (nil or returning false
	// disables provisioning; drained agents are reused first).
	Provision func() (remote.Transport, bool)
	// Probe reports whether a failed agent answers again — the recovery
	// signal. Nil means failed agents are never auto-recovered.
	Probe func(agent int) bool
	// OnAction, if set, observes every action a Tick took, in execution
	// order, once the tick's decisions are complete.
	OnAction func(Action)
}

// ActionKind labels one control-plane decision.
type ActionKind uint8

// The actions a Tick can take.
const (
	ActSuspect ActionKind = iota
	ActClear
	ActFail
	ActRecover
	ActScaleUp
	ActScaleDown
	ActHotAdd
	ActHotDrop
)

var actionNames = [...]string{
	ActSuspect:   "suspect",
	ActClear:     "clear",
	ActFail:      "fail",
	ActRecover:   "recover",
	ActScaleUp:   "scale-up",
	ActScaleDown: "scale-down",
	ActHotAdd:    "hot-add",
	ActHotDrop:   "hot-drop",
}

// String names the action kind.
func (k ActionKind) String() string {
	if int(k) < len(actionNames) {
		return actionNames[k]
	}
	return fmt.Sprintf("action(%d)", uint8(k))
}

// Action records one decision the plane acted on: which agent (or page, for
// hot replication) and any error the host returned while executing it.
type Action struct {
	At    sim.Time
	Kind  ActionKind
	Agent int         // -1 for page-scoped actions
	Page  core.PageID // hot actions only
	Err   error       // non-nil when the host-side execution failed
}

// String renders the action compactly.
func (a Action) String() string {
	s := fmt.Sprintf("%v %s", a.At.Sub(0), a.Kind)
	if a.Agent >= 0 {
		s += fmt.Sprintf(" agent=%d", a.Agent)
	}
	if a.Kind == ActHotAdd || a.Kind == ActHotDrop {
		s += fmt.Sprintf(" page=%d", a.Page)
	}
	if a.Err != nil {
		s += fmt.Sprintf(" err=%v", a.Err)
	}
	return s
}

// Phase is an agent's detector state.
type Phase uint8

// Detector phases.
const (
	Healthy Phase = iota
	Suspect
	Failed
	Drained // scaled down; parked for reuse
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	case Drained:
		return "drained"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// agentState is the detector's per-agent memory.
type agentState struct {
	phase   Phase
	latEWMA float64 // p99 submit latency EWMA, in virtual ns
	errEWMA float64 // op error rate EWMA in [0,1]
	// loadEWMA smooths calls-per-tick — the queue-depth proxy the scaler
	// and tests can inspect.
	loadEWMA float64

	cleanStreak int // suspect → healthy progress
	probeStreak int // failed → recovered progress
	flaps       int // times this agent has been failed (damping input)
}

// agentObs accumulates one agent's raw observations between ticks. Guarded
// by Plane.obsMu, never Plane.mu — so transport observers can feed the
// plane even while Tick is mid-repair on the host (repair traffic flows
// through the same observed transports).
type agentObs struct {
	samples []sim.Duration
	calls   int
	errs    int
}

// Plane is the control loop instance. Feed it observations from any
// goroutine; run Tick from one place (typically the virtual-time event
// loop). Safe for concurrent use.
type Plane struct {
	cfg   Config
	hooks Hooks
	host  *remote.Host

	// obsMu guards only the raw observation accumulators; it is never held
	// across host calls or hooks, and mu is never acquired under it.
	obsMu    sync.Mutex
	obs      []*agentObs
	hotCount map[core.PageID]int

	mu                   sync.Mutex
	agents               []*agentState
	ticks                int
	cool                 int // scaler cooldown remaining
	upStreak, downStreak int

	hotCur map[core.PageID]bool
}

// New builds a control plane over host, which must already have its initial
// agents attached.
func New(cfg Config, host *remote.Host, hooks Hooks) *Plane {
	cfg = cfg.withDefaults()
	p := &Plane{
		cfg:      cfg,
		hooks:    hooks,
		host:     host,
		hotCount: make(map[core.PageID]int),
		hotCur:   make(map[core.PageID]bool),
	}
	for i := 0; i < host.Agents(); i++ {
		p.agents = append(p.agents, &agentState{})
		p.obs = append(p.obs, &agentObs{})
	}
	return p
}

// ObserveCall records one transport call against agent: its virtual-time
// latency and whether it failed. Harnesses typically wire this to the
// FaultTransport observer.
func (p *Plane) ObserveCall(agent int, lat sim.Duration, failed bool) {
	p.obsMu.Lock()
	defer p.obsMu.Unlock()
	if agent < 0 || agent >= len(p.obs) {
		return
	}
	o := p.obs[agent]
	o.calls++
	if failed {
		o.errs++
	}
	o.samples = append(o.samples, lat)
}

// ObserveRead records one page fault served remotely — the hot-page
// frequency feed.
func (p *Plane) ObserveRead(page core.PageID) {
	p.obsMu.Lock()
	defer p.obsMu.Unlock()
	p.hotCount[page]++
}

// AgentPhase reports the detector phase of agent idx (Healthy for unknown
// indices).
func (p *Plane) AgentPhase(idx int) Phase {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx < 0 || idx >= len(p.agents) {
		return Healthy
	}
	return p.agents[idx].phase
}

// Phases reports every agent's detector phase, indexed by agent.
func (p *Plane) Phases() []Phase {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Phase, len(p.agents))
	for i, st := range p.agents {
		out[i] = st.phase
	}
	return out
}

// HotPages reports the pages currently carrying control-plane hot replicas,
// sorted.
func (p *Plane) HotPages() []core.PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]core.PageID, 0, len(p.hotCur))
	for page := range p.hotCur {
		out = append(out, page)
	}
	slices.Sort(out)
	return out
}

// LiveAgents reports how many agents are currently serving (healthy or
// suspect — failed and drained agents are out of rotation).
func (p *Plane) LiveAgents() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.liveLocked()
}

func (p *Plane) liveLocked() int {
	n := 0
	for _, st := range p.agents {
		if st.phase == Healthy || st.phase == Suspect {
			n++
		}
	}
	return n
}

// Tick advances the control loop one step at virtual time now: it folds the
// tick's observations into the per-agent EWMAs, walks the detector state
// machine, runs the autoscaler, and refreshes hot-page replicas. It returns
// the actions taken this tick, in execution order.
func (p *Plane) Tick(now sim.Time) []Action {
	p.mu.Lock()
	p.ticks++
	var acts []Action
	emit := func(a Action) {
		a.At = now
		acts = append(acts, a)
	}

	p.foldTickStats()
	p.detect(emit)
	p.scale(emit)
	if p.cfg.HotK > 0 && p.ticks%p.cfg.HotEvery == 0 {
		p.refreshHot(emit)
	}
	p.mu.Unlock()

	// OnAction runs outside the lock so the hook may call back into the
	// plane (AgentPhase, LiveAgents, ...) without deadlocking.
	if p.hooks.OnAction != nil {
		for _, a := range acts {
			p.hooks.OnAction(a)
		}
	}
	return acts
}

// foldTickStats merges the tick's raw samples into the EWMAs and resets the
// accumulators. Callers hold p.mu (not obsMu).
func (p *Plane) foldTickStats() {
	d := p.cfg.Detector
	p.obsMu.Lock()
	for len(p.obs) < len(p.agents) {
		p.obs = append(p.obs, &agentObs{})
	}
	ticks := make([]agentObs, len(p.agents))
	for i, o := range p.obs[:len(p.agents)] {
		ticks[i] = agentObs{samples: o.samples, calls: o.calls, errs: o.errs}
		o.samples, o.calls, o.errs = nil, 0, 0
	}
	p.obsMu.Unlock()

	for i, st := range p.agents {
		o := ticks[i]
		st.loadEWMA = d.LatAlpha*float64(o.calls) + (1-d.LatAlpha)*st.loadEWMA
		if o.calls > 0 {
			slices.Sort(o.samples)
			p99 := o.samples[(len(o.samples)*99+99)/100-1]
			errRate := float64(o.errs) / float64(o.calls)
			st.latEWMA = d.LatAlpha*float64(p99) + (1-d.LatAlpha)*st.latEWMA
			st.errEWMA = d.ErrAlpha*errRate + (1-d.ErrAlpha)*st.errEWMA
		}
	}
}

// detect walks the per-agent state machine. Callers hold p.mu.
func (p *Plane) detect(emit func(Action)) {
	d := p.cfg.Detector
	for idx, st := range p.agents {
		switch st.phase {
		case Healthy:
			if p.overThreshold(st, d.SuspectLat, d.SuspectErr) {
				st.phase = Suspect
				st.cleanStreak = 0
				err := p.host.SetAgentSlow(idx, true)
				emit(Action{Kind: ActSuspect, Agent: idx, Err: err})
			}
			// A healthy agent can degrade straight past the fail bar in one
			// tick; fall through to the suspect check next tick rather than
			// double-transitioning now — one step per tick keeps every
			// transition observable and damped.
		case Suspect:
			if p.overThreshold(st, d.FailLat, d.FailErr) {
				st.phase = Failed
				st.flaps++
				st.probeStreak = 0
				err := p.host.MarkFailed(idx)
				if err == nil {
					_, err = p.host.RepairSlabs()
				}
				emit(Action{Kind: ActFail, Agent: idx, Err: err})
				break
			}
			if !p.overThreshold(st, d.SuspectLat, d.SuspectErr) {
				st.cleanStreak++
				if st.cleanStreak >= d.ClearTicks {
					st.phase = Healthy
					err := p.host.SetAgentSlow(idx, false)
					emit(Action{Kind: ActClear, Agent: idx, Err: err})
				}
			} else {
				st.cleanStreak = 0
			}
		case Failed:
			if p.hooks.Probe == nil {
				break
			}
			if p.hooks.Probe(idx) {
				st.probeStreak++
			} else {
				st.probeStreak = 0
			}
			need := d.ProbationTicks + d.FlapPenalty*(st.flaps-1)
			if st.probeStreak >= need {
				st.phase = Healthy
				st.latEWMA, st.errEWMA, st.cleanStreak = 0, 0, 0
				err := p.host.MarkRecovered(idx)
				if err == nil {
					err = p.host.SetAgentSlow(idx, false)
				}
				if err == nil {
					// Rebalance moves the agent's rendezvous share back onto
					// it with fresh copies, so its (possibly stale) survivors
					// of the outage are never read.
					_, err = p.host.Rebalance()
				}
				emit(Action{Kind: ActRecover, Agent: idx, Err: err})
			}
		}
	}
}

// overThreshold reports whether an agent's EWMAs breach the given bars.
// A zero bar is disabled. Callers hold p.mu.
func (p *Plane) overThreshold(st *agentState, lat sim.Duration, errRate float64) bool {
	if lat > 0 && st.latEWMA >= float64(lat) {
		return true
	}
	return errRate > 0 && st.errEWMA >= errRate
}

// scale runs the autoscaler: sustained pressure grows the pool (reusing
// drained agents before provisioning new ones), sustained idleness drains
// the highest-indexed live agent. Callers hold p.mu.
func (p *Plane) scale(emit func(Action)) {
	s := p.cfg.Scaler
	if s.HighLat == 0 && s.LowLat == 0 {
		return
	}
	if p.cool > 0 {
		p.cool--
		return
	}
	live, sum := 0, 0.0
	for _, st := range p.agents {
		if st.phase == Healthy || st.phase == Suspect {
			live++
			sum += st.latEWMA
		}
	}
	if live == 0 {
		return
	}
	avg := sum / float64(live)

	if s.HighLat > 0 && avg >= float64(s.HighLat) && live < s.Max {
		p.upStreak++
		p.downStreak = 0
		if p.upStreak >= s.UpTicks {
			p.scaleUp(emit)
		}
		return
	}
	if s.LowLat > 0 && avg < float64(s.LowLat) && live > s.Min {
		p.downStreak++
		p.upStreak = 0
		if p.downStreak >= s.DownTicks {
			p.scaleDown(emit)
		}
		return
	}
	p.upStreak, p.downStreak = 0, 0
}

// scaleUp adds capacity: reinstate the lowest-indexed drained agent, or
// provision a brand-new one. Callers hold p.mu.
func (p *Plane) scaleUp(emit func(Action)) {
	for idx, st := range p.agents {
		if st.phase != Drained {
			continue
		}
		err := p.host.Reinstate(idx)
		if err == nil {
			_, err = p.host.Rebalance()
		}
		if err == nil {
			st.phase = Healthy
			st.latEWMA, st.errEWMA = 0, 0
			p.upStreak, p.downStreak, p.cool = 0, 0, p.cfg.Scaler.Cooldown
		}
		emit(Action{Kind: ActScaleUp, Agent: idx, Err: err})
		return
	}
	if p.hooks.Provision == nil {
		return
	}
	tr, ok := p.hooks.Provision()
	if !ok {
		return
	}
	idx := p.host.AddAgent(tr)
	for len(p.agents) <= idx {
		p.agents = append(p.agents, &agentState{})
	}
	p.obsMu.Lock()
	for len(p.obs) < len(p.agents) {
		p.obs = append(p.obs, &agentObs{})
	}
	p.obsMu.Unlock()
	_, err := p.host.Rebalance()
	p.upStreak, p.downStreak, p.cool = 0, 0, p.cfg.Scaler.Cooldown
	emit(Action{Kind: ActScaleUp, Agent: idx, Err: err})
}

// scaleDown drains the highest-indexed live agent: Retire (leave the
// rendezvous ranking while staying a live copy source) → Rebalance (migrate
// its share away) → PurgeAgent (drop the now-redundant bookkeeping). A
// rebalance failure rolls the drain back with Reinstate. Callers hold p.mu.
func (p *Plane) scaleDown(emit func(Action)) {
	victim := -1
	for idx, st := range p.agents {
		if st.phase == Healthy || st.phase == Suspect {
			victim = idx
		}
	}
	if victim < 0 {
		return
	}
	st := p.agents[victim]
	err := p.host.Retire(victim)
	if err == nil {
		if _, err = p.host.Rebalance(); err != nil {
			// Mid-drain failure: the agent still holds everything it held;
			// put it back in the ranking and try again another tick.
			_ = p.host.Reinstate(victim)
		}
	}
	if err == nil {
		_, err = p.host.PurgeAgent(victim)
	}
	if err == nil {
		st.phase = Drained
		st.latEWMA, st.errEWMA = 0, 0
		_ = p.host.SetAgentSlow(victim, false)
		p.upStreak, p.downStreak, p.cool = 0, 0, p.cfg.Scaler.Cooldown
	}
	emit(Action{Kind: ActScaleDown, Agent: victim, Err: err})
}

// refreshHot recomputes the top-K fault-frequency pages and converges the
// host's hot replica set onto them, then decays the counters so the ranking
// tracks the recent past. Callers hold p.mu.
func (p *Plane) refreshHot(emit func(Action)) {
	type pc struct {
		page  core.PageID
		count int
	}
	p.obsMu.Lock()
	ranked := make([]pc, 0, len(p.hotCount))
	for page, n := range p.hotCount {
		if n >= 2 { // a single fault is noise, not heat
			ranked = append(ranked, pc{page, n})
		}
	}
	for page, n := range p.hotCount {
		if n >>= 1; n == 0 {
			delete(p.hotCount, page)
		} else {
			p.hotCount[page] = n
		}
	}
	p.obsMu.Unlock()
	slices.SortFunc(ranked, func(a, b pc) int {
		switch {
		case a.count > b.count:
			return -1
		case a.count < b.count:
			return 1
		case a.page < b.page:
			return -1
		case a.page > b.page:
			return 1
		}
		return 0
	})
	if len(ranked) > p.cfg.HotK {
		ranked = ranked[:p.cfg.HotK]
	}
	want := make(map[core.PageID]bool, len(ranked))
	for _, e := range ranked {
		want[e.page] = true
	}

	// Demote pages that cooled off (sorted for determinism)...
	var drop []core.PageID
	for page := range p.hotCur {
		if !want[page] {
			drop = append(drop, page)
		}
	}
	slices.Sort(drop)
	for _, page := range drop {
		if !p.host.DropHot(page) {
			// The hot holders carry the only certified copy and the placement
			// could not take it back yet (replicas down or a write in
			// flight): keep the page hot and retry next refresh.
			continue
		}
		delete(p.hotCur, page)
		emit(Action{Kind: ActHotDrop, Agent: -1, Page: page})
	}
	// ...then promote the newly hot, in rank order.
	for _, e := range ranked {
		if p.hotCur[e.page] {
			continue
		}
		added, err := p.host.ReplicateHot(e.page, p.cfg.HotExtra)
		if err == nil && added == 0 {
			continue // no certifiable source or no spare agent; retry later
		}
		if err == nil {
			p.hotCur[e.page] = true
		}
		emit(Action{Kind: ActHotAdd, Agent: -1, Page: e.page, Err: err})
	}
}
