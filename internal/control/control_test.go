package control

import (
	"errors"
	"sync"
	"testing"

	"leap/internal/core"
	"leap/internal/remote"
	"leap/internal/sim"
)

// testCluster wires a host over in-proc agents behind fault injectors, the
// shape every harness uses.
type testCluster struct {
	host   *remote.Host
	faults []*remote.FaultTransport
	rng    *sim.RNG
}

func newTestCluster(t *testing.T, agents int, cfg remote.HostConfig) *testCluster {
	t.Helper()
	rng := sim.NewRNG(0xC0117801)
	c := &testCluster{rng: rng}
	var trs []remote.Transport
	for i := 0; i < agents; i++ {
		ft := remote.NewFaultTransport(i, remote.NewInProc(remote.NewAgent(64, 0)), rng.Fork(uint64(i)))
		c.faults = append(c.faults, ft)
		trs = append(trs, ft)
	}
	h, err := remote.NewHost(cfg, trs)
	if err != nil {
		t.Fatal(err)
	}
	c.host = h
	return c
}

func (c *testCluster) addAgent() *remote.FaultTransport {
	i := len(c.faults)
	ft := remote.NewFaultTransport(i, remote.NewInProc(remote.NewAgent(64, 0)), c.rng.Fork(uint64(0x1000+i)))
	c.faults = append(c.faults, ft)
	return ft
}

func fill(t *testing.T, h *remote.Host, pages int) [][]byte {
	t.Helper()
	data := make([][]byte, pages)
	buf := make([]byte, remote.PageSize)
	for p := 0; p < pages; p++ {
		for i := range buf {
			buf[i] = byte(p + i)
		}
		data[p] = append([]byte(nil), buf...)
		if err := h.WritePage(core.PageID(p), buf); err != nil {
			t.Fatalf("write page %d: %v", p, err)
		}
	}
	return data
}

func checkAll(t *testing.T, h *remote.Host, data [][]byte) {
	t.Helper()
	buf := make([]byte, remote.PageSize)
	for p := range data {
		if err := h.ReadPage(core.PageID(p), buf); err != nil {
			t.Fatalf("read page %d: %v", p, err)
		}
		if string(buf) != string(data[p]) {
			t.Fatalf("page %d bytes diverged", p)
		}
	}
}

// feed pushes n synthetic call observations at the given latency/error mix.
func feed(p *Plane, agent, n int, lat sim.Duration, errEvery int) {
	for i := 0; i < n; i++ {
		failed := errEvery > 0 && i%errEvery == 0
		p.ObserveCall(agent, lat, failed)
	}
}

func detectorPlane(c *testCluster, hooks Hooks) *Plane {
	return New(Config{
		Detector: DetectorConfig{
			SuspectLat: 100 * sim.Microsecond,
			FailLat:    400 * sim.Microsecond,
			SuspectErr: 0.3,
			FailErr:    0.8,
			ClearTicks: 2,
		},
	}, c.host, hooks)
}

// TestDetectorSuspectFailRecover walks one agent through the full state
// machine and checks the host-side effects at each step.
func TestDetectorSuspectFailRecover(t *testing.T) {
	c := newTestCluster(t, 4, remote.HostConfig{SlabPages: 8, Replicas: 2, Seed: 42})
	data := fill(t, c.host, 64)

	healthy := true
	p := detectorPlane(c, Hooks{Probe: func(int) bool { return healthy }})

	// Healthy traffic on every agent.
	now := sim.Time(0)
	tick := func() []Action { now = now.Add(sim.Millisecond); return p.Tick(now) }
	for i := 0; i < 3; i++ {
		for a := 0; a < 4; a++ {
			feed(p, a, 20, 5*sim.Microsecond, 0)
		}
		if acts := tick(); len(acts) != 0 {
			t.Fatalf("healthy traffic produced actions: %v", acts)
		}
	}

	// Agent 2 turns slow: suspect, and the host learns the hint.
	for i := 0; i < 4; i++ {
		for a := 0; a < 4; a++ {
			lat := 5 * sim.Microsecond
			if a == 2 {
				lat = 300 * sim.Microsecond
			}
			feed(p, a, 20, lat, 0)
		}
		tick()
	}
	if got := p.AgentPhase(2); got != Suspect {
		t.Fatalf("phase = %v, want suspect", got)
	}
	if slow := c.host.SlowAgents(); len(slow) != 1 || slow[0] != 2 {
		t.Fatalf("SlowAgents = %v, want [2]", slow)
	}

	// Now it degrades to outright failure: the plane must MarkFailed and
	// repair replication on its own.
	healthy = false
	for i := 0; i < 6 && p.AgentPhase(2) != Failed; i++ {
		feed(p, 2, 20, 2*sim.Millisecond, 1)
		tick()
	}
	if got := p.AgentPhase(2); got != Failed {
		t.Fatalf("phase = %v, want failed", got)
	}
	if got := c.host.FailedAgents(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FailedAgents = %v, want [2]", got)
	}
	if n := c.host.UnderReplicated(); n != 0 {
		t.Fatalf("UnderReplicated = %d after automatic repair", n)
	}
	checkAll(t, c.host, data)

	// Probes pass again: probation runs its course and the agent rejoins.
	healthy = true
	for i := 0; i < 10 && p.AgentPhase(2) != Healthy; i++ {
		tick()
	}
	if got := p.AgentPhase(2); got != Healthy {
		t.Fatalf("phase = %v, want healthy after probation", got)
	}
	if got := c.host.FailedAgents(); len(got) != 0 {
		t.Fatalf("FailedAgents = %v after recovery", got)
	}
	if slow := c.host.SlowAgents(); len(slow) != 0 {
		t.Fatalf("SlowAgents = %v after recovery", slow)
	}
	checkAll(t, c.host, data)
}

// TestDetectorFlapDamping verifies a flapping agent pays a longer probation
// each round.
func TestDetectorFlapDamping(t *testing.T) {
	c := newTestCluster(t, 3, remote.HostConfig{SlabPages: 8, Replicas: 2, Seed: 7})
	fill(t, c.host, 32)

	p := New(Config{
		Detector: DetectorConfig{
			SuspectErr:     0.3,
			FailErr:        0.6,
			ClearTicks:     2,
			ProbationTicks: 2,
			FlapPenalty:    3,
		},
	}, c.host, Hooks{Probe: func(int) bool { return true }})

	now := sim.Time(0)
	failOnce := func() int {
		for i := 0; i < 10 && p.AgentPhase(1) != Failed; i++ {
			feed(p, 1, 10, sim.Microsecond, 1) // 100% errors
			now = now.Add(sim.Millisecond)
			p.Tick(now)
		}
		if p.AgentPhase(1) != Failed {
			t.Fatal("agent 1 never failed")
		}
		ticks := 0
		for i := 0; i < 50 && p.AgentPhase(1) != Healthy; i++ {
			now = now.Add(sim.Millisecond)
			p.Tick(now)
			ticks++
		}
		if p.AgentPhase(1) != Healthy {
			t.Fatal("agent 1 never recovered")
		}
		return ticks
	}
	first := failOnce()
	second := failOnce()
	if second <= first {
		t.Fatalf("probation did not lengthen on flap: first %d ticks, second %d", first, second)
	}
}

// TestAutoscalerGrowsAndShrinks drives the load EWMA across the thresholds
// and expects AddAgent-with-rebalance up, drain-purge down, with the pool
// bounded and the drained agent reused before provisioning.
func TestAutoscalerGrowsAndShrinks(t *testing.T) {
	c := newTestCluster(t, 2, remote.HostConfig{SlabPages: 8, Replicas: 2, Seed: 9})
	data := fill(t, c.host, 64)

	provisioned := 0
	p := New(Config{
		Scaler: ScalerConfig{
			Min: 2, Max: 4,
			HighLat: 50 * sim.Microsecond, LowLat: 10 * sim.Microsecond,
			UpTicks: 2, DownTicks: 3, Cooldown: 1,
		},
	}, c.host, Hooks{Provision: func() (remote.Transport, bool) {
		provisioned++
		return c.addAgent(), true
	}})

	now := sim.Time(0)
	live := func() int { return p.LiveAgents() }

	// Pressure: all live agents run hot.
	for i := 0; i < 20 && live() < 4; i++ {
		for a := 0; a < c.host.Agents(); a++ {
			feed(p, a, 20, 200*sim.Microsecond, 0)
		}
		now = now.Add(sim.Millisecond)
		p.Tick(now)
	}
	if got := live(); got != 4 {
		t.Fatalf("live = %d after sustained pressure, want 4 (max)", got)
	}
	if provisioned != 2 {
		t.Fatalf("provisioned %d agents, want 2", provisioned)
	}
	checkAll(t, c.host, data)

	// Idle: the pool drains back to Min, one agent per cooldown window.
	for i := 0; i < 60 && live() > 2; i++ {
		for a := 0; a < c.host.Agents(); a++ {
			feed(p, a, 5, sim.Microsecond, 0)
		}
		now = now.Add(sim.Millisecond)
		p.Tick(now)
	}
	if got := live(); got != 2 {
		t.Fatalf("live = %d after sustained idle, want 2 (min)", got)
	}
	if got := p.AgentPhase(3); got != Drained {
		t.Fatalf("agent 3 phase = %v, want drained", got)
	}
	checkAll(t, c.host, data)

	// Pressure again: the drained agents are reinstated, not re-provisioned.
	for i := 0; i < 20 && live() < 4; i++ {
		for a := 0; a < c.host.Agents(); a++ {
			feed(p, a, 20, 200*sim.Microsecond, 0)
		}
		now = now.Add(sim.Millisecond)
		p.Tick(now)
	}
	if got := live(); got != 4 {
		t.Fatalf("live = %d after renewed pressure, want 4", got)
	}
	if provisioned != 2 {
		t.Fatalf("provisioned %d agents total, want 2 (drained agents must be reused)", provisioned)
	}
	checkAll(t, c.host, data)
}

// TestHotPageReplication feeds a skewed read mix and expects the top pages
// to gain extra acked holders, then cool off and lose them.
func TestHotPageReplication(t *testing.T) {
	c := newTestCluster(t, 4, remote.HostConfig{SlabPages: 8, Replicas: 2, Seed: 11})
	data := fill(t, c.host, 64)

	p := New(Config{HotK: 2, HotExtra: 1, HotEvery: 2}, c.host, Hooks{})

	now := sim.Time(0)
	for i := 0; i < 4; i++ {
		for j := 0; j < 50; j++ {
			p.ObserveRead(3)
			p.ObserveRead(17)
		}
		p.ObserveRead(core.PageID(20 + i))
		now = now.Add(sim.Millisecond)
		p.Tick(now)
	}
	hot := c.host.HotPages()
	if len(hot) != 2 || hot[0] != 3 || hot[1] != 17 {
		t.Fatalf("HotPages = %v, want [3 17]", hot)
	}
	for _, page := range hot {
		holders := c.host.HotHolders(page)
		if len(holders) != 1 {
			t.Fatalf("page %d hot holders = %v, want one extra", page, holders)
		}
		acked := c.host.AckedReplicas(page)
		found := false
		for _, idx := range acked {
			if idx == holders[0] {
				found = true
			}
		}
		if !found {
			t.Fatalf("page %d hot holder %d not in acked set %v", page, holders[0], acked)
		}
	}
	checkAll(t, c.host, data)

	// The heat dies down; decay must demote both pages.
	for i := 0; i < 16 && len(c.host.HotPages()) > 0; i++ {
		now = now.Add(sim.Millisecond)
		p.Tick(now)
	}
	if hot := c.host.HotPages(); len(hot) != 0 {
		t.Fatalf("HotPages = %v after cool-off, want none", hot)
	}
	checkAll(t, c.host, data)
}

// TestActionStream checks actions carry the right kinds in order and reach
// the OnAction hook.
func TestActionStream(t *testing.T) {
	c := newTestCluster(t, 3, remote.HostConfig{SlabPages: 8, Replicas: 2, Seed: 13})
	fill(t, c.host, 32)

	var streamed []Action
	p := detectorPlane(c, Hooks{OnAction: func(a Action) { streamed = append(streamed, a) }})

	var all []Action
	now := sim.Time(0)
	for i := 0; i < 8; i++ {
		feed(p, 0, 20, 2*sim.Millisecond, 0)
		now = now.Add(sim.Millisecond)
		all = append(all, p.Tick(now)...)
	}
	if len(all) < 2 {
		t.Fatalf("actions = %v, want suspect then fail", all)
	}
	if all[0].Kind != ActSuspect || all[0].Agent != 0 {
		t.Fatalf("first action %v, want suspect agent 0", all[0])
	}
	sawFail := false
	for _, a := range all {
		if a.Kind == ActFail && a.Agent == 0 {
			sawFail = true
		}
		if a.Err != nil {
			t.Fatalf("action %v carried host error", a)
		}
	}
	if !sawFail {
		t.Fatalf("no fail action in %v", all)
	}
	if len(streamed) != len(all) {
		t.Fatalf("OnAction saw %d actions, Tick returned %d", len(streamed), len(all))
	}
}

// TestObserveDuringTick exercises the observer path concurrently with ticks
// under -race: transport observers keep feeding while the plane repairs.
func TestObserveDuringTick(t *testing.T) {
	c := newTestCluster(t, 4, remote.HostConfig{SlabPages: 8, Replicas: 2, Seed: 17})
	fill(t, c.host, 64)

	p := detectorPlane(c, Hooks{Probe: func(int) bool { return true }})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lat := sim.Duration(i%50) * sim.Microsecond
				if g == 3 {
					lat = 2 * sim.Millisecond
				}
				p.ObserveCall(g, lat, g == 3 && i%2 == 0)
				p.ObserveRead(core.PageID(i % 64))
			}
		}(g)
	}
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		now = now.Add(sim.Millisecond)
		p.Tick(now)
	}
	close(stop)
	wg.Wait()
}

// TestOnActionReentrant: OnAction is delivered after Tick releases the
// plane's lock, so the hook may call back into Plane accessors without
// deadlocking.
func TestOnActionReentrant(t *testing.T) {
	c := newTestCluster(t, 3, remote.HostConfig{SlabPages: 8, Replicas: 2, Seed: 13})
	fill(t, c.host, 32)

	var phases []Phase
	var p *Plane
	p = detectorPlane(c, Hooks{OnAction: func(a Action) {
		// Both of these take p.mu; they deadlock if OnAction still runs
		// under the tick's lock.
		phases = append(phases, p.AgentPhase(a.Agent))
		_ = p.LiveAgents()
	}})

	now := sim.Time(0)
	for i := 0; i < 8; i++ {
		feed(p, 0, 20, 2*sim.Millisecond, 0)
		now = now.Add(sim.Millisecond)
		p.Tick(now)
	}
	if len(phases) == 0 {
		t.Fatal("no actions reached the hook")
	}
	if phases[0] != Suspect {
		t.Fatalf("phase seen by hook after first action = %v, want suspect", phases[0])
	}
}

// TestScalerMaxZeroDisablesScaleUp pins the documented zero-value semantics:
// with Max left 0, sustained pressure must never grow the pool, even with a
// Provision hook wired.
func TestScalerMaxZeroDisablesScaleUp(t *testing.T) {
	c := newTestCluster(t, 2, remote.HostConfig{SlabPages: 8, Replicas: 2, Seed: 9})
	fill(t, c.host, 32)

	provisioned := 0
	p := New(Config{
		Scaler: ScalerConfig{
			HighLat: 50 * sim.Microsecond,
			UpTicks: 2, Cooldown: 1,
		},
	}, c.host, Hooks{Provision: func() (remote.Transport, bool) {
		provisioned++
		return c.addAgent(), true
	}})

	now := sim.Time(0)
	for i := 0; i < 20; i++ {
		for a := 0; a < c.host.Agents(); a++ {
			feed(p, a, 20, 200*sim.Microsecond, 0)
		}
		now = now.Add(sim.Millisecond)
		p.Tick(now)
	}
	if provisioned != 0 {
		t.Fatalf("provisioned %d agents with Max=0, want 0", provisioned)
	}
	if got := p.LiveAgents(); got != 2 {
		t.Fatalf("live = %d with Max=0, want 2", got)
	}
}

// TestActionString pins the rendering used by harness logs.
func TestActionString(t *testing.T) {
	a := Action{At: sim.Time(3 * sim.Millisecond), Kind: ActFail, Agent: 2}
	if got := a.String(); got != "3.00ms fail agent=2" {
		t.Fatalf("String() = %q", got)
	}
	b := Action{At: 0, Kind: ActHotAdd, Agent: -1, Page: 17, Err: errors.New("boom")}
	if got := b.String(); got != "0ns hot-add page=17 err=boom" {
		t.Fatalf("String() = %q", got)
	}
}
