package vfs

import (
	"fmt"
	"sort"
	"sync"

	"leap/internal/core"
	"leap/internal/sim"
)

// File is a byte-addressable remote file backed by the simulated FS: reads
// and writes are split into 4KB-page operations that flow through the VFS
// cache, prefetcher, and data path, accumulating the same latency the
// paper's Remote Regions measurements capture. Files give the D-VFS engine
// the actual file abstraction (open/read/write at offsets) instead of raw
// page numbers.
type File struct {
	fs     *FS
	name   string
	base   core.PageID // first page of this file's extent
	pages  int64
	size   int64 // logical size in bytes (high-water mark of writes)
	pid    PID
	closed bool
}

// PageSize is the fixed filesystem block size.
const PageSize = 4096

// Namespace allocates non-overlapping page extents to named files on one
// FS. Safe for concurrent use; the FS itself remains single-goroutine.
type Namespace struct {
	mu    sync.Mutex
	fs    *FS
	next  core.PageID
	files map[string]*File
}

// NewNamespace returns an empty file namespace over fs.
func NewNamespace(fs *FS) *Namespace {
	return &Namespace{fs: fs, files: make(map[string]*File)}
}

// Create allocates a file with capacity for sizePages pages. Creating an
// existing name returns the existing file (contents preserved).
func (ns *Namespace) Create(name string, sizePages int64, pid PID) (*File, error) {
	if sizePages <= 0 {
		return nil, fmt.Errorf("vfs: file %q with %d pages", name, sizePages)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if f, ok := ns.files[name]; ok {
		return f, nil
	}
	f := &File{
		fs:    ns.fs,
		name:  name,
		base:  ns.next,
		pages: sizePages,
		pid:   pid,
	}
	ns.next += core.PageID(sizePages)
	ns.files[name] = f
	return f, nil
}

// Open looks up an existing file.
func (ns *Namespace) Open(name string) (*File, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	f, ok := ns.files[name]
	return f, ok
}

// Remove deletes a file from the namespace (its extent is not reused).
func (ns *Namespace) Remove(name string) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	delete(ns.files, name)
}

// Names lists files in sorted order.
func (ns *Namespace) Names() []string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make([]string, 0, len(ns.files))
	for n := range ns.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name reports the file's name.
func (f *File) Name() string { return f.name }

// Size reports the logical size in bytes (the high-water mark of writes).
func (f *File) Size() int64 { return f.size }

// Capacity reports the allocated capacity in bytes.
func (f *File) Capacity() int64 { return f.pages * PageSize }

// Close marks the file closed; further I/O fails.
func (f *File) Close() error {
	f.closed = true
	return nil
}

// pageRange maps a byte range to the pages it touches.
func (f *File) pageRange(off, n int64) (first, last core.PageID, err error) {
	if f.closed {
		return 0, 0, fmt.Errorf("vfs: %s is closed", f.name)
	}
	if off < 0 || n < 0 {
		return 0, 0, fmt.Errorf("vfs: negative offset/length on %s", f.name)
	}
	if off+n > f.Capacity() {
		return 0, 0, fmt.Errorf("vfs: I/O beyond %s capacity (%d+%d > %d)",
			f.name, off, n, f.Capacity())
	}
	first = f.base + core.PageID(off/PageSize)
	if n == 0 {
		return first, first - 1, nil // empty range
	}
	last = f.base + core.PageID((off+n-1)/PageSize)
	return first, last, nil
}

// ReadAt simulates reading n bytes at offset off and returns the total
// virtual-time latency the caller observed. The per-access think time is
// charged once per page.
func (f *File) ReadAt(off, n int64, think sim.Duration) (sim.Duration, error) {
	first, last, err := f.pageRange(off, n)
	if err != nil {
		return 0, err
	}
	var total sim.Duration
	for p := first; p <= last; p++ {
		total += f.fs.Read(f.pid, p, think)
	}
	return total, nil
}

// WriteAt simulates writing n bytes at offset off and returns the observed
// latency. Writes are buffered (write-behind) like the engine's Write.
func (f *File) WriteAt(off, n int64, think sim.Duration) (sim.Duration, error) {
	first, last, err := f.pageRange(off, n)
	if err != nil {
		return 0, err
	}
	var total sim.Duration
	for p := first; p <= last; p++ {
		total += f.fs.Write(f.pid, p, think)
	}
	if off+n > f.size {
		f.size = off + n
	}
	return total, nil
}
