// Package vfs simulates the disaggregated virtual-file-system path of
// Remote Regions [ATC'18]: remote memory exposed as files, with page-granular
// reads and writes flowing through a VFS cache. It mirrors internal/vmm's
// latency composition — the same data path (legacy or lean), page cache and
// prefetcher — but with file semantics: no residency limit or swap-out;
// every read is a cache lookup, every write is buffered and flushed to the
// remote store asynchronously.
//
// This is the engine behind the D-VFS series of Figures 2 and 7.
package vfs

import (
	"container/heap"
	"fmt"

	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/metrics"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/rdma"
	"leap/internal/sim"
	"leap/internal/storage"
)

// PID aliases prefetch.PID.
type PID = prefetch.PID

// Config parameterizes the simulated file system.
type Config struct {
	// Path selects legacy (block layer) or lean I/O.
	Path datapath.Config
	// CachePolicy and CacheCapacity configure the VFS cache.
	CachePolicy   pagecache.Policy
	CacheCapacity int
	// Prefetcher is consulted on reads; nil means none.
	Prefetcher prefetch.Prefetcher
	// Device is the backing store; nil defaults to remote memory.
	Device storage.Device
	// Seed drives the stochastic latency models.
	Seed uint64
}

// arrival tracks an in-flight prefetch.
type arrival struct {
	page core.PageID
	at   sim.Time
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int            { return len(h) }
func (h arrivalHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// FS is the simulated remote file system. Not safe for concurrent use.
type FS struct {
	cfg   Config
	clock sim.Clock
	path  *datapath.Path
	cache *pagecache.Cache
	dev   storage.Device
	pf    prefetch.Prefetcher

	inflight    map[core.PageID]sim.Time
	inflights   arrivalHeap
	lastDevPage core.PageID
	candBuf     []core.PageID

	// ReadLatency is the 4KB read latency distribution (the D-VFS CDFs).
	ReadLatency metrics.Histogram
	// WriteLatency is the buffered-write latency distribution.
	WriteLatency metrics.Histogram
	Counters     metrics.Counters
}

// New builds a file system simulator.
func New(cfg Config) *FS {
	rng := sim.NewRNG(cfg.Seed)
	dev := cfg.Device
	if dev == nil {
		dev = storage.NewRemote(rdma.New(rdma.Config{}, rng.Fork(1)))
	}
	pf := cfg.Prefetcher
	if pf == nil {
		pf = prefetch.None{}
	}
	return &FS{
		cfg:  cfg,
		path: datapath.New(cfg.Path, rng.Fork(2)),
		cache: pagecache.New(pagecache.Config{
			Capacity: cfg.CacheCapacity,
			Policy:   cfg.CachePolicy,
		}),
		dev:      dev,
		pf:       pf,
		inflight: make(map[core.PageID]sim.Time),
	}
}

// Cache exposes the VFS cache.
func (f *FS) Cache() *pagecache.Cache { return f.cache }

// Now reports the current virtual time.
func (f *FS) Now() sim.Time { return f.clock.Now() }

func (f *FS) flushArrivals(now sim.Time) {
	for len(f.inflights) > 0 && f.inflights[0].at <= now {
		a := heap.Pop(&f.inflights).(arrival)
		if at, ok := f.inflight[a.page]; ok && at == a.at {
			delete(f.inflight, a.page)
			f.cache.Insert(a.page, true, a.at)
		}
	}
	f.cache.Tick(now)
}

// Write buffers one page write; data lands in the cache immediately and the
// device write proceeds asynchronously (write-behind). The returned latency
// is what the caller observes.
func (f *FS) Write(pid PID, page core.PageID, think sim.Duration) sim.Duration {
	f.clock.Advance(think)
	now := f.clock.Now()
	f.flushArrivals(now)
	lat := f.path.HitLatency() // buffered write: cache insert cost
	f.cache.Insert(page, false, now)
	dist := int64(page - f.lastDevPage)
	f.lastDevPage = page
	f.dev.Write(int(pid), now, page, dist)
	f.Counters.Inc("writes")
	f.WriteLatency.Observe(lat)
	f.clock.Advance(lat)
	return lat
}

// Read fetches one page through the cache and returns the observed latency.
func (f *FS) Read(pid PID, page core.PageID, think sim.Duration) sim.Duration {
	f.clock.Advance(think)
	now := f.clock.Now()
	f.flushArrivals(now)
	f.Counters.Inc("reads")

	var lat sim.Duration
	miss := false
	if hit, wasPre := f.cache.Lookup(page, now); hit {
		lat = f.path.HitLatency()
		if wasPre {
			f.pf.OnPrefetchHit(pid)
		}
		f.Counters.Inc("cache_hits")
	} else if at, ok := f.inflight[page]; ok {
		delete(f.inflight, page)
		wait := at.Sub(now)
		if wait < 0 {
			wait = 0
		}
		lat = f.path.HitLatency() + wait
		f.pf.OnPrefetchHit(pid)
		f.Counters.Inc("inflight_hits")
	} else {
		miss = true
		b := f.path.RequestOverhead()
		dist := int64(page - f.lastDevPage)
		f.lastDevPage = page
		submit := now.Add(b.Total())
		done := f.dev.Read(int(pid), submit, page, dist)
		lat = b.Total() + done.Sub(submit) + f.cache.AllocLatency()
		f.cache.Insert(page, false, now.Add(lat))
		f.Counters.Inc("cache_misses")
	}

	f.ReadLatency.Observe(lat)
	f.clock.Advance(lat)

	f.candBuf = f.pf.OnAccess(pid, page, miss, f.candBuf[:0])
	f.issuePrefetches(pid, f.candBuf, f.clock.Now())
	return lat
}

func (f *FS) issuePrefetches(pid PID, cands []core.PageID, now sim.Time) {
	for _, c := range cands {
		if f.cache.Contains(c) {
			continue
		}
		if _, ok := f.inflight[c]; ok {
			continue
		}
		dist := int64(c - f.lastDevPage)
		f.lastDevPage = c
		done := f.dev.Read(int(pid), now, c, dist)
		f.inflight[c] = done
		heap.Push(&f.inflights, arrival{page: c, at: done})
		f.Counters.Inc("prefetch_issued")
	}
}

// Summary renders the read-side outcome compactly.
func (f *FS) Summary() string {
	s := f.ReadLatency.Summarize()
	return fmt.Sprintf("reads=%d hits=%d misses=%d p50=%v p99=%v",
		f.Counters.Get("reads"), f.Counters.Get("cache_hits"),
		f.Counters.Get("cache_misses"), s.P50, s.P99)
}
