package vfs

import (
	"testing"

	"leap/internal/core"
	"leap/internal/sim"
)

func TestNamespaceCreateOpenRemove(t *testing.T) {
	ns := NewNamespace(New(leanCfg(1)))
	f, err := ns.Create("data.bin", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "data.bin" || f.Capacity() != 100*PageSize {
		t.Fatalf("file metadata wrong: %s %d", f.Name(), f.Capacity())
	}
	// Create is idempotent.
	f2, err := ns.Create("data.bin", 50, 1)
	if err != nil || f2 != f {
		t.Fatal("re-create did not return the existing file")
	}
	if _, ok := ns.Open("data.bin"); !ok {
		t.Fatal("open failed")
	}
	if _, ok := ns.Open("absent"); ok {
		t.Fatal("opened a non-existent file")
	}
	ns.Remove("data.bin")
	if _, ok := ns.Open("data.bin"); ok {
		t.Fatal("remove did not remove")
	}
}

func TestNamespaceExtentsDisjoint(t *testing.T) {
	ns := NewNamespace(New(leanCfg(2)))
	a, _ := ns.Create("a", 10, 1)
	b, _ := ns.Create("b", 10, 1)
	if a.base+core.PageID(a.pages) > b.base {
		t.Fatalf("extents overlap: a=[%d,%d) b starts %d",
			a.base, a.base+core.PageID(a.pages), b.base)
	}
}

func TestCreateValidation(t *testing.T) {
	ns := NewNamespace(New(leanCfg(3)))
	if _, err := ns.Create("bad", 0, 1); err == nil {
		t.Fatal("zero-size file accepted")
	}
}

func TestWriteThenReadLatencies(t *testing.T) {
	fs := New(leanCfg(4))
	ns := NewNamespace(fs)
	f, _ := ns.Create("blob", 1024, 1)

	// Write 64KB at offset 0: 16 pages, buffered, cheap.
	wlat, err := f.WriteAt(0, 64*1024, 100)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 64*1024 {
		t.Fatalf("Size = %d, want 64KB", f.Size())
	}
	if wlat > 16*2*sim.Microsecond {
		t.Fatalf("buffered write latency %v too high", wlat)
	}

	// Immediate read-back hits the cache.
	rlat, err := f.ReadAt(0, 64*1024, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rlat > 16*2*sim.Microsecond {
		t.Fatalf("cached read latency %v too high", rlat)
	}
	if fs.Counters.Get("cache_hits") < 16 {
		t.Fatalf("cache hits = %d, want >= 16", fs.Counters.Get("cache_hits"))
	}
}

func TestColdSequentialReadPrefetches(t *testing.T) {
	fs := New(leanCfg(5))
	ns := NewNamespace(fs)
	f, _ := ns.Create("bigfile", 1<<16, 1)
	// Cold sequential read of 4MB: Leap should cover most pages.
	if _, err := f.ReadAt(0, 4<<20, 300); err != nil {
		t.Fatal(err)
	}
	hits := fs.Counters.Get("cache_hits") + fs.Counters.Get("inflight_hits")
	reads := fs.Counters.Get("reads")
	if rate := float64(hits) / float64(reads); rate < 0.6 {
		t.Fatalf("sequential file read prefetch rate = %.3f, want >= 0.6", rate)
	}
}

func TestBoundsAndClose(t *testing.T) {
	ns := NewNamespace(New(leanCfg(6)))
	f, _ := ns.Create("small", 4, 1)
	if _, err := f.ReadAt(0, 5*PageSize, 0); err == nil {
		t.Fatal("read beyond capacity accepted")
	}
	if _, err := f.WriteAt(-1, 10, 0); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := f.ReadAt(0, 0, 0); err != nil {
		t.Fatal("empty read should succeed")
	}
	f.Close()
	if _, err := f.ReadAt(0, 10, 0); err == nil {
		t.Fatal("read after close accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	ns := NewNamespace(New(leanCfg(7)))
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := ns.Create(n, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	names := ns.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
}
