package vfs

import (
	"testing"

	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/pagecache"
	"leap/internal/prefetch"
	"leap/internal/sim"
)

func leanCfg(seed uint64) Config {
	p, _ := prefetch.New("leap")
	return Config{
		Path:        datapath.Config{Kind: datapath.Lean},
		CachePolicy: pagecache.EvictEager,
		Prefetcher:  p,
		Seed:        seed,
	}
}

func legacyCfg(seed uint64) Config {
	p, _ := prefetch.New("readahead")
	return Config{
		Path:        datapath.Config{Kind: datapath.Legacy},
		CachePolicy: pagecache.EvictLazy,
		Prefetcher:  p,
		Seed:        seed,
	}
}

func TestWriteThenReadHitsCache(t *testing.T) {
	f := New(leanCfg(1))
	lat := f.Write(1, 42, 100)
	if lat > sim.Microsecond {
		t.Fatalf("buffered write latency %v, want sub-µs", lat)
	}
	rlat := f.Read(1, 42, 100)
	if rlat > sim.Microsecond {
		t.Fatalf("cached read latency %v, want sub-µs", rlat)
	}
	if f.Counters.Get("cache_hits") != 1 {
		t.Fatal("read did not hit the cache")
	}
}

func TestColdReadPaysFullPath(t *testing.T) {
	f := New(legacyCfg(2))
	// Random far-apart pages: read-ahead stays off, every read misses.
	var sum sim.Duration
	const n = 500
	for i := 0; i < n; i++ {
		sum += f.Read(1, core.PageID(i*1_000_003), 0)
	}
	// Legacy path ≈ 34µs overhead + 4.3µs RDMA on average.
	if mean := sum / n; mean < 25*sim.Microsecond {
		t.Fatalf("cold legacy read mean = %v, want >= 25µs", mean)
	}
	if f.Counters.Get("cache_misses") != n {
		t.Fatalf("misses = %d, want %d", f.Counters.Get("cache_misses"), n)
	}
}

func TestLeanColdReadCheaper(t *testing.T) {
	legacy := New(legacyCfg(3))
	lean := New(leanCfg(3))
	var legacySum, leanSum sim.Duration
	for i := 0; i < 200; i++ {
		legacySum += legacy.Read(1, core.PageID(i*10), 0)
		leanSum += lean.Read(1, core.PageID(i*10), 0)
	}
	if leanSum*3 > legacySum {
		t.Fatalf("lean path not at least 3× cheaper: %v vs %v", leanSum, legacySum)
	}
}

func TestSequentialReadPrefetchWorks(t *testing.T) {
	// The paper's D-VFS microbenchmark: bulk write then sequential read.
	f := New(leanCfg(4))
	const n = 20000
	// Read a fresh region sequentially (cold): after warmup, Leap should
	// serve most reads from prefetch.
	for i := 0; i < n; i++ {
		f.Read(1, core.PageID(1_000_000+i), 200)
	}
	hits := f.Counters.Get("cache_hits") + f.Counters.Get("inflight_hits")
	if rate := float64(hits) / float64(n); rate < 0.7 {
		t.Fatalf("sequential prefetch hit rate = %.3f, want >= 0.7", rate)
	}
	if f.ReadLatency.Percentile(50) > 2*sim.Microsecond {
		t.Fatalf("sequential p50 = %v, want ~hit latency", f.ReadLatency.Percentile(50))
	}
}

func TestStrideReadLeapVsLegacy(t *testing.T) {
	// Stride-10 reads: Leap detects the stride, legacy read-ahead cannot.
	leap := New(leanCfg(5))
	legacy := New(legacyCfg(5))
	for i := 0; i < 20000; i++ {
		page := core.PageID(i * 10)
		leap.Read(1, page, 200)
		legacy.Read(1, page, 200)
	}
	leapP50 := leap.ReadLatency.Percentile(50)
	legacyP50 := legacy.ReadLatency.Percentile(50)
	ratio := float64(legacyP50) / float64(leapP50)
	// Paper: 24.96× median improvement for D-VFS stride.
	if ratio < 10 {
		t.Fatalf("stride D-VFS median improvement = %.1f×, want >= 10×", ratio)
	}
}

func TestCacheCapacityBounded(t *testing.T) {
	cfg := leanCfg(6)
	cfg.CacheCapacity = 32
	f := New(cfg)
	for i := 0; i < 5000; i++ {
		f.Read(1, core.PageID(i), 100)
	}
	if f.Cache().Len() > 32 {
		t.Fatalf("cache grew to %d", f.Cache().Len())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		f := New(leanCfg(7))
		for i := 0; i < 3000; i++ {
			f.Read(1, core.PageID(i*3), 150)
		}
		return f.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestSummaryFormat(t *testing.T) {
	f := New(leanCfg(8))
	f.Read(1, 1, 0)
	if s := f.Summary(); len(s) == 0 {
		t.Fatal("empty summary")
	}
}
