package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a named counter set with deterministic (sorted) rendering.
// The zero value is ready to use.
type Counters struct {
	m map[string]*int64
}

// Handle returns a stable pointer to the named counter, creating it at zero
// if needed. Hot paths resolve their handles once and increment through the
// pointer, skipping the per-event map lookup; Get/Names/String observe the
// same cell. Note that resolving a handle makes the counter exist: it
// appears in Names/String/Merge at zero even if never incremented.
func (c *Counters) Handle(name string) *int64 {
	if c.m == nil {
		c.m = make(map[string]*int64)
	}
	p, ok := c.m[name]
	if !ok {
		p = new(int64)
		c.m[name] = p
	}
	return p
}

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	*c.Handle(name) += delta
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get reports the named counter's value (0 if never touched).
func (c *Counters) Get(name string) int64 {
	if p, ok := c.m[name]; ok {
		return *p
	}
	return 0
}

// Names reports the sorted set of counter names.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds all of o's counters into c.
func (c *Counters) Merge(o *Counters) {
	for n, v := range o.m {
		c.Add(n, *v)
	}
}

// String renders the counters sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, *c.m[n])
	}
	return b.String()
}

// Welford accumulates a streaming mean and variance (Welford's algorithm).
// The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Observe adds one observation.
func (w *Welford) Observe(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count reports the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean reports the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the sample variance (0 if fewer than 2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev reports the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Ratio formats a/b as a "×" factor string, guarding against division by
// zero; used in EXPERIMENTS.md-style paper-vs-measured reporting.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf×"
	}
	return fmt.Sprintf("%.2f×", a/b)
}
