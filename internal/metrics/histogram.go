// Package metrics provides the measurement plumbing for the simulation:
// log-bucketed latency histograms with percentile queries, CDF extraction for
// figure rendering, streaming mean/variance, and named counters.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"leap/internal/sim"
)

// Histogram records latency observations in logarithmically spaced buckets
// spanning 1ns to ~17minutes with a fixed relative error of about 2.4%
// (32 sub-buckets per power of two). The zero value is ready to use.
//
// Percentile queries interpolate within a bucket, which keeps the structure
// compact (fixed memory) while staying accurate enough for the CDF plots this
// repository reproduces.
type Histogram struct {
	counts [nBuckets]uint64
	total  uint64
	sum    float64
	min    sim.Duration
	max    sim.Duration
}

const (
	subBucketBits = 5 // 32 sub-buckets per octave
	subBuckets    = 1 << subBucketBits
	// Values below identityMax (two octaves' worth) get exact buckets; above,
	// each octave is split into subBuckets log-spaced buckets.
	identityMax = 2 * subBuckets
	maxExponent = 40 // values up to 2^40 ns ≈ 18 minutes
	nBuckets    = identityMax + (maxExponent-subBucketBits)*subBuckets
)

// bucketIndex maps a value to its bucket. The mapping is HdrHistogram-style:
// exact below identityMax, then (octave, sub-bucket) above, which keeps the
// relative quantization error bounded by 1/subBuckets everywhere.
func bucketIndex(v sim.Duration) int {
	if v < 0 {
		v = 0
	}
	x := uint64(v)
	if x < identityMax {
		return int(x)
	}
	exp := 63 - bits.LeadingZeros64(x) // floor(log2(x)) >= subBucketBits+1
	sub := (x >> (uint(exp) - subBucketBits)) & (subBuckets - 1)
	idx := (exp-subBucketBits+1)*subBuckets + int(sub)
	if idx >= nBuckets {
		idx = nBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value that maps into bucket idx.
func bucketLow(idx int) sim.Duration {
	if idx < identityMax {
		return sim.Duration(idx)
	}
	octave := idx / subBuckets // >= 2
	sub := idx % subBuckets
	exp := uint(octave + subBucketBits - 1)
	return sim.Duration(uint64(1)<<exp + uint64(sub)<<(exp-subBucketBits))
}

// Observe records one latency sample.
func (h *Histogram) Observe(v sim.Duration) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total++
	h.sum += float64(v)
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the arithmetic mean of the recorded samples (0 if empty).
func (h *Histogram) Mean() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return sim.Duration(h.sum / float64(h.total))
}

// Min reports the smallest recorded sample (0 if empty).
func (h *Histogram) Min() sim.Duration { return h.min }

// Max reports the largest recorded sample (0 if empty).
func (h *Histogram) Max() sim.Duration { return h.max }

// Percentile reports the p-th percentile (p in [0,100]) by bucket
// interpolation. Empty histograms report 0.
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := p / 100 * float64(h.total)
	var seen float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += float64(c)
		if seen >= rank {
			// Interpolate within the bucket.
			lo := float64(bucketLow(i))
			hi := float64(bucketLow(i + 1))
			frac := 1 - (seen-rank)/float64(c)
			v := sim.Duration(lo + (hi-lo)*frac)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Median is shorthand for Percentile(50).
func (h *Histogram) Median() sim.Duration { return h.Percentile(50) }

// Merge adds all samples recorded in o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// CDFPoint is one point of an empirical CDF: fraction of samples <= Value.
type CDFPoint struct {
	Value    sim.Duration
	Fraction float64
}

// CDF extracts up to maxPoints evenly spaced (in cumulative probability)
// points of the empirical CDF, suitable for rendering the paper's latency
// CDF figures.
func (h *Histogram) CDF(maxPoints int) []CDFPoint {
	if h.total == 0 || maxPoints <= 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		pts = append(pts, CDFPoint{
			Value:    bucketLow(i + 1),
			Fraction: float64(cum) / float64(h.total),
		})
	}
	if len(pts) <= maxPoints {
		return pts
	}
	// Downsample, always keeping the last point.
	out := make([]CDFPoint, 0, maxPoints)
	step := float64(len(pts)-1) / float64(maxPoints-1)
	for i := 0; i < maxPoints; i++ {
		out = append(out, pts[int(math.Round(float64(i)*step))])
	}
	return out
}

// Summary is a compact multi-percentile view of a histogram.
type Summary struct {
	Count          uint64
	Mean           sim.Duration
	Min, P25, P50  sim.Duration
	P75, P90, P95  sim.Duration
	P99, P999, Max sim.Duration
}

// Summarize extracts the standard percentile set.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.total,
		Mean:  h.Mean(),
		Min:   h.min,
		P25:   h.Percentile(25),
		P50:   h.Percentile(50),
		P75:   h.Percentile(75),
		P90:   h.Percentile(90),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.max,
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Reservoir keeps an exact, bounded sample of observations for computations
// that need exact order statistics (e.g. validating Histogram's
// interpolation). When more than Cap samples arrive, uniform reservoir
// sampling keeps an unbiased subset.
type Reservoir struct {
	Cap     int
	samples []sim.Duration
	seen    uint64
	rng     rngSource
}

// rngSource is the minimal deterministic randomness the reservoir needs,
// decoupled from sim.RNG to avoid a dependency cycle in tests.
type rngSource struct{ state uint64 }

func (r *rngSource) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewReservoir returns a reservoir holding at most cap samples.
func NewReservoir(cap int) *Reservoir {
	if cap <= 0 {
		cap = 1024
	}
	return &Reservoir{Cap: cap, rng: rngSource{state: uint64(cap)}}
}

// Observe records one sample.
func (r *Reservoir) Observe(v sim.Duration) {
	r.seen++
	if len(r.samples) < r.Cap {
		r.samples = append(r.samples, v)
		return
	}
	if j := r.rng.next() % r.seen; j < uint64(r.Cap) {
		r.samples[j] = v
	}
}

// Percentile reports the exact p-th percentile of the retained samples.
func (r *Reservoir) Percentile(p float64) sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	s := make([]sim.Duration, len(r.samples))
	copy(s, r.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// Count reports the total number of observations seen (not retained).
func (r *Reservoir) Count() uint64 { return r.seen }

// RenderCDFTable renders a set of named CDFs side by side as an ASCII table,
// one row per probability step — the textual analogue of the paper's CDF
// plots.
func RenderCDFTable(title string, series map[string]*Histogram, steps []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%8s", "CDF")
	for _, n := range names {
		fmt.Fprintf(&b, " %16s", n)
	}
	b.WriteByte('\n')
	for _, p := range steps {
		fmt.Fprintf(&b, "%7.2f%%", p)
		for _, n := range names {
			fmt.Fprintf(&b, " %16v", series[n].Percentile(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
