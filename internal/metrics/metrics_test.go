package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"leap/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.CDF(10) != nil {
		t.Fatal("empty histogram CDF must be nil")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Observe(4300)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Min() != 4300 || h.Max() != 4300 {
		t.Fatalf("Min/Max = %d/%d, want 4300/4300", h.Min(), h.Max())
	}
	for _, p := range []float64{0, 25, 50, 99, 100} {
		if got := h.Percentile(p); got != 4300 {
			t.Fatalf("P%.0f = %d, want 4300", p, got)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative observation must clamp to 0, got %d", h.Min())
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Percentiles of a log-bucketed histogram must be within the bucket
	// relative error (~1/32) of exact order statistics.
	var h Histogram
	r := NewReservoir(1 << 20)
	rng := sim.NewRNG(99)
	for i := 0; i < 100000; i++ {
		// Latencies spanning 100ns .. ~1ms, log-uniform.
		v := sim.Duration(100 * math.Exp(rng.Float64()*math.Log(10000)))
		h.Observe(v)
		r.Observe(v)
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 99, 99.9} {
		hp, rp := float64(h.Percentile(p)), float64(r.Percentile(p))
		if rp == 0 {
			continue
		}
		if rel := math.Abs(hp-rp) / rp; rel > 0.08 {
			t.Errorf("P%v: histogram %v vs exact %v (rel err %.3f)", p, hp, rp, rel)
		}
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		var h Histogram
		rng := sim.NewRNG(seed)
		for i := 0; i < 500; i++ {
			h.Observe(sim.Duration(rng.Intn(1_000_000)))
		}
		prev := sim.Duration(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeEquivalentToCombinedObserve(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		var a, b, combined Histogram
		for i := 0; i < 300; i++ {
			v := sim.Duration(rng.Intn(1 << 20))
			if i%2 == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
			combined.Observe(v)
		}
		a.Merge(&b)
		if a.Count() != combined.Count() || a.Min() != combined.Min() || a.Max() != combined.Max() {
			return false
		}
		for _, p := range []float64{25, 50, 90, 99} {
			if a.Percentile(p) != combined.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMeanExact(t *testing.T) {
	var h Histogram
	for _, v := range []sim.Duration{100, 200, 300} {
		h.Observe(v)
	}
	if got := h.Mean(); got != 200 {
		t.Fatalf("Mean = %d, want 200", got)
	}
}

func TestHistogramCDFProperties(t *testing.T) {
	var h Histogram
	rng := sim.NewRNG(7)
	for i := 0; i < 10000; i++ {
		h.Observe(sim.Duration(rng.Intn(100000)))
	}
	pts := h.CDF(50)
	if len(pts) == 0 || len(pts) > 50 {
		t.Fatalf("CDF returned %d points, want 1..50", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Fraction < pts[i-1].Fraction || pts[i].Value < pts[i-1].Value {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	if last := pts[len(pts)-1].Fraction; math.Abs(last-1.0) > 1e-9 {
		t.Fatalf("CDF final fraction = %v, want 1.0", last)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(sim.Duration(1) << 50) // beyond bucket range: clamps to top bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Max() != sim.Duration(1)<<50 {
		t.Fatalf("Max = %d", h.Max())
	}
	// P100 must return the exact max even though bucket range is exceeded.
	if h.Percentile(100) != sim.Duration(1)<<50 {
		t.Fatalf("P100 = %d", h.Percentile(100))
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i) * sim.Microsecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.P50 < 45*sim.Microsecond || s.P50 > 55*sim.Microsecond {
		t.Fatalf("P50 = %v, want ~50µs", s.P50)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Fatalf("Summary.String missing count: %s", s)
	}
}

func TestReservoirExactSmall(t *testing.T) {
	r := NewReservoir(1000)
	for i := 1; i <= 100; i++ {
		r.Observe(sim.Duration(i))
	}
	if got := r.Percentile(50); got != 50 {
		t.Fatalf("P50 = %d, want 50 (index interpolation)", got)
	}
	if got := r.Percentile(0); got != 1 {
		t.Fatalf("P0 = %d, want 1", got)
	}
	if got := r.Percentile(100); got != 100 {
		t.Fatalf("P100 = %d, want 100", got)
	}
}

func TestReservoirSubsamples(t *testing.T) {
	r := NewReservoir(128)
	for i := 0; i < 10000; i++ {
		r.Observe(sim.Duration(i))
	}
	if r.Count() != 10000 {
		t.Fatalf("Count = %d, want 10000", r.Count())
	}
	if len(r.samples) != 128 {
		t.Fatalf("retained %d, want 128", len(r.samples))
	}
}

func TestCountersBasics(t *testing.T) {
	var c Counters
	c.Inc("hits")
	c.Add("hits", 4)
	c.Add("misses", 2)
	if c.Get("hits") != 5 || c.Get("misses") != 2 || c.Get("absent") != 0 {
		t.Fatalf("unexpected counters: %s", c.String())
	}
	if got := c.String(); got != "hits=5 misses=2" {
		t.Fatalf("String = %q", got)
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(&b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merge wrong: %s", a.String())
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty Welford must report 0 variance")
	}
	w.Observe(3)
	if w.Variance() != 0 {
		t.Fatal("single-sample variance must be 0")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(10, 5); got != "2.00×" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "inf×" {
		t.Fatalf("Ratio div0 = %q", got)
	}
}

func TestRenderCDFTable(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Observe(sim.Duration(i) * sim.Microsecond)
		b.Observe(sim.Duration(i) * sim.Millisecond)
	}
	out := RenderCDFTable("test", map[string]*Histogram{"fast": &a, "slow": &b}, []float64{50, 99})
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Fatalf("table missing series names:\n%s", out)
	}
	if !strings.Contains(out, "50.00%") {
		t.Fatalf("table missing percentile rows:\n%s", out)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := sim.Duration(1); v < 1<<30; v = v*3/2 + 1 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
	}
}

func TestBucketLowInverse(t *testing.T) {
	// bucketLow(i) must itself map into bucket i.
	for i := 0; i < nBuckets; i += 7 {
		lo := bucketLow(i)
		if lo == 0 {
			continue
		}
		got := bucketIndex(lo)
		if got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)) = %d", i, got)
		}
	}
}
