package runtime

import (
	"strings"

	"leap/internal/control"
	"leap/internal/remote"
	"leap/internal/sim"
)

// DefaultControlInterval is the default WithControlPlane tick cadence in
// virtual time: the plane folds its observations, walks the detector state
// machine, runs the autoscaler and refreshes hot replicas once per interval.
const DefaultControlInterval = 100 * sim.Microsecond

// WithControlPlane attaches a self-healing control plane (internal/control:
// per-agent failure detector, autoscaler, hot-page replicas) to the runtime.
// The plane observes every transport call through fault-injection transport
// wrappers, receives every remotely-served fault as a hot-page frequency
// sample, and ticks off the runtime clock (see WithControlInterval): a slow
// agent is hinted away from, a failed one is excluded and its slabs
// re-replicated, probation brings it back, and sustained pressure grows the
// private cluster. Without this option the cluster is unsupervised and the
// runtime behaves bit-identically to previous releases.
func WithControlPlane(cfg control.Config) Option {
	return func(o *memOptions) { o.planeCfg = &cfg }
}

// WithControlInterval sets the control plane's tick cadence in virtual time
// (default DefaultControlInterval). The cadence is checked on the fault
// path and on Flush; open-loop drivers whose clock the runtime does not
// advance can call TickControl instead. Non-positive values keep the
// default.
func WithControlInterval(d sim.Duration) Option {
	return func(o *memOptions) { o.planeEvery = d }
}

// WithRetryPolicy bounds retries, deadlines, backoff and hedging in the
// private in-process cluster's async ticket engine, and wires its per-ticket
// deadlines to the runtime clock (remote.Host.SetTimeSource), so deadline
// decisions are virtual-time-correct and replay bit-identically. The zero
// policy reproduces the legacy unlimited-failover behavior. Incompatible
// with WithRemoteHost: a supplied host carries its own policy via
// RemoteHostConfig.Retry.
func WithRetryPolicy(p remote.RetryPolicy) Option {
	return func(o *memOptions) { o.retry, o.retrySet = p, true }
}

// ControlStats is the Stats.Control block: the control plane's view of the
// cluster plus the actions it has taken since Open. The zero value (Enabled
// false) means no plane is attached.
type ControlStats struct {
	// Enabled reports whether a control plane is attached.
	Enabled bool
	// Ticks counts control ticks run (cadence-driven and TickControl).
	Ticks int64
	// Live is the number of serving agents (healthy or suspect).
	Live int
	// Phases renders every agent's detector phase in agent order, slash
	// separated ("healthy/suspect/failed"). A string keeps Stats comparable
	// with ==, which replay-determinism tests rely on.
	Phases string
	// HotPages is how many pages currently carry plane-managed extra read
	// replicas.
	HotPages int
	// Suspects, Clears, Fails and Recovers count successful detector
	// transitions acted on the host.
	Suspects, Clears, Fails, Recovers int64
	// ScaleUps, ScaleDowns, HotAdds and HotDrops count successful autoscaler
	// and hot-replica actions.
	ScaleUps, ScaleDowns, HotAdds, HotDrops int64
}

// attachPlane builds the control plane over the runtime's host and chains
// its observation feed onto the host's fault-injection transports. Called
// from Open, after the host exists.
func (m *Memory) attachPlane(cfg control.Config, every sim.Duration) {
	if every <= 0 {
		every = DefaultControlInterval
	}
	m.planeEvery = every
	hooks := control.Hooks{
		Probe:    m.probeAgent,
		OnAction: m.noteAction,
	}
	if m.ownHost {
		hooks.Provision = m.provisionAgent
	}
	m.plane = control.New(cfg, m.host, hooks)
	// Chain the plane's feed onto every fault-injection transport, keeping
	// any observer a harness installed before Open (its accounting hook runs
	// first). Harnesses that install observers after Open must feed
	// Plane().ObserveCall themselves.
	for _, tr := range m.host.Transports() {
		if ft, ok := tr.(*remote.FaultTransport); ok {
			ft.SetObserver(m.chainObserver(ft.Observer()))
		}
	}
}

// chainObserver wraps prev (possibly nil) with the plane's ObserveCall feed.
// The detector's latency signal is the injected slow-agent lag (Extra) and
// its error signal the injection decision; liveness probes (OpPing) are the
// plane's own traffic and are not fed back.
func (m *Memory) chainObserver(prev func(remote.CallObservation)) func(remote.CallObservation) {
	return func(o remote.CallObservation) {
		if prev != nil {
			prev(o)
		}
		if o.Op == remote.OpPing {
			return
		}
		m.plane.ObserveCall(o.Agent, o.Extra, o.Injected)
	}
}

// probeAgent is the plane's recovery probe: a liveness ping straight to the
// agent's transport. Called from inside Tick with the plane's lock held —
// it must not call back into the plane (and does not).
func (m *Memory) probeAgent(idx int) bool {
	trs := m.host.Transports()
	if idx < 0 || idx >= len(trs) {
		return false
	}
	resp, err := trs[idx].Call(&remote.Request{Op: remote.OpPing})
	return err == nil && resp.Status == remote.StatusOK
}

// provisionAgent supplies a brand-new in-process agent when the autoscaler
// wants capacity beyond the known pool — private-cluster runtimes only (a
// host supplied via WithRemoteHost grows through its owner). Called under
// the plane's lock; must not call back into the plane.
func (m *Memory) provisionAgent() (remote.Transport, bool) {
	ft := remote.NewFaultTransport(m.host.Agents(),
		remote.NewInProc(remote.NewAgent(m.slabPages, 0)), nil)
	ft.SetObserver(m.chainObserver(nil))
	return ft, true
}

// noteAction accumulates the per-kind action counters for Stats.Control.
// Only actions the host executed cleanly are counted.
func (m *Memory) noteAction(a control.Action) {
	if a.Err != nil || int(a.Kind) >= len(m.planeActs) {
		return
	}
	m.planeActs[a.Kind].Add(1)
}

// planeDue reports whether the control tick cadence has elapsed, advancing
// the next-tick deadline when it has. Lock-free: the deadline is an atomic
// and a CAS elects exactly one goroutine per due tick — a raced shard
// simply sees the advanced deadline and skips. The tick itself must run
// with no shard lock held (see tickPlane).
func (m *Memory) planeDue() (sim.Time, bool) {
	if m.plane == nil {
		return 0, false
	}
	now := m.clock.Now()
	next := m.planeNext.Load()
	if int64(now) < next {
		return 0, false
	}
	if !m.planeNext.CompareAndSwap(next, int64(now.Add(m.planeEvery))) {
		return 0, false
	}
	return now, true
}

// tickPlane runs one control tick at virtual time now. Callers must NOT
// hold any shard lock: the tick's actions mutate the host (repair, drain,
// scale, hot-replica refresh), and the lock order is shard.mu → plane.mu →
// host.mu — the tick path enters at plane.mu.
func (m *Memory) tickPlane(now sim.Time) []control.Action {
	acts := m.plane.Tick(now)
	m.planeTicks.Add(1)
	return acts
}

// TickControl runs one control-plane tick immediately at the runtime's
// current virtual time and resets the cadence, returning the actions taken.
// Open-loop drivers — harnesses that advance a shared clock themselves, or
// tests that need a tick at an exact instant — call this instead of waiting
// for the fault-path cadence. It returns nil without WithControlPlane.
func (m *Memory) TickControl() []control.Action {
	if m.plane == nil {
		return nil
	}
	now := m.clock.Now()
	m.planeNext.Store(int64(now.Add(m.planeEvery)))
	return m.tickPlane(now)
}

// Plane exposes the attached control plane (nil without WithControlPlane) —
// for harnesses that feed their own ObserveCall stream or inspect agent
// phases directly.
func (m *Memory) Plane() *control.Plane { return m.plane }

// controlStats assembles the Stats.Control block. Callers must not hold
// any shard lock (the plane takes its own locks).
func (m *Memory) controlStats() ControlStats {
	if m.plane == nil {
		return ControlStats{}
	}
	var phases strings.Builder
	for i, p := range m.plane.Phases() {
		if i > 0 {
			phases.WriteByte('/')
		}
		phases.WriteString(p.String())
	}
	return ControlStats{
		Enabled:    true,
		Ticks:      m.planeTicks.Load(),
		Live:       m.plane.LiveAgents(),
		Phases:     phases.String(),
		HotPages:   len(m.plane.HotPages()),
		Suspects:   m.planeActs[control.ActSuspect].Load(),
		Clears:     m.planeActs[control.ActClear].Load(),
		Fails:      m.planeActs[control.ActFail].Load(),
		Recovers:   m.planeActs[control.ActRecover].Load(),
		ScaleUps:   m.planeActs[control.ActScaleUp].Load(),
		ScaleDowns: m.planeActs[control.ActScaleDown].Load(),
		HotAdds:    m.planeActs[control.ActHotAdd].Load(),
		HotDrops:   m.planeActs[control.ActHotDrop].Load(),
	}
}
