package runtime

import (
	"fmt"
	"sync"

	"leap/internal/core"
	"leap/internal/pagecache"
	"leap/internal/pagemap"
	"leap/internal/paging"
	"leap/internal/prefetch"
	"leap/internal/remote"
	"leap/internal/sim"
	"leap/internal/ztier"
)

// shard is one PageID stripe of the fault path: its own engine (predictor,
// page cache, latency models), residency LRU, frame table, written/faulting
// sets and single-flight demand table, all guarded by its own mutex. Page pg
// belongs to shard pg & m.mask (round-robin striping, so hot contiguous
// ranges spread across stripes), and a page's bytes, cache entry and
// residency charge only ever live in its owning shard — the single-owner
// invariant CheckShardInvariants verifies. Cross-shard state (virtual clock,
// error latch, demand-overlap budget, control-plane cadence) lives on Memory
// as atomics, so a hit takes exactly one lock: its shard's.
//
// Lock order: shard.mu → plane.mu → host.mu. A fault path holds at most its
// own shard's lock (never two shards), may observe the plane (plane.mu) and
// flush the host (host.mu) under it; control ticks run with no shard lock
// held, entering at plane.mu.
type shard struct {
	m   *Memory
	idx int

	// mu serializes this stripe's fault path: engine, residency, frame
	// table. It is dropped across single-flight demand fetches (see
	// fetchDemand) and never held across a Client-visible return.
	mu sync.Mutex

	eng *paging.Engine[*shard]
	res *paging.Resident

	// ens is this stripe's ensemble selector when WithEnsemble is on — the
	// same object as eng.Prefetcher(), kept typed for stats and selection-
	// history reads under mu. Nil otherwise.
	ens *prefetch.Ensemble

	// hints holds madvise-style access hints per client, newest last (see
	// Client.Advise). Nil until the first range hint, so unhinted runtimes
	// pay a single nil check per fault. Every stripe stores the full
	// ranges: stripe pages interleave, and keeping a full copy under each
	// stripe's own lock adds no cross-shard lock edges.
	hints map[prefetch.PID][]hintRange

	// ztier is this stripe's compressed victim tier (nil without
	// WithCompressedTier): evicted pages with a useful image are sealed
	// into it instead of paying a remote round trip, and the fault path
	// unseals on a hit. Guarded by mu like everything else in the stripe.
	ztier *ztier.Pool

	// frames holds the real bytes of every local page of this stripe:
	// resident pages plus prefetched pages parked in the cache and in
	// flight.
	frames    *pagemap.Map[*frame]
	frameFree *frame
	// written tracks stripe pages with a remote image (including writes
	// still queued in the host's dirty buffer): only those are fetched from
	// the host; everything else reads as zeros without touching the wire.
	written *pagemap.Map[struct{}]
	// faulting is the set of stripe pages currently traversing the fault
	// path: the eager cache policy frees their cache entries mid-fault (the
	// page table takes ownership), and the eviction callback must not drop
	// their frames. More than one entry only under concurrent faults.
	faulting *pagemap.Map[struct{}]
	// demand is the single-flight table: a stripe page being demand-fetched
	// with the lock dropped maps to the entry concurrent faulters wait on.
	demand *pagemap.Map[*demandFetch]

	tickets     []*remote.Ticket
	ticketPages []core.PageID

	// cacheStats0 snapshots cache counters at measurement start, so
	// accuracy/coverage cover only the recorded phase (mirrors the
	// simulator's warmup handling).
	cacheStats0 pagecache.Stats

	cAccesses     *int64
	cFaults       *int64
	cResidentHits *int64
	cDemandWaits  *int64

	// nEvictions counts residency evictions reaching evictResident;
	// nWritebacks counts page images actually pushed to the host (eviction
	// or compressed-tier overflow). Recording-gated, read under mu.
	nEvictions  int64
	nWritebacks int64
}

// hintRange is one Advise declaration: advice applies to pages
// [start, end). Later declarations override earlier ones (newest-first
// resolution in hintFor), so AdviseNormal un-hints a range by shadowing it.
type hintRange struct {
	start, end core.PageID
	advice     Advice
}

// hintFor resolves the newest hint covering pg for client pid into the
// engine's per-access hint form. Runs under s.mu on the fault path; the
// range list is append-only and expected to stay short (an madvise call per
// region, not per access).
func (s *shard) hintFor(pid prefetch.PID, pg core.PageID) (paging.Hint, core.PageID) {
	rs := s.hints[pid]
	for i := len(rs) - 1; i >= 0; i-- {
		r := rs[i]
		if pg < r.start || pg >= r.end {
			continue
		}
		switch r.advice {
		case AdviseSequential:
			return paging.HintSequential, r.end
		case AdviseRandom:
			return paging.HintRandom, 0
		}
		// AdviseNormal: the newest declaration wins — predictor-driven.
		return paging.HintNone, 0
	}
	return paging.HintNone, 0
}

// shardFor routes a page to its owning stripe. Negative pages land on an
// arbitrary shard; page() rejects them before touching any state.
func (m *Memory) shardFor(pg core.PageID) *shard { return m.shards[uint64(pg)&m.mask] }

// Shards reports how many PageID stripes the fault path runs (1 without
// WithShards).
func (m *Memory) Shards() int { return len(m.shards) }

// newFrame takes a frame off the shard's free list, or allocates one.
func (s *shard) newFrame() *frame {
	f := s.frameFree
	if f == nil {
		return &frame{data: make([]byte, remote.PageSize)}
	}
	s.frameFree = f.next
	f.next = nil
	f.dirty = false
	return f
}

// freeFrame returns a frame to the shard's pool.
func (s *shard) freeFrame(f *frame) {
	f.next = s.frameFree
	s.frameFree = f
}

// cacheEvicted keeps the cgroup charge and the frame table in step with the
// page cache: a cache entry leaving uncharges it, and its frame is released
// unless the page is (or is becoming) resident.
func (s *shard) cacheEvicted(page core.PageID) {
	s.res.Charged--
	if s.faulting.Contains(page) || s.res.Contains(page) {
		return
	}
	if f, ok := s.frames.Get(page); ok {
		s.frames.Delete(page)
		s.freeFrame(f)
	}
}

// evictResident is the engine's residency-eviction hook. With a compressed
// tier attached, a victim whose image is worth keeping — dirty, or clean
// with a remote copy a later fault would otherwise fetch — is sealed into
// the stripe's pool instead of traveling: the hook returns false so the
// engine skips the modeled writeback (no bytes moved), and the pool's own
// overflow handles any eventual real writeback. Without a tier (or when the
// page cache still references the page, which owns the bytes then) the
// legacy path runs: dirty bytes go to the remote host through the async
// ticket engine behind the bounded dirty backlog, and the hook returns true
// so the engine prices the writeback. The async engine copies bytes on
// enqueue, so frames recycle immediately. A clean page that was never
// written is dropped either way — it re-materializes as zeros for free.
func (s *shard) evictResident(page core.PageID) bool {
	f, ok := s.frames.Get(page)
	if !ok {
		return true
	}
	m := s.m
	if s.eng.Recording() {
		s.nEvictions++
	}
	cached := s.eng.Cache().Contains(page)
	if s.ztier != nil && !cached && (f.dirty || s.written.Contains(page)) {
		s.ztier.Put(page, f.data, f.dirty)
		f.dirty = false
		s.frames.Delete(page)
		s.freeFrame(f)
		return false
	}
	if f.dirty {
		s.written.Put(page, struct{}{})
		m.host.WritePageAsync(page, f.data)
		f.dirty = false
		if s.eng.Recording() {
			s.nWritebacks++
		}
		if m.host.PendingWrites() >= m.qdepth {
			m.latchWriteback(m.host.Flush())
		}
	}
	if !cached {
		s.frames.Delete(page)
		s.freeFrame(f)
	}
	return true
}

// ztierEvicted is the compressed pool's overflow callback: a sealed page
// pushed out by the byte budget. A dirty victim carries the only fresh copy
// of its bytes, so it goes to the host through the async ticket engine —
// exactly the write an uncompressed eviction would have issued — and is
// priced on the modeled device, which an absorbed seal skipped. Clean
// victims just vanish: their remote image is current. Runs under the shard
// lock, synchronously inside Pool.Put.
func (s *shard) ztierEvicted(page core.PageID, raw []byte, dirty bool) {
	if !dirty {
		return
	}
	m := s.m
	s.written.Put(page, struct{}{})
	m.host.WritePageAsync(page, raw)
	if s.eng.Recording() {
		s.nWritebacks++
	}
	s.eng.QueueWriteback(0, page, m.clock.Now())
	if m.host.PendingWrites() >= m.qdepth {
		m.latchWriteback(m.host.Flush())
	}
}

// fetchPrefetches is the engine's prefetch-issue hook: the window's pages
// get frames and their real bytes are fetched from the host through the
// async ticket engine — one doorbell flush for the whole window. Pages with
// no remote image materialize as zeros without touching the wire. A page
// whose batched fetch fails is abandoned (the in-flight entry is
// cancelled): no synchronous retry happens here, because a wire round trip
// with the shard lock held would head-of-line-block every client of the
// stripe behind one slow replica. A later demand access refetches the page
// under the overlap budget, where a slow replica delays only its own
// faulter.
func (s *shard) fetchPrefetches(pages []core.PageID) {
	m := s.m
	s.tickets = s.tickets[:0]
	s.ticketPages = s.ticketPages[:0]
	for _, page := range pages {
		f := s.newFrame()
		s.frames.Put(page, f)
		if s.written.Contains(page) {
			s.tickets = append(s.tickets, m.host.ReadPageAsync(page, f.data))
			s.ticketPages = append(s.ticketPages, page)
		} else {
			zeroFrame(f)
		}
	}
	if len(s.tickets) == 0 {
		return
	}
	// Read outcomes are per-ticket (checked below). Flush also drains queued
	// eviction writebacks — from every shard; the host is shared — and only
	// a write-op failure (acked application data no replica accepted) may
	// poison the Memory.
	m.latchWriteback(m.host.Flush())
	for i, t := range s.tickets {
		if t.Err() == nil {
			continue
		}
		page := s.ticketPages[i]
		if f, ok := s.frames.Get(page); ok {
			s.frames.Delete(page)
			s.freeFrame(f)
		}
		s.eng.CancelPrefetch(page)
	}
}

// fetchDemand reads pg's real image from the host into f.data on a full
// miss. When the global overlap budget (WithConcurrency) has room, the
// shard's lock is dropped for the read: a single-flight entry is registered
// so concurrent faults on pg wait for this fetch (and the engine's prefetch
// dedup is told to skip pg), while faults on other pages — same shard or
// not — proceed in parallel. At the budget — or at WithConcurrency(1) — the
// read runs with the lock held, strictly serialized.
func (s *shard) fetchDemand(pg core.PageID, f *frame) error {
	m := s.m
	if m.conc <= 1 {
		return m.host.ReadPage(pg, f.data)
	}
	if n := m.fetching.Add(1); n > int64(m.conc) {
		m.fetching.Add(-1)
		return m.host.ReadPage(pg, f.data)
	}
	d := &demandFetch{done: make(chan struct{})}
	s.demand.Put(pg, d)
	s.eng.BlockPrefetch(pg)
	s.mu.Unlock()
	err := m.host.ReadPage(pg, f.data)
	s.mu.Lock()
	m.fetching.Add(-1)
	s.eng.UnblockPrefetch(pg)
	s.demand.Delete(pg)
	close(d.done)
	return err
}

// page runs one access by client pid to pg through the stripe's fault path
// and returns its frame. This is the runtime counterpart of the simulator's
// step: flush landed prefetches, check residency, fault through
// cache/in-flight/miss, consult the client's predictor, map the page in.
// Callers hold s.mu; the returned frame is valid only until the lock is
// released.
func (s *shard) page(pid prefetch.PID, pg core.PageID) (*frame, error) {
	m := s.m
	if err := m.loadErr(); err != nil {
		return nil, err
	}
	if pg < 0 {
		return nil, fmt.Errorf("leap: negative page %d", pg)
	}
	recording := s.eng.Recording()
	if recording {
		*s.cAccesses++
	}
	first := true
	var now sim.Time
	for {
		now = m.clock.Now()
		s.eng.FlushArrivals(now)

		// Resident: no fault.
		if s.res.Touch(pg) {
			if recording && first {
				*s.cResidentHits++
			}
			// Store-on-transition: a hit zeroes the last-fault snapshot, but
			// atomic stores are full barriers and this is the hottest line in
			// the runtime — skip the store when the snapshot is already zero
			// (every hit after the first).
			if m.lastLatency.Load() != 0 {
				m.lastLatency.Store(0)
			}
			if m.lastSerial.Load() != 0 {
				m.lastSerial.Store(0)
			}
			f, _ := s.frames.Get(pg)
			return f, nil
		}
		if first {
			if recording {
				*s.cFaults++
			}
			first = false
		}

		// Single-flight: another goroutine is demand-fetching pg. Wait for
		// its map-in and retry from the residency check. The waited access
		// is accounted as a hit (it pays no full miss of its own) and is
		// not re-recorded with the predictor.
		d, ok := s.demand.Get(pg)
		if !ok {
			break
		}
		if recording {
			*s.cDemandWaits++
		}
		s.mu.Unlock()
		<-d.done
		s.mu.Lock()
		if err := m.loadErr(); err != nil {
			return nil, err
		}
	}

	s.faulting.Put(pg, struct{}{})
	latency, miss := s.eng.Fault(pid, 0, pg, now)
	m.lastLatency.Store(int64(latency))
	m.lastSerial.Store(int64(s.eng.LastFaultSerial))
	if miss {
		// Full miss: fetch the real bytes (zeros when the page has no
		// remote image — memory never written reads as zero).
		f := s.newFrame()
		if s.written.Contains(pg) {
			if m.plane != nil {
				// Remotely served faults are the plane's hot-page frequency
				// feed: natural hotspots drive ReplicateHot.
				m.plane.ObserveRead(pg)
			}
			if err := s.fetchDemand(pg, f); err != nil {
				// Unwind the half-taken fault. The engine has already
				// recorded the miss and charged the device model, so the
				// clock must still advance by the fault's latency — device
				// queue occupancy and the latency histogram stay truthful —
				// but OnAccess/MapIn are skipped: there are no bytes to map,
				// and the page stays non-resident so a retry after the
				// outage heals faults through cleanly.
				s.freeFrame(f)
				s.faulting.Delete(pg)
				m.clock.Advance(latency)
				return nil, fmt.Errorf("leap: page %d unreachable: %w", pg, err)
			}
		} else {
			zeroFrame(f)
		}
		s.frames.Put(pg, f)
	} else if s.eng.LastFaultZtier {
		// The fault landed in the compressed tier: unseal into a fresh
		// frame. Take is exclusive — the entry leaves the pool (zswap's
		// load semantics), so the budget never double-charges a page on
		// its way back to residency — and the dirty mark survives, so a
		// sealed dirty page writes back (or reseals) on its next eviction:
		// read-your-writes holds across evict→seal→fault cycles.
		f := s.newFrame()
		raw, dirty, ok := s.ztier.Take(pg, f.data[:0])
		if !ok || len(raw) != remote.PageSize {
			// Unreachable by construction: the engine consulted the pool
			// under this shard's lock, and seals are whole pages.
			s.freeFrame(f)
			s.faulting.Delete(pg)
			m.clock.Advance(latency)
			return nil, fmt.Errorf("leap: page %d lost its compressed image", pg)
		}
		f.dirty = dirty
		s.frames.Put(pg, f)
	}
	m.clock.Advance(latency)
	now = m.clock.Now()
	if s.hints == nil {
		s.eng.OnAccess(s, s.res, pid, 0, pg, miss, now)
	} else {
		hint, hintEnd := s.hintFor(pid, pg)
		s.eng.OnAccessHinted(s, s.res, pid, 0, pg, miss, now, hint, hintEnd)
	}
	s.eng.MapIn(s, s.res, 0, pg, now)
	s.faulting.Delete(pg)
	f, ok := s.frames.Get(pg)
	if !ok {
		// Unreachable by construction: every path above installed a frame.
		return nil, fmt.Errorf("leap: page %d lost its frame", pg)
	}
	return f, m.loadErr()
}

// CheckShardInvariants verifies the single-owner contract of the sharded
// fault path over every page in [0, span): a page may appear in a shard's
// residency set, page cache, frame table, written set, faulting set,
// single-flight demand table or compressed tier only if that shard owns the
// page's stripe — which implies no page is resident (or cached, or sealed)
// in two shards at once. Within the owning stripe it additionally verifies
// exclusivity between the compressed tier and the live fault path: a sealed
// page must not simultaneously be resident, cached or hold a frame (Take is
// exclusive, seal happens only after the frame is dropped). It is a test
// hook: call it only while no operations are in flight. The first violation
// found is returned; nil means the invariants hold across the span.
func (m *Memory) CheckShardInvariants(span core.PageID) error {
	for _, s := range m.shards {
		s.mu.Lock()
		for pg := core.PageID(0); pg < span; pg++ {
			if m.shardFor(pg) == s {
				if s.ztier != nil && s.ztier.Contains(pg) &&
					(s.res.Contains(pg) || s.eng.Cache().Contains(pg) || s.frames.Contains(pg)) {
					s.mu.Unlock()
					return fmt.Errorf("leap: page %d is sealed in shard %d's compressed tier while also live in its fault path",
						pg, s.idx)
				}
				continue
			}
			var where string
			switch {
			case s.res.Contains(pg):
				where = "residency set"
			case s.eng.Cache().Contains(pg):
				where = "page cache"
			case s.frames.Contains(pg):
				where = "frame table"
			case s.written.Contains(pg):
				where = "written set"
			case s.faulting.Contains(pg):
				where = "faulting set"
			case s.demand.Contains(pg):
				where = "demand table"
			case s.ztier != nil && s.ztier.Contains(pg):
				where = "compressed tier"
			default:
				continue
			}
			s.mu.Unlock()
			return fmt.Errorf("leap: page %d found in shard %d's %s (owner is shard %d of %d)",
				pg, s.idx, where, uint64(pg)&m.mask, len(m.shards))
		}
		s.mu.Unlock()
	}
	return nil
}
