package runtime

import (
	"fmt"

	"leap/internal/core"
	"leap/internal/prefetch"
	"leap/internal/remote"
)

// Client is a handle binding one logical client — the paper's "process" —
// to a shared Memory. Leap §4.1 splits the fault stream per PID so one
// process's interleaved pattern cannot pollute another's trend detection;
// Client is that split at the runtime surface: every operation through a
// Client feeds the predictor owned by its id (created on first fault),
// while the page cache, the residency budget and the remote host stay
// shared across all clients, exactly as processes share a kernel.
//
// Handles are cheap and independent: create one per goroutine with
// Memory.Client — several handles may carry the same id, and they then
// share that id's predictor. A single handle is not safe for concurrent
// use (Get returns a buffer owned by the handle); the Memory underneath
// serializes all of them. Client id 0 shares its predictor with the
// Memory's own ReadAt/WriteAt/Get, which run as client 0.
type Client struct {
	m   *Memory
	pid prefetch.PID
	buf []byte
}

// Client returns a new handle for logical client id (negative ids are
// clamped to 0). See Client for the isolation and sharing semantics.
func (m *Memory) Client(id int) *Client {
	if id < 0 {
		id = 0
	}
	return &Client{m: m, pid: prefetch.PID(id), buf: make([]byte, remote.PageSize)}
}

// ID reports the logical client id this handle feeds.
func (c *Client) ID() int { return int(c.pid) }

// Memory reports the shared runtime underneath the handle.
func (c *Client) Memory() *Memory { return c.m }

// ReadAt implements io.ReaderAt over the shared paged address space,
// recording the faults with this client's predictor.
func (c *Client) ReadAt(p []byte, off int64) (int, error) { return c.m.readAt(c.pid, p, off) }

// WriteAt implements io.WriterAt over the shared paged address space,
// recording the faults with this client's predictor.
func (c *Client) WriteAt(p []byte, off int64) (int, error) { return c.m.writeAt(c.pid, p, off) }

// Get faults page pg in (prefetching around it, driven by this client's
// predictor) and returns its 4KB image. The returned slice is owned by the
// handle and reused by its next Get — copy it to retain; the copy is made
// under the fault-path lock, so unlike Memory.Get the bytes are stable
// under concurrency.
func (c *Client) Get(pg core.PageID) ([]byte, error) {
	if err := c.m.getInto(c.pid, pg, c.buf); err != nil {
		return nil, err
	}
	return c.buf, nil
}

// PredictorStats reports this client's predictor statistics, when the
// Memory runs the Leap prefetcher — directly, or as an arm of the
// WithEnsemble selector (the client's private "leap" arm is consulted
// then). ok is false for other policies, or before the client's first
// fault created a predictor. With WithShards beyond 1 each stripe owns a
// separate predictor for this client; the counts are summed across stripes
// (core.Stats fields are additive tallies).
func (c *Client) PredictorStats() (st core.Stats, ok bool) {
	for _, s := range c.m.shards {
		s.mu.Lock()
		lp, isLeap := s.eng.Prefetcher().(*prefetch.Leap)
		if !isLeap {
			if s.ens == nil {
				s.mu.Unlock()
				return core.Stats{}, false
			}
			arm, found := s.ens.ClientArm(c.pid, "leap")
			if !found {
				// Client unseen on this stripe, or no leap arm configured.
				s.mu.Unlock()
				continue
			}
			lp, _ = arm.(*prefetch.Leap)
			if lp == nil {
				s.mu.Unlock()
				continue
			}
		}
		ps, found := lp.ProcessStats()[c.pid]
		s.mu.Unlock()
		if !found {
			continue
		}
		ok = true
		st.Faults += ps.Faults
		st.TrendHits += ps.TrendHits
		st.Speculative += ps.Speculative
		st.Suspended += ps.Suspended
		st.PagesPredicted += ps.PagesPredicted
		st.WindowGrowths += ps.WindowGrowths
		st.WindowShrinks += ps.WindowShrinks
	}
	return st, ok
}

// Advice is an madvise-style access-pattern hint for Client.Advise.
type Advice uint8

const (
	// AdviseNormal clears earlier hints on the range: the configured
	// prefetching policy drives the range again.
	AdviseNormal Advice = iota
	// AdviseSequential declares a forward scan over the range: every fault
	// in it issues a straight-line window of the next pages (clamped to
	// the range end), bypassing the predictor's own candidates.
	AdviseSequential
	// AdviseRandom declares random access over the range: faults in it
	// issue no prefetches at all — no window can help, so none pollutes.
	AdviseRandom
	// AdviseWillNeed warms the range immediately: its pages are prefetched
	// now through the normal deduplicated prefetch path (resident, cached,
	// in-flight, sealed and in-demand pages are skipped, so read-your-
	// writes is never at risk), with real bytes fetched underneath.
	AdviseWillNeed
)

// Advise declares this client's access pattern for pages [start,
// start+pages) — the runtime counterpart of madvise(2), grounded in 3PO's
// programmed-hints line. Range hints (Sequential, Random, Normal) are
// sticky: they steer candidate generation on every later fault by this
// client in the range, with the newest declaration winning on overlap.
// AdviseWillNeed acts once, immediately. Hints steer prefetch issue only —
// the predictor still observes every access, and no hint can bypass the
// fault path's correctness machinery. Safe for concurrent use.
func (c *Client) Advise(a Advice, start core.PageID, pages int) error {
	m := c.m
	if err := m.loadErr(); err != nil {
		return err
	}
	if start < 0 {
		return fmt.Errorf("leap: negative advise start page %d", start)
	}
	if pages <= 0 {
		return fmt.Errorf("leap: advise over %d pages, need > 0", pages)
	}
	end := start + core.PageID(pages)
	switch a {
	case AdviseWillNeed:
		var buf []core.PageID
		for _, s := range m.shards {
			buf = buf[:0]
			for pg := start; pg < end; pg++ {
				if m.shardFor(pg) == s {
					buf = append(buf, pg)
				}
			}
			if len(buf) == 0 {
				continue
			}
			s.mu.Lock()
			now := m.clock.Now()
			s.eng.FlushArrivals(now)
			s.eng.Prefetch(s, s.res, 0, buf, now)
			s.mu.Unlock()
		}
		return m.loadErr()
	case AdviseNormal, AdviseSequential, AdviseRandom:
		r := hintRange{start: start, end: end, advice: a}
		for _, s := range m.shards {
			s.mu.Lock()
			if s.hints == nil {
				s.hints = make(map[prefetch.PID][]hintRange)
			}
			s.hints[c.pid] = append(s.hints[c.pid], r)
			s.mu.Unlock()
		}
		return nil
	default:
		return fmt.Errorf("leap: unknown advice %d", a)
	}
}

// SelectionEvent is one entry of a client's ensemble selection history: on
// stripe Shard, Arm took over at the client's Fault-th miss there (Fault 0
// is the initial selection).
type SelectionEvent struct {
	// Shard is the stripe whose selector recorded the event.
	Shard int
	// Fault is the client's cumulative miss count on that stripe when the
	// arm took over.
	Fault int64
	// Arm is the selected prefetcher's registered name.
	Arm string
}

// SelectionHistory reports this client's per-stripe ensemble selection
// history — the initial arm plus every hysteresis-approved switch, in
// stripe order then fault order. Nil without WithEnsemble, or before the
// client's first fault. Safe to call concurrently with operations.
func (c *Client) SelectionHistory() []SelectionEvent {
	var out []SelectionEvent
	for _, s := range c.m.shards {
		if s.ens == nil {
			return nil
		}
		s.mu.Lock()
		h := s.ens.History(c.pid)
		s.mu.Unlock()
		for _, ev := range h {
			out = append(out, SelectionEvent{Shard: s.idx, Fault: ev.Fault, Arm: ev.Arm})
		}
	}
	return out
}
