package runtime

import (
	"leap/internal/core"
	"leap/internal/prefetch"
	"leap/internal/remote"
)

// Client is a handle binding one logical client — the paper's "process" —
// to a shared Memory. Leap §4.1 splits the fault stream per PID so one
// process's interleaved pattern cannot pollute another's trend detection;
// Client is that split at the runtime surface: every operation through a
// Client feeds the predictor owned by its id (created on first fault),
// while the page cache, the residency budget and the remote host stay
// shared across all clients, exactly as processes share a kernel.
//
// Handles are cheap and independent: create one per goroutine with
// Memory.Client — several handles may carry the same id, and they then
// share that id's predictor. A single handle is not safe for concurrent
// use (Get returns a buffer owned by the handle); the Memory underneath
// serializes all of them. Client id 0 shares its predictor with the
// Memory's own ReadAt/WriteAt/Get, which run as client 0.
type Client struct {
	m   *Memory
	pid prefetch.PID
	buf []byte
}

// Client returns a new handle for logical client id (negative ids are
// clamped to 0). See Client for the isolation and sharing semantics.
func (m *Memory) Client(id int) *Client {
	if id < 0 {
		id = 0
	}
	return &Client{m: m, pid: prefetch.PID(id), buf: make([]byte, remote.PageSize)}
}

// ID reports the logical client id this handle feeds.
func (c *Client) ID() int { return int(c.pid) }

// Memory reports the shared runtime underneath the handle.
func (c *Client) Memory() *Memory { return c.m }

// ReadAt implements io.ReaderAt over the shared paged address space,
// recording the faults with this client's predictor.
func (c *Client) ReadAt(p []byte, off int64) (int, error) { return c.m.readAt(c.pid, p, off) }

// WriteAt implements io.WriterAt over the shared paged address space,
// recording the faults with this client's predictor.
func (c *Client) WriteAt(p []byte, off int64) (int, error) { return c.m.writeAt(c.pid, p, off) }

// Get faults page pg in (prefetching around it, driven by this client's
// predictor) and returns its 4KB image. The returned slice is owned by the
// handle and reused by its next Get — copy it to retain; the copy is made
// under the fault-path lock, so unlike Memory.Get the bytes are stable
// under concurrency.
func (c *Client) Get(pg core.PageID) ([]byte, error) {
	if err := c.m.getInto(c.pid, pg, c.buf); err != nil {
		return nil, err
	}
	return c.buf, nil
}

// PredictorStats reports this client's predictor statistics, when the
// Memory runs the Leap prefetcher (ok is false otherwise, or before the
// client's first fault created a predictor). With WithShards beyond 1 each
// stripe owns a separate predictor for this client; the counts are summed
// across stripes (core.Stats fields are additive tallies).
func (c *Client) PredictorStats() (st core.Stats, ok bool) {
	for _, s := range c.m.shards {
		lp, isLeap := s.eng.Prefetcher().(*prefetch.Leap)
		if !isLeap {
			return core.Stats{}, false
		}
		s.mu.Lock()
		ps, found := lp.ProcessStats()[c.pid]
		s.mu.Unlock()
		if !found {
			continue
		}
		ok = true
		st.Faults += ps.Faults
		st.TrendHits += ps.TrendHits
		st.Speculative += ps.Speculative
		st.Suspended += ps.Suspended
		st.PagesPredicted += ps.PagesPredicted
		st.WindowGrowths += ps.WindowGrowths
		st.WindowShrinks += ps.WindowShrinks
	}
	return st, ok
}
