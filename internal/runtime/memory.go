// Package runtime implements the leap.Memory runtime — the byte-addressable
// paged memory that fuses the predictor, prefetchers, page cache and the
// real remote-memory substrate behind one fault path (internal/paging). The
// root package leap re-exports it; use leap.Open.
package runtime

import (
	"errors"
	"fmt"
	"sync/atomic"

	"leap/internal/control"
	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/metrics"
	"leap/internal/pagecache"
	"leap/internal/pagemap"
	"leap/internal/paging"
	"leap/internal/prefetch"
	"leap/internal/remote"
	"leap/internal/sim"
	"leap/internal/ztier"
)

// Memory is the byte-addressable remote-memory runtime: the paper's full
// stack fused into one object. Local memory is a bounded set of page
// frames (the cgroup budget); everything beyond it lives on the remote
// substrate (RemoteHost: rendezvous-placed, replicated slabs reached over
// in-process or TCP transports). An access to a non-local page takes the
// same fault path as the simulator — the internal/paging engine shared with
// Simulate — so the majority-trend predictor watches the fault stream,
// prefetch windows go out to the real host through the async ticket engine
// (doorbell-batched wire frames), and the adaptive page cache decides
// eviction, while real page images move underneath.
//
// Time is virtual: every fault charges the modeled data-path + fabric
// latency to the runtime's clock (WithClock shares it), so hit ratios,
// latency percentiles and prefetch accuracy are reproducible bit-for-bit
// from the options — while the bytes, placement, replication and failover
// are real.
//
// Memory is safe for concurrent use: ReadAt, WriteAt, Get, Flush and Stats
// may be called from arbitrary goroutines. The fault path is sharded by
// PageID stripe (WithShards): each stripe owns its engine, predictor state,
// page cache, residency budget and frame table behind its own mutex, so a
// page-cache hit takes exactly one shard lock and hits on different stripes
// scale across cores. Cross-shard concerns — the virtual clock, the error
// latch, the demand-fetch overlap budget and the control-plane tick cadence
// — are atomics on the Memory coordinator; the documented lock order is
// shard.mu → plane.mu → host.mu, with at most one shard lock held at a
// time. Within a shard, a full miss drops the lock for the remote fetch
// when WithConcurrency allows, registering a single-flight entry so
// concurrent faults on the same page wait for one fetch while faults on
// other pages proceed in parallel. The default WithShards(1) runs one
// stripe — bit-identical to the pre-sharding serialized runtime.
//
// The paper's multi-process deployment (§4.1) maps onto Client handles:
// each logical client id gets its own predictor over its own fault stream
// (per stripe), while all clients share the page caches, the residency
// budget and the remote host. Two caveats: the slice returned by Memory.Get
// aliases the live frame table and is safe only for single-goroutine use
// (Client.Get copies instead), and a clock shared via WithClock must not be
// touched while operations are in flight.
type Memory struct {
	// shards are the PageID stripes of the fault path; page pg belongs to
	// shards[uint64(pg)&mask]. len(shards) is a power of two.
	shards []*shard
	mask   uint64

	host *remote.Host
	// ownHost marks a self-built in-process host (closed by Close; a host
	// supplied via WithRemoteHost is the caller's to close).
	ownHost bool
	clock   *sim.Clock
	qdepth  int
	// conc is the WithConcurrency bound: the number of demand-miss fetches
	// allowed to overlap outside the shard locks, globally across shards.
	// conc <= 1 keeps every fetch under its shard's lock — the strictly
	// serialized PR-4 execution order.
	conc     int
	fetching atomic.Int64 // demand fetches currently running unlocked

	// err latches the first unrecoverable store failure (a writeback no
	// replica accepted); every subsequent operation reports it. An atomic
	// CAS keeps the latch first-wins across shards without a coordinator
	// lock.
	err atomic.Pointer[error]

	// plane is the attached control plane (nil without WithControlPlane).
	// planeEvery is the virtual-time tick cadence and planeNext the next due
	// tick (atomic: the cadence check runs lock-free on every operation, and
	// a CAS elects exactly one goroutine to run each due tick — lock order
	// is shard.mu → plane.mu → host.mu, and the tick path runs with no
	// shard lock held, entering at plane.mu, so plane actions may mutate the
	// host freely).
	plane      *control.Plane
	planeEvery sim.Duration
	planeNext  atomic.Int64
	// planeTicks / planeActs count ticks run and successful actions by kind.
	// Atomics: Stats must not order shard locks against the plane's locks.
	planeTicks atomic.Int64
	planeActs  [8]atomic.Int64
	// slabPages sizes agents the plane provisions on the private cluster.
	slabPages int

	// lastLatency/lastSerial snapshot the most recent fault's total and
	// CPU-serial latency for the closed-loop concurrency model (LastFault);
	// meaningful only when one goroutine drives the Memory.
	lastLatency atomic.Int64
	lastSerial  atomic.Int64
}

// demandFetch is one single-flight demand read in progress with the shard
// lock dropped; done closes once the page is mapped in (or the fetch
// failed).
type demandFetch struct {
	done chan struct{}
}

// frame is one 4KB local page frame. Frames are pooled per shard; data
// stays at PageSize.
type frame struct {
	data  []byte
	dirty bool
	next  *frame // free list
}

// DefaultConcurrency is the default WithConcurrency bound: how many
// demand-miss fetches may overlap outside the fault-path locks.
const DefaultConcurrency = 8

// memOptions collects Open's functional options.
type memOptions struct {
	pf         prefetch.Prefetcher
	pfFactory  func() prefetch.Prefetcher
	ensCfg     *prefetch.EnsembleConfig
	host       *remote.Host
	capacity   int
	queueDepth int
	conc       int
	shards     int
	clock      *sim.Clock
	seed       uint64
	agents     int
	slabPages  int
	planeCfg   *control.Config
	planeEvery sim.Duration
	retry      remote.RetryPolicy
	retrySet   bool
	ztierBytes int64
	ztierLat   sim.Duration
	wireComp   bool
}

// Option configures Open.
type Option func(*memOptions)

// WithPrefetcher selects the prefetching policy consulted on every fault
// (default: the Leap majority-trend predictor). Build baselines with
// NewPrefetcher("readahead"), NewPrefetcher("none"), etc. A supplied
// prefetcher is a single instance and cannot be split across stripes:
// incompatible with WithShards beyond 1 — use WithPrefetcherFactory there,
// which builds one instance per stripe.
func WithPrefetcher(p prefetch.Prefetcher) Option { return func(o *memOptions) { o.pf = p } }

// WithPrefetcherFactory selects the prefetching policy by factory: every
// PageID stripe calls f once and owns the returned instance under its own
// lock, so any policy — not just the default Leap — runs sharded. The
// factory must return independent instances (stripe state is never shared).
// Mutually exclusive with WithPrefetcher and WithEnsemble. At WithShards(1)
// it is equivalent to WithPrefetcher(f()).
func WithPrefetcherFactory(f func() prefetch.Prefetcher) Option {
	return func(o *memOptions) { o.pfFactory = f }
}

// WithEnsemble replaces the fixed prefetching policy with the online
// per-client selector (prefetch.Ensemble): each client's arms — private
// instances of the configured prefetchers — shadow-score the client's
// fault stream, and live prefetch decisions route to the current winner
// with hysteresis. Deterministic given the seed: selection is a pure
// function of the access stream. Each stripe owns an independent selector
// (per-stripe fault streams, like every predictor here); Stats.Ensemble
// aggregates them and Client.SelectionHistory exposes per-client switches.
// Mutually exclusive with WithPrefetcher and WithPrefetcherFactory. The
// zero EnsembleConfig takes the documented defaults.
func WithEnsemble(cfg prefetch.EnsembleConfig) Option {
	return func(o *memOptions) { o.ensCfg = &cfg }
}

// WithRemoteHost runs the Memory over an existing host — typically one
// dialed to TCP agents (cmd/leapagent). The caller keeps ownership: Close
// flushes but does not close it. Without this option Open builds a private
// three-agent in-process cluster with two-way replication.
func WithRemoteHost(h *remote.Host) Option { return func(o *memOptions) { o.host = h } }

// WithCacheCapacity sets the local memory budget in pages — the cgroup
// limit resident frames plus the prefetch cache are charged against
// (default 1024 pages = 4MB). With WithShards the budget is striped
// statically: each shard gets capacity/shards pages (the remainder goes to
// the low shards), so the global budget is exact while every shard admits
// and evicts under only its own lock.
func WithCacheCapacity(pages int) Option { return func(o *memOptions) { o.capacity = pages } }

// WithQueueDepth bounds the async ticket engine's doorbell batches: up to
// this many page operations ride one wire frame per agent, and eviction
// writebacks accumulate behind a dirty backlog of the same bound (default
// 8; 1 degenerates to one synchronous round trip per page).
func WithQueueDepth(depth int) Option { return func(o *memOptions) { o.queueDepth = depth } }

// WithConcurrency bounds how many demand-miss fetches may run outside the
// fault-path locks at once, globally across shards (default
// DefaultConcurrency). Size it to the number of goroutines expected to
// drive the Memory. 1 pins every fetch under its shard's lock — the fault
// path becomes strictly serialized per stripe, executing exactly like the
// pre-concurrency runtime; a single-goroutine caller makes identical
// decisions at every setting.
func WithConcurrency(n int) Option { return func(o *memOptions) { o.conc = n } }

// WithShards splits the fault path into n PageID stripes, each with its own
// lock, engine, predictor, page cache and residency budget, so operations
// on different stripes proceed in parallel and page-cache hits take exactly
// one shard lock (default 1; values are rounded up to the next power of
// two). Page pg lands on stripe pg mod n — round-robin striping, so a hot
// contiguous range spreads across all stripes. Each stripe's Leap predictor
// sees only its own fault stream; a sequential sweep's in-stripe deltas are
// uniform, so trend detection survives striping, and cross-stripe prefetch
// candidates are filtered out rather than issued blind. WithShards(1) is
// bit-identical to the pre-sharding serialized runtime. Incompatible with
// WithPrefetcher beyond 1 shard, and WithCacheCapacity must provide at
// least one page per shard.
func WithShards(n int) Option { return func(o *memOptions) { o.shards = n } }

// DefaultDecompressLatency is the virtual-time charge of unsealing one page
// from the compressed victim tier (WithCompressedTier): roughly an LZ4-class
// 4KB decompression — microseconds, well under the modeled fabric round
// trip, which is the whole point of the tier.
const DefaultDecompressLatency = 1500 * sim.Nanosecond

// WithCompressedTier interposes a zswap-style compressed victim tier of the
// given byte budget between the residency LRU and the remote host (default
// 0: no tier). Evicted pages with a useful image are sealed — compressed
// with a deterministic LZ-style codec, incompressible pages capped at ~4KB
// plus a header — into per-stripe pools charged against the budget; a fault
// on a sealed page decompresses locally, charging DefaultDecompressLatency
// on the virtual clock instead of a fabric round trip. Pools overflow
// oldest-first: dirty victims write back through the async ticket engine.
// With WithShards the budget is striped like WithCacheCapacity — each
// stripe's pool lives under its own shard lock, so no new cross-shard locks
// appear. Zero keeps the fault path bit-identical to the tierless runtime.
func WithCompressedTier(bytes int64) Option { return func(o *memOptions) { o.ztierBytes = bytes } }

// WithWireCompression ships the private cluster's batched doorbell frames
// with per-page compressed payloads (default false): write batches go out
// compressed and read batches ask agents for compressed responses, end to
// end through any transport. The codec is deterministic, so replay is
// unchanged — the realized wire ratio shows up in Stats.Host's Wire*
// counters, not the latency model. Incompatible with WithRemoteHost: set
// RemoteHostConfig.Compress on the supplied host instead.
func WithWireCompression(on bool) Option { return func(o *memOptions) { o.wireComp = on } }

// WithDecompressLatency overrides the virtual-time charge of a compressed-
// tier hit (default DefaultDecompressLatency; zero or negative keeps the
// default). Meaningful only with WithCompressedTier.
func WithDecompressLatency(d sim.Duration) Option { return func(o *memOptions) { o.ztierLat = d } }

// WithClock shares a virtual clock with the runtime (for virtual-time
// tests: fault latencies are charged to it, so a test can interleave its
// own events deterministically). Default: a private clock starting at 0.
func WithClock(c *sim.Clock) Option { return func(o *memOptions) { o.clock = c } }

// WithSeed seeds the latency models (fabric jitter, data-path stage draws).
// Equal seeds and equal access sequences replay bit-identically.
func WithSeed(seed uint64) Option { return func(o *memOptions) { o.seed = seed } }

// shardSeed derives the latency-model seed for stripe idx. Stripe 0 keeps
// the user seed exactly — WithShards(1) must replay the unsharded runtime
// bit-for-bit — and higher stripes decorrelate through a splitmix64 step.
func shardSeed(seed uint64, idx int) uint64 {
	if idx == 0 {
		return seed
	}
	z := seed + uint64(idx)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}

// Open builds a Memory runtime. With no options it is the full Leap stack
// of the paper over a private in-process remote-memory cluster: lean data
// path, eager cache eviction, majority-trend prefetching, async
// doorbell-batched remote I/O.
func Open(opts ...Option) (*Memory, error) {
	o := memOptions{
		capacity:   1024,
		queueDepth: remote.DefaultQueueDepth,
		conc:       DefaultConcurrency,
		seed:       42,
		agents:     3,
		slabPages:  1024,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.capacity <= 0 {
		return nil, fmt.Errorf("leap: cache capacity %d, need > 0", o.capacity)
	}
	if o.queueDepth <= 0 {
		o.queueDepth = 1
	}
	if o.conc <= 0 {
		o.conc = DefaultConcurrency
	}
	nshards := 1
	for nshards < o.shards {
		nshards <<= 1
	}
	if o.pf != nil && o.pfFactory != nil {
		return nil, fmt.Errorf("leap: WithPrefetcher and WithPrefetcherFactory are mutually exclusive; keep the factory")
	}
	if o.ensCfg != nil && (o.pf != nil || o.pfFactory != nil) {
		return nil, fmt.Errorf("leap: WithEnsemble supplies its own per-stripe selector and is mutually exclusive with WithPrefetcher/WithPrefetcherFactory")
	}
	if o.pf != nil && nshards > 1 {
		return nil, fmt.Errorf("leap: WithPrefetcher supplies a single prefetcher instance and cannot be split across %d shards; use WithPrefetcherFactory to build one instance per stripe (or WithShards(1))", nshards)
	}
	if o.capacity < nshards {
		return nil, fmt.Errorf("leap: cache capacity %d pages < %d shards, need at least one page per shard", o.capacity, nshards)
	}
	if o.retrySet && o.host != nil {
		return nil, fmt.Errorf("leap: WithRetryPolicy configures the private in-process cluster; set RemoteHostConfig.Retry (and SetTimeSource) on the host passed to WithRemoteHost instead")
	}
	if o.ztierBytes < 0 {
		return nil, fmt.Errorf("leap: compressed tier budget %d bytes, need >= 0", o.ztierBytes)
	}
	if o.wireComp && o.host != nil {
		return nil, fmt.Errorf("leap: WithWireCompression configures the private in-process cluster; set RemoteHostConfig.Compress on the host passed to WithRemoteHost instead")
	}
	m := &Memory{
		clock:     o.clock,
		qdepth:    o.queueDepth,
		conc:      o.conc,
		slabPages: o.slabPages,
		mask:      uint64(nshards - 1),
	}
	if m.clock == nil {
		m.clock = &sim.Clock{}
	}
	m.host = o.host
	if m.host == nil {
		transports := make([]remote.Transport, o.agents)
		for i := range transports {
			tr := remote.Transport(remote.NewInProc(remote.NewAgent(o.slabPages, 0)))
			if o.planeCfg != nil {
				// With a plane attached the private cluster's transports get
				// fault-injection wrappers: pass-through while healthy (bit-
				// identical to the bare transport), observable by the plane,
				// and reachable via Host.Transports for chaos tests.
				tr = remote.NewFaultTransport(i, tr, nil)
			}
			transports[i] = tr
		}
		h, err := remote.NewHost(remote.HostConfig{
			SlabPages:  o.slabPages,
			Replicas:   2,
			QueueDepth: o.queueDepth,
			Seed:       o.seed,
			Retry:      o.retry,
			Compress:   o.wireComp,
		}, transports)
		if err != nil {
			return nil, err
		}
		m.host = h
		m.ownHost = true
		if o.retrySet {
			// Ticket deadlines measure virtual time off the runtime clock,
			// which is atomic — race-free from any stripe.
			h.SetTimeSource(m.clock.Now)
		}
	}
	// Resolve one prefetcher per stripe up front, so factory and ensemble
	// misconfigurations surface as Open errors rather than mid-fault.
	pfs := make([]prefetch.Prefetcher, nshards)
	for i := range pfs {
		switch {
		case o.ensCfg != nil:
			en, err := prefetch.NewEnsemble(*o.ensCfg)
			if err != nil {
				return nil, fmt.Errorf("leap: WithEnsemble: %w", err)
			}
			pfs[i] = en
		case o.pfFactory != nil:
			p := o.pfFactory()
			if p == nil {
				return nil, fmt.Errorf("leap: WithPrefetcherFactory returned nil for stripe %d", i)
			}
			pfs[i] = p
		case o.pf != nil:
			pfs[i] = o.pf
		default:
			pfs[i] = prefetch.NewLeap(core.Config{})
		}
	}
	m.shards = make([]*shard, nshards)
	for i := range m.shards {
		m.shards[i] = m.newShard(i, nshards, &o, pfs[i])
	}
	if o.planeCfg != nil {
		m.attachPlane(*o.planeCfg, o.planeEvery)
	}
	return m, nil
}

// newShard builds stripe idx of nshards: its own engine (latency models
// seeded per stripe, stripe 0 keeping the user seed), the stripe's
// prefetcher pf (resolved by Open — default Leap, a shared WithPrefetcher
// instance at one stripe, one factory-built instance per stripe, or an
// ensemble selector), cache, residency budget and frame pool. The global
// capacity is striped statically — capacity/nshards pages each, remainder
// to the low stripes.
func (m *Memory) newShard(idx, nshards int, o *memOptions, pf prefetch.Prefetcher) *shard {
	capacity := o.capacity / nshards
	if idx < o.capacity%nshards {
		capacity++
	}
	s := &shard{
		m:        m,
		idx:      idx,
		frames:   pagemap.New[*frame](capacity),
		written:  pagemap.New[struct{}](0),
		faulting: pagemap.New[struct{}](0),
		demand:   pagemap.New[*demandFetch](0),
	}
	s.ens, _ = pf.(*prefetch.Ensemble)
	// The full Leap stack of §4: lean data path, eager cache eviction, and
	// (unless overridden) majority-trend prefetching — the same
	// configuration Simulate's SystemDVMMLeap preset builds, so a Memory
	// run and a simulator run over one trace make identical decisions.
	s.eng = paging.New[*shard](paging.Config{
		Path:        datapath.Config{Kind: datapath.Lean},
		CachePolicy: pagecache.EvictEager,
		Prefetcher:  pf,
		QueueDepth:  o.queueDepth,
		Seed:        shardSeed(o.seed, idx),
	})
	if nshards > 1 {
		// Prefetch candidates outside this stripe belong to a sibling's
		// engine: filter them instead of issuing blind (a foreign-page frame
		// here would break the single-owner invariant). The predictor's
		// in-stripe trends produce in-stripe candidates, so for Leap this
		// only trims the cold-start neighbor fallback; baseline readahead
		// loses the cross-stripe tail by design. Nil at one shard: the
		// unfiltered, bit-identical engine.
		own := uint64(idx)
		s.eng.Owns = func(pg core.PageID) bool { return uint64(pg)&m.mask == own }
	}
	s.res = paging.NewResident(capacity)
	s.res.Limit = int64(capacity)
	s.eng.OnInsert = func(ss *shard) { ss.res.Charged++ }
	s.eng.OnIssue = (*shard).fetchPrefetches
	s.eng.OnEvict = (*shard).evictResident
	s.eng.Cache().OnEvict = s.cacheEvicted
	s.cAccesses = s.eng.Counters.Handle("accesses")
	s.cFaults = s.eng.Counters.Handle("faults")
	s.cResidentHits = s.eng.Counters.Handle("resident_hits")
	s.cDemandWaits = s.eng.Counters.Handle("demand_waits")
	if o.ztierBytes > 0 {
		// The compressed tier's byte budget is striped exactly like the
		// frame budget: bytes/nshards each, remainder to the low stripes.
		// Each pool lives under its stripe's lock — no cross-shard locks.
		zb := o.ztierBytes / int64(nshards)
		if int64(idx) < o.ztierBytes%int64(nshards) {
			zb++
		}
		s.ztier = ztier.NewPool(zb, remote.PageSize)
		s.ztier.OnEvict = s.ztierEvicted
		lat := o.ztierLat
		if lat <= 0 {
			lat = DefaultDecompressLatency
		}
		s.eng.EnableZtier(s.ztier.Contains, lat)
	}
	return s
}

// Now reports the runtime's virtual time.
func (m *Memory) Now() sim.Time { return m.clock.Now() }

// LastFault reports the virtual-time latency of the most recent fault —
// total, and the CPU-serial share that cannot overlap other goroutines'
// faults (data-path traversal, cache work; the rest is waitable wire time).
// A resident hit reports (0, 0). Meaningful only while a single goroutine
// drives the Memory: the closed-loop concurrency model (internal/load)
// reads it per operation.
func (m *Memory) LastFault() (total, serial sim.Duration) {
	return sim.Duration(m.lastLatency.Load()), sim.Duration(m.lastSerial.Load())
}

// SetRecording toggles metric collection — populate/warmup phases run with
// recording off, exactly like the simulator's warmup. Turning recording on
// snapshots cache counters so Stats covers only the measured phase. Bytes
// always move; only accounting pauses. Shards toggle one by one: call only
// while no operations are in flight.
func (m *Memory) SetRecording(on bool) {
	for _, s := range m.shards {
		s.mu.Lock()
		if on && !s.eng.Recording() {
			s.cacheStats0 = s.eng.Cache().Stats()
		}
		s.eng.SetRecording(on)
		s.mu.Unlock()
	}
}

// Host exposes the remote substrate (stats, repair, rebalance hooks). The
// Host is itself safe for concurrent use.
func (m *Memory) Host() *remote.Host { return m.host }

// Prefetcher exposes the configured prefetcher (e.g. to read per-client
// predictor statistics off a *prefetch.Leap). With WithShards beyond 1
// every stripe owns a separate predictor and this returns stripe 0's; use
// Client.PredictorStats for the cross-stripe aggregate. Prefetcher state is
// guarded by its stripe's fault-path lock: inspect it only while no
// operations are in flight.
func (m *Memory) Prefetcher() prefetch.Prefetcher { return m.shards[0].eng.Prefetcher() }

// zeroFrame clears a recycled frame's bytes.
func zeroFrame(f *frame) {
	clear(f.data)
}

// loadErr reports the latched unrecoverable failure, or nil.
func (m *Memory) loadErr() error {
	if p := m.err.Load(); p != nil {
		return *p
	}
	return nil
}

// latchErr records err as the Memory's permanent failure; the first latch
// wins (CAS — shards race here without a coordinator lock).
func (m *Memory) latchErr(err error) {
	m.err.CompareAndSwap(nil, &err)
}

// latchWriteback records err as the Memory's permanent store failure —
// unless it is a read-op failure surfaced through Flush. Flush drains read
// and write tickets alike, and a failed prefetch read is handled per-ticket
// (the prefetch is abandoned, a later demand access refetches): only a
// writeback no replica accepted means acked application data is gone.
func (m *Memory) latchWriteback(err error) {
	if err == nil || m.err.Load() != nil || isReadOpError(err) {
		return
	}
	m.latchErr(fmt.Errorf("leap: writeback failed: %w", err))
}

// isReadOpError reports whether err is a ticket-engine read failure.
func isReadOpError(err error) bool {
	var oe *remote.OpError
	return errors.As(err, &oe) && oe.Op == remote.OpRead
}

// Get faults page pg in (prefetching around it) and returns its 4KB frame.
// The returned slice is a read-only view into the owning shard's frame
// table, valid until the next Memory operation — which makes it safe only
// when one goroutine drives the Memory. Concurrent callers should use
// Client.Get (which copies) or ReadAt; use WriteAt to mutate pages.
func (m *Memory) Get(pg core.PageID) ([]byte, error) {
	s := m.shardFor(pg)
	s.mu.Lock()
	f, err := s.page(0, pg)
	var data []byte
	if err == nil {
		data = f.data
	}
	s.mu.Unlock()
	if m.plane != nil {
		if now, due := m.planeDue(); due {
			m.tickPlane(now)
		}
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// getInto faults pg in on behalf of pid and copies its frame into dst while
// the shard lock is held — the concurrency-safe form of Get.
func (m *Memory) getInto(pid prefetch.PID, pg core.PageID, dst []byte) error {
	s := m.shardFor(pg)
	s.mu.Lock()
	f, err := s.page(pid, pg)
	if err == nil {
		copy(dst, f.data)
	}
	s.mu.Unlock()
	if m.plane != nil {
		if now, due := m.planeDue(); due {
			m.tickPlane(now)
		}
	}
	return err
}

// ReadAt implements io.ReaderAt over the paged address space: it fills p
// from offset off, faulting (and prefetching) page by page. Never-written
// memory reads as zeros; there is no EOF. Safe for concurrent use; each
// page is read atomically, a multi-page span is not.
func (m *Memory) ReadAt(p []byte, off int64) (int, error) { return m.readAt(0, p, off) }

// readAt is ReadAt on behalf of client pid. Bytes are copied out while the
// owning shard's lock is held, page by page.
func (m *Memory) readAt(pid prefetch.PID, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("leap: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		pg := core.PageID(off / remote.PageSize)
		s := m.shardFor(pg)
		s.mu.Lock()
		f, err := s.page(pid, pg)
		if err != nil {
			s.mu.Unlock()
			return n, err
		}
		c := copy(p[n:], f.data[off%remote.PageSize:])
		s.mu.Unlock()
		if m.plane != nil {
			if now, due := m.planeDue(); due {
				m.tickPlane(now)
			}
		}
		n += c
		off += int64(c)
	}
	return n, nil
}

// WriteAt implements io.WriterAt: it copies p into the paged address space
// at offset off. Partially covered pages fault in first (read-modify-write);
// dirty frames are written back to the remote host on eviction through the
// async ticket engine. Safe for concurrent use; each page is written
// atomically, a multi-page span is not.
func (m *Memory) WriteAt(p []byte, off int64) (int, error) { return m.writeAt(0, p, off) }

// writeAt is WriteAt on behalf of client pid.
func (m *Memory) writeAt(pid prefetch.PID, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("leap: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		pg := core.PageID(off / remote.PageSize)
		s := m.shardFor(pg)
		s.mu.Lock()
		f, err := s.page(pid, pg)
		if err != nil {
			s.mu.Unlock()
			return n, err
		}
		c := copy(f.data[off%remote.PageSize:], p[n:])
		f.dirty = true
		s.mu.Unlock()
		if m.plane != nil {
			if now, due := m.planeDue(); due {
				m.tickPlane(now)
			}
		}
		n += c
		off += int64(c)
	}
	return n, nil
}

// Flush drains every queued asynchronous remote operation (each shard's
// writeback backlog, then the host's ticket queues) and reports the first
// store failure, if any. Resident dirty frames stay local — they are
// memory, not a write-through cache — and reach the host on eviction.
func (m *Memory) Flush() error {
	err := m.flushAll()
	if m.plane != nil {
		if now, due := m.planeDue(); due {
			m.tickPlane(now)
		}
	}
	return err
}

// flushAll drains per-shard writeback backlogs (one shard lock at a time)
// and then the shared host, latching any store failure.
func (m *Memory) flushAll() error {
	for _, s := range m.shards {
		s.mu.Lock()
		s.eng.FlushWriteback(0, m.clock.Now())
		s.mu.Unlock()
	}
	if err := m.host.Flush(); err != nil && m.err.Load() == nil && !isReadOpError(err) {
		m.latchErr(fmt.Errorf("leap: flush failed: %w", err))
	}
	return m.loadErr()
}

// Close flushes queued remote operations and, when the runtime owns its
// in-process cluster, closes the host. A host supplied via WithRemoteHost
// is left open for its owner.
func (m *Memory) Close() error {
	err := m.flushAll()
	if m.ownHost {
		if cerr := m.host.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Stats aggregates the runtime's fault-path accounting. Counts are
// cumulative since Open.
type Stats struct {
	// Accesses is every page touch; ResidentHits paid no fault.
	Accesses, ResidentHits int64
	// Faults is every non-resident access; CacheHits landed on a completed
	// prefetch, InflightHits on one still in flight, Misses went to the
	// host (or materialized a zero page).
	Faults, CacheHits, InflightHits, Misses int64
	// DemandWaits counts faults that waited on another goroutine's
	// in-flight demand fetch of the same page instead of re-issuing it —
	// the single-flight dedup at work. Always 0 single-threaded.
	DemandWaits int64
	// PrefetchIssued counts pages the prefetcher requested; Swapouts counts
	// resident evictions.
	PrefetchIssued, Swapouts int64
	// Evictions counts residency evictions that reached the byte-moving
	// eviction hook; WritebackPages counts page images actually pushed to
	// the host by eviction or compressed-tier overflow. Both are
	// recording-gated like every counter here.
	Evictions, WritebackPages int64
	// HitRatio is the fraction of accesses that did not pay a full miss.
	HitRatio float64
	// Accuracy is prefetch hits / prefetch issued; Coverage is prefetch
	// hits / faults (§3.1 definitions).
	Accuracy, Coverage float64
	// Latency summarizes the virtual-time fault latency distribution,
	// merged across shards.
	Latency metrics.Summary
	// Host is the remote substrate's accounting (wire frames, failovers,
	// repairs).
	Host remote.HostStats
	// Control is the attached control plane's view of the cluster and the
	// actions it has taken (zero-valued without WithControlPlane).
	Control ControlStats
	// Ztier is the compressed victim tier's accounting (zero-valued
	// without WithCompressedTier).
	Ztier ZtierStats
	// Ensemble is the online prefetcher selector's accounting (zero-valued
	// without WithEnsemble).
	Ensemble EnsembleStats
}

// EnsembleStats is the online prefetcher selector's accounting, summed
// across stripes. The zero value (Enabled false) means no selector is
// attached; every field is a plain comparable scalar, so Stats stays
// comparable with == (the ZtierStats discipline). Per-client selection
// detail lives on Client.SelectionHistory.
type EnsembleStats struct {
	// Enabled reports whether WithEnsemble attached the selector.
	Enabled bool
	// Clients counts (client, stripe) selector states created — a client
	// faulting on every stripe counts once per stripe.
	Clients int
	// Epochs counts selection epochs closed; Switches counts arm changes
	// taken after hysteresis.
	Epochs, Switches int64
	// Regret is the cumulative bandit regret in prefetch hits: per epoch,
	// the best arm's scored hits beyond the selected arm's.
	Regret int64
}

// ZtierStats is the compressed victim tier's accounting, summed across
// stripes. The zero value (Enabled false) means no tier is attached; every
// field is a plain comparable scalar, so Stats stays comparable with == —
// the discipline the replay-determinism tests rely on (see ControlStats).
type ZtierStats struct {
	// Enabled reports whether WithCompressedTier attached a tier.
	Enabled bool
	// BudgetBytes is the configured byte budget; UsedBytes and Pages are
	// the current occupancy (compressed bytes plus per-entry overhead).
	BudgetBytes, UsedBytes int64
	Pages                  int
	// Hits counts faults served by local decompression instead of a remote
	// read (recording-gated). Seals counts pages compressed in and Takes
	// exclusive removals on a hit — cumulative since Open, warmup included.
	Hits, Seals, Takes int64
	// OverflowEvictions counts sealed pages pushed out by the byte budget;
	// OverflowWritebacks of those were dirty and went to the host.
	OverflowEvictions, OverflowWritebacks int64
	// RawBytes and CompressedBytes are cumulative sealed input and output
	// sizes; Ratio is their quotient — the realized compression ratio (0
	// with nothing sealed yet).
	RawBytes, CompressedBytes int64
	Ratio                     float64
}

// Stats reports the runtime's cumulative accounting, summed across shards.
// Safe to call concurrently with operations; each shard's contribution is
// internally consistent (shards are visited one lock at a time, so under
// concurrent load the cross-shard snapshot is per-stripe, not global — with
// WithShards(1), or while no operations are in flight, it is exact).
func (m *Memory) Stats() Stats {
	var s Stats
	var lat metrics.Histogram
	var prefetchHits int64
	for _, sh := range m.shards {
		sh.mu.Lock()
		c := &sh.eng.Counters
		cs := sh.eng.Cache().Stats()
		s.Accesses += c.Get("accesses")
		s.ResidentHits += c.Get("resident_hits")
		s.Faults += c.Get("faults")
		s.CacheHits += c.Get("cache_hits")
		s.InflightHits += c.Get("inflight_hits")
		s.Misses += c.Get("cache_misses")
		s.DemandWaits += c.Get("demand_waits")
		s.PrefetchIssued += c.Get("prefetch_issued")
		s.Swapouts += c.Get("swapouts")
		s.Evictions += sh.nEvictions
		s.WritebackPages += sh.nWritebacks
		s.Ztier.Hits += c.Get("ztier_hits")
		if sh.ztier != nil {
			zs := sh.ztier.Stats()
			s.Ztier.Enabled = true
			s.Ztier.BudgetBytes += sh.ztier.Budget()
			s.Ztier.UsedBytes += zs.UsedBytes
			s.Ztier.Pages += zs.Pages
			s.Ztier.Seals += zs.Seals
			s.Ztier.Takes += zs.Takes
			s.Ztier.OverflowEvictions += zs.OverflowEvictions
			s.Ztier.OverflowWritebacks += zs.OverflowDirty
			s.Ztier.RawBytes += zs.RawBytes
			s.Ztier.CompressedBytes += zs.CompressedBytes
		}
		if sh.ens != nil {
			clients, epochs, switches, regret := sh.ens.Totals()
			s.Ensemble.Enabled = true
			s.Ensemble.Clients += clients
			s.Ensemble.Epochs += epochs
			s.Ensemble.Switches += switches
			s.Ensemble.Regret += regret
		}
		lat.Merge(&sh.eng.FaultLatency)
		prefetchHits += cs.PrefetchHits - sh.cacheStats0.PrefetchHits
		sh.mu.Unlock()
	}
	s.Latency = lat.Summarize()
	// The host and plane keep their own locks; reading them with no shard
	// lock held keeps the lock order acyclic.
	s.Host = m.host.Stats()
	s.Control = m.controlStats()
	if s.Accesses > 0 {
		s.HitRatio = 1 - float64(s.Misses)/float64(s.Accesses)
	}
	prefetchHits += s.InflightHits
	if s.PrefetchIssued > 0 {
		s.Accuracy = float64(prefetchHits) / float64(s.PrefetchIssued)
	}
	if s.Faults > 0 {
		s.Coverage = float64(prefetchHits) / float64(s.Faults)
	}
	if s.Ztier.CompressedBytes > 0 {
		s.Ztier.Ratio = float64(s.Ztier.RawBytes) / float64(s.Ztier.CompressedBytes)
	}
	return s
}
